(* The semantic rule verifier: planted-bug fixtures (one per P2xx code),
   determinism and purity properties, metrics export, and the shipped
   rule files as a verify-clean regression. *)

module Verify = Prairie_verify.Verify
module D = Prairie.Diagnostic
module Catalog = Prairie_catalog.Catalog
module W = Prairie_workload

let check = Support.check
let check_int = Support.check_int
let has = Support.has
let severity_of = Support.severity_of

(* Small budgets keep the suite quick; oracle_forms is tightened further
   because the planted growth fixture makes closure computation expensive
   (the verifier skips oracle comparison once the cap is hit, but it pays
   for the capped closure first). *)
let config ?(budget = 4) () =
  { Verify.default_config with Verify.budget; Verify.oracle_forms = 64 }
let verify ?budget src = (Verify.verify_string ~config:(config ?budget ()) src).Verify.diagnostics

(* ------------------------------------------------------------------ *)
(* Planted bugs: each fixture smuggles one semantic defect past the    *)
(* static linter; the verifier must catch it — and stay quiet once the *)
(* defect is repaired.                                                 *)
(* ------------------------------------------------------------------ *)

(* P220: the nested-loops cost *decreases* in its input costs, so the
   cheapest full plan uses the most expensive scans.  Volcano's memo
   keeps only the cheapest plan per group and can never build it; the
   naive oracle enumerates everything and finds it. *)
let wrongcost bad =
  Printf.sprintf
    {|
ruleset wrongcost;
property tuple_order : ORDER;
property num_records : INT;
property tuple_size : INT;
property cost : COST;
operator RET(1);
operator JOIN(2);
algorithm File_scan(1);
algorithm Slow_scan(1);
algorithm Nested_loops(2);

irule ret_scan:
  RET(?1) : D2 ==> File_scan(?1) : D3
  test { is_dont_care(D2.tuple_order) }
  pre { D3 = D2; }
  post { D3.cost = cost_file_scan(D1.num_records, D1.tuple_size); }

irule ret_slow:
  RET(?1) : D2 ==> Slow_scan(?1) : D3
  test { is_dont_care(D2.tuple_order) }
  pre { D3 = D2; }
  post { D3.cost = cost_file_scan(D1.num_records, D1.tuple_size)
                 + cost_file_scan(D1.num_records, D1.tuple_size); }

irule join_nl:
  JOIN(?1, ?2) : D3 ==> Nested_loops(?1, ?2) : D4
  pre { D4 = D3; }
  post { D4.cost = %s; }
|}
    (if bad then "1000000 - D1.cost - D2.cost"
     else "D1.cost + D2.cost + D1.num_records * D2.num_records")

(* Every declared operator must be implementable or elaboration fails,
   so the single-operator fixtures share this boilerplate footer. *)
let ab_impls =
  {|
algorithm XA(1);
algorithm XB(1);

irule a_impl:
  A(?1) : D2 ==> XA(?1) : D3
  pre { D3 = D2; }
  post { D3.cost = 7; }

irule b_impl:
  B(?1) : D2 ==> XB(?1) : D3
  pre { D3 = D2; }
  post { D3.cost = 7; }
|}

(* P210: the rewrite forgets to carry num_records across, so the two
   sides of the "equivalence" are not cost-comparable. *)
let propdrop bad =
  Printf.sprintf
    {|
ruleset propdrop;
property attributes : ATTRIBUTES;
property num_records : INT;
property tuple_size : INT;
property cost : COST;
operator A(1);
operator B(1);

trule drop:
  A(?1) : D2 ==> B(?1) : D3
  post { %s }
%s|}
    (if bad then "D3.attributes = D2.attributes; D3.tuple_size = D2.tuple_size;"
     else "D3 = D2;")
    ab_impls

(* P230: an inverse pair whose guards are syntactically non-trivial (so
   static P031 is silent) but both pass on every generated input.  The
   fix partitions the guards so the pair can never fire back-to-back. *)
let inversepair bad =
  Printf.sprintf
    {|
ruleset inversepair;
property attributes : ATTRIBUTES;
property num_records : INT;
property tuple_size : INT;
property cost : COST;
operator A(1);
operator B(1);

trule ab:
  A(?1) : D2 ==> B(?1) : D3
  test { %s }
  post { D3 = D2; }

trule ba:
  B(?1) : D2 ==> A(?1) : D3
  test { %s }
  post { D3 = D2; }
%s|}
    (if bad then "D2.num_records > 0" else "D2.num_records > 100")
    (if bad then "D2.num_records > 0" else "D2.num_records < 100")
    ab_impls

(* P231: self-application wraps another A around the tree every time —
   unbounded growth the static checks cannot see. *)
let grow bad =
  Printf.sprintf
    {|
ruleset grow;
property attributes : ATTRIBUTES;
property num_records : INT;
property tuple_size : INT;
property cost : COST;
operator A(1);
operator B(1);

trule wrap:
  A(?1) : D2 ==> %s
  test { D2.num_records > 0 }
  post { %s }
%s|}
    (if bad then "A(A(?1) : D3) : D4" else "B(?1) : D3")
    (if bad then "D3 = D2; D4 = D2;" else "D3 = D2;")
    ab_impls

let fixture_cases =
  [
    ("P220", wrongcost true, wrongcost false);
    ("P210", propdrop true, propdrop false);
    ("P230", inversepair true, inversepair false);
    ("P231", grow true, grow false);
    ("P000", "ruleset broken", "ruleset fine;");
    ( "P201",
      {|ruleset t; operator A(1);
        trule r: A(?1) : D2 ==> A(?1) : D3 post { D3 = D2; }|},
      propdrop false );
  ]

let fixture_tests =
  Support.fixture_tests ~run:(fun src -> verify src) fixture_cases
  @ [
      Alcotest.test_case "counterexamples carry a reproducible witness" `Quick
        (fun () ->
          let ds = verify (propdrop true) in
          let d =
            List.find (fun (d : D.t) -> String.equal d.D.code "P210") ds
          in
          let contains sub s =
            let n = String.length sub and m = String.length s in
            let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
            go 0
          in
          check "names the rule" true (d.D.rule = Some "drop");
          check "message shows the property" true
            (contains "num_records" d.D.message);
          check "message shows the witness catalog" true
            (contains "[catalog" d.D.message);
          (match d.D.hint with
          | Some h ->
            check "hint shows the master seed" true (contains "--seed" h);
            check "hint shows the case seed" true (contains "case seed" h)
          | None -> Alcotest.fail "expected a repro hint"));
      Alcotest.test_case "severities match the catalogue" `Quick (fun () ->
          check "P210 is an error" true
            (List.for_all (( = ) D.Error) (severity_of "P210" (verify (propdrop true))));
          check "P230 is a warning" true
            (List.for_all (( = ) D.Warning) (severity_of "P230" (verify (inversepair true))));
          check "P231 is a warning" true
            (List.for_all (( = ) D.Warning) (severity_of "P231" (verify (grow true)))));
      Alcotest.test_case "lint:allow downgrades P2xx warnings" `Quick (fun () ->
          let src = "// lint:allow P230 -- exercised on purpose\n" ^ inversepair true in
          let ds = verify src in
          check "still reported" true (has "P230" ds);
          check "as info" true
            (List.for_all (( = ) D.Info) (severity_of "P230" ds)));
      Alcotest.test_case "rule filter skips other rules and the oracle" `Quick
        (fun () ->
          let config = { (config ()) with Verify.rules = [ "ab" ] } in
          let r = Verify.verify_string ~config (inversepair true) in
          check "only ab checked" true
            (List.for_all
               (fun (rr : Verify.rule_report) -> String.equal rr.Verify.rule "ab")
               r.Verify.rules);
          check_int "one rule" 1 r.Verify.rules_checked;
          check "cycle still found" true (has "P230" r.Verify.diagnostics));
    ]

(* ------------------------------------------------------------------ *)
(* Determinism and purity                                              *)
(* ------------------------------------------------------------------ *)

let oodb_instance = lazy (W.Queries.instance W.Queries.Q5 ~joins:2 ~seed:17)

let run_cost ruleset q =
  let tr = Prairie_p2v.Translate.translate ruleset in
  let ctx = Prairie_volcano.Search.create tr.Prairie_p2v.Translate.volcano in
  let expr, required = Prairie_p2v.Translate.prepare_query tr q in
  match Prairie_volcano.Search.optimize ~required ctx expr with
  | Some p -> Prairie_volcano.Plan.cost p
  | None -> infinity

let property_tests =
  [
    Alcotest.test_case "verification is deterministic in the seed" `Quick
      (fun () ->
        let r1 = Verify.verify_string ~config:(config ~budget:2 ()) (inversepair true) in
        let r2 = Verify.verify_string ~config:(config ~budget:2 ()) (inversepair true) in
        check "same diagnostics" true
          (r1.Verify.diagnostics = r2.Verify.diagnostics);
        check "same stats" true (r1.Verify.rules = r2.Verify.rules);
        let r3 =
          Verify.verify_string
            ~config:{ (config ~budget:2 ()) with Verify.seed = 43 }
            (inversepair true)
        in
        check_int "seed recorded" 43 r3.Verify.seed);
    Alcotest.test_case "diagnostics are normalized" `Quick (fun () ->
        let ds = verify (inversepair true) in
        check "normalized" true (D.normalize ds = ds));
    Alcotest.test_case "verification never perturbs a live rule set" `Quick
      (fun () ->
        let inst = Lazy.force oodb_instance in
        let rs = Prairie_algebra.Oodb.ruleset inst.W.Queries.catalog in
        let trules_before =
          List.map (fun (r : Prairie.Trule.t) -> r.Prairie.Trule.name)
            rs.Prairie.Ruleset.trules
        in
        let c1 = run_cost rs inst.W.Queries.expr in
        let report =
          Verify.verify_ruleset
            ~config:{ (config ~budget:1 ()) with Verify.rules = [ "join_commute" ] }
            (fun _ -> rs)
        in
        ignore report;
        let c2 = run_cost rs inst.W.Queries.expr in
        check "same optimization result" true (Float.equal c1 c2);
        check "same rules" true
          (trules_before
          = List.map (fun (r : Prairie.Trule.t) -> r.Prairie.Trule.name)
              rs.Prairie.Ruleset.trules));
  ]

(* ------------------------------------------------------------------ *)
(* Catalogue and metrics                                               *)
(* ------------------------------------------------------------------ *)

let catalogue_tests =
  [
    Alcotest.test_case "catalogue codes are unique, P2xx, catalogued" `Quick
      (fun () ->
        let codes = D.catalogue_codes Verify.catalogue in
        check_int "unique" (List.length codes)
          (List.length (List.sort_uniq String.compare codes));
        check "P2xx or parse" true
          (List.for_all
             (fun c ->
               String.length c = 4 && c.[0] = 'P'
               && (c.[1] = '2' || String.equal c "P000"))
             codes);
        List.iter
          (fun (code, _, _) ->
            check (code ^ " catalogued") true (List.mem code codes))
          fixture_cases);
    Alcotest.test_case "catalogue_find agrees with emitted severities" `Quick
      (fun () ->
        match D.catalogue_find Verify.catalogue "P210" with
        | Some (sev, _) -> check "error" true (sev = D.Error)
        | None -> Alcotest.fail "P210 missing from catalogue");
  ]

let metrics_tests =
  [
    Alcotest.test_case "export_metrics accumulates per-rule counters" `Quick
      (fun () ->
        let registry = Prairie_obs.Metrics.create () in
        let report =
          Verify.verify_string ~config:(config ~budget:2 ()) (inversepair true)
        in
        Verify.export_metrics registry report;
        let rules_checked =
          Prairie_obs.Metrics.counter registry
            ~labels:[ ("ruleset", "inversepair") ]
            "prairie_verify_rules_checked_total"
        in
        check_int "rules checked" report.Verify.rules_checked
          (Prairie_obs.Metrics.counter_value rules_checked);
        let ab_cases =
          Prairie_obs.Metrics.counter registry
            ~labels:[ ("rule", "ab"); ("ruleset", "inversepair") ]
            "prairie_verify_cases_total"
        in
        check "ab cases counted" true
          (Prairie_obs.Metrics.counter_value ab_cases > 0));
  ]

(* ------------------------------------------------------------------ *)
(* Shipped rule files                                                  *)
(* ------------------------------------------------------------------ *)

let shipped_tests =
  [
    Alcotest.test_case "shipped rule files verify without errors or warnings"
      `Quick (fun () ->
        List.iter
          (fun path ->
            let r = Verify.verify_file ~config:(config ~budget:2 ()) path in
            let errors, warnings, _ = Verify.summary r.Verify.diagnostics in
            check_int (path ^ " errors") 0 errors;
            check_int (path ^ " warnings") 0 warnings;
            check (path ^ " checked something") true (r.Verify.rules_checked > 0))
          [ "../rules/relational.prairie"; "../rules/open_oodb.prairie" ]);
    Alcotest.test_case "shipped cycles are pragma-downgraded, not absent"
      `Quick (fun () ->
        let r =
          Verify.verify_file ~config:(config ~budget:2 ()) "../rules/open_oodb.prairie"
        in
        let ds = r.Verify.diagnostics in
        check "P230 visible" true (has "P230" ds);
        check "as info" true
          (List.for_all (( = ) D.Info) (severity_of "P230" ds)));
  ]

let suites =
  [
    ("verify.fixtures", fixture_tests);
    ("verify.properties", property_tests);
    ("verify.catalogue", catalogue_tests);
    ("verify.metrics", metrics_tests);
    ("verify.shipped", shipped_tests);
  ]
