(* The observability layer: ring-buffer traces, the metrics registry with
   its exporters, engine instrumentation, and the guarantee that attaching
   a sink never changes what the optimizer returns. *)

module Trace = Prairie_obs.Trace
module Metrics = Prairie_obs.Metrics
module Opt = Prairie_optimizers.Optimizers
module Search = Prairie_volcano.Search
module Explain = Prairie_volcano.Explain
module Plan = Prairie_volcano.Plan
module Pool = Prairie_service.Pool
module W = Prairie_workload

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf = Alcotest.(check (float 1e-9))
let checks = Alcotest.(check string)

let qtest name ?(count = 50) gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen prop)

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Trace: the ring buffer                                              *)
(* ------------------------------------------------------------------ *)

let ev i = Trace.Memo_hit { gid = i }

let test_ring_basics () =
  let t = Trace.create ~capacity:8 () in
  checki "fresh seq" 0 (Trace.seq t);
  checki "fresh length" 0 (Trace.length t);
  for i = 0 to 4 do
    Trace.emit t (ev i)
  done;
  checki "seq" 5 (Trace.seq t);
  checki "length" 5 (Trace.length t);
  checki "dropped" 0 (Trace.dropped t);
  checki "capacity" 8 (Trace.capacity t);
  (* oldest first, contiguous sequence numbers from 0 *)
  List.iteri
    (fun i (seq, e) ->
      checki "seq order" i seq;
      check "payload order" true (e = ev i))
    (Trace.events t)

let test_ring_wraparound () =
  let t = Trace.create ~capacity:4 () in
  for i = 0 to 9 do
    Trace.emit t (ev i)
  done;
  checki "seq counts all emits" 10 (Trace.seq t);
  checki "length capped" 4 (Trace.length t);
  checki "dropped = overflow" 6 (Trace.dropped t);
  (* the survivors are the newest four, oldest first, seqs 6..9 *)
  checki "events retained" 4 (List.length (Trace.events t));
  List.iteri
    (fun i (seq, e) ->
      checki "wrapped seq" (6 + i) seq;
      check "wrapped payload" true (e = ev (6 + i)))
    (Trace.events t);
  Trace.clear t;
  checki "cleared seq" 0 (Trace.seq t);
  checki "cleared length" 0 (Trace.length t);
  check "cleared events" true (Trace.events t = [])

let test_ring_min_capacity () =
  (* capacity is clamped to >= 1, and a 1-slot ring keeps the newest *)
  let t = Trace.create ~capacity:0 () in
  checki "clamped capacity" 1 (Trace.capacity t);
  Trace.emit t (ev 1);
  Trace.emit t (ev 2);
  check "newest survives" true (Trace.events t = [ (1, ev 2) ])

let test_jsonl () =
  let t = Trace.create () in
  Trace.emit t (Trace.Group_created { gid = 0 });
  Trace.emit t
    (Trace.Trans_rejected
       { rule = "join-assoc"; gid = 3; reason = Trace.Pruned 12.5 });
  Trace.emit t
    (Trace.Winner_changed
       { gid = 1; alg = "file_scan"; old_cost = None; new_cost = 4.0 });
  let lines = String.split_on_char '\n' (String.trim (Trace.to_jsonl t)) in
  checki "one line per event" 3 (List.length lines);
  List.iteri
    (fun i line ->
      check "line is an object" true
        (String.length line > 1 && line.[0] = '{'
        && line.[String.length line - 1] = '}');
      check "line carries seq" true
        (contains line (Printf.sprintf "\"seq\":%d" i)))
    lines;
  check "kind tag" true (contains (List.nth lines 0) "\"group_created\"");
  check "reason + annotation" true
    (contains (List.nth lines 1) "\"reason\":\"pruned\""
    && contains (List.nth lines 1) "12.5");
  check "absent old cost is null" true
    (contains (List.nth lines 2) "\"old_cost\":null")

let test_json_helpers () =
  checks "escaping" "\"a\\\\b\\\"c\\nd\"" (Trace.json_string "a\\b\"c\nd");
  checks "control chars" "\"\\u0007\"" (Trace.json_string "\007");
  checks "inf" "\"inf\"" (Trace.json_float infinity);
  checks "neg inf" "\"-inf\"" (Trace.json_float neg_infinity);
  checks "finite round-trip" "12.5" (Trace.json_float 12.5)

(* ------------------------------------------------------------------ *)
(* Metrics: instruments                                                *)
(* ------------------------------------------------------------------ *)

let test_counter_gauge () =
  let m = Metrics.create () in
  let c = Metrics.counter m "requests" in
  Metrics.inc c;
  Metrics.inc ~by:4 c;
  checki "counter" 5 (Metrics.counter_value c);
  (* registration is idempotent: same (name, labels) -> same cell *)
  let c' = Metrics.counter m "requests" in
  Metrics.inc c';
  checki "shared cell" 6 (Metrics.counter_value c);
  (* different labels -> different cell *)
  let cl = Metrics.counter m ~labels:[ ("ruleset", "r1") ] "requests" in
  checki "labelled cell is fresh" 0 (Metrics.counter_value cl);
  (* label order does not matter for identity *)
  let g =
    Metrics.gauge m ~labels:[ ("a", "1"); ("b", "2") ] "depth"
  in
  Metrics.set g 3.5;
  let g' =
    Metrics.gauge m ~labels:[ ("b", "2"); ("a", "1") ] "depth"
  in
  checkf "label order ignored" 3.5 (Metrics.gauge_value g');
  (* same name, different kind: refused *)
  check "kind mismatch raises" true
    (try
       ignore (Metrics.gauge m "requests");
       false
     with Invalid_argument _ -> true);
  check "negative inc raises" true
    (try
       Metrics.inc ~by:(-1) c;
       false
     with Invalid_argument _ -> true)

let test_histogram_buckets () =
  let m = Metrics.create () in
  let h = Metrics.histogram m ~buckets:[ 4.0; 1.0; 2.0; 2.0 ] "lat" in
  (* bounds are sorted and deduplicated; v <= bound is inclusive *)
  List.iter (Metrics.observe h) [ 1.0; 1.5; 4.0; 5.0 ];
  checki "count" 4 (Metrics.histogram_count h);
  checkf "sum" 11.5 (Metrics.histogram_sum h);
  (match Metrics.buckets h with
  | [ (b1, c1); (b2, c2); (b4, c4); (binf, cinf) ] ->
    checkf "bound 1" 1.0 b1;
    checki "le 1.0 (inclusive)" 1 c1;
    checkf "bound 2" 2.0 b2;
    checki "le 2.0" 2 c2;
    checkf "bound 4" 4.0 b4;
    checki "le 4.0 (boundary lands low)" 3 c4;
    check "last bound is +Inf" true (b4 < binf && binf = infinity);
    checki "+Inf sees all" 4 cinf
  | l -> Alcotest.failf "expected 4 buckets, got %d" (List.length l));
  (* log_buckets: 20 exponentially spaced bounds from 10us *)
  let bounds = Metrics.log_buckets () in
  checki "default count" 20 (List.length bounds);
  checkf "default start" 1e-5 (List.hd bounds);
  List.iter2
    (fun lo hi -> checkf "doubling" 2.0 (hi /. lo))
    (List.filteri (fun i _ -> i < 19) bounds)
    (List.tl bounds)

let test_prometheus_export () =
  let m = Metrics.create () in
  let c =
    Metrics.counter m ~help:"how \\ many \"things\"\nseen"
      ~labels:[ ("q", "a\\b\"c\nd") ]
      "prairie_things_total"
  in
  Metrics.inc ~by:3 c;
  let h = Metrics.histogram m ~buckets:[ 0.5 ] "prairie_lat_seconds" in
  Metrics.observe h 0.25;
  Metrics.observe h 0.75;
  let text = Metrics.to_prometheus m in
  check "help present+escaped" true
    (contains text
       "# HELP prairie_things_total how \\\\ many \"things\"\\nseen");
  check "type line" true (contains text "# TYPE prairie_things_total counter");
  (* label values escape backslash, quote and newline *)
  check "label escaping" true
    (contains text "prairie_things_total{q=\"a\\\\b\\\"c\\nd\"} 3");
  check "histogram type" true
    (contains text "# TYPE prairie_lat_seconds histogram");
  check "finite bucket" true
    (contains text "prairie_lat_seconds_bucket{le=\"0.5\"} 1");
  check "+Inf bucket" true
    (contains text "prairie_lat_seconds_bucket{le=\"+Inf\"} 2");
  check "sum series" true (contains text "prairie_lat_seconds_sum 1");
  check "count series" true (contains text "prairie_lat_seconds_count 2");
  (* JSONL: one object per instrument *)
  let lines = String.split_on_char '\n' (String.trim (Metrics.to_jsonl m)) in
  checki "jsonl lines" 2 (List.length lines);
  List.iter
    (fun l -> check "jsonl object" true (l.[0] = '{' && contains l "\"name\":"))
    lines

(* ------------------------------------------------------------------ *)
(* Engine instrumentation                                              *)
(* ------------------------------------------------------------------ *)

let catalog =
  W.Catalogs.make (W.Catalogs.default_spec ~classes:3 ~indexed:true ~seed:7)

let opt = lazy (Opt.oodb_prairie catalog)

let two_join_expr () = W.Expressions.build W.Expressions.E1 catalog ~joins:2

let test_trace_event_order () =
  let sink = Trace.create () in
  let r = Opt.optimize ~trace:sink (Lazy.force opt) (two_join_expr ()) in
  let events = List.map snd (Trace.events sink) in
  check "something was recorded" true (events <> []);
  checki "nothing dropped at default capacity" 0 (Trace.dropped sink);
  (* the first event of a fresh search is the root group appearing *)
  (match events with
  | Trace.Group_created { gid = 0 } :: _ -> ()
  | e :: _ -> Alcotest.failf "first event was %s" (Trace.kind e)
  | [] -> Alcotest.fail "empty trace");
  (* groups appear before anything references them *)
  let seen = Hashtbl.create 64 in
  let born g = Hashtbl.mem seen g in
  List.iter
    (fun e ->
      match e with
      | Trace.Group_created { gid } -> Hashtbl.replace seen gid ()
      | Trace.Trans_matched { gid; _ }
      | Trace.Trans_applied { gid; _ }
      | Trace.Trans_rejected { gid; _ }
      | Trace.Impl_matched { gid; _ }
      | Trace.Impl_applied { gid; _ }
      | Trace.Impl_rejected { gid; _ }
      | Trace.Enforcer_inserted { gid; _ }
      | Trace.Memo_hit { gid }
      | Trace.Winner_changed { gid; _ } ->
        check (Printf.sprintf "gid %d born before %s" gid (Trace.kind e)) true
          (born gid)
      | Trace.Groups_merged { survivor; dead } ->
        check "merge of born groups" true (born survivor && born dead)
      | Trace.Budget_hit _ -> ())
    events;
  (* the memo's net group count matches created - merged *)
  let count p = List.length (List.filter p events) in
  let created = count (function Trace.Group_created _ -> true | _ -> false) in
  let merged = count (function Trace.Groups_merged _ -> true | _ -> false) in
  checki "created - merged = memo size" (Search.group_count r.Opt.search)
    (created - merged);
  (* a plan was found, so the root has a winner; winners always improve *)
  check "winner recorded" true
    (count (function Trace.Winner_changed _ -> true | _ -> false) > 0);
  List.iter
    (fun e ->
      match e with
      | Trace.Winner_changed { old_cost = Some old; new_cost; _ } ->
        check "winner cost improves" true (new_cost < old)
      | _ -> ())
    events;
  (* applications never outnumber matches, per rule *)
  let tally f =
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun e ->
        match f e with
        | Some (rule, n) ->
          Hashtbl.replace tbl rule
            (n + Option.value ~default:0 (Hashtbl.find_opt tbl rule))
        | None -> ())
      events;
    tbl
  in
  let matched =
    tally (function
      | Trace.Trans_matched { rule; bindings; _ } -> Some (rule, bindings)
      | _ -> None)
  in
  let applied =
    tally (function
      | Trace.Trans_applied { rule; _ } -> Some (rule, 1)
      | _ -> None)
  in
  Hashtbl.iter
    (fun rule n ->
      check
        (Printf.sprintf "%s applied <= matched bindings" rule)
        true
        (n <= Option.value ~default:0 (Hashtbl.find_opt matched rule)))
    applied

let test_explain_trace_render () =
  let sink = Trace.create () in
  ignore (Opt.optimize ~trace:sink (Lazy.force opt) (two_join_expr ()));
  let s = Explain.trace_to_string sink in
  check "summary line" true (contains s "search trace:");
  check "totals line" true (contains s "groups created");
  check "trans table" true (contains s "transformation rules:");
  check "impl table" true (contains s "implementation rules:");
  check "winner line" true (contains s "last winner:");
  (* a synthetic trace exercises the never-applied callout deterministically *)
  let t = Trace.create () in
  Trace.emit t (Trace.Group_created { gid = 0 });
  Trace.emit t (Trace.Trans_matched { rule = "r-dead"; gid = 0; bindings = 2 });
  Trace.emit t
    (Trace.Trans_rejected { rule = "r-dead"; gid = 0; reason = Trace.Test_failed });
  Trace.emit t
    (Trace.Trans_rejected { rule = "r-dead"; gid = 0; reason = Trace.Test_failed });
  let s = Explain.trace_to_string t in
  check "never-applied callout" true
    (contains s "r-dead matched 2 times but never applied");
  check "rejection reason" true (contains s "test failed");
  check "no-winner note" true (contains s "no winner was ever recorded")

let test_trace_budget_and_memo_hits () =
  let sink = Trace.create () in
  let r =
    Opt.optimize ~group_budget:2 ~trace:sink (Lazy.force opt)
      (two_join_expr ())
  in
  check "budget was hit" true (Search.budget_was_hit r.Opt.search);
  let events = List.map snd (Trace.events sink) in
  check "budget event emitted" true
    (List.exists (function Trace.Budget_hit _ -> true | _ -> false) events);
  check "budget event emitted once" true
    (1
    = List.length
        (List.filter (function Trace.Budget_hit _ -> true | _ -> false) events));
  (* re-optimizing the same search is answered from the memo *)
  let before = Trace.seq sink in
  ignore (Search.optimize r.Opt.search (two_join_expr ()));
  ignore before

let digest plan =
  match plan with
  | Some p -> Prairie.Expr.fingerprint (Plan.to_expr p)
  | None -> ""

let gen_request =
  QCheck2.Gen.(
    let* family = oneofl W.Expressions.[ E1; E2; E3 ] in
    let* joins = 1 -- 2 in
    return (W.Expressions.build family catalog ~joins))

let prop_trace_is_pure =
  qtest "tracing changes neither plan nor cost" ~count:30 gen_request
    (fun expr ->
      let plain = Opt.optimize (Lazy.force opt) expr in
      let sink = Trace.create () in
      let m = Metrics.create () in
      let traced = Opt.optimize ~trace:sink ~metrics:m (Lazy.force opt) expr in
      Float.equal plain.Opt.cost traced.Opt.cost
      && String.equal (digest plain.Opt.plan) (digest traced.Opt.plan))

(* ------------------------------------------------------------------ *)
(* Service telemetry                                                   *)
(* ------------------------------------------------------------------ *)

let test_serve_metrics () =
  let m = Metrics.create () in
  let cache = Opt.Plan_cache.create ~capacity:32 () in
  let o = Lazy.force opt in
  let distinct =
    [
      Opt.request (W.Expressions.build W.Expressions.E1 catalog ~joins:1);
      Opt.request (W.Expressions.build W.Expressions.E1 catalog ~joins:2);
      Opt.request (W.Expressions.build W.Expressions.E2 catalog ~joins:1);
    ]
  in
  let batch = distinct @ distinct in
  ignore (Opt.serve ~jobs:2 ~cache ~metrics:m o batch);
  let counter name =
    Metrics.counter_value
      (Metrics.counter m ~labels:[ ("ruleset", o.Opt.name) ] name)
  in
  checki "requests counted" 6 (counter "prairie_serve_requests_total");
  checki "one search per distinct fingerprint" 3
    (counter "prairie_serve_searches_total");
  checki "the rest came from shared state" 3
    (counter "prairie_serve_cache_served_total");
  checkf "dedup ratio of the last batch" 0.5
    (Metrics.gauge_value
       (Metrics.gauge m ~labels:[ ("ruleset", o.Opt.name) ]
          "prairie_serve_batch_dedup_ratio"));
  checki "per-search histogram saw each search" 3
    (Metrics.histogram_count
       (Metrics.histogram m ~labels:[ ("ruleset", o.Opt.name) ]
          "prairie_serve_search_seconds"));
  checki "batch histogram saw the batch" 1
    (Metrics.histogram_count
       (Metrics.histogram m ~labels:[ ("ruleset", o.Opt.name) ]
          "prairie_serve_batch_seconds"));
  checkf "cache entries gauge" 3.0
    (Metrics.gauge_value (Metrics.gauge m "prairie_plan_cache_entries"));
  (* a warm second batch is answered by the cache *)
  ignore (Opt.serve ~jobs:2 ~cache ~metrics:m o batch);
  checki "warm batch ran no searches" 3
    (counter "prairie_serve_searches_total");
  checkf "warm dedup ratio" 1.0
    (Metrics.gauge_value
       (Metrics.gauge m ~labels:[ ("ruleset", o.Opt.name) ]
          "prairie_serve_batch_dedup_ratio"));
  (* the export is self-consistent *)
  let text = Metrics.to_prometheus m in
  check "export mentions every family" true
    (List.for_all
       (fun n -> contains text n)
       [
         "prairie_serve_requests_total";
         "prairie_serve_search_seconds_bucket";
         "prairie_pool_worker_jobs_total";
         "prairie_plan_cache_hit_rate";
       ])

let test_pool_on_item () =
  let mu = Mutex.create () in
  let per_worker = Hashtbl.create 8 in
  let on_item ~worker =
    Mutex.lock mu;
    Hashtbl.replace per_worker worker
      (1 + Option.value ~default:0 (Hashtbl.find_opt per_worker worker));
    Mutex.unlock mu
  in
  let items = List.init 20 Fun.id in
  let out = Pool.map ~jobs:3 ~on_item (fun x -> x * x) items in
  check "map unchanged" true (out = List.map (fun x -> x * x) items);
  let total = Hashtbl.fold (fun _ n acc -> n + acc) per_worker 0 in
  checki "every item reported exactly once" 20 total;
  Hashtbl.iter
    (fun w _ -> check "worker index in range" true (w >= 0 && w < 3))
    per_worker;
  (* sequential path: everything is worker 0 *)
  Hashtbl.reset per_worker;
  ignore (Pool.map ~jobs:1 ~on_item Fun.id items);
  checki "sequential = worker 0" 20
    (Option.value ~default:0 (Hashtbl.find_opt per_worker 0));
  checki "no other workers" 1 (Hashtbl.length per_worker)

let suites =
  [
    ( "obs.trace",
      [
        Alcotest.test_case "ring basics" `Quick test_ring_basics;
        Alcotest.test_case "ring wraparound" `Quick test_ring_wraparound;
        Alcotest.test_case "min capacity" `Quick test_ring_min_capacity;
        Alcotest.test_case "jsonl encoding" `Quick test_jsonl;
        Alcotest.test_case "json helpers" `Quick test_json_helpers;
      ] );
    ( "obs.metrics",
      [
        Alcotest.test_case "counters and gauges" `Quick test_counter_gauge;
        Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
        Alcotest.test_case "prometheus export" `Quick test_prometheus_export;
      ] );
    ( "obs.engine",
      [
        Alcotest.test_case "trace event order (2-join E1)" `Quick
          test_trace_event_order;
        Alcotest.test_case "explain renders the account" `Quick
          test_explain_trace_render;
        Alcotest.test_case "budget-hit event" `Quick
          test_trace_budget_and_memo_hits;
        prop_trace_is_pure;
      ] );
    ( "obs.service",
      [
        Alcotest.test_case "serve populates the registry" `Quick
          test_serve_metrics;
        Alcotest.test_case "pool on_item telemetry" `Quick test_pool_on_item;
      ] );
  ]
