(* The rule-set linter: one minimal fixture per diagnostic code (a
   triggering spec and a corrected one), pragma downgrades, JSON output,
   the merge-warning rewiring, and the purity properties. *)

module Dsl = Prairie_dsl
module Lint = Prairie_lint.Lint
module D = Prairie.Diagnostic
module Catalog = Prairie_catalog.Catalog
module W = Prairie_workload

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let lint src = Lint.lint_string src
let has = Support.has
let severity_of = Support.severity_of

(* A spec every check family accepts: all declarations used, every
   operator implemented, descriptors bound before use, costs assigned in
   I-rule posts, no unguarded rewrite loops. *)
let clean_spec =
  {|
ruleset tiny;
property tuple_order : ORDER;
property num_records : INT;
property cost : COST;
operator RET(1);
operator JOIN(2);
algorithm File_scan(1);
algorithm Nested_loops(2);

trule join_assoc:
  JOIN(JOIN(?1, ?2) : D4, ?3) : D5 ==> JOIN(?1, JOIN(?2, ?3) : D6) : D7
  test { D4.num_records > 1 }
  post { D6 = D4; D7 = D5; }

irule ret_scan:
  RET(?1) : D2 ==> File_scan(?1) : D3
  test { is_dont_care(D2.tuple_order) }
  pre { D3 = D2; }
  post { D3.cost = cost_file_scan(D1.num_records, D1.num_records); }

irule join_nl:
  JOIN(?1, ?2) : D3 ==> Nested_loops(?1, ?2) : D4
  pre { D4 = D3; }
  post { D4.cost = D1.cost + D2.cost + D1.num_records * D2.num_records; }
|}

(* Each case: (code, triggering source, corrected source).  The corrected
   spec may have unrelated findings; it must not have the case's code. *)
let fixture_cases =
  [
    ( "P000",
      "ruleset broken",
      "ruleset fine;" );
    ( "P001",
      {|ruleset t; operator A(1); algorithm X(1); property cost : COST;
        irule r: A(?1) : D2 ==> X(?1) : D3
        pre { D3 = D2; }
        post { D3.cost = 1; D3.bogus = 1; }|},
      {|ruleset t; operator A(1); algorithm X(1); property cost : COST;
        property bogus : INT;
        irule r: A(?1) : D2 ==> X(?1) : D3
        pre { D3 = D2; }
        post { D3.cost = 1; D3.bogus = 1; }|} );
    ( "P002",
      {|ruleset t; property site : STRING;|},
      clean_spec );
    ( "P003",
      {|ruleset t; operator A(1); property cost : COST;
        irule r: A(?1) : D2 ==> X(?1) : D3
        pre { D3 = D2; } post { D3.cost = 1; }|},
      {|ruleset t; operator A(1); algorithm X(1); property cost : COST;
        irule r: A(?1) : D2 ==> X(?1) : D3
        pre { D3 = D2; } post { D3.cost = 1; }|} );
    ( "P004",
      {|ruleset t; algorithm Hash_join(2);|},
      clean_spec );
    ( "P005",
      {|ruleset t; operator A(2); algorithm X(1); property cost : COST;
        irule r: A(?1) : D2 ==> X(?1) : D3
        pre { D3 = D2; } post { D3.cost = 1; }|},
      {|ruleset t; operator A(1); algorithm X(1); property cost : COST;
        irule r: A(?1) : D2 ==> X(?1) : D3
        pre { D3 = D2; } post { D3.cost = 1; }|} );
    ( "P006",
      {|ruleset t; property a : INT; property a : INT;|},
      {|ruleset t; property a : INT;|} );
    ( "P007",
      {|ruleset t; operator A(1); operator B(1);
        trule r: A(?1) : D2 ==> B(?1) : D3 post { D3 = D2; }
        trule r: A(?1) : D2 ==> B(?1) : D3 post { D3 = D2; }|},
      {|ruleset t; operator A(1); operator B(1);
        trule r: A(?1) : D2 ==> B(?1) : D3 post { D3 = D2; }|} );
    ( "P008",
      {|ruleset t; operator A(1); operator B(1); property num_records : INT;
        trule r1: A(?1) : D2 ==> B(?1) : D3 post { D3 = D2; }
        trule r2: A(?1) : D2 ==> B(?1) : D3 post { D3 = D2; }|},
      {|ruleset t; operator A(1); operator B(1); property num_records : INT;
        trule r1: A(?1) : D2 ==> B(?1) : D3
        test { D2.num_records > 1 } post { D3 = D2; }
        trule r2: A(?1) : D2 ==> B(?1) : D3
        test { D2.num_records < 2 } post { D3 = D2; }|} );
    ( "P009",
      {|ruleset t; operator A(1); operator B(1);
        trule r: A(?1) : D2 ==> B(?1) : D3 post { D3 = D2; }|},
      clean_spec );
    ( "P010",
      {|ruleset t; operator A(1); algorithm X(1); property num_records : INT;
        property cost : COST;
        irule r: A(?1) : D2 ==> X(?1) : D3
        test { D9.num_records > 0 }
        pre { D3 = D2; } post { D3.cost = 1; }|},
      {|ruleset t; operator A(1); algorithm X(1); property num_records : INT;
        property cost : COST;
        irule r: A(?1) : D2 ==> X(?1) : D3
        test { D2.num_records > 0 }
        pre { D3 = D2; } post { D3.cost = 1; }|} );
    ( "P011",
      {|ruleset t; operator A(1); algorithm X(1); property cost : COST;
        irule r: A(?1) : D2 ==> X(?1) : D3
        pre { D3 = D1; } post { D3.cost = 1; }|},
      {|ruleset t; operator A(1); algorithm X(1); property cost : COST;
        irule r: A(?1) : D2 ==> X(?1) : D3
        pre { D3 = D2; } post { D3.cost = 1; }|} );
    ( "P012",
      {|ruleset t; operator A(1); algorithm X(1); property cost : COST;
        irule r: A(?1) : D2 ==> X(?2) : D3
        pre { D3 = D2; } post { D3.cost = 1; }|},
      {|ruleset t; operator A(1); algorithm X(1); property cost : COST;
        irule r: A(?1) : D2 ==> X(?1) : D3
        pre { D3 = D2; } post { D3.cost = 1; }|} );
    ( "P013",
      {|ruleset t; operator A(2); algorithm X(1); property cost : COST;
        irule r: A(?1, ?2) : D2 ==> X(?1) : D3
        pre { D3 = D2; } post { D3.cost = 1; }|},
      {|ruleset t; operator A(2); algorithm X(2); property cost : COST;
        irule r: A(?1, ?2) : D2 ==> X(?1, ?2) : D3
        pre { D3 = D2; } post { D3.cost = 1; }|} );
    ( "P014",
      {|ruleset t; operator A(2); algorithm X(1); property cost : COST;
        irule r: A(?1, ?1) : D2 ==> X(?1) : D3
        pre { D3 = D2; } post { D3.cost = 1; }|},
      {|ruleset t; operator A(1); algorithm X(1); property cost : COST;
        irule r: A(?1) : D2 ==> X(?1) : D3
        pre { D3 = D2; } post { D3.cost = 1; }|} );
    ( "P016",
      {|ruleset t; operator A(1); algorithm X(1); property cost : COST;
        irule r: A(?1) : D1 ==> X(?1) : D3
        pre { D3 = D1; } post { D3.cost = 1; }|},
      {|ruleset t; operator A(1); algorithm X(1); property cost : COST;
        irule r: A(?1) : D2 ==> X(?1) : D3
        pre { D3 = D2; } post { D3.cost = 1; }|} );
    ( "P020",
      {|ruleset t; operator A(1); operator B(1); property cost : COST;
        trule r: A(?1) : D2 ==> B(?1) : D3
        post { D3 = D2; D3.cost = D2.cost; }|},
      {|ruleset t; operator A(1); operator B(1); property cost : COST;
        trule r: A(?1) : D2 ==> B(?1) : D3
        post { D3 = D2; }|} );
    ( "P021",
      {|ruleset t; operator A(1); algorithm X(1); property cost : COST;
        irule r: A(?1) : D2 ==> X(?1) : D3
        test { D2.cost > 1 }
        pre { D3 = D2; } post { D3.cost = D1.cost; }|},
      {|ruleset t; operator A(1); algorithm X(1); property cost : COST;
        irule r: A(?1) : D2 ==> X(?1) : D3
        pre { D3 = D2; } post { D3.cost = D1.cost; }|} );
    ( "P022",
      {|ruleset t; operator A(1); algorithm X(1); property cost : COST;
        irule r: A(?1) : D2 ==> X(?1) : D3
        pre { D3 = D2; }|},
      {|ruleset t; operator A(1); algorithm X(1); property cost : COST;
        irule r: A(?1) : D2 ==> X(?1) : D3
        pre { D3 = D2; } post { D3.cost = D1.cost; }|} );
    ( "P023",
      {|ruleset t; property tuple_order : ORDER; property cost : COST;
        operator A(1); operator B(1); algorithm X(1);
        trule t1: B(?1) : D2 ==> A(?1) : D5
        post { D5 = D2; D5.tuple_order = D2.tuple_order; }
        irule r: A(?1) : D2 ==> X(?1 : D3) : D4
        pre { D4 = D2; D3 = D1; D3.tuple_order = D2.tuple_order; }
        post { D4.cost = D1.cost; }|},
      {|ruleset t; property tuple_order : ORDER; property cost : COST;
        operator A(1); operator B(1); algorithm X(1);
        trule t1: B(?1) : D2 ==> A(?1) : D5
        post { D5 = D2; D5.tuple_order = DONT_CARE; }
        irule r: A(?1) : D2 ==> X(?1 : D3) : D4
        pre { D4 = D2; D3 = D1; D3.tuple_order = D2.tuple_order; }
        post { D4.cost = D1.cost; }|} );
    ( "P030",
      {|ruleset t; operator A(1); property num_records : INT;
        trule r: A(?1) : D2 ==> A(?1) : D3 post { D3 = D2; }|},
      {|ruleset t; operator A(1); property num_records : INT;
        trule r: A(?1) : D2 ==> A(?1) : D3
        test { D2.num_records > 1 } post { D3 = D2; }|} );
    ( "P031",
      {|ruleset t; operator A(1); operator B(1); property num_records : INT;
        trule r1: A(?1) : D2 ==> B(?1) : D3 post { D3 = D2; }
        trule r2: B(?1) : D2 ==> A(?1) : D3 post { D3 = D2; }|},
      {|ruleset t; operator A(1); operator B(1); property num_records : INT;
        trule r1: A(?1) : D2 ==> B(?1) : D3 post { D3 = D2; }
        trule r2: B(?1) : D2 ==> A(?1) : D3
        test { D2.num_records > 1 } post { D3 = D2; }|} );
    ( "P040",
      {|ruleset t; operator J(2); property cost : COST;
        irule n: J(?1, ?2) : D3 ==> Null(?1, ?2) : D4
        pre { D4 = D3; } post { D4.cost = D1.cost; }|},
      {|ruleset t; operator S(1); algorithm SortAlg(1);
        property tuple_order : ORDER; property cost : COST;
        irule n: S(?1) : D2 ==> Null(?1 : D3) : D4
        pre { D4 = D2; D3.tuple_order = D2.tuple_order; }
        post { D4.cost = D1.cost; }
        irule s_sort: S(?1) : D2 ==> SortAlg(?1) : D3
        pre { D3 = D2; } post { D3.cost = D1.cost; }|} );
    ( "P041",
      {|ruleset t; operator S(1); algorithm SortAlg(2);
        property tuple_order : ORDER; property cost : COST;
        irule n: S(?1) : D2 ==> Null(?1 : D3) : D4
        pre { D4 = D2; D3.tuple_order = D2.tuple_order; }
        post { D4.cost = D1.cost; }
        irule s_sort: S(?1, ?2) : D2 ==> SortAlg(?1, ?2) : D3
        pre { D3 = D2; } post { D3.cost = D1.cost; }|},
      {|ruleset t; operator S(1); algorithm SortAlg(1);
        property tuple_order : ORDER; property cost : COST;
        irule n: S(?1) : D2 ==> Null(?1 : D3) : D4
        pre { D4 = D2; D3.tuple_order = D2.tuple_order; }
        post { D4.cost = D1.cost; }
        irule s_sort: S(?1) : D2 ==> SortAlg(?1) : D3
        pre { D3 = D2; } post { D3.cost = D1.cost; }|} );
    ( "P042",
      {|ruleset t; operator S(1); algorithm SortAlg(1); property cost : COST;
        irule n: S(?1) : D2 ==> Null(?1) : D4
        pre { D4 = D2; } post { D4.cost = D1.cost; }
        irule s_sort: S(?1) : D2 ==> SortAlg(?1) : D3
        pre { D3 = D2; } post { D3.cost = D1.cost; }|},
      {|ruleset t; operator S(1); algorithm SortAlg(1);
        property tuple_order : ORDER; property cost : COST;
        irule n: S(?1) : D2 ==> Null(?1 : D3) : D4
        pre { D4 = D2; D3.tuple_order = D2.tuple_order; }
        post { D4.cost = D1.cost; }
        irule s_sort: S(?1) : D2 ==> SortAlg(?1) : D3
        pre { D3 = D2; } post { D3.cost = D1.cost; }|} );
    ( "P043",
      {|ruleset t; operator S(1); property tuple_order : ORDER;
        property cost : COST;
        irule n: S(?1) : D2 ==> Null(?1 : D3) : D4
        pre { D4 = D2; D3.tuple_order = D2.tuple_order; }
        post { D4.cost = D1.cost; }|},
      {|ruleset t; operator S(1); algorithm SortAlg(1);
        property tuple_order : ORDER; property cost : COST;
        irule n: S(?1) : D2 ==> Null(?1 : D3) : D4
        pre { D4 = D2; D3.tuple_order = D2.tuple_order; }
        post { D4.cost = D1.cost; }
        irule s_sort: S(?1) : D2 ==> SortAlg(?1) : D3
        pre { D3 = D2; } post { D3.cost = D1.cost; }|} );
  ]

let fixture_tests =
  Alcotest.test_case "clean fixture has no findings" `Quick (fun () ->
      let ds = lint clean_spec in
      check_int "no diagnostics" 0 (List.length ds))
  :: Support.fixture_tests ~run:lint fixture_cases

let helper_tests =
  [
    Alcotest.test_case "P015 needs a helper environment" `Quick (fun () ->
        let src =
          {|ruleset t; operator A(1); algorithm X(1); property cost : COST;
            irule r: A(?1) : D2 ==> X(?1) : D3
            pre { D3 = D2; } post { D3.cost = mystery(1); }|}
        in
        check "skipped without helpers" false (has "P015" (lint src));
        check "fires with helpers" true
          (has "P015"
             (Lint.lint_string ~helpers:Prairie.Helper_env.builtins src));
        let good =
          {|ruleset t; operator A(1); algorithm X(1); property cost : COST;
            irule r: A(?1) : D2 ==> X(?1) : D3
            pre { D3 = D2; } post { D3.cost = abs(1); }|}
        in
        check "registered helper accepted" false
          (has "P015"
             (Lint.lint_string ~helpers:Prairie.Helper_env.builtins good)));
  ]

let pragma_tests =
  [
    Alcotest.test_case "allow_pragmas parses codes and lines" `Quick (fun () ->
        let src = "// lint:allow P002 P030 -- schema mirrors the catalog\nruleset t;\n// lint:allow P004\n" in
        check "pairs" true
          (Lint.allow_pragmas src
          = [ ("P002", 1); ("P030", 1); ("P004", 3) ]));
    Alcotest.test_case "pragma downgrades warnings to info" `Quick (fun () ->
        let src = "// lint:allow P002 -- kept for the catalog\nruleset t; property site : STRING;" in
        check "still reported" true (has "P002" (lint src));
        check "as info" true
          (List.for_all (( = ) D.Info) (severity_of "P002" (lint src))));
    Alcotest.test_case "pragma never downgrades errors" `Quick (fun () ->
        let src =
          {|// lint:allow P003
ruleset t; operator A(1); property cost : COST;
irule r: A(?1) : D2 ==> X(?1) : D3 pre { D3 = D2; } post { D3.cost = 1; }|}
        in
        check "still an error" true
          (List.exists (( = ) D.Error) (severity_of "P003" (lint src))));
  ]

let catalogue_tests =
  [
    Alcotest.test_case "catalogue codes are unique and well-formed" `Quick
      (fun () ->
        let codes = List.map (fun (c, _, _) -> c) Lint.catalogue in
        check_int "unique" (List.length codes)
          (List.length (List.sort_uniq String.compare codes));
        check "shape" true
          (List.for_all
             (fun c -> String.length c = 4 && c.[0] = 'P')
             codes));
    Alcotest.test_case "every emitted code is catalogued" `Quick (fun () ->
        let codes = List.map (fun (c, _, _) -> c) Lint.catalogue in
        List.iter
          (fun (code, bad, _) ->
            ignore bad;
            check (code ^ " catalogued") true (List.mem code codes))
          fixture_cases);
  ]

let json_tests =
  [
    Alcotest.test_case "to_json emits all known fields" `Quick (fun () ->
        let d =
          D.warning ~code:"P002" ~rule:"r" ~span:{ D.line = 3; column = 7 }
            ~hint:"drop it" "unused"
        in
        let j = D.to_json d in
        let contains sub =
          let n = String.length sub and m = String.length j in
          let rec go i = i + n <= m && (String.sub j i n = sub || go (i + 1)) in
          go 0
        in
        check "code" true (contains {|"code":"P002"|});
        check "severity" true (contains {|"severity":"warning"|});
        check "line" true (contains {|"line":3|});
        check "column" true (contains {|"column":7|});
        check "rule" true (contains {|"rule":"r"|});
        check "hint" true (contains {|"hint":"drop it"|}));
    Alcotest.test_case "to_json escapes quotes and control characters" `Quick
      (fun () ->
        let d = D.error ~code:"P000" "bad \"name\"\nwith newline" in
        let j = D.to_json d in
        let contains sub =
          let n = String.length sub and m = String.length j in
          let rec go i = i + n <= m && (String.sub j i n = sub || go (i + 1)) in
          go 0
        in
        check "escaped quote" true (contains {|\"name\"|});
        check "escaped newline" true (contains {|\n|});
        check "no raw newline" false (String.contains j '\n'));
  ]

let shipped_tests =
  [
    Alcotest.test_case "shipped rule files lint without errors or warnings"
      `Quick (fun () ->
        List.iter
          (fun path ->
            let ds =
              Lint.lint_file
                ~helpers:(Prairie_algebra.Helpers.env Catalog.empty) path
            in
            let errors, warnings, _ = Lint.summary ds in
            check_int (path ^ " errors") 0 errors;
            check_int (path ^ " warnings") 0 warnings)
          [ "../rules/relational.prairie"; "../rules/open_oodb.prairie" ]);
    Alcotest.test_case "shipped findings are pragma-downgraded, not absent"
      `Quick (fun () ->
        let ds =
          Lint.lint_file
            ~helpers:(Prairie_algebra.Helpers.env Catalog.empty)
            "../rules/open_oodb.prairie"
        in
        check "P002 visible as info" true (has "P002" ds);
        check "P030 visible as info" true (has "P030" ds);
        check "all info" true
          (List.for_all (fun (d : D.t) -> d.D.severity = D.Info) ds));
  ]

let merge_warning_tests =
  [
    Alcotest.test_case "merge warnings are diagnostics in stable order" `Quick
      (fun () ->
        let rs =
          Dsl.Elaborate.load
            ~helpers:(Prairie_algebra.Helpers.env Catalog.empty)
            "../rules/open_oodb.prairie"
        in
        let m1 = Prairie_p2v.Merge.merge rs in
        let m2 = Prairie_p2v.Merge.merge rs in
        check "deterministic" true
          (m1.Prairie_p2v.Merge.warnings = m2.Prairie_p2v.Merge.warnings);
        check "normalized" true
          (D.normalize m1.Prairie_p2v.Merge.warnings
          = m1.Prairie_p2v.Merge.warnings);
        check "codes are P1xx" true
          (List.for_all
             (fun (d : D.t) ->
               String.length d.D.code = 4 && String.sub d.D.code 0 2 = "P1")
             m1.Prairie_p2v.Merge.warnings));
  ]

(* ------------------------------------------------------------------ *)
(* Properties: linting is pure — it never perturbs the spec it reads,  *)
(* and a linted rule set optimizes exactly as before.                  *)
(* ------------------------------------------------------------------ *)

let oodb_instance =
  lazy (W.Queries.instance W.Queries.Q5 ~joins:2 ~seed:17)

let subset_ruleset mask =
  let inst = Lazy.force oodb_instance in
  let base = Prairie_algebra.Oodb.ruleset inst.W.Queries.catalog in
  let trules =
    List.filteri
      (fun i _ -> mask land (1 lsl (i mod 16)) <> 0 || i mod 7 = 0)
      base.Prairie.Ruleset.trules
  in
  { base with Prairie.Ruleset.trules }

let run_cost ruleset q =
  let tr = Prairie_p2v.Translate.translate ruleset in
  let ctx = Prairie_volcano.Search.create tr.Prairie_p2v.Translate.volcano in
  let expr, required = Prairie_p2v.Translate.prepare_query tr q in
  match Prairie_volcano.Search.optimize ~required ctx expr with
  | Some p -> Prairie_volcano.Plan.cost p
  | None -> infinity

let property_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"linting never mutates the spec" ~count:40
         QCheck2.Gen.(int_bound 65535)
         (fun mask ->
           let rs = subset_ruleset mask in
           let src = Dsl.Render.ruleset_to_string rs in
           let spec = Dsl.Parser.parse src in
           let before = Dsl.Parser.parse src in
           let ds1 = Lint.check_spec spec in
           let ds2 = Lint.check_spec spec in
           ds1 = ds2
           && D.normalize ds1 = ds1
           && spec = before
           && Dsl.Render.ruleset_to_string rs = src));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make
         ~name:"lint-clean specs optimize to the same plan cost" ~count:10
         QCheck2.Gen.(int_bound 65535)
         (fun mask ->
           let inst = Lazy.force oodb_instance in
           let rs = subset_ruleset mask in
           let c1 = run_cost rs inst.W.Queries.expr in
           let src = Dsl.Render.ruleset_to_string rs in
           let ds = Lint.lint_string src in
           let c2 = run_cost rs inst.W.Queries.expr in
           ignore ds;
           Float.equal c1 c2));
  ]

let suites =
  [
    ("lint.fixtures", fixture_tests);
    ("lint.helpers", helper_tests);
    ("lint.pragmas", pragma_tests);
    ("lint.catalogue", catalogue_tests);
    ("lint.json", json_tests);
    ("lint.shipped", shipped_tests);
    ("lint.merge_warnings", merge_warning_tests);
    ("lint.properties", property_tests);
  ]
