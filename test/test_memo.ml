(* The memo: groups, global deduplication, merging. *)

module Memo = Prairie_volcano.Memo
module D = Prairie.Descriptor
module V = Prairie_value.Value
module Expr = Prairie.Expr

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let d tag = D.of_list [ ("tag", V.Str tag) ]

let basic_tests =
  [
    Alcotest.test_case "file insertion is idempotent" `Quick (fun () ->
        let m = Memo.create () in
        let g1 = Memo.insert_file m "R" (d "r") in
        let g2 = Memo.insert_file m "R" (d "r") in
        check_int "same group" g1 g2;
        check_int "one group" 1 (Memo.group_count m));
    Alcotest.test_case "expression insertion is bottom-up and deduplicated"
      `Quick (fun () ->
        let m = Memo.create () in
        let tree =
          Expr.operator "JOIN" (d "j")
            [ Expr.stored ~desc:(d "r1") "R1"; Expr.stored ~desc:(d "r2") "R2" ]
        in
        let g1 = Memo.insert_expr m tree in
        let g2 = Memo.insert_expr m tree in
        check_int "same group" g1 g2;
        check_int "three groups" 3 (Memo.group_count m);
        check_int "three lexprs" 3 (Memo.lexpr_count m));
    Alcotest.test_case "group descriptors come from node descriptors" `Quick
      (fun () ->
        let m = Memo.create () in
        let g = Memo.insert_expr m (Expr.operator "RET" (d "ret") [ Expr.stored ~desc:(d "f") "F" ]) in
        check "ret desc" true (D.equal (Memo.group_desc m g) (d "ret")));
    Alcotest.test_case "gtree insertion into a group adds a member" `Quick
      (fun () ->
        let m = Memo.create () in
        let gf = Memo.insert_file m "F" (d "f") in
        let g = Memo.insert_expr m (Expr.operator "RET" (d "ret") [ Expr.stored ~desc:(d "f") "F" ]) in
        let _, fresh =
          Memo.insert_gtree m ~into:g (Memo.Gnode ("RET2", d "ret2", [ Memo.Gleaf gf ]))
        in
        check "fresh" true fresh;
        check_int "two members" 2 (List.length (Memo.lexprs m g));
        (* duplicate insertion is detected *)
        let _, fresh2 =
          Memo.insert_gtree m ~into:g (Memo.Gnode ("RET2", d "ret2", [ Memo.Gleaf gf ]))
        in
        check "not fresh" false fresh2);
    Alcotest.test_case "algorithm nodes are rejected" `Quick (fun () ->
        let m = Memo.create () in
        check "raises" true
          (try
             ignore (Memo.insert_expr m (Expr.algorithm "Scan" (d "s") [ Expr.stored "F" ]));
             false
           with Invalid_argument _ -> true));
  ]

let merge_tests =
  [
    Alcotest.test_case "discovered duplicates merge their groups" `Quick
      (fun () ->
        let m = Memo.create () in
        (* Two distinct root groups, then prove them equal by inserting the
           same lexpr into both. *)
        let gf = Memo.insert_file m "F" (d "f") in
        let a = Memo.insert_expr m (Expr.operator "A" (d "a") [ Expr.stored ~desc:(d "f") "F" ]) in
        let b = Memo.insert_expr m (Expr.operator "B" (d "b") [ Expr.stored ~desc:(d "f") "F" ]) in
        check "distinct" true (Memo.canonical m a <> Memo.canonical m b);
        let count_before = Memo.group_count m in
        let _ = Memo.insert_gtree m ~into:a (Memo.Gnode ("X", d "x", [ Memo.Gleaf gf ])) in
        let _ = Memo.insert_gtree m ~into:b (Memo.Gnode ("X", d "x", [ Memo.Gleaf gf ])) in
        check_int "merged" (Memo.canonical m a) (Memo.canonical m b);
        check_int "one fewer group" (count_before - 1) (Memo.group_count m);
        (* all members now live in the canonical group *)
        (* A, B and one X: the duplicate X was deduplicated *)
        check_int "members" 3 (List.length (Memo.lexprs m a)));
    Alcotest.test_case "winners survive by canonical group" `Quick (fun () ->
        let m = Memo.create () in
        let g = Memo.insert_file m "F" (d "f") in
        let req = D.empty in
        Memo.set_winner m g req { Memo.plan = None; cost = infinity; searched_limit = 1.0 };
        check "found" true (Memo.find_winner m g req <> None);
        Memo.clear_winners m;
        check "cleared" true (Memo.find_winner m g req = None));
    Alcotest.test_case "rule_tried bookkeeping" `Quick (fun () ->
        let m = Memo.create () in
        let g = Memo.insert_expr m (Expr.operator "RET" (d "r") [ Expr.stored ~desc:(d "f") "F" ]) in
        let le = List.hd (Memo.lexprs m g) in
        check "untried" false (Memo.rule_tried m le 1);
        Memo.mark_rule_tried m le 1;
        check "tried" true (Memo.rule_tried m le 1);
        check "other rule untried" false (Memo.rule_tried m le 2));
  ]

let suites = [ ("memo.basic", basic_tests); ("memo.merge", merge_tests) ]
