(* Combining rule sets (paper §6 future work): the relational and OODB
   optimizers merged into one. *)

module Ruleset = Prairie.Ruleset
module W = Prairie_workload
module Opt = Prairie_optimizers.Optimizers
module P2v = Prairie_p2v
module Search = Prairie_volcano.Search
module Plan = Prairie_volcano.Plan
module D = Prairie.Descriptor
module Rel = Prairie_algebra.Relational
module Oodb = Prairie_algebra.Oodb

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let catalog =
  W.Catalogs.make (W.Catalogs.default_spec ~classes:3 ~indexed:true ~seed:21)

let combined () =
  Ruleset.combine ~name:"combined" (Oodb.ruleset catalog) (Rel.ruleset catalog)

let run ruleset expr =
  let tr = P2v.Translate.translate ruleset in
  let ctx = Search.create tr.P2v.Translate.volcano in
  let expr, required = P2v.Translate.prepare_query tr expr in
  match Search.optimize ~required ctx expr with
  | Some p -> Plan.cost p
  | None -> infinity

let basic_tests =
  [
    Alcotest.test_case "combined set validates" `Quick (fun () ->
        check "valid" true (Ruleset.validate (combined ()) = Ok ()));
    Alcotest.test_case "rule and vocabulary counts union" `Quick (fun () ->
        let c = combined () in
        let oodb = Oodb.ruleset catalog and rel = Rel.ruleset catalog in
        (* shared rules (join_commute, sort_merge_sort, sort_null, the
           sort-intro rules over shared operators) are deduplicated *)
        check "trules at most sum" true
          (Ruleset.trule_count c
          <= Ruleset.trule_count oodb + Ruleset.trule_count rel);
        check "has OODB ops" true (List.mem "MAT" c.Ruleset.operators);
        check "has relational-only op" true (List.mem "JOPR" c.Ruleset.operators);
        check "has both algorithm families" true
          (List.mem "Hash_join" c.Ruleset.algorithms
          && List.mem "Nested_loops" c.Ruleset.algorithms));
    Alcotest.test_case "duplicate rules deduplicate, conflicts reject" `Quick
      (fun () ->
        let oodb = Oodb.ruleset catalog in
        let self = Ruleset.combine ~name:"self" oodb oodb in
        check_int "self-combine is identity on counts"
          (Ruleset.trule_count oodb) (Ruleset.trule_count self);
        (* a conflicting property type must be rejected *)
        let clash =
          Ruleset.make
            ~properties:[ Prairie.Property.declare "num_records" Prairie_value.Value.T_float ]
            "clash"
        in
        check "type clash raises" true
          (try
             ignore (Ruleset.combine ~name:"x" oodb clash);
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "combining never makes plans worse" `Quick (fun () ->
        (* the combined optimizer has every algorithm of both sets, so its
           optimum can only improve *)
        List.iter
          (fun q ->
            let inst = W.Queries.instance q ~joins:2 ~seed:21 in
            let alone = run (Oodb.ruleset inst.W.Queries.catalog) inst.W.Queries.expr in
            let together =
              run
                (Ruleset.combine ~name:"combined"
                   (Oodb.ruleset inst.W.Queries.catalog)
                   (Rel.ruleset inst.W.Queries.catalog))
                inst.W.Queries.expr
            in
            check "no worse" true (together <= alone +. 1e-9))
          [ W.Queries.Q1; W.Queries.Q5 ]);
    Alcotest.test_case "combined set gains cross-family algorithms" `Quick
      (fun () ->
        (* an OODB join query optimized by the combined set may now also use
           Nested_loops / Merge_join; at minimum, they are considered *)
        let inst = W.Queries.instance W.Queries.Q1 ~joins:1 ~seed:21 in
        let c =
          Ruleset.combine ~name:"combined"
            (Oodb.ruleset inst.W.Queries.catalog)
            (Rel.ruleset inst.W.Queries.catalog)
        in
        let tr = P2v.Translate.translate c in
        let ctx = Search.create tr.P2v.Translate.volcano in
        ignore (Search.optimize ctx inst.W.Queries.expr);
        let st = Search.stats ctx in
        check "nested loops considered" true
          (List.mem "join_nested_loops"
             (Prairie_volcano.Stats.impl_matched_names st)));
  ]

let suites = [ ("combine", basic_tests) ]
