(* Descriptors: the uniform annotation lists. *)

module D = Prairie.Descriptor
module V = Prairie_value.Value
module O = Prairie_value.Order
module P = Prairie_value.Predicate
module Property = Prairie.Property

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let a = Prairie_value.Attribute.make ~owner:"R" ~name:"a"

let basic_tests =
  [
    Alcotest.test_case "get of unset is Null" `Quick (fun () ->
        check "null" true (V.equal (D.get D.empty "x") V.Null));
    Alcotest.test_case "set then get" `Quick (fun () ->
        let d = D.set D.empty "n" (V.Int 4) in
        check_int "four" 4 (D.get_int d "n"));
    Alcotest.test_case "setting Null removes" `Quick (fun () ->
        let d = D.set (D.set D.empty "n" (V.Int 4)) "n" V.Null in
        check "empty" true (D.is_empty d));
    Alcotest.test_case "no-constraint normalization" `Quick (fun () ->
        let d = D.set D.empty "tuple_order" (V.Order O.Any) in
        check "any removed" true (D.is_empty d);
        let d = D.set D.empty "p" (V.Pred P.True) in
        check "true removed" true (D.is_empty d);
        (* but they read back as the defaults *)
        check "order default" true (O.is_any (D.get_order D.empty "tuple_order"));
        check "pred default" true (P.equal (D.get_pred D.empty "p") P.True));
    Alcotest.test_case "merge is right-biased" `Quick (fun () ->
        let base = D.of_list [ ("x", V.Int 1); ("y", V.Int 2) ] in
        let over = D.of_list [ ("y", V.Int 9); ("z", V.Int 3) ] in
        let m = D.merge ~base ~overrides:over in
        check_int "x" 1 (D.get_int m "x");
        check_int "y" 9 (D.get_int m "y");
        check_int "z" 3 (D.get_int m "z"));
    Alcotest.test_case "restrict and without" `Quick (fun () ->
        let d = D.of_list [ ("x", V.Int 1); ("y", V.Int 2); ("z", V.Int 3) ] in
        check_int "restrict" 2 (List.length (D.to_list (D.restrict d [ "x"; "z" ])));
        check_int "without" 1 (List.length (D.to_list (D.without d [ "x"; "z" ]))));
    Alcotest.test_case "cost accessors" `Quick (fun () ->
        Alcotest.(check (float 0.0)) "default" 0.0 (D.cost D.empty);
        Alcotest.(check (float 0.0)) "set" 2.5 (D.cost (D.set_cost D.empty 2.5)));
    Alcotest.test_case "typed accessors" `Quick (fun () ->
        let d = D.of_list [ ("attrs", V.Attrs [ a ]); ("o", V.Order (O.sorted_on a)) ] in
        check_int "attrs" 1 (List.length (D.get_attrs d "attrs"));
        check "order" true (O.equal (D.get_order d "o") (O.sorted_on a)));
  ]

let gen_value =
  QCheck2.Gen.(
    oneof
      [
        return V.Null;
        map (fun b -> V.Bool b) bool;
        map (fun i -> V.Int i) (0 -- 100);
        map (fun f -> V.Float f) (float_bound_inclusive 100.0);
        map (fun s -> V.Str s) (oneofl [ "x"; "y"; "z" ]);
        map (fun o -> V.Order o) Test_value.gen_order;
        map (fun p -> V.Pred p) Test_value.gen_pred;
      ])

let gen_desc =
  QCheck2.Gen.(
    let* bindings =
      list_size (0 -- 5) (pair (oneofl [ "p"; "q"; "r"; "s"; "t" ]) gen_value)
    in
    return (D.of_list bindings))

let qtest name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count:300 gen prop)

let property_based =
  [
    qtest "equal descriptors hash equally" (QCheck2.Gen.pair gen_desc gen_desc)
      (fun (d1, d2) -> (not (D.equal d1 d2)) || D.hash d1 = D.hash d2);
    qtest "set then get returns a default-equivalent value"
      (QCheck2.Gen.triple gen_desc (QCheck2.Gen.oneofl [ "p"; "q" ]) gen_value)
      (fun (d, k, v) ->
        let got = D.get (D.set d k v) k in
        V.equal got v
        || (* normalized no-constraint values read back as Null *)
        (V.equal got V.Null
        && (match v with
           | V.Order o -> O.is_any o
           | V.Pred p -> P.equal p P.True
           | V.Null -> true
           | _ -> false)));
    qtest "merge with empty is identity" gen_desc (fun d ->
        D.equal (D.merge ~base:d ~overrides:D.empty) d
        && D.equal (D.merge ~base:D.empty ~overrides:d) d);
    qtest "to_list/of_list round trip" gen_desc (fun d ->
        D.equal d (D.of_list (D.to_list d)));
    qtest "restrict and without partition" gen_desc (fun d ->
        let keys = [ "p"; "q" ] in
        List.length (D.to_list (D.restrict d keys))
        + List.length (D.to_list (D.without d keys))
        = List.length (D.to_list d));
  ]

(* Interning: hash-consed descriptors must be observationally identical to
   the plain-map representation — same equality, ordering, fingerprints —
   and equal descriptors must be interchangeable wherever one is used as a
   hash-table key. *)
let shuffle l =
  List.map snd
    (List.sort
       (fun (a, _) (b, _) -> Int.compare a b)
       (List.mapi (fun i x -> ((i * 7919) mod 101, x)) l))

let interning_based =
  [
    qtest "equal, compare and fingerprint agree"
      (QCheck2.Gen.pair gen_desc gen_desc) (fun (d1, d2) ->
        let eq = D.equal d1 d2 in
        eq = (D.compare d1 d2 = 0)
        && eq = String.equal (D.fingerprint d1) (D.fingerprint d2));
    qtest "same bindings intern to the same descriptor" gen_desc (fun d ->
        let rebuilt = D.of_list (shuffle (D.to_list d)) in
        D.equal d rebuilt && D.hash d = D.hash rebuilt);
    qtest "equal descriptors are interchangeable Tbl keys"
      (QCheck2.Gen.pair gen_desc gen_desc) (fun (d1, d2) ->
        let tbl = D.Tbl.create 4 in
        D.Tbl.replace tbl d1 ();
        D.Tbl.mem tbl (D.of_list (shuffle (D.to_list d1)))
        && D.Tbl.mem tbl d2 = D.equal d1 d2);
    qtest "restrict_set agrees with restrict" gen_desc (fun d ->
        let keys = [ "p"; "q"; "t" ] in
        let set = D.String_set.of_list keys in
        D.equal (D.restrict_set d set) (D.restrict d keys)
        && D.equal (D.without_set d set) (D.without d keys));
    qtest "incremental hash matches rebuilt hash"
      (QCheck2.Gen.triple gen_desc (QCheck2.Gen.oneofl [ "p"; "q"; "u" ])
         gen_value) (fun (d, k, v) ->
        (* drive set/remove (the incremental XOR path) and compare against a
           from-scratch rebuild (the fold path) *)
        let d' = D.remove (D.set d k v) "r" in
        D.hash d' = D.hash (D.of_list (D.to_list d')));
  ]

let property_tests =
  [
    Alcotest.test_case "declare defaults by type" `Quick (fun () ->
        let p = Property.declare "o" V.T_order in
        check "order default" true (V.equal p.Property.default (V.Order O.Any));
        let p = Property.declare "p" V.T_pred in
        check "pred default" true (V.equal p.Property.default (V.Pred P.True));
        let p = Property.declare "n" V.T_int in
        check "int default null" true (V.equal p.Property.default V.Null));
    Alcotest.test_case "cost_properties" `Quick (fun () ->
        let schema =
          [ Property.declare "cost" V.T_cost; Property.declare "n" V.T_int ]
        in
        Alcotest.(check (list string)) "cost" [ "cost" ]
          (Property.cost_properties schema));
    Alcotest.test_case "validate types" `Quick (fun () ->
        let schema = [ Property.declare "n" V.T_int ] in
        check "ok" true (Property.validate schema [ ("n", V.Int 1) ] = Ok ());
        check "bad type" true
          (match Property.validate schema [ ("n", V.Str "x") ] with
          | Error _ -> true
          | Ok () -> false);
        check "undeclared" true
          (match Property.validate schema [ ("z", V.Int 1) ] with
          | Error _ -> true
          | Ok () -> false));
  ]

(* Cross-domain soundness: the interning pool lives in [Domain.DLS], so a
   descriptor built in another domain is a distinct record whose pool id
   may even collide with a local one — equality, hashing, ordering and
   shared tables must all fall back to structure. *)
let cross_domain_tests =
  let bindings =
    [ ("attrs", V.Attrs [ a ]); ("n", V.Int 7); ("tag", V.Str "x") ]
  in
  [
    Alcotest.test_case "two domains intern equal but distinct records" `Quick
      (fun () ->
        let here = D.of_list bindings in
        let there = Domain.join (Domain.spawn (fun () -> D.of_list bindings)) in
        check "distinct records" true (not (here == there));
        check "equal" true (D.equal here there);
        check_int "same hash" (D.hash here) (D.hash there);
        check_int "compare 0" 0 (D.compare here there);
        Alcotest.(check string)
          "same fingerprint" (D.fingerprint here) (D.fingerprint there));
    Alcotest.test_case "shared Tbl round-trips across domains" `Quick
      (fun () ->
        let here = D.of_list bindings in
        let tbl = D.Tbl.create 8 in
        D.Tbl.replace tbl here "planned";
        (* probe interned by a different domain's pool *)
        let there = Domain.join (Domain.spawn (fun () -> D.of_list bindings)) in
        check "found by structural key" true
          (D.Tbl.find_opt tbl there = Some "planned");
        (* reverse direction: insert under the foreign record, probe with
           the local one *)
        let tbl2 = D.Tbl.create 8 in
        D.Tbl.replace tbl2 there "cached";
        check "reverse lookup" true (D.Tbl.find_opt tbl2 here = Some "cached");
        (* derived descriptors built from the foreign record re-intern
           locally and stay interchangeable *)
        let d1 = D.set here "extra" (V.Int 1) in
        let d2 = D.set there "extra" (V.Int 1) in
        check "derived equal" true (D.equal d1 d2));
  ]

let suites =
  [
    ("descriptor.basic", basic_tests);
    ("descriptor.domains", cross_domain_tests);
    ("descriptor.properties", property_based);
    ("descriptor.interning", interning_based);
    ("descriptor.schema", property_tests);
  ]
