(* Edge cases across the stack: search memoization under limits, executor
   corner cases, P2V warning paths, explain rendering. *)

module Search = Prairie_volcano.Search
module Plan = Prairie_volcano.Plan
module Memo = Prairie_volcano.Memo
module Explain = Prairie_volcano.Explain
module Rule = Prairie_volcano.Rule
module Iterator = Prairie_executor.Iterator
module E = Prairie_executor
module D = Prairie.Descriptor
module V = Prairie_value.Value
module O = Prairie_value.Order
module P = Prairie_value.Predicate
module A = Prairie_value.Attribute
module SF = Prairie_catalog.Stored_file
module Catalog = Prairie_catalog.Catalog
module Rel = Prairie_algebra.Relational
module W = Prairie_workload
module Opt = Prairie_optimizers.Optimizers

let contains_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let attr o n = A.make ~owner:o ~name:n
let eq a b = P.Cmp (P.Eq, P.T_attr a, P.T_attr b)

(* ------------------------------------------------------------------ *)
(* search internals                                                     *)
(* ------------------------------------------------------------------ *)

let catalog =
  Catalog.of_files
    [
      Rel.relation ~name:"R1" ~cardinality:800 [ ("a", 20); ("b", 10) ];
      Rel.relation ~name:"R2" ~cardinality:300 [ ("a", 20) ];
    ]

let volcano () =
  (Prairie_p2v.Translate.translate (Rel.ruleset catalog)).Prairie_p2v.Translate.volcano

let query () =
  Rel.join catalog ~pred:(eq (attr "R1" "a") (attr "R2" "a"))
    (Rel.ret catalog "R1") (Rel.ret catalog "R2")

let search_tests =
  [
    Alcotest.test_case "re-optimization leaves the memo unchanged" `Quick
      (fun () ->
        let ctx = Search.create (volcano ()) in
        ignore (Search.optimize ctx (query ()));
        let groups = Search.group_count ctx in
        let lexprs = Memo.lexpr_count (Search.memo ctx) in
        ignore (Search.optimize ctx (query ()));
        check_int "groups stable" groups (Search.group_count ctx);
        check_int "lexprs stable" lexprs (Memo.lexpr_count (Search.memo ctx)));
    Alcotest.test_case "failed search under a limit is re-run at a higher one"
      `Quick (fun () ->
        let ctx = Search.create (volcano ()) in
        let g = Memo.insert_expr (Search.memo ctx) (query ()) in
        let none = Search.optimize_group ctx g ~req:D.empty ~limit:0.0001 in
        check "fails under a tiny limit" true (none = None);
        let some = Search.optimize_group ctx g ~req:D.empty ~limit:infinity in
        check "succeeds when relaxed" true (some <> None));
    Alcotest.test_case "winner found under infinity is served under any limit"
      `Quick (fun () ->
        let ctx = Search.create (volcano ()) in
        let g = Memo.insert_expr (Search.memo ctx) (query ()) in
        let p = Option.get (Search.optimize_group ctx g ~req:D.empty ~limit:infinity) in
        let cost = Plan.cost p in
        check "above cost: same plan" true
          (Search.optimize_group ctx g ~req:D.empty ~limit:(cost +. 1.0) <> None);
        check "below cost: none" true
          (Search.optimize_group ctx g ~req:D.empty ~limit:(cost /. 2.0) = None));
    Alcotest.test_case "explore is reachable standalone" `Quick (fun () ->
        let ctx = Search.create (volcano ()) in
        let g = Memo.insert_expr (Search.memo ctx) (query ()) in
        Search.explore_group ctx g;
        (* commutativity must have added a second member to the join group *)
        check "members grew" true
          (List.length (Memo.lexprs (Search.memo ctx) g) >= 2));
    Alcotest.test_case "default satisfies semantics" `Quick (fun () ->
        let req =
          D.of_list [ ("tuple_order", V.Order (O.sorted_on (attr "R1" "a"))) ]
        in
        let actual_more =
          D.of_list
            [
              ("tuple_order", V.Order (O.sorted [ attr "R1" "a"; attr "R1" "b" ]));
              ("extra", V.Int 1);
            ]
        in
        check "prefix ok, extra props ignored" true
          (Rule.default_satisfies ~required:req ~actual:actual_more);
        check "missing order fails" false
          (Rule.default_satisfies ~required:req ~actual:D.empty);
        let other = D.of_list [ ("flag", V.Bool true) ] in
        check "non-order property uses equality" true
          (Rule.default_satisfies ~required:other
             ~actual:(D.of_list [ ("flag", V.Bool true); ("x", V.Int 2) ]));
        check "non-order property mismatch" false
          (Rule.default_satisfies ~required:other
             ~actual:(D.of_list [ ("flag", V.Bool false) ])));
  ]

(* ------------------------------------------------------------------ *)
(* executor corner cases                                                *)
(* ------------------------------------------------------------------ *)

let exec_tests =
  [
    Alcotest.test_case "scanning an empty table yields nothing" `Quick
      (fun () ->
        let file = SF.make ~name:"Z" ~cardinality:0 [ SF.column "Z" "x" ] in
        let table = { E.Table.file; schema = [| attr "Z" "x" |]; rows = [||] } in
        check_int "empty" 0
          (Array.length (Iterator.materialize (Iterator.scan table ~pred:P.True))));
    Alcotest.test_case "hash join applies residual conjuncts" `Quick (fun () ->
        let s1 = [| attr "L" "k"; attr "L" "v" |] in
        let s2 = [| attr "R" "k"; attr "R" "v" |] in
        let l =
          Iterator.of_array s1 [| [| V.Int 1; V.Int 5 |]; [| V.Int 1; V.Int 9 |] |]
        in
        let r =
          Iterator.of_array s2 [| [| V.Int 1; V.Int 7 |]; [| V.Int 1; V.Int 3 |] |]
        in
        let pred =
          P.And
            ( eq (attr "L" "k") (attr "R" "k"),
              P.Cmp (P.Lt, P.T_attr (attr "L" "v"), P.T_attr (attr "R" "v")) )
        in
        (* matches: (5,7) only — 9<7 and 9<3 and 5<3 fail *)
        check_int "one" 1
          (Array.length (Iterator.materialize (Iterator.hash_join l r ~pred))));
    Alcotest.test_case "merge join emits full equal-key groups" `Quick
      (fun () ->
        let s1 = [| attr "L" "k" |] and s2 = [| attr "R" "k" |] in
        let l = Iterator.of_array s1 [| [| V.Int 1 |]; [| V.Int 1 |]; [| V.Int 2 |] |] in
        let r = Iterator.of_array s2 [| [| V.Int 1 |]; [| V.Int 1 |]; [| V.Int 3 |] |] in
        let pred = eq (attr "L" "k") (attr "R" "k") in
        check_int "2x2 group" 4
          (Array.length (Iterator.materialize (Iterator.merge_join l r ~pred))));
    Alcotest.test_case "unnest passes scalar rows through" `Quick (fun () ->
        let s = [| attr "T" "xs" |] in
        let it =
          Iterator.unnest
            (Iterator.of_array s [| [| V.Int 3 |] |])
            ~attr:(attr "T" "xs")
        in
        check_int "passthrough" 1 (Array.length (Iterator.materialize it)));
    Alcotest.test_case "project of a missing attribute narrows the schema"
      `Quick (fun () ->
        let s = [| attr "T" "x" |] in
        let it =
          Iterator.project
            (Iterator.of_array s [| [| V.Int 3 |] |])
            ~attrs:[ attr "T" "x"; attr "T" "nope" ]
        in
        check_int "one column" 1 (Array.length it.Iterator.schema));
    Alcotest.test_case "nested loops handles an empty inner" `Quick (fun () ->
        let s1 = [| attr "L" "k" |] and s2 = [| attr "R" "k" |] in
        let l = Iterator.of_array s1 [| [| V.Int 1 |] |] in
        let r = Iterator.of_array s2 [||] in
        check_int "empty" 0
          (Array.length
             (Iterator.materialize
                (Iterator.nested_loops l r ~pred:(eq (attr "L" "k") (attr "R" "k"))))));
    Alcotest.test_case "compile rejects unknown algorithms and operators"
      `Quick (fun () ->
        let inst = W.Queries.instance W.Queries.Q1 ~joins:1 ~seed:1 in
        let db = E.Data_gen.database ~seed:1 inst.W.Queries.catalog in
        check "operator rejected" true
          (try
             ignore (E.Compile.execute db inst.W.Queries.expr);
             false
           with Invalid_argument _ -> true);
        let bogus =
          Prairie.Expr.algorithm "Quantum_join" D.empty [ Prairie.Expr.stored "C1" ]
        in
        check "unknown algorithm rejected" true
          (try
             ignore (E.Compile.execute db bogus);
             false
           with E.Compile.Unsupported _ -> true));
  ]

(* ------------------------------------------------------------------ *)
(* P2V warning paths                                                    *)
(* ------------------------------------------------------------------ *)

let b = Prairie_algebra.Build.trule
let _ = b

let merge_warning_tests =
  [
    Alcotest.test_case "interior enforcer deletion warns" `Quick (fun () ->
        (* build a rule whose RHS has SORT over a non-variable, non-root
           position: JOIN(?1,?2) ==> JOIN(SORT(RET'(?1)), ?2)-ish shape *)
        let open Prairie.Pattern in
        let t =
          Prairie.Trule.make ~name:"weird"
            ~lhs:(Pop ("JOIN", "D3", [ Pvar 1; Pvar 2 ]))
            ~rhs:
              (Tnode
                 ( "JOIN",
                   "D4",
                   [ Tnode ("SORT", "D5", [ Tnode ("SELECT", "D6", [ Tvar (1, None) ]) ]); Tvar (2, None) ]
                 ))
            ~post_test:
              [
                Prairie.Action.Assign_desc ("D4", Prairie.Action.Desc "D3");
                Prairie.Action.Assign_desc ("D6", Prairie.Action.Desc "D1");
                Prairie.Action.Assign_desc ("D5", Prairie.Action.Desc "D1");
              ]
            ()
        in
        let base = Rel.ruleset catalog in
        let rs = { base with Prairie.Ruleset.trules = t :: base.Prairie.Ruleset.trules } in
        let m = Prairie_p2v.Merge.merge rs in
        check "warned" true
          (List.exists
             (fun (w : Prairie.Diagnostic.t) ->
               String.equal w.Prairie.Diagnostic.code "P101"
               && contains_sub w.Prairie.Diagnostic.message "interior")
             m.Prairie_p2v.Merge.warnings));
  ]

(* ------------------------------------------------------------------ *)
(* explain                                                              *)
(* ------------------------------------------------------------------ *)

let explain_tests =
  [
    Alcotest.test_case "explain shows algorithms, parameters, costs" `Quick
      (fun () ->
        let inst = W.Queries.instance W.Queries.Q6 ~joins:1 ~seed:3 in
        let r = Opt.optimize (Opt.oodb_prairie inst.W.Queries.catalog) inst.W.Queries.expr in
        let plan = Option.get r.Opt.plan in
        let text = Explain.to_string plan in
        let contains needle = contains_sub text needle in
        check "cost shown" true (contains "cost=");
        check "rows shown" true (contains "rows=");
        check "a leaf table shown" true (contains "C1");
        let s = Explain.summary plan in
        check "summary mentions algorithms" true (String.length s > 10));
  ]

let budget_tests =
  [
    Alcotest.test_case "budgeted search still returns a valid plan" `Quick
      (fun () ->
        let inst = W.Queries.instance W.Queries.Q7 ~joins:2 ~seed:9 in
        let opt = Opt.oodb_prairie inst.W.Queries.catalog in
        let r = Opt.optimize ~group_budget:40 opt inst.W.Queries.expr in
        check "plan found" true (r.Opt.plan <> None);
        check "budget respected (within one exploration round)" true
          (Search.group_count r.Opt.search <= 80);
        check "budget reported" true (Search.budget_was_hit r.Opt.search));
    Alcotest.test_case "budgeted plans cost at least the optimum" `Quick
      (fun () ->
        let inst = W.Queries.instance W.Queries.Q5 ~joins:2 ~seed:9 in
        let opt = Opt.oodb_prairie inst.W.Queries.catalog in
        let full = Opt.optimize opt inst.W.Queries.expr in
        let capped = Opt.optimize ~group_budget:12 opt inst.W.Queries.expr in
        check "no better than optimum" true (capped.Opt.cost >= full.Opt.cost -. 1e-9);
        check "still executable" true
          (match capped.Opt.plan with
          | Some p -> Prairie.Expr.is_access_plan (Plan.to_expr p)
          | None -> false));
    Alcotest.test_case "a generous budget changes nothing" `Quick (fun () ->
        let inst = W.Queries.instance W.Queries.Q5 ~joins:2 ~seed:9 in
        let opt = Opt.oodb_prairie inst.W.Queries.catalog in
        let full = Opt.optimize opt inst.W.Queries.expr in
        let capped = Opt.optimize ~group_budget:1_000_000 opt inst.W.Queries.expr in
        Alcotest.(check (float 1e-9)) "same cost" full.Opt.cost capped.Opt.cost;
        check "not hit" false (Search.budget_was_hit capped.Opt.search));
  ]

(* relational plans (Merge_join / Nested_loops / Merge_sort / Null) also
   execute; the OODB end-to-end tests only cover the hash/pointer family *)
let relational_exec_tests =
  [
    Alcotest.test_case "relational plans execute and agree" `Quick (fun () ->
        let cat =
          Catalog.of_files
            [
              Rel.relation ~name:"R1" ~cardinality:300 ~indexes:[ "a" ] [ ("a", 20); ("b", 7) ];
              Rel.relation ~name:"R2" ~cardinality:120 [ ("a", 20) ];
            ]
        in
        let q =
          Rel.join cat ~pred:(eq (attr "R1" "a") (attr "R2" "a"))
            (Rel.ret cat "R1") (Rel.ret cat "R2")
        in
        let db = E.Data_gen.database ~seed:8 cat in
        let opt = Prairie_optimizers.Optimizers.relational cat in
        let r = Opt.optimize opt q in
        let plan = Option.get r.Prairie_optimizers.Optimizers.plan in
        let schema, rows = E.Compile.execute_plan db plan in
        check "rows" true (rows <> []);
        (* reference: nested-loop count over raw tables *)
        let t1 = E.Table.find db "R1" and t2 = E.Table.find db "R2" in
        let expected = ref 0 in
        Array.iter
          (fun a ->
            Array.iter
              (fun b ->
                let lookup x =
                  match E.Tuple.lookup_term t1.E.Table.schema a x with
                  | Some v -> Some v
                  | None -> E.Tuple.lookup_term t2.E.Table.schema b x
                in
                if P.eval ~lookup (eq (attr "R1" "a") (attr "R2" "a")) then incr expected)
              t2.E.Table.rows)
          t1.E.Table.rows;
        check_int "count" !expected (List.length rows);
        (* an ORDER BY plan executes sorted *)
        let sorted_q = Rel.sort cat ~order:(Prairie_value.Order.sorted_on (attr "R1" "b")) q in
        let r2 = Opt.optimize opt sorted_q in
        let plan2 = Option.get r2.Prairie_optimizers.Optimizers.plan in
        let schema2, rows2 = E.Compile.execute_plan db plan2 in
        let rec is_sorted = function
          | x :: (y :: _ as rest) ->
            E.Tuple.compare_by schema2 [ attr "R1" "b" ] x y <= 0 && is_sorted rest
          | _ -> true
        in
        check "sorted output" true (is_sorted rows2);
        check_int "same cardinality" (List.length rows) (List.length rows2);
        ignore schema);
  ]

let suites =
  [
    ("misc.search", search_tests);
    ("misc.relational_exec", relational_exec_tests);
    ("misc.budget", budget_tests);
    ("misc.executor", exec_tests);
    ("misc.p2v_warnings", merge_warning_tests);
    ("misc.explain", explain_tests);
  ]
