(* The whole-rule-set analyzer: planted-bug fixtures per P3xx code,
   explicit-roots reachability, pragma downgrades, the P008/P320
   boundary, determinism, and the shipped rule sets' cleanliness. *)

module Analysis = Prairie_analysis.Analysis
module Lint = Prairie_lint.Lint
module Dsl = Prairie_dsl
module D = Prairie.Diagnostic
module W = Prairie_workload

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let analyze ?config src = (Analysis.analyze_string ?config src).Analysis.diagnostics
let has = Support.has

(* Each case: (code, triggering source, corrected source); default roots. *)
let fixture_cases =
  [
    ( "P000",
      "ruleset broken",
      "ruleset fine;" );
    ( "P301",
      {|ruleset t; operator A(1); operator B(1); property num_records : INT;
        trule r: A(?1) : D2 ==> B(?1) : D3
        test { 1 > 2 } post { D3 = D2; }|},
      {|ruleset t; operator A(1); operator B(1); property num_records : INT;
        trule r: A(?1) : D2 ==> B(?1) : D3
        test { D2.num_records > 2 } post { D3 = D2; }|} );
    ( "P302",
      {|ruleset t; operator A(1); operator B(1);
        trule r: A(?1) : D2 ==> B(?1) : D3
        test { 1 < 2 } post { D3 = D2; }|},
      {|ruleset t; operator A(1); operator B(1);
        trule r: A(?1) : D2 ==> B(?1) : D3
        test { TRUE } post { D3 = D2; }|} );
    ( "P310",
      (* the index scan demands an order on its input, but there is no
         enforcer and no algorithm establishes one *)
      {|ruleset t; operator A(1); algorithm X(1);
        property tuple_order : ORDER; property cost : COST;
        irule r: A(?1) : D2 ==> X(?1 : D3) : D4
        pre { D4 = D2; D3 = D1; D3.tuple_order = D2.tuple_order; }
        post { D4.cost = D1.cost; }|},
      {|ruleset t; operator A(1); operator S(1);
        algorithm X(1); algorithm SortAlg(1);
        property tuple_order : ORDER; property cost : COST;
        irule r: A(?1) : D2 ==> X(?1 : D3) : D4
        pre { D4 = D2; D3 = D1; D3.tuple_order = D2.tuple_order; }
        post { D4.cost = D1.cost; }
        irule s_null: S(?1) : D2 ==> Null(?1 : D3) : D4
        pre { D4 = D2; D3.tuple_order = D2.tuple_order; }
        post { D4.cost = D1.cost; }
        irule s_sort: S(?1) : D2 ==> SortAlg(?1) : D3
        pre { D3 = D2; } post { D3.cost = D1.cost; }|} );
    ( "P311",
      {|ruleset t; operator A(1); algorithm X(1);
        property flavour : INT; property cost : COST;
        irule r: A(?1) : D2 ==> X(?1) : D3
        pre { D3 = D2; } post { D3.cost = 1; D3.flavour = 7; }|},
      {|ruleset t; operator A(1); algorithm X(1);
        property flavour : INT; property cost : COST;
        irule r: A(?1) : D2 ==> X(?1) : D3
        test { D2.flavour > 0 }
        pre { D3 = D2; } post { D3.cost = 1; D3.flavour = 7; }|} );
    ( "P320",
      (* r2 rewrites A(A(_)) exactly as the unguarded general rule r1
         rewrites any A(_): every redex of r2 is already covered *)
      {|ruleset t; operator A(1); operator B(1);
        trule r1: A(?1) : D2 ==> B(?1) : D3 post { D3 = D2; }
        trule r2: A(A(?1) : D4) : D5 ==> B(A(?1) : D6) : D7
        post { D7 = D5; D6 = D4; }|},
      {|ruleset t; operator A(1); operator B(1);
        trule r1: A(?1) : D2 ==> B(?1) : D3 post { D3 = D2; }|} );
    ( "P321",
      {|ruleset t; operator A(1); operator B(1); operator C(1);
        trule r1: A(?1) : D2 ==> B(?1) : D3 post { D3 = D2; }
        trule r2: A(?1) : D2 ==> C(?1) : D3 post { D3 = D2; }|},
      {|ruleset t; operator A(1); operator B(1); operator C(1);
        property num_records : INT;
        trule r1: A(?1) : D2 ==> B(?1) : D3 post { D3 = D2; }
        trule r2: A(?1) : D2 ==> C(?1) : D3
        test { D2.num_records > 10 } post { D3 = D2; }|} );
  ]

let fixture_tests = Support.fixture_tests ~run:analyze fixture_cases

(* P300 needs explicit roots: the default seeds the closure with every
   declared non-enforcer operator, which makes every LHS reachable. *)
let reachability_spec =
  {|ruleset t; operator A(1); operator B(1); operator C(1);
    algorithm X(1); property cost : COST; property num_records : INT;
    trule t1: A(?1) : D2 ==> B(?1) : D3
    test { D2.num_records > 0 } post { D3 = D2; }
    trule t2: C(?1) : D2 ==> B(?1) : D3
    test { D2.num_records > 0 } post { D3 = D2; }
    irule a_x: A(?1) : D2 ==> X(?1) : D3
    pre { D3 = D2; } post { D3.cost = 1; }
    irule b_x: B(?1) : D2 ==> X(?1) : D3
    pre { D3 = D2; } post { D3.cost = 1; }
    irule c_x: C(?1) : D2 ==> X(?1) : D3
    pre { D3 = D2; } post { D3.cost = 1; }|}

let reachability_tests =
  [
    Alcotest.test_case "P300 fires under explicit roots" `Quick (fun () ->
        let config = { Analysis.roots = [ "A" ] } in
        let r = Analysis.analyze_string ~config reachability_spec in
        check "P300 triggered" true (has "P300" r.Analysis.diagnostics);
        Alcotest.(check (list string))
          "closure" [ "A"; "B" ] r.Analysis.reachable;
        Alcotest.(check (list string))
          "unreachable rules" [ "t2" ] r.Analysis.unreachable_rules);
    Alcotest.test_case "default roots reach every declared operator" `Quick
      (fun () ->
        let r = Analysis.analyze_string reachability_spec in
        check "no P300" false (has "P300" r.Analysis.diagnostics);
        Alcotest.(check (list string))
          "closure" [ "A"; "B"; "C" ] r.Analysis.reachable);
    Alcotest.test_case "rule outputs extend the closure" `Quick (fun () ->
        (* B is not a root, but A ==> B makes it reachable, so t3 on B is
           live; C stays out, so t2 is flagged *)
        let config = { Analysis.roots = [ "A" ] } in
        let src =
          reachability_spec
          ^ {|
             trule t3: B(?1) : D2 ==> A(?1) : D3
             test { D2.num_records > 0 } post { D3 = D2; }|}
        in
        let r = Analysis.analyze_string ~config src in
        Alcotest.(check (list string))
          "only t2 unreachable" [ "t2" ] r.Analysis.unreachable_rules);
  ]

(* A P301-dead rule must also be the one Translate prunes. *)
let dead_rule_tests =
  [
    Alcotest.test_case "P301 dead rules match Translate's pruning" `Quick
      (fun () ->
        let src =
          {|ruleset t; operator A(1); operator B(1); algorithm X(1);
            property cost : COST; property num_records : INT;
            trule live: A(?1) : D2 ==> B(?1) : D3
            test { D2.num_records > 0 } post { D3 = D2; }
            trule dead: A(?1) : D2 ==> B(?1) : D3
            test { 2 < 1 } post { D3 = D2; }
            irule a_x: A(?1) : D2 ==> X(?1) : D3
            pre { D3 = D2; } post { D3.cost = 1; }
            irule b_x: B(?1) : D2 ==> X(?1) : D3
            pre { D3 = D2; } post { D3.cost = 1; }|}
        in
        let r = Analysis.analyze_string src in
        Alcotest.(check (list string)) "analysis" [ "dead" ] r.Analysis.dead_rules;
        let rs =
          Dsl.Elaborate.elaborate ~helpers:Prairie.Helper_env.builtins
            (Dsl.Parser.parse src)
        in
        let tr = Prairie_p2v.Translate.translate rs in
        Alcotest.(check (list string))
          "translate" [ "dead" ] tr.Prairie_p2v.Translate.dead_trans;
        check "volcano set keeps the live rule" true
          (List.exists
             (fun (t : Prairie_volcano.Rule.trans_rule) ->
               String.equal t.Prairie_volcano.Rule.tr_name "live")
             tr.Prairie_p2v.Translate.volcano.Prairie_volcano.Rule.rs_trans);
        check "volcano set drops the dead rule" false
          (List.exists
             (fun (t : Prairie_volcano.Rule.trans_rule) ->
               String.equal t.Prairie_volcano.Rule.tr_name "dead")
             tr.Prairie_p2v.Translate.volcano.Prairie_volcano.Rule.rs_trans));
  ]

(* The P008/P320 boundary: exact-shape duplicates are lint's P008 and NOT
   P320 (strictness requires a variable bound to a composite sub-pattern);
   strict subsumption is P320 and NOT P008 (the shapes differ). *)
let boundary_tests =
  [
    Alcotest.test_case "exact duplicates are P008, not P320" `Quick (fun () ->
        let src =
          {|ruleset t; operator A(1); operator B(1);
            trule r1: A(?1) : D2 ==> B(?1) : D3 post { D3 = D2; }
            trule r2: A(?1) : D2 ==> B(?1) : D3 post { D3 = D2; }|}
        in
        check "lint P008" true (has "P008" (Lint.lint_string src));
        check "no P320" false (has "P320" (analyze src)));
    Alcotest.test_case "strict subsumption is P320, not P008" `Quick (fun () ->
        let _, bad, _ =
          List.find (fun (c, _, _) -> String.equal c "P320") fixture_cases
        in
        check "analysis P320" true (has "P320" (analyze bad));
        check "no P008" false (has "P008" (Lint.lint_string bad)));
  ]

let pragma_tests =
  [
    Alcotest.test_case "pragmas downgrade P3xx warnings to info" `Quick
      (fun () ->
        let _, bad, _ =
          List.find (fun (c, _, _) -> String.equal c "P321") fixture_cases
        in
        let src = "// lint:allow P321 -- deliberate exploration fork\n" ^ bad in
        let ds = analyze src in
        check "still reported" true (has "P321" ds);
        check "as info" true
          (List.for_all (( = ) D.Info) (Support.severity_of "P321" ds)));
  ]

let catalogue_tests =
  [
    Alcotest.test_case "catalogue codes are unique, P000 or P3xx" `Quick
      (fun () ->
        let codes = List.map (fun (c, _, _) -> c) Analysis.catalogue in
        check_int "unique" (List.length codes)
          (List.length (List.sort_uniq String.compare codes));
        check "shape" true
          (List.for_all
             (fun c ->
               String.length c = 4
               && (String.equal c "P000" || String.sub c 0 2 = "P3"))
             codes));
    Alcotest.test_case "every fixture code is catalogued" `Quick (fun () ->
        let codes = List.map (fun (c, _, _) -> c) Analysis.catalogue in
        List.iter
          (fun (code, _, _) ->
            check (code ^ " catalogued") true (List.mem code codes))
          fixture_cases;
        check "P300 catalogued" true (List.mem "P300" codes));
  ]

let shipped_tests =
  [
    Alcotest.test_case "shipped rule files analyze clean" `Quick (fun () ->
        List.iter
          (fun path ->
            let r = Analysis.analyze_file path in
            let errors, warnings, _ = Analysis.summary r.Analysis.diagnostics in
            check_int (path ^ " errors") 0 errors;
            check_int (path ^ " warnings") 0 warnings;
            Alcotest.(check (list string))
              (path ^ " dead rules") [] r.Analysis.dead_rules;
            Alcotest.(check (list string))
              (path ^ " unreachable rules") [] r.Analysis.unreachable_rules)
          [ "../rules/relational.prairie"; "../rules/open_oodb.prairie" ]);
    Alcotest.test_case "the OODB critical pair is downgraded, not absent"
      `Quick (fun () ->
        let r = Analysis.analyze_file "../rules/open_oodb.prairie" in
        check "P321 visible" true (has "P321" r.Analysis.diagnostics);
        check "as info" true
          (List.for_all (( = ) D.Info)
             (Support.severity_of "P321" r.Analysis.diagnostics)));
    Alcotest.test_case "shipped property flow is closed" `Quick (fun () ->
        let r = Analysis.analyze_file "../rules/relational.prairie" in
        check "every required property is producible" true
          (List.for_all
             (fun p -> List.mem p r.Analysis.produced_physical)
             r.Analysis.required_physical));
  ]

let metrics_tests =
  [
    Alcotest.test_case "export_metrics publishes finding counters" `Quick
      (fun () ->
        let _, bad, _ =
          List.find (fun (c, _, _) -> String.equal c "P321") fixture_cases
        in
        let r = Analysis.analyze_string bad in
        let registry = Prairie_obs.Metrics.create () in
        Analysis.export_metrics registry r;
        let text = Prairie_obs.Metrics.to_prometheus registry in
        let contains sub =
          let n = String.length sub and m = String.length text in
          let rec go i =
            i + n <= m && (String.sub text i n = sub || go (i + 1))
          in
          go 0
        in
        check "findings counter" true (contains "prairie_analysis_findings_total");
        check "code label" true (contains "P321"));
  ]

(* Determinism: analysis is a pure function of the source — repeated runs
   agree exactly, reports are normalized, and the spec is not perturbed. *)
let oodb_instance = lazy (W.Queries.instance W.Queries.Q5 ~joins:2 ~seed:17)

let subset_ruleset mask =
  let inst = Lazy.force oodb_instance in
  let base = Prairie_algebra.Oodb.ruleset inst.W.Queries.catalog in
  let trules =
    List.filteri
      (fun i _ -> mask land (1 lsl (i mod 16)) <> 0 || i mod 7 = 0)
      base.Prairie.Ruleset.trules
  in
  { base with Prairie.Ruleset.trules }

let property_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"analysis is deterministic and pure" ~count:40
         QCheck2.Gen.(int_bound 65535)
         (fun mask ->
           let rs = subset_ruleset mask in
           let src = Dsl.Render.ruleset_to_string rs in
           let r1 = Analysis.analyze_string src in
           let r2 = Analysis.analyze_string src in
           r1 = r2
           && D.normalize r1.Analysis.diagnostics = r1.Analysis.diagnostics
           && Dsl.Render.ruleset_to_string rs = src));
  ]

let suites =
  [
    ("analysis.fixtures", fixture_tests);
    ("analysis.reachability", reachability_tests);
    ("analysis.dead_rules", dead_rule_tests);
    ("analysis.boundary", boundary_tests);
    ("analysis.pragmas", pragma_tests);
    ("analysis.catalogue", catalogue_tests);
    ("analysis.shipped", shipped_tests);
    ("analysis.metrics", metrics_tests);
    ("analysis.properties", property_tests);
  ]
