(* The parallel plan service: fingerprints, the LRU plan cache and the
   domain pool, checked against the sequential single-shot path. *)

module Opt = Prairie_optimizers.Optimizers
module Cache = Prairie_service.Plan_cache
module Pool = Prairie_service.Pool
module Plan = Prairie_volcano.Plan
module Search = Prairie_volcano.Search
module Expr = Prairie.Expr
module D = Prairie.Descriptor
module V = Prairie_value.Value
module W = Prairie_workload

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf = Alcotest.(check (float 1e-9))

let qtest name ?(count = 100) gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen prop)

(* One catalog and optimizer shared by every test: the vocabulary is small
   on purpose, so random requests collide and the fingerprint/cache paths
   actually trigger. *)
let catalog =
  W.Catalogs.make (W.Catalogs.default_spec ~classes:3 ~indexed:true ~seed:7)

let opt = lazy (Opt.oodb_prairie catalog)

let gen_request =
  QCheck2.Gen.(
    let* family = oneofl W.Expressions.[ E1; E2; E3 ] in
    let* joins = 1 -- 2 in
    return (Opt.request (W.Expressions.build family catalog ~joins)))

let digest served =
  match served with
  | Some p -> Prairie.Expr.fingerprint (Plan.to_expr p)
  | None -> ""

(* ------------------------------------------------------------------ *)
(* Fingerprints                                                        *)
(* ------------------------------------------------------------------ *)

(* random small operator trees over a tiny vocabulary (collisions likely) *)
let gen_expr =
  QCheck2.Gen.(
    let leaf =
      map
        (fun name -> Expr.stored ~desc:(D.of_list [ ("file", V.Str name) ]) name)
        (oneofl [ "F1"; "F2" ])
    in
    let desc = map (fun i -> D.of_list [ ("k", V.Int i) ]) (0 -- 1) in
    sized_size (0 -- 3) @@ fix (fun self n ->
        if n = 0 then leaf
        else
          oneof
            [
              leaf;
              map2 (fun d x -> Expr.operator "U" d [ x ]) desc (self (n - 1));
              map3
                (fun d x y -> Expr.operator "B" d [ x; y ])
                desc (self (n / 2)) (self (n / 2));
            ]))

let gen_required =
  QCheck2.Gen.(
    oneofl
      [ D.empty; D.of_list [ ("k", V.Int 1) ]; D.of_list [ ("k", V.Int 2) ] ])

let fingerprint_tests =
  [
    qtest "fingerprint equality coincides with structural equality"
      QCheck2.Gen.(pair (pair gen_expr gen_required) (pair gen_expr gen_required))
      (fun ((a, ra), (b, rb)) ->
        let fa = Expr.fingerprint ~required:ra a in
        let fb = Expr.fingerprint ~required:rb b in
        String.equal fa fb = (Expr.equal a b && D.equal ra rb));
    qtest "fingerprint ignores binding insertion order" gen_expr (fun e ->
        let d1 = D.of_list [ ("x", V.Int 1); ("y", V.Str "s") ] in
        let d2 = D.of_list [ ("y", V.Str "s"); ("x", V.Int 1) ] in
        String.equal
          (Expr.fingerprint (Expr.with_descriptor e d1))
          (Expr.fingerprint (Expr.with_descriptor e d2)));
    qtest "equal fingerprints imply identical optimized plan cost" ~count:40
      QCheck2.Gen.(pair gen_request gen_request)
      (fun (r1, r2) ->
        let o = Lazy.force opt in
        let fp r = Expr.fingerprint ~required:r.Opt.required r.Opt.expr in
        if String.equal (fp r1) (fp r2) then begin
          (* two independent searches, no shared state *)
          let a = Opt.optimize ~required:r1.Opt.required o r1.Opt.expr in
          let b = Opt.optimize ~required:r2.Opt.required o r2.Opt.expr in
          Float.equal a.Opt.cost b.Opt.cost
        end
        else true);
  ]

(* ------------------------------------------------------------------ *)
(* The LRU plan cache                                                  *)
(* ------------------------------------------------------------------ *)

let entry cost = { Cache.plan = None; cost; groups = 0; budget_hit = false }

let cache_tests =
  [
    Alcotest.test_case "find after add returns the entry" `Quick (fun () ->
        let c = Cache.create () in
        Cache.add c ~ruleset:"rs" ~fingerprint:"a" (entry 1.0);
        (match Cache.find c ~ruleset:"rs" ~fingerprint:"a" with
        | Some e -> checkf "cost" 1.0 e.Cache.cost
        | None -> Alcotest.fail "expected a hit");
        check "other ruleset misses" true
          (Cache.find c ~ruleset:"other" ~fingerprint:"a" = None));
    Alcotest.test_case "capacity evicts the least recently used" `Quick
      (fun () ->
        let c = Cache.create ~capacity:2 () in
        Cache.add c ~ruleset:"rs" ~fingerprint:"a" (entry 1.0);
        Cache.add c ~ruleset:"rs" ~fingerprint:"b" (entry 2.0);
        (* touch "a" so "b" becomes the eviction candidate *)
        ignore (Cache.find c ~ruleset:"rs" ~fingerprint:"a");
        Cache.add c ~ruleset:"rs" ~fingerprint:"c" (entry 3.0);
        checki "still 2 entries" 2 (Cache.length c);
        check "a survives" true
          (Cache.find c ~ruleset:"rs" ~fingerprint:"a" <> None);
        check "b evicted" true
          (Cache.find c ~ruleset:"rs" ~fingerprint:"b" = None);
        check "c present" true
          (Cache.find c ~ruleset:"rs" ~fingerprint:"c" <> None);
        checki "one eviction" 1 (Cache.stats c).Cache.evictions);
    Alcotest.test_case "invalidate drops exactly one rule set" `Quick
      (fun () ->
        let c = Cache.create () in
        Cache.add c ~ruleset:"rs1" ~fingerprint:"a" (entry 1.0);
        Cache.add c ~ruleset:"rs1" ~fingerprint:"b" (entry 2.0);
        Cache.add c ~ruleset:"rs2" ~fingerprint:"a" (entry 3.0);
        Cache.invalidate c ~ruleset:"rs1";
        checki "one entry left" 1 (Cache.length c);
        check "rs2 survives" true
          (Cache.find c ~ruleset:"rs2" ~fingerprint:"a" <> None);
        checki "two invalidations" 2 (Cache.stats c).Cache.invalidations);
    Alcotest.test_case "clear empties but keeps counters" `Quick (fun () ->
        let c = Cache.create () in
        Cache.add c ~ruleset:"rs" ~fingerprint:"a" (entry 1.0);
        ignore (Cache.find c ~ruleset:"rs" ~fingerprint:"a");
        Cache.clear c;
        checki "empty" 0 (Cache.length c);
        checki "hits kept" 1 (Cache.stats c).Cache.hits);
    Alcotest.test_case "hit rate counts lookups" `Quick (fun () ->
        let c = Cache.create () in
        Cache.add c ~ruleset:"rs" ~fingerprint:"a" (entry 1.0);
        ignore (Cache.find c ~ruleset:"rs" ~fingerprint:"a");
        ignore (Cache.find c ~ruleset:"rs" ~fingerprint:"missing");
        Alcotest.(check (float 1e-6)) "50%" 0.5 (Cache.hit_rate c));
    Alcotest.test_case "concurrent add/find keeps the cache coherent" `Quick
      (fun () ->
        let c = Cache.create ~capacity:64 () in
        let worker d () =
          for i = 0 to 199 do
            let fp = Printf.sprintf "fp%d" (i mod 80) in
            (match Cache.find c ~ruleset:"rs" ~fingerprint:fp with
            | Some _ -> ()
            | None ->
              Cache.add c ~ruleset:"rs" ~fingerprint:fp
                (entry (float_of_int (d + i))));
            if i mod 50 = 0 then Cache.invalidate c ~ruleset:"other"
          done
        in
        let domains = List.init 3 (fun d -> Domain.spawn (worker d)) in
        worker 3 ();
        List.iter Domain.join domains;
        check "length within capacity" true (Cache.length c <= 64));
  ]

(* ------------------------------------------------------------------ *)
(* The domain pool                                                     *)
(* ------------------------------------------------------------------ *)

let pool_tests =
  [
    Alcotest.test_case "map preserves order and results" `Quick (fun () ->
        let xs = List.init 100 Fun.id in
        Alcotest.(check (list int))
          "same as List.map" (List.map succ xs)
          (Pool.map ~jobs:4 succ xs));
    Alcotest.test_case "jobs:1 and the empty batch degenerate" `Quick
      (fun () ->
        Alcotest.(check (list int)) "empty" [] (Pool.map ~jobs:4 succ []);
        Alcotest.(check (list int)) "seq" [ 2 ] (Pool.map ~jobs:1 succ [ 1 ]));
    Alcotest.test_case "exceptions propagate to the caller" `Quick (fun () ->
        check "raises" true
          (try
             ignore
               (Pool.map ~jobs:4
                  (fun i -> if i = 17 then failwith "boom" else i)
                  (List.init 64 Fun.id));
             false
           with Failure _ -> true));
    Alcotest.test_case "an on_item raise stops the run and leaks no domain"
      `Quick (fun () ->
        (* [on_item] is caller code (telemetry hooks): if it raises, the
           exception must surface from [map] itself, and — because the
           joins are unconditional — no spawned domain may keep consuming
           items in the background afterwards *)
        let consumed = Atomic.make 0 in
        let raised =
          try
            ignore
              (Pool.map ~jobs:4
                 ~on_item:(fun ~worker ->
                   if worker = 0 then failwith "hook boom")
                 (fun i ->
                   Unix.sleepf 0.01;
                   Atomic.incr consumed;
                   i)
                 (List.init 32 Fun.id));
            false
          with Failure _ -> true
        in
        check "hook exception surfaced" true raised;
        (* all domains are joined when [map] returns, so the count is
           final: any background consumption would show up here *)
        let settled = Atomic.get consumed in
        Unix.sleepf 0.2;
        Alcotest.(check int)
          "no work after return" settled (Atomic.get consumed);
        check "run stopped early" true (settled < 32));
  ]

(* ------------------------------------------------------------------ *)
(* serve: the batched entry point                                      *)
(* ------------------------------------------------------------------ *)

let serve_tests =
  [
    qtest "a cache hit returns a plan bit-identical to a fresh search"
      ~count:15 gen_request
      (fun req ->
        let o = Lazy.force opt in
        let cache = Cache.create () in
        ignore (Opt.serve ~jobs:1 ~cache o [ req ]);
        match Opt.serve ~jobs:1 ~cache o [ req ] with
        | [ warm ] ->
          let fresh = Opt.optimize ~required:req.Opt.required o req.Opt.expr in
          warm.Opt.cache_hit
          && Float.equal warm.Opt.cost fresh.Opt.cost
          && String.equal (digest warm.Opt.plan) (digest fresh.Opt.plan)
        | _ -> false);
    qtest "a parallel pool matches the sequential path" ~count:8
      QCheck2.Gen.(list_size (1 -- 6) gen_request)
      (fun batch ->
        let o = Lazy.force opt in
        let seq = Opt.serve ~jobs:1 o batch in
        let par = Opt.serve ~jobs:4 o batch in
        List.for_all2
          (fun (a : Opt.served) (b : Opt.served) ->
            String.equal a.Opt.fingerprint b.Opt.fingerprint
            && Float.equal a.Opt.cost b.Opt.cost
            && String.equal (digest a.Opt.plan) (digest b.Opt.plan))
          seq par);
    Alcotest.test_case "serve answers match Opt.optimize per request" `Quick
      (fun () ->
        let o = Lazy.force opt in
        let batch =
          [
            Opt.request (W.Expressions.e1 catalog ~joins:2);
            Opt.request (W.Expressions.e2 catalog ~joins:1);
            Opt.request (W.Expressions.e1 catalog ~joins:2);
          ]
        in
        let served = Opt.serve ~jobs:2 o batch in
        List.iter2
          (fun req (s : Opt.served) ->
            let r = Opt.optimize o req.Opt.expr in
            checkf "cost" r.Opt.cost s.Opt.cost)
          batch served);
    Alcotest.test_case "duplicate fingerprints are searched once" `Quick
      (fun () ->
        let o = Lazy.force opt in
        let req = Opt.request (W.Expressions.e1 catalog ~joins:1) in
        let served = Opt.serve ~jobs:1 o [ req; req; req ] in
        checki "one fresh search" 1
          (List.length (List.filter (fun s -> not s.Opt.cache_hit) served)));
    Alcotest.test_case "cold pass misses, warm pass hits" `Quick (fun () ->
        let o = Lazy.force opt in
        let cache = Cache.create () in
        let batch =
          [
            Opt.request (W.Expressions.e1 catalog ~joins:1);
            Opt.request (W.Expressions.e2 catalog ~joins:1);
          ]
        in
        let cold = Opt.serve ~jobs:1 ~cache o batch in
        checki "no cold hits" 0
          (List.length (List.filter (fun s -> s.Opt.cache_hit) cold));
        let warm = Opt.serve ~jobs:1 ~cache o batch in
        checki "all warm hits" 2
          (List.length (List.filter (fun s -> s.Opt.cache_hit) warm));
        check "cache hit rate 50%" true (Float.equal (Cache.hit_rate cache) 0.5));
    Alcotest.test_case "per-request budget degrades inside the pool" `Quick
      (fun () ->
        let o = Lazy.force opt in
        let req = Opt.request (W.Expressions.e3 catalog ~joins:2) in
        match Opt.serve ~jobs:2 ~group_budget:20 o [ req ] with
        | [ s ] ->
          check "degraded" true s.Opt.budget_hit;
          check "still planned" true (s.Opt.plan <> None)
        | _ -> Alcotest.fail "one request, one answer");
    Alcotest.test_case "invalidation forces re-optimization" `Quick (fun () ->
        let o = Lazy.force opt in
        let cache = Cache.create () in
        let batch = [ Opt.request (W.Expressions.e1 catalog ~joins:1) ] in
        ignore (Opt.serve ~jobs:1 ~cache o batch);
        Cache.invalidate cache ~ruleset:o.Opt.name;
        let again = Opt.serve ~jobs:1 ~cache o batch in
        checki "fresh search after invalidation" 0
          (List.length (List.filter (fun s -> s.Opt.cache_hit) again)));
  ]

let suites =
  [
    ("service.fingerprint", fingerprint_tests);
    ("service.cache", cache_tests);
    ("service.pool", pool_tests);
    ("service.serve", serve_tests);
  ]
