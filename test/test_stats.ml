(* Search.Stats: the counters behind Table 5 and the bench sections.
   Regression tests for [reset] (every field, scalar and set-valued) and
   for the [pp] rendering the service console prints. *)

module Stats = Prairie_volcano.Stats

let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

(* A value with every field distinct and non-zero, so a missed field in
   [reset] cannot hide behind a zero or a twin. *)
let populated () =
  let t = Stats.create () in
  t.Stats.groups_created <- 1;
  t.Stats.groups_merged <- 2;
  t.Stats.lexprs_created <- 3;
  t.Stats.lexpr_duplicates <- 4;
  t.Stats.trans_applications <- 5;
  t.Stats.impl_firings <- 6;
  t.Stats.enforcer_firings <- 7;
  t.Stats.memo_hits <- 8;
  t.Stats.optimize_calls <- 9;
  t.Stats.pruned <- 10;
  t.Stats.winner_probes <- 11;
  t.Stats.winner_hits <- 12;
  Stats.record_trans_match t "t1";
  Stats.record_trans_match t "t2";
  Stats.record_impl_match t "i1";
  Stats.record_trans_applied t "t1";
  Stats.record_impl_applied t "i1";
  t

let test_reset_scalars () =
  let t = populated () in
  Stats.reset t;
  checki "groups_created" 0 t.Stats.groups_created;
  checki "groups_merged" 0 t.Stats.groups_merged;
  checki "lexprs_created" 0 t.Stats.lexprs_created;
  checki "lexpr_duplicates" 0 t.Stats.lexpr_duplicates;
  checki "trans_applications" 0 t.Stats.trans_applications;
  checki "impl_firings" 0 t.Stats.impl_firings;
  checki "enforcer_firings" 0 t.Stats.enforcer_firings;
  checki "memo_hits" 0 t.Stats.memo_hits;
  checki "optimize_calls" 0 t.Stats.optimize_calls;
  checki "pruned" 0 t.Stats.pruned;
  checki "winner_probes" 0 t.Stats.winner_probes;
  checki "winner_hits" 0 t.Stats.winner_hits

let test_reset_rule_sets () =
  let t = populated () in
  checki "trans matched before" 2 (Stats.trans_matched_count t);
  Stats.reset t;
  checki "trans_matched" 0 (Stats.trans_matched_count t);
  checki "impl_matched" 0 (Stats.impl_matched_count t);
  checki "trans_applied" 0 (Stats.trans_applied_count t);
  checki "impl_applied" 0 (Stats.impl_applied_count t);
  Alcotest.(check (list string)) "names gone" [] (Stats.trans_matched_names t);
  (* the value is reusable after reset *)
  Stats.record_trans_match t "t9";
  checki "records again" 1 (Stats.trans_matched_count t);
  Alcotest.(check (list string)) "fresh names" [ "t9" ]
    (Stats.trans_matched_names t)

let test_rule_sets_distinct () =
  let t = Stats.create () in
  Stats.record_trans_match t "r";
  Stats.record_trans_match t "r";
  Stats.record_trans_match t "r";
  checki "set semantics, not a counter" 1 (Stats.trans_matched_count t);
  (* the four sets are independent *)
  checki "impl untouched" 0 (Stats.impl_matched_count t);
  checki "applied untouched" 0 (Stats.trans_applied_count t);
  Stats.record_impl_match t "r";
  checki "same name in two sets" 1 (Stats.impl_matched_count t)

(* The exact rendering: the bench tables and the service console parse by
   eye, so the shape is part of the interface. *)
let test_pp_stability () =
  let t = populated () in
  checks "pp format"
    "groups: 1 (merged 2)\n\
     logical expressions: 3 (dups 4)\n\
     trans applications: 5 (distinct matched 2)\n\
     impl firings: 6 (distinct matched 1)\n\
     enforcer firings: 7\n\
     memo hits: 8\n\
     optimize calls: 9\n\
     pruned: 10\n\
     winner probes: 11 (hits 12)"
    (Format.asprintf "%a" Stats.pp t);
  Stats.reset t;
  checks "pp of a fresh value"
    "groups: 0 (merged 0)\n\
     logical expressions: 0 (dups 0)\n\
     trans applications: 0 (distinct matched 0)\n\
     impl firings: 0 (distinct matched 0)\n\
     enforcer firings: 0\n\
     memo hits: 0\n\
     optimize calls: 0\n\
     pruned: 0\n\
     winner probes: 0 (hits 0)"
    (Format.asprintf "%a" Stats.pp t)

let suites =
  [
    ( "stats",
      [
        Alcotest.test_case "reset clears every scalar" `Quick
          test_reset_scalars;
        Alcotest.test_case "reset clears the rule sets" `Quick
          test_reset_rule_sets;
        Alcotest.test_case "rule sets are sets" `Quick test_rule_sets_distinct;
        Alcotest.test_case "pp output is stable" `Quick test_pp_stability;
      ] );
  ]
