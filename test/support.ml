(* Shared helpers for the diagnostic test suites (lint, verify): code
   queries over diagnostic lists and the planted-bug fixture runner. *)

module D = Prairie.Diagnostic

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let has code ds = List.exists (fun (d : D.t) -> String.equal d.D.code code) ds

let severity_of code ds =
  List.filter_map
    (fun (d : D.t) ->
      if String.equal d.D.code code then Some d.D.severity else None)
    ds

(* Planted-bug fixtures: each case is (code, triggering source, corrected
   source); [run] maps a source to its diagnostics.  The corrected spec
   may have unrelated findings; it must not have the case's code. *)
let fixture_tests ~run cases =
  List.map
    (fun (code, bad, good) ->
      Alcotest.test_case (code ^ " fires and is fixable") `Quick (fun () ->
          check (code ^ " triggered") true (has code (run bad));
          check (code ^ " absent after fix") false (has code (run good))))
    cases
