(* The span profiler and the serve telemetry endpoint: well-formedness
   of the span tree (strict nesting, monotonic clocks, self-time
   accounting), the exact aggregate table, the Chrome trace and
   Prometheus quantile exports, the slow-query log, and an end-to-end
   HTTP round trip against the telemetry server. *)

module Span = Prairie_obs.Span
module Trace = Prairie_obs.Trace
module Metrics = Prairie_obs.Metrics
module Slow_log = Prairie_obs.Slow_log
module Telemetry = Prairie_service.Telemetry
module Opt = Prairie_optimizers.Optimizers
module Explain = Prairie_volcano.Explain
module W = Prairie_workload

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let qtest name ?(count = 50) gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen prop)

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

(* A structural JSON well-formedness scan: brackets balance outside
   strings, strings terminate, and the document is a single value.  Not
   a parser, but catches every escaping/nesting mistake an exporter can
   realistically make. *)
let json_well_formed s =
  let n = String.length s in
  let depth = ref 0 and i = ref 0 and ok = ref true in
  let in_string = ref false and escaped = ref false in
  while !ok && !i < n do
    let c = s.[!i] in
    (if !in_string then
       if !escaped then escaped := false
       else if c = '\\' then escaped := true
       else if c = '"' then in_string := false
       else if Char.code c < 0x20 then ok := false
       else ()
     else
       match c with
       | '"' -> in_string := true
       | '{' | '[' -> incr depth
       | '}' | ']' ->
         decr depth;
         if !depth < 0 then ok := false
       | _ -> ());
    incr i
  done;
  !ok && (not !in_string) && !depth = 0

(* ------------------------------------------------------------------ *)
(* The span sink                                                       *)
(* ------------------------------------------------------------------ *)

let test_span_basics () =
  let t = Span.create ~capacity:16 () in
  let root = Span.enter t Span.Optimize in
  let child = Span.enter t ~rule:"join_commute" ~parent:root Span.Apply in
  Span.exit t child;
  let child2 = Span.enter t ~rule:"join_assoc" ~parent:root Span.Match in
  Span.exit t child2;
  Span.exit t root;
  checki "seq" 3 (Span.seq t);
  checki "length" 3 (Span.length t);
  checki "dropped" 0 (Span.dropped t);
  checki "roots" 1 (Span.root_count t);
  let rs = Span.records t in
  (* records appear in completion order: children before the root *)
  (match rs with
  | [ a; b; c ] ->
    check "child first" true (a.Span.phase = Span.Apply);
    checks "rule attribution" "join_commute"
      (Option.value ~default:"-" a.Span.rule);
    checki "child parent id" c.Span.id a.Span.parent;
    checki "root is a root" (-1) c.Span.parent;
    check "root self + children = total" true
      Int64.(
        equal c.Span.dur_ns
          (add c.Span.self_ns (add a.Span.dur_ns b.Span.dur_ns)))
  | _ -> Alcotest.fail "expected 3 records");
  (* exact aggregates: one row per (phase, rule) *)
  let prof = Span.profile t in
  checki "aggregate rows" 3 (List.length prof);
  Span.clear t;
  checki "cleared" 0 (Span.length t)

let test_span_wraparound () =
  let t = Span.create ~capacity:4 () in
  for _ = 1 to 10 do
    let h = Span.enter t ~rule:"r" Span.Cost in
    Span.exit t h
  done;
  checki "seq counts everything" 10 (Span.seq t);
  checki "ring keeps capacity" 4 (Span.length t);
  checki "dropped" 6 (Span.dropped t);
  (* the aggregate table is exact despite the drops *)
  match Span.profile t with
  | [ a ] ->
    checki "aggregate count survives wrap" 10 a.Span.a_count;
    checki "root count survives wrap" 10 (Span.root_count t)
  | l -> Alcotest.failf "expected 1 aggregate row, got %d" (List.length l)

(* Run a randomly generated nesting script and check tree invariants
   over the emitted records.  The script is a forest of small trees;
   each node opens a span, recurses, then closes. *)
type script = Node of int * script list

let script_gen =
  QCheck2.Gen.(
    let rec tree depth =
      if depth = 0 then map (fun p -> Node (p, [])) (0 -- 6)
      else
        map2
          (fun p kids -> Node (p, kids))
          (0 -- 6)
          (list_size (0 -- 3) (tree (depth - 1)))
    in
    list_size (1 -- 4) (tree 3))

let phase_of_int i =
  List.nth Span.all_phases (i mod List.length Span.all_phases)

let run_script t forest =
  let rec go parent (Node (p, kids)) =
    let h = Span.enter t ?parent ~rule:"r" (phase_of_int p) in
    List.iter (go (Some h)) kids;
    Span.exit t h
  in
  List.iter (go None) forest

let prop_span_well_formed =
  qtest "span records are well-formed" ~count:100 script_gen (fun forest ->
      let t = Span.create ~capacity:4096 () in
      run_script t forest;
      let rs = Span.records t in
      let by_id = Hashtbl.create 64 in
      List.iter (fun (r : Span.record) -> Hashtbl.replace by_id r.Span.id r) rs;
      List.for_all
        (fun (r : Span.record) ->
          let end_ns = Int64.add r.Span.start_ns r.Span.dur_ns in
          (* positive durations from the strictly monotonic clock *)
          Int64.compare r.Span.dur_ns 0L > 0
          && Int64.compare r.Span.self_ns 0L >= 0
          && Int64.compare r.Span.self_ns r.Span.dur_ns <= 0
          &&
          match Hashtbl.find_opt by_id r.Span.parent with
          | None -> r.Span.parent = -1
          | Some (p : Span.record) ->
            (* strict nesting: parent opened before, closed after *)
            Int64.compare p.Span.start_ns r.Span.start_ns < 0
            && Int64.compare end_ns (Int64.add p.Span.start_ns p.Span.dur_ns) < 0)
        rs
      &&
      (* children sum <= parent duration, per parent *)
      let child_sum = Hashtbl.create 64 in
      List.iter
        (fun (r : Span.record) ->
          if r.Span.parent >= 0 then
            Hashtbl.replace child_sum r.Span.parent
              (Int64.add r.Span.dur_ns
                 (Option.value ~default:0L
                    (Hashtbl.find_opt child_sum r.Span.parent))))
        rs;
      List.for_all
        (fun (r : Span.record) ->
          match Hashtbl.find_opt child_sum r.Span.id with
          | None -> true
          | Some sum ->
            Int64.compare sum r.Span.dur_ns <= 0
            && Int64.equal r.Span.self_ns (Int64.sub r.Span.dur_ns sum))
        rs)

(* Telescoping identity: every span's self time is its duration minus
   its children's, so summing self over the exact aggregate table must
   reproduce the rooted total exactly — no tolerance needed. *)
let test_profile_self_sums_to_root_total () =
  let inst = W.Queries.instance W.Queries.Q5 ~joins:2 ~seed:101 in
  let opt = Opt.oodb_prairie inst.W.Queries.catalog in
  let sink = Span.create ~capacity:256 () in
  (* small capacity on purpose: aggregates must stay exact through drops *)
  ignore (Opt.optimize ~spans:sink opt inst.W.Queries.expr);
  check "spans recorded" true (Span.seq sink > 100);
  check "ring dropped some" true (Span.dropped sink > 0);
  checki "one root" 1 (Span.root_count sink);
  let self_sum =
    List.fold_left
      (fun acc a -> Int64.add acc a.Span.a_self_ns)
      0L (Span.profile sink)
  in
  check "sum(self) = rooted total" true
    (Int64.equal self_sum (Span.root_total_ns sink))

let test_profile_total_close_to_wall () =
  let inst = W.Queries.instance W.Queries.Q7 ~joins:2 ~seed:101 in
  let opt = Opt.oodb_prairie inst.W.Queries.catalog in
  let sink = Span.create () in
  let t0 = Unix.gettimeofday () in
  ignore (Opt.optimize ~spans:sink opt inst.W.Queries.expr);
  let wall_ns = (Unix.gettimeofday () -. t0) *. 1e9 in
  let rooted = Int64.to_float (Span.root_total_ns sink) in
  (* the root span excludes only query preparation and plan extraction;
     the acceptance bound is 10%, test generously at 30% for CI noise *)
  check "rooted total within 30% of wall" true
    (Float.abs (rooted -. wall_ns) < 0.30 *. wall_ns);
  (* the rendered profile mentions the hot rules *)
  let s = Explain.profile_to_string sink in
  check "profile has header" true (contains s "span profile:");
  check "profile has phase column" true (contains s "apply");
  check "profile attributes rules" true (contains s "join")

let test_spans_are_pure () =
  let inst = W.Queries.instance W.Queries.Q5 ~joins:2 ~seed:101 in
  let opt = Opt.oodb_prairie inst.W.Queries.catalog in
  let plain = Opt.optimize opt inst.W.Queries.expr in
  let sink = Span.create () in
  let profiled = Opt.optimize ~spans:sink opt inst.W.Queries.expr in
  check "same cost with spans attached" true
    (Float.equal plain.Opt.cost profiled.Opt.cost);
  checks "same plan"
    (match plain.Opt.plan with
    | Some p -> Explain.summary p
    | None -> "-")
    (match profiled.Opt.plan with
    | Some p -> Explain.summary p
    | None -> "-")

let test_disabled_path_is_cheap () =
  (* the disabled fast path is one Option check; a million no-op
     enter/exit pairs must be far under any per-event budget.  The bound
     is deliberately loose (CI machines throttle) — it exists to catch
     an accidental allocation or clock read on the None path. *)
  let t0 = Unix.gettimeofday () in
  for _ = 1 to 1_000_000 do
    let h = Span.enter_opt None ~parent:None Span.Match in
    Span.exit_opt None (Sys.opaque_identity h)
  done;
  let dt = Unix.gettimeofday () -. t0 in
  check "1M disabled enter/exit pairs under 0.5s" true (dt < 0.5)

(* ------------------------------------------------------------------ *)
(* Chrome trace export                                                 *)
(* ------------------------------------------------------------------ *)

let test_chrome_export_shape () =
  let t = Span.create () in
  let root = Span.enter t Span.Optimize in
  let c = Span.enter t ~rule:"select_push \"quoted\"" ~parent:root Span.Apply in
  Span.exit t c;
  Span.exit t root;
  let s = Span.to_chrome t in
  check "well-formed json" true (json_well_formed s);
  check "trace events array" true (contains s "\"traceEvents\"");
  check "complete events" true (contains s "\"ph\":\"X\"");
  check "process metadata" true (contains s "\"process_name\"");
  check "rule escaped into args" true (contains s "\\\"quoted\\\"");
  check "microsecond fields" true (contains s "\"dur\":")

let test_chrome_of_trace_shape () =
  let inst = W.Queries.instance W.Queries.Q1 ~joins:2 ~seed:101 in
  let opt = Opt.oodb_prairie inst.W.Queries.catalog in
  let sink = Trace.create () in
  ignore (Opt.optimize ~trace:sink opt inst.W.Queries.expr);
  let s = Span.chrome_of_trace sink in
  check "well-formed json" true (json_well_formed s);
  check "instant events" true (contains s "\"ph\":\"i\"");
  check "original events under args" true (contains s "\"event\":")

(* ------------------------------------------------------------------ *)
(* Quantile summaries                                                  *)
(* ------------------------------------------------------------------ *)

let test_quantile_estimation () =
  let m = Metrics.create () in
  let h = Metrics.histogram m ~buckets:[ 1.0; 2.0; 4.0; 8.0 ] "q_test" in
  check "empty quantile is nan" true (Float.is_nan (Metrics.quantile h 0.5));
  (* 100 observations of 1.5: everything sits in the (1, 2] bucket *)
  for _ = 1 to 100 do
    Metrics.observe h 1.5
  done;
  let p50 = Metrics.quantile h 0.5 in
  check "p50 inside the owning bucket" true (p50 > 1.0 && p50 <= 2.0);
  check "p0 is the lower edge" true (Metrics.quantile h 0.0 <= 1.0);
  (* beyond the largest finite bound: degrade to that bound *)
  Metrics.observe h 100.0;
  check "overflow degrades to top bound" true
    (Float.equal (Metrics.quantile h 0.999) 8.0);
  Alcotest.check_raises "q out of range" (Invalid_argument "Metrics.quantile")
    (fun () -> ignore (Metrics.quantile h 1.5))

let test_prometheus_quantile_lines () =
  let m = Metrics.create () in
  let h =
    Metrics.histogram m ~help:"latency" ~labels:[ ("ruleset", "oodb") ]
      "prairie_serve_search_seconds"
  in
  Metrics.observe h 0.002;
  Metrics.observe h 0.004;
  let s = Metrics.to_prometheus m in
  List.iter
    (fun (suffix, _) ->
      let name = "prairie_serve_search_seconds_" ^ suffix in
      check (name ^ " sample") true
        (contains s (name ^ "{ruleset=\"oodb\"} "));
      check (name ^ " typed as gauge") true
        (contains s ("# TYPE " ^ name ^ " gauge")))
    Metrics.summary_quantiles;
  (* empty histograms must not emit quantile series *)
  let m2 = Metrics.create () in
  ignore (Metrics.histogram m2 "empty_h");
  check "no quantiles for empty histogram" false
    (contains (Metrics.to_prometheus m2) "empty_h_p50")

let test_jsonl_quantile_fields () =
  let m = Metrics.create () in
  let h = Metrics.histogram m "h" in
  Metrics.observe h 0.01;
  let s = Metrics.to_jsonl m in
  check "jsonl carries p50" true (contains s "\"p50\":");
  check "jsonl carries p99" true (contains s "\"p99\":");
  check "jsonl well-formed" true
    (List.for_all json_well_formed
       (List.filter
          (fun l -> String.length l > 0)
          (String.split_on_char '\n' s)))

(* ------------------------------------------------------------------ *)
(* The slow-query log                                                  *)
(* ------------------------------------------------------------------ *)

let observe log ~seconds =
  Slow_log.observe log ~ruleset:"oodb" ~fingerprint:"abc" ~seconds ~cost:1.0
    ~groups:10 ~budget_hit:false ~cache_hit:false

let test_slow_log_threshold () =
  let log = Slow_log.create ~capacity:4 ~threshold:0.1 () in
  observe log ~seconds:0.05;
  checki "below threshold ignored" 0 (Slow_log.length log);
  observe log ~seconds:0.1;
  observe log ~seconds:0.25;
  checki "recorded at/above threshold" 2 (Slow_log.length log);
  for i = 1 to 5 do
    observe log ~seconds:(0.3 +. float_of_int i)
  done;
  checki "bounded ring" 4 (Slow_log.length log);
  checki "dropped" 3 (Slow_log.dropped log);
  let s = Slow_log.to_json log in
  check "to_json well-formed" true (json_well_formed s);
  check "json threshold" true (contains s "\"threshold_s\":0.1");
  check "json entries" true (contains s "\"fingerprint\":\"abc\"");
  Alcotest.check_raises "negative threshold"
    (Invalid_argument "Slow_log.create: negative threshold") (fun () ->
      ignore (Slow_log.create ~threshold:(-1.0) ()))

let test_slow_log_from_optimize () =
  let inst = W.Queries.instance W.Queries.Q5 ~joins:2 ~seed:101 in
  let opt = Opt.oodb_prairie inst.W.Queries.catalog in
  (* threshold 0: every search is "slow" and must be recorded with its
     real fingerprint and group count *)
  let log = Slow_log.create ~threshold:0.0 () in
  ignore (Opt.optimize ~slow_log:log opt inst.W.Queries.expr);
  checki "optimize recorded" 1 (Slow_log.length log);
  (match Slow_log.entries log with
  | [ e ] ->
    checks "ruleset name" "oodb-prairie" e.Slow_log.ruleset;
    check "groups recorded" true (e.Slow_log.groups > 0);
    check "fingerprint recorded" true (String.length e.Slow_log.fingerprint > 0)
  | _ -> Alcotest.fail "expected one entry");
  (* a high threshold records nothing for this tiny query *)
  let quiet = Slow_log.create ~threshold:3600.0 () in
  ignore (Opt.optimize ~slow_log:quiet opt inst.W.Queries.expr);
  checki "fast search not recorded" 0 (Slow_log.length quiet)

let test_slow_log_from_serve () =
  let cat =
    W.Catalogs.make (W.Catalogs.default_spec ~classes:3 ~indexed:true ~seed:101)
  in
  let opt = Opt.oodb_prairie cat in
  let reqs =
    List.map
      (fun joins -> Opt.request (W.Expressions.e1 cat ~joins))
      [ 1; 2; 1; 2 ]
  in
  let log = Slow_log.create ~threshold:0.0 () in
  let served = Opt.serve ~jobs:2 ~slow_log:log opt reqs in
  checki "served everything" 4 (List.length served);
  (* batch dedup: only the distinct searches run and get logged *)
  checki "one entry per fresh search" 2 (Slow_log.length log)

(* ------------------------------------------------------------------ *)
(* The telemetry endpoint, end to end                                  *)
(* ------------------------------------------------------------------ *)

let http_get port path =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect sock
        (Unix.ADDR_INET (Unix.inet_addr_of_string "127.0.0.1", port));
      let req = Printf.sprintf "GET %s HTTP/1.0\r\n\r\n" path in
      ignore (Unix.write_substring sock req 0 (String.length req));
      let buf = Bytes.create 4096 in
      let acc = Buffer.create 256 in
      let rec drain () =
        match Unix.read sock buf 0 (Bytes.length buf) with
        | 0 -> ()
        | n ->
          Buffer.add_subbytes acc buf 0 n;
          drain ()
      in
      drain ();
      Buffer.contents acc)

let test_telemetry_endpoint () =
  let m = Metrics.create () in
  let h =
    Metrics.histogram m ~labels:[ ("ruleset", "oodb") ]
      "prairie_serve_search_seconds"
  in
  Metrics.observe h 0.002;
  let log = Slow_log.create ~threshold:0.0 () in
  observe log ~seconds:0.5;
  let server = Telemetry.start ~metrics:m ~slow_log:log ~port:0 () in
  Fun.protect
    ~finally:(fun () -> Telemetry.stop server)
    (fun () ->
      let port = Telemetry.port server in
      check "ephemeral port resolved" true (port > 0);
      let health = http_get port "/healthz" in
      check "healthz 200" true (contains health "HTTP/1.0 200 OK");
      check "healthz body" true (contains health "ok\n");
      let metrics_resp = http_get port "/metrics" in
      check "metrics 200" true (contains metrics_resp "HTTP/1.0 200 OK");
      check "metrics has histogram" true
        (contains metrics_resp "prairie_serve_search_seconds_count");
      check "metrics has p99 summary" true
        (contains metrics_resp "prairie_serve_search_seconds_p99");
      let tracez = http_get port "/tracez" in
      check "tracez 200" true (contains tracez "HTTP/1.0 200 OK");
      check "tracez json" true (contains tracez "\"fingerprint\":\"abc\"");
      let missing = http_get port "/nope" in
      check "unknown route 404" true (contains missing "HTTP/1.0 404");
      (* sequential accept loop: it must survive many requests *)
      for _ = 1 to 5 do
        ignore (http_get port "/healthz")
      done;
      check "still alive" true (contains (http_get port "/healthz") "200 OK"));
  (* stop is idempotent and frees the port *)
  Telemetry.stop server

let test_telemetry_405 () =
  let server = Telemetry.start ~port:0 () in
  Fun.protect
    ~finally:(fun () -> Telemetry.stop server)
    (fun () ->
      let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
        (fun () ->
          Unix.connect sock
            (Unix.ADDR_INET
               (Unix.inet_addr_of_string "127.0.0.1", Telemetry.port server));
          let req = "POST /metrics HTTP/1.0\r\n\r\n" in
          ignore (Unix.write_substring sock req 0 (String.length req));
          let buf = Bytes.create 1024 in
          let n = Unix.read sock buf 0 1024 in
          check "post rejected" true
            (contains (Bytes.sub_string buf 0 n) "HTTP/1.0 405"));
      (* an endpoint with no registry returns an empty 200, not an error *)
      let resp = http_get (Telemetry.port server) "/metrics" in
      check "no registry still 200" true (contains resp "HTTP/1.0 200 OK"))

(* ------------------------------------------------------------------ *)
(* Concurrent emitters                                                 *)
(* ------------------------------------------------------------------ *)

(* Several domains hammer one shared sink; the sink mutex must keep the
   sequence counter, the ring, the id allocator and the aggregate table
   exact — any lost update shows up as a count mismatch or a duplicate
   id in the retained window. *)
let test_span_concurrent_emitters () =
  let sink = Span.create ~capacity:256 () in
  let domains = 4 and per_domain = 200 in
  let emit () =
    for _ = 1 to per_domain do
      let root = Span.enter sink Span.Optimize in
      let child = Span.enter sink ~rule:"join-assoc" ~parent:root Span.Match in
      Span.exit sink child;
      Span.exit sink root
    done
  in
  let ds = List.init (domains - 1) (fun _ -> Domain.spawn emit) in
  emit ();
  List.iter Domain.join ds;
  let total = domains * per_domain * 2 in
  checki "seq" total (Span.seq sink);
  checki "length" 256 (Span.length sink);
  checki "dropped" (total - 256) (Span.dropped sink);
  checki "root count" (domains * per_domain) (Span.root_count sink);
  let rs = Span.records sink in
  checki "records" 256 (List.length rs);
  let ids = List.sort_uniq Int.compare (List.map (fun r -> r.Span.id) rs) in
  checki "distinct ids" 256 (List.length ids);
  check "durations non-negative" true
    (List.for_all (fun r -> Int64.compare r.Span.dur_ns 0L >= 0) rs);
  (* the aggregate table is exact even though the ring dropped *)
  let aggs = Span.profile sink in
  let count = List.fold_left (fun acc a -> acc + a.Span.a_count) 0 aggs in
  checki "agg count" total count;
  let match_agg = List.find (fun a -> a.Span.a_phase = Span.Match) aggs in
  checki "match count" (domains * per_domain) match_agg.Span.a_count;
  check "chrome export well-formed" true
    (json_well_formed (Span.to_chrome sink))

let test_trace_concurrent_emitters () =
  let sink = Trace.create ~capacity:128 () in
  let domains = 4 and per_domain = 500 in
  let emit () =
    for i = 1 to per_domain do
      Trace.emit sink (Trace.Memo_hit { gid = i })
    done
  in
  let ds = List.init (domains - 1) (fun _ -> Domain.spawn emit) in
  emit ();
  List.iter Domain.join ds;
  let total = domains * per_domain in
  checki "seq" total (Trace.seq sink);
  checki "length" 128 (Trace.length sink);
  checki "dropped" (total - 128) (Trace.dropped sink);
  let evs = Trace.events sink in
  checki "events" 128 (List.length evs);
  List.iteri (fun i (s, _) -> checki "contiguous seq" (total - 128 + i) s) evs;
  check "jsonl well-formed" true
    (String.split_on_char '\n' (Trace.to_jsonl sink)
    |> List.for_all (fun line -> line = "" || json_well_formed line))

(* A client that connects and never sends a byte must not wedge the
   sequential accept loop: the per-client deadline drops it and the next
   connection (a real health check) is served. *)
let test_telemetry_hung_client () =
  let server = Telemetry.start ~client_timeout:0.3 ~port:0 () in
  Fun.protect
    ~finally:(fun () -> Telemetry.stop server)
    (fun () ->
      let hung = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () -> try Unix.close hung with Unix.Unix_error _ -> ())
        (fun () ->
          Unix.connect hung
            (Unix.ADDR_INET
               (Unix.inet_addr_of_string "127.0.0.1", Telemetry.port server));
          (* give accept a moment to pick the hung connection up first *)
          Unix.sleepf 0.05;
          let t0 = Unix.gettimeofday () in
          let resp = http_get (Telemetry.port server) "/healthz" in
          let elapsed = Unix.gettimeofday () -. t0 in
          check "healthz still answers" true (contains resp "ok");
          (* bounded by the hung client's deadline plus slack, far below
             the old unbounded (or 5 s per-read) wait *)
          check "answered within the deadline budget" true (elapsed < 2.0)))

let suites =
  [
    ( "spans.sink",
      [
        Alcotest.test_case "enter/exit basics" `Quick test_span_basics;
        Alcotest.test_case "ring wraparound keeps aggregates exact" `Quick
          test_span_wraparound;
        prop_span_well_formed;
        Alcotest.test_case "disabled path is one Option check" `Quick
          test_disabled_path_is_cheap;
      ] );
    ( "spans.concurrency",
      [
        Alcotest.test_case "span sink survives concurrent emitters" `Quick
          test_span_concurrent_emitters;
        Alcotest.test_case "trace sink survives concurrent emitters" `Quick
          test_trace_concurrent_emitters;
      ] );
    ( "spans.engine",
      [
        Alcotest.test_case "sum(self) = rooted total, exactly" `Quick
          test_profile_self_sums_to_root_total;
        Alcotest.test_case "rooted total ~ wall time (Q7)" `Quick
          test_profile_total_close_to_wall;
        Alcotest.test_case "spans never change the result" `Quick
          test_spans_are_pure;
      ] );
    ( "spans.export",
      [
        Alcotest.test_case "chrome trace shape" `Quick test_chrome_export_shape;
        Alcotest.test_case "chrome view of an event trace" `Quick
          test_chrome_of_trace_shape;
        Alcotest.test_case "quantile estimation" `Quick test_quantile_estimation;
        Alcotest.test_case "prometheus p50/p90/p99 lines" `Quick
          test_prometheus_quantile_lines;
        Alcotest.test_case "jsonl quantile fields" `Quick
          test_jsonl_quantile_fields;
      ] );
    ( "spans.slowlog",
      [
        Alcotest.test_case "threshold and bounded ring" `Quick
          test_slow_log_threshold;
        Alcotest.test_case "recorded from optimize" `Quick
          test_slow_log_from_optimize;
        Alcotest.test_case "recorded from serve workers" `Quick
          test_slow_log_from_serve;
      ] );
    ( "spans.telemetry",
      [
        Alcotest.test_case "endpoint round trip" `Quick test_telemetry_endpoint;
        Alcotest.test_case "405 and registry-less metrics" `Quick
          test_telemetry_405;
        Alcotest.test_case "hung client cannot block /healthz" `Quick
          test_telemetry_hung_client;
      ] );
  ]
