(* The Volcano search engine, checked against the naive oracle. *)

module Search = Prairie_volcano.Search
module Plan = Prairie_volcano.Plan
module Stats = Prairie_volcano.Stats
module Naive = Prairie.Naive
module Expr = Prairie.Expr
module D = Prairie.Descriptor
module V = Prairie_value.Value
module O = Prairie_value.Order
module P = Prairie_value.Predicate
module A = Prairie_value.Attribute
module Rel = Prairie_algebra.Relational
module Catalog = Prairie_catalog.Catalog
module Rng = Prairie_util.Rng

let check = Alcotest.(check bool)
let checkf = Alcotest.(check (float 1e-6))
let attr o n = A.make ~owner:o ~name:n
let eq a b = P.Cmp (P.Eq, P.T_attr a, P.T_attr b)

(* random small relational catalog + 2-way query *)
let random_setup seed =
  let rng = Rng.create seed in
  let card () = Rng.in_range rng 10 2000 in
  let idx = Rng.bool rng in
  let catalog =
    Catalog.of_files
      [
        Rel.relation ~name:"R1" ~cardinality:(card ())
          ~indexes:(if idx then [ "a" ] else [])
          [ ("a", Rng.in_range rng 2 200); ("b", 50) ];
        Rel.relation ~name:"R2" ~cardinality:(card ()) [ ("a", 100); ("c", 20) ];
      ]
  in
  let pred = eq (attr "R1" "a") (attr "R2" "a") in
  let sel =
    if Rng.bool rng then P.Cmp (P.Eq, P.T_attr (attr "R1" "a"), P.T_int 1)
    else P.True
  in
  let q =
    Rel.join catalog ~pred (Rel.ret ~pred:sel catalog "R1") (Rel.ret catalog "R2")
  in
  (catalog, q)

let volcano_of catalog =
  (Prairie_p2v.Translate.translate (Rel.ruleset catalog)).Prairie_p2v.Translate.volcano

let optimize ?pruning ?(required = D.empty) catalog q =
  let ctx = Search.create ?pruning (volcano_of catalog) in
  (Search.optimize ~required ctx q, ctx)

let basic_tests =
  [
    Alcotest.test_case "finds a plan for a two-way join" `Quick (fun () ->
        let catalog, q = random_setup 1 in
        let plan, _ = optimize catalog q in
        check "some plan" true (plan <> None));
    Alcotest.test_case "memo hits on re-optimization" `Quick (fun () ->
        let catalog, q = random_setup 2 in
        let ctx = Search.create (volcano_of catalog) in
        ignore (Search.optimize ctx q);
        let hits_before = (Search.stats ctx).Stats.memo_hits in
        ignore (Search.optimize ctx q);
        check "more hits" true ((Search.stats ctx).Stats.memo_hits > hits_before));
    Alcotest.test_case "unsatisfiable requirement yields no plan" `Quick
      (fun () ->
        let catalog, q = random_setup 3 in
        (* requiring an order that no enforcer property covers: use a bogus
           physical property name via a descriptor the rule set does not
           know -- restrict_physical drops it, so instead require an order
           on an attribute; this IS satisfiable via Merge_sort, so check
           the opposite: it finds a (more expensive) plan. *)
        let required =
          D.of_list [ ("tuple_order", V.Order (O.sorted_on (attr "R1" "b"))) ]
        in
        let plan, _ = optimize ~required catalog q in
        check "satisfiable via enforcer" true (plan <> None));
    Alcotest.test_case "plan cost equals its descriptor cost" `Quick (fun () ->
        let catalog, q = random_setup 4 in
        match fst (optimize catalog q) with
        | Some p -> checkf "cost" (Plan.cost p) (D.cost (Plan.descriptor p))
        | None -> Alcotest.fail "no plan");
    Alcotest.test_case "group count grows with join count" `Quick (fun () ->
        let catalog =
          Catalog.of_files
            [
              Rel.relation ~name:"R1" ~cardinality:100 [ ("a", 10) ];
              Rel.relation ~name:"R2" ~cardinality:100 [ ("a", 10); ("b", 10) ];
              Rel.relation ~name:"R3" ~cardinality:100 [ ("b", 10) ];
            ]
        in
        let q2 =
          Rel.join catalog ~pred:(eq (attr "R1" "a") (attr "R2" "a"))
            (Rel.ret catalog "R1") (Rel.ret catalog "R2")
        in
        let q3 =
          Rel.join catalog ~pred:(eq (attr "R2" "b") (attr "R3" "b")) q2
            (Rel.ret catalog "R3")
        in
        let _, ctx2 = optimize catalog q2 in
        let _, ctx3 = optimize catalog q3 in
        check "monotone" true (Search.group_count ctx3 > Search.group_count ctx2));
  ]

(* The central soundness property: Volcano's best equals the exhaustive
   oracle's best.  Volcano plans have no Null nodes (enforcer-operators are
   implicit), so costs are compared, not shapes. *)
let oracle_agreement seed =
  let catalog, q = random_setup seed in
  let ruleset = Rel.ruleset catalog in
  let naive = Naive.best_plan ruleset ~required:D.empty q in
  let volcano, _ = optimize catalog q in
  match (naive, volcano) with
  | Some n, Some p -> Float.abs (n.Naive.cost -. Plan.cost p) < 1e-6
  | None, None -> true
  | Some _, None | None, Some _ -> false

let oracle_agreement_ordered seed =
  let catalog, q = random_setup seed in
  let ruleset = Rel.ruleset catalog in
  let required =
    D.of_list [ ("tuple_order", V.Order (O.sorted_on (attr "R1" "b"))) ]
  in
  let naive = Naive.best_plan ruleset ~required q in
  let volcano, _ = optimize ~required catalog q in
  match (naive, volcano) with
  | Some n, Some p -> Float.abs (n.Naive.cost -. Plan.cost p) < 1e-6
  | None, None -> true
  | Some _, None | None, Some _ -> false

let pruning_equivalence seed =
  let catalog, q = random_setup seed in
  let with_p, _ = optimize ~pruning:true catalog q in
  let without_p, _ = optimize ~pruning:false catalog q in
  match (with_p, without_p) with
  | Some a, Some b -> Float.abs (Plan.cost a -. Plan.cost b) < 1e-9
  | None, None -> true
  | Some _, None | None, Some _ -> false

(* The worklist explorer's contract: `Worklist and `Rescan exploration are
   bit-for-bit equivalent — same plan (by canonical fingerprint), same cost,
   same memo shape — on any rule set and query.  The worklist only changes
   which members each fixpoint round re-examines, never which rules fire. *)
module Memo = Prairie_volcano.Memo

let run_exploration ?required catalog q exploration =
  let ctx = Search.create ~exploration (volcano_of catalog) in
  (Search.optimize ?required ctx q, ctx)

let exploration_equivalence ?required seed =
  let catalog, q = random_setup seed in
  let pw, cw = run_exploration ?required catalog q `Worklist in
  let pr, cr = run_exploration ?required catalog q `Rescan in
  Search.group_count cw = Search.group_count cr
  && Memo.lexpr_count (Search.memo cw) = Memo.lexpr_count (Search.memo cr)
  &&
  match (pw, pr) with
  | Some a, Some b ->
    Float.equal (Plan.cost a) (Plan.cost b)
    && String.equal
         (Expr.fingerprint (Plan.to_expr a))
         (Expr.fingerprint (Plan.to_expr b))
  | None, None -> true
  | Some _, None | None, Some _ -> false

let exploration_equivalence_ordered seed =
  let required =
    D.of_list [ ("tuple_order", V.Order (O.sorted_on (attr "R1" "b"))) ]
  in
  exploration_equivalence ~required seed

(* The parallel explorer's contract: any jobs count is byte-identical to
   the sequential engine — same cost, same canonical plan fingerprint,
   same memo shape and same rule-application statistics.  Speculative
   matching only precomputes what the sequential commit order would have
   computed; invalidated tasks replay inline. *)
let parallel_equivalence ?required seed =
  let catalog, q = random_setup seed in
  let run jobs =
    let ctx = Search.create ~jobs (volcano_of catalog) in
    (Search.optimize ?required ctx q, ctx)
  in
  let p1, c1 = run 1 in
  List.for_all
    (fun jobs ->
      let pj, cj = run jobs in
      Search.group_count c1 = Search.group_count cj
      && Memo.lexpr_count (Search.memo c1) = Memo.lexpr_count (Search.memo cj)
      && Stats.trans_applied_count (Search.stats c1)
         = Stats.trans_applied_count (Search.stats cj)
      &&
      match (p1, pj) with
      | Some a, Some b ->
        Float.equal (Plan.cost a) (Plan.cost b)
        && String.equal
             (Expr.fingerprint (Plan.to_expr a))
             (Expr.fingerprint (Plan.to_expr b))
      | None, None -> true
      | Some _, None | None, Some _ -> false)
    [ 2; 4 ]

let parallel_equivalence_ordered seed =
  let required =
    D.of_list [ ("tuple_order", V.Order (O.sorted_on (attr "R1" "b"))) ]
  in
  parallel_equivalence ~required seed

(* The match index's contract: indexed exploration skips exactly the
   (lexpr, rule) pairs whose match would bind nothing, so every
   observable — matches, applications (by name, not just count), memo
   shape, cost, canonical plan — is byte-identical with the index on or
   off. *)
let match_index_equivalence ?required seed =
  let catalog, q = random_setup seed in
  let run match_index =
    let ctx = Search.create ~match_index (volcano_of catalog) in
    (Search.optimize ?required ctx q, ctx)
  in
  let pi, ci = run true in
  let pf, cf = run false in
  Search.group_count ci = Search.group_count cf
  && Memo.lexpr_count (Search.memo ci) = Memo.lexpr_count (Search.memo cf)
  && Stats.trans_matched_count (Search.stats ci)
     = Stats.trans_matched_count (Search.stats cf)
  && Stats.trans_applied_names (Search.stats ci)
     = Stats.trans_applied_names (Search.stats cf)
  && Stats.impl_applied_names (Search.stats ci)
     = Stats.impl_applied_names (Search.stats cf)
  &&
  match (pi, pf) with
  | Some a, Some b ->
    Float.equal (Plan.cost a) (Plan.cost b)
    && String.equal
         (Expr.fingerprint (Plan.to_expr a))
         (Expr.fingerprint (Plan.to_expr b))
  | None, None -> true
  | Some _, None | None, Some _ -> false

let match_index_equivalence_ordered seed =
  let required =
    D.of_list [ ("tuple_order", V.Order (O.sorted_on (attr "R1" "b"))) ]
  in
  match_index_equivalence ~required seed

let qtest name prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name ~count:40 QCheck2.Gen.(0 -- 10_000) prop)

let property_tests =
  [
    qtest "volcano cost equals the exhaustive oracle" oracle_agreement;
    qtest "volcano cost equals the oracle under a required order"
      oracle_agreement_ordered;
    qtest "branch-and-bound pruning never changes the answer" pruning_equivalence;
    qtest "worklist and rescan exploration are bit-for-bit equivalent"
      (fun seed -> exploration_equivalence seed);
    qtest "worklist equals rescan under a required order"
      exploration_equivalence_ordered;
    qtest "parallel search (jobs 2 and 4) is byte-identical to sequential"
      (fun seed -> parallel_equivalence seed);
    qtest "parallel search equals sequential under a required order"
      parallel_equivalence_ordered;
    qtest "the match index is byte-identical to trying every rule"
      (fun seed -> match_index_equivalence seed);
    qtest "the match index equals the full scan under a required order"
      match_index_equivalence_ordered;
  ]

(* Deterministic coverage for the two search knobs: the group-budget
   degradation path and the pruning toggle. *)

module W = Prairie_workload
module Opt = Prairie_optimizers.Optimizers

let knob_tests =
  [
    Alcotest.test_case "group budget degrades but still yields a plan" `Quick
      (fun () ->
        let inst = W.Queries.instance W.Queries.Q5 ~joins:2 ~seed:101 in
        let opt = Opt.oodb_prairie inst.W.Queries.catalog in
        let expr, required = opt.Opt.prepare inst.W.Queries.expr in
        let budgeted = Search.create ~group_budget:10 opt.Opt.volcano in
        let plan = Search.optimize ~required budgeted expr in
        check "budget was hit" true (Search.budget_was_hit budgeted);
        check "a plan still exists" true (plan <> None);
        (match plan with
        | Some p ->
          check "the plan is executable (a pure access plan)" true
            (Expr.is_access_plan (Plan.to_expr p));
          check "its cost is finite" true (Float.is_finite (Plan.cost p))
        | None -> ());
        let unbudgeted = Search.create opt.Opt.volcano in
        ignore (Search.optimize ~required unbudgeted expr);
        check "the capped memo is no larger than the full search's" true
          (Search.group_count budgeted <= Search.group_count unbudgeted));
    Alcotest.test_case "no budget means budget_was_hit is false" `Quick
      (fun () ->
        let inst = W.Queries.instance W.Queries.Q1 ~joins:2 ~seed:101 in
        let opt = Opt.oodb_prairie inst.W.Queries.catalog in
        let expr, required = opt.Opt.prepare inst.W.Queries.expr in
        let ctx = Search.create opt.Opt.volcano in
        ignore (Search.optimize ~required ctx expr);
        check "not hit" false (Search.budget_was_hit ctx));
    Alcotest.test_case "budgeted cost is no better than the optimum" `Quick
      (fun () ->
        let inst = W.Queries.instance W.Queries.Q5 ~joins:2 ~seed:101 in
        let opt = Opt.oodb_prairie inst.W.Queries.catalog in
        let best = Opt.optimize opt inst.W.Queries.expr in
        let degraded = Opt.optimize ~group_budget:20 opt inst.W.Queries.expr in
        check "optimum <= degraded" true
          (best.Opt.cost <= degraded.Opt.cost +. 1e-9));
    Alcotest.test_case "pruning:false matches pruning:true (relational)" `Quick
      (fun () ->
        List.iter
          (fun seed ->
            let catalog, q = random_setup seed in
            let on, _ = optimize ~pruning:true catalog q in
            let off, _ = optimize ~pruning:false catalog q in
            match (on, off) with
            | Some a, Some b -> checkf "same best cost" (Plan.cost a) (Plan.cost b)
            | None, None -> ()
            | _ -> Alcotest.fail "pruning changed plan existence")
          [ 11; 22; 33; 44; 55 ]);
    Alcotest.test_case "worklist equals rescan on the OODB rule set" `Quick
      (fun () ->
        List.iter
          (fun (q, joins) ->
            let inst = W.Queries.instance q ~joins ~seed:101 in
            let opt = Opt.oodb_prairie inst.W.Queries.catalog in
            let expr, required = opt.Opt.prepare inst.W.Queries.expr in
            let run exploration =
              let ctx = Search.create ~exploration opt.Opt.volcano in
              (Search.optimize ~required ctx expr, ctx)
            in
            let pw, cw = run `Worklist in
            let pr, cr = run `Rescan in
            Alcotest.(check int)
              "same group count" (Search.group_count cr)
              (Search.group_count cw);
            match (pw, pr) with
            | Some a, Some b ->
              checkf "same cost" (Plan.cost a) (Plan.cost b);
              Alcotest.(check string)
                "same plan"
                (Expr.fingerprint (Plan.to_expr b))
                (Expr.fingerprint (Plan.to_expr a))
            | None, None -> ()
            | _ -> Alcotest.fail "exploration mode changed plan existence")
          [ (W.Queries.Q1, 2); (W.Queries.Q3, 1); (W.Queries.Q5, 2) ]);
    Alcotest.test_case "match index equals full scan on the OODB rule set"
      `Quick (fun () ->
        List.iter
          (fun (q, joins) ->
            let inst = W.Queries.instance q ~joins ~seed:101 in
            let opt = Opt.oodb_prairie inst.W.Queries.catalog in
            let expr, required = opt.Opt.prepare inst.W.Queries.expr in
            let run match_index =
              let ctx = Search.create ~match_index opt.Opt.volcano in
              (Search.optimize ~required ctx expr, ctx)
            in
            let pi, ci = run true in
            let pf, cf = run false in
            Alcotest.(check int)
              "same group count" (Search.group_count cf)
              (Search.group_count ci);
            Alcotest.(check (list string))
              "same applied rules"
              (Stats.trans_applied_names (Search.stats cf))
              (Stats.trans_applied_names (Search.stats ci));
            match (pi, pf) with
            | Some a, Some b ->
              checkf "same cost" (Plan.cost a) (Plan.cost b);
              Alcotest.(check string)
                "same plan"
                (Expr.fingerprint (Plan.to_expr b))
                (Expr.fingerprint (Plan.to_expr a))
            | None, None -> ()
            | _ -> Alcotest.fail "match index changed plan existence")
          [ (W.Queries.Q1, 2); (W.Queries.Q3, 1); (W.Queries.Q5, 2) ]);
    Alcotest.test_case "the match index never drops a rule" `Quick (fun () ->
        (* every trans rule must be reachable through the index under its
           own LHS root: the bucket for an operator-rooted rule, the
           wildcard list (served for both stored files and operators with
           no bucket) for a variable-rooted one — with its rs_trans
           position intact, since that id keys the memo's tried table *)
        let module Rule = Prairie_volcano.Rule in
        List.iter
          (fun rs ->
            List.iteri
              (fun i (tr : Rule.trans_rule) ->
                let root = Prairie.Pattern.root_operator tr.Rule.tr_lhs in
                let candidates = Rule.trans_rules_for rs root in
                check
                  (rs.Rule.rs_name ^ "/" ^ tr.Rule.tr_name ^ " indexed")
                  true
                  (List.exists
                     (fun (j, (tr' : Rule.trans_rule)) ->
                       j = i && String.equal tr'.Rule.tr_name tr.Rule.tr_name)
                     candidates))
              rs.Rule.rs_trans)
          [
            volcano_of (fst (random_setup 7));
            (Opt.oodb_prairie
               (W.Queries.instance W.Queries.Q5 ~joins:2 ~seed:101)
                 .W.Queries.catalog)
              .Opt.volcano;
          ]);
    Alcotest.test_case "pruning:false matches pruning:true (OODB Q1/Q3)" `Quick
      (fun () ->
        List.iter
          (fun (q, joins) ->
            let inst = W.Queries.instance q ~joins ~seed:101 in
            let opt = Opt.oodb_prairie inst.W.Queries.catalog in
            let on = Opt.optimize ~pruning:true opt inst.W.Queries.expr in
            let off = Opt.optimize ~pruning:false opt inst.W.Queries.expr in
            checkf "same best cost" on.Opt.cost off.Opt.cost)
          [ (W.Queries.Q1, 2); (W.Queries.Q3, 1) ]);
  ]

let suites =
  [
    ("search.basic", basic_tests);
    ("search.oracle", property_tests);
    ("search.knobs", knob_tests);
  ]
