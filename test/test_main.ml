(* Aggregates every suite into one alcotest binary: `dune runtest`. *)

let () =
  Alcotest.run "prairie"
    (Test_value.suites @ Test_catalog.suites @ Test_descriptor.suites
   @ Test_pattern.suites @ Test_eval.suites @ Test_rules.suites
   @ Test_naive.suites @ Test_memo.suites @ Test_search.suites
   @ Test_p2v.suites @ Test_oodb.suites @ Test_dsl.suites
   @ Test_executor.suites @ Test_workload.suites @ Test_bottom_up.suites
   @ Test_query.suites @ Test_helpers.suites @ Test_combine.suites
   @ Test_misc.suites @ Test_genrules.suites @ Test_unnest.suites
   @ Test_star.suites @ Test_distributed.suites @ Test_properties.suites
   @ Test_translate_pieces.suites @ Test_aggregates.suites
   @ Test_service.suites @ Test_stats.suites @ Test_obs.suites
   @ Test_spans.suites @ Test_lint.suites @ Test_analysis.suites
   @ Test_verify.suites)
