(* The benchmark harness: regenerates every table and figure of the paper's
   evaluation (§4).  Run with no arguments for everything, or name sections:

     dune exec bench/main.exe -- table5 fig10 fig14
     dune exec bench/main.exe -- --full      (wider sweeps)
     dune exec bench/main.exe -- --search-jobs 2 fig13   (parallel search)

   Sections: table1 table2 table34 table5 fig10 fig11 fig12 fig13 fig14
             rules relational star strategies distributed ablations
             service obs parallel bechamel *)

module W = Prairie_workload
module Opt = Prairie_optimizers.Optimizers
module Search = Prairie_volcano.Search
module Stats = Prairie_volcano.Stats
module P2v = Prairie_p2v
module Rel = Prairie_algebra.Relational
module S = Support
module Obs = Prairie_obs

let full = ref false

(* Registry behind the --metrics FILE flag; sections that can self-report
   (currently [service] and [obs]) feed it, and the driver dumps it in
   Prometheus text format after the run. *)
let metrics : Obs.Metrics.t option ref = ref None

(* ------------------------------------------------------------------ *)
(* Table 1: operators, algorithms and additional parameters            *)
(* ------------------------------------------------------------------ *)

let table1 () =
  S.header "Table 1: operators and algorithms (relational algebra of Sec. 2)";
  let rows =
    [
      ("JOIN(S1, S2)", "join streams S1, S2", "join_predicate, tuple_order",
       "Nested_loops, Merge_join (via JOPR)");
      ("RET(F)", "retrieve file F", "selection_predicate, tuple_order",
       "File_scan, Index_scan");
      ("SORT(S1)", "sort stream S1", "tuple_order", "Merge_sort, Null");
    ]
  in
  Printf.printf "  %-14s %-24s %-38s %s\n" "Operator" "Description"
    "Additional parameters" "Algorithms";
  List.iter
    (fun (o, d, p, a) -> Printf.printf "  %-14s %-24s %-38s %s\n" o d p a)
    rows;
  S.subheader "Open OODB algebra (Sec. 4.3)";
  let cat = W.Catalogs.make (W.Catalogs.default_spec ~classes:2 ~indexed:true ~seed:1) in
  let rs = Prairie_algebra.Oodb.ruleset cat in
  Printf.printf "  operators:  %s\n" (String.concat ", " rs.Prairie.Ruleset.operators);
  Printf.printf "  algorithms: %s\n" (String.concat ", " rs.Prairie.Ruleset.algorithms)

(* ------------------------------------------------------------------ *)
(* Table 2: descriptor properties                                       *)
(* ------------------------------------------------------------------ *)

let table2 () =
  S.header "Table 2: properties of nodes in an operator tree (live schema)";
  let descriptions =
    [
      ("join_predicate", "join predicate for JOIN");
      ("selection_predicate", "selection predicate for RET/SELECT");
      ("tuple_order", "tuple order of the stream, DONT_CARE if none");
      ("num_records", "number of tuples of the stream");
      ("tuple_size", "size of an individual tuple");
      ("projected_attributes", "projected attribute list for PROJECT");
      ("attributes", "attribute list of the stream");
      ("cost", "estimated cost of the algorithm");
      ("mat_attribute", "reference attribute MAT dereferences");
      ("unnest_attribute", "set-valued attribute UNNEST expands");
      ("indexes", "indexed attributes of a stored file");
      ("file_name", "name of a stored file");
      ("site", "site the stream lives at (distributed algebra)");
    ]
  in
  Printf.printf "  %-22s %-11s %s
" "Property" "Type" "Description";
  List.iter
    (fun (prop : Prairie.Property.t) ->
      Printf.printf "  %-22s %-11s %s
" prop.Prairie.Property.name
        (Prairie_value.Value.ty_to_string prop.Prairie.Property.ty)
        (match List.assoc_opt prop.Prairie.Property.name descriptions with
        | Some d -> d
        | None -> ""))
    Prairie_algebra.Props.schema

(* ------------------------------------------------------------------ *)
(* Tables 3 and 4: the Prairie <-> Volcano correspondence, realized     *)
(* ------------------------------------------------------------------ *)

let table34 () =
  S.header "Tables 3-4: correspondence of elements, from the live translation";
  let cat = W.Catalogs.make (W.Catalogs.default_spec ~classes:2 ~indexed:true ~seed:1) in
  let rs = Prairie_algebra.Oodb.ruleset cat in
  let tr = P2v.Translate.translate rs in
  let m = tr.P2v.Translate.merge in
  let c = tr.P2v.Translate.classification in
  let enf = m.P2v.Merge.enforcer_infos in
  Printf.printf "  %-28s %s
" "Prairie" "Volcano";
  Printf.printf "  %-28s %s
" "operator" "operator";
  Printf.printf "  %-28s %s
" "algorithm" "algorithm";
  List.iter
    (fun (i : P2v.Enforcers.info) ->
      Printf.printf "  enforcer-operator %-10s (deleted)
" i.P2v.Enforcers.operator;
      List.iter
        (fun r ->
          Printf.printf "  enforcer-algorithm %-9s enforcer
"
            (Prairie.Irule.algorithm r))
        i.P2v.Enforcers.algorithm_rules;
      Printf.printf "  %-28s %s\n" "Null algorithm" "(deleted)")
    enf;
  Printf.printf "  %-28s %s
" "operator tree" "logical expression (memo lexprs)";
  Printf.printf "  %-28s %s
" "access plan" "physical expression (Plan.t)";
  Printf.printf "  descriptor split:
";
  Printf.printf "    cost properties          -> cost: %s
"
    (String.concat ", " c.P2v.Classify.cost);
  Printf.printf "    physical properties      -> physical property vector: %s
"
    (String.concat ", " c.P2v.Classify.physical);
  Printf.printf "    remaining properties     -> operator/algorithm argument (%d)
"
    (List.length c.P2v.Classify.argument);
  Printf.printf "
  rule translation (Table 4):
";
  Printf.printf "    %d T-rules  -> %d trans_rules (pre-test+test -> cond_code, post-test -> appl_code)
"
    (Prairie.Ruleset.trule_count rs)
    (P2v.Merge.trans_rule_count m);
  Printf.printf "    %d I-rules  -> %d impl_rules (test -> cond_code, pre-opt -> do_any_good/get_input_pv,
"
    (Prairie.Ruleset.irule_count rs)
    (P2v.Merge.impl_rule_count m);
  Printf.printf "                  %24s post-opt -> derive_phy_prop/cost) + %d enforcers
" ""
    (P2v.Merge.enforcer_count m);
  List.iter
    (fun (t, i) -> Printf.printf "    composed: %s + %s
" t i)
    m.P2v.Merge.composed

(* ------------------------------------------------------------------ *)
(* Table 5: queries and rules matched                                   *)
(* ------------------------------------------------------------------ *)

let table5 () =
  S.header "Table 5: queries used in experiments (rules matched, 2 joins)";
  Printf.printf "  %-5s %-8s %-10s %12s %12s %12s %12s\n" "Query" "Indices?"
    "Expression" "trans match" "impl match" "trans appl" "impl appl";
  List.iter
    (fun q ->
      let inst = W.Queries.instance q ~joins:2 ~seed:101 in
      let r = Opt.optimize (Opt.oodb_prairie inst.W.Queries.catalog) inst.W.Queries.expr in
      let st = Search.stats r.Opt.search in
      S.record_row
        [
          ("section", S.Json.Str "table5");
          ("query", S.Json.Str (W.Queries.name q));
          ("trans_matched", S.Json.Int (Stats.trans_matched_count st));
          ("impl_matched", S.Json.Int (Stats.impl_matched_count st));
          ("trans_applied", S.Json.Int (Stats.trans_applied_count st));
          ("impl_applied", S.Json.Int (Stats.impl_applied_count st));
          ("cost", S.Json.Float r.Opt.cost);
        ];
      Printf.printf "  %-5s %-8s %-10s %12d %12d %12d %12d\n" (W.Queries.name q)
        (if W.Queries.indexed q then "Yes" else "No")
        (W.Expressions.family_name (W.Queries.family q))
        (Stats.trans_matched_count st) (Stats.impl_matched_count st)
        (Stats.trans_applied_count st) (Stats.impl_applied_count st))
    W.Queries.all;
  print_newline ();
  Printf.printf
    "  Paper's shape: matched-rule counts grow monotonically E1 <= E2 <= E3 <= E4\n\
    \  (paper: 2/2, 5/3, 8/4, 8/4, 9/5, 9/5, 16/7, 16/7 with their rule set).\n"

(* ------------------------------------------------------------------ *)
(* Figures 10-13: optimization time vs number of joins                 *)
(* ------------------------------------------------------------------ *)

let figure ~section name (qa, qb) ~max_joins ~budget_s () =
  S.header
    (Printf.sprintf
       "%s: per-query optimization time, Prairie (P2V) vs hand-coded Volcano"
       name);
  let max_joins = if !full then max_joins + 2 else max_joins in
  S.print_points ~section (W.Queries.name qa) (S.sweep qa ~max_joins ~budget_s);
  S.print_points ~section (W.Queries.name qb) (S.sweep qb ~max_joins ~budget_s);
  Printf.printf
    "  Paper's shape: both optimizers within a few percent of each other;\n\
    \  super-exponential growth with the number of joins.\n"

let fig10 = figure ~section:"fig10" "Figure 10 (E1: joins of base classes)" (W.Queries.Q1, W.Queries.Q2) ~max_joins:6 ~budget_s:5.0
let fig11 = figure ~section:"fig11" "Figure 11 (E2: MATerialize before join)" (W.Queries.Q3, W.Queries.Q4) ~max_joins:4 ~budget_s:5.0
let fig12 = figure ~section:"fig12" "Figure 12 (E3: SELECT over E1)" (W.Queries.Q5, W.Queries.Q6) ~max_joins:3 ~budget_s:8.0
let fig13 = figure ~section:"fig13" "Figure 13 (E4: SELECT over E2)" (W.Queries.Q7, W.Queries.Q8) ~max_joins:3 ~budget_s:8.0

(* ------------------------------------------------------------------ *)
(* Figure 14: equivalence classes vs number of joins                   *)
(* ------------------------------------------------------------------ *)

let fig14 () =
  S.header "Figure 14: number of equivalence classes vs number of joins";
  let families =
    [
      (W.Expressions.E1, W.Queries.Q1, if !full then 8 else 6);
      (W.Expressions.E2, W.Queries.Q3, if !full then 5 else 4);
      (W.Expressions.E3, W.Queries.Q5, 3);
      (W.Expressions.E4, W.Queries.Q7, 3);
    ]
  in
  let max_n = List.fold_left (fun m (_, _, n) -> max m n) 0 families in
  Printf.printf "  %6s" "joins";
  List.iter
    (fun (f, _, _) -> Printf.printf "  %8s" (W.Expressions.family_name f))
    families;
  print_newline ();
  for joins = 1 to max_n do
    Printf.printf "  %6d" joins;
    List.iter
      (fun (_, q, cap) ->
        if joins > cap then Printf.printf "  %8s" "-"
        else begin
          let inst = W.Queries.instance q ~joins ~seed:101 in
          let r = Opt.optimize (Opt.oodb_prairie inst.W.Queries.catalog) inst.W.Queries.expr in
          S.record_row
            [
              ("section", S.Json.Str "fig14");
              ("query", S.Json.Str (W.Queries.name q));
              ("joins", S.Json.Int joins);
              ("groups", S.Json.Int (Search.group_count r.Opt.search));
              ( "lexprs",
                S.Json.Int
                  (Prairie_volcano.Memo.lexpr_count (Search.memo r.Opt.search))
              );
            ];
          Printf.printf "  %8d" (Search.group_count r.Opt.search)
        end)
      families;
    print_newline ()
  done;
  Printf.printf
    "  Paper's shape: growth rate increases with expression complexity; the\n\
    \  SELECT of E3/E4 interacts with every operator and explodes the space.\n"

(* ------------------------------------------------------------------ *)
(* Section 4.2: rule counts and specification sizes                    *)
(* ------------------------------------------------------------------ *)

let rules () =
  S.header "Section 4.2: the P2V translation report";
  let cat = W.Catalogs.make (W.Catalogs.default_spec ~classes:3 ~indexed:true ~seed:1) in
  List.iter
    (fun rs ->
      let tr = P2v.Translate.translate rs in
      Format.printf "%a@.@." P2v.Report.pp (P2v.Report.of_translation tr))
    [ Prairie_algebra.Oodb.ruleset cat; Rel.ruleset cat ];
  Printf.printf
    "  Paper: 22 T-rules + 11 I-rules -> 17 trans_rules + 9 impl_rules for\n\
    \  the Open OODB rule set; the larger Prairie rule count is the price of\n\
    \  making enforcers explicit, recovered automatically by merging.\n"

(* ------------------------------------------------------------------ *)
(* The relational optimizer experiment (from [5], summarized in Sec. 4) *)
(* ------------------------------------------------------------------ *)

let relational () =
  S.header "Relational optimizer (Sec. 2 algebra): Prairie-generated timings";
  let attr o n = Prairie_value.Attribute.make ~owner:o ~name:n in
  let eq a b =
    Prairie_value.Predicate.Cmp
      (Prairie_value.Predicate.Eq, Prairie_value.Predicate.T_attr a, Prairie_value.Predicate.T_attr b)
  in
  let build_catalog n seed =
    let rng = Prairie_util.Rng.create seed in
    Prairie_catalog.Catalog.of_files
      (List.init n (fun i ->
           Rel.relation
             ~name:(Printf.sprintf "R%d" (i + 1))
             ~cardinality:(Prairie_util.Rng.in_range rng 100 5000)
             ~indexes:[ "a" ]
             [ ("a", 50); ("b", 20) ]))
  in
  let build_query cat n =
    let rec go acc i =
      if i > n then acc
      else
        go
          (Rel.join cat
             ~pred:(eq (attr (Printf.sprintf "R%d" (i - 1)) "a") (attr (Printf.sprintf "R%d" i) "a"))
             acc
             (Rel.ret cat (Printf.sprintf "R%d" i)))
          (i + 1)
    in
    go (Rel.ret cat "R1") 2
  in
  Printf.printf "  %6s  %12s  %10s\n" "joins" "Prairie(ms)" "groups";
  let max_joins = if !full then 7 else 5 in
  for joins = 1 to max_joins do
    let total = ref 0.0 and groups = ref 0 in
    List.iter
      (fun seed ->
        let cat = build_catalog (joins + 1) seed in
        let q = build_query cat (joins + 1) in
        let opt = Opt.relational cat in
        total := !total +. S.time_ms (fun () -> ignore (Opt.optimize opt q));
        groups := Search.group_count (Opt.optimize opt q).Opt.search)
      S.seeds;
    let avg_ms = !total /. float_of_int (List.length S.seeds) in
    S.record_row
      [
        ("section", S.Json.Str "relational");
        ("joins", S.Json.Int joins);
        ("prairie_ms", S.Json.Float avg_ms);
        ("groups", S.Json.Int !groups);
      ];
    Printf.printf "  %6d  %12.3f  %10d\n" joins avg_ms !groups
  done;
  let cat = build_catalog 3 1 in
  let rs = Rel.ruleset cat in
  let report = P2v.Report.of_translation (P2v.Translate.translate rs) in
  Printf.printf
    "\n  Specification size: %d units in Prairie vs %d units of equivalent\n\
    \  hand-coded Volcano (rules + statements + per-rule support functions).\n\
    \  The workshop paper [5] reported about 50%% fewer lines of code.\n"
    report.P2v.Report.prairie_spec_size report.P2v.Report.volcano_spec_size

(* ------------------------------------------------------------------ *)
(* Star query graphs (the paper's stated future work)                  *)
(* ------------------------------------------------------------------ *)

let star () =
  S.header "Star query graphs (paper Sec. 4.3 future work): linear vs star";
  Printf.printf "  %6s  %14s %10s  %14s %10s\n" "joins" "linear(ms)"
    "lin.groups" "star(ms)" "star.groups";
  let max_joins = if !full then 6 else 5 in
  for joins = 1 to max_joins do
    let spec = W.Catalogs.default_spec ~classes:(joins + 1) ~indexed:false ~seed:101 in
    let lin_cat = W.Catalogs.make spec in
    let lin_q = W.Expressions.e1 lin_cat ~joins in
    let star_spec = { spec with W.Catalogs.classes = joins } in
    let star_cat = W.Catalogs.make_star star_spec in
    let star_q = W.Expressions.star star_cat ~joins in
    let run cat q =
      let opt = Opt.oodb_prairie cat in
      let t = S.time_ms (fun () -> ignore (Opt.optimize opt q)) in
      let r = Opt.optimize opt q in
      (t, Search.group_count r.Opt.search)
    in
    let lt, lg = run lin_cat lin_q in
    let st, sg = run star_cat star_q in
    S.record_row
      [
        ("section", S.Json.Str "star");
        ("joins", S.Json.Int joins);
        ("linear_ms", S.Json.Float lt);
        ("linear_groups", S.Json.Int lg);
        ("star_ms", S.Json.Float st);
        ("star_groups", S.Json.Int sg);
      ];
    Printf.printf "  %6d  %14.3f %10d  %14.3f %10d\n" joins lt lg st sg
  done;
  Printf.printf
    "  Every star-join predicate references the hub, so bushy\n\
    \  re-associations that detach a satellite from the hub are cross\n\
    \  products and get rejected by the associativity tests.  Group counts\n\
    \  stay comparable (any hub-containing subset is joinable) but far\n\
    \  fewer transformations fire, so star optimization is markedly faster\n\
    \  at equal join counts.\n"

(* ------------------------------------------------------------------ *)
(* Search strategies: top-down Volcano vs bottom-up System R           *)
(* ------------------------------------------------------------------ *)

let strategies () =
  S.header "Search strategies: top-down (Volcano) vs bottom-up (System R)";
  Printf.printf "  %-5s %6s %14s %14s %12s %12s %10s\n" "query" "joins"
    "top-down(ms)" "bottom-up(ms)" "td costed" "bu costed" "same cost?";
  List.iter
    (fun (q, joins) ->
      let inst = W.Queries.instance q ~joins ~seed:101 in
      let opt = Opt.oodb_prairie inst.W.Queries.catalog in
      let expr, required = opt.Opt.prepare inst.W.Queries.expr in
      let t_td = S.time_ms (fun () -> ignore (Opt.optimize opt inst.W.Queries.expr)) in
      let t_bu =
        S.time_ms (fun () ->
            ignore (Prairie_volcano.Bottom_up.optimize ~required opt.Opt.volcano expr))
      in
      let td = Opt.optimize opt inst.W.Queries.expr in
      let bu = Prairie_volcano.Bottom_up.optimize ~required opt.Opt.volcano expr in
      let bu_cost =
        match bu.Prairie_volcano.Bottom_up.plan with
        | Some p -> Prairie_volcano.Plan.cost p
        | None -> infinity
      in
      S.record_row
        [
          ("section", S.Json.Str "strategies");
          ("query", S.Json.Str (W.Queries.name q));
          ("joins", S.Json.Int joins);
          ("topdown_ms", S.Json.Float t_td);
          ("bottomup_ms", S.Json.Float t_bu);
          ("td_costed", S.Json.Int (Search.stats td.Opt.search).Stats.impl_firings);
          ("bu_costed", S.Json.Int bu.Prairie_volcano.Bottom_up.plans_costed);
          ("cost", S.Json.Float td.Opt.cost);
          ( "same_cost",
            S.Json.Str
              (if Float.abs (td.Opt.cost -. bu_cost) < 1e-6 then "yes" else "no")
          );
        ];
      Printf.printf "  %-5s %6d %14.3f %14.3f %12d %12d %10s\n"
        (W.Queries.name q) joins t_td t_bu
        (Search.stats td.Opt.search).Stats.impl_firings
        bu.Prairie_volcano.Bottom_up.plans_costed
        (if Float.abs (td.Opt.cost -. bu_cost) < 1e-6 then "yes" else "NO!"))
    [ (W.Queries.Q1, 3); (W.Queries.Q3, 2); (W.Queries.Q5, 2); (W.Queries.Q7, 2) ];
  Printf.printf
    "  Both strategies run over the same memo and rules and must agree on\n\
    \  cost; the bottom-up engine is exhaustive (all interesting orders of\n\
    \  all groups) where the top-down engine is demand-driven and bounded.\n"

(* ------------------------------------------------------------------ *)
(* Distributed algebra (R*-style; second physical property)            *)
(* ------------------------------------------------------------------ *)

let distributed () =
  S.header "Distributed rule set: shipping decisions (site as a physical property)";
  let module Dist = Prairie_distributed.Distributed in
  let module A = Prairie_value.Attribute in
  let module P = Prairie_value.Predicate in
  let attr o n = A.make ~owner:o ~name:n in
  let eq a b = P.Cmp (P.Eq, P.T_attr a, P.T_attr b) in
  let catalog =
    Prairie_catalog.Catalog.of_files
      [
        Rel.relation ~name:"R1" ~cardinality:50_000 ~tuple_size:100 [ ("a", 100) ];
        Rel.relation ~name:"R2" ~cardinality:2_000 ~tuple_size:100 [ ("a", 100) ];
        Rel.relation ~name:"R3" ~cardinality:500 ~tuple_size:100 [ ("a", 100) ];
      ]
  in
  let sites = [ ("R1", "paris"); ("R2", "austin"); ("R3", "austin") ] in
  let rs = Dist.ruleset catalog ~sites in
  let tr = P2v.Translate.translate rs in
  Format.printf "%a@.@." P2v.Report.pp (P2v.Report.of_translation tr);
  let opt =
    {
      Opt.name = "distributed";
      volcano = tr.P2v.Translate.volcano;
      prepare = P2v.Translate.prepare_query tr;
    }
  in
  let q =
    Dist.join catalog
      ~pred:(eq (attr "R2" "a") (attr "R3" "a"))
      (Dist.join catalog
         ~pred:(eq (attr "R1" "a") (attr "R2" "a"))
         (Dist.ret ~sites catalog "R1")
         (Dist.ret ~sites catalog "R2"))
      (Dist.ret ~sites catalog "R3")
  in
  List.iter
    (fun (label, required) ->
      let r = Opt.optimize ~required opt q in
      match r.Opt.plan with
      | Some p ->
        Format.printf "  result at %-9s cost %10.2f  plan %a@." label r.Opt.cost
          Prairie_volcano.Plan.pp p
      | None -> Format.printf "  result at %-9s no plan@." label)
    [
      ("anywhere", Prairie.Descriptor.empty);
      ("paris", Dist.require_site "paris");
      ("austin", Dist.require_site "austin");
      ("tokyo", Dist.require_site "tokyo");
    ]

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)
(* ------------------------------------------------------------------ *)

let ablations () =
  S.header "Ablations (design choices of DESIGN.md)";
  (* 1: branch-and-bound *)
  S.subheader "ablation-bounding: branch-and-bound cost limits on/off";
  Printf.printf "  %-5s %14s %14s %12s %12s\n" "query" "pruned(ms)" "full(ms)"
    "prune events" "same cost?";
  List.iter
    (fun (q, joins) ->
      let inst = W.Queries.instance q ~joins ~seed:101 in
      let cat = inst.W.Queries.catalog in
      let opt = Opt.oodb_prairie cat in
      let t_on = S.time_ms (fun () -> ignore (Opt.optimize ~pruning:true opt inst.W.Queries.expr)) in
      let t_off = S.time_ms (fun () -> ignore (Opt.optimize ~pruning:false opt inst.W.Queries.expr)) in
      let r_on = Opt.optimize ~pruning:true opt inst.W.Queries.expr in
      let r_off = Opt.optimize ~pruning:false opt inst.W.Queries.expr in
      Printf.printf "  %-5s %14.3f %14.3f %12d %12s\n" (W.Queries.name q) t_on
        t_off
        (Search.stats r_on.Opt.search).Stats.pruned
        (if Float.abs (r_on.Opt.cost -. r_off.Opt.cost) < 1e-6 then "yes" else "NO!"))
    [ (W.Queries.Q1, 3); (W.Queries.Q5, 2); (W.Queries.Q7, 2) ];
  (* 2: rule merging *)
  S.subheader "ablation-merge: P2V rule composition on/off";
  Printf.printf "  %-5s %12s %12s %14s %14s %10s\n" "query" "merged(ms)"
    "unmerged(ms)" "merged groups" "unmrg groups" "same cost?";
  List.iter
    (fun (q, joins) ->
      let inst = W.Queries.instance q ~joins ~seed:101 in
      let cat = inst.W.Queries.catalog in
      let m = Opt.oodb_prairie cat and u = Opt.oodb_prairie_unmerged cat in
      let tm = S.time_ms (fun () -> ignore (Opt.optimize m inst.W.Queries.expr)) in
      let tu = S.time_ms (fun () -> ignore (Opt.optimize u inst.W.Queries.expr)) in
      let rm = Opt.optimize m inst.W.Queries.expr in
      let ru = Opt.optimize u inst.W.Queries.expr in
      Printf.printf "  %-5s %12.3f %12.3f %14d %14d %10s\n" (W.Queries.name q)
        tm tu
        (Search.group_count rm.Opt.search)
        (Search.group_count ru.Opt.search)
        (if Float.abs (rm.Opt.cost -. ru.Opt.cost) < 1e-6 then "yes" else "NO!"))
    [ (W.Queries.Q1, 2); (W.Queries.Q5, 2) ];
  (* 3: the group-budget heuristic (the paper's closing advice) *)
  S.subheader
    "ablation-budget: capped exploration (graceful degradation) on E4";
  Printf.printf "  %-10s %14s %10s %12s\n" "budget" "time(ms)" "groups" "cost";
  (let inst = W.Queries.instance W.Queries.Q7 ~joins:2 ~seed:101 in
   let opt = Opt.oodb_prairie inst.W.Queries.catalog in
   List.iter
     (fun budget ->
       let t =
         S.time_ms (fun () ->
             ignore (Opt.optimize ?group_budget:budget opt inst.W.Queries.expr))
       in
       let r = Opt.optimize ?group_budget:budget opt inst.W.Queries.expr in
       Printf.printf "  %-10s %14.3f %10d %12.3f\n"
         (match budget with None -> "unlimited" | Some b -> string_of_int b)
         t
         (Search.group_count r.Opt.search)
         r.Opt.cost)
     [ Some 30; Some 60; Some 120; None ]);
  (* 4: action code generation *)
  S.subheader
    "ablation-codegen: P2V staged closures vs per-invocation interpretation";
  Printf.printf "  %-5s %14s %16s %14s\n" "query" "compiled(ms)"
    "interpreted(ms)" "hand-coded(ms)";
  List.iter
    (fun (q, joins) ->
      let inst = W.Queries.instance q ~joins ~seed:101 in
      let cat = inst.W.Queries.catalog in
      let compiled = Opt.oodb_prairie cat in
      let interpreted = Opt.oodb_prairie_interpreted cat in
      let hand = Opt.oodb_volcano cat in
      let t o = S.time_ms (fun () -> ignore (Opt.optimize o inst.W.Queries.expr)) in
      Printf.printf "  %-5s %14.3f %16.3f %14.3f\n" (W.Queries.name q)
        (t compiled) (t interpreted) (t hand))
    [ (W.Queries.Q1, 4); (W.Queries.Q3, 3); (W.Queries.Q5, 3) ];
  (* 4: memoized exploration *)
  S.subheader "ablation-memo: duplicate detection rates during exploration";
  Printf.printf "  %-5s %10s %10s %12s %10s\n" "query" "lexprs" "dups"
    "dedup rate" "merges";
  List.iter
    (fun (q, joins) ->
      let inst = W.Queries.instance q ~joins ~seed:101 in
      let r = Opt.optimize (Opt.oodb_prairie inst.W.Queries.catalog) inst.W.Queries.expr in
      let st = Search.stats r.Opt.search in
      Printf.printf "  %-5s %10d %10d %11.1f%% %10d\n" (W.Queries.name q)
        st.Stats.lexprs_created st.Stats.lexpr_duplicates
        (100.0
        *. float_of_int st.Stats.lexpr_duplicates
        /. float_of_int (max 1 (st.Stats.lexprs_created + st.Stats.lexpr_duplicates)))
        st.Stats.groups_merged)
    [ (W.Queries.Q1, 3); (W.Queries.Q3, 3); (W.Queries.Q7, 2) ]

(* ------------------------------------------------------------------ *)
(* The parallel plan service: domain pool + shared plan cache          *)
(* ------------------------------------------------------------------ *)

let service () =
  S.header
    "Plan service: domain-pool batches with a shared fingerprint-keyed cache";
  let jobs = 4 in
  let cat =
    W.Catalogs.make (W.Catalogs.default_spec ~classes:4 ~indexed:true ~seed:101)
  in
  let opt = Opt.oodb_prairie cat in
  (* the workload-generator query mix: every family at several join counts *)
  let distinct =
    List.concat_map
      (fun (f, join_counts) ->
        List.map
          (fun joins -> Opt.request (W.Expressions.build f cat ~joins))
          join_counts)
      [
        (W.Expressions.E1, [ 1; 2; 3 ]);
        (W.Expressions.E2, [ 1; 2; 3 ]);
        (W.Expressions.E3, [ 1; 2 ]);
        (W.Expressions.E4, [ 1; 2 ]);
      ]
  in
  let repeats = if !full then 16 else 8 in
  let mix = List.concat (List.init repeats (fun _ -> distinct)) in
  Printf.printf
    "  query mix: %d requests (%d distinct x%d), jobs = %d, cores = %d\n"
    (List.length mix) (List.length distinct) repeats jobs
    (Domain.recommended_domain_count ());
  let digest_of served =
    match served.Opt.plan with
    | Some p -> Prairie.Expr.fingerprint (Prairie_volcano.Plan.to_expr p)
    | None -> "-"
  in
  (* 1. the pre-existing sequential path: one full search per request *)
  let baseline = ref [] in
  let t_loop =
    S.time_once (fun () ->
        baseline := List.map (fun r -> Opt.optimize opt r.Opt.expr) mix)
  in
  (* 2. batched, sequential: within-batch fingerprint dedup only *)
  let t_seq =
    S.time_once (fun () -> ignore (Opt.serve ~jobs:1 ?metrics:!metrics opt mix))
  in
  (* 3. batched, domain pool *)
  let t_par =
    S.time_once (fun () -> ignore (Opt.serve ~jobs ?metrics:!metrics opt mix))
  in
  (* 4. cold then warm shared cache *)
  let cache = Opt.Plan_cache.create ~capacity:256 () in
  let cold = ref [] in
  let t_cold =
    S.time_once (fun () -> cold := Opt.serve ~jobs ~cache ?metrics:!metrics opt mix)
  in
  let s_cold = Opt.Plan_cache.stats cache in
  let warm = ref [] in
  let t_warm =
    S.time_once (fun () -> warm := Opt.serve ~jobs ~cache ?metrics:!metrics opt mix)
  in
  let s_warm = Opt.Plan_cache.stats cache in
  Printf.printf "  %-34s %10s %9s\n" "configuration" "time(ms)" "speedup";
  List.iter
    (fun (label, t) ->
      Printf.printf "  %-34s %10.1f %8.1fx\n" label (t *. 1000.0) (t_loop /. t))
    [
      ("sequential loop (Opt.optimize)", t_loop);
      ("serve --jobs 1 (batch dedup)", t_seq);
      (Printf.sprintf "serve --jobs %d" jobs, t_par);
      (Printf.sprintf "serve --jobs %d, cold cache" jobs, t_cold);
      (Printf.sprintf "serve --jobs %d, warm cache" jobs, t_warm);
    ];
  Format.printf "  cache: %a@." Opt.Plan_cache.pp_stats cache;
  let warm_lookups =
    s_warm.Opt.Plan_cache.hits + s_warm.Opt.Plan_cache.misses
    - (s_cold.Opt.Plan_cache.hits + s_cold.Opt.Plan_cache.misses)
  in
  let warm_hits =
    List.length (List.filter (fun s -> s.Opt.cache_hit) !warm)
  in
  Printf.printf
    "  warm pass: %d/%d requests served from cache (hit-rate %.1f%%)\n"
    warm_hits (List.length !warm)
    (100.0
    *. float_of_int (s_warm.Opt.Plan_cache.hits - s_cold.Opt.Plan_cache.hits)
    /. float_of_int (max 1 warm_lookups));
  (* the cached plans must be byte-identical to cold optimization *)
  let identical =
    List.for_all2
      (fun (b : Opt.outcome) (w : Opt.served) ->
        Float.equal b.Opt.cost w.Opt.cost
        && String.equal
             (match b.Opt.plan with
             | Some p -> Prairie.Expr.fingerprint (Prairie_volcano.Plan.to_expr p)
             | None -> "-")
             (digest_of w))
      !baseline !warm
  in
  Printf.printf "  warm plans byte-identical to cold optimization: %s\n"
    (if identical then "yes" else "NO!");
  (* pure pool scaling on distinct queries (no dedup, no cache): bounded
     above by the available cores — on a single-core host the domain pool
     can only add coordination overhead, and the cache/dedup numbers above
     are the ones that matter *)
  S.subheader
    (Printf.sprintf "pool scaling on the distinct-query batch (%d cores)"
       (Domain.recommended_domain_count ()));
  let reps = if !full then 6 else 2 in
  let batch = List.init reps (fun _ -> ()) in
  Printf.printf "  %6s %10s %9s\n" "jobs" "time(ms)" "speedup";
  let time_at jobs =
    S.time_once (fun () ->
        List.iter (fun () -> ignore (Opt.serve ~jobs opt distinct)) batch)
  in
  let t1 = time_at 1 in
  List.iter
    (fun j ->
      let t = if j = 1 then t1 else time_at j in
      Printf.printf "  %6d %10.1f %8.2fx\n" j (t *. 1000.0) (t1 /. t))
    [ 1; 2; 4 ]

(* ------------------------------------------------------------------ *)
(* Observability: the cost of the trace/metrics instrumentation        *)
(* ------------------------------------------------------------------ *)

let obs () =
  S.header "Observability: tracing and metrics overhead (sinks off vs on)";
  let inst = W.Queries.instance W.Queries.Q5 ~joins:2 ~seed:101 in
  let opt = Opt.oodb_prairie inst.W.Queries.catalog in
  let expr = inst.W.Queries.expr in
  (* best-of-N: the disabled path is one Option check per event site, so
     the signal is small and easily drowned by scheduler noise *)
  let rounds = if !full then 9 else 5 in
  let best f =
    let b = ref infinity in
    for _ = 1 to rounds do
      let t = S.time_ms f in
      if t < !b then b := t
    done;
    !b
  in
  let t_off = best (fun () -> ignore (Opt.optimize opt expr)) in
  let t_trace =
    best (fun () ->
        let sink = Obs.Trace.create () in
        ignore (Opt.optimize ~trace:sink opt expr))
  in
  let t_metrics =
    best (fun () ->
        let m = match !metrics with Some m -> m | None -> Obs.Metrics.create () in
        ignore (Opt.optimize ~metrics:m opt expr))
  in
  let t_both =
    best (fun () ->
        let sink = Obs.Trace.create () in
        let m = match !metrics with Some m -> m | None -> Obs.Metrics.create () in
        ignore (Opt.optimize ~trace:sink ~metrics:m opt expr))
  in
  let t_spans =
    best (fun () ->
        let sink = Obs.Span.create () in
        ignore (Opt.optimize ~spans:sink opt expr))
  in
  let over t = (t /. Float.max 1e-9 t_off -. 1.0) *. 100.0 in
  Printf.printf "  query Q5, 2 joins, best of %d timing rounds\n" rounds;
  Printf.printf "  %-26s %12s %10s\n" "configuration" "time(ms)" "overhead";
  List.iter
    (fun (label, t) ->
      S.record_row
        [
          ("section", S.Json.Str "obs");
          ("name", S.Json.Str label);
          ("time_obs_ms", S.Json.Float t);
        ];
      Printf.printf "  %-26s %12.4f %+9.2f%%\n" label t (over t))
    [
      ("sinks disabled", t_off);
      ("trace sink", t_trace);
      ("metrics registry", t_metrics);
      ("trace + metrics", t_both);
      ("span profiler", t_spans);
    ];
  (* the sink must be an observer: same plan, same cost, and the event
     stream accounts for the search the optimizer actually ran *)
  let plain = Opt.optimize opt expr in
  let sink = Obs.Trace.create () in
  let traced = Opt.optimize ~trace:sink opt expr in
  Printf.printf "  traced cost identical to untraced: %s (%.3f)\n"
    (if Float.equal plain.Opt.cost traced.Opt.cost then "yes" else "NO!")
    traced.Opt.cost;
  Printf.printf "  events recorded per optimization: %d (%d dropped)\n"
    (Obs.Trace.seq sink) (Obs.Trace.dropped sink);
  Printf.printf
    "  The disabled path costs one Option check per event site; enabling a\n\
    \  sink pays for event construction and the ring-buffer write.\n"

(* ------------------------------------------------------------------ *)
(* Parallel exploration: jobs sweep on fig13's Q7                      *)
(* ------------------------------------------------------------------ *)

let parallel () =
  S.header "Parallel exploration: Q7 (E4) wall time vs search jobs";
  let joins = if !full then 4 else 3 in
  let inst = W.Queries.instance W.Queries.Q7 ~joins ~seed:101 in
  let base = ref nan in
  Printf.printf "  %-6s %12s %10s %14s\n" "jobs" "wall ms" "speedup" "cost";
  List.iter
    (fun jobs ->
      let opt = Opt.oodb_prairie inst.W.Queries.catalog in
      let t0 = Unix.gettimeofday () in
      let r = Opt.optimize ~search_jobs:jobs opt inst.W.Queries.expr in
      let ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
      if Float.is_nan !base then base := ms;
      S.record_row
        [
          ("section", S.Json.Str "parallel");
          ("query", S.Json.Str "Q7");
          ("name", S.Json.Str (Printf.sprintf "jobs%d" jobs));
          ("joins", S.Json.Int joins);
          ("jobs", S.Json.Int jobs);
          ("wall_ms", S.Json.Float ms);
          ("cost", S.Json.Float r.Opt.cost);
        ];
      Printf.printf "  %-6d %12.1f %9.2fx %14.2f\n" jobs ms (!base /. ms)
        r.Opt.cost)
    [ 1; 2; 4 ];
  Printf.printf
    "  Costs are byte-identical at every jobs value (the commit phase\n\
    \  replays the sequential order; see docs/PERF.md).  Wall-clock speedup\n\
    \  requires more than one available core.\n"

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test.make per table/figure           *)
(* ------------------------------------------------------------------ *)

let bechamel () =
  S.header "Bechamel micro-benchmarks (one per table/figure)";
  let open Bechamel in
  let optimize_test name q joins which =
    Test.make ~name
      (Staged.stage (fun () ->
           let inst = W.Queries.instance q ~joins ~seed:101 in
           let opt = which inst.W.Queries.catalog in
           ignore (Opt.optimize opt inst.W.Queries.expr)))
  in
  let tests =
    [
      optimize_test "table5/Q5-rule-matching" W.Queries.Q5 2 Opt.oodb_prairie;
      optimize_test "fig10/Q1-prairie" W.Queries.Q1 3 Opt.oodb_prairie;
      optimize_test "fig10/Q1-volcano" W.Queries.Q1 3 Opt.oodb_volcano;
      optimize_test "fig11/Q3-prairie" W.Queries.Q3 2 Opt.oodb_prairie;
      optimize_test "fig11/Q3-volcano" W.Queries.Q3 2 Opt.oodb_volcano;
      optimize_test "fig12/Q6-prairie" W.Queries.Q6 2 Opt.oodb_prairie;
      optimize_test "fig13/Q7-prairie" W.Queries.Q7 2 Opt.oodb_prairie;
      optimize_test "fig14/Q7-group-growth" W.Queries.Q7 2 Opt.oodb_prairie;
      Test.make ~name:"rules/p2v-translation"
        (Staged.stage (fun () ->
             let cat = W.Catalogs.make (W.Catalogs.default_spec ~classes:2 ~indexed:true ~seed:1) in
             ignore (P2v.Translate.translate (Prairie_algebra.Oodb.ruleset cat))));
    ]
  in
  let benchmark test =
    let instances = Toolkit.Instance.[ monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None () in
    Benchmark.all cfg instances test
  in
  let analyze results =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:false
        ~predictors:[| Measure.run |]
    in
    Analyze.all ols Toolkit.Instance.monotonic_clock results
  in
  Printf.printf "  %-28s %16s\n" "benchmark" "time/run";
  List.iter
    (fun test ->
      let results = analyze (benchmark test) in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] ->
            let ns = est in
            if ns > 1e6 then Printf.printf "  %-28s %13.3f ms\n" name (ns /. 1e6)
            else Printf.printf "  %-28s %13.1f ns\n" name ns
          | _ -> Printf.printf "  %-28s %16s\n" name "n/a")
        results)
    tests

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let sections =
  [
    ("table1", table1);
    ("table2", table2);
    ("table34", table34);
    ("table5", table5);
    ("fig10", fig10);
    ("fig11", fig11);
    ("fig12", fig12);
    ("fig13", fig13);
    ("fig14", fig14);
    ("rules", rules);
    ("relational", relational);
    ("star", star);
    ("strategies", strategies);
    ("distributed", distributed);
    ("ablations", ablations);
    ("service", service);
    ("obs", obs);
    ("parallel", parallel);
    ("bechamel", bechamel);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let args = List.filter (fun a -> a <> "--") args in
  (* --metrics FILE: collect service/obs telemetry into a registry and dump
     it as Prometheus text after the run ("-" for stdout) *)
  let rec strip_metrics acc = function
    | [] -> (None, List.rev acc)
    | [ "--metrics" ] ->
      prerr_endline "--metrics requires a FILE argument (\"-\" for stdout)";
      exit 2
    | "--metrics" :: file :: rest -> (Some file, List.rev_append acc rest)
    | a :: rest -> strip_metrics (a :: acc) rest
  in
  let metrics_file, args = strip_metrics [] args in
  if metrics_file <> None then metrics := Some (Obs.Metrics.create ());
  (* --json FILE: machine-readable per-section results (see Support.Json) *)
  let rec strip_json acc = function
    | [] -> (None, List.rev acc)
    | [ "--json" ] ->
      prerr_endline "--json requires a FILE argument";
      exit 2
    | "--json" :: file :: rest -> (Some file, List.rev_append acc rest)
    | a :: rest -> strip_json (a :: acc) rest
  in
  let json_file, args = strip_json [] args in
  (* --check BASELINE [--tolerance T]: compare this run's deterministic
     fields against a previous --json dump (v1 or v2) and exit 1 on any
     relative deviation beyond T (default 0.25 — generous, because costs
     can wiggle with catalog randomization tweaks) *)
  let rec strip_opt name acc = function
    | [] -> (None, List.rev acc)
    | [ n ] when n = name ->
      Printf.eprintf "%s requires an argument\n" name;
      exit 2
    | n :: v :: rest when n = name -> (Some v, List.rev_append acc rest)
    | a :: rest -> strip_opt name (a :: acc) rest
  in
  let check_file, args = strip_opt "--check" [] args in
  (* --search-jobs N: run every section's searches at that exploration
     parallelism (deterministic: results are byte-identical to jobs 1, so
     --check against a sequential baseline still applies) *)
  let search_jobs_s, args = strip_opt "--search-jobs" [] args in
  (match search_jobs_s with
  | None -> ()
  | Some s -> (
    match int_of_string_opt s with
    | Some j when j >= 1 -> Unix.putenv "PRAIRIE_SEARCH_JOBS" (string_of_int j)
    | _ ->
      Printf.eprintf "--search-jobs must be a positive integer, got %S\n" s;
      exit 2));
  let tolerance_s, args = strip_opt "--tolerance" [] args in
  let tolerance =
    match tolerance_s with
    | None -> 0.25
    | Some s -> (
      match float_of_string_opt s with
      | Some t when t >= 0.0 -> t
      | _ ->
        Printf.eprintf "--tolerance must be a non-negative number, got %S\n" s;
        exit 2)
  in
  let full_flag, named = List.partition (fun a -> a = "--full") args in
  full := full_flag <> [];
  let to_run =
    match named with
    | [] -> sections
    | names ->
      List.filter_map
        (fun n ->
          match List.assoc_opt n sections with
          | Some f -> Some (n, f)
          | None ->
            Printf.eprintf "unknown section %S (have: %s)\n" n
              (String.concat ", " (List.map fst sections));
            exit 2)
        names
  in
  Printf.printf "Prairie reproduction benchmarks%s\n"
    (if !full then " (full sweeps)" else "");
  List.iter
    (fun (name, f) ->
      let wall = S.time_once f in
      S.record_wall ~name ~wall_ms:(wall *. 1000.0))
    to_run;
  (match json_file with
  | Some file ->
    S.write_json file ~full:!full ~sections:(List.map fst to_run);
    Printf.printf "\njson results written to %s\n" file
  | None -> ());
  (match check_file with
  | None -> ()
  | Some file -> (
    match S.check_against ~file ~tolerance with
    | exception (Failure msg | Sys_error msg) ->
      Printf.eprintf "--check: %s\n" msg;
      exit 2
    | baseline, [] ->
      Printf.printf
        "\n--check %s (%s): all deterministic fields within %.0f%%\n" file
        baseline.S.b_schema (tolerance *. 100.0)
    | baseline, errors ->
      Printf.printf "\n--check %s (%s): %d mismatch(es)\n" file
        baseline.S.b_schema (List.length errors);
      List.iter (fun e -> Printf.printf "  %s\n" e) errors;
      exit 1));
  match (metrics_file, !metrics) with
  | Some "-", Some m -> Obs.Metrics.output stdout `Prometheus m
  | Some file, Some m ->
    let oc = open_out file in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> Obs.Metrics.output oc `Prometheus m);
    Printf.printf "\nmetrics written to %s\n" file
  | _ -> ()
