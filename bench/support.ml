(* Shared machinery for the benchmark harness: timing, sweeps, table
   printing. *)

module W = Prairie_workload
module Opt = Prairie_optimizers.Optimizers
module Search = Prairie_volcano.Search
module Stats = Prairie_volcano.Stats
module Memo = Prairie_volcano.Memo

let seeds = [ 101; 202; 303; 404; 505 ]
(* the paper varies base-class cardinalities five times per data point *)

let now () = Unix.gettimeofday ()

(* Milliseconds per optimization, averaged over enough repetitions to get a
   stable reading (the paper loops 3000 times because 1994 clocks were
   coarse; we adapt the repetition count to the measured cost). *)
let time_once f =
  let t0 = now () in
  f ();
  now () -. t0

let time_ms f =
  let first = time_once f in
  if first > 0.5 then first *. 1000.0
  else
    let reps = max 3 (min 200 (int_of_float (0.2 /. Float.max 1e-6 first))) in
    let t0 = now () in
    for _ = 1 to reps do
      f ()
    done;
    (now () -. t0) /. float_of_int reps *. 1000.0

(* ------------------------------------------------------------------ *)
(* Machine-readable results (--json FILE)                              *)
(*                                                                     *)
(* Sections push flat row objects into a run-global collector; the     *)
(* driver serializes them with run metadata at exit.  Rows are          *)
(* heterogeneous on purpose — each carries a "section" field and        *)
(* whatever measurements that section produces — so downstream tooling  *)
(* filters by section instead of depending on a rigid schema.          *)
(*                                                                     *)
(* Schema prairie-bench/2: per-section wall timings live in their own  *)
(* "walls" array instead of being interleaved with data rows as        *)
(* {"section":"wall"} objects (the v1 layout).  [load_baseline] reads  *)
(* both versions.                                                      *)
(* ------------------------------------------------------------------ *)

module Json = struct
  type v =
    | Int of int
    | Float of float
    | Str of string
    | Obj of (string * v) list
    | Arr of v list

  let escape s =
    let buf = Buffer.create (String.length s + 2) in
    String.iter
      (function
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let rec output buf = function
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f ->
      if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.6g" f)
      else Buffer.add_string buf "null"
    | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf (Printf.sprintf "\"%s\":" (escape k));
          output buf v)
        fields;
      Buffer.add_char buf '}'
    | Arr vs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          output buf v)
        vs;
      Buffer.add_char buf ']'

  exception Parse_error of string

  (* A minimal recursive-descent parser for the subset this harness
     writes: objects, arrays, strings, numbers and null (non-finite
     floats serialize as null and parse back as nan).  true/false only
     ever appear as the strings we write, but accept the literals too. *)
  let parse (s : string) : v =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg =
      raise (Parse_error (Printf.sprintf "%s at byte %d" msg !pos))
    in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let skip_ws () =
      while
        !pos < n
        && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
      do
        incr pos
      done
    in
    let expect c =
      if !pos < n && s.[!pos] = c then incr pos
      else fail (Printf.sprintf "expected %C" c)
    in
    let literal lit value =
      let l = String.length lit in
      if !pos + l <= n && String.equal (String.sub s !pos l) lit then begin
        pos := !pos + l;
        value
      end
      else fail (Printf.sprintf "bad literal (wanted %s)" lit)
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string"
        else
          match s.[!pos] with
          | '"' ->
            incr pos;
            Buffer.contents buf
          | '\\' ->
            incr pos;
            if !pos >= n then fail "unterminated escape";
            (match s.[!pos] with
            | '"' | '\\' | '/' ->
              Buffer.add_char buf s.[!pos];
              incr pos
            | 'n' ->
              Buffer.add_char buf '\n';
              incr pos
            | 't' ->
              Buffer.add_char buf '\t';
              incr pos
            | 'r' ->
              Buffer.add_char buf '\r';
              incr pos
            | 'b' ->
              Buffer.add_char buf '\b';
              incr pos
            | 'f' ->
              Buffer.add_char buf '\012';
              incr pos
            | 'u' ->
              if !pos + 4 >= n then fail "bad \\u escape";
              (match int_of_string_opt ("0x" ^ String.sub s (!pos + 1) 4) with
              | None -> fail "bad \\u escape"
              | Some code ->
                (* the writer only \u-escapes control characters; anything
                   outside ASCII is not round-trippable here *)
                Buffer.add_char buf (if code < 128 then Char.chr code else '?');
                pos := !pos + 5)
            | _ -> fail "bad escape");
            go ()
          | c ->
            Buffer.add_char buf c;
            incr pos;
            go ()
      in
      go ()
    in
    let parse_number () =
      let start = !pos in
      let num_char = function
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while !pos < n && num_char s.[!pos] do
        incr pos
      done;
      let tok = String.sub s start (!pos - start) in
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
        match float_of_string_opt tok with
        | Some f -> Float f
        | None -> fail "bad number")
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '"' -> Str (parse_string ())
      | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then begin
          incr pos;
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec members () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' ->
              incr pos;
              members ()
            | Some '}' -> incr pos
            | _ -> fail "expected ',' or '}'"
          in
          members ();
          Obj (List.rev !fields)
        end
      | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then begin
          incr pos;
          Arr []
        end
        else begin
          let items = ref [] in
          let rec elements () =
            items := parse_value () :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
              incr pos;
              elements ()
            | Some ']' -> incr pos
            | _ -> fail "expected ',' or ']'"
          in
          elements ();
          Arr (List.rev !items)
        end
      | Some 't' -> literal "true" (Str "true")
      | Some 'f' -> literal "false" (Str "false")
      | Some 'n' -> literal "null" (Float nan)
      | Some _ -> parse_number ()
    in
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
end

let json_rows : Json.v list ref = ref []
let record_row fields = json_rows := Json.Obj fields :: !json_rows

let wall_rows : (string * float) list ref = ref []
let record_wall ~name ~wall_ms = wall_rows := (name, wall_ms) :: !wall_rows

let write_json file ~full ~sections =
  let buf = Buffer.create 4096 in
  Json.output buf
    (Json.Obj
       [
         ("schema", Json.Str "prairie-bench/2");
         ("full", Json.Str (if full then "true" else "false"));
         ("sections", Json.Arr (List.map (fun s -> Json.Str s) sections));
         ("rows", Json.Arr (List.rev !json_rows));
         ( "walls",
           Json.Arr
             (List.rev_map
                (fun (name, ms) ->
                  Json.Obj
                    [ ("name", Json.Str name); ("wall_ms", Json.Float ms) ])
                !wall_rows) );
       ]);
  Buffer.add_char buf '\n';
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> Buffer.output_buffer oc buf)

(* -------- reading results back (--check BASELINE) ------------------ *)

type baseline = {
  b_schema : string;
  b_sections : string list;
  b_rows : (string * Json.v) list list;  (* v1 wall rows split out *)
  b_walls : (string * float) list;
}

let load_baseline file =
  let ic = open_in_bin file in
  let s =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  match Json.parse s with
  | Json.Obj top ->
    let str k =
      match List.assoc_opt k top with Some (Json.Str s) -> Some s | _ -> None
    in
    let strings k =
      match List.assoc_opt k top with
      | Some (Json.Arr vs) ->
        List.filter_map (function Json.Str s -> Some s | _ -> None) vs
      | _ -> []
    in
    let objects k =
      match List.assoc_opt k top with
      | Some (Json.Arr vs) ->
        List.filter_map (function Json.Obj o -> Some o | _ -> None) vs
      | _ -> []
    in
    let wall_of o =
      let name =
        match List.assoc_opt "name" o with Some (Json.Str s) -> s | _ -> "?"
      in
      let ms =
        match List.assoc_opt "wall_ms" o with
        | Some (Json.Float f) -> f
        | Some (Json.Int i) -> float_of_int i
        | _ -> nan
      in
      (name, ms)
    in
    let is_wall o =
      match List.assoc_opt "section" o with
      | Some (Json.Str "wall") -> true
      | _ -> false
    in
    let v1_walls, data_rows = List.partition is_wall (objects "rows") in
    {
      b_schema = Option.value ~default:"prairie-bench/1" (str "schema");
      b_sections = strings "sections";
      b_rows = data_rows;
      b_walls = List.map wall_of v1_walls @ List.map wall_of (objects "walls");
    }
  | _ | (exception Json.Parse_error _) ->
    failwith (file ^ ": not a prairie-bench JSON document")

(* The stable identity of a row: its classification fields.  Everything
   else a row carries is a measurement. *)
let row_key fields =
  String.concat " "
    (List.filter_map
       (fun k ->
         match List.assoc_opt k fields with
         | Some (Json.Str s) -> Some (k ^ "=" ^ s)
         | Some (Json.Int i) -> Some (k ^ "=" ^ string_of_int i)
         | _ -> None)
       [ "section"; "query"; "name"; "joins" ])

let numeric = function
  | Json.Int i -> Some (float_of_int i)
  | Json.Float f -> Some f
  | _ -> None

let is_timing_field k =
  let l = String.length k in
  l > 3 && String.equal (String.sub k (l - 3) 3) "_ms"

(* Compare the current run against a baseline file: every deterministic
   numeric field (group counts, rule-match counts, costs — everything
   except the machine-dependent *_ms timings and wall rows) of every
   baseline row whose section ran this time must agree within a relative
   [tolerance].  Returns the mismatches, oldest first. *)
let check_against ~file ~tolerance =
  let baseline = load_baseline file in
  let current =
    List.filter_map
      (function Json.Obj o -> Some o | _ -> None)
      (List.rev !json_rows)
  in
  let section_of o =
    match List.assoc_opt "section" o with Some (Json.Str s) -> s | _ -> ""
  in
  let ran = List.sort_uniq compare (List.map section_of current) in
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  List.iter
    (fun brow ->
      if List.mem (section_of brow) ran then begin
        let key = row_key brow in
        match List.find_opt (fun c -> String.equal (row_key c) key) current with
        | None -> err "missing row: %s" key
        | Some crow ->
          List.iter
            (fun (k, bv) ->
              if not (is_timing_field k) then
                match numeric bv with
                | None -> ()
                | Some b -> (
                  match Option.bind (List.assoc_opt k crow) numeric with
                  | None -> err "%s: field %s missing from this run" key k
                  | Some c ->
                    (* relative on large values, absolute near zero; nan on
                       both sides (serialized null) compares equal *)
                    let scale =
                      Float.max 1.0 (Float.max (Float.abs b) (Float.abs c))
                    in
                    if Float.abs (c -. b) > tolerance *. scale then
                      err "%s: %s = %g, baseline %g (tolerance %g%%)" key k c
                        b
                        (tolerance *. 100.0)))
            brow
      end)
    baseline.b_rows;
  (baseline, List.rev !errors)

type point = {
  joins : int;
  prairie_ms : float;
  volcano_ms : float;
  groups : int;
  lexprs : int;
  memo_hits : int;
  cost : float;
}

(* One data point of Figures 10-13: average optimization time over the five
   catalog instances, for both contestants. *)
let measure_point q ~joins =
  let instances = W.Queries.instances q ~joins ~seeds in
  let total_p = ref 0.0 and total_v = ref 0.0 in
  let groups = ref 0 and cost = ref 0.0 in
  let lexprs = ref 0 and memo_hits = ref 0 in
  List.iter
    (fun (inst : W.Queries.instance) ->
      let cat = inst.W.Queries.catalog in
      let prairie = Opt.oodb_prairie cat in
      let volcano = Opt.oodb_volcano cat in
      total_p := !total_p +. time_ms (fun () -> ignore (Opt.optimize prairie inst.W.Queries.expr));
      total_v := !total_v +. time_ms (fun () -> ignore (Opt.optimize volcano inst.W.Queries.expr));
      let r = Opt.optimize prairie inst.W.Queries.expr in
      groups := Search.group_count r.Opt.search;
      lexprs := Memo.lexpr_count (Search.memo r.Opt.search);
      memo_hits := (Search.stats r.Opt.search).Stats.memo_hits;
      cost := r.Opt.cost)
    instances;
  let n = float_of_int (List.length instances) in
  {
    joins;
    prairie_ms = !total_p /. n;
    volcano_ms = !total_v /. n;
    groups = !groups;
    lexprs = !lexprs;
    memo_hits = !memo_hits;
    cost = !cost;
  }

(* Sweep the join count until a per-point time budget is exhausted (the
   paper stops when virtual memory is exhausted; we stop on wall clock). *)
let sweep q ~max_joins ~budget_s =
  let rec go acc joins =
    if joins > max_joins then List.rev acc
    else
      let t0 = now () in
      let pt = measure_point q ~joins in
      let elapsed = now () -. t0 in
      if elapsed > budget_s && joins < max_joins then List.rev (pt :: acc)
      else go (pt :: acc) (joins + 1)
  in
  go [] 1

let header title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let subheader title = Printf.printf "\n-- %s --\n" title

let print_points ?section name points =
  Printf.printf "%s\n" name;
  Printf.printf "  %6s  %12s  %12s  %8s  %10s  %7s\n" "joins" "Prairie(ms)"
    "Volcano(ms)" "ratio" "groups" "cost";
  List.iter
    (fun p ->
      Printf.printf "  %6d  %12.3f  %12.3f  %7.2f%%  %10d  %7.1f\n" p.joins
        p.prairie_ms p.volcano_ms
        ((p.prairie_ms /. Float.max 1e-9 p.volcano_ms -. 1.0) *. 100.0)
        p.groups p.cost;
      match section with
      | None -> ()
      | Some sec ->
        record_row
          [
            ("section", Json.Str sec);
            ("query", Json.Str name);
            ("joins", Json.Int p.joins);
            ("prairie_ms", Json.Float p.prairie_ms);
            ("volcano_ms", Json.Float p.volcano_ms);
            ("groups", Json.Int p.groups);
            ("lexprs", Json.Int p.lexprs);
            ("memo_hits", Json.Int p.memo_hits);
            ("cost", Json.Float p.cost);
          ])
    points
