(* Shared machinery for the benchmark harness: timing, sweeps, table
   printing. *)

module W = Prairie_workload
module Opt = Prairie_optimizers.Optimizers
module Search = Prairie_volcano.Search
module Stats = Prairie_volcano.Stats
module Memo = Prairie_volcano.Memo

let seeds = [ 101; 202; 303; 404; 505 ]
(* the paper varies base-class cardinalities five times per data point *)

let now () = Unix.gettimeofday ()

(* Milliseconds per optimization, averaged over enough repetitions to get a
   stable reading (the paper loops 3000 times because 1994 clocks were
   coarse; we adapt the repetition count to the measured cost). *)
let time_once f =
  let t0 = now () in
  f ();
  now () -. t0

let time_ms f =
  let first = time_once f in
  if first > 0.5 then first *. 1000.0
  else
    let reps = max 3 (min 200 (int_of_float (0.2 /. Float.max 1e-6 first))) in
    let t0 = now () in
    for _ = 1 to reps do
      f ()
    done;
    (now () -. t0) /. float_of_int reps *. 1000.0

(* ------------------------------------------------------------------ *)
(* Machine-readable results (--json FILE)                              *)
(*                                                                     *)
(* Sections push flat row objects into a run-global collector; the     *)
(* driver serializes them with run metadata at exit.  Rows are          *)
(* heterogeneous on purpose — each carries a "section" field and        *)
(* whatever measurements that section produces — so downstream tooling  *)
(* filters by section instead of depending on a rigid schema.          *)
(* ------------------------------------------------------------------ *)

module Json = struct
  type v =
    | Int of int
    | Float of float
    | Str of string
    | Obj of (string * v) list
    | Arr of v list

  let escape s =
    let buf = Buffer.create (String.length s + 2) in
    String.iter
      (function
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let rec output buf = function
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f ->
      if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.6g" f)
      else Buffer.add_string buf "null"
    | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf (Printf.sprintf "\"%s\":" (escape k));
          output buf v)
        fields;
      Buffer.add_char buf '}'
    | Arr vs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          output buf v)
        vs;
      Buffer.add_char buf ']'
end

let json_rows : Json.v list ref = ref []
let record_row fields = json_rows := Json.Obj fields :: !json_rows

let write_json file ~full ~sections =
  let buf = Buffer.create 4096 in
  Json.output buf
    (Json.Obj
       [
         ("schema", Json.Str "prairie-bench/1");
         ("full", Json.Str (if full then "true" else "false"));
         ("sections", Json.Arr (List.map (fun s -> Json.Str s) sections));
         ("rows", Json.Arr (List.rev !json_rows));
       ]);
  Buffer.add_char buf '\n';
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> Buffer.output_buffer oc buf)

type point = {
  joins : int;
  prairie_ms : float;
  volcano_ms : float;
  groups : int;
  lexprs : int;
  memo_hits : int;
  cost : float;
}

(* One data point of Figures 10-13: average optimization time over the five
   catalog instances, for both contestants. *)
let measure_point q ~joins =
  let instances = W.Queries.instances q ~joins ~seeds in
  let total_p = ref 0.0 and total_v = ref 0.0 in
  let groups = ref 0 and cost = ref 0.0 in
  let lexprs = ref 0 and memo_hits = ref 0 in
  List.iter
    (fun (inst : W.Queries.instance) ->
      let cat = inst.W.Queries.catalog in
      let prairie = Opt.oodb_prairie cat in
      let volcano = Opt.oodb_volcano cat in
      total_p := !total_p +. time_ms (fun () -> ignore (Opt.optimize prairie inst.W.Queries.expr));
      total_v := !total_v +. time_ms (fun () -> ignore (Opt.optimize volcano inst.W.Queries.expr));
      let r = Opt.optimize prairie inst.W.Queries.expr in
      groups := Search.group_count r.Opt.search;
      lexprs := Memo.lexpr_count (Search.memo r.Opt.search);
      memo_hits := (Search.stats r.Opt.search).Stats.memo_hits;
      cost := r.Opt.cost)
    instances;
  let n = float_of_int (List.length instances) in
  {
    joins;
    prairie_ms = !total_p /. n;
    volcano_ms = !total_v /. n;
    groups = !groups;
    lexprs = !lexprs;
    memo_hits = !memo_hits;
    cost = !cost;
  }

(* Sweep the join count until a per-point time budget is exhausted (the
   paper stops when virtual memory is exhausted; we stop on wall clock). *)
let sweep q ~max_joins ~budget_s =
  let rec go acc joins =
    if joins > max_joins then List.rev acc
    else
      let t0 = now () in
      let pt = measure_point q ~joins in
      let elapsed = now () -. t0 in
      if elapsed > budget_s && joins < max_joins then List.rev (pt :: acc)
      else go (pt :: acc) (joins + 1)
  in
  go [] 1

let header title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let subheader title = Printf.printf "\n-- %s --\n" title

let print_points ?section name points =
  Printf.printf "%s\n" name;
  Printf.printf "  %6s  %12s  %12s  %8s  %10s  %7s\n" "joins" "Prairie(ms)"
    "Volcano(ms)" "ratio" "groups" "cost";
  List.iter
    (fun p ->
      Printf.printf "  %6d  %12.3f  %12.3f  %7.2f%%  %10d  %7.1f\n" p.joins
        p.prairie_ms p.volcano_ms
        ((p.prairie_ms /. Float.max 1e-9 p.volcano_ms -. 1.0) *. 100.0)
        p.groups p.cost;
      match section with
      | None -> ()
      | Some sec ->
        record_row
          [
            ("section", Json.Str sec);
            ("query", Json.Str name);
            ("joins", Json.Int p.joins);
            ("prairie_ms", Json.Float p.prairie_ms);
            ("volcano_ms", Json.Float p.volcano_ms);
            ("groups", Json.Int p.groups);
            ("lexprs", Json.Int p.lexprs);
            ("memo_hits", Json.Int p.memo_hits);
            ("cost", Json.Float p.cost);
          ])
    points
