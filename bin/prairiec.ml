(* prairiec: the Prairie rule-specification compiler front-end.

   Subcommands:
     check    parse and validate a .prairie file
     lint     static analysis: structured diagnostics with stable codes
     analyze  whole-rule-set dataflow analysis: reachability, constant
              tests, property flow, subsumption/overlap (P3xx)
     verify   semantic verification: randomized counterexample search (P2xx)
     report   run the P2V pre-processor and print the translation report
     render   export an embedded rule set as .prairie source
     optimize run a workload query through a rule set
     trace    optimize with a structured event trace and explain the search
     profile  optimize under the span profiler: per-rule time attribution
     serve    batch-optimize a query mix on the parallel plan service
     sql      compile a SQL-like query, optimize and optionally execute *)

open Cmdliner

module Dsl = Prairie_dsl
module Explain = Prairie_volcano.Explain
module P2v = Prairie_p2v
module W = Prairie_workload
module Opt = Prairie_optimizers.Optimizers
module Obs_trace = Prairie_obs.Trace
module Metrics = Prairie_obs.Metrics
module Span = Prairie_obs.Span
module Slow_log = Prairie_obs.Slow_log
module Telemetry = Prairie_service.Telemetry

let default_catalog () =
  W.Catalogs.make (W.Catalogs.default_spec ~classes:4 ~indexed:true ~seed:1)

let load_ruleset path catalog =
  try Ok (Dsl.Elaborate.load ~helpers:(Prairie_algebra.Helpers.env catalog) path) with
  | Dsl.Elaborate.Elab_error errs ->
    Error (String.concat "\n" (List.map (fun e -> "error: " ^ e) errs))
  | Dsl.Parser.Parse_error (pos, msg) ->
    Error
      (Format.asprintf "%s: parse error at %a: %s" path Dsl.Lexer.pp_position
         pos msg)
  | Dsl.Lexer.Lex_error (pos, msg) ->
    Error
      (Format.asprintf "%s: lexical error at %a: %s" path Dsl.Lexer.pp_position
         pos msg)
  | Sys_error msg -> Error msg

let embedded = function
  | "relational" -> Ok (Prairie_algebra.Relational.ruleset (default_catalog ()))
  | "oodb" -> Ok (Prairie_algebra.Oodb.ruleset (default_catalog ()))
  | other ->
    Error (Printf.sprintf "unknown embedded rule set %S (have: relational, oodb)" other)

let verbose_arg =
  Arg.(
    value & flag
    & info [ "verbose"; "v" ] ~doc:"Trace the search engine (rule firings, winners).")

let setup_verbose v =
  if v then begin
    Logs.set_reporter (Logs.format_reporter ());
    Logs.Src.set_level Prairie_volcano.Search.log_src (Some Logs.Debug)
  end

let file_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"FILE" ~doc:"Rule-specification file (.prairie).")

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* ---------------- check ---------------- *)

let check_cmd =
  let run path =
    match load_ruleset path (default_catalog ()) with
    | Ok rs ->
      Printf.printf "%s: OK (%d T-rules, %d I-rules)\n" path
        (Prairie.Ruleset.trule_count rs)
        (Prairie.Ruleset.irule_count rs);
      `Ok ()
    | Error msg ->
      prerr_endline msg;
      `Error (false, "validation failed")
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Parse and validate a rule-specification file.")
    Term.(ret (const run $ file_arg))

(* ---------------- lint ---------------- *)

let lint_cmd =
  let module Lint = Prairie_lint.Lint in
  let module Diag = Prairie.Diagnostic in
  let files_arg =
    Arg.(
      non_empty
      & pos_all file []
      & info [] ~docv:"FILE" ~doc:"Rule-specification files (.prairie).")
  in
  let format_arg =
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
      & info [ "format" ] ~docv:"FORMAT"
          ~doc:"Output format: $(b,text) or $(b,json).")
  in
  let max_warnings_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-warnings" ] ~docv:"N"
          ~doc:"Fail (exit 2) when more than $(docv) warnings are found.")
  in
  let run files format max_warnings =
    let helpers = Prairie_algebra.Helpers.env (default_catalog ()) in
    let results =
      List.map (fun path -> (path, Lint.lint_file ~helpers path)) files
    in
    let totals (_, ds) = Lint.summary ds in
    let total_errors =
      List.fold_left (fun n r -> n + (fun (e, _, _) -> e) (totals r)) 0 results
    in
    let total_warnings =
      List.fold_left (fun n r -> n + (fun (_, w, _) -> w) (totals r)) 0 results
    in
    (match format with
    | `Text ->
      List.iter
        (fun (path, ds) ->
          match ds with
          | [] -> Printf.printf "%s: clean\n" path
          | ds ->
            List.iter
              (fun d -> Printf.printf "%s: %s\n" path (Diag.to_string d))
              ds)
        results;
      if total_errors > 0 || total_warnings > 0 then
        Printf.printf "%d error(s), %d warning(s)\n" total_errors total_warnings
    | `Json ->
      let file_json (path, ds) =
        let e, w, _ = Lint.summary ds in
        Printf.sprintf
          "{\"file\":\"%s\",\"diagnostics\":[%s],\"errors\":%d,\"warnings\":%d}"
          (json_escape path)
          (String.concat "," (List.map Diag.to_json ds))
          e w
      in
      Printf.printf
        "{\"files\":[%s],\"total_errors\":%d,\"total_warnings\":%d}\n"
        (String.concat "," (List.map file_json results))
        total_errors total_warnings);
    if total_errors > 0 then exit 1;
    (match max_warnings with
    | Some n when total_warnings > n ->
      Printf.eprintf "too many warnings: %d (allowed: %d)\n" total_warnings n;
      exit 2
    | _ -> ());
    `Ok ()
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Statically analyze rule-specification files: declaration, binding, \
          property-classification, termination and enforcer checks with \
          stable diagnostic codes (P001...). Exits 1 on errors, 2 when \
          $(b,--max-warnings) is exceeded.")
    Term.(ret (const run $ files_arg $ format_arg $ max_warnings_arg))

(* ---------------- analyze ---------------- *)

let analyze_cmd =
  let module Analysis = Prairie_analysis.Analysis in
  let module Diag = Prairie.Diagnostic in
  let files_arg =
    Arg.(
      non_empty
      & pos_all file []
      & info [] ~docv:"FILE" ~doc:"Rule-specification files (.prairie).")
  in
  let roots_arg =
    Arg.(
      value
      & opt_all string []
      & info [ "roots" ] ~docv:"OP"
          ~doc:
            "Workload root operator for the reachability closure \
             (repeatable).  Default: every declared non-enforcer operator.")
  in
  let format_arg =
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
      & info [ "format" ] ~docv:"FORMAT"
          ~doc:"Output format: $(b,text) or $(b,json).")
  in
  let max_warnings_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-warnings" ] ~docv:"N"
          ~doc:"Fail (exit 2) when more than $(docv) warnings are found.")
  in
  let run files roots format max_warnings =
    let config = { Analysis.roots } in
    let results =
      List.map (fun path -> (path, Analysis.analyze_file ~config path)) files
    in
    let total_errors =
      List.fold_left
        (fun n (_, (r : Analysis.report)) ->
          n + (fun (e, _, _) -> e) (Analysis.summary r.Analysis.diagnostics))
        0 results
    in
    let total_warnings =
      List.fold_left
        (fun n (_, (r : Analysis.report)) ->
          n + (fun (_, w, _) -> w) (Analysis.summary r.Analysis.diagnostics))
        0 results
    in
    (match format with
    | `Text ->
      List.iter
        (fun (path, (r : Analysis.report)) ->
          (match r.Analysis.diagnostics with
          | [] -> Printf.printf "%s: clean\n" path
          | ds ->
            List.iter
              (fun d -> Printf.printf "%s: %s\n" path (Diag.to_string d))
              ds);
          Printf.printf
            "%s: %d operator(s) reachable, %d dead rule(s), %d unreachable \
             rule(s)\n"
            path
            (List.length r.Analysis.reachable)
            (List.length r.Analysis.dead_rules)
            (List.length r.Analysis.unreachable_rules))
        results;
      if total_errors > 0 || total_warnings > 0 then
        Printf.printf "%d error(s), %d warning(s)\n" total_errors
          total_warnings
    | `Json ->
      let strings ss =
        String.concat ","
          (List.map (fun s -> Printf.sprintf "\"%s\"" (json_escape s)) ss)
      in
      let file_json (path, (r : Analysis.report)) =
        let e, w, _ = Analysis.summary r.Analysis.diagnostics in
        Printf.sprintf
          "{\"file\":\"%s\",\"ruleset\":\"%s\",\"diagnostics\":[%s],\
           \"errors\":%d,\"warnings\":%d,\"reachable\":[%s],\
           \"dead_rules\":[%s],\"unreachable_rules\":[%s],\
           \"required_physical\":[%s],\"produced_physical\":[%s]}"
          (json_escape path)
          (json_escape r.Analysis.ruleset)
          (String.concat "," (List.map Diag.to_json r.Analysis.diagnostics))
          e w
          (strings r.Analysis.reachable)
          (strings r.Analysis.dead_rules)
          (strings r.Analysis.unreachable_rules)
          (strings r.Analysis.required_physical)
          (strings r.Analysis.produced_physical)
      in
      Printf.printf
        "{\"files\":[%s],\"total_errors\":%d,\"total_warnings\":%d}\n"
        (String.concat "," (List.map file_json results))
        total_errors total_warnings);
    if total_errors > 0 then exit 1;
    (match max_warnings with
    | Some n when total_warnings > n ->
      Printf.eprintf "too many warnings: %d (allowed: %d)\n" total_warnings n;
      exit 2
    | _ -> ());
    `Ok ()
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Run whole-rule-set dataflow analysis: operator reachability, \
          constant-test folding, physical-property flow and pairwise \
          subsumption/overlap (P3xx codes). Where $(b,lint) checks each \
          rule locally, $(b,analyze) reasons across the rule set. Exits 1 \
          on errors, 2 when $(b,--max-warnings) is exceeded.")
    Term.(ret (const run $ files_arg $ roots_arg $ format_arg $ max_warnings_arg))

(* ---------------- verify ---------------- *)

let verify_cmd =
  let module Verify = Prairie_verify.Verify in
  let module Diag = Prairie.Diagnostic in
  let files_arg =
    Arg.(
      non_empty
      & pos_all file []
      & info [] ~docv:"FILE" ~doc:"Rule-specification files (.prairie).")
  in
  let rules_arg =
    Arg.(
      value
      & opt_all string []
      & info [ "rules" ] ~docv:"RULE"
          ~doc:
            "Restrict verification to the named T-rule (repeatable). \
             Skips the whole-rule-set oracle phase.")
  in
  let seed_arg =
    Arg.(
      value
      & opt int Verify.default_config.Verify.seed
      & info [ "seed" ] ~docv:"SEED"
          ~doc:"Master random seed; every case seed derives from it.")
  in
  let budget_arg =
    Arg.(
      value
      & opt int Verify.default_config.Verify.budget
      & info [ "budget" ] ~docv:"N"
          ~doc:"Generated cases per T-rule (and oracle queries).")
  in
  let oracle_forms_arg =
    Arg.(
      value
      & opt int Verify.default_config.Verify.oracle_forms
      & info [ "oracle-forms" ] ~docv:"N"
          ~doc:
            "Logical-closure cap for the naive-oracle comparison; queries \
             whose closure reaches the cap are skipped (the naive best \
             would not be authoritative).")
  in
  let format_arg =
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
      & info [ "format" ] ~docv:"FORMAT"
          ~doc:"Output format: $(b,text) or $(b,json).")
  in
  let max_warnings_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-warnings" ] ~docv:"N"
          ~doc:"Fail (exit 2) when more than $(docv) warnings are found.")
  in
  let run files rules seed budget oracle_forms format max_warnings =
    let config =
      { Verify.default_config with Verify.seed; budget; oracle_forms; rules }
    in
    let results =
      List.map (fun path -> (path, Verify.verify_file ~config path)) files
    in
    let total_errors =
      List.fold_left
        (fun n (_, (r : Verify.report)) ->
          n + (fun (e, _, _) -> e) (Verify.summary r.Verify.diagnostics))
        0 results
    in
    let total_warnings =
      List.fold_left
        (fun n (_, (r : Verify.report)) ->
          n + (fun (_, w, _) -> w) (Verify.summary r.Verify.diagnostics))
        0 results
    in
    (match format with
    | `Text ->
      List.iter
        (fun (path, (r : Verify.report)) ->
          (match r.Verify.diagnostics with
          | [] -> Printf.printf "%s: clean\n" path
          | ds ->
            List.iter
              (fun d -> Printf.printf "%s: %s\n" path (Diag.to_string d))
              ds);
          Printf.printf
            "%s: %d rule(s) checked, %d case(s), %d counterexample(s), %d \
             shrink step(s) (seed %d)\n"
            path r.Verify.rules_checked r.Verify.cases_generated
            r.Verify.counterexamples r.Verify.shrink_steps r.Verify.seed)
        results;
      if total_errors > 0 || total_warnings > 0 then
        Printf.printf "%d error(s), %d warning(s)\n" total_errors
          total_warnings
    | `Json ->
      let rule_json (r : Verify.rule_report) =
        Printf.sprintf
          "{\"rule\":\"%s\",\"cases\":%d,\"redexes\":%d,\
           \"counterexamples\":%d,\"shrink_steps\":%d}"
          (json_escape r.Verify.rule) r.Verify.cases r.Verify.redexes
          r.Verify.counterexamples r.Verify.shrink_steps
      in
      let file_json (path, (r : Verify.report)) =
        let e, w, _ = Verify.summary r.Verify.diagnostics in
        Printf.sprintf
          "{\"file\":\"%s\",\"ruleset\":\"%s\",\"seed\":%d,\
           \"diagnostics\":[%s],\"errors\":%d,\"warnings\":%d,\
           \"rules_checked\":%d,\"cases_generated\":%d,\
           \"counterexamples\":%d,\"shrink_steps\":%d,\"rules\":[%s]}"
          (json_escape path)
          (json_escape r.Verify.ruleset)
          r.Verify.seed
          (String.concat "," (List.map Diag.to_json r.Verify.diagnostics))
          e w r.Verify.rules_checked r.Verify.cases_generated
          r.Verify.counterexamples r.Verify.shrink_steps
          (String.concat "," (List.map rule_json r.Verify.rules))
      in
      Printf.printf
        "{\"files\":[%s],\"total_errors\":%d,\"total_warnings\":%d,\
         \"seed\":%d}\n"
        (String.concat "," (List.map file_json results))
        total_errors total_warnings seed);
    if total_errors > 0 then exit 1;
    (match max_warnings with
    | Some n when total_warnings > n ->
      Printf.eprintf "too many warnings: %d (allowed: %d)\n" total_warnings n;
      exit 2
    | _ -> ());
    `Ok ()
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Semantically verify rule-specification files: generate random \
          catalogs and expressions per T-rule, apply the rules, and hunt \
          for crashes, root-property changes, oracle cost divergence and \
          run-time rewrite cycles (P2xx codes), shrinking counterexamples \
          to minimal witnesses. Deterministic in $(b,--seed). Exits 1 on \
          errors, 2 when $(b,--max-warnings) is exceeded.")
    Term.(
      ret
        (const run $ files_arg $ rules_arg $ seed_arg $ budget_arg
       $ oracle_forms_arg $ format_arg $ max_warnings_arg))

(* ---------------- report ---------------- *)

let report_cmd =
  let compose =
    Arg.(
      value & opt bool true
      & info [ "compose" ] ~doc:"Enable rule merging/composition (§3.3).")
  in
  let run path compose =
    match load_ruleset path (default_catalog ()) with
    | Ok rs ->
      let tr = P2v.Translate.translate ~compose rs in
      Format.printf "%a@." P2v.Report.pp (P2v.Report.of_translation tr);
      `Ok ()
    | Error msg ->
      prerr_endline msg;
      `Error (false, "translation failed")
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Run the P2V pre-processor and print the translation report.")
    Term.(ret (const run $ file_arg $ compose))

(* ---------------- render ---------------- *)

let render_cmd =
  let name_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"NAME" ~doc:"Embedded rule set: relational or oodb.")
  in
  let run name =
    match embedded name with
    | Ok rs ->
      print_string (Dsl.Render.ruleset_to_string rs);
      `Ok ()
    | Error msg ->
      prerr_endline msg;
      `Error (false, "unknown rule set")
  in
  Cmd.v
    (Cmd.info "render"
       ~doc:"Print an embedded rule set as .prairie source (exportable).")
    Term.(ret (const run $ name_arg))

(* ---------------- optimize ---------------- *)

let optimize_cmd =
  let query_arg =
    Arg.(
      value & opt int 5
      & info [ "query"; "q" ] ~docv:"N" ~doc:"Workload query Q$(docv) (1-8).")
  in
  let joins_arg =
    Arg.(value & opt int 2 & info [ "joins"; "n" ] ~docv:"N" ~doc:"Number of joins.")
  in
  let seed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Catalog seed.")
  in
  let ruleset_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "ruleset"; "r" ] ~docv:"FILE"
          ~doc:"Rule file to use instead of the embedded OODB rule set.")
  in
  let strategy_arg =
    Arg.(
      value
      & opt (enum [ ("top-down", `Top_down); ("bottom-up", `Bottom_up) ]) `Top_down
      & info [ "strategy" ] ~docv:"STRATEGY"
          ~doc:"Search strategy: $(b,top-down) (Volcano) or $(b,bottom-up)                 (System R dynamic programming).")
  in
  let search_jobs_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "search-jobs" ] ~docv:"N"
          ~doc:
            "Explore across $(docv) domains (top-down only; default \
             \\$PRAIRIE_SEARCH_JOBS, else 1).  Plans and costs are \
             byte-identical at any value.")
  in
  let run qn joins seed ruleset_path strategy search_jobs verbose =
    setup_verbose verbose;
    match W.Queries.of_int qn with
    | None -> `Error (false, "query number must be 1-8")
    | Some q -> (
      let inst = W.Queries.instance q ~joins ~seed in
      let catalog = inst.W.Queries.catalog in
      let ruleset_result =
        match ruleset_path with
        | None -> Ok (Prairie_algebra.Oodb.ruleset catalog)
        | Some path -> load_ruleset path catalog
      in
      match ruleset_result with
      | Error msg ->
        prerr_endline msg;
        `Error (false, "could not load the rule set")
      | Ok rs ->
        let tr = P2v.Translate.translate rs in
        let opt =
          {
            Opt.name = rs.Prairie.Ruleset.name;
            volcano = tr.P2v.Translate.volcano;
            prepare = P2v.Translate.prepare_query tr;
          }
        in
        Format.printf "query %s (%d joins, seed %d): %a@." (W.Queries.name q)
          joins seed Prairie.Expr.pp inst.W.Queries.expr;
        (match strategy with
        | `Top_down -> (
          let r = Opt.optimize ?search_jobs opt inst.W.Queries.expr in
          match r.Opt.plan with
          | Some plan ->
            Format.printf "@.best plan: %s@.@." (Explain.summary plan);
            Format.printf "%a" Explain.pp plan;
            Format.printf "@.%a@." Prairie_volcano.Stats.pp
              (Prairie_volcano.Search.stats r.Opt.search)
          | None -> print_endline "no plan found")
        | `Bottom_up -> (
          let expr, required = opt.Opt.prepare inst.W.Queries.expr in
          let r = Prairie_volcano.Bottom_up.optimize ~required opt.Opt.volcano expr in
          match r.Prairie_volcano.Bottom_up.plan with
          | Some plan ->
            Format.printf "@.best plan (bottom-up): %s@.@." (Explain.summary plan);
            Format.printf "%a" Explain.pp plan;
            Format.printf
              "@.%d groups, %d (group, requirement) DP entries, %d plans costed@."
              r.Prairie_volcano.Bottom_up.groups_explored
              r.Prairie_volcano.Bottom_up.requirements_considered
              r.Prairie_volcano.Bottom_up.plans_costed
          | None -> print_endline "no plan found"));
        `Ok ())
  in
  Cmd.v
    (Cmd.info "optimize" ~doc:"Optimize a workload query with a rule set.")
    Term.(
      ret
        (const run $ query_arg $ joins_arg $ seed_arg $ ruleset_arg
       $ strategy_arg $ search_jobs_arg $ verbose_arg))

(* ---------------- trace ---------------- *)

let trace_cmd =
  let query_arg =
    Arg.(
      value & opt int 5
      & info [ "query"; "q" ] ~docv:"N" ~doc:"Workload query Q$(docv) (1-8).")
  in
  let joins_arg =
    Arg.(value & opt int 2 & info [ "joins"; "n" ] ~docv:"N" ~doc:"Number of joins.")
  in
  let seed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Catalog seed.")
  in
  let ruleset_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "ruleset"; "r" ] ~docv:"FILE"
          ~doc:"Rule file to use instead of the embedded OODB rule set.")
  in
  let capacity_arg =
    Arg.(
      value & opt int 65536
      & info [ "capacity" ] ~docv:"K"
          ~doc:"Trace ring-buffer capacity: older events beyond K are dropped.")
  in
  let budget_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "group-budget" ] ~docv:"B"
          ~doc:"Memo group budget (shows budget-exhaustion in the trace).")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out"; "o" ] ~docv:"FILE"
          ~doc:"Also dump the raw trace to $(docv) (- for stdout).")
  in
  let format_arg =
    Arg.(
      value
      & opt (enum [ ("jsonl", `Jsonl); ("chrome", `Chrome) ]) `Jsonl
      & info [ "format"; "f" ] ~docv:"FORMAT"
          ~doc:
            "Dump format for --out: $(b,jsonl) (one JSON event per line) or \
             $(b,chrome) (Chrome trace-event JSON, loadable in \
             chrome://tracing and Perfetto).")
  in
  let run qn joins seed ruleset_path capacity group_budget out format verbose =
    setup_verbose verbose;
    if capacity < 1 then `Error (false, "--capacity must be at least 1")
    else
      match W.Queries.of_int qn with
      | None -> `Error (false, "query number must be 1-8")
      | Some q -> (
        let inst = W.Queries.instance q ~joins ~seed in
        let catalog = inst.W.Queries.catalog in
        let ruleset_result =
          match ruleset_path with
          | None -> Ok (Prairie_algebra.Oodb.ruleset catalog)
          | Some path -> load_ruleset path catalog
        in
        match ruleset_result with
        | Error msg ->
          prerr_endline msg;
          `Error (false, "could not load the rule set")
        | Ok rs ->
          let tr = P2v.Translate.translate rs in
          let opt =
            {
              Opt.name = rs.Prairie.Ruleset.name;
              volcano = tr.P2v.Translate.volcano;
              prepare = P2v.Translate.prepare_query tr;
            }
          in
          let sink = Obs_trace.create ~capacity () in
          Format.printf "query %s (%d joins, seed %d): %a@." (W.Queries.name q)
            joins seed Prairie.Expr.pp inst.W.Queries.expr;
          let r = Opt.optimize ?group_budget ~trace:sink opt inst.W.Queries.expr in
          (match r.Opt.plan with
          | Some plan ->
            Format.printf "@.best plan: %s@.@." (Explain.summary plan);
            Format.printf "%a" Explain.pp plan
          | None -> print_endline "no plan found");
          Format.printf "@.%a@." Explain.trace sink;
          (match out with
          | None -> ()
          | Some dest ->
            let dump oc =
              match format with
              | `Jsonl -> Obs_trace.output_jsonl oc sink
              | `Chrome -> output_string oc (Span.chrome_of_trace sink)
            in
            (match dest with
            | "-" -> dump stdout
            | path ->
              let oc = open_out path in
              Fun.protect ~finally:(fun () -> close_out oc) (fun () -> dump oc);
              Printf.printf "trace written to %s (%d events, %d dropped)\n" path
                (Obs_trace.length sink) (Obs_trace.dropped sink)));
          `Ok ())
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Optimize a workload query with structured search tracing: the \
          per-rule account of matches, applications and rejections (with \
          reasons), winner changes and memo behaviour — why the plan was \
          chosen, and why other rules never fired.")
    Term.(
      ret
        (const run $ query_arg $ joins_arg $ seed_arg $ ruleset_arg
       $ capacity_arg $ budget_arg $ out_arg $ format_arg $ verbose_arg))

(* ---------------- profile ---------------- *)

let profile_cmd =
  let query_arg =
    Arg.(
      value & opt int 5
      & info [ "query"; "q" ] ~docv:"N" ~doc:"Workload query Q$(docv) (1-8).")
  in
  let joins_arg =
    Arg.(value & opt int 2 & info [ "joins"; "n" ] ~docv:"N" ~doc:"Number of joins.")
  in
  let seed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Catalog seed.")
  in
  let ruleset_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "ruleset"; "r" ] ~docv:"FILE"
          ~doc:"Rule file to use instead of the embedded OODB rule set.")
  in
  let capacity_arg =
    Arg.(
      value & opt int 65536
      & info [ "capacity" ] ~docv:"K"
          ~doc:
            "Span ring-buffer capacity: older span records beyond K are \
             dropped (the per-rule aggregates stay exact).")
  in
  let budget_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "group-budget" ] ~docv:"B"
          ~doc:"Memo group budget (profile a degraded search).")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out"; "o" ] ~docv:"FILE"
          ~doc:
            "Also dump the spans as Chrome trace-event JSON to $(docv) (- for \
             stdout); load it in chrome://tracing or Perfetto.")
  in
  let run qn joins seed ruleset_path capacity group_budget out verbose =
    setup_verbose verbose;
    if capacity < 1 then `Error (false, "--capacity must be at least 1")
    else
      match W.Queries.of_int qn with
      | None -> `Error (false, "query number must be 1-8")
      | Some q -> (
        let inst = W.Queries.instance q ~joins ~seed in
        let catalog = inst.W.Queries.catalog in
        let ruleset_result =
          match ruleset_path with
          | None -> Ok (Prairie_algebra.Oodb.ruleset catalog)
          | Some path -> load_ruleset path catalog
        in
        match ruleset_result with
        | Error msg ->
          prerr_endline msg;
          `Error (false, "could not load the rule set")
        | Ok rs ->
          let tr = P2v.Translate.translate rs in
          let opt =
            {
              Opt.name = rs.Prairie.Ruleset.name;
              volcano = tr.P2v.Translate.volcano;
              prepare = P2v.Translate.prepare_query tr;
            }
          in
          let sink = Span.create ~capacity () in
          Format.printf "query %s (%d joins, seed %d): %a@." (W.Queries.name q)
            joins seed Prairie.Expr.pp inst.W.Queries.expr;
          let t0 = Unix.gettimeofday () in
          let r = Opt.optimize ?group_budget ~spans:sink opt inst.W.Queries.expr in
          let wall_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
          (match r.Opt.plan with
          | Some plan ->
            Format.printf "@.best plan: %s (cost %.3f)@." (Explain.summary plan)
              r.Opt.cost
          | None -> print_endline "no plan found");
          Format.printf "@.%a@." Explain.profile sink;
          let rooted_ms = Int64.to_float (Span.root_total_ns sink) /. 1e6 in
          Format.printf
            "wall %.3f ms, rooted spans account for %.3f ms (%.1f%%)@." wall_ms
            rooted_ms
            (if wall_ms > 0.0 then 100.0 *. rooted_ms /. wall_ms else 0.0);
          (match out with
          | None -> ()
          | Some "-" -> print_string (Span.to_chrome sink)
          | Some path ->
            let oc = open_out path in
            Fun.protect
              ~finally:(fun () -> close_out oc)
              (fun () -> output_string oc (Span.to_chrome sink));
            Printf.printf "chrome trace written to %s (%d spans, %d dropped)\n"
              path (Span.length sink) (Span.dropped sink));
          `Ok ())
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Optimize a workload query under the span profiler: hierarchical \
          timed spans over the search phases (explore, match, apply, cost, \
          enforcers, memo inserts) with per-rule attribution, reported as a \
          self/total time table and optionally exported as a Chrome trace.")
    Term.(
      ret
        (const run $ query_arg $ joins_arg $ seed_arg $ ruleset_arg
       $ capacity_arg $ budget_arg $ out_arg $ verbose_arg))

(* ---------------- serve ---------------- *)

let serve_cmd =
  let jobs_arg =
    Arg.(
      value & opt int 0
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Worker domains for the plan service (0 = one per available \
             core).")
  in
  let serve_search_jobs_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "search-jobs" ] ~docv:"N"
          ~doc:
            "Intra-query exploration domains per worker search (default \
             \\$PRAIRIE_SEARCH_JOBS, else 1).  Keep jobs x search-jobs near \
             the core count.")
  in
  let cache_size_arg =
    Arg.(
      value & opt int 256
      & info [ "cache-size"; "k" ] ~docv:"K"
          ~doc:"Plan-cache capacity (LRU entries).")
  in
  let requests_arg =
    Arg.(
      value & opt int 32
      & info [ "requests"; "n" ] ~docv:"N"
          ~doc:"Batch size: the workload query mix is cycled to N requests.")
  in
  let joins_arg =
    Arg.(
      value & opt int 2
      & info [ "joins" ] ~docv:"N" ~doc:"Maximum joins per generated query.")
  in
  let seed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Catalog seed.")
  in
  let budget_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "group-budget" ] ~docv:"B"
          ~doc:
            "Per-request memo budget: over-large queries degrade gracefully \
             instead of stalling a worker.")
  in
  let metrics_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:
            "Dump service telemetry (request/search counters, latency \
             histograms, cache and per-worker gauges) in Prometheus text \
             format to $(docv) after the run (- for stdout).")
  in
  let telemetry_port_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "telemetry-port" ] ~docv:"PORT"
          ~doc:
            "Serve live telemetry over HTTP on 127.0.0.1:$(docv) while the \
             batches run: GET /metrics (Prometheus text, including p50/p99 \
             latency summaries), /healthz and /tracez (recent slow queries). \
             0 picks an ephemeral port (printed on startup).")
  in
  let linger_arg =
    Arg.(
      value & opt float 0.0
      & info [ "telemetry-linger" ] ~docv:"SECONDS"
          ~doc:
            "Keep the telemetry endpoint up for $(docv) seconds after the \
             batches finish (for scraping the final counters).")
  in
  let slow_ms_arg =
    Arg.(
      value & opt float 100.0
      & info [ "slow-ms" ] ~docv:"MS"
          ~doc:
            "Slow-query threshold in milliseconds: searches at or above it \
             are recorded in the slow-query log served at /tracez.")
  in
  let run jobs search_jobs cache_size requests max_joins seed group_budget
      metrics_file telemetry_port linger slow_ms verbose =
    setup_verbose verbose;
    if max_joins < 1 then `Error (false, "--joins must be at least 1")
    else if requests < 0 then `Error (false, "--requests must be non-negative")
    else if slow_ms < 0.0 then `Error (false, "--slow-ms must be non-negative")
    else if linger < 0.0 then
      `Error (false, "--telemetry-linger must be non-negative")
    else begin
    let jobs = if jobs <= 0 then Prairie_service.Pool.default_jobs () else jobs in
    let metrics =
      (* the endpoint implies a registry even without a --metrics dump *)
      match (metrics_file, telemetry_port) with
      | None, None -> None
      | _ -> Some (Metrics.create ())
    in
    let slow_log =
      match telemetry_port with
      | None -> None
      | Some _ -> Some (Slow_log.create ~threshold:(slow_ms /. 1000.0) ())
    in
    let telemetry =
      match telemetry_port with
      | None -> None
      | Some port -> (
        match Telemetry.start ?metrics ?slow_log ~port () with
        | server ->
          Printf.printf
            "telemetry: http://%s:%d/metrics (also /healthz, /tracez)\n%!"
            (Telemetry.addr server) (Telemetry.port server);
          Some server
        | exception Unix.Unix_error (err, _, _) ->
          Printf.eprintf "telemetry: cannot bind port %d: %s\n%!" port
            (Unix.error_message err);
          exit 1)
    in
    let catalog =
      W.Catalogs.make
        (W.Catalogs.default_spec ~classes:(max_joins + 1) ~indexed:true ~seed)
    in
    let opt = Opt.oodb_prairie catalog in
    let distinct =
      List.concat_map
        (fun family ->
          List.map
            (fun joins -> Opt.request (W.Expressions.build family catalog ~joins))
            (List.init max_joins (fun i -> i + 1)))
        W.Expressions.all_families
    in
    let batch =
      List.init requests (fun i -> List.nth distinct (i mod List.length distinct))
    in
    let cache = Opt.Plan_cache.create ~capacity:cache_size () in
    let timed f =
      let t0 = Unix.gettimeofday () in
      let v = f () in
      (v, (Unix.gettimeofday () -. t0) *. 1000.0)
    in
    Printf.printf "plan service: %d requests (%d distinct), %d jobs, cache %d\n"
      (List.length batch) (List.length distinct) jobs cache_size;
    let cold, t_cold =
      timed (fun () ->
          Opt.serve ?group_budget ~jobs ?search_jobs ~cache ?metrics ?slow_log
            opt batch)
    in
    let warm, t_warm =
      timed (fun () ->
          Opt.serve ?group_budget ~jobs ?search_jobs ~cache ?metrics ?slow_log
            opt batch)
    in
    let summarize label served t =
      let hits = List.length (List.filter (fun s -> s.Opt.cache_hit) served) in
      let degraded = List.length (List.filter (fun s -> s.Opt.budget_hit) served) in
      let no_plan = List.length (List.filter (fun s -> s.Opt.plan = None) served) in
      Printf.printf
        "  %-5s %8.1f ms  %5.1f req/s  %d served without a fresh search, %d \
         degraded, %d without a plan\n"
        label t
        (float_of_int (List.length served) /. (Float.max 1e-6 t /. 1000.0))
        hits degraded no_plan
    in
    summarize "cold" cold t_cold;
    summarize "warm" warm t_warm;
    Format.printf "  cache: %a@." Opt.Plan_cache.pp_stats cache;
    (match (metrics_file, metrics) with
    | Some "-", Some m -> Metrics.output stdout `Prometheus m
    | Some path, Some m ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> Metrics.output oc `Prometheus m);
      Printf.printf "  metrics written to %s\n" path
    | _ -> ());
    (match slow_log with
    | Some log when Slow_log.length log > 0 ->
      Printf.printf "  slow-query log: %d search(es) at or above %.1f ms\n"
        (Slow_log.length log) slow_ms
    | _ -> ());
    (match telemetry with
    | None -> ()
    | Some server ->
      if linger > 0.0 then begin
        Printf.printf "telemetry: lingering %.1f s before shutdown\n%!" linger;
        Unix.sleepf linger
      end;
      Telemetry.stop server);
    `Ok ()
    end
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the parallel plan service on a batch of workload queries: a \
          domain pool of searches sharing a fingerprint-keyed LRU plan \
          cache.")
    Term.(
      ret
        (const run $ jobs_arg $ serve_search_jobs_arg $ cache_size_arg
       $ requests_arg $ joins_arg $ seed_arg $ budget_arg $ metrics_arg
       $ telemetry_port_arg $ linger_arg $ slow_ms_arg $ verbose_arg))

(* ---------------- sql ---------------- *)

let sql_cmd =
  let query_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"SQL"
          ~doc:
            "Query text, e.g. 'select * from C1, C2 where C1.rC1 = C2.oid \
             and C1.bC1 = 3'.")
  in
  let classes_arg =
    Arg.(
      value & opt int 4
      & info [ "classes" ] ~docv:"N" ~doc:"Catalog size (classes C1..CN).")
  in
  let seed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Catalog seed.")
  in
  let execute_arg =
    Arg.(
      value & flag
      & info [ "execute"; "x" ]
          ~doc:"Generate synthetic data and run the winning plan.")
  in
  let run sql classes seed execute verbose =
    setup_verbose verbose;
    let catalog =
      W.Catalogs.make (W.Catalogs.default_spec ~classes ~indexed:true ~seed)
    in
    match Prairie_query.Query.compile_string catalog sql with
    | exception Prairie_query.Query.Error msg ->
      prerr_endline ("error: " ^ msg);
      `Error (false, "bad query")
    | expr -> (
      Format.printf "operator tree: %a@." Prairie.Expr.pp expr;
      let r = Opt.optimize (Opt.oodb_prairie catalog) expr in
      match r.Opt.plan with
      | None ->
        print_endline "no plan found";
        `Ok ()
      | Some plan ->
        Format.printf "@.best plan: %s@.@." (Explain.summary plan);
        Format.printf "%a" Explain.pp plan;
        if execute then begin
          let db = Prairie_executor.Data_gen.database ~seed:(seed * 31) catalog in
          let schema, rows = Prairie_executor.Compile.execute_plan db plan in
          Format.printf "@.%d result tuples@." (List.length rows);
          List.iteri
            (fun i row ->
              if i < 10 then
                Format.printf "  %a@." (Prairie_executor.Tuple.pp schema) row)
            rows;
          if List.length rows > 10 then
            Format.printf "  ... (%d more)@." (List.length rows - 10)
        end;
        `Ok ())
  in
  Cmd.v
    (Cmd.info "sql"
       ~doc:
         "Compile a SQL-like query over a synthetic catalog, optimize it, \
          and optionally execute the plan.")
    Term.(
      ret
        (const run $ query_arg $ classes_arg $ seed_arg $ execute_arg
       $ verbose_arg))

let () =
  let info =
    Cmd.info "prairiec" ~version:"1.0.0"
      ~doc:
        "The Prairie rule-specification framework: validate, translate \
         (P2V) and run rule-based query optimizers."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            check_cmd;
            lint_cmd;
            analyze_cmd;
            verify_cmd;
            report_cmd;
            render_cmd;
            optimize_cmd;
            trace_cmd;
            profile_cmd;
            serve_cmd;
            sql_cmd;
          ]))
