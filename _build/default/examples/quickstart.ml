(* Quickstart: define a catalog, write a query, optimize it.

     dune exec examples/quickstart.exe

   The pipeline is the paper's Figure 8: a Prairie rule set is translated
   by the P2V pre-processor into a Volcano rule set, and the Volcano search
   engine finds the cheapest access plan. *)

module Catalog = Prairie_catalog.Catalog
module Rel = Prairie_algebra.Relational
module A = Prairie_value.Attribute
module P = Prairie_value.Predicate

let attr owner name = A.make ~owner ~name
let ( === ) a b = P.Cmp (P.Eq, P.T_attr a, P.T_attr b)

let () =
  (* 1. A catalog: two relations, one indexed. *)
  let catalog =
    Catalog.of_files
      [
        Rel.relation ~name:"emp" ~cardinality:10_000 ~indexes:[ "dept" ]
          [ ("dept", 100); ("salary", 1000) ];
        Rel.relation ~name:"dept" ~cardinality:100 [ ("dept", 100); ("city", 25) ];
      ]
  in

  (* 2. The paper's Section 2 rule set: RET/JOIN/SORT with File_scan,
        Index_scan, Nested_loops, Merge_join, Merge_sort and Null. *)
  let ruleset = Rel.ruleset catalog in
  Format.printf "Prairie rule set %S: %d T-rules, %d I-rules@."
    ruleset.Prairie.Ruleset.name
    (Prairie.Ruleset.trule_count ruleset)
    (Prairie.Ruleset.irule_count ruleset);

  (* 3. Run the P2V pre-processor. *)
  let translation = Prairie_p2v.Translate.translate ruleset in
  Format.printf "@.%a@.@." Prairie_p2v.Report.pp
    (Prairie_p2v.Report.of_translation translation);

  (* 4. An initialized operator tree: emp JOIN dept, with a selection
        folded into the retrieval of emp. *)
  let query =
    Rel.join catalog
      ~pred:(attr "emp" "dept" === attr "dept" "dept")
      (Rel.ret catalog ~pred:(P.Cmp (P.Eq, P.T_attr (attr "emp" "dept"), P.T_int 7)) "emp")
      (Rel.ret catalog "dept")
  in
  Format.printf "query: %a@." Prairie.Expr.pp query;

  (* 5. Optimize. *)
  let search = Prairie_volcano.Search.create translation.Prairie_p2v.Translate.volcano in
  match Prairie_volcano.Search.optimize search query with
  | None -> print_endline "no plan found"
  | Some plan ->
    Format.printf "@.best plan (cost %.2f):@.%a@."
      (Prairie_volcano.Plan.cost plan)
      Prairie_volcano.Plan.pp_verbose plan;
    Format.printf "@.search explored %d equivalence classes@."
      (Prairie_volcano.Search.group_count search)
