(* Optimize AND execute: the full path from query to rows.

     dune exec examples/execute_plan.exe

   Generates synthetic data for a workload catalog, optimizes a selection
   query, compiles the winning access plan to Volcano-style iterators, runs
   it, and cross-checks the result against a deliberately different plan. *)

module W = Prairie_workload
module Opt = Prairie_optimizers.Optimizers
module E = Prairie_executor
module Plan = Prairie_volcano.Plan

let () =
  (* a Q6-style query, but with a single selective conjunct so the result
     is small-but-non-empty: SELECT[bC1 = 1](C1 join C2) with an index *)
  let base = W.Queries.instance W.Queries.Q6 ~joins:2 ~seed:7 in
  let catalog = base.W.Queries.catalog in
  let query =
    Prairie_algebra.Init.select catalog
      ~pred:
        (Prairie_value.Predicate.Cmp
           ( Prairie_value.Predicate.Eq,
             Prairie_value.Predicate.T_attr (W.Catalogs.b_attr 1),
             Prairie_value.Predicate.T_int 1 ))
      (W.Expressions.e1 catalog ~joins:2)
  in
  let inst = { base with W.Queries.expr = query } in
  Format.printf "query: %a@.@." Prairie.Expr.pp inst.W.Queries.expr;

  (* synthetic data, deterministic per seed *)
  let db = E.Data_gen.database ~seed:2024 catalog in
  List.iter
    (fun f ->
      Format.printf "  table %-4s: %d rows@." f.Prairie_catalog.Stored_file.name
        f.Prairie_catalog.Stored_file.cardinality)
    (Prairie_catalog.Catalog.files catalog);

  (* optimize with the P2V-generated optimizer *)
  let r = Opt.optimize (Opt.oodb_prairie catalog) inst.W.Queries.expr in
  let plan = Option.get r.Opt.plan in
  Format.printf "@.optimized plan (cost %.2f): %a@." r.Opt.cost Plan.pp plan;

  (* compile to iterators and run *)
  let schema, rows = E.Compile.execute_plan db plan in
  Format.printf "@.executed: %d result tuples, %d columns@." (List.length rows)
    (Array.length schema);
  List.iteri
    (fun i row ->
      if i < 5 then Format.printf "  %a@." (E.Tuple.pp schema) row)
    rows;
  if List.length rows > 5 then Format.printf "  ... (%d more)@." (List.length rows - 5);

  (* cross-check: a different optimizer configuration may pick a different
     plan; the result multiset must be identical *)
  let alt = Opt.optimize ~pruning:false (Opt.oodb_volcano catalog) inst.W.Queries.expr in
  let alt_plan = Option.get alt.Opt.plan in
  let c1 = E.Compile.canonical_result (schema, rows) in
  let c2 = E.Compile.canonical_result (E.Compile.execute_plan db alt_plan) in
  Format.printf "@.alternative plan: %a@." Plan.pp alt_plan;
  Format.printf "results identical across plans: %b@." (c1 = c2);

  (* and against the slowest-but-obviously-correct plan: force nested
     evaluation by executing the unoptimized semantics via the oracle's
     cheapest plan on the naive side *)
  let ruleset = Opt.oodb_ruleset catalog in
  match
    Prairie.Naive.best_plan ruleset ~required:Prairie.Descriptor.empty
      inst.W.Queries.expr
  with
  | Some oracle ->
    let c3 =
      E.Compile.canonical_result (E.Compile.execute db oracle.Prairie.Naive.plan)
    in
    Format.printf "oracle plan agrees too: %b@." (c1 = c3)
  | None -> print_endline "oracle found no plan"
