examples/oodb_materialize.mli:
