examples/oodb_materialize.ml: Float Format List Prairie Prairie_optimizers Prairie_volcano Prairie_workload
