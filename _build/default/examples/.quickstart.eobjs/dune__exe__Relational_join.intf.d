examples/relational_join.mli:
