examples/search_strategies.mli:
