examples/distributed_sites.mli:
