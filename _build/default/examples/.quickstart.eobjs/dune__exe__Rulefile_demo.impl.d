examples/rulefile_demo.ml: Filename Format Prairie Prairie_algebra Prairie_catalog Prairie_dsl Prairie_p2v Prairie_value Prairie_volcano String Sys
