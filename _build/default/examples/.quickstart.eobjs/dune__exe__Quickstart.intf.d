examples/quickstart.mli:
