examples/execute_plan.mli:
