examples/rulefile_demo.mli:
