(* Top-down Volcano vs bottom-up System R over the same rules.

     dune exec examples/search_strategies.exe

   Paper §2.2: "Prairie admits two rather different means of optimization:
   top-down and bottom-up. ... Given an appropriate search engine, Prairie
   can potentially also be used with a bottom-up optimization strategy."
   Both engines exist here, run over the same memo and the same
   P2V-generated rules, and must find plans of equal cost — the difference
   is purely strategic: demand-driven, branch-and-bound top-down search vs
   exhaustive dynamic programming with interesting orders. *)

module W = Prairie_workload
module Opt = Prairie_optimizers.Optimizers
module Search = Prairie_volcano.Search
module Stats = Prairie_volcano.Stats
module Bottom_up = Prairie_volcano.Bottom_up
module Plan = Prairie_volcano.Plan
module Explain = Prairie_volcano.Explain

let () =
  let inst = W.Queries.instance W.Queries.Q5 ~joins:2 ~seed:11 in
  let opt = Opt.oodb_prairie inst.W.Queries.catalog in
  Format.printf "query: %a@.@." Prairie.Expr.pp inst.W.Queries.expr;

  (* top-down *)
  let td = Opt.optimize opt inst.W.Queries.expr in
  let td_stats = Search.stats td.Opt.search in
  Format.printf "=== top-down (Volcano FindBestPlan) ===@.";
  Format.printf "cost %.3f over %d groups; %d optimize calls, %d plans costed, %d pruned@."
    td.Opt.cost
    (Search.group_count td.Opt.search)
    td_stats.Stats.optimize_calls td_stats.Stats.impl_firings
    td_stats.Stats.pruned;

  (* bottom-up *)
  let expr, required = opt.Opt.prepare inst.W.Queries.expr in
  let bu = Bottom_up.optimize ~required opt.Opt.volcano expr in
  Format.printf "@.=== bottom-up (System R dynamic programming) ===@.";
  (match bu.Bottom_up.plan with
  | Some p ->
    Format.printf
      "cost %.3f over %d groups; %d (group, requirement) DP entries, %d plans \
       costed@."
      (Plan.cost p) bu.Bottom_up.groups_explored
      bu.Bottom_up.requirements_considered bu.Bottom_up.plans_costed
  | None -> print_endline "no plan");

  (match (td.Opt.plan, bu.Bottom_up.plan) with
  | Some p1, Some p2 ->
    Format.printf "@.strategies agree on cost: %b@.@."
      (Float.abs (Plan.cost p1 -. Plan.cost p2) < 1e-9);
    Format.printf "the plan:@.%a" Explain.pp p2
  | _ -> ());

  (* the bottom-up engine shines when an order is required: interesting
     orders are Selinger's original trick *)
  let ordered =
    Prairie_algebra.Init.sort inst.W.Queries.catalog
      ~order:(Prairie_value.Order.sorted_on (W.Catalogs.oid 1))
      inst.W.Queries.expr
  in
  let expr, required = opt.Opt.prepare ordered in
  let td = Opt.optimize opt ordered in
  let bu = Bottom_up.optimize ~required opt.Opt.volcano expr in
  match bu.Bottom_up.plan with
  | Some p ->
    Format.printf
      "@.with ORDER BY C1.oid: top-down %.3f, bottom-up %.3f (%d DP entries — \
       the extra ones are Selinger's interesting orders)@."
      td.Opt.cost (Plan.cost p) bu.Bottom_up.requirements_considered
  | None -> print_endline "no ordered plan"

(* sanity: the ordered plan really delivers the order (the sort of a
   handful of tuples is nearly free, hence the near-identical cost) *)
let () =
  let inst = W.Queries.instance W.Queries.Q5 ~joins:2 ~seed:11 in
  let opt = Opt.oodb_prairie inst.W.Queries.catalog in
  let ordered =
    Prairie_algebra.Init.sort inst.W.Queries.catalog
      ~order:(Prairie_value.Order.sorted_on (W.Catalogs.oid 1))
      inst.W.Queries.expr
  in
  let td = Opt.optimize opt ordered in
  match td.Opt.plan with
  | Some p ->
    Format.printf "ordered plan delivers %s at cost %.6f: %a@."
      (Prairie_value.Order.to_string
         (Prairie.Descriptor.get_order (Plan.descriptor p) "tuple_order"))
      (Plan.cost p) Plan.pp p
  | None -> print_endline "no plan"
