(* Open OODB optimization: materialization placement and select pushdown.

     dune exec examples/oodb_materialize.exe

   The E2/E4 workloads of the paper's Section 4: each class carries a
   reference to a detail class that must be MATerialized.  The optimizer
   decides whether to dereference before or after the join (the
   mat_pull/mat_push T-rules) and where the selection goes (into the
   retrieval, enabling indexes). *)

module W = Prairie_workload
module Opt = Prairie_optimizers.Optimizers
module Plan = Prairie_volcano.Plan
module Search = Prairie_volcano.Search

let describe (inst : W.Queries.instance) =
  let r = Opt.optimize (Opt.oodb_prairie inst.W.Queries.catalog) inst.W.Queries.expr in
  (match r.Opt.plan with
  | None -> print_endline "  no plan"
  | Some plan ->
    Format.printf "  query: %a@." Prairie.Expr.pp inst.W.Queries.expr;
    Format.printf "  plan:  %a@." Plan.pp plan;
    Format.printf "  cost:  %.2f   (%d equivalence classes explored)@."
      r.Opt.cost
      (Search.group_count r.Opt.search));
  r

let () =
  Format.printf "=== E2: joins over materialized classes (Q3) ===@.";
  let q3 = W.Queries.instance W.Queries.Q3 ~joins:2 ~seed:42 in
  let r3 = describe q3 in
  (match r3.Opt.plan with
  | Some plan when List.mem "Mat_deref" (Plan.algorithms plan) ->
    Format.printf
      "  note: Mat_deref nodes were re-ordered relative to the joins by the@.\
      \  mat_pull/mat_push transformation rules to minimize dereferences.@."
  | _ -> ());

  Format.printf "@.=== E4: selection over materialized joins, no index (Q7) ===@.";
  ignore (describe (W.Queries.instance W.Queries.Q7 ~joins:2 ~seed:42));

  Format.printf "@.=== E4 with indexes (Q8): the selection reaches the index ===@.";
  let r8 = describe (W.Queries.instance W.Queries.Q8 ~joins:2 ~seed:42) in
  (match r8.Opt.plan with
  | Some plan ->
    Format.printf "  index scans used: %b@."
      (List.mem "Index_scan" (Plan.algorithms plan))
  | None -> ());

  (* the comparison the paper runs: P2V-generated vs hand-coded Volcano *)
  Format.printf "@.=== Prairie vs hand-coded Volcano on the same instance ===@.";
  let inst = W.Queries.instance W.Queries.Q7 ~joins:2 ~seed:42 in
  let p = Opt.optimize (Opt.oodb_prairie inst.W.Queries.catalog) inst.W.Queries.expr in
  let v = Opt.optimize (Opt.oodb_volcano inst.W.Queries.catalog) inst.W.Queries.expr in
  Format.printf "  Prairie cost %.4f, Volcano cost %.4f, search spaces %d vs %d -> %s@."
    p.Opt.cost v.Opt.cost
    (Search.group_count p.Opt.search)
    (Search.group_count v.Opt.search)
    (if Float.abs (p.Opt.cost -. v.Opt.cost) < 1e-9 then "identical" else "MISMATCH")
