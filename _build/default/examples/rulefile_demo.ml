(* Loading an optimizer from a .prairie rule-specification file.

     dune exec examples/rulefile_demo.exe

   The textual front-end replaces the paper's flex/bison pre-processor
   input.  This example writes a small rule set in the surface language,
   loads it, runs P2V and optimizes a query with it — an optimizer defined
   entirely at runtime. *)

module Catalog = Prairie_catalog.Catalog
module Rel = Prairie_algebra.Relational
module Dsl = Prairie_dsl
module A = Prairie_value.Attribute
module P = Prairie_value.Predicate

(* A reduced relational optimizer: no indexes, no merge join — just enough
   to show the language.  Note the Null rule making SORT an
   enforcer-operator, exactly as in the paper's Figure 7. *)
let spec =
  {|
ruleset mini_relational;

property attributes          : ATTRIBUTES;
property num_records         : INT;
property tuple_size          : INT;
property tuple_order         : ORDER;
property selection_predicate : PREDICATE;
property join_predicate      : PREDICATE;
property cost                : COST;

operator  RET(1);
operator  JOIN(2);
operator  SORT(1);
algorithm File_scan(1);
algorithm Nested_loops(2);
algorithm Merge_sort(1);

trule join_commute:
  JOIN(?1, ?2) : D3 ==> JOIN(?2, ?1) : D4
  post { D4 = D3; }

// Paper Fig. 6
irule join_nested_loops:
  JOIN(?1, ?2) : D3 ==> Nested_loops(?1 : D4, ?2) : D5
  pre {
    D5 = D3;
    D4 = D1;
    D4.tuple_order = D3.tuple_order;
  }
  post {
    D5.cost = D4.cost + D4.num_records * D2.cost;
    D5.tuple_order = D4.tuple_order;
  }

irule ret_file_scan:
  RET(?1) : D2 ==> File_scan(?1) : D3
  test { is_dont_care(D2.tuple_order) }
  pre  { D3 = D2; }
  post { D3.cost = cost_file_scan(D1.num_records, D1.tuple_size); }

// Paper Fig. 5
irule sort_merge_sort:
  SORT(?1) : D2 ==> Merge_sort(?1) : D3
  test { !is_dont_care(D2.tuple_order) }
  pre  { D3 = D2; }
  post { D3.cost = cost_sort(D1.cost, D3.num_records); }

// Paper Fig. 7(b)
irule sort_null:
  SORT(?1) : D2 ==> Null(?1 : D3) : D4
  pre {
    D4 = D2;
    D3 = D1;
    D3.tuple_order = D2.tuple_order;
  }
  post { D4.cost = D3.cost; }
|}

let () =
  let catalog =
    Catalog.of_files
      [
        Rel.relation ~name:"parts" ~cardinality:2_000 [ ("pk", 500) ];
        Rel.relation ~name:"supp" ~cardinality:300 [ ("pk", 500) ];
      ]
  in
  (* write the spec to disk and load it back, to exercise the file path *)
  let path = Filename.temp_file "mini" ".prairie" in
  let oc = open_out path in
  output_string oc spec;
  close_out oc;
  let ruleset =
    Dsl.Elaborate.load ~helpers:(Prairie_algebra.Helpers.env catalog) path
  in
  Sys.remove path;
  Format.printf "loaded %S: %d T-rules, %d I-rules@." ruleset.Prairie.Ruleset.name
    (Prairie.Ruleset.trule_count ruleset)
    (Prairie.Ruleset.irule_count ruleset);

  let tr = Prairie_p2v.Translate.translate ruleset in
  Format.printf "@.%a@." Prairie_p2v.Report.pp (Prairie_p2v.Report.of_translation tr);

  let q =
    Rel.join catalog
      ~pred:(P.Cmp (P.Eq, P.T_attr (A.make ~owner:"parts" ~name:"pk"),
                    P.T_attr (A.make ~owner:"supp" ~name:"pk")))
      (Rel.ret catalog "parts") (Rel.ret catalog "supp")
  in
  let search = Prairie_volcano.Search.create tr.Prairie_p2v.Translate.volcano in
  (match Prairie_volcano.Search.optimize search q with
  | Some plan ->
    Format.printf "@.best plan: %a  (cost %.2f)@." Prairie_volcano.Plan.pp plan
      (Prairie_volcano.Plan.cost plan)
  | None -> print_endline "no plan");

  (* round-trip: the embedded Open OODB rule set renders to the language *)
  let oodb = Prairie_algebra.Oodb.ruleset catalog in
  let text = Dsl.Render.ruleset_to_string oodb in
  let reparsed =
    Dsl.Elaborate.load_string ~helpers:(Prairie_algebra.Helpers.env catalog) text
  in
  Format.printf
    "@.round-trip of the embedded OODB rule set: %d T-rules and %d I-rules \
     re-parsed from %d bytes of rendered source@."
    (Prairie.Ruleset.trule_count reparsed)
    (Prairie.Ruleset.irule_count reparsed)
    (String.length text)
