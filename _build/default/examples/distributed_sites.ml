(* A distributed optimizer from the same framework.

     dune exec examples/distributed_sites.exe

   R* (the distributed System R the paper's related work reviews) decides
   where each operator runs and when streams cross the network.  Here the
   stream's *site* is just another descriptor property: the SHIP
   enforcer-operator moves streams, P2V classifies `site` as physical
   automatically, and the unchanged search engine makes the classic
   decisions — ship the small relation, run where the data is, honor the
   client's result site. *)

module Dist = Prairie_distributed.Distributed
module Opt = Prairie_optimizers.Optimizers
module P2v = Prairie_p2v
module Explain = Prairie_volcano.Explain
module Rel = Prairie_algebra.Relational
module Catalog = Prairie_catalog.Catalog
module A = Prairie_value.Attribute
module P = Prairie_value.Predicate

let attr o n = A.make ~owner:o ~name:n
let ( === ) a b = P.Cmp (P.Eq, P.T_attr a, P.T_attr b)

let catalog =
  Catalog.of_files
    [
      Rel.relation ~name:"orders" ~cardinality:100_000 ~tuple_size:80 [ ("cust", 5_000) ];
      Rel.relation ~name:"cust" ~cardinality:5_000 ~tuple_size:120 [ ("cust", 5_000) ];
    ]

let sites = [ ("orders", "warehouse"); ("cust", "hq") ]

let () =
  let ruleset = Dist.ruleset catalog ~sites in
  let tr = P2v.Translate.translate ruleset in
  Format.printf "%a@.@." P2v.Report.pp (P2v.Report.of_translation tr);
  Format.printf
    "note the classification: [site] became the physical property, found@.\
     automatically from the SHIP Null-rule's property propagation.@.@.";
  let opt =
    {
      Opt.name = "distributed";
      volcano = tr.P2v.Translate.volcano;
      prepare = P2v.Translate.prepare_query tr;
    }
  in
  let q =
    Dist.join catalog
      ~pred:(attr "orders" "cust" === attr "cust" "cust")
      (Dist.ret ~sites catalog "orders")
      (Dist.ret ~sites catalog "cust")
  in
  List.iter
    (fun (label, required) ->
      let r = Opt.optimize ~required opt q in
      match r.Opt.plan with
      | Some plan ->
        Format.printf "--- result required at %s ---@.%a@." label Explain.pp plan
      | None -> Format.printf "--- %s: no plan@." label)
    [
      ("anywhere (ship the 5k customers to the 100k orders)", Prairie.Descriptor.empty);
      ("hq (now the 100k orders must travel)", Dist.require_site "hq");
      ("a third site, the client's laptop", Dist.require_site "laptop");
    ]
