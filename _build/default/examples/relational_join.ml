(* Relational optimization scenarios: interesting orders and enforcers.

     dune exec examples/relational_join.exe

   Demonstrates the explicit-enforcer story of the paper: an ORDER BY is a
   SORT operator in the Prairie query; P2V strips it into a required
   physical property, and the Volcano engine decides between sorting
   (Merge_sort, the enforcer), an order-preserving join, or an index scan
   that delivers the order for free. *)

module Catalog = Prairie_catalog.Catalog
module Rel = Prairie_algebra.Relational
module Opt = Prairie_optimizers.Optimizers
module A = Prairie_value.Attribute
module P = Prairie_value.Predicate
module O = Prairie_value.Order

let attr owner name = A.make ~owner ~name
let ( === ) a b = P.Cmp (P.Eq, P.T_attr a, P.T_attr b)

let catalog =
  Catalog.of_files
    [
      Rel.relation ~name:"orders" ~cardinality:50_000 ~indexes:[ "cust" ]
        [ ("cust", 5_000); ("total", 1_000) ];
      Rel.relation ~name:"cust" ~cardinality:5_000 [ ("cust", 5_000); ("region", 10) ];
    ]

let query ?order ?(sel = P.True) () =
  let join =
    Rel.join catalog
      ~pred:(attr "orders" "cust" === attr "cust" "cust")
      (Rel.ret catalog ~pred:sel "orders")
      (Rel.ret catalog "cust")
  in
  match order with
  | None -> join
  | Some o -> Rel.sort catalog ~order:o join

let show title q =
  let opt = Opt.relational catalog in
  let r = Opt.optimize opt q in
  match r.Opt.plan with
  | None -> Format.printf "%s: no plan@." title
  | Some plan ->
    Format.printf "@.%s@.  query: %a@.  plan:  %a@.  cost:  %.2f@." title
      Prairie.Expr.pp q Prairie_volcano.Plan.pp plan r.Opt.cost

let () =
  show "1. plain join (hash-free relational set: nested loops vs merge join)"
    (query ());
  show "2. ORDER BY orders.cust (the join order matches: merge join gives it away)"
    (query ~order:(O.sorted_on (attr "orders" "cust")) ());
  show "3. ORDER BY orders.total (no operator helps: the Merge_sort enforcer runs)"
    (query ~order:(O.sorted_on (attr "orders" "total")) ());
  show "4. selective predicate on the indexed attribute: Index_scan wins"
    (query ~sel:(P.Cmp (P.Eq, P.T_attr (attr "orders" "cust"), P.T_int 42)) ());
  (* the naive oracle agrees on the small cases *)
  let ruleset = Opt.relational_ruleset catalog in
  let q = query ~order:(O.sorted_on (attr "orders" "cust")) () in
  let prepared, required = (Opt.relational catalog).Opt.prepare q in
  (match Prairie.Naive.best_plan ruleset ~required prepared with
  | Some oracle ->
    let volcano = Opt.optimize (Opt.relational catalog) q in
    Format.printf
      "@.oracle check (scenario 2): exhaustive %.2f vs Volcano %.2f -> %s@."
      oracle.Prairie.Naive.cost volcano.Opt.cost
      (if Float.abs (oracle.Prairie.Naive.cost -. volcano.Opt.cost) < 1e-6 then
         "identical"
       else "MISMATCH")
  | None -> print_endline "oracle found no plan")
