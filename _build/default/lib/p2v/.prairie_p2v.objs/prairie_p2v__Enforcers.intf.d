lib/p2v/enforcers.mli: Format Prairie
