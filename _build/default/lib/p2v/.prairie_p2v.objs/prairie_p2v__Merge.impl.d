lib/p2v/merge.ml: Enforcers Format Int List Prairie Prairie_value Printf String
