lib/p2v/report.ml: Classify Enforcers Format List Merge Prairie String Translate
