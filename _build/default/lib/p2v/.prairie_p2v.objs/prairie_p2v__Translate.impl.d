lib/p2v/translate.ml: Array Classify Enforcers List Merge Prairie Prairie_volcano String
