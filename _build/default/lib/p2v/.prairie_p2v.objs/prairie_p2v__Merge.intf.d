lib/p2v/merge.mli: Enforcers Format Prairie
