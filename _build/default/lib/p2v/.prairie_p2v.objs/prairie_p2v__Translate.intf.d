lib/p2v/translate.mli: Classify Merge Prairie Prairie_volcano
