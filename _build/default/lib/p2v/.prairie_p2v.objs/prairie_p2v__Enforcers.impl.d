lib/p2v/enforcers.ml: Format List Prairie String
