lib/p2v/report.mli: Format Translate
