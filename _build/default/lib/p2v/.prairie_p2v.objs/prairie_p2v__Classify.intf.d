lib/p2v/classify.mli: Format Prairie
