lib/p2v/classify.ml: Format List Prairie String
