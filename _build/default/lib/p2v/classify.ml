module Irule = Prairie.Irule
module Action = Prairie.Action
module Property = Prairie.Property

type classification = {
  cost : string list;
  physical : string list;
  argument : string list;
}

(* Physical properties: assigned in an I-rule pre-opt section to the
   descriptor of a re-descriptored input stream. *)
let physical_of_irule (rule : Irule.t) =
  let redescs = List.map snd (Irule.redescriptored_inputs rule) in
  List.filter_map
    (fun stmt ->
      match stmt with
      | Action.Assign_prop (target, p, _) when List.mem target redescs -> Some p
      | Action.Assign_prop _ | Action.Assign_desc _ -> None)
    rule.Irule.pre_opt

let classify_irules ~schema irules =
  let cost = Property.cost_properties schema in
  let physical =
    List.concat_map physical_of_irule irules
    |> List.filter (fun p -> not (List.mem p cost))
    |> List.sort_uniq String.compare
  in
  let argument =
    List.filter_map
      (fun (p : Property.t) ->
        if List.mem p.Property.name cost || List.mem p.Property.name physical
        then None
        else Some p.Property.name)
      schema
  in
  { cost; physical; argument }

let classify (ruleset : Prairie.Ruleset.t) =
  classify_irules ~schema:ruleset.Prairie.Ruleset.properties
    ruleset.Prairie.Ruleset.irules

let pp ppf c =
  Format.fprintf ppf
    "@[<v>cost properties: %s@,physical properties: %s@,\
     operator/algorithm arguments: %s@]"
    (String.concat ", " c.cost)
    (String.concat ", " c.physical)
    (String.concat ", " c.argument)
