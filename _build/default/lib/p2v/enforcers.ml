module Irule = Prairie.Irule
module Action = Prairie.Action
module Pattern = Prairie.Pattern

type info = {
  operator : string;
  null_rule : Irule.t;
  algorithm_rules : Irule.t list;
  enforced_properties : string list;
}

(* The Null rule's pre-opt has the fixed shape of paper Eq. 6: a statement
   [D3.p = D2.p] propagating property [p] from the operator descriptor to
   the re-descriptored input stream marks [p] as enforced. *)
let enforced_properties_of (rule : Irule.t) =
  let op_desc = Irule.operator_descriptor rule in
  let redescs = List.map snd (Irule.redescriptored_inputs rule) in
  List.filter_map
    (fun stmt ->
      match stmt with
      | Action.Assign_prop (target, p, Action.Prop (src, p'))
        when List.mem target redescs
             && String.equal src op_desc
             && String.equal p p' ->
        Some p
      | Action.Assign_prop _ | Action.Assign_desc _ -> None)
    rule.Irule.pre_opt
  |> List.sort_uniq String.compare

let detect (ruleset : Prairie.Ruleset.t) =
  let ops =
    List.sort_uniq String.compare
      (List.map Irule.operator ruleset.Prairie.Ruleset.irules)
  in
  List.filter_map
    (fun op ->
      let rules = Prairie.Ruleset.irules_for ruleset op in
      let nulls, algs = List.partition Irule.is_null_rule rules in
      match nulls with
      | [] -> None
      | null_rule :: _ ->
        let single_input =
          match null_rule.Irule.lhs with
          | Pattern.Pop (_, _, [ Pattern.Pvar _ ]) -> true
          | Pattern.Pop _ | Pattern.Pvar _ -> false
        in
        if not single_input then None
        else
          Some
            {
              operator = op;
              null_rule;
              algorithm_rules = algs;
              enforced_properties = enforced_properties_of null_rule;
            })
    ops

let is_enforcer_operator infos op =
  List.exists (fun i -> String.equal i.operator op) infos

let enforcer_algorithms infos =
  List.concat_map
    (fun i -> List.map Irule.algorithm i.algorithm_rules)
    infos
  |> List.sort_uniq String.compare

let pp ppf i =
  Format.fprintf ppf
    "enforcer-operator %s (enforces %s; enforcer-algorithms: %s)" i.operator
    (String.concat ", " i.enforced_properties)
    (String.concat ", " (List.map Irule.algorithm i.algorithm_rules))
