(** Automatic property classification (paper §3.1).

    Volcano forces users to classify every property as logical, physical or
    operator/algorithm argument; the classification is rule-dependent and a
    major source of brittleness.  Prairie infers it from the rule actions:

    - a property of declared type [COST] is a {b cost} property;
    - a property assigned in a {e pre-opt} section of an I-rule to a
      {e re-descriptored input stream} is a {b physical property} — the rule
      is pushing a requirement down to its input (e.g. [tuple_order] in the
      Nested_loops rule, paper Eq. 5), which is exactly what Volcano's
      physical-property vectors carry;
    - every other property is an {b operator/algorithm argument}. *)

type classification = {
  cost : string list;
  physical : string list;
  argument : string list;
}

val classify : Prairie.Ruleset.t -> classification
(** Classify the declared properties of a rule set.  Properties assigned in
    Null-rule pre-opt sections (property propagation, paper Eq. 6) also
    count as physical. *)

val classify_irules :
  schema:Prairie.Property.schema -> Prairie.Irule.t list -> classification
(** Classification driven by an explicit I-rule list (used after rule
    merging, when the rule set has been rewritten). *)

val pp : Format.formatter -> classification -> unit
