(** Enforcer-operator detection (paper §3.1).

    A Prairie rule set may contain, for a single-input operator [O],
    I-rules [O(S1) => A1(S1)], ..., [O(S1) => An(S1)] and
    [O(S1) => Null(S1:D3)].  The pre-processor classifies [O] as an
    {e enforcer-operator} and [A1..An] as {e enforcer-algorithms}:
    the enforcer-algorithms become Volcano enforcers and the operator
    itself disappears from the Volcano rule set. *)

type info = {
  operator : string;  (** the enforcer-operator, e.g. SORT *)
  null_rule : Prairie.Irule.t;  (** its [Null] I-rule *)
  algorithm_rules : Prairie.Irule.t list;
      (** its other I-rules — the enforcer-algorithms, e.g. Merge_sort *)
  enforced_properties : string list;
      (** the properties the operator enforces: those the Null rule's
          pre-opt propagates from the operator descriptor to the
          re-descriptored input ([D3.p = D2.p]) *)
}

val detect : Prairie.Ruleset.t -> info list
(** All enforcer-operators of the rule set, in declaration order. *)

val is_enforcer_operator : info list -> string -> bool

val enforcer_algorithms : info list -> string list
(** All enforcer-algorithm names. *)

val pp : Format.formatter -> info -> unit
