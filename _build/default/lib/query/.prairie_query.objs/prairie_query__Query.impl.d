lib/query/query.ml: Format List Option Prairie_algebra Prairie_catalog Prairie_dsl Prairie_value Printf String
