lib/query/query.mli: Prairie Prairie_catalog Prairie_value
