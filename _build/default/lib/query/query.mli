(** A small SQL-like query front-end.

    The paper assumes (footnote 2) that a query compiler has already turned
    the user's query into an operator tree before optimization begins; this
    module is that compiler for a SQL-ish surface syntax:

    {v
    select <* | attr, ...>
    from   T1, T2, ...
    [where <predicate>]
    [order by attr, ...]
    v}

    Predicates combine comparisons ([=], [!=], [<], [<=], [>], [>=]) of
    attributes and constants with [and] / [or] / [not] (the symbolic forms
    [&&], [||], [!] also parse).  Unqualified attribute names are resolved
    against the FROM tables.

    Compilation builds the {e initialized} operator tree the optimizer
    expects: a left-deep join chain in FROM order, whose join predicates
    are the conjuncts connecting each new table to the tables already
    joined; everything else — single-table conjuncts included — is left in
    a root SELECT for the optimizer's pushdown rules to place.  [order by]
    becomes a root SORT (an explicit enforcer-operator, stripped to a
    required physical property by P2V). *)

exception Error of string

type t = {
  projection : Prairie_value.Attribute.t list option;  (** [None] = [*] *)
  tables : string list;
  where : Prairie_value.Predicate.t;
  order_by : Prairie_value.Attribute.t list;
}

val parse : Prairie_catalog.Catalog.t -> string -> t
(** Parse and resolve names.
    @raise Error on syntax errors, unknown tables, unknown or ambiguous
    attributes. *)

val compile : Prairie_catalog.Catalog.t -> t -> Prairie.Expr.t
(** Build the initialized operator tree.
    @raise Error when a table cannot be connected to the previous ones by
    any equality conjunct (cross products are not in the shipped
    algebras). *)

val compile_string : Prairie_catalog.Catalog.t -> string -> Prairie.Expr.t
(** [parse] followed by [compile]. *)
