module A = Prairie_value.Attribute
module P = Prairie_value.Predicate
module O = Prairie_value.Order
module Catalog = Prairie_catalog.Catalog
module Stored_file = Prairie_catalog.Stored_file
module Lexer = Prairie_dsl.Lexer
module Token = Prairie_dsl.Token
module Init = Prairie_algebra.Init

exception Error of string

let error fmt = Printf.ksprintf (fun m -> raise (Error m)) fmt

type t = {
  projection : A.t list option;
  tables : string list;
  where : P.t;
  order_by : A.t list;
}

(* ------------------------------------------------------------------ *)
(* Parsing (over the rule-language lexer; SQL keywords are plain
   identifiers there, matched case-insensitively)                      *)
(* ------------------------------------------------------------------ *)

type cursor = { mutable toks : Lexer.spanned list }

let peek c =
  match c.toks with
  | [] -> Token.EOF
  | s :: _ -> s.Lexer.token

let advance c = match c.toks with [] -> () | _ :: rest -> c.toks <- rest

let is_word c w =
  match peek c with
  | Token.IDENT s -> String.lowercase_ascii s = w
  | _ -> false

let expect_word c w =
  if is_word c w then advance c
  else error "expected %S, found %s" w (Token.to_string (peek c))

let ident c =
  match peek c with
  | Token.IDENT s ->
    advance c;
    s
  | t -> error "expected an identifier, found %s" (Token.to_string t)

(* attribute reference: T.a or bare a *)
let attr_ref c =
  let first = ident c in
  match peek c with
  | Token.DOT ->
    advance c;
    `Qualified (first, ident c)
  | _ -> `Bare first

let resolve_attr catalog tables = function
  | `Qualified (owner, name) ->
    if not (List.mem owner tables) then
      error "table %s is not in the FROM clause" owner;
    let a = A.make ~owner ~name in
    (match Catalog.find catalog owner with
    | Some f when Stored_file.find_column f name <> None -> a
    | Some _ -> error "table %s has no attribute %s" owner name
    | None -> error "unknown table %s" owner)
  | `Bare name -> (
    let owners =
      List.filter
        (fun t ->
          match Catalog.find catalog t with
          | Some f -> Stored_file.find_column f name <> None
          | None -> false)
        tables
    in
    match owners with
    | [ owner ] -> A.make ~owner ~name
    | [] -> error "attribute %s not found in any FROM table" name
    | _ ->
      error "attribute %s is ambiguous (in %s)" name (String.concat ", " owners))

let rec parse_pred catalog tables c = parse_or catalog tables c

and parse_or catalog tables c =
  let lhs = parse_and catalog tables c in
  if is_word c "or" || peek c = Token.OR then begin
    advance c;
    P.Or (lhs, parse_or catalog tables c)
  end
  else lhs

and parse_and catalog tables c =
  let lhs = parse_atom catalog tables c in
  if is_word c "and" || peek c = Token.AND then begin
    advance c;
    P.And (lhs, parse_and catalog tables c)
  end
  else lhs

and parse_atom catalog tables c =
  match peek c with
  | Token.BANG ->
    advance c;
    P.Not (parse_atom catalog tables c)
  | Token.IDENT s when String.lowercase_ascii s = "not" ->
    advance c;
    P.Not (parse_atom catalog tables c)
  | Token.LPAREN ->
    advance c;
    let p = parse_pred catalog tables c in
    (match peek c with
    | Token.RPAREN -> advance c
    | t -> error "expected ')', found %s" (Token.to_string t));
    p
  | _ ->
    let t1 = parse_term catalog tables c in
    let cmp =
      match peek c with
      | Token.ASSIGN | Token.EQ -> P.Eq
      | Token.NEQ -> P.Ne
      | Token.LT -> P.Lt
      | Token.LE -> P.Le
      | Token.GT -> P.Gt
      | Token.GE -> P.Ge
      | t -> error "expected a comparison operator, found %s" (Token.to_string t)
    in
    advance c;
    let t2 = parse_term catalog tables c in
    P.Cmp (cmp, t1, t2)

and parse_term catalog tables c =
  match peek c with
  | Token.INT i ->
    advance c;
    P.T_int i
  | Token.MINUS -> (
    advance c;
    match peek c with
    | Token.INT i ->
      advance c;
      P.T_int (-i)
    | Token.FLOAT f ->
      advance c;
      P.T_float (-.f)
    | t -> error "expected a number after '-', found %s" (Token.to_string t))
  | Token.FLOAT f ->
    advance c;
    P.T_float f
  | Token.STRING s ->
    advance c;
    P.T_string s
  | Token.IDENT _ -> P.T_attr (resolve_attr catalog tables (attr_ref c))
  | t -> error "expected a value or attribute, found %s" (Token.to_string t)

let parse catalog src =
  let c =
    try { toks = Lexer.tokenize src }
    with Lexer.Lex_error (pos, msg) ->
      error "lexical error at %s: %s" (Format.asprintf "%a" Lexer.pp_position pos) msg
  in
  expect_word c "select";
  let projection_raw =
    if peek c = Token.STAR then begin
      advance c;
      None
    end
    else
      let rec go acc =
        let a = attr_ref c in
        if peek c = Token.COMMA then begin
          advance c;
          go (a :: acc)
        end
        else List.rev (a :: acc)
      in
      Some (go [])
  in
  expect_word c "from";
  let tables =
    let rec go acc =
      let t = ident c in
      (match Catalog.find catalog t with
      | Some _ -> ()
      | None -> error "unknown table %s" t);
      if peek c = Token.COMMA then begin
        advance c;
        go (t :: acc)
      end
      else List.rev (t :: acc)
    in
    go []
  in
  let where =
    if is_word c "where" then begin
      advance c;
      parse_pred catalog tables c
    end
    else P.True
  in
  let order_by =
    if is_word c "order" then begin
      advance c;
      expect_word c "by";
      let rec go acc =
        let a = resolve_attr catalog tables (attr_ref c) in
        if peek c = Token.COMMA then begin
          advance c;
          go (a :: acc)
        end
        else List.rev (a :: acc)
      in
      go []
    end
    else []
  in
  (match peek c with
  | Token.EOF -> ()
  | t -> error "trailing input: %s" (Token.to_string t));
  let projection =
    Option.map (List.map (resolve_attr catalog tables)) projection_raw
  in
  { projection; tables; where; order_by }

(* ------------------------------------------------------------------ *)
(* Compilation to an initialized operator tree                         *)
(* ------------------------------------------------------------------ *)

let compile catalog q =
  match q.tables with
  | [] -> error "no tables"
  | first :: rest ->
    let conjuncts = P.conjuncts q.where in
    (* a left-deep join chain in FROM order: each new table is connected by
       the equality conjuncts spanning it and the already-joined tables *)
    let joined, remaining =
      List.fold_left
        (fun (tree, (owners, conjs)) table ->
          let connects p =
            P.references_only ~owners:(table :: owners) p
            && (not (P.references_only ~owners p))
            && not (P.references_only ~owners:[ table ] p)
          in
          let mine, rest = List.partition connects conjs in
          if mine = [] then
            error "table %s is not connected to %s by any predicate (cross \
                   products are not supported)"
              table
              (String.concat ", " owners);
          let pred = P.of_conjuncts mine in
          (Init.join catalog ~pred tree (Init.ret catalog table), (table :: owners, rest)))
        (Init.ret catalog first, ([ first ], conjuncts))
        rest
      |> fun (tree, (_, conjs)) -> (tree, conjs)
    in
    (* everything else — single-table or residual — goes into a root SELECT
       for the pushdown rules to place *)
    let tree =
      match remaining with
      | [] -> joined
      | _ -> Init.select catalog ~pred:(P.of_conjuncts remaining) joined
    in
    let tree =
      match q.projection with
      | None -> tree
      | Some attrs -> Init.project catalog ~attrs tree
    in
    match q.order_by with
    | [] -> tree
    | attrs -> Init.sort catalog ~order:(O.sorted attrs) tree

let compile_string catalog src = compile catalog (parse catalog src)
