(** Synthetic table data derived from a catalog.

    Generation is deterministic per seed.  Column semantics:
    - a column named [oid] holds the row index (the object identity
      Pointer_join and MAT dereference);
    - a reference column ([ref_to = Some target]) holds a uniformly random
      valid row index of the target table;
    - a set-valued column holds a list of [distinct] integers (its fanout);
    - any other column holds a uniform integer in [\[0, distinct)]. *)

val table : seed:int -> Prairie_catalog.Catalog.t -> Prairie_catalog.Stored_file.t -> Table.t

val database : seed:int -> Prairie_catalog.Catalog.t -> Table.database
(** Tables for every stored file in the catalog. *)
