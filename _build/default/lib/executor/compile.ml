module Value = Prairie_value.Value
module Order = Prairie_value.Order
module Descriptor = Prairie.Descriptor
module Expr = Prairie.Expr

exception Unsupported of string

let spred d = Descriptor.get_pred d "selection_predicate"
let jpred d = Descriptor.get_pred d "join_predicate"
let order_attrs d = Order.attributes (Descriptor.get_order d "tuple_order")

let single_attr d prop what =
  match Descriptor.get_attrs d prop with
  | [ a ] -> a
  | _ -> raise (Unsupported (what ^ ": expected a single attribute in " ^ prop))

let rec compile db (e : Expr.t) : Iterator.t =
  match e with
  | Expr.Stored (name, _) ->
    (* bare stored file (input of a scan); expose all rows *)
    let table = Table.find db name in
    Iterator.of_array table.Table.schema table.Table.rows
  | Expr.Node (Expr.Operator, name, _, _) ->
    invalid_arg ("Compile.compile: abstract operator " ^ name ^ " in plan")
  | Expr.Node (Expr.Algorithm, alg, d, inputs) -> compile_alg db alg d inputs

and compile_alg db alg d inputs =
  let input n =
    match List.nth_opt inputs n with
    | Some i -> compile db i
    | None -> raise (Unsupported (alg ^ ": missing input " ^ string_of_int n))
  in
  let table_of n =
    match List.nth_opt inputs n with
    | Some (Expr.Stored (name, _)) -> Table.find db name
    | _ -> raise (Unsupported (alg ^ ": expected a stored file input"))
  in
  match alg with
  | "File_scan" -> Iterator.scan (table_of 0) ~pred:(spred d)
  | "Index_scan" ->
    Iterator.index_scan (table_of 0) ~pred:(spred d) ~order:(order_attrs d)
  | "Filter" -> Iterator.filter (input 0) ~pred:(spred d)
  | "Project_alg" ->
    Iterator.project (input 0) ~attrs:(Descriptor.get_attrs d "projected_attributes")
  | "Nested_loops" -> Iterator.nested_loops (input 0) (input 1) ~pred:(jpred d)
  | "Hash_join" -> Iterator.hash_join (input 0) (input 1) ~pred:(jpred d)
  | "Merge_join" -> Iterator.merge_join (input 0) (input 1) ~pred:(jpred d)
  | "Pointer_join" -> Iterator.pointer_join (input 0) (input 1) ~pred:(jpred d)
  | "Merge_sort" -> Iterator.sort (input 0) ~order:(order_attrs d)
  | "Mat_deref" ->
    Iterator.mat_deref db (input 0) ~attr:(single_attr d "mat_attribute" alg)
  | "Unnest_scan" ->
    Iterator.unnest (input 0) ~attr:(single_attr d "unnest_attribute" alg)
  | "Hash_agg" ->
    Iterator.hash_aggregate (input 0)
      ~by:(Descriptor.get_attrs d "group_attributes")
  | "Sort_agg" ->
    Iterator.stream_aggregate (input 0)
      ~by:(Descriptor.get_attrs d "group_attributes")
  | "Null" -> Iterator.null (input 0)
  | other -> raise (Unsupported other)

let compile_plan db plan = compile db (Prairie_volcano.Plan.to_expr plan)

let execute db e =
  let it = compile db e in
  (it.Iterator.schema, Array.to_list (Iterator.materialize it))

let execute_plan db plan = execute db (Prairie_volcano.Plan.to_expr plan)

let canonical_result (schema, rows) =
  List.sort compare (List.map (Tuple.canonical schema) rows)
