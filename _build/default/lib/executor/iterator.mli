(** Volcano-style stream iterators (open / next / close).

    The execution engine mirrors the iterator model of the Volcano query
    evaluation system: every physical operator is a stream of tuples with
    demand-driven [next].  Iterators are re-openable, which is what a
    nested-loops join requires of its inner input. *)

type t = {
  schema : Tuple.schema;
  open_ : unit -> unit;
  next : unit -> Tuple.t option;
  close : unit -> unit;
}

val of_array : Tuple.schema -> Tuple.t array -> t

val materialize : t -> Tuple.t array
(** Open, drain and close. *)

(** {1 Physical operators} *)

val scan : Table.t -> pred:Prairie_value.Predicate.t -> t
(** File scan with an embedded selection (RET's additional parameter). *)

val index_scan :
  Table.t -> pred:Prairie_value.Predicate.t -> order:Prairie_value.Attribute.t list -> t
(** Simulated index access: selection plus delivery in index order. *)

val filter : t -> pred:Prairie_value.Predicate.t -> t

val project : t -> attrs:Prairie_value.Attribute.t list -> t

val nested_loops : t -> t -> pred:Prairie_value.Predicate.t -> t
(** Re-opens the inner input once per outer tuple. *)

val hash_join : t -> t -> pred:Prairie_value.Predicate.t -> t
(** Builds a hash table on the right input over the predicate's equality
    pairs; residual conjuncts are applied as a post-filter. *)

val merge_join : t -> t -> pred:Prairie_value.Predicate.t -> t
(** Requires both inputs sorted on their sides of the equality pairs (the
    optimizer guarantees this via SORT / enforcers). *)

val pointer_join : t -> t -> pred:Prairie_value.Predicate.t -> t
(** Hash probe per outer tuple; preserves the outer order. *)

val sort : t -> order:Prairie_value.Attribute.t list -> t

val mat_deref : Table.database -> t -> attr:Prairie_value.Attribute.t -> t
(** Dereference the reference attribute into its target class and append
    the target's columns. *)

val unnest : t -> attr:Prairie_value.Attribute.t -> t
(** Replace the set-valued attribute by one element per output tuple. *)

val hash_aggregate : t -> by:Prairie_value.Attribute.t list -> t
(** Group-and-count via a hash table; output columns are the group
    attributes followed by [agg.count].  Output order unspecified. *)

val stream_aggregate : t -> by:Prairie_value.Attribute.t list -> t
(** Group-and-count over an input sorted on the group attributes: counts
    consecutive runs, preserving the order.  The optimizer guarantees the
    sortedness. *)

val null : t -> t
(** The Null algorithm: the identity. *)
