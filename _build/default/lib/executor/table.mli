(** In-memory tables and databases. *)

type t = {
  file : Prairie_catalog.Stored_file.t;
  schema : Tuple.schema;
  rows : Tuple.t array;
}

type database = {
  catalog : Prairie_catalog.Catalog.t;
  tables : (string * t) list;
}

val find : database -> string -> t
(** @raise Not_found for unknown tables. *)

val row_count : t -> int

val database : Prairie_catalog.Catalog.t -> t list -> database
