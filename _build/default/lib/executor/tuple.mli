(** Tuples and stream schemas for the execution engine. *)

type schema = Prairie_value.Attribute.t array
(** Column layout of a stream, in positional order. *)

type t = Prairie_value.Value.t array
(** One tuple; values are positionally aligned with the schema. *)

val position : schema -> Prairie_value.Attribute.t -> int option

val get : schema -> t -> Prairie_value.Attribute.t -> Prairie_value.Value.t option

val lookup_term :
  schema -> t -> Prairie_value.Attribute.t -> Prairie_value.Predicate.term option
(** Attribute lookup in the form predicate evaluation expects ([Int],
    [Float] and [String] values become constant terms; anything else is
    unresolvable). *)

val eval_pred : schema -> Prairie_value.Predicate.t -> t -> bool

val concat : t -> t -> t

val concat_schema : schema -> schema -> schema

val project : schema -> Prairie_value.Attribute.t list -> t -> t
(** Keep the named attributes (in their order of appearance in the list). *)

val project_schema : schema -> Prairie_value.Attribute.t list -> schema

val compare_by :
  schema -> Prairie_value.Attribute.t list -> t -> t -> int
(** Lexicographic comparison on the given sort attributes. *)

val canonical : schema -> t -> (string * string) list
(** Order-independent rendering — a sorted (attribute, value) list — used
    to compare result multisets across plans with different column
    layouts. *)

val pp : schema -> Format.formatter -> t -> unit
