module Value = Prairie_value.Value
module Attribute = Prairie_value.Attribute
module Predicate = Prairie_value.Predicate
module Catalog = Prairie_catalog.Catalog

type t = {
  schema : Tuple.schema;
  open_ : unit -> unit;
  next : unit -> Tuple.t option;
  close : unit -> unit;
}

let of_array schema rows =
  let pos = ref 0 in
  {
    schema;
    open_ = (fun () -> pos := 0);
    next =
      (fun () ->
        if !pos < Array.length rows then begin
          let r = rows.(!pos) in
          incr pos;
          Some r
        end
        else None);
    close = ignore;
  }

let materialize it =
  it.open_ ();
  let acc = ref [] in
  let rec drain () =
    match it.next () with
    | Some r ->
      acc := r :: !acc;
      drain ()
    | None -> ()
  in
  drain ();
  it.close ();
  Array.of_list (List.rev !acc)

(* A generic lazily-computed materialized iterator: [compute] runs at open
   time, so re-opening recomputes (inputs may themselves be re-openable). *)
let lazy_array schema compute =
  let rows = ref [||] in
  let pos = ref 0 in
  {
    schema;
    open_ =
      (fun () ->
        rows := compute ();
        pos := 0);
    next =
      (fun () ->
        if !pos < Array.length !rows then begin
          let r = !rows.(!pos) in
          incr pos;
          Some r
        end
        else None);
    close = (fun () -> rows := [||]);
  }

let scan (table : Table.t) ~pred =
  let schema = table.Table.schema in
  let pos = ref 0 in
  {
    schema;
    open_ = (fun () -> pos := 0);
    next =
      (fun () ->
        let n = Array.length table.Table.rows in
        let rec go () =
          if !pos >= n then None
          else begin
            let r = table.Table.rows.(!pos) in
            incr pos;
            if Tuple.eval_pred schema pred r then Some r else go ()
          end
        in
        go ());
    close = ignore;
  }

let index_scan (table : Table.t) ~pred ~order =
  let schema = table.Table.schema in
  lazy_array schema (fun () ->
      let rows =
        Array.of_list
          (List.filter
             (Tuple.eval_pred schema pred)
             (Array.to_list table.Table.rows))
      in
      let copy = Array.copy rows in
      Array.stable_sort (Tuple.compare_by schema order) copy;
      copy)

let filter input ~pred =
  {
    input with
    next =
      (fun () ->
        let rec go () =
          match input.next () with
          | None -> None
          | Some r ->
            if Tuple.eval_pred input.schema pred r then Some r else go ()
        in
        go ());
  }

let project input ~attrs =
  let schema = Tuple.project_schema input.schema attrs in
  {
    schema;
    open_ = input.open_;
    next =
      (fun () ->
        match input.next () with
        | None -> None
        | Some r -> Some (Tuple.project input.schema attrs r));
    close = input.close;
  }

let nested_loops outer inner ~pred =
  let schema = Tuple.concat_schema outer.schema inner.schema in
  let current_outer = ref None in
  {
    schema;
    open_ =
      (fun () ->
        outer.open_ ();
        current_outer := None);
    next =
      (fun () ->
        let rec go () =
          match !current_outer with
          | None -> (
            match outer.next () with
            | None -> None
            | Some o ->
              current_outer := Some o;
              inner.open_ ();
              go ())
          | Some o -> (
            match inner.next () with
            | None ->
              inner.close ();
              current_outer := None;
              go ()
            | Some i ->
              let joined = Tuple.concat o i in
              if Tuple.eval_pred schema pred joined then Some joined else go ())
        in
        go ());
    close =
      (fun () ->
        outer.close ();
        current_outer := None);
  }

(* Split the predicate's equality pairs into (left attr, right attr) by
   schema membership; residual conjuncts become a post-filter. *)
let join_keys left_schema right_schema pred =
  let pairs = Predicate.equality_pairs pred in
  let keys =
    List.filter_map
      (fun (a, b) ->
        let a_left = Tuple.position left_schema a <> None in
        let b_left = Tuple.position left_schema b <> None in
        let a_right = Tuple.position right_schema a <> None in
        let b_right = Tuple.position right_schema b <> None in
        if a_left && b_right then Some (a, b)
        else if b_left && a_right then Some (b, a)
        else None)
      pairs
  in
  keys

let key_of schema attrs tuple =
  List.map
    (fun a -> match Tuple.get schema tuple a with Some v -> v | None -> Value.Null)
    attrs

let hash_probe_join ~preserve_outer_order:_ outer inner ~pred =
  let schema = Tuple.concat_schema outer.schema inner.schema in
  lazy_array schema (fun () ->
      let keys = join_keys outer.schema inner.schema pred in
      let lkeys = List.map fst keys and rkeys = List.map snd keys in
      let table = Hashtbl.create 64 in
      Array.iter
        (fun r ->
          let k = key_of inner.schema rkeys r in
          Hashtbl.add table k r)
        (materialize inner);
      let out = ref [] in
      Array.iter
        (fun o ->
          let k = key_of outer.schema lkeys o in
          List.iter
            (fun i ->
              let joined = Tuple.concat o i in
              if Tuple.eval_pred schema pred joined then out := joined :: !out)
            (List.rev (Hashtbl.find_all table k)))
        (materialize outer);
      Array.of_list (List.rev !out))

let hash_join left right ~pred =
  hash_probe_join ~preserve_outer_order:false left right ~pred

let pointer_join outer inner ~pred =
  hash_probe_join ~preserve_outer_order:true outer inner ~pred

let merge_join left right ~pred =
  let schema = Tuple.concat_schema left.schema right.schema in
  lazy_array schema (fun () ->
      let keys = join_keys left.schema right.schema pred in
      let lkeys = List.map fst keys and rkeys = List.map snd keys in
      let ls = materialize left and rs = materialize right in
      let cmp_key k1 k2 = List.compare Value.compare k1 k2 in
      let out = ref [] in
      let nl = Array.length ls and nr = Array.length rs in
      let i = ref 0 and j = ref 0 in
      while !i < nl && !j < nr do
        let kl = key_of left.schema lkeys ls.(!i) in
        let kr = key_of right.schema rkeys rs.(!j) in
        let cpn = cmp_key kl kr in
        if cpn < 0 then incr i
        else if cpn > 0 then incr j
        else begin
          (* emit the cross product of the two equal-key groups *)
          let i_end = ref !i in
          while
            !i_end < nl && cmp_key (key_of left.schema lkeys ls.(!i_end)) kl = 0
          do
            incr i_end
          done;
          let j_end = ref !j in
          while
            !j_end < nr && cmp_key (key_of right.schema rkeys rs.(!j_end)) kr = 0
          do
            incr j_end
          done;
          for a = !i to !i_end - 1 do
            for b = !j to !j_end - 1 do
              let joined = Tuple.concat ls.(a) rs.(b) in
              if Tuple.eval_pred schema pred joined then out := joined :: !out
            done
          done;
          i := !i_end;
          j := !j_end
        end
      done;
      Array.of_list (List.rev !out))

let sort input ~order =
  lazy_array input.schema (fun () ->
      let rows = materialize input in
      Array.stable_sort (Tuple.compare_by input.schema order) rows;
      rows)

let mat_deref (db : Table.database) input ~attr =
  match Catalog.ref_target db.Table.catalog attr with
  | None ->
    invalid_arg
      (Printf.sprintf "MAT: %s is not a reference attribute"
         (Attribute.to_string attr))
  | Some target ->
    let target_table = Table.find db target in
    let schema = Tuple.concat_schema input.schema target_table.Table.schema in
    {
      schema;
      open_ = input.open_;
      next =
        (fun () ->
          let rec go () =
            match input.next () with
            | None -> None
            | Some r -> (
              match Tuple.get input.schema r attr with
              | Some (Value.Int oid)
                when oid >= 0 && oid < Array.length target_table.Table.rows ->
                Some (Tuple.concat r target_table.Table.rows.(oid))
              | Some _ | None -> go ())
          in
          go ());
      close = input.close;
    }

let unnest input ~attr =
  let pending = ref [] in
  {
    schema = input.schema;
    open_ =
      (fun () ->
        input.open_ ();
        pending := []);
    next =
      (fun () ->
        let rec go () =
          match !pending with
          | r :: rest ->
            pending := rest;
            Some r
          | [] -> (
            match input.next () with
            | None -> None
            | Some r -> (
              match (Tuple.position input.schema attr, Tuple.get input.schema r attr) with
              | Some i, Some (Value.List elems) ->
                pending :=
                  List.map
                    (fun e ->
                      let copy = Array.copy r in
                      copy.(i) <- e;
                      copy)
                    elems;
                go ()
              | _, _ -> Some r))
        in
        go ());
    close = input.close;
  }

let agg_count_attr = Attribute.make ~owner:"agg" ~name:"count"

let agg_schema input ~by =
  Array.of_list
    (List.filter (fun a -> Tuple.position input.schema a <> None) by
    @ [ agg_count_attr ])

let hash_aggregate input ~by =
  let schema = agg_schema input ~by in
  lazy_array schema (fun () ->
      let table = Hashtbl.create 64 in
      let order = ref [] in
      Array.iter
        (fun row ->
          let key = key_of input.schema by row in
          match Hashtbl.find_opt table key with
          | Some n -> Hashtbl.replace table key (n + 1)
          | None ->
            Hashtbl.replace table key 1;
            order := key :: !order)
        (materialize input);
      Array.of_list
        (List.rev_map
           (fun key ->
             Array.of_list (key @ [ Value.Int (Hashtbl.find table key) ]))
           !order))

let stream_aggregate input ~by =
  let schema = agg_schema input ~by in
  lazy_array schema (fun () ->
      let out = ref [] in
      let current = ref None in
      let flush () =
        match !current with
        | Some (key, n) -> out := Array.of_list (key @ [ Value.Int n ]) :: !out
        | None -> ()
      in
      Array.iter
        (fun row ->
          let key = key_of input.schema by row in
          match !current with
          | Some (k, n) when List.equal Value.equal k key ->
            current := Some (k, n + 1)
          | _ ->
            flush ();
            current := Some (key, 1))
        (materialize input);
      flush ();
      Array.of_list (List.rev !out))

let null input = input
