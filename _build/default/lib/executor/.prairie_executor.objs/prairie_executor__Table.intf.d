lib/executor/table.mli: Prairie_catalog Tuple
