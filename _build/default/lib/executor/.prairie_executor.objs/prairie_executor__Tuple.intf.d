lib/executor/tuple.mli: Format Prairie_value
