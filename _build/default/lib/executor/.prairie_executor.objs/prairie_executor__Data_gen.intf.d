lib/executor/data_gen.mli: Prairie_catalog Table
