lib/executor/compile.ml: Array Iterator List Prairie Prairie_value Prairie_volcano Table Tuple
