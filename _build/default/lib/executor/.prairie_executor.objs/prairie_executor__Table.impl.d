lib/executor/table.ml: Array List Prairie_catalog Tuple
