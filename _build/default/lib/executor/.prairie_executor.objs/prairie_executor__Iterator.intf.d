lib/executor/iterator.mli: Prairie_value Table Tuple
