lib/executor/iterator.ml: Array Hashtbl List Prairie_catalog Prairie_value Printf Table Tuple
