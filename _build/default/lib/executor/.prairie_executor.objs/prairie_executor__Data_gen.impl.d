lib/executor/data_gen.ml: Array Hashtbl List Prairie_catalog Prairie_util Prairie_value String Table
