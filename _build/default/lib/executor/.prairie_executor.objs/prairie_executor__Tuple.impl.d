lib/executor/tuple.ml: Array Format List Prairie_value
