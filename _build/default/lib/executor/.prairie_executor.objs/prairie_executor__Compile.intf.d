lib/executor/compile.mli: Iterator Prairie Prairie_volcano Table Tuple
