type t = {
  file : Prairie_catalog.Stored_file.t;
  schema : Tuple.schema;
  rows : Tuple.t array;
}

type database = {
  catalog : Prairie_catalog.Catalog.t;
  tables : (string * t) list;
}

let find db name = List.assoc name db.tables
let row_count t = Array.length t.rows

let database catalog tables =
  {
    catalog;
    tables = List.map (fun t -> (t.file.Prairie_catalog.Stored_file.name, t)) tables;
  }
