module Value = Prairie_value.Value
module Attribute = Prairie_value.Attribute
module Predicate = Prairie_value.Predicate

type schema = Attribute.t array
type t = Value.t array

let position schema attr =
  let n = Array.length schema in
  let rec go i =
    if i >= n then None
    else if Attribute.equal schema.(i) attr then Some i
    else go (i + 1)
  in
  go 0

let get schema tuple attr =
  match position schema attr with
  | Some i -> Some tuple.(i)
  | None -> None

let lookup_term schema tuple attr =
  match get schema tuple attr with
  | Some (Value.Int i) -> Some (Predicate.T_int i)
  | Some (Value.Float f) -> Some (Predicate.T_float f)
  | Some (Value.Str s) -> Some (Predicate.T_string s)
  | Some _ | None -> None

let eval_pred schema pred tuple =
  Predicate.eval ~lookup:(lookup_term schema tuple) pred

let concat = Array.append
let concat_schema = Array.append

let project_schema schema attrs =
  Array.of_list
    (List.filter (fun a -> position schema a <> None) attrs)

let project schema attrs tuple =
  let kept = project_schema schema attrs in
  Array.map
    (fun a ->
      match position schema a with
      | Some i -> tuple.(i)
      | None -> Value.Null)
    kept

let compare_by schema attrs t1 t2 =
  let rec go = function
    | [] -> 0
    | a :: rest -> (
      match position schema a with
      | None -> go rest
      | Some i -> (
        match Value.compare t1.(i) t2.(i) with 0 -> go rest | c -> c))
  in
  go attrs

let canonical schema tuple =
  let pairs =
    Array.to_list
      (Array.mapi
         (fun i a -> (Attribute.to_string a, Value.to_repr tuple.(i)))
         schema)
  in
  List.sort compare pairs

let pp schema ppf tuple =
  Format.fprintf ppf "@[<h>(";
  Array.iteri
    (fun i v ->
      if i > 0 then Format.fprintf ppf ", ";
      Format.fprintf ppf "%s=%s"
        (Attribute.to_string schema.(i))
        (Value.to_repr v))
    tuple;
  Format.fprintf ppf ")@]"
