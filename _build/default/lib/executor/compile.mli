(** Access-plan compilation and execution.

    Turns an optimizer access plan (an {!Prairie.Expr.t} whose interior
    nodes are algorithms, or a {!Prairie_volcano.Plan.t}) into an iterator
    tree over an in-memory database, reading each algorithm's additional
    parameters out of its descriptor — exactly the information the
    optimizer's rules put there. *)

exception Unsupported of string
(** Raised on algorithm names the engine does not know. *)

val compile : Table.database -> Prairie.Expr.t -> Iterator.t
(** @raise Unsupported on unknown algorithms.
    @raise Invalid_argument when the expression contains abstract
    operators (only access plans execute). *)

val compile_plan : Table.database -> Prairie_volcano.Plan.t -> Iterator.t

val execute : Table.database -> Prairie.Expr.t -> Tuple.schema * Tuple.t list

val execute_plan :
  Table.database -> Prairie_volcano.Plan.t -> Tuple.schema * Tuple.t list

val canonical_result : Tuple.schema * Tuple.t list -> (string * string) list list
(** A sorted multiset rendering of a result, independent of column order
    and row order — two plans for the same query must produce equal
    canonical results. *)
