module Value = Prairie_value.Value
module Catalog = Prairie_catalog.Catalog
module Stored_file = Prairie_catalog.Stored_file
module Rng = Prairie_util.Rng

let column_value rng catalog (col : Stored_file.column) ~row =
  match col.Stored_file.ref_to with
  | Some target ->
    let target_card =
      match Catalog.find catalog target with
      | Some f -> max 1 f.Stored_file.cardinality
      | None -> 1
    in
    Value.Int (Rng.int rng target_card)
  | None ->
    if String.equal (Prairie_value.Attribute.name col.Stored_file.attr) "oid"
    then Value.Int row
    else if col.Stored_file.set_valued then
      Value.List
        (List.init (max 1 col.Stored_file.distinct) (fun _ ->
             Value.Int (Rng.int rng 1000)))
    else Value.Int (Rng.int rng (max 1 col.Stored_file.distinct))

let table ~seed catalog (file : Stored_file.t) =
  let rng = Rng.create (seed lxor Hashtbl.hash file.Stored_file.name) in
  let schema = Array.of_list (Stored_file.attributes file) in
  let cols = Array.of_list file.Stored_file.columns in
  let rows =
    Array.init file.Stored_file.cardinality (fun row ->
        Array.map (fun col -> column_value rng catalog col ~row) cols)
  in
  { Table.file; schema; rows }

let database ~seed catalog =
  Table.database catalog (List.map (table ~seed catalog) (Catalog.files catalog))
