lib/catalog/stored_file.ml: Format List Option Prairie_value String
