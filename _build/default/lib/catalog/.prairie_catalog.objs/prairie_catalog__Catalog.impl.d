lib/catalog/catalog.ml: Format List Map Prairie_value Stored_file String
