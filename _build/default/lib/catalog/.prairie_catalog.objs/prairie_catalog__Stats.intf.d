lib/catalog/stats.mli: Catalog Prairie_value
