lib/catalog/stored_file.mli: Format Prairie_value
