lib/catalog/stats.ml: Catalog Float List Prairie_value
