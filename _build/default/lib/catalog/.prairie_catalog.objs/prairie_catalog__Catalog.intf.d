lib/catalog/catalog.mli: Format Prairie_value Stored_file
