(** Stored files: base relations and OODB classes.

    The paper's leaf nodes (§2.1): a stored file is a relation [R_i] (in the
    relational algebra) or a class [C_i] (in the Open OODB algebra).  The
    catalog entry records the schema and the statistics the cost model needs
    (cardinality, tuple size, per-column distinct counts) together with the
    available indexes. *)

type kind =
  | Relation
  | Class

type column = {
  attr : Prairie_value.Attribute.t;
  distinct : int;  (** number of distinct values, for selectivity *)
  ref_to : string option;
      (** OODB reference attribute: name of the target class.  These are the
          attributes the MAT operator dereferences and Pointer_join follows. *)
  set_valued : bool;  (** set-valued attribute, target of the UNNEST operator *)
}

type index = {
  index_name : string;
  on : Prairie_value.Attribute.t;
  unique : bool;
}

type t = {
  name : string;
  kind : kind;
  columns : column list;
  cardinality : int;  (** number of stored tuples *)
  tuple_size : int;  (** bytes per tuple *)
  indexes : index list;
}

val column : ?distinct:int -> ?ref_to:string -> ?set_valued:bool -> string -> string -> column
(** [column owner name] builds a plain column; [distinct] defaults to 10. *)

val make :
  ?kind:kind ->
  ?tuple_size:int ->
  ?indexes:index list ->
  name:string ->
  cardinality:int ->
  column list ->
  t
(** [make ~name ~cardinality cols] with [kind] defaulting to [Class] and
    [tuple_size] to 100 bytes. *)

val attributes : t -> Prairie_value.Attribute.t list

val find_column : t -> string -> column option
(** Look a column up by its (unqualified) attribute name. *)

val has_index_on : t -> Prairie_value.Attribute.t -> bool

val index_on : t -> Prairie_value.Attribute.t -> index option

val pages : page_size:int -> t -> int
(** Number of disk pages occupied: [ceil (cardinality * tuple_size / page_size)],
    at least 1. *)

val pp : Format.formatter -> t -> unit
