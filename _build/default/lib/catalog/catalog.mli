(** The catalog: the collection of stored files known to an optimizer.

    The paper (§4.1) mentions "catalogs which contain information about base
    classes that are used by the optimizer"; this is that component.  It also
    hosts the attribute-level statistics lookups used by selectivity
    estimation. *)

type t

val empty : t

val add : Stored_file.t -> t -> t
(** Adds (or replaces) a stored file.  *)

val of_files : Stored_file.t list -> t

val find : t -> string -> Stored_file.t option

val find_exn : t -> string -> Stored_file.t
(** @raise Not_found if the file is unknown. *)

val mem : t -> string -> bool

val files : t -> Stored_file.t list
(** All stored files, sorted by name. *)

val owner_of : t -> Prairie_value.Attribute.t -> Stored_file.t option
(** The stored file owning an attribute, resolved through the attribute's
    owner field. *)

val distinct_of : t -> Prairie_value.Attribute.t -> int
(** Distinct-value count of an attribute; a default of 10 is assumed for
    attributes not described in the catalog. *)

val has_index_on : t -> Prairie_value.Attribute.t -> bool

val ref_target : t -> Prairie_value.Attribute.t -> string option
(** For an OODB reference attribute, the class it points to. *)

val is_set_valued : t -> Prairie_value.Attribute.t -> bool

val pp : Format.formatter -> t -> unit
