module Attribute = Prairie_value.Attribute

type kind =
  | Relation
  | Class

type column = {
  attr : Attribute.t;
  distinct : int;
  ref_to : string option;
  set_valued : bool;
}

type index = {
  index_name : string;
  on : Attribute.t;
  unique : bool;
}

type t = {
  name : string;
  kind : kind;
  columns : column list;
  cardinality : int;
  tuple_size : int;
  indexes : index list;
}

let column ?(distinct = 10) ?ref_to ?(set_valued = false) owner name =
  { attr = Attribute.make ~owner ~name; distinct; ref_to; set_valued }

let make ?(kind = Class) ?(tuple_size = 100) ?(indexes = []) ~name ~cardinality
    columns =
  { name; kind; columns; cardinality; tuple_size; indexes }

let attributes t = List.map (fun c -> c.attr) t.columns

let find_column t name =
  List.find_opt (fun c -> String.equal (Attribute.name c.attr) name) t.columns

let index_on t attr =
  List.find_opt (fun ix -> Attribute.equal ix.on attr) t.indexes

let has_index_on t attr = Option.is_some (index_on t attr)

let pages ~page_size t =
  max 1 ((t.cardinality * t.tuple_size + page_size - 1) / page_size)

let pp ppf t =
  let kind = match t.kind with Relation -> "relation" | Class -> "class" in
  Format.fprintf ppf "@[<v 2>%s %s (|%s| = %d, %d B/tuple)" kind t.name t.name
    t.cardinality t.tuple_size;
  List.iter
    (fun c ->
      Format.fprintf ppf "@,%a (distinct %d)%s%s" Attribute.pp c.attr
        c.distinct
        (match c.ref_to with Some tgt -> " -> " ^ tgt | None -> "")
        (if c.set_valued then " set-valued" else ""))
    t.columns;
  List.iter
    (fun ix ->
      Format.fprintf ppf "@,index %s on %a%s" ix.index_name Attribute.pp ix.on
        (if ix.unique then " unique" else ""))
    t.indexes;
  Format.fprintf ppf "@]"
