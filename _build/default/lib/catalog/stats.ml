module Predicate = Prairie_value.Predicate
module Attribute = Prairie_value.Attribute

let default_page_size = 4096
let clamp01 s = Float.max 0.0 (Float.min 1.0 s)
let range_selectivity = 1.0 /. 3.0

let rec selectivity catalog (p : Predicate.t) =
  match p with
  | True -> 1.0
  | False -> 0.0
  | Cmp (c, t1, t2) -> cmp_selectivity catalog c t1 t2
  | And (a, b) -> selectivity catalog a *. selectivity catalog b
  | Or (a, b) ->
    let sa = selectivity catalog a and sb = selectivity catalog b in
    clamp01 (sa +. sb -. (sa *. sb))
  | Not a -> clamp01 (1.0 -. selectivity catalog a)

and cmp_selectivity catalog c t1 t2 =
  let open Predicate in
  let eq_sel attr = 1.0 /. float_of_int (Catalog.distinct_of catalog attr) in
  match (c, t1, t2) with
  | Eq, T_attr a, T_attr b ->
    1.0
    /. float_of_int
         (max (Catalog.distinct_of catalog a) (Catalog.distinct_of catalog b))
  | Eq, T_attr a, _ | Eq, _, T_attr a -> eq_sel a
  | Ne, T_attr a, _ | Ne, _, T_attr a -> clamp01 (1.0 -. eq_sel a)
  | (Lt | Le | Gt | Ge), _, _ -> range_selectivity
  | (Eq | Ne), _, _ -> 0.5

let join_selectivity catalog p =
  let pairs = Predicate.equality_pairs p in
  let eq_sel =
    List.fold_left
      (fun acc (a, b) ->
        acc
        /. float_of_int
             (max
                (Catalog.distinct_of catalog a)
                (Catalog.distinct_of catalog b)))
      1.0 pairs
  in
  let other =
    List.filter
      (function Predicate.Cmp (Eq, T_attr _, T_attr _) -> false | _ -> true)
      (Predicate.conjuncts p)
  in
  clamp01 (eq_sel *. (0.1 ** float_of_int (List.length other)))

let scale input s =
  if input <= 0 then 0 else max 1 (int_of_float (ceil (float_of_int input *. s)))

let select_cardinality catalog ~input p = scale input (selectivity catalog p)

let join_cardinality catalog ~left ~right p =
  scale (left * right) (join_selectivity catalog p)

let pages ~cardinality ~tuple_size =
  max 1 ((cardinality * tuple_size + default_page_size - 1) / default_page_size)
