module Attribute = Prairie_value.Attribute
module String_map = Map.Make (String)

type t = Stored_file.t String_map.t

let empty = String_map.empty
let add file t = String_map.add file.Stored_file.name file t
let of_files files = List.fold_left (fun t f -> add f t) empty files
let find t name = String_map.find_opt name t
let find_exn t name = String_map.find name t
let mem t name = String_map.mem name t
let files t = List.map snd (String_map.bindings t)
let owner_of t attr = find t (Attribute.owner attr)

let column_of t attr =
  match owner_of t attr with
  | None -> None
  | Some file -> Stored_file.find_column file (Attribute.name attr)

let default_distinct = 10

let distinct_of t attr =
  match column_of t attr with
  | Some c -> max 1 c.Stored_file.distinct
  | None -> default_distinct

let has_index_on t attr =
  match owner_of t attr with
  | None -> false
  | Some file -> Stored_file.has_index_on file attr

let ref_target t attr =
  match column_of t attr with
  | Some c -> c.Stored_file.ref_to
  | None -> None

let is_set_valued t attr =
  match column_of t attr with
  | Some c -> c.Stored_file.set_valued
  | None -> false

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iteri
    (fun i f ->
      if i > 0 then Format.fprintf ppf "@,";
      Stored_file.pp ppf f)
    (files t);
  Format.fprintf ppf "@]"
