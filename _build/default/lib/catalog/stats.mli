(** Selectivity and cardinality estimation.

    System R-style estimation (Selinger et al., the paper's [17]): equality
    with a constant selects [1/distinct], ranges select a fixed fraction,
    equijoins select [1/max(distinct)].  These estimates feed the helper
    functions ([cardinality], [selectivity]) that rule actions call to
    annotate descriptors. *)

val default_page_size : int
(** 4096 bytes. *)

val selectivity : Catalog.t -> Prairie_value.Predicate.t -> float
(** Estimated fraction of tuples satisfying a selection predicate.
    Always in [\[0, 1\]]. *)

val join_selectivity : Catalog.t -> Prairie_value.Predicate.t -> float
(** Estimated selectivity of a join predicate over the cross product of its
    inputs: the product of [1/max(distinct)] over its equality pairs, [0.1]
    per non-equality conjunct. *)

val select_cardinality :
  Catalog.t -> input:int -> Prairie_value.Predicate.t -> int
(** Output cardinality of a selection: [ceil (input * selectivity)], at
    least 1 when the input is non-empty. *)

val join_cardinality :
  Catalog.t -> left:int -> right:int -> Prairie_value.Predicate.t -> int
(** Output cardinality of a join. *)

val pages : cardinality:int -> tuple_size:int -> int
(** Pages occupied by a stream of given size under {!default_page_size}. *)
