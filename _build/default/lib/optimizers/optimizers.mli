(** Ready-to-use optimizers.

    Packages a Volcano rule set with its query-preparation step (stripping
    root enforcer-operators into required physical properties) under a
    common interface, so benchmarks, examples and tests can drive the two
    §4 contestants — the P2V-generated Prairie optimizer and the hand-coded
    Volcano optimizer — interchangeably. *)

type t = {
  name : string;
  volcano : Prairie_volcano.Rule.ruleset;
  prepare : Prairie.Expr.t -> Prairie.Expr.t * Prairie.Descriptor.t;
}

type outcome = {
  plan : Prairie_volcano.Plan.t option;
  cost : float;  (** infinity when no plan exists *)
  search : Prairie_volcano.Search.t;  (** memo and statistics *)
}

val oodb_prairie : Prairie_catalog.Catalog.t -> t
(** The Open OODB rule set written in Prairie and run through P2V
    ("Prairie" in the paper's Figures 10–13). *)

val oodb_volcano : Prairie_catalog.Catalog.t -> t
(** The hand-coded Volcano rule set ("Volcano" in the same figures). *)

val oodb_prairie_unmerged : Prairie_catalog.Catalog.t -> t
(** P2V translation with rule composition disabled — the [ablation-merge]
    configuration. *)

val oodb_prairie_interpreted : Prairie_catalog.Catalog.t -> t
(** P2V translation with rule actions interpreted per invocation instead of
    staged into closures — the [ablation-codegen] configuration. *)

val relational : Prairie_catalog.Catalog.t -> t
(** The §2 relational optimizer, via P2V. *)

val relational_ruleset : Prairie_catalog.Catalog.t -> Prairie.Ruleset.t
val oodb_ruleset : Prairie_catalog.Catalog.t -> Prairie.Ruleset.t

val optimize :
  ?pruning:bool ->
  ?group_budget:int ->
  ?required:Prairie.Descriptor.t ->
  t ->
  Prairie.Expr.t ->
  outcome
(** Prepare the query, run the search from a fresh memo and return the
    best plan with the search context (for group counts and rule-match
    statistics). *)
