module Descriptor = Prairie.Descriptor
module Search = Prairie_volcano.Search
module Plan = Prairie_volcano.Plan

type t = {
  name : string;
  volcano : Prairie_volcano.Rule.ruleset;
  prepare : Prairie.Expr.t -> Prairie.Expr.t * Descriptor.t;
}

type outcome = {
  plan : Plan.t option;
  cost : float;
  search : Search.t;
}

let of_translation name tr =
  {
    name;
    volcano = tr.Prairie_p2v.Translate.volcano;
    prepare = Prairie_p2v.Translate.prepare_query tr;
  }

let relational_ruleset = Prairie_algebra.Relational.ruleset
let oodb_ruleset = Prairie_algebra.Oodb.ruleset

let oodb_prairie catalog =
  of_translation "oodb-prairie"
    (Prairie_p2v.Translate.translate (oodb_ruleset catalog))

let oodb_prairie_unmerged catalog =
  of_translation "oodb-prairie-unmerged"
    (Prairie_p2v.Translate.translate ~compose:false (oodb_ruleset catalog))

let oodb_prairie_interpreted catalog =
  of_translation "oodb-prairie-interpreted"
    (Prairie_p2v.Translate.translate ~mode:`Interpreted (oodb_ruleset catalog))

let oodb_volcano catalog =
  {
    name = "oodb-volcano";
    volcano = Prairie_algebra.Oodb_volcano.ruleset catalog;
    prepare = Prairie_algebra.Oodb_volcano.prepare_query;
  }

let relational catalog =
  of_translation "relational"
    (Prairie_p2v.Translate.translate (relational_ruleset catalog))

let optimize ?pruning ?group_budget ?(required = Descriptor.empty) t expr =
  let expr, req0 = t.prepare expr in
  let required = Descriptor.merge ~base:req0 ~overrides:required in
  let search = Search.create ?pruning ?group_budget t.volcano in
  let plan = Search.optimize ~required search expr in
  let cost = match plan with Some p -> Plan.cost p | None -> infinity in
  { plan; cost; search }
