lib/optimizers/optimizers.ml: Prairie Prairie_algebra Prairie_p2v Prairie_volcano
