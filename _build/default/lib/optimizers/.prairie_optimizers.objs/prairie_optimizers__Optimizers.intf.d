lib/optimizers/optimizers.mli: Prairie Prairie_catalog Prairie_volcano
