lib/util/rng.mli:
