type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

(* splitmix64: fast, high-quality, trivially seedable *)
let next t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t = { state = next t }

let int t bound =
  assert (bound > 0);
  (* mask to 62 bits: Int64.to_int truncates to the 63-bit native int, so a
     plain logical shift by one can still come out negative *)
  let v = Int64.to_int (Int64.shift_right_logical (next t) 2) land max_int in
  v mod bound

let in_range t lo hi =
  assert (hi >= lo);
  lo + int t (hi - lo + 1)

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  bound *. v /. 9007199254740992.0 (* 2^53 *)

let bool t = Int64.logand (next t) 1L = 1L

let pick t xs =
  match xs with
  | [] -> invalid_arg "Rng.pick: empty list"
  | _ -> List.nth xs (int t (List.length xs))

let shuffle t xs =
  let arr = Array.of_list xs in
  let n = Array.length arr in
  for i = n - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  Array.to_list arr
