(** Deterministic pseudo-random numbers (splitmix64).

    All synthetic workloads, catalogs and table data are generated from
    explicit seeds so that experiments are reproducible run-to-run; the
    global [Random] state is never used. *)

type t

val create : int -> t
(** [create seed] returns an independent generator. *)

val split : t -> t
(** A new generator derived from (and independent of) the current stream. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val in_range : t -> int -> int -> int
(** [in_range t lo hi] is uniform in [\[lo, hi\]] (inclusive). *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val pick : t -> 'a list -> 'a
(** Uniform choice from a non-empty list. *)

val shuffle : t -> 'a list -> 'a list
