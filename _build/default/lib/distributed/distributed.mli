(** A distributed (R*-style) relational optimizer.

    The paper's related work reviews R* (its refs [4, 14, 16]), the
    distributed descendant of System R; this rule set shows that Prairie's
    uniform property treatment covers it with no new machinery: the {e site}
    a stream lives at is just another descriptor property, and exactly like
    [tuple_order] it is classified as {b physical} automatically — because
    the SHIP enforcer-operator's Null rule propagates it to a
    re-descriptored input.

    Operators: RET, JOIN and the enforcer-operator SHIP.  Algorithms:
    File_scan (runs at the stored file's home site), two Hash_join variants
    (executing at the left or the right input's site — both inputs must be
    co-located, which the engine establishes by shipping), Ship (the
    enforcer: network transfer of the stream's pages) and Null.  T-rules
    are produced by the {!Prairie_genrules} generator: join commutativity
    and associativity plus SHIP-introduction rules. *)

val ruleset :
  Prairie_catalog.Catalog.t -> sites:(string * string) list -> Prairie.Ruleset.t
(** [sites] maps each stored file to its home site.  Files without an entry
    live at ["site0"]. *)

val site_of : sites:(string * string) list -> string -> string

val ret :
  ?pred:Prairie_value.Predicate.t ->
  sites:(string * string) list ->
  Prairie_catalog.Catalog.t ->
  string ->
  Prairie.Expr.t
(** A retrieval annotated with the file's home site. *)

val join :
  Prairie_catalog.Catalog.t ->
  pred:Prairie_value.Predicate.t ->
  Prairie.Expr.t ->
  Prairie.Expr.t ->
  Prairie.Expr.t
(** Plain {!Init.join}: join execution sites are an optimization decision,
    not a query annotation. *)

val require_site : string -> Prairie.Descriptor.t
(** A required-property descriptor demanding the result at the given site
    (e.g. the site of the client). *)
