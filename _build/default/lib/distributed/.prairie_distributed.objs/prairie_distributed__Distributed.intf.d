lib/distributed/distributed.mli: Prairie Prairie_catalog Prairie_value
