lib/distributed/distributed.ml: List Prairie Prairie_algebra Prairie_genrules Prairie_value
