module N = Prairie_algebra.Names
module B = Prairie_algebra.Build
module G = Prairie_genrules.Genrules
module Helpers = Prairie_algebra.Helpers
module Cost_model = Prairie_algebra.Cost_model
module Init = Prairie_algebra.Init
module Props = Prairie_algebra.Props
module Value = Prairie_value.Value
module Expr = Prairie.Expr
module Descriptor = Prairie.Descriptor
module Helper_env = Prairie.Helper_env
open B

let default_site = "site0"

let site_of ~sites name =
  match List.assoc_opt name sites with
  | Some s -> s
  | None -> default_site

(* ------------------------------------------------------------------ *)
(* I-rules                                                             *)
(* ------------------------------------------------------------------ *)

let site_ok required actual =
  c "is_null" [ required ] ||! (required ===! actual)

(* File_scan runs where the file lives; it can only satisfy a site
   requirement that matches the home site. *)
let ret_file_scan =
  irule ~name:"dist_ret_file_scan"
    ~lhs:(p N.ret "D2" [ v 1 ])
    ~rhs:(t N.file_scan "D3" [ tv 1 ])
    ~test:(site_ok ("D2" $. N.p_site) ("D1" $. N.p_site))
    ~pre_opt:[ copy "D3" "D2"; set "D3" N.p_site ("D1" $. N.p_site) ]
    ~post_opt:
      [
        set "D3" N.p_cost
          (c "cost_file_scan"
             [ "D1" $. N.p_num_records; "D1" $. N.p_tuple_size ]);
      ]
    ()

(* Hash joins need co-located inputs.  Three rules for one algorithm pick
   the execution site — the required site, or either input's home site when
   it is statically known (R*'s candidate sites); both inputs are then
   required at that site and the engine establishes it, shipping streams
   when necessary. *)
let join_at ~rule_name ~site_source ~guard =
  irule ~name:rule_name
    ~lhs:(p N.join "D3" [ v 1; v 2 ])
    ~rhs:(t N.hash_join "D6" [ tvd 1 "D4"; tvd 2 "D5" ])
    ~test:(c "is_equijoin" [ "D3" $. N.p_join_predicate ] &&! guard)
    ~pre_opt:
      [
        copy "D6" "D3";
        set "D6" N.p_site site_source;
        copy "D4" "D1";
        set "D4" N.p_site site_source;
        copy "D5" "D2";
        set "D5" N.p_site site_source;
      ]
    ~post_opt:
      [
        set "D6" N.p_cost
          (c "cost_hash_join"
             [
               "D4" $. N.p_cost;
               "D5" $. N.p_cost;
               "D4" $. N.p_num_records;
               "D5" $. N.p_num_records;
             ]);
      ]
    ()

let join_at_required =
  join_at ~rule_name:"dist_join_at_required"
    ~site_source:("D3" $. N.p_site)
    ~guard:(not_ (c "is_null" [ "D3" $. N.p_site ]))

(* Executing at an input's home site only applies when it does not
   contradict a required result site: rule tests carry the full
   applicability condition (paper Sec. 2.4) -- the naive optimizer has no
   other validity check. *)
let join_at_input ~rule_name input =
  join_at ~rule_name
    ~site_source:(input $. N.p_site)
    ~guard:
      (not_ (c "is_null" [ input $. N.p_site ])
      &&! site_ok ("D3" $. N.p_site) (input $. N.p_site))

let join_at_left = join_at_input ~rule_name:"dist_join_at_left" "D1"
let join_at_right = join_at_input ~rule_name:"dist_join_at_right" "D2"

(* The SHIP enforcer pair: Ship moves the stream to the required site;
   Null passes the requirement down (making SHIP an enforcer-operator and
   [site] a physical property). *)
let ship_ship =
  irule ~name:"dist_ship"
    ~lhs:(p N.ship "D2" [ v 1 ])
    ~rhs:(t N.ship_alg "D3" [ tv 1 ])
    ~test:(not_ (c "is_null" [ "D2" $. N.p_site ]))
    ~pre_opt:[ copy "D3" "D2" ]
    ~post_opt:
      [
        set "D3" N.p_cost
          (c "cost_ship"
             [
               "D1" $. N.p_cost;
               "D3" $. N.p_num_records;
               "D3" $. N.p_tuple_size;
             ]);
      ]
    ()

let ship_null =
  irule ~name:"dist_ship_null"
    ~lhs:(p N.ship "D2" [ v 1 ])
    ~rhs:(t N.null_alg "D4" [ tvd 1 "D3" ])
    ~pre_opt:
      [
        copy "D4" "D2";
        copy "D3" "D1";
        set "D3" N.p_site ("D2" $. N.p_site);
      ]
    ~post_opt:[ set "D4" N.p_cost ("D3" $. N.p_cost) ]
    ()

(* ------------------------------------------------------------------ *)
(* T-rules come from the generator (§6)                                 *)
(* ------------------------------------------------------------------ *)

let genrules_spec : G.spec =
  {
    G.binaries =
      [
        {
          G.bin_name = N.join;
          bin_pred = N.p_join_predicate;
          bin_commutative = true;
          bin_associative = true;
        };
      ];
    filters = [];
    enforcers =
      [
        {
          G.enf_operator = N.ship;
          enf_property = N.p_site;
          enf_over = [ (N.ret, 1); (N.join, 2) ];
        };
      ];
  }

let ruleset catalog ~sites =
  let helpers =
    Helpers.env catalog
    |> Helper_env.add "cost_ship" (fun args ->
           match args with
           | [ c'; n; s ] ->
             Value.Float
               (Cost_model.ship ~input_cost:(Value.to_float c')
                  ~card:(Value.to_int n) ~tuple_size:(Value.to_int s))
           | _ -> Helper_env.error "cost_ship" "expected 3 arguments")
    |> Helper_env.add "file_site" (fun args ->
           match args with
           | [ Value.Str name ] -> Value.Str (site_of ~sites name)
           | _ -> Helper_env.error "file_site" "expected a file name")
  in
  Prairie.Ruleset.make ~properties:Props.schema
    ~trules:(G.trules genrules_spec)
    ~irules:
      [
        ret_file_scan;
        join_at_required;
        join_at_left;
        join_at_right;
        ship_ship;
        ship_null;
      ]
    ~helpers "distributed"

(* ------------------------------------------------------------------ *)
(* query construction                                                   *)
(* ------------------------------------------------------------------ *)

let ret ?pred ~sites catalog name =
  let site = Value.Str (site_of ~sites name) in
  match Init.ret ?pred catalog name with
  | Expr.Node (kind, op, d, [ Expr.Stored (file, fd) ]) ->
    Expr.Node
      ( kind,
        op,
        Descriptor.set d N.p_site site,
        [ Expr.Stored (file, Descriptor.set fd N.p_site site) ] )
  | other -> other

let join = Init.join

let require_site site = Descriptor.of_list [ (N.p_site, Value.Str site) ]
