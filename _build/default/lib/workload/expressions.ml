module Init = Prairie_algebra.Init

type family = E1 | E2 | E3 | E4

let family_name = function E1 -> "E1" | E2 -> "E2" | E3 -> "E3" | E4 -> "E4"
let all_families = [ E1; E2; E3; E4 ]

(* Left-deep join chain over the given per-class leaf builder. *)
let chain catalog ~joins leaf =
  let rec go acc i =
    if i > joins + 1 then acc
    else
      go (Init.join catalog ~pred:(Catalogs.join_pred (i - 1)) acc (leaf i)) (i + 1)
  in
  go (leaf 1) 2

let e1 catalog ~joins =
  chain catalog ~joins (fun i -> Init.ret catalog (Catalogs.class_name i))

let e2 catalog ~joins =
  chain catalog ~joins (fun i ->
      Init.mat catalog ~attr:(Catalogs.detail_ref i)
        (Init.ret catalog (Catalogs.class_name i)))

let with_select catalog ~joins expr =
  Init.select catalog ~pred:(Catalogs.selection_pred ~classes:(joins + 1)) expr

let e3 catalog ~joins = with_select catalog ~joins (e1 catalog ~joins)
let e4 catalog ~joins = with_select catalog ~joins (e2 catalog ~joins)

let build family catalog ~joins =
  match family with
  | E1 -> e1 catalog ~joins
  | E2 -> e2 catalog ~joins
  | E3 -> e3 catalog ~joins
  | E4 -> e4 catalog ~joins

let star catalog ~joins =
  let rec go acc i =
    if i > joins then acc
    else
      go
        (Init.join catalog
           ~pred:(Catalogs.star_join_pred i)
           acc
           (Init.ret catalog (Catalogs.satellite_name i)))
        (i + 1)
  in
  go (Init.ret catalog Catalogs.hub_name) 1

let star_select catalog ~joins =
  let pred =
    Prairie_value.Predicate.of_conjuncts
      (List.init joins (fun k ->
           Prairie_value.Predicate.Cmp
             ( Prairie_value.Predicate.Eq,
               Prairie_value.Predicate.T_attr (Catalogs.satellite_b_attr (k + 1)),
               Prairie_value.Predicate.T_int (k + 1) )))
  in
  Init.select catalog ~pred (star catalog ~joins)
