(** The eight query families of the paper's Table 5.

    | Query | Indices? | Expression |
    |-------|----------|------------|
    | Q1    | no       | E1         |
    | Q2    | yes      | E1         |
    | Q3    | no       | E2         |
    | Q4    | yes      | E2         |
    | Q5    | no       | E3         |
    | Q6    | yes      | E3         |
    | Q7    | no       | E4         |
    | Q8    | yes      | E4         |

    An {e instance} fixes the number of joins and a seed; the paper
    generates five instances per data point (varying base-class
    cardinalities) and averages the optimization time. *)

type t = Q1 | Q2 | Q3 | Q4 | Q5 | Q6 | Q7 | Q8

val all : t list

val name : t -> string

val family : t -> Expressions.family

val indexed : t -> bool

val of_int : int -> t option
(** [of_int 1] is [Q1] ... [of_int 8] is [Q8]. *)

type instance = {
  query : t;
  joins : int;
  seed : int;
  catalog : Prairie_catalog.Catalog.t;
  expr : Prairie.Expr.t;
}

val instance : t -> joins:int -> seed:int -> instance

val instances : t -> joins:int -> seeds:int list -> instance list
