type t = Q1 | Q2 | Q3 | Q4 | Q5 | Q6 | Q7 | Q8

let all = [ Q1; Q2; Q3; Q4; Q5; Q6; Q7; Q8 ]

let name = function
  | Q1 -> "Q1"
  | Q2 -> "Q2"
  | Q3 -> "Q3"
  | Q4 -> "Q4"
  | Q5 -> "Q5"
  | Q6 -> "Q6"
  | Q7 -> "Q7"
  | Q8 -> "Q8"

let family = function
  | Q1 | Q2 -> Expressions.E1
  | Q3 | Q4 -> Expressions.E2
  | Q5 | Q6 -> Expressions.E3
  | Q7 | Q8 -> Expressions.E4

let indexed = function
  | Q1 | Q3 | Q5 | Q7 -> false
  | Q2 | Q4 | Q6 | Q8 -> true

let of_int = function
  | 1 -> Some Q1
  | 2 -> Some Q2
  | 3 -> Some Q3
  | 4 -> Some Q4
  | 5 -> Some Q5
  | 6 -> Some Q6
  | 7 -> Some Q7
  | 8 -> Some Q8
  | _ -> None

type instance = {
  query : t;
  joins : int;
  seed : int;
  catalog : Prairie_catalog.Catalog.t;
  expr : Prairie.Expr.t;
}

let instance query ~joins ~seed =
  let catalog =
    Catalogs.make
      (Catalogs.default_spec ~classes:(joins + 1) ~indexed:(indexed query) ~seed)
  in
  let expr = Expressions.build (family query) catalog ~joins in
  { query; joins; seed; catalog; expr }

let instances query ~joins ~seeds =
  List.map (fun seed -> instance query ~joins ~seed) seeds
