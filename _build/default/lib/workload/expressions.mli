(** The expression families of the paper's Figure 9.

    Each takes the number of joins [n] (so [n + 1] base classes take part)
    and builds an initialized operator tree over a {!Catalogs} catalog:

    - {b E1}: a left-deep chain of JOINs over RETrieved classes;
    - {b E2}: the same, but each class is MATerialized (its detail-class
      reference dereferenced) after retrieval, before joining;
    - {b E3}: E1 under a root SELECT whose predicate is a conjunction of
      [bCi = i] equalities (one per class);
    - {b E4}: E2 under the same root SELECT. *)

type family = E1 | E2 | E3 | E4

val family_name : family -> string

val all_families : family list

val e1 : Prairie_catalog.Catalog.t -> joins:int -> Prairie.Expr.t
val e2 : Prairie_catalog.Catalog.t -> joins:int -> Prairie.Expr.t
val e3 : Prairie_catalog.Catalog.t -> joins:int -> Prairie.Expr.t
val e4 : Prairie_catalog.Catalog.t -> joins:int -> Prairie.Expr.t

val build : family -> Prairie_catalog.Catalog.t -> joins:int -> Prairie.Expr.t

val star : Prairie_catalog.Catalog.t -> joins:int -> Prairie.Expr.t
(** A star join over a {!Catalogs.make_star} catalog: the hub joined with
    each satellite in turn, [((H ⋈ S1) ⋈ S2) ⋈ ...].  Every join
    predicate references the hub, so re-associations that detach a
    satellite from the hub are cross products and get rejected — the
    non-linear query-graph shape the paper left as future work. *)

val star_select : Prairie_catalog.Catalog.t -> joins:int -> Prairie.Expr.t
(** [star] under a root SELECT over the satellites' [bSi] attributes. *)
