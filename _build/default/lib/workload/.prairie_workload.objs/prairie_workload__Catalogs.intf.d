lib/workload/catalogs.mli: Prairie_catalog Prairie_value
