lib/workload/queries.mli: Expressions Prairie Prairie_catalog
