lib/workload/expressions.ml: Catalogs List Prairie_algebra Prairie_value
