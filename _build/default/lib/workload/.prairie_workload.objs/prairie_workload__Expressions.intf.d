lib/workload/expressions.mli: Prairie Prairie_catalog
