lib/workload/queries.ml: Catalogs Expressions List Prairie Prairie_catalog
