lib/workload/catalogs.ml: List Prairie_catalog Prairie_util Prairie_value Printf
