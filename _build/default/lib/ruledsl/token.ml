(* Tokens of the Prairie rule-specification language. *)

type t =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | STREAM_VAR of int  (* ?1, ?2, ... *)
  (* keywords *)
  | KW_RULESET
  | KW_PROPERTY
  | KW_OPERATOR
  | KW_ALGORITHM
  | KW_TRULE
  | KW_IRULE
  | KW_PRE
  | KW_TEST
  | KW_POST
  | KW_TRUE
  | KW_FALSE
  | KW_DONT_CARE
  (* punctuation and operators *)
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | COMMA
  | SEMI
  | COLON
  | DOT
  | ARROW  (* ==> *)
  | ASSIGN  (* = *)
  | EQ  (* == *)
  | NEQ  (* != *)
  | LE
  | GE
  | LT
  | GT
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | AND
  | OR
  | BANG
  | EOF

let keyword_of_string = function
  | "ruleset" -> Some KW_RULESET
  | "property" -> Some KW_PROPERTY
  | "operator" -> Some KW_OPERATOR
  | "algorithm" -> Some KW_ALGORITHM
  | "trule" -> Some KW_TRULE
  | "irule" -> Some KW_IRULE
  | "pre" -> Some KW_PRE
  | "test" -> Some KW_TEST
  | "post" -> Some KW_POST
  | "TRUE" | "true" -> Some KW_TRUE
  | "FALSE" | "false" -> Some KW_FALSE
  | "DONT_CARE" -> Some KW_DONT_CARE
  | _ -> None

let to_string = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | INT i -> string_of_int i
  | FLOAT f -> string_of_float f
  | STRING s -> Printf.sprintf "%S" s
  | STREAM_VAR i -> Printf.sprintf "?%d" i
  | KW_RULESET -> "ruleset"
  | KW_PROPERTY -> "property"
  | KW_OPERATOR -> "operator"
  | KW_ALGORITHM -> "algorithm"
  | KW_TRULE -> "trule"
  | KW_IRULE -> "irule"
  | KW_PRE -> "pre"
  | KW_TEST -> "test"
  | KW_POST -> "post"
  | KW_TRUE -> "TRUE"
  | KW_FALSE -> "FALSE"
  | KW_DONT_CARE -> "DONT_CARE"
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACE -> "{"
  | RBRACE -> "}"
  | COMMA -> ","
  | SEMI -> ";"
  | COLON -> ":"
  | DOT -> "."
  | ARROW -> "==>"
  | ASSIGN -> "="
  | EQ -> "=="
  | NEQ -> "!="
  | LE -> "<="
  | GE -> ">="
  | LT -> "<"
  | GT -> ">"
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | SLASH -> "/"
  | AND -> "&&"
  | OR -> "||"
  | BANG -> "!"
  | EOF -> "end of input"
