(** Recursive-descent parser for the Prairie rule-specification language.

    Grammar (EBNF):
    {v
    spec      ::= "ruleset" IDENT ";" decl*
    decl      ::= "property" IDENT ":" IDENT ";"
                | "operator" IDENT "(" INT ")" ";"
                | "algorithm" IDENT "(" INT ")" ";"
                | ("trule" | "irule") IDENT ":"
                      pattern "==>" template section*
    pattern   ::= IDENT "(" pat ("," pat)* ")" ":" IDENT
    pat       ::= "?" INT | pattern
    template  ::= IDENT "(" tmpl ("," tmpl)* ")" ":" IDENT
    tmpl      ::= "?" INT (":" IDENT)? | template
    section   ::= "pre" "{" stmt* "}"
                | "test" "{" expr "}"
                | "post" "{" stmt* "}"
    stmt      ::= IDENT ("." IDENT)? "=" expr ";"
    expr      ::= disjunctions over "&&", "||", comparisons
                  ("==", "!=", "<", "<=", ">", ">="), "+", "-", "*", "/",
                  unary "!" and "-", calls IDENT "(" args ")", descriptor
                  properties IDENT "." IDENT, bare descriptors IDENT, and
                  the literals INT, FLOAT, STRING, TRUE, FALSE, DONT_CARE.
    v}

    In a T-rule, [pre]/[post] are the pre-test and post-test statement
    lists; in an I-rule they are pre-opt and post-opt. *)

exception Parse_error of Lexer.position * string

val parse : string -> Ast.spec
(** @raise Parse_error and {!Lexer.Lex_error} on malformed input. *)

val parse_file : string -> Ast.spec
(** Reads and parses a file. *)
