(** Hand-written lexer for the Prairie rule-specification language.

    The paper's front-end is 4500 lines of flex and bison; this lexer and
    {!Parser} are its OCaml replacement.  Comments run from [//] to end of
    line or between [/*] and [*/]. *)

type position = {
  line : int;  (** 1-based *)
  column : int;  (** 1-based *)
}

exception Lex_error of position * string

type spanned = {
  token : Token.t;
  pos : position;
}

val tokenize : string -> spanned list
(** The token stream, ending with [EOF].
    @raise Lex_error on malformed input. *)

val pp_position : Format.formatter -> position -> unit
