module Pattern = Prairie.Pattern
module Value = Prairie_value.Value

exception Elab_error of string list

let pattern_arities pat =
  let rec go acc = function
    | Pattern.Pvar _ -> acc
    | Pattern.Pop (name, _, subs) ->
      List.fold_left go ((name, List.length subs) :: acc) subs
  in
  go [] pat

let tmpl_arities tmpl =
  let rec go acc = function
    | Pattern.Tvar _ -> acc
    | Pattern.Tnode (name, _, subs) ->
      List.fold_left go ((name, List.length subs) :: acc) subs
  in
  go [] tmpl

let elaborate ~helpers (spec : Ast.spec) =
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun m -> errs := m :: !errs) fmt in
  (* properties *)
  let props =
    List.filter_map
      (fun (name, ty_name) ->
        match Value.ty_of_string ty_name with
        | Some ty -> Some (Prairie.Property.declare name ty)
        | None ->
          err "property %s: unknown type %s" name ty_name;
          None)
      (Ast.properties spec)
  in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (p : Prairie.Property.t) ->
      if Hashtbl.mem seen p.Prairie.Property.name then
        err "duplicate property %s" p.Prairie.Property.name
      else Hashtbl.add seen p.Prairie.Property.name ())
    props;
  (* operators / algorithms *)
  let operators = Ast.operators spec in
  let algorithms =
    (Prairie.Irule.null_algorithm, 1) :: Ast.algorithms spec
  in
  let check_arity rule_name kind decls (name, arity) =
    match List.assoc_opt name decls with
    | Some declared when declared <> arity ->
      err "rule %s: %s %s used with arity %d but declared with %d" rule_name
        kind name arity declared
    | Some _ -> ()
    | None -> err "rule %s: undeclared %s %s" rule_name kind name
  in
  let known name = List.mem_assoc name operators || List.mem_assoc name algorithms in
  let check_node rule_name (name, arity) =
    if List.mem_assoc name operators then
      check_arity rule_name "operator" operators (name, arity)
    else if List.mem_assoc name algorithms then
      check_arity rule_name "algorithm" algorithms (name, arity)
    else if not (known name) then
      err "rule %s: undeclared operation %s" rule_name name
  in
  let check_rule (r : Ast.rule_body) =
    List.iter (check_node r.Ast.rb_name) (pattern_arities r.Ast.rb_lhs);
    List.iter (check_node r.Ast.rb_name) (tmpl_arities r.Ast.rb_rhs)
  in
  List.iter check_rule (Ast.trules spec);
  List.iter check_rule (Ast.irules spec);
  let trules =
    List.map
      (fun (r : Ast.rule_body) ->
        Prairie.Trule.make ~name:r.Ast.rb_name ~lhs:r.Ast.rb_lhs
          ~rhs:r.Ast.rb_rhs ~pre_test:r.Ast.rb_pre ~test:r.Ast.rb_test
          ~post_test:r.Ast.rb_post ())
      (Ast.trules spec)
  in
  let irules =
    List.map
      (fun (r : Ast.rule_body) ->
        Prairie.Irule.make ~name:r.Ast.rb_name ~lhs:r.Ast.rb_lhs
          ~rhs:r.Ast.rb_rhs ~test:r.Ast.rb_test ~pre_opt:r.Ast.rb_pre
          ~post_opt:r.Ast.rb_post ())
      (Ast.irules spec)
  in
  let ruleset =
    Prairie.Ruleset.make ~properties:props
      ~operators:(List.map fst operators)
      ~algorithms:(List.map fst algorithms)
      ~trules ~irules ~helpers spec.Ast.ruleset_name
  in
  (match Prairie.Ruleset.validate ruleset with
  | Ok () -> ()
  | Error es -> List.iter (fun e -> errs := e :: !errs) es);
  match List.rev !errs with
  | [] -> ruleset
  | es -> raise (Elab_error es)

let load_string ~helpers src = elaborate ~helpers (Parser.parse src)
let load ~helpers path = elaborate ~helpers (Parser.parse_file path)
