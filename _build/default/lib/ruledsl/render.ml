module Action = Prairie.Action
module Pattern = Prairie.Pattern
module Value = Prairie_value.Value
module Order = Prairie_value.Order
module Predicate = Prairie_value.Predicate

let binop_to_string = function
  | Action.Add -> "+"
  | Action.Sub -> "-"
  | Action.Mul -> "*"
  | Action.Div -> "/"
  | Action.And -> "&&"
  | Action.Or -> "||"
  | Action.Cmp Predicate.Eq -> "=="
  | Action.Cmp Predicate.Ne -> "!="
  | Action.Cmp Predicate.Lt -> "<"
  | Action.Cmp Predicate.Le -> "<="
  | Action.Cmp Predicate.Gt -> ">"
  | Action.Cmp Predicate.Ge -> ">="

let rec expr ppf = function
  | Action.Const (Value.Bool true) -> Format.pp_print_string ppf "TRUE"
  | Action.Const (Value.Bool false) -> Format.pp_print_string ppf "FALSE"
  | Action.Const (Value.Int i) -> Format.pp_print_int ppf i
  | Action.Const (Value.Float f) ->
    let s = Printf.sprintf "%.17g" f in
    let s = if String.contains s '.' || String.contains s 'e' then s else s ^ ".0" in
    Format.pp_print_string ppf s
  | Action.Const (Value.Str s) -> Format.fprintf ppf "%S" s
  | Action.Const (Value.Order Order.Any) -> Format.pp_print_string ppf "DONT_CARE"
  | Action.Const v ->
    (* other literals have no surface syntax; they only arise in embedded
       rule sets *)
    Format.fprintf ppf "\"<opaque:%s>\"" (Value.to_repr v)
  | Action.Desc d -> Format.pp_print_string ppf d
  | Action.Prop (d, p) -> Format.fprintf ppf "%s.%s" d p
  | Action.Call (name, args) ->
    Format.fprintf ppf "%s(" name;
    List.iteri
      (fun i a ->
        if i > 0 then Format.fprintf ppf ", ";
        expr ppf a)
      args;
    Format.fprintf ppf ")"
  | Action.Binop (op, a, b) ->
    Format.fprintf ppf "(%a %s %a)" expr a (binop_to_string op) expr b
  | Action.Unop (Action.Not, a) -> Format.fprintf ppf "!(%a)" expr a
  | Action.Unop (Action.Neg, a) -> Format.fprintf ppf "-(%a)" expr a

let stmt ppf = function
  | Action.Assign_desc (d, e) -> Format.fprintf ppf "%s = %a;" d expr e
  | Action.Assign_prop (d, p, e) -> Format.fprintf ppf "%s.%s = %a;" d p expr e

let rec pattern ppf = function
  | Pattern.Pvar i -> Format.fprintf ppf "?%d" i
  | Pattern.Pop (name, dvar, subs) ->
    Format.fprintf ppf "%s(" name;
    List.iteri
      (fun i s ->
        if i > 0 then Format.fprintf ppf ", ";
        pattern ppf s)
      subs;
    Format.fprintf ppf ") : %s" dvar

let rec template ppf = function
  | Pattern.Tvar (i, None) -> Format.fprintf ppf "?%d" i
  | Pattern.Tvar (i, Some d) -> Format.fprintf ppf "?%d : %s" i d
  | Pattern.Tnode (name, dvar, subs) ->
    Format.fprintf ppf "%s(" name;
    List.iteri
      (fun i s ->
        if i > 0 then Format.fprintf ppf ", ";
        template ppf s)
      subs;
    Format.fprintf ppf ") : %s" dvar

let stmts name ppf = function
  | [] -> ()
  | ss ->
    Format.fprintf ppf "@,@[<v 2>%s {" name;
    List.iter (fun s -> Format.fprintf ppf "@,%a" stmt s) ss;
    Format.fprintf ppf "@]@,}"

let arity_of_op (rs : Prairie.Ruleset.t) name =
  (* operators appear in rule patterns; recover arity from any occurrence *)
  let rec from_pat = function
    | Pattern.Pvar _ -> None
    | Pattern.Pop (n, _, subs) ->
      if String.equal n name then Some (List.length subs)
      else List.find_map from_pat subs
  in
  let rec from_tmpl = function
    | Pattern.Tvar _ -> None
    | Pattern.Tnode (n, _, subs) ->
      if String.equal n name then Some (List.length subs)
      else List.find_map from_tmpl subs
  in
  let of_trule (r : Prairie.Trule.t) =
    match from_pat r.Prairie.Trule.lhs with
    | Some a -> Some a
    | None -> from_tmpl r.Prairie.Trule.rhs
  in
  let of_irule (r : Prairie.Irule.t) =
    match from_pat r.Prairie.Irule.lhs with
    | Some a -> Some a
    | None -> from_tmpl r.Prairie.Irule.rhs
  in
  match List.find_map of_trule rs.Prairie.Ruleset.trules with
  | Some a -> Some a
  | None -> List.find_map of_irule rs.Prairie.Ruleset.irules

let ruleset ppf (rs : Prairie.Ruleset.t) =
  Format.fprintf ppf "@[<v>ruleset %s;@," rs.Prairie.Ruleset.name;
  List.iter
    (fun (p : Prairie.Property.t) ->
      Format.fprintf ppf "@,property %s : %s;" p.Prairie.Property.name
        (Value.ty_to_string p.Prairie.Property.ty))
    rs.Prairie.Ruleset.properties;
  Format.fprintf ppf "@,";
  List.iter
    (fun op ->
      if not (List.mem op rs.Prairie.Ruleset.algorithms) then
        match arity_of_op rs op with
        | Some a -> Format.fprintf ppf "@,operator %s(%d);" op a
        | None -> ())
    rs.Prairie.Ruleset.operators;
  List.iter
    (fun alg ->
      if not (String.equal alg Prairie.Irule.null_algorithm) then
        match arity_of_op rs alg with
        | Some a -> Format.fprintf ppf "@,algorithm %s(%d);" alg a
        | None -> ())
    rs.Prairie.Ruleset.algorithms;
  List.iter
    (fun (r : Prairie.Trule.t) ->
      Format.fprintf ppf "@,@,@[<v 2>trule %s:@,%a ==> %a@]"
        r.Prairie.Trule.name pattern r.Prairie.Trule.lhs template
        r.Prairie.Trule.rhs;
      stmts "pre" ppf r.Prairie.Trule.pre_test;
      Format.fprintf ppf "@,test { %a }" expr r.Prairie.Trule.test;
      stmts "post" ppf r.Prairie.Trule.post_test)
    rs.Prairie.Ruleset.trules;
  List.iter
    (fun (r : Prairie.Irule.t) ->
      Format.fprintf ppf "@,@,@[<v 2>irule %s:@,%a ==> %a@]"
        r.Prairie.Irule.name pattern r.Prairie.Irule.lhs template
        r.Prairie.Irule.rhs;
      Format.fprintf ppf "@,test { %a }" expr r.Prairie.Irule.test;
      stmts "pre" ppf r.Prairie.Irule.pre_opt;
      stmts "post" ppf r.Prairie.Irule.post_opt)
    rs.Prairie.Ruleset.irules;
  Format.fprintf ppf "@]@."

let ruleset_to_string rs = Format.asprintf "%a" ruleset rs
