lib/ruledsl/elaborate.mli: Ast Prairie
