lib/ruledsl/parser.mli: Ast Lexer
