lib/ruledsl/elaborate.ml: Ast Hashtbl List Parser Prairie Prairie_value Printf
