lib/ruledsl/lexer.mli: Format Token
