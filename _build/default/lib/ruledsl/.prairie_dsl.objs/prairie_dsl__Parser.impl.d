lib/ruledsl/parser.ml: Ast Lexer List Prairie Prairie_value Printf Token
