lib/ruledsl/render.ml: Format List Prairie Prairie_value Printf String
