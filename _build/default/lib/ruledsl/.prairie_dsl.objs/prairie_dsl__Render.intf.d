lib/ruledsl/render.mli: Format Prairie
