lib/ruledsl/ast.ml: List Prairie
