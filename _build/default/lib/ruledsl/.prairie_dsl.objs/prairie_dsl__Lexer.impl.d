lib/ruledsl/lexer.ml: Buffer Format List Printf String Token
