lib/ruledsl/token.ml: Printf
