(* Surface syntax tree of a rule-specification file.  Patterns, templates,
   statements and expressions reuse the Prairie core types directly — the
   surface language is a concrete syntax for them. *)

type rule_body = {
  rb_name : string;
  rb_lhs : Prairie.Pattern.t;
  rb_rhs : Prairie.Pattern.tmpl;
  rb_pre : Prairie.Action.stmt list;
  rb_test : Prairie.Action.expr;
  rb_post : Prairie.Action.stmt list;
}

type decl =
  | Dproperty of string * string  (* name, type name *)
  | Doperator of string * int  (* name, arity *)
  | Dalgorithm of string * int
  | Dtrule of rule_body
  | Dirule of rule_body

type spec = {
  ruleset_name : string;
  decls : decl list;
}

let properties spec =
  List.filter_map (function Dproperty (n, ty) -> Some (n, ty) | _ -> None) spec.decls

let operators spec =
  List.filter_map (function Doperator (n, a) -> Some (n, a) | _ -> None) spec.decls

let algorithms spec =
  List.filter_map (function Dalgorithm (n, a) -> Some (n, a) | _ -> None) spec.decls

let trules spec =
  List.filter_map (function Dtrule r -> Some r | _ -> None) spec.decls

let irules spec =
  List.filter_map (function Dirule r -> Some r | _ -> None) spec.decls
