type position = {
  line : int;
  column : int;
}

exception Lex_error of position * string

type spanned = {
  token : Token.t;
  pos : position;
}

let pp_position ppf p = Format.fprintf ppf "line %d, column %d" p.line p.column

type state = {
  src : string;
  mutable offset : int;
  mutable line : int;
  mutable col : int;
}

let position st = { line = st.line; column = st.col }
let error st msg = raise (Lex_error (position st, msg))
let peek st = if st.offset < String.length st.src then Some st.src.[st.offset] else None

let peek2 st =
  if st.offset + 1 < String.length st.src then Some st.src.[st.offset + 1]
  else None

let advance st =
  (match peek st with
  | Some '\n' ->
    st.line <- st.line + 1;
    st.col <- 1
  | Some _ -> st.col <- st.col + 1
  | None -> ());
  st.offset <- st.offset + 1

let is_digit c = c >= '0' && c <= '9'
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident c = is_ident_start c || is_digit c

let rec skip_trivia st =
  match peek st with
  | Some (' ' | '\t' | '\r' | '\n') ->
    advance st;
    skip_trivia st
  | Some '/' when peek2 st = Some '/' ->
    while peek st <> None && peek st <> Some '\n' do
      advance st
    done;
    skip_trivia st
  | Some '/' when peek2 st = Some '*' ->
    advance st;
    advance st;
    let rec go () =
      match (peek st, peek2 st) with
      | Some '*', Some '/' ->
        advance st;
        advance st
      | Some _, _ ->
        advance st;
        go ()
      | None, _ -> error st "unterminated comment"
    in
    go ();
    skip_trivia st
  | Some _ | None -> ()

let lex_number st =
  let start = st.offset in
  while (match peek st with Some c -> is_digit c | None -> false) do
    advance st
  done;
  let is_float =
    match (peek st, peek2 st) with
    | Some '.', Some c when is_digit c -> true
    | _ -> false
  in
  if is_float then begin
    advance st;
    while (match peek st with Some c -> is_digit c | None -> false) do
      advance st
    done;
    Token.FLOAT (float_of_string (String.sub st.src start (st.offset - start)))
  end
  else Token.INT (int_of_string (String.sub st.src start (st.offset - start)))

let lex_ident st =
  let start = st.offset in
  while (match peek st with Some c -> is_ident c | None -> false) do
    advance st
  done;
  let word = String.sub st.src start (st.offset - start) in
  match Token.keyword_of_string word with
  | Some kw -> kw
  | None -> Token.IDENT word

let lex_string st =
  advance st (* opening quote *);
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> error st "unterminated string literal"
    | Some '"' -> advance st
    | Some '\\' -> (
      advance st;
      match peek st with
      | Some 'n' ->
        Buffer.add_char buf '\n';
        advance st;
        go ()
      | Some c ->
        Buffer.add_char buf c;
        advance st;
        go ()
      | None -> error st "unterminated escape")
    | Some c ->
      Buffer.add_char buf c;
      advance st;
      go ()
  in
  go ();
  Token.STRING (Buffer.contents buf)

let next_token st : Token.t =
  match peek st with
  | None -> Token.EOF
  | Some c -> (
    match c with
    | '(' -> advance st; Token.LPAREN
    | ')' -> advance st; Token.RPAREN
    | '{' -> advance st; Token.LBRACE
    | '}' -> advance st; Token.RBRACE
    | ',' -> advance st; Token.COMMA
    | ';' -> advance st; Token.SEMI
    | ':' -> advance st; Token.COLON
    | '.' -> advance st; Token.DOT
    | '+' -> advance st; Token.PLUS
    | '-' -> advance st; Token.MINUS
    | '*' -> advance st; Token.STAR
    | '/' -> advance st; Token.SLASH
    | '"' -> lex_string st
    | '?' ->
      advance st;
      let start = st.offset in
      while (match peek st with Some c -> is_digit c | None -> false) do
        advance st
      done;
      if st.offset = start then error st "expected digits after '?'"
      else Token.STREAM_VAR (int_of_string (String.sub st.src start (st.offset - start)))
    | '=' -> (
      advance st;
      match peek st with
      | Some '=' -> (
        advance st;
        match peek st with
        | Some '>' ->
          advance st;
          Token.ARROW
        | _ -> Token.EQ)
      | _ -> Token.ASSIGN)
    | '!' -> (
      advance st;
      match peek st with
      | Some '=' ->
        advance st;
        Token.NEQ
      | _ -> Token.BANG)
    | '<' -> (
      advance st;
      match peek st with
      | Some '=' ->
        advance st;
        Token.LE
      | _ -> Token.LT)
    | '>' -> (
      advance st;
      match peek st with
      | Some '=' ->
        advance st;
        Token.GE
      | _ -> Token.GT)
    | '&' -> (
      advance st;
      match peek st with
      | Some '&' ->
        advance st;
        Token.AND
      | _ -> error st "expected '&&'")
    | '|' -> (
      advance st;
      match peek st with
      | Some '|' ->
        advance st;
        Token.OR
      | _ -> error st "expected '||'")
    | c when is_digit c -> lex_number st
    | c when is_ident_start c -> lex_ident st
    | c -> error st (Printf.sprintf "unexpected character %C" c))

let tokenize src =
  let st = { src; offset = 0; line = 1; col = 1 } in
  let rec go acc =
    skip_trivia st;
    let pos = position st in
    let token = next_token st in
    let acc = { token; pos } :: acc in
    match token with Token.EOF -> List.rev acc | _ -> go acc
  in
  go []
