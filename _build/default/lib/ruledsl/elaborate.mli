(** Elaboration of a parsed rule-specification into a Prairie rule set.

    Checks declarations (known property types, no duplicate names,
    operator/algorithm arities respected by every rule, helper functions
    registered) and packages everything into a {!Prairie.Ruleset.t} that
    can be handed to the P2V pre-processor or the naive optimizer. *)

exception Elab_error of string list

val elaborate :
  helpers:Prairie.Helper_env.t -> Ast.spec -> Prairie.Ruleset.t
(** @raise Elab_error with every problem found. *)

val load :
  helpers:Prairie.Helper_env.t -> string -> Prairie.Ruleset.t
(** Parse and elaborate a [.prairie] file. *)

val load_string :
  helpers:Prairie.Helper_env.t -> string -> Prairie.Ruleset.t
