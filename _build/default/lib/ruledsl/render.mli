(** Pretty-printer from Prairie rule sets back to the rule-specification
    language.  [parse (render rs)] elaborates to a rule set equivalent to
    [rs] (round-trip tested), which makes embedded rule sets exportable as
    [.prairie] files. *)

val expr : Format.formatter -> Prairie.Action.expr -> unit

val stmt : Format.formatter -> Prairie.Action.stmt -> unit

val pattern : Format.formatter -> Prairie.Pattern.t -> unit

val template : Format.formatter -> Prairie.Pattern.tmpl -> unit

val ruleset : Format.formatter -> Prairie.Ruleset.t -> unit

val ruleset_to_string : Prairie.Ruleset.t -> string
