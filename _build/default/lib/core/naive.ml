type result = {
  plan : Expr.t;
  cost : float;
}

module Expr_set = Set.Make (Expr)

let replace_nth xs i x' = List.mapi (fun j x -> if j = i then x' else x) xs

(* All one-step T-rule rewrites of [expr], at the root or in any subtree. *)
let rewrites (ruleset : Ruleset.t) expr =
  let rec go expr =
    let at_root =
      List.filter_map
        (fun r -> Eval.apply_trule ruleset.helpers r expr)
        ruleset.trules
    in
    let in_subtrees =
      match expr with
      | Expr.Stored _ -> []
      | Expr.Node (kind, name, desc, inputs) ->
        List.concat
          (List.mapi
             (fun i x ->
               List.map
                 (fun x' -> Expr.Node (kind, name, desc, replace_nth inputs i x'))
                 (go x))
             inputs)
    in
    at_root @ in_subtrees
  in
  go expr

let logical_forms ?(max_forms = 20000) ruleset expr =
  let seen = ref (Expr_set.singleton expr) in
  let queue = Queue.create () in
  Queue.add expr queue;
  while not (Queue.is_empty queue) do
    let e = Queue.pop queue in
    List.iter
      (fun e' ->
        if Expr_set.cardinal !seen < max_forms && not (Expr_set.mem e' !seen)
        then begin
          seen := Expr_set.add e' !seen;
          Queue.add e' queue
        end)
      (rewrites ruleset e)
  done;
  Expr_set.elements !seen

let rec cartesian = function
  | [] -> [ [] ]
  | choices :: rest ->
    let tails = cartesian rest in
    List.concat_map (fun c -> List.map (fun t -> c :: t) tails) choices

module Expr_tbl = Hashtbl.Make (struct
  type t = Expr.t

  let equal = Expr.equal
  let hash = Expr.hash
end)

type ctx = {
  ruleset : Ruleset.t;
  max_forms : int option;
  memo : Expr.t list Expr_tbl.t;
  mutable in_progress : Expr.t list;
}

(* Every access plan for [expr], whose root descriptor already carries the
   required properties: close under T-rules, then implement each logical
   form.  The closure re-runs inside the recursion because requirements
   pushed down by pre-opt statements (e.g. an order requirement on a
   nested-loops outer input) can enable T-rules -- such as the
   sort-introduction rules -- that were inapplicable before.

   A rule cycle (Null passing a requirement back down to an expression that
   is already being optimized, re-enabling the same enforcer introduction)
   would recurse forever; re-entrant sub-problems return no plans -- any
   plan built through such a cycle has a strictly smaller acyclic
   counterpart.  Results are memoized per expression, except when a cycle
   was cut underneath (those depend on the call stack). *)
let rec optimize_all ctx expr : Expr.t list * bool =
  match Expr_tbl.find_opt ctx.memo expr with
  | Some plans -> (plans, false)
  | None ->
    if List.exists (Expr.equal expr) ctx.in_progress then ([], true)
    else begin
      ctx.in_progress <- expr :: ctx.in_progress;
      let cut = ref false in
      let plans =
        List.concat_map
          (fun form ->
            let plans, c = implement ctx form in
            if c then cut := true;
            plans)
          (logical_forms ?max_forms:ctx.max_forms ctx.ruleset expr)
      in
      ctx.in_progress <- List.tl ctx.in_progress;
      if not !cut then Expr_tbl.replace ctx.memo expr plans;
      (plans, !cut)
    end

and implement ctx expr : Expr.t list * bool =
  match expr with
  | Expr.Stored _ -> ([ expr ], false)
  | Expr.Node (Expr.Algorithm, _, _, _) -> ([ expr ], false)
  | Expr.Node (Expr.Operator, name, _, _) ->
    let cut = ref false in
    let try_rule (rule : Irule.t) =
      match Eval.begin_irule ctx.ruleset.helpers rule expr with
      | None -> []
      | Some app ->
        let reqs = Eval.input_requirements app in
        let per_input =
          List.map
            (fun (i, sub) ->
              let plans, c = optimize_all ctx sub in
              if c then cut := true;
              List.map (fun plan -> (i, plan)) plans)
            reqs
        in
        List.map
          (fun optimized_inputs ->
            Eval.finish_irule ctx.ruleset.helpers app ~optimized_inputs)
          (cartesian per_input)
    in
    let plans = List.concat_map try_rule (Ruleset.irules_for ctx.ruleset name) in
    (plans, !cut)

let with_required required expr =
  Expr.map_descriptor expr (fun d -> Descriptor.merge ~base:d ~overrides:required)

let plans ?max_forms ruleset ~required expr =
  let ctx = { ruleset; max_forms; memo = Expr_tbl.create 64; in_progress = [] } in
  fst (optimize_all ctx (with_required required expr))

let best_plan ?max_forms ruleset ~required expr =
  List.fold_left
    (fun best plan ->
      let cost = Expr.cost plan in
      match best with
      | Some b when b.cost <= cost -> best
      | _ -> Some { plan; cost })
    None
    (plans ?max_forms ruleset ~required expr)

let plan_count ?max_forms ruleset ~required expr =
  List.length (plans ?max_forms ruleset ~required expr)
