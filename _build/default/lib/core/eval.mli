(** Evaluation of rule actions and rule application.

    This is the dynamic semantics of Prairie rules (paper §§2.3–2.4):

    - {b T-rules}: match → pre-test statements → test → post-test
      statements → instantiate the output operator tree.  All post-test
      actions run immediately, with no intermediate optimization of
      descendant nodes.
    - {b I-rules}: match → test → pre-opt statements (computing the
      algorithm descriptor and the required descriptors of re-descriptored
      inputs) → {e inputs are optimized by the caller} → input descriptors
      are rebound to the achieved ones → post-opt statements (computing
      cost) → instantiate the algorithm node.

    The engine enforces the paper's immutability discipline dynamically:
    assigning to a descriptor bound by the LHS raises {!Rule_error}. *)

exception Rule_error of string

val eval_expr :
  Helper_env.t -> Pattern.Binding.t -> Action.expr -> Prairie_value.Value.t
(** @raise Rule_error on reads of whole descriptors outside a
    whole-descriptor assignment. *)

val eval_test : Helper_env.t -> Pattern.Binding.t -> Action.expr -> bool
(** @raise Rule_error when the test does not evaluate to a boolean. *)

val exec_stmts :
  protected:string list ->
  Helper_env.t ->
  Pattern.Binding.t ->
  Action.stmt list ->
  Pattern.Binding.t
(** Run assignment statements in order.  [protected] lists descriptor
    variables that must not be assigned (the LHS descriptors). *)

val apply_trule : Helper_env.t -> Trule.t -> Expr.t -> Expr.t option
(** One T-rule application at the root of an operator tree; [None] when the
    pattern does not match or the test fails. *)

(** {1 Two-phase I-rule application} *)

type irule_app
(** An I-rule application suspended between its pre-opt and post-opt
    phases: the test has passed and required input descriptors have been
    computed, but the inputs have not yet been optimized. *)

val begin_irule : Helper_env.t -> Irule.t -> Expr.t -> irule_app option
(** Match the LHS against an operator node, evaluate the test, and run the
    pre-opt statements. *)

val app_rule : irule_app -> Irule.t

val input_requirements : irule_app -> (int * Expr.t) list
(** For each stream variable of the rule, the input subtree with its root
    descriptor replaced by the required descriptor pushed down by the
    pre-opt statements (or left untouched when the input is not
    re-descriptored).  These are the sub-problems the caller must optimize
    before calling {!finish_irule}. *)

val finish_irule :
  Helper_env.t -> irule_app -> optimized_inputs:(int * Expr.t) list -> Expr.t
(** Rebind each input's descriptor to the achieved descriptor of the
    optimized subplan, run the post-opt statements (computing cost), and
    build the algorithm node. *)
