module Value = Prairie_value.Value
module Binding = Pattern.Binding

let rule_error fmt = Printf.ksprintf (fun m -> raise (Eval.Rule_error m)) fmt

let rec expr helpers (e : Action.expr) : Binding.t -> Value.t =
  match e with
  | Action.Const v -> fun _ -> v
  | Action.Desc d ->
    rule_error
      "descriptor %s used as a value (whole-descriptor reads are only legal \
       in whole-descriptor assignments)"
      d
  | Action.Prop (d, p) -> fun b -> Descriptor.get (Binding.desc b d) p
  | Action.Call (name, args) ->
    (* the helper is resolved once, at compilation time *)
    let fn =
      match Helper_env.find helpers name with
      | Some fn -> fn
      | None -> raise (Helper_env.Unknown_helper name)
    in
    let cargs = List.map (expr helpers) args in
    fun b -> fn (List.map (fun c -> c b) cargs)
  | Action.Binop (Action.And, e1, e2) ->
    let c1 = expr helpers e1 and c2 = expr helpers e2 in
    fun b -> if Value.truthy (c1 b) then c2 b else Value.Bool false
  | Action.Binop (Action.Or, e1, e2) ->
    let c1 = expr helpers e1 and c2 = expr helpers e2 in
    fun b -> if Value.truthy (c1 b) then Value.Bool true else c2 b
  | Action.Binop (op, e1, e2) ->
    let c1 = expr helpers e1 and c2 = expr helpers e2 in
    let f =
      match op with
      | Action.Add -> Value.add
      | Action.Sub -> Value.sub
      | Action.Mul -> Value.mul
      | Action.Div -> Value.div
      | Action.Cmp c -> fun a b -> Value.Bool (Value.cmp c a b)
      | Action.And | Action.Or -> assert false
    in
    fun b -> f (c1 b) (c2 b)
  | Action.Unop (Action.Not, e1) ->
    let c1 = expr helpers e1 in
    fun b -> Value.Bool (not (Value.truthy (c1 b)))
  | Action.Unop (Action.Neg, e1) ->
    let c1 = expr helpers e1 in
    fun b ->
      (match c1 b with
      | Value.Int i -> Value.Int (-i)
      | v -> Value.Float (-.Value.to_float v))

let test helpers e =
  let c = expr helpers e in
  fun b ->
    match c b with
    | Value.Bool v -> v
    | v -> rule_error "rule test evaluated to non-boolean %s" (Value.to_repr v)

let stmt ~protected helpers (s : Action.stmt) : Binding.t -> Binding.t =
  let target = Action.assigned_descriptor s in
  if List.mem target protected then
    rule_error "action assigns to LHS descriptor %s (immutable)" target;
  match s with
  | Action.Assign_desc (d, Action.Desc src) ->
    fun b -> Binding.bind_desc b d (Binding.desc b src)
  | Action.Assign_desc (d, Action.Const Value.Null) ->
    fun b -> Binding.bind_desc b d Descriptor.empty
  | Action.Assign_desc (d, _) ->
    rule_error
      "whole-descriptor assignment to %s requires a descriptor on the \
       right-hand side"
      d
  | Action.Assign_prop (d, p, e) ->
    let c = expr helpers e in
    fun b -> Binding.bind_desc b d (Descriptor.set (Binding.desc b d) p (c b))

let stmts ~protected helpers ss =
  let compiled = List.map (stmt ~protected helpers) ss in
  fun b -> List.fold_left (fun b c -> c b) b compiled
