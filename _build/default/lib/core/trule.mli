(** Transformation rules (T-rules).

    A T-rule [E(x1..xn):D1 ==> E'(x1..xn):D2] defines an equivalence between
    two operator trees (paper §2.3, Eq. 1).  Its actions are split into
    {e pre-test} statements (run before the applicability test, typically
    computing the output annotations the test inspects), the boolean
    {e test}, and {e post-test} statements (run only on success).  All
    statements assign only to output descriptors — input descriptors are
    immutable. *)

type t = {
  name : string;
  lhs : Pattern.t;
  rhs : Pattern.tmpl;
  pre_test : Action.stmt list;
  test : Action.expr;
  post_test : Action.stmt list;
}

val make :
  ?pre_test:Action.stmt list ->
  ?test:Action.expr ->
  ?post_test:Action.stmt list ->
  name:string ->
  lhs:Pattern.t ->
  rhs:Pattern.tmpl ->
  unit ->
  t
(** [test] defaults to [TRUE], the statement lists to empty. *)

val input_descriptors : t -> string list
(** Descriptor variables bound by matching the LHS (never assignable). *)

val output_descriptors : t -> string list
(** Descriptor variables of the RHS that must be computed by the actions. *)

val validate : t -> (unit, string) result
(** Static well-formedness: RHS stream variables appear in the LHS, actions
    assign only to output descriptors, reads reference bound or
    already-assigned descriptors. *)

val pp : Format.formatter -> t -> unit
