(** Implementation rules (I-rules).

    An I-rule [E(x1..xn):D ==> A(x1:D1', .., xn):D'] chooses a concrete
    algorithm for an abstract operator (paper §2.4, Eq. 3).  Its three
    parts:
    - the boolean {e test} of applicability;
    - {e pre-opt} statements, run {e before} the inputs are optimized —
      this is where required physical properties (e.g. a tuple order) are
      pushed down to re-descriptored inputs;
    - {e post-opt} statements, run {e after} the inputs are optimized —
      this is where the algorithm's cost is computed from input costs.

    An I-rule whose right-hand side is the distinguished [Null] algorithm
    (paper §2.5) marks its operator as an enforcer-operator. *)

type t = {
  name : string;
  lhs : Pattern.t;  (** a single operator over stream variables *)
  rhs : Pattern.tmpl;  (** a single algorithm node *)
  test : Action.expr;
  pre_opt : Action.stmt list;
  post_opt : Action.stmt list;
}

val null_algorithm : string
(** The reserved algorithm name ["Null"]. *)

val make :
  ?test:Action.expr ->
  ?pre_opt:Action.stmt list ->
  ?post_opt:Action.stmt list ->
  name:string ->
  lhs:Pattern.t ->
  rhs:Pattern.tmpl ->
  unit ->
  t

val operator : t -> string
(** The operator the rule implements (root of the LHS). *)

val algorithm : t -> string
(** The algorithm the rule selects (root of the RHS). *)

val is_null_rule : t -> bool
(** Does the rule implement its operator by the [Null] algorithm?  Such an
    operator is an enforcer-operator (paper §2.5). *)

val operator_descriptor : t -> string
(** Descriptor variable of the LHS operator node. *)

val algorithm_descriptor : t -> string
(** Descriptor variable of the RHS algorithm node. *)

val redescriptored_inputs : t -> (int * string) list
(** Stream variables the RHS re-descriptors, with the new descriptor
    variable: the inputs whose required properties the rule sets. *)

val input_descriptors : t -> string list

val output_descriptors : t -> string list

val validate : t -> (unit, string) result
(** LHS is a single operator over distinct stream variables, RHS a single
    algorithm over the same variables; actions assign only to output
    descriptors; reads are defined. *)

val pp : Format.formatter -> t -> unit
