module Value = Prairie_value.Value
module Order = Prairie_value.Order
module Predicate = Prairie_value.Predicate

type t = {
  name : string;
  ty : Value.ty;
  default : Value.t;
}

type schema = t list

let declare ?default name ty =
  let default =
    match default with
    | Some v -> v
    | None -> (
      match ty with
      | Value.T_order -> Value.Order Order.Any
      | Value.T_pred -> Value.Pred Predicate.True
      | _ -> Value.Null)
  in
  { name; ty; default }

let find schema name = List.find_opt (fun p -> String.equal p.name name) schema
let mem schema name = Option.is_some (find schema name)

let cost_properties schema =
  List.filter_map
    (fun p -> if p.ty = Value.T_cost then Some p.name else None)
    schema

let validate schema bindings =
  let check (name, v) =
    match find schema name with
    | None -> Error (Printf.sprintf "undeclared property %S" name)
    | Some p ->
      if Value.has_ty v p.ty then Ok ()
      else
        Error
          (Printf.sprintf "property %S expects %s, got %s" name
             (Value.ty_to_string p.ty) (Value.to_repr v))
  in
  List.fold_left
    (fun acc b -> match acc with Error _ -> acc | Ok () -> check b)
    (Ok ()) bindings

let pp ppf p =
  Format.fprintf ppf "%s : %s" p.name (Value.ty_to_string p.ty)
