(** Action compilation: statement lists staged into closures.

    The paper's P2V emits C code for rule actions; the analog here is
    staging — an {!Action.expr} or statement list is traversed {e once},
    resolving helper-function lookups and operator dispatch, and yields a
    closure evaluated on every rule invocation.  Semantics are identical to
    {!Eval} (property-tested); the cost of interpretation is paid at
    translation time instead of per firing.

    Compilation also front-loads the static checks: unknown helpers and
    assignments to protected descriptors are detected when the rule is
    compiled, not when it first fires. *)

val expr :
  Helper_env.t ->
  Action.expr ->
  (Pattern.Binding.t -> Prairie_value.Value.t)
(** @raise Helper_env.Unknown_helper at compile time for unregistered
    helpers.
    @raise Eval.Rule_error at compile time for whole-descriptor reads
    outside a copy. *)

val test : Helper_env.t -> Action.expr -> (Pattern.Binding.t -> bool)

val stmts :
  protected:string list ->
  Helper_env.t ->
  Action.stmt list ->
  (Pattern.Binding.t -> Pattern.Binding.t)
(** @raise Eval.Rule_error at compile time when a statement assigns to a
    protected (LHS) descriptor. *)
