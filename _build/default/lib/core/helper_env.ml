module Value = Prairie_value.Value
module Order = Prairie_value.Order
module String_map = Map.Make (String)

type fn = Value.t list -> Value.t

exception Unknown_helper of string
exception Helper_error of string * string

type t = fn String_map.t

let empty = String_map.empty
let add name fn t = String_map.add name fn t
let add_all fns t = List.fold_left (fun t (name, fn) -> add name fn t) t fns
let find t name = String_map.find_opt name t
let mem t name = String_map.mem name t
let names t = List.map fst (String_map.bindings t)

let merge a b = String_map.union (fun _ _ fb -> Some fb) a b

let call t name args =
  match find t name with
  | Some fn -> fn args
  | None -> raise (Unknown_helper name)

let error name msg = raise (Helper_error (name, msg))

let arity1 name f = function
  | [ v ] -> f v
  | args -> error name (Printf.sprintf "expected 1 argument, got %d" (List.length args))

let arity2 name f = function
  | [ a; b ] -> f a b
  | args -> error name (Printf.sprintf "expected 2 arguments, got %d" (List.length args))

let float1 name f =
  arity1 name (fun v -> Value.Float (f (Value.to_float v)))

let builtins =
  empty
  |> add_all
       [
         ( "log",
           float1 "log" (fun x -> if x <= 1.0 then 0.0 else Float.log x) );
         ( "log2",
           float1 "log2" (fun x ->
               if x <= 1.0 then 0.0 else Float.log x /. Float.log 2.0) );
         ("ceil", float1 "ceil" Float.ceil);
         ("floor", float1 "floor" Float.floor);
         ( "abs",
           arity1 "abs" (fun v ->
               match v with
               | Value.Int i -> Value.Int (abs i)
               | v -> Value.Float (Float.abs (Value.to_float v))) );
         ( "min",
           arity2 "min" (fun a b ->
               if Value.to_float a <= Value.to_float b then a else b) );
         ( "max",
           arity2 "max" (fun a b ->
               if Value.to_float a >= Value.to_float b then a else b) );
         ( "coalesce",
           arity2 "coalesce" (fun a b ->
               match a with Value.Null -> b | _ -> a) );
         ( "is_null",
           arity1 "is_null" (fun v -> Value.Bool (v = Value.Null)) );
         ( "order_satisfies",
           arity2 "order_satisfies" (fun req act ->
               Value.Bool
                 (Order.satisfies ~required:(Value.to_order req)
                    ~actual:(Value.to_order act))) );
         ( "is_dont_care",
           arity1 "is_dont_care" (fun v ->
               Value.Bool (Order.is_any (Value.to_order v))) );
       ]
