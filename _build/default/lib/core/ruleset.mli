(** Prairie rule sets.

    A rule set packages everything a user writes to define an optimizer in
    Prairie: the declared operators and algorithms (all first-class — paper
    §1 goal 1), the declared property list (goal 2), the T-rules and
    I-rules with their property mappings (goal 3), and the helper-function
    environment the actions call into. *)

type t = {
  name : string;
  properties : Property.schema;
  operators : string list;  (** declared abstract operators *)
  algorithms : string list;  (** declared algorithms, including [Null] *)
  trules : Trule.t list;
  irules : Irule.t list;
  helpers : Helper_env.t;
}

val make :
  ?properties:Property.schema ->
  ?operators:string list ->
  ?algorithms:string list ->
  ?trules:Trule.t list ->
  ?irules:Irule.t list ->
  ?helpers:Helper_env.t ->
  string ->
  t
(** [make name] builds a rule set; [helpers] defaults to
    {!Helper_env.builtins}.  Operators and algorithms not listed explicitly
    are inferred from the rules. *)

val irules_for : t -> string -> Irule.t list
(** I-rules implementing the given operator. *)

val trule_count : t -> int
val irule_count : t -> int

val find_trule : t -> string -> Trule.t option
val find_irule : t -> string -> Irule.t option

val combine : name:string -> t -> t -> t
(** Combine two rule sets into one optimizer — the paper's §6 future work
    ("combining multiple Prairie rule sets to automatically generate
    efficient optimizers").  Operators, algorithms and properties are
    unioned; rules of both sets apply, so operators shared by name (e.g. a
    JOIN known to both) gain each other's transformations and
    implementations.  Same-name properties must agree on their type and
    same-name rules must be structurally identical (they are deduplicated);
    anything else raises [Invalid_argument]. *)

val validate : t -> (unit, string list) result
(** Validates every rule (see {!Trule.validate}, {!Irule.validate}), checks
    that rules mention only declared operators/algorithms, that every helper
    called by an action is registered, and that every operator has at least
    one I-rule (otherwise no plan could ever be produced for it). *)

val spec_size : t -> int
(** A crude "lines of specification" metric: number of rules plus number of
    action statements plus number of declared properties.  Used by the
    §4.2-style programmer-productivity report. *)

val pp : Format.formatter -> t -> unit
