module Value = Prairie_value.Value
module Binding = Pattern.Binding

exception Rule_error of string

let rule_error fmt = Printf.ksprintf (fun m -> raise (Rule_error m)) fmt

let rec eval_expr helpers (b : Binding.t) (e : Action.expr) : Value.t =
  match e with
  | Action.Const v -> v
  | Action.Desc d ->
    rule_error "descriptor %s used as a value (whole-descriptor reads are \
                only legal in whole-descriptor assignments)" d
  | Action.Prop (d, p) -> Descriptor.get (Binding.desc b d) p
  | Action.Call (name, args) ->
    Helper_env.call helpers name (List.map (eval_expr helpers b) args)
  | Action.Binop (op, e1, e2) -> eval_binop helpers b op e1 e2
  | Action.Unop (Action.Not, e1) ->
    Value.Bool (not (Value.truthy (eval_expr helpers b e1)))
  | Action.Unop (Action.Neg, e1) -> (
    match eval_expr helpers b e1 with
    | Value.Int i -> Value.Int (-i)
    | v -> Value.Float (-.Value.to_float v))

and eval_binop helpers b op e1 e2 =
  match op with
  | Action.And ->
    (* short-circuit, so tests can guard partial reads *)
    if Value.truthy (eval_expr helpers b e1) then eval_expr helpers b e2
    else Value.Bool false
  | Action.Or ->
    if Value.truthy (eval_expr helpers b e1) then Value.Bool true
    else eval_expr helpers b e2
  | Action.Add -> Value.add (eval_expr helpers b e1) (eval_expr helpers b e2)
  | Action.Sub -> Value.sub (eval_expr helpers b e1) (eval_expr helpers b e2)
  | Action.Mul -> Value.mul (eval_expr helpers b e1) (eval_expr helpers b e2)
  | Action.Div -> Value.div (eval_expr helpers b e1) (eval_expr helpers b e2)
  | Action.Cmp c ->
    Value.Bool (Value.cmp c (eval_expr helpers b e1) (eval_expr helpers b e2))

let eval_test helpers b e =
  match eval_expr helpers b e with
  | Value.Bool v -> v
  | v -> rule_error "rule test evaluated to non-boolean %s" (Value.to_repr v)

let exec_stmt ~protected helpers (b : Binding.t) (s : Action.stmt) =
  let target = Action.assigned_descriptor s in
  if List.mem target protected then
    rule_error "action assigns to LHS descriptor %s (immutable)" target;
  match s with
  | Action.Assign_desc (d, Action.Desc src) ->
    Binding.bind_desc b d (Binding.desc b src)
  | Action.Assign_desc (d, e) -> (
    (* permit helper calls that conceptually return descriptors encoded as
       property lists?  No: the paper's whole-descriptor assignments are
       always copies. *)
    match e with
    | Action.Const Value.Null -> Binding.bind_desc b d Descriptor.empty
    | _ ->
      rule_error "whole-descriptor assignment to %s requires a descriptor on \
                  the right-hand side" d)
  | Action.Assign_prop (d, p, e) ->
    let v = eval_expr helpers b e in
    Binding.bind_desc b d (Descriptor.set (Binding.desc b d) p v)

let exec_stmts ~protected helpers b stmts =
  List.fold_left (exec_stmt ~protected helpers) b stmts

let apply_trule helpers (rule : Trule.t) expr =
  match Pattern.matches rule.lhs expr with
  | None -> None
  | Some b ->
    let protected = Trule.input_descriptors rule in
    let b = exec_stmts ~protected helpers b rule.pre_test in
    if eval_test helpers b rule.test then
      let b = exec_stmts ~protected helpers b rule.post_test in
      Some (Pattern.instantiate ~kind:Expr.Operator rule.rhs b)
    else None

type irule_app = {
  rule : Irule.t;
  binding : Binding.t;
}

let begin_irule helpers (rule : Irule.t) expr =
  match Pattern.matches rule.lhs expr with
  | None -> None
  | Some b ->
    if eval_test helpers b rule.test then
      let protected = Irule.input_descriptors rule in
      let b = exec_stmts ~protected helpers b rule.pre_opt in
      Some { rule; binding = b }
    else None

let app_rule t = t.rule

let input_requirements t =
  let redescs = Irule.redescriptored_inputs t.rule in
  List.map
    (fun i ->
      let sub = Binding.stream t.binding i in
      match List.assoc_opt i redescs with
      | Some dvar -> (i, Expr.with_descriptor sub (Binding.desc t.binding dvar))
      | None -> (i, sub))
    (Pattern.vars t.rule.lhs)

let finish_irule helpers t ~optimized_inputs =
  let redescs = Irule.redescriptored_inputs t.rule in
  (* Rebind stream variables to the optimized subplans, and their descriptor
     variables to the achieved descriptors so that post-opt statements can
     read input costs (paper §2.4: post-opt runs after all inputs are
     optimized). *)
  let b =
    List.fold_left
      (fun b (i, plan) ->
        let b = Binding.bind_stream b i plan in
        let achieved = Expr.descriptor plan in
        let b = Binding.bind_desc b (Pattern.stream_desc_name i) achieved in
        match List.assoc_opt i redescs with
        | Some dvar -> Binding.bind_desc b dvar achieved
        | None -> b)
      t.binding optimized_inputs
  in
  let protected = [ Irule.operator_descriptor t.rule ] in
  let b = exec_stmts ~protected helpers b t.rule.post_opt in
  Pattern.instantiate ~kind:Expr.Algorithm t.rule.rhs b
