(** Property declarations.

    A Prairie user "defines a list of properties to characterize the
    expressions generated in the optimization process" (paper §1, goal 2).
    Each property has a name and a declared type; the only type-driven
    distinction Prairie itself makes is that [COST]-typed properties are
    recognized as costs by the P2V pre-processor.  Everything else
    (logical/physical/argument) is inferred from rule actions, never
    declared. *)

type t = {
  name : string;
  ty : Prairie_value.Value.ty;
  default : Prairie_value.Value.t;
      (** value assumed when a descriptor lacks the property *)
}

type schema = t list

val declare :
  ?default:Prairie_value.Value.t -> string -> Prairie_value.Value.ty -> t
(** [declare name ty] declares a property; the default defaults to [Null]
    except for [ORDER]-typed properties, which default to DONT_CARE, and
    [PREDICATE]-typed ones, which default to [True]. *)

val find : schema -> string -> t option

val mem : schema -> string -> bool

val cost_properties : schema -> string list
(** Names of the [COST]-typed properties — classified as cost by P2V. *)

val validate :
  schema -> (string * Prairie_value.Value.t) list -> (unit, string) result
(** Checks that every bound property is declared and type-compatible. *)

val pp : Format.formatter -> t -> unit
