type t =
  | Pvar of int
  | Pop of string * string * t list

type tmpl =
  | Tvar of int * string option
  | Tnode of string * string * tmpl list

let stream_desc_name i = "D" ^ string_of_int i

module Binding = struct
  type binding = {
    streams : (int * Expr.t) list;
    descs : (string * Descriptor.t) list;
  }

  type t = binding

  let empty = { streams = []; descs = [] }
  let stream_opt b i = List.assoc_opt i b.streams

  let stream b i =
    match stream_opt b i with
    | Some e -> e
    | None -> invalid_arg (Printf.sprintf "unbound stream variable ?%d" i)

  let desc_opt b d = List.assoc_opt d b.descs

  let desc b d =
    match desc_opt b d with Some x -> x | None -> Descriptor.empty

  let bind_desc b d v = { b with descs = (d, v) :: List.remove_assoc d b.descs }

  let bind_stream b i e =
    { b with streams = (i, e) :: List.remove_assoc i b.streams }

  let desc_names b = List.sort String.compare (List.map fst b.descs)
end

let rec match_at pat (e : Expr.t) b =
  match pat with
  | Pvar i ->
    let b = Binding.bind_stream b i e in
    Some (Binding.bind_desc b (stream_desc_name i) (Expr.descriptor e))
  | Pop (name, dvar, subpats) -> (
    match e with
    | Expr.Node (Expr.Operator, n, d, inputs)
      when String.equal n name && List.length inputs = List.length subpats ->
      let b = Binding.bind_desc b dvar d in
      List.fold_left2
        (fun acc p x ->
          match acc with None -> None | Some b -> match_at p x b)
        (Some b) subpats inputs
    | Expr.Node _ | Expr.Stored _ -> None)

let matches pat e = match_at pat e Binding.empty

let vars pat =
  let rec go acc = function
    | Pvar i -> if List.mem i acc then acc else i :: acc
    | Pop (_, _, subpats) -> List.fold_left go acc subpats
  in
  List.sort Int.compare (go [] pat)

let tmpl_vars t =
  let rec go acc = function
    | Tvar (i, _) -> if List.mem i acc then acc else i :: acc
    | Tnode (_, _, subs) -> List.fold_left go acc subs
  in
  List.sort Int.compare (go [] t)

let desc_vars pat =
  let rec go acc = function
    | Pvar i ->
      let d = stream_desc_name i in
      if List.mem d acc then acc else d :: acc
    | Pop (_, dvar, subpats) ->
      let acc = if List.mem dvar acc then acc else dvar :: acc in
      List.fold_left go acc subpats
  in
  List.sort String.compare (go [] pat)

let tmpl_desc_vars t =
  let rec go acc = function
    | Tvar (_, None) -> acc
    | Tvar (_, Some d) -> if List.mem d acc then acc else d :: acc
    | Tnode (_, dvar, subs) ->
      let acc = if List.mem dvar acc then acc else dvar :: acc in
      List.fold_left go acc subs
  in
  List.sort String.compare (go [] t)

let tmpl_nodes t =
  let rec go acc = function
    | Tvar _ -> acc
    | Tnode (name, dvar, subs) -> List.fold_left go ((name, dvar) :: acc) subs
  in
  List.rev (go [] t)

let root_operator = function
  | Pvar _ -> None
  | Pop (name, _, _) -> Some name

let rec instantiate ~kind tmpl (b : Binding.t) =
  match tmpl with
  | Tvar (i, redesc) -> (
    let sub = Binding.stream b i in
    match redesc with
    | None -> sub
    | Some d -> Expr.with_descriptor sub (Binding.desc b d))
  | Tnode (name, dvar, subs) ->
    Expr.Node
      (kind, name, Binding.desc b dvar,
       List.map (fun s -> instantiate ~kind s b) subs)

let rec rename_ops f = function
  | Pvar _ as p -> p
  | Pop (name, dvar, subs) -> Pop (f name, dvar, List.map (rename_ops f) subs)

let rec rename_ops_tmpl f = function
  | Tvar _ as t -> t
  | Tnode (name, dvar, subs) ->
    Tnode (f name, dvar, List.map (rename_ops_tmpl f) subs)

let rec equal a b =
  match (a, b) with
  | Pvar i, Pvar j -> Int.equal i j
  | Pop (n1, d1, xs1), Pop (n2, d2, xs2) ->
    String.equal n1 n2 && String.equal d1 d2 && List.equal equal xs1 xs2
  | Pvar _, Pop _ | Pop _, Pvar _ -> false

let rec pp ppf = function
  | Pvar i -> Format.fprintf ppf "?%d" i
  | Pop (name, dvar, subs) ->
    Format.fprintf ppf "%s(" name;
    List.iteri
      (fun i s ->
        if i > 0 then Format.fprintf ppf ", ";
        pp ppf s)
      subs;
    Format.fprintf ppf "):%s" dvar

let rec pp_tmpl ppf = function
  | Tvar (i, None) -> Format.fprintf ppf "?%d" i
  | Tvar (i, Some d) -> Format.fprintf ppf "?%d:%s" i d
  | Tnode (name, dvar, subs) ->
    Format.fprintf ppf "%s(" name;
    List.iteri
      (fun i s ->
        if i > 0 then Format.fprintf ppf ", ";
        pp_tmpl ppf s)
      subs;
    Format.fprintf ppf "):%s" dvar
