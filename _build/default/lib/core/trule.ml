type t = {
  name : string;
  lhs : Pattern.t;
  rhs : Pattern.tmpl;
  pre_test : Action.stmt list;
  test : Action.expr;
  post_test : Action.stmt list;
}

let make ?(pre_test = []) ?(test = Action.tt) ?(post_test = []) ~name ~lhs ~rhs
    () =
  { name; lhs; rhs; pre_test; test; post_test }

let input_descriptors t = Pattern.desc_vars t.lhs

let output_descriptors t =
  let inputs = input_descriptors t in
  List.filter (fun d -> not (List.mem d inputs)) (Pattern.tmpl_desc_vars t.rhs)

let validate t =
  let inputs = input_descriptors t in
  let lhs_vars = Pattern.vars t.lhs in
  let rhs_vars = Pattern.tmpl_vars t.rhs in
  let unbound = List.filter (fun v -> not (List.mem v lhs_vars)) rhs_vars in
  if unbound <> [] then
    Error
      (Printf.sprintf "rule %s: RHS stream variable ?%d not bound by the LHS"
         t.name (List.hd unbound))
  else
    let stmts = t.pre_test @ t.post_test in
    let bad_write =
      List.find_opt (fun s -> List.mem (Action.assigned_descriptor s) inputs) stmts
    in
    match bad_write with
    | Some s ->
      Error
        (Printf.sprintf
           "rule %s: action assigns to LHS descriptor %s (LHS descriptors are \
            immutable)"
           t.name
           (Action.assigned_descriptor s))
    | None ->
      let known = ref inputs in
      let check_stmt s =
        let reads = Action.stmt_read_descriptors s in
        let missing = List.filter (fun d -> not (List.mem d !known)) reads in
        known := Action.assigned_descriptor s :: !known;
        missing
      in
      let missing = List.concat_map check_stmt stmts in
      let missing_test =
        List.filter (fun d -> not (List.mem d !known))
          (Action.read_descriptors t.test)
      in
      (match missing @ missing_test with
      | [] -> Ok ()
      | d :: _ ->
        Error
          (Printf.sprintf "rule %s: descriptor %s read before being defined"
             t.name d))

let pp ppf t =
  Format.fprintf ppf "@[<v 2>T-rule %s:@,%a ==> %a" t.name Pattern.pp t.lhs
    Pattern.pp_tmpl t.rhs;
  if t.pre_test <> [] then
    Format.fprintf ppf "@,pre-test: %a" Action.pp_stmts t.pre_test;
  Format.fprintf ppf "@,test: %a" Action.pp_expr t.test;
  if t.post_test <> [] then
    Format.fprintf ppf "@,post-test: %a" Action.pp_stmts t.post_test;
  Format.fprintf ppf "@]"
