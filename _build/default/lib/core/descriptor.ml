module Value = Prairie_value.Value
module String_map = Map.Make (String)

type t = Value.t String_map.t

let empty = String_map.empty
let is_empty = String_map.is_empty

let get d p =
  match String_map.find_opt p d with Some v -> v | None -> Value.Null

let find d p =
  match String_map.find_opt p d with
  | Some Value.Null | None -> None
  | Some v -> Some v

(* "No constraint" values are normalized to absence so that descriptors
   reached along different rewriting paths compare equal: an unset
   [tuple_order] reads back as DONT_CARE and an unset predicate as [True]
   (see the typed accessors), so the representations are interchangeable. *)
let set d p v =
  match v with
  | Value.Null | Value.Order Prairie_value.Order.Any
  | Value.Pred Prairie_value.Predicate.True ->
    String_map.remove p d
  | _ -> String_map.add p v d

let remove d p = String_map.remove p d
let mem d p = match find d p with Some _ -> true | None -> false
let of_list bindings = List.fold_left (fun d (p, v) -> set d p v) empty bindings
let to_list d = String_map.bindings d
let merge ~base ~overrides = String_map.union (fun _ _ v -> Some v) base overrides

let restrict d props =
  String_map.filter (fun p _ -> List.mem p props) d

let without d props =
  String_map.filter (fun p _ -> not (List.mem p props)) d

let equal = String_map.equal Value.equal
let compare = String_map.compare Value.compare
let hash d = Hashtbl.hash (to_list d)
let get_int d p = Value.to_int (get d p)
let get_float d p = Value.to_float (get d p)
let get_order d p = Value.to_order (get d p)
let get_pred d p = Value.to_pred (get d p)
let get_attrs d p = Value.to_attrs (get d p)

let cost d = match find d "cost" with Some v -> Value.to_float v | None -> 0.0
let set_cost d c = set d "cost" (Value.Float c)

let pp ppf d =
  Format.fprintf ppf "@[<hv 1>{";
  List.iteri
    (fun i (p, v) ->
      if i > 0 then Format.fprintf ppf ";@ ";
      Format.fprintf ppf "%s = %a" p Value.pp v)
    (to_list d);
  Format.fprintf ppf "}@]"
