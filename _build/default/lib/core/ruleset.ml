type t = {
  name : string;
  properties : Property.schema;
  operators : string list;
  algorithms : string list;
  trules : Trule.t list;
  irules : Irule.t list;
  helpers : Helper_env.t;
}

let pattern_ops pat =
  let rec go acc = function
    | Pattern.Pvar _ -> acc
    | Pattern.Pop (name, _, subs) ->
      let acc = if List.mem name acc then acc else name :: acc in
      List.fold_left go acc subs
  in
  go [] pat

let tmpl_ops tmpl =
  let rec go acc = function
    | Pattern.Tvar _ -> acc
    | Pattern.Tnode (name, _, subs) ->
      let acc = if List.mem name acc then acc else name :: acc in
      List.fold_left go acc subs
  in
  go [] tmpl

let dedup_sorted xs = List.sort_uniq String.compare xs

let make ?(properties = []) ?(operators = []) ?(algorithms = []) ?(trules = [])
    ?(irules = []) ?(helpers = Helper_env.builtins) name =
  let inferred_ops =
    List.concat_map (fun (r : Trule.t) -> pattern_ops r.lhs @ tmpl_ops r.rhs) trules
    @ List.map Irule.operator irules
  in
  let inferred_algs = List.map Irule.algorithm irules in
  {
    name;
    properties;
    operators = dedup_sorted (operators @ inferred_ops);
    algorithms = dedup_sorted (algorithms @ inferred_algs);
    trules;
    irules;
    helpers;
  }

let irules_for t op =
  List.filter (fun r -> String.equal (Irule.operator r) op) t.irules

let trule_count t = List.length t.trules
let irule_count t = List.length t.irules

let find_trule t name =
  List.find_opt (fun (r : Trule.t) -> String.equal r.name name) t.trules

let find_irule t name =
  List.find_opt (fun (r : Irule.t) -> String.equal r.name name) t.irules

let combine ~name a b =
  let properties =
    a.properties
    @ List.filter
        (fun (p : Property.t) ->
          match Property.find a.properties p.Property.name with
          | None -> true
          | Some existing ->
            if existing.Property.ty <> p.Property.ty then
              invalid_arg
                (Printf.sprintf
                   "Ruleset.combine: property %s declared with different types"
                   p.Property.name);
            false)
        b.properties
  in
  let dedup_rules get_name eq xs ys =
    xs
    @ List.filter
        (fun y ->
          match List.find_opt (fun x -> String.equal (get_name x) (get_name y)) xs with
          | None -> true
          | Some x ->
            if not (eq x y) then
              invalid_arg
                (Printf.sprintf
                   "Ruleset.combine: rule %s exists in both sets with \
                    different definitions"
                   (get_name y));
            false)
        ys
  in
  let trules =
    dedup_rules
      (fun (r : Trule.t) -> r.Trule.name)
      (fun x y -> x = y)
      a.trules b.trules
  in
  let irules =
    dedup_rules
      (fun (r : Irule.t) -> r.Irule.name)
      (fun x y -> x = y)
      a.irules b.irules
  in
  make ~properties
    ~operators:(dedup_sorted (a.operators @ b.operators))
    ~algorithms:(dedup_sorted (a.algorithms @ b.algorithms))
    ~trules ~irules
    ~helpers:(Helper_env.merge a.helpers b.helpers)
    name

let validate t =
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun m -> errs := m :: !errs) fmt in
  let check_result = function Ok () -> () | Error m -> errs := m :: !errs in
  List.iter (fun r -> check_result (Trule.validate r)) t.trules;
  List.iter (fun r -> check_result (Irule.validate r)) t.irules;
  let check_ops rule_name ops =
    List.iter
      (fun op ->
        if not (List.mem op t.operators || List.mem op t.algorithms) then
          err "rule %s: undeclared operation %s" rule_name op)
      ops
  in
  List.iter
    (fun (r : Trule.t) ->
      check_ops r.name (pattern_ops r.lhs @ tmpl_ops r.rhs))
    t.trules;
  List.iter
    (fun (r : Irule.t) -> check_ops r.name (pattern_ops r.lhs @ tmpl_ops r.rhs))
    t.irules;
  let check_helpers rule_name stmts test =
    let used = Action.helpers_used stmts @ Action.helpers_used [ Action.Assign_desc ("_", test) ] in
    List.iter
      (fun h ->
        if not (Helper_env.mem t.helpers h) then
          err "rule %s: helper function %s is not registered" rule_name h)
      used
  in
  List.iter
    (fun (r : Trule.t) -> check_helpers r.name (r.pre_test @ r.post_test) r.test)
    t.trules;
  List.iter
    (fun (r : Irule.t) -> check_helpers r.name (r.pre_opt @ r.post_opt) r.test)
    t.irules;
  (* every operator that appears in some rule LHS/RHS should be implementable *)
  let implemented = List.map Irule.operator t.irules in
  List.iter
    (fun op ->
      if (not (List.mem op implemented)) && not (List.mem op t.algorithms) then
        err "operator %s has no I-rule (it can never be implemented)" op)
    t.operators;
  match List.rev !errs with [] -> Ok () | es -> Error es

let spec_size t =
  let stmt_count =
    List.fold_left
      (fun n (r : Trule.t) ->
        n + List.length r.pre_test + List.length r.post_test + 1)
      0 t.trules
    + List.fold_left
        (fun n (r : Irule.t) ->
          n + List.length r.pre_opt + List.length r.post_opt + 1)
        0 t.irules
  in
  trule_count t + irule_count t + stmt_count + List.length t.properties

let pp ppf t =
  Format.fprintf ppf "@[<v 2>ruleset %s (%d T-rules, %d I-rules)" t.name
    (trule_count t) (irule_count t);
  Format.fprintf ppf "@,operators: %s" (String.concat ", " t.operators);
  Format.fprintf ppf "@,algorithms: %s" (String.concat ", " t.algorithms);
  List.iter (fun r -> Format.fprintf ppf "@,%a" Trule.pp r) t.trules;
  List.iter (fun r -> Format.fprintf ppf "@,%a" Irule.pp r) t.irules;
  Format.fprintf ppf "@]"
