type t = {
  name : string;
  lhs : Pattern.t;
  rhs : Pattern.tmpl;
  test : Action.expr;
  pre_opt : Action.stmt list;
  post_opt : Action.stmt list;
}

let null_algorithm = "Null"

let make ?(test = Action.tt) ?(pre_opt = []) ?(post_opt = []) ~name ~lhs ~rhs
    () =
  { name; lhs; rhs; test; pre_opt; post_opt }

let operator t =
  match t.lhs with
  | Pattern.Pop (name, _, _) -> name
  | Pattern.Pvar _ -> invalid_arg "Irule.operator: LHS is a stream variable"

let algorithm t =
  match t.rhs with
  | Pattern.Tnode (name, _, _) -> name
  | Pattern.Tvar _ -> invalid_arg "Irule.algorithm: RHS is a stream variable"

let is_null_rule t = String.equal (algorithm t) null_algorithm

let operator_descriptor t =
  match t.lhs with
  | Pattern.Pop (_, dvar, _) -> dvar
  | Pattern.Pvar _ -> invalid_arg "Irule.operator_descriptor"

let algorithm_descriptor t =
  match t.rhs with
  | Pattern.Tnode (_, dvar, _) -> dvar
  | Pattern.Tvar _ -> invalid_arg "Irule.algorithm_descriptor"

let redescriptored_inputs t =
  match t.rhs with
  | Pattern.Tnode (_, _, subs) ->
    List.filter_map
      (function Pattern.Tvar (i, Some d) -> Some (i, d) | _ -> None)
      subs
  | Pattern.Tvar _ -> []

let input_descriptors t = Pattern.desc_vars t.lhs

let output_descriptors t =
  let inputs = input_descriptors t in
  List.filter (fun d -> not (List.mem d inputs)) (Pattern.tmpl_desc_vars t.rhs)

let rec distinct = function
  | [] -> true
  | x :: rest -> (not (List.mem x rest)) && distinct rest

let validate t =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  match (t.lhs, t.rhs) with
  | Pattern.Pvar _, _ -> err "rule %s: I-rule LHS must be an operator" t.name
  | _, Pattern.Tvar _ -> err "rule %s: I-rule RHS must be an algorithm" t.name
  | Pattern.Pop (_, _, subpats), Pattern.Tnode (_, _, subs) ->
    let lhs_vars =
      List.map
        (function
          | Pattern.Pvar i -> i
          | Pattern.Pop _ -> -1)
        subpats
    in
    if List.mem (-1) lhs_vars then
      err "rule %s: I-rule LHS inputs must be stream variables" t.name
    else if not (distinct lhs_vars) then
      err "rule %s: duplicate stream variables in LHS" t.name
    else
      let rhs_vars =
        List.map
          (function
            | Pattern.Tvar (i, _) -> i
            | Pattern.Tnode _ -> -1)
          subs
      in
      if rhs_vars <> lhs_vars then
        err
          "rule %s: I-rule RHS must apply the algorithm to the same stream \
           variables, in order"
          t.name
      else
        let inputs = input_descriptors t in
        let stmts = t.pre_opt @ t.post_opt in
        match
          List.find_opt
            (fun s -> List.mem (Action.assigned_descriptor s) inputs)
            stmts
        with
        | Some s ->
          err "rule %s: action assigns to LHS descriptor %s" t.name
            (Action.assigned_descriptor s)
        | None -> Ok ()

let pp ppf t =
  Format.fprintf ppf "@[<v 2>I-rule %s:@,%a ==> %a" t.name Pattern.pp t.lhs
    Pattern.pp_tmpl t.rhs;
  Format.fprintf ppf "@,test: %a" Action.pp_expr t.test;
  if t.pre_opt <> [] then
    Format.fprintf ppf "@,pre-opt: %a" Action.pp_stmts t.pre_opt;
  if t.post_opt <> [] then
    Format.fprintf ppf "@,post-opt: %a" Action.pp_stmts t.post_opt;
  Format.fprintf ppf "@]"
