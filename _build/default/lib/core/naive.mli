(** Naive exhaustive optimizer — the correctness oracle.

    This module implements Prairie's optimization semantics by brute force:
    the closure of all T-rule applications at every position gives the full
    logical search space, and recursive enumeration of I-rule choices gives
    every access plan.  It is exponential and only usable on small queries,
    which is exactly its purpose: the Volcano search engine (and the
    P2V-translated rule sets) are tested against it — both must find plans
    of equal cost. *)

type result = {
  plan : Expr.t;  (** an access plan: all interior nodes are algorithms *)
  cost : float;
}

val logical_forms : ?max_forms:int -> Ruleset.t -> Expr.t -> Expr.t list
(** All operator trees reachable from the input by T-rule applications at
    any node, including the input itself; deduplicated structurally.
    Enumeration stops silently at [max_forms] (default 20000). *)

val plans :
  ?max_forms:int -> Ruleset.t -> required:Descriptor.t -> Expr.t -> Expr.t list
(** Every access plan for the query: for each logical form, every way of
    choosing I-rules top-down.  [required] contains the properties requested
    of the query result (e.g. a [tuple_order]); it is merged into the root
    descriptor. *)

val best_plan :
  ?max_forms:int -> Ruleset.t -> required:Descriptor.t -> Expr.t -> result option
(** The cheapest of {!plans}, [None] when no plan exists. *)

val plan_count :
  ?max_forms:int -> Ruleset.t -> required:Descriptor.t -> Expr.t -> int
