(** Helper-function environments.

    Rule actions may call helper functions on the right-hand side of
    assignments and in tests (paper §2.3): [is_associative], [cardinality],
    [union], ...  Helpers are registered by name; algebra definitions
    typically close them over a catalog so that statistics are available. *)

type fn = Prairie_value.Value.t list -> Prairie_value.Value.t

exception Unknown_helper of string
exception Helper_error of string * string
(** [Helper_error (name, message)]: a helper was called with bad arguments. *)

type t

val empty : t

val add : string -> fn -> t -> t

val add_all : (string * fn) list -> t -> t

val find : t -> string -> fn option

val mem : t -> string -> bool

val names : t -> string list

val call : t -> string -> Prairie_value.Value.t list -> Prairie_value.Value.t
(** @raise Unknown_helper on unregistered names. *)

val merge : t -> t -> t
(** Right-biased union of two helper environments (used when combining
    rule sets). *)

val builtins : t
(** Arithmetic helpers every rule set gets for free: [log] (natural log,
    of-0 clamps to 0), [log2], [ceil], [floor], [min], [max], [abs],
    [order_satisfies] (required, actual), [is_dont_care], [coalesce]
    (first non-null argument) and [is_null]. *)

val error : string -> string -> 'a
(** [error name msg] raises {!Helper_error} — for use inside helper
    implementations. *)
