lib/core/eval.ml: Action Descriptor Expr Helper_env Irule List Pattern Prairie_value Printf Trule
