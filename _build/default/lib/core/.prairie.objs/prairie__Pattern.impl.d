lib/core/pattern.ml: Descriptor Expr Format Int List Printf String
