lib/core/helper_env.mli: Prairie_value
