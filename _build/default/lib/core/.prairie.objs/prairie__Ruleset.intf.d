lib/core/ruleset.mli: Format Helper_env Irule Property Trule
