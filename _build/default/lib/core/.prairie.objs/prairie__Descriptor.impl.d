lib/core/descriptor.ml: Format Hashtbl List Map Prairie_value String
