lib/core/naive.mli: Descriptor Expr Ruleset
