lib/core/compiled.ml: Action Descriptor Eval Helper_env List Pattern Prairie_value Printf
