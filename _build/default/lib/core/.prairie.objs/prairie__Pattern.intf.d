lib/core/pattern.mli: Descriptor Expr Format
