lib/core/expr.mli: Descriptor Format
