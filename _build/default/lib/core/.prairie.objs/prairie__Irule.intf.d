lib/core/irule.mli: Action Format Pattern
