lib/core/action.mli: Format Prairie_value
