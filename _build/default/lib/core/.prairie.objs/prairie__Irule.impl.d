lib/core/irule.ml: Action Format List Pattern Printf String
