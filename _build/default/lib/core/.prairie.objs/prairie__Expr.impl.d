lib/core/expr.ml: Descriptor Format Hashtbl List Stdlib String
