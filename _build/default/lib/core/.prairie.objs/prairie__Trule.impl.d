lib/core/trule.ml: Action Format List Pattern Printf
