lib/core/property.mli: Format Prairie_value
