lib/core/ruleset.ml: Action Format Helper_env Irule List Pattern Printf Property String Trule
