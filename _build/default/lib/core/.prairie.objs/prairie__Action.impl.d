lib/core/action.ml: Format List Prairie_value String
