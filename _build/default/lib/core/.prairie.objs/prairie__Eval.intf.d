lib/core/eval.mli: Action Expr Helper_env Irule Pattern Prairie_value Trule
