lib/core/naive.ml: Descriptor Eval Expr Hashtbl Irule List Queue Ruleset Set
