lib/core/property.ml: Format List Option Prairie_value Printf String
