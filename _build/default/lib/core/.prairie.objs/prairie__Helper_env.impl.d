lib/core/helper_env.ml: Float List Map Prairie_value Printf String
