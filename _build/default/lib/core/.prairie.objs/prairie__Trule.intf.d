lib/core/trule.mli: Action Format Pattern
