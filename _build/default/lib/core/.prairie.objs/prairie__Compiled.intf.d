lib/core/compiled.mli: Action Helper_env Pattern Prairie_value
