lib/core/descriptor.mli: Format Prairie_value
