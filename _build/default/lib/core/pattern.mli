(** Rule patterns and templates.

    The left-hand side of a rule is a {e pattern}: a composition of named
    operators over numbered stream variables, each operator node carrying a
    descriptor variable (paper Eq. 1, e.g.
    [JOIN(JOIN(?1, ?2):D4, ?3):D5]).  Matching a pattern against an operator
    tree binds stream variables to subtrees and descriptor variables to
    descriptors; by convention the descriptor of stream variable [?i] is
    bound to the name [Di].

    The right-hand side is a {e template}: the same shape, except that stream
    variables may be {e re-descriptored} ([S1:D4]) to push new required
    properties down to an input (paper §2.4, I-rule pre-opt sections). *)

type t =
  | Pvar of int  (** stream variable [?i]; implicitly binds descriptor [Di] *)
  | Pop of string * string * t list
      (** operator name, descriptor variable, sub-patterns *)

type tmpl =
  | Tvar of int * string option
      (** stream variable, optionally re-descriptored: [S1:D4] *)
  | Tnode of string * string * tmpl list
      (** operation name (operator in T-rules, algorithm in I-rules),
          descriptor variable, sub-templates *)

module Binding : sig
  (** The result of a successful match. *)

  type binding = {
    streams : (int * Expr.t) list;  (** stream variable -> subtree *)
    descs : (string * Descriptor.t) list;  (** descriptor variable -> descriptor *)
  }

  type nonrec t = binding

  val empty : t
  val stream : t -> int -> Expr.t
  val stream_opt : t -> int -> Expr.t option
  val desc : t -> string -> Descriptor.t
  (** Unbound descriptor variables read as {!Descriptor.empty} — output
      descriptors start empty and are filled by action statements. *)

  val desc_opt : t -> string -> Descriptor.t option
  val bind_desc : t -> string -> Descriptor.t -> t
  val bind_stream : t -> int -> Expr.t -> t
  val desc_names : t -> string list
end

val stream_desc_name : int -> string
(** [stream_desc_name i] is ["Di"], the implicit descriptor variable of
    stream variable [?i]. *)

val matches : t -> Expr.t -> Binding.t option
(** Match a pattern against an expression rooted at an {e operator} node.
    Stream variables match any subtree.  Operator patterns match only
    operator nodes with the same name and arity. *)

val vars : t -> int list
(** Stream variables of a pattern, sorted. *)

val tmpl_vars : tmpl -> int list

val desc_vars : t -> string list
(** Descriptor variables bound by matching the pattern, including the
    implicit [Di] of its stream variables; sorted. *)

val tmpl_desc_vars : tmpl -> string list
(** Descriptor variables appearing in a template (node descriptors and
    re-descriptored streams); sorted. *)

val tmpl_nodes : tmpl -> (string * string) list
(** [(operation, descriptor-variable)] for every node of the template, in
    pre-order. *)

val root_operator : t -> string option
(** The root operator name, [None] for a bare stream variable. *)

val instantiate :
  kind:Expr.node_kind -> tmpl -> Binding.t -> Expr.t
(** Build the output expression of a rule: template nodes become [kind]
    nodes carrying their (action-computed) descriptors from the binding;
    stream variables are replaced by their bound subtrees, with their root
    descriptor swapped for the re-descriptored one when present.

    @raise Invalid_argument on stream variables unbound in the binding. *)

val rename_ops : (string -> string) -> t -> t
(** Rename operator names (used by P2V rule merging). *)

val rename_ops_tmpl : (string -> string) -> tmpl -> tmpl

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val pp_tmpl : Format.formatter -> tmpl -> unit
