(** Selection and join predicates.

    Predicates are boolean expressions over comparisons of attribute values
    and constants.  They serve three purposes in the optimizer:
    - as descriptor properties ([selection_predicate], [join_predicate]);
    - as input to selectivity estimation (see {!Prairie_catalog});
    - as executable filters in the execution engine. *)

type comparison = Eq | Ne | Lt | Le | Gt | Ge

type term =
  | T_attr of Attribute.t
  | T_int of int
  | T_float of float
  | T_string of string

type t =
  | True
  | False
  | Cmp of comparison * term * term
  | And of t * t
  | Or of t * t
  | Not of t

val conj : t -> t -> t
(** Conjunction with [True]/[False] simplification. *)

val disj : t -> t -> t
(** Disjunction with [True]/[False] simplification. *)

val conjuncts : t -> t list
(** [conjuncts p] flattens nested [And]s; [conjuncts True = []]. *)

val of_conjuncts : t list -> t
(** Inverse of {!conjuncts}: the conjunction of a list of predicates. *)

val attributes : t -> Attribute.Set.t
(** All attributes referenced by the predicate. *)

val owners : t -> string list
(** Sorted list of distinct attribute owners referenced by the predicate. *)

val references_only : owners:string list -> t -> bool
(** Does the predicate mention only attributes of the given owners? *)

val split : owners:string list -> t -> t * t
(** [split ~owners p] partitions the conjuncts of [p] into those that
    reference only [owners] and the rest.  Useful for predicate pushdown. *)

val is_equijoin : t -> bool
(** Is the predicate a conjunction of attribute-equals-attribute comparisons
    spanning at least two owners? *)

val equality_pairs : t -> (Attribute.t * Attribute.t) list
(** Attribute pairs related by top-level equality conjuncts. *)

val equality_constants : t -> (Attribute.t * term) list
(** [(a, c)] for each top-level conjunct [a = c] with [c] a constant.  This
    is what index-scan applicability tests inspect. *)

val comparison_to_string : comparison -> string

val equal : t -> t -> bool

val compare : t -> t -> int

val hash : t -> int

val eval : lookup:(Attribute.t -> term option) -> t -> bool
(** [eval ~lookup p] evaluates [p] given a binding of attributes to constant
    terms.  Unknown attributes and type-incompatible comparisons evaluate to
    [false] (three-valued logic collapsed to boolean, as in a filter). *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string
