(** Universal values for descriptor properties.

    Prairie descriptors are user-defined lists of ⟨property, value⟩
    annotations (paper §2.1); this module is the value domain.  All
    properties — additional operator parameters, statistics, physical
    properties and the cost — carry values of this single type, which is what
    lets Prairie treat every property uniformly and defer the
    logical/physical/argument classification to the P2V pre-processor. *)

type ty =
  | T_bool
  | T_int
  | T_float
  | T_cost  (** float-valued, but declared COST so P2V classifies it *)
  | T_string
  | T_order
  | T_pred
  | T_attrs
  | T_list

type t =
  | Null  (** absent / uninitialized *)
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Order of Order.t
  | Pred of Predicate.t
  | Attrs of Attribute.t list
  | List of t list

exception Type_error of string
(** Raised by coercions and arithmetic on incompatible values; the message
    names the operation and the offending value. *)

val ty_to_string : ty -> string

val ty_of_string : string -> ty option
(** Parses the type names of the rule-specification language
    ([BOOL], [INT], [FLOAT], [COST], [STRING], [ORDER], [PREDICATE],
    [ATTRIBUTES], [LIST]); case-insensitive. *)

val has_ty : t -> ty -> bool
(** [has_ty v ty] checks representation compatibility ([Null] matches every
    type; [Float] matches both [T_float] and [T_cost]). *)

val equal : t -> t -> bool

val compare : t -> t -> int

val hash : t -> int

(** {1 Coercions} *)

val to_bool : t -> bool
val to_int : t -> int

val to_float : t -> float
(** Accepts [Int] and [Float]. *)

val to_string_value : t -> string

val to_order : t -> Order.t
(** [Null] reads as [Order.Any] (no constraint). *)

val to_pred : t -> Predicate.t
(** [Null] reads as [True] (no predicate). *)

(** [to_attrs v]: [Null] reads as the empty list. *)
val to_attrs : t -> Attribute.t list
val to_list : t -> t list

(** {1 Arithmetic and comparison}

    These implement the expression operators of rule actions (e.g. the cost
    formula of the Nested_loops I-rule, paper Fig. 6).  Numeric operations
    promote [Int] to [Float] when mixed. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t

val cmp : Predicate.comparison -> t -> t -> bool
(** Polymorphic comparison across values of the same kind; [Eq]/[Ne] work on
    any values, ordered comparisons require numbers or strings. *)

val truthy : t -> bool
(** Rule-test truthiness: [Bool b] is [b]; everything else raises
    {!Type_error} (rule tests must be boolean, paper §2.3). *)

val pp : Format.formatter -> t -> unit
val to_repr : t -> string
