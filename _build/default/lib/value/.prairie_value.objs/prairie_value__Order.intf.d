lib/value/order.mli: Attribute Format
