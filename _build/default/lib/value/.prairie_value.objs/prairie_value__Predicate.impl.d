lib/value/predicate.ml: Attribute Float Format Hashtbl Int List Stdlib String
