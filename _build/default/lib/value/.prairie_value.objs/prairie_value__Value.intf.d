lib/value/value.mli: Attribute Format Order Predicate
