lib/value/value.ml: Attribute Bool Float Format Hashtbl Int List Order Predicate Printf Stdlib String
