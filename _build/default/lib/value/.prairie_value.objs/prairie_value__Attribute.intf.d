lib/value/attribute.mli: Format Map Set
