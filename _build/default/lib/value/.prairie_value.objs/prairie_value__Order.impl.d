lib/value/order.ml: Attribute Format List String
