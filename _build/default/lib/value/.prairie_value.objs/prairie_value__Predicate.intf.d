lib/value/predicate.mli: Attribute Format
