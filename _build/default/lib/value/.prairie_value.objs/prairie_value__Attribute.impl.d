lib/value/attribute.ml: Format Hashtbl Map Set String
