(** Qualified attributes of stored files and streams.

    An attribute is identified by the stored file (relation or class) that
    owns it and its column name, e.g. [C1.a1].  Attributes of intermediate
    streams keep the owner of the stored file they originate from, which is
    how join predicates and index applicability are traced through operator
    trees. *)

type t

val make : owner:string -> name:string -> t
(** [make ~owner ~name] builds the attribute [owner.name].  [owner] may be
    the empty string for an unqualified attribute. *)

val owner : t -> string

val name : t -> string

val equal : t -> t -> bool

val compare : t -> t -> int

val hash : t -> int

val to_string : t -> string
(** [to_string a] prints [owner.name], or just [name] when the owner is
    empty. *)

val of_string : string -> t
(** [of_string s] parses ["owner.name"] or a bare ["name"].  Inverse of
    {!to_string}. *)

val pp : Format.formatter -> t -> unit

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
