(** Tuple orders of streams.

    The [tuple_order] descriptor property of the paper: a stream is either in
    no particular order ([Any], the paper's DONT_CARE) or sorted
    lexicographically on a list of attributes. *)

type t =
  | Any  (** no order required / unknown order (the paper's DONT_CARE) *)
  | Sorted of Attribute.t list
      (** sorted ascending, lexicographically, on the given attributes *)

val any : t

val sorted : Attribute.t list -> t
(** [sorted attrs] is [Sorted attrs]; [sorted []] collapses to [Any]. *)

val sorted_on : Attribute.t -> t
(** [sorted_on a] is [sorted [a]]. *)

val is_any : t -> bool

val equal : t -> t -> bool

val compare : t -> t -> int

val satisfies : required:t -> actual:t -> bool
(** [satisfies ~required ~actual] holds when a stream with physical order
    [actual] can be consumed where [required] is requested: either
    [required] is [Any] or the required attribute list is a prefix of the
    actual one. *)

val attributes : t -> Attribute.t list
(** Sort attributes, empty for [Any]. *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string
