type t =
  | Any
  | Sorted of Attribute.t list

let any = Any
let sorted = function [] -> Any | attrs -> Sorted attrs
let sorted_on a = Sorted [ a ]
let is_any = function Any -> true | Sorted _ -> false

let equal a b =
  match (a, b) with
  | Any, Any -> true
  | Sorted xs, Sorted ys -> List.equal Attribute.equal xs ys
  | Any, Sorted _ | Sorted _, Any -> false

let compare a b =
  match (a, b) with
  | Any, Any -> 0
  | Any, Sorted _ -> -1
  | Sorted _, Any -> 1
  | Sorted xs, Sorted ys -> List.compare Attribute.compare xs ys

let rec is_prefix xs ys =
  match (xs, ys) with
  | [], _ -> true
  | _ :: _, [] -> false
  | x :: xs', y :: ys' -> Attribute.equal x y && is_prefix xs' ys'

let satisfies ~required ~actual =
  match (required, actual) with
  | Any, _ -> true
  | Sorted _, Any -> false
  | Sorted r, Sorted a -> is_prefix r a

let attributes = function Any -> [] | Sorted attrs -> attrs

let pp ppf = function
  | Any -> Format.pp_print_string ppf "DONT_CARE"
  | Sorted attrs ->
    Format.fprintf ppf "sorted(%s)"
      (String.concat ", " (List.map Attribute.to_string attrs))

let to_string t = Format.asprintf "%a" pp t
