type comparison = Eq | Ne | Lt | Le | Gt | Ge

type term =
  | T_attr of Attribute.t
  | T_int of int
  | T_float of float
  | T_string of string

type t =
  | True
  | False
  | Cmp of comparison * term * term
  | And of t * t
  | Or of t * t
  | Not of t

let conj a b =
  match (a, b) with
  | True, p | p, True -> p
  | False, _ | _, False -> False
  | _ -> And (a, b)

let disj a b =
  match (a, b) with
  | False, p | p, False -> p
  | True, _ | _, True -> True
  | _ -> Or (a, b)

let rec conjuncts = function
  | True -> []
  | And (a, b) -> conjuncts a @ conjuncts b
  | p -> [ p ]

let of_conjuncts ps = List.fold_left conj True ps

let term_attributes = function
  | T_attr a -> Attribute.Set.singleton a
  | T_int _ | T_float _ | T_string _ -> Attribute.Set.empty

let rec attributes = function
  | True | False -> Attribute.Set.empty
  | Cmp (_, t1, t2) ->
    Attribute.Set.union (term_attributes t1) (term_attributes t2)
  | And (a, b) | Or (a, b) ->
    Attribute.Set.union (attributes a) (attributes b)
  | Not a -> attributes a

let owners p =
  Attribute.Set.fold
    (fun a acc ->
      let o = Attribute.owner a in
      if List.mem o acc then acc else o :: acc)
    (attributes p) []
  |> List.sort String.compare

let references_only ~owners:os p =
  Attribute.Set.for_all (fun a -> List.mem (Attribute.owner a) os) (attributes p)

let split ~owners:os p =
  let mine, rest =
    List.partition (references_only ~owners:os) (conjuncts p)
  in
  (of_conjuncts mine, of_conjuncts rest)

let equality_pairs p =
  List.filter_map
    (function
      | Cmp (Eq, T_attr a, T_attr b) -> Some (a, b)
      | _ -> None)
    (conjuncts p)

let equality_constants p =
  List.filter_map
    (function
      | Cmp (Eq, T_attr a, ((T_int _ | T_float _ | T_string _) as c)) ->
        Some (a, c)
      | Cmp (Eq, ((T_int _ | T_float _ | T_string _) as c), T_attr a) ->
        Some (a, c)
      | _ -> None)
    (conjuncts p)

let is_equijoin p =
  let cs = conjuncts p in
  cs <> []
  && List.for_all
       (function Cmp (Eq, T_attr _, T_attr _) -> true | _ -> false)
       cs
  && List.length (owners p) >= 2

let comparison_to_string = function
  | Eq -> "="
  | Ne -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let equal a b = a = b
let compare a b = Stdlib.compare a b
let hash p = Hashtbl.hash p

let compare_terms c t1 t2 =
  let test (cmp : int) =
    match c with
    | Eq -> cmp = 0
    | Ne -> cmp <> 0
    | Lt -> cmp < 0
    | Le -> cmp <= 0
    | Gt -> cmp > 0
    | Ge -> cmp >= 0
  in
  match (t1, t2) with
  | T_int a, T_int b -> test (Int.compare a b)
  | T_float a, T_float b -> test (Float.compare a b)
  | T_int a, T_float b | T_float b, T_int a ->
    test (Float.compare (float_of_int a) b)
  | T_string a, T_string b -> test (String.compare a b)
  | _ -> false

let eval ~lookup p =
  let resolve = function
    | T_attr a -> lookup a
    | (T_int _ | T_float _ | T_string _) as c -> Some c
  in
  let rec go = function
    | True -> true
    | False -> false
    | Cmp (c, t1, t2) -> (
      match (resolve t1, resolve t2) with
      | Some v1, Some v2 -> compare_terms c v1 v2
      | None, _ | _, None -> false)
    | And (a, b) -> go a && go b
    | Or (a, b) -> go a || go b
    | Not a -> not (go a)
  in
  go p

let pp_term ppf = function
  | T_attr a -> Attribute.pp ppf a
  | T_int i -> Format.pp_print_int ppf i
  | T_float f -> Format.fprintf ppf "%g" f
  | T_string s -> Format.fprintf ppf "%S" s

let rec pp ppf = function
  | True -> Format.pp_print_string ppf "true"
  | False -> Format.pp_print_string ppf "false"
  | Cmp (c, t1, t2) ->
    Format.fprintf ppf "%a %s %a" pp_term t1 (comparison_to_string c) pp_term
      t2
  | And (a, b) -> Format.fprintf ppf "(%a and %a)" pp a pp b
  | Or (a, b) -> Format.fprintf ppf "(%a or %a)" pp a pp b
  | Not a -> Format.fprintf ppf "not %a" pp a

let to_string p = Format.asprintf "%a" pp p
