(** Search statistics.

    Counters the experiments report: equivalence classes (Figure 14),
    distinct rules matched (Table 5) and raw search effort. *)

type t = {
  mutable groups_created : int;
  mutable groups_merged : int;
  mutable lexprs_created : int;
  mutable lexpr_duplicates : int;  (** dedup hits during exploration *)
  mutable trans_applications : int;  (** successful trans-rule firings *)
  mutable impl_firings : int;  (** impl-rule plans costed *)
  mutable enforcer_firings : int;
  mutable memo_hits : int;
  mutable optimize_calls : int;
  mutable pruned : int;  (** sub-searches abandoned by the cost limit *)
  mutable trans_matched : string list;  (** distinct trans rules whose LHS matched *)
  mutable impl_matched : string list;  (** distinct impl rules whose operator matched *)
  mutable trans_applied : string list;
      (** distinct trans rules whose condition passed at least once *)
  mutable impl_applied : string list;
      (** distinct impl rules whose condition passed at least once *)
}

val create : unit -> t

val reset : t -> unit

val record_trans_match : t -> string -> unit

val record_impl_match : t -> string -> unit

val trans_matched_count : t -> int
(** Number of distinct trans_rules matched — the Table 5 metric. *)

val impl_matched_count : t -> int

val record_trans_applied : t -> string -> unit
val record_impl_applied : t -> string -> unit
val trans_applied_count : t -> int
val impl_applied_count : t -> int

val pp : Format.formatter -> t -> unit
