(** Physical expressions (access plans) produced by the Volcano search.

    A plan node carries the full algorithm descriptor: the algorithm
    argument, the achieved physical properties and the cost — the three
    Volcano components a Prairie descriptor is split into (paper Table 3). *)

type t =
  | Leaf of string * Prairie.Descriptor.t
      (** a stored file and its catalog annotations *)
  | Alg of string * Prairie.Descriptor.t * t list
      (** algorithm, full descriptor (argument + physical properties +
          cost), input plans *)

val descriptor : t -> Prairie.Descriptor.t

val cost : t -> float
(** Cost annotation of the root. *)

val algorithms : t -> string list
(** Distinct algorithm names used, sorted. *)

val size : t -> int

val to_expr : t -> Prairie.Expr.t
(** Convert to a Prairie access plan (for execution or comparison with the
    naive oracle). *)

val of_expr : Prairie.Expr.t -> t
(** Inverse of {!to_expr}.
    @raise Invalid_argument if the expression contains operator nodes. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** One-line rendering, e.g. [Merge_sort(Nested_loops(File_scan(R1), ...))]. *)

val pp_verbose : Format.formatter -> t -> unit
(** Tree rendering with per-node cost. *)
