module Descriptor = Prairie.Descriptor
module Expr = Prairie.Expr

type t =
  | Leaf of string * Descriptor.t
  | Alg of string * Descriptor.t * t list

let descriptor = function
  | Leaf (_, d) -> d
  | Alg (_, d, _) -> d

let cost t = Descriptor.cost (descriptor t)

let algorithms t =
  let rec go acc = function
    | Leaf _ -> acc
    | Alg (name, _, inputs) ->
      let acc = if List.mem name acc then acc else name :: acc in
      List.fold_left go acc inputs
  in
  List.sort String.compare (go [] t)

let rec size = function
  | Leaf _ -> 1
  | Alg (_, _, inputs) -> List.fold_left (fun n p -> n + size p) 1 inputs

let rec to_expr = function
  | Leaf (name, d) -> Expr.Stored (name, d)
  | Alg (name, d, inputs) ->
    Expr.Node (Expr.Algorithm, name, d, List.map to_expr inputs)

let rec of_expr = function
  | Expr.Stored (name, d) -> Leaf (name, d)
  | Expr.Node (Expr.Algorithm, name, d, inputs) ->
    Alg (name, d, List.map of_expr inputs)
  | Expr.Node (Expr.Operator, name, _, _) ->
    invalid_arg ("Plan.of_expr: operator node " ^ name ^ " in access plan")

let rec equal a b =
  match (a, b) with
  | Leaf (n1, d1), Leaf (n2, d2) ->
    String.equal n1 n2 && Descriptor.equal d1 d2
  | Alg (n1, d1, xs1), Alg (n2, d2, xs2) ->
    String.equal n1 n2 && Descriptor.equal d1 d2 && List.equal equal xs1 xs2
  | Leaf _, Alg _ | Alg _, Leaf _ -> false

let rec pp ppf = function
  | Leaf (name, _) -> Format.pp_print_string ppf name
  | Alg (name, _, inputs) ->
    Format.fprintf ppf "%s(" name;
    List.iteri
      (fun i p ->
        if i > 0 then Format.fprintf ppf ", ";
        pp ppf p)
      inputs;
    Format.fprintf ppf ")"

let rec pp_verbose ppf = function
  | Leaf (name, d) ->
    Format.fprintf ppf "%s  (card %s)" name
      (Prairie_value.Value.to_repr (Descriptor.get d "num_records"))
  | Alg (name, d, inputs) ->
    Format.fprintf ppf "@[<v 2>%s  (cost %.2f)" name (Descriptor.cost d);
    List.iter (fun p -> Format.fprintf ppf "@,%a" pp_verbose p) inputs;
    Format.fprintf ppf "@]"
