lib/volcano/plan.mli: Format Prairie
