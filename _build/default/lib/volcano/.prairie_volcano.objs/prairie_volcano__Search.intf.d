lib/volcano/search.mli: Logs Memo Plan Prairie Rule Stats
