lib/volcano/bottom_up.mli: Memo Plan Prairie Rule Search
