lib/volcano/memo.ml: Array Format Hashtbl Int List Plan Prairie Stats String
