lib/volcano/stats.mli: Format
