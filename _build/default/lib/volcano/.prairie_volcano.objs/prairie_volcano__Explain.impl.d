lib/volcano/explain.ml: Buffer Format List Plan Prairie Prairie_value Printf String
