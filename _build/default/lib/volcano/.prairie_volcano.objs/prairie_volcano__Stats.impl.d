lib/volcano/stats.ml: Format List
