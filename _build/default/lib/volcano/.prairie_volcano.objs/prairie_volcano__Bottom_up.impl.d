lib/volcano/bottom_up.ml: Array Hashtbl List Memo Option Plan Prairie Queue Rule Search
