lib/volcano/memo.mli: Format Plan Prairie Stats
