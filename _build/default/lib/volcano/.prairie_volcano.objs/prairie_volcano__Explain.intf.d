lib/volcano/explain.mli: Format Plan
