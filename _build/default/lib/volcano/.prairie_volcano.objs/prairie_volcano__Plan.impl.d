lib/volcano/plan.ml: Format List Prairie Prairie_value String
