lib/volcano/rule.ml: List Prairie Prairie_value String
