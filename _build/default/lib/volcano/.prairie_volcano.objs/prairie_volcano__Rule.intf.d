lib/volcano/rule.mli: Prairie
