lib/volcano/search.ml: Array Float List Logs Memo Plan Prairie Rule Stats String
