type t = {
  mutable groups_created : int;
  mutable groups_merged : int;
  mutable lexprs_created : int;
  mutable lexpr_duplicates : int;
  mutable trans_applications : int;
  mutable impl_firings : int;
  mutable enforcer_firings : int;
  mutable memo_hits : int;
  mutable optimize_calls : int;
  mutable pruned : int;
  mutable trans_matched : string list;
  mutable impl_matched : string list;
  mutable trans_applied : string list;
  mutable impl_applied : string list;
}

let create () =
  {
    groups_created = 0;
    groups_merged = 0;
    lexprs_created = 0;
    lexpr_duplicates = 0;
    trans_applications = 0;
    impl_firings = 0;
    enforcer_firings = 0;
    memo_hits = 0;
    optimize_calls = 0;
    pruned = 0;
    trans_matched = [];
    impl_matched = [];
    trans_applied = [];
    impl_applied = [];
  }

let reset t =
  t.groups_created <- 0;
  t.groups_merged <- 0;
  t.lexprs_created <- 0;
  t.lexpr_duplicates <- 0;
  t.trans_applications <- 0;
  t.impl_firings <- 0;
  t.enforcer_firings <- 0;
  t.memo_hits <- 0;
  t.optimize_calls <- 0;
  t.pruned <- 0;
  t.trans_matched <- [];
  t.impl_matched <- [];
  t.trans_applied <- [];
  t.impl_applied <- []

let record_trans_match t name =
  if not (List.mem name t.trans_matched) then
    t.trans_matched <- name :: t.trans_matched

let record_impl_match t name =
  if not (List.mem name t.impl_matched) then
    t.impl_matched <- name :: t.impl_matched

let record_trans_applied t name =
  if not (List.mem name t.trans_applied) then
    t.trans_applied <- name :: t.trans_applied

let record_impl_applied t name =
  if not (List.mem name t.impl_applied) then
    t.impl_applied <- name :: t.impl_applied

let trans_matched_count t = List.length t.trans_matched
let impl_matched_count t = List.length t.impl_matched
let trans_applied_count t = List.length t.trans_applied
let impl_applied_count t = List.length t.impl_applied

let pp ppf t =
  Format.fprintf ppf
    "@[<v>groups: %d (merged %d)@,logical expressions: %d (dups %d)@,\
     trans applications: %d (distinct matched %d)@,\
     impl firings: %d (distinct matched %d)@,\
     enforcer firings: %d@,memo hits: %d@,optimize calls: %d@,pruned: %d@]"
    t.groups_created t.groups_merged t.lexprs_created t.lexpr_duplicates
    t.trans_applications (trans_matched_count t) t.impl_firings
    (impl_matched_count t) t.enforcer_firings t.memo_hits t.optimize_calls
    t.pruned
