module D = Prairie.Descriptor
module V = Prairie_value.Value
module O = Prairie_value.Order
module P = Prairie_value.Predicate

let param_of desc =
  let pred name =
    match D.find desc name with
    | Some (V.Pred p) when not (P.equal p P.True) -> Some (P.to_string p)
    | _ -> None
  in
  let attrs name =
    match D.find desc name with
    | Some (V.Attrs (_ :: _ as l)) ->
      Some (String.concat ", " (List.map Prairie_value.Attribute.to_string l))
    | _ -> None
  in
  match pred "selection_predicate" with
  | Some s -> Some s
  | None -> (
    match pred "join_predicate" with
    | Some s -> Some s
    | None -> (
      match attrs "mat_attribute" with
      | Some s -> Some ("deref " ^ s)
      | None -> (
        match attrs "unnest_attribute" with
        | Some s -> Some ("unnest " ^ s)
        | None -> attrs "projected_attributes")))

let annotations ~leaf desc =
  let buf = Buffer.create 32 in
  if not leaf then Buffer.add_string buf (Printf.sprintf "cost=%.2f  " (D.cost desc));
  (match D.find desc "num_records" with
  | Some (V.Int n) -> Buffer.add_string buf (Printf.sprintf "rows=%d" n)
  | _ -> ());
  (match D.get_order desc "tuple_order" with
  | O.Any -> ()
  | o -> Buffer.add_string buf (Printf.sprintf "  order=%s" (O.to_string o)));
  Buffer.contents buf

let pp ppf plan =
  let rec go prefix child_prefix (p : Plan.t) =
    let label, desc, leaf, inputs =
      match p with
      | Plan.Leaf (name, d) -> (name, d, true, [])
      | Plan.Alg (alg, d, inputs) ->
        let label =
          match param_of d with
          | Some param -> Printf.sprintf "%s [%s]" alg param
          | None -> alg
        in
        (label, d, false, inputs)
    in
    Format.fprintf ppf "%s%-46s %s@." prefix label (annotations ~leaf desc);
    let n = List.length inputs in
    List.iteri
      (fun i sub ->
        let last = i = n - 1 in
        let branch = if last then "└─ " else "├─ " in
        let cont = if last then "   " else "│  " in
        go (child_prefix ^ branch) (child_prefix ^ cont) sub)
      inputs
  in
  go "" "" plan

let to_string plan = Format.asprintf "%a" pp plan

let summary plan =
  let desc = Plan.descriptor plan in
  let rows =
    match D.find desc "num_records" with
    | Some (V.Int n) -> string_of_int n
    | _ -> "?"
  in
  Printf.sprintf "cost %.2f, ~%s rows, algorithms: %s" (Plan.cost plan) rows
    (String.concat ", " (Plan.algorithms plan))
