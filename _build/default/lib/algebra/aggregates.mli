(** An aggregation add-on rule set: group-and-count.

    A small rule-set {e fragment} meant to be combined with the relational
    optimizer via {!Prairie.Ruleset.combine} — §6's rule-set combination in
    earnest.  One operator, AGG (group by a list of attributes, count each
    group), and two implementations showing the classic enforcer-driven
    trade-off:

    - [Hash_agg]: any input order, pays hash build/probe per tuple,
      delivers no order;
    - [Sort_agg]: {e requires} its input sorted on the group attributes
      (the SORT enforcer or an order-delivering scan provides it), counts
      group boundaries on the fly, and delivers the group order for free.

    The count column appears in the output as the synthetic attribute
    [agg.count]. *)

val count_attr : Prairie_value.Attribute.t
(** The synthetic output attribute [agg.count]. *)

val fragment : Prairie_catalog.Catalog.t -> Prairie.Ruleset.t
(** The AGG rules alone (no T-rules; two I-rules). *)

val extended_relational : Prairie_catalog.Catalog.t -> Prairie.Ruleset.t
(** [Ruleset.combine] of {!Relational.ruleset} and {!fragment}. *)

val agg :
  Prairie_catalog.Catalog.t ->
  by:Prairie_value.Attribute.t list ->
  Prairie.Expr.t ->
  Prairie.Expr.t
(** The initialized AGG operator tree: estimated output cardinality is the
    (saturating) product of the group attributes' distinct counts. *)
