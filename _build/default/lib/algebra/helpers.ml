module Value = Prairie_value.Value
module Attribute = Prairie_value.Attribute
module Predicate = Prairie_value.Predicate
module Order = Prairie_value.Order
module Catalog = Prairie_catalog.Catalog
module Stats = Prairie_catalog.Stats
module Helper_env = Prairie.Helper_env

module F = struct
  let union_attrs a b =
    List.sort_uniq Attribute.compare (a @ b)

  let canonical_and p q =
    Predicate.of_conjuncts
      (List.sort_uniq Predicate.compare
         (Predicate.conjuncts p @ Predicate.conjuncts q))

  let side_join_order pred side_attrs pick =
    let attrs =
      List.filter_map
        (fun (a, b) ->
          let a_in = List.exists (Attribute.equal a) side_attrs in
          let b_in = List.exists (Attribute.equal b) side_attrs in
          pick a b a_in b_in)
        (Predicate.equality_pairs pred)
    in
    Order.sorted (List.sort_uniq Attribute.compare attrs)

  let lhs_join_order pred left_attrs =
    side_join_order pred left_attrs (fun a b a_in b_in ->
        if a_in then Some a else if b_in then Some b else None)

  let rhs_join_order pred right_attrs =
    side_join_order pred right_attrs (fun a b a_in b_in ->
        if a_in then Some a else if b_in then Some b else None)

  let is_ref_join catalog pred =
    List.exists
      (fun (a, b) ->
        let follows x y =
          match Catalog.ref_target catalog x with
          | Some target -> String.equal target (Attribute.owner y)
          | None -> false
        in
        follows a b || follows b a)
      (Predicate.equality_pairs pred)

  let matched_index pred indexed =
    List.find_map
      (fun (a, _) ->
        if List.exists (Attribute.equal a) indexed then Some a else None)
      (Predicate.equality_constants pred)

  let indexed_selection pred indexed = Option.is_some (matched_index pred indexed)

  let index_order pred indexed =
    match matched_index pred indexed with
    | Some a -> Order.sorted_on a
    | None -> Order.any

  let indexed_selectivity catalog pred indexed =
    match matched_index pred indexed with
    | Some a -> 1.0 /. float_of_int (Catalog.distinct_of catalog a)
    | None -> 1.0

  let mat_added_attrs catalog mat_attr =
    match mat_attr with
    | [ a ] -> (
      match Catalog.ref_target catalog a with
      | Some target -> (
        match Catalog.find catalog target with
        | Some file ->
          List.sort Attribute.compare (Prairie_catalog.Stored_file.attributes file)
        | None -> [])
      | None -> [])
    | _ -> []

  let mat_added_size catalog mat_attr =
    match mat_attr with
    | [ a ] -> (
      match Catalog.ref_target catalog a with
      | Some target -> (
        match Catalog.find catalog target with
        | Some file -> file.Prairie_catalog.Stored_file.tuple_size
        | None -> 0)
      | None -> 0)
    | _ -> 0

  let unnest_fanout catalog attr =
    match attr with
    | [ a ] -> max 1 (Catalog.distinct_of catalog a)
    | _ -> 1
end

let err = Helper_env.error

let get_attrs name = function
  | Value.Attrs a -> a
  | Value.Null -> []
  | v -> err name ("expected attributes, got " ^ Value.to_repr v)

let get_pred name = function
  | Value.Pred p -> p
  | Value.Null -> Predicate.True
  | v -> err name ("expected predicate, got " ^ Value.to_repr v)

let get_int name = function
  | Value.Int i -> i
  | v -> err name ("expected int, got " ^ Value.to_repr v)

let get_float name = function
  | Value.Float f -> f
  | Value.Int i -> float_of_int i
  | v -> err name ("expected float, got " ^ Value.to_repr v)

let get_order name = function
  | Value.Order o -> o
  | Value.Null -> Order.Any
  | v -> err name ("expected order, got " ^ Value.to_repr v)

let a1 name f = function
  | [ x ] -> f x
  | args -> err name (Printf.sprintf "expected 1 argument, got %d" (List.length args))

let a2 name f = function
  | [ x; y ] -> f x y
  | args -> err name (Printf.sprintf "expected 2 arguments, got %d" (List.length args))

let a3 name f = function
  | [ x; y; z ] -> f x y z
  | args -> err name (Printf.sprintf "expected 3 arguments, got %d" (List.length args))

let a4 name f = function
  | [ x; y; z; w ] -> f x y z w
  | args -> err name (Printf.sprintf "expected 4 arguments, got %d" (List.length args))

let env catalog =
  let open Value in
  Helper_env.builtins
  |> Helper_env.add_all
       [
         (* --- predicates and attributes --- *)
         ( "union_attrs",
           a2 "union_attrs" (fun a b ->
               Attrs
                 (F.union_attrs
                    (get_attrs "union_attrs" a)
                    (get_attrs "union_attrs" b))) );
         ( "pred_refs_only",
           a2 "pred_refs_only" (fun p attrs ->
               let p = get_pred "pred_refs_only" p in
               let attrs = get_attrs "pred_refs_only" attrs in
               Bool
                 (Prairie_value.Attribute.Set.subset
                    (Predicate.attributes p)
                    (Prairie_value.Attribute.Set.of_list attrs))) );
         ( "pred_refs_any",
           a2 "pred_refs_any" (fun p attrs ->
               let p = get_pred "pred_refs_any" p in
               let attrs = get_attrs "pred_refs_any" attrs in
               Bool
                 (not
                    (Prairie_value.Attribute.Set.is_empty
                       (Prairie_value.Attribute.Set.inter
                          (Predicate.attributes p)
                          (Prairie_value.Attribute.Set.of_list attrs))))) );
         ( "attrs_subset",
           a2 "attrs_subset" (fun a b ->
               Bool
                 (Prairie_value.Attribute.Set.subset
                    (Prairie_value.Attribute.Set.of_list (get_attrs "attrs_subset" a))
                    (Prairie_value.Attribute.Set.of_list (get_attrs "attrs_subset" b)))) );
         ( "pred_is_true",
           a1 "pred_is_true" (fun p ->
               Bool (Predicate.equal (get_pred "pred_is_true" p) Predicate.True)) );
         ( "has_conjuncts",
           a1 "has_conjuncts" (fun p ->
               Bool
                 (List.length (Predicate.conjuncts (get_pred "has_conjuncts" p))
                 >= 2)) );
         ( "first_conjunct",
           a1 "first_conjunct" (fun p ->
               match Predicate.conjuncts (get_pred "first_conjunct" p) with
               | [] -> Pred Predicate.True
               | c :: _ -> Pred c) );
         ( "rest_conjuncts",
           a1 "rest_conjuncts" (fun p ->
               match Predicate.conjuncts (get_pred "rest_conjuncts" p) with
               | [] -> Pred Predicate.True
               | _ :: rest -> Pred (Predicate.of_conjuncts rest)) );
         ( "and_pred",
           a2 "and_pred" (fun p q ->
               Pred
                 (F.canonical_and (get_pred "and_pred" p)
                    (get_pred "and_pred" q))) );
         ( "is_equijoin",
           a1 "is_equijoin" (fun p ->
               Bool (Predicate.is_equijoin (get_pred "is_equijoin" p))) );
         ( "is_ref_join",
           a1 "is_ref_join" (fun p ->
               Bool (F.is_ref_join catalog (get_pred "is_ref_join" p))) );
         (* --- statistics --- *)
         ( "join_cardinality",
           a3 "join_cardinality" (fun nl nr p ->
               Int
                 (Stats.join_cardinality catalog
                    ~left:(get_int "join_cardinality" nl)
                    ~right:(get_int "join_cardinality" nr)
                    (get_pred "join_cardinality" p))) );
         ( "select_cardinality",
           a2 "select_cardinality" (fun n p ->
               Int
                 (Stats.select_cardinality catalog
                    ~input:(get_int "select_cardinality" n)
                    (get_pred "select_cardinality" p))) );
         ( "unnest_cardinality",
           a2 "unnest_cardinality" (fun n attr ->
               Int
                 (get_int "unnest_cardinality" n
                 * F.unnest_fanout catalog (get_attrs "unnest_cardinality" attr))) );
         ( "mat_added_attrs",
           a1 "mat_added_attrs" (fun attr ->
               Attrs (F.mat_added_attrs catalog (get_attrs "mat_added_attrs" attr))) );
         ( "mat_added_size",
           a1 "mat_added_size" (fun attr ->
               Int (F.mat_added_size catalog (get_attrs "mat_added_size" attr))) );
         (* --- orders and indexes --- *)
         ( "attrs_order",
           a1 "attrs_order" (fun attrs ->
               Order (Order.sorted (get_attrs "attrs_order" attrs))) );
         ( "group_cardinality",
           a2 "group_cardinality" (fun n attrs ->
               let n = get_int "group_cardinality" n in
               let groups =
                 List.fold_left
                   (fun acc a ->
                     (* saturating product of distinct counts *)
                     min n (acc * Catalog.distinct_of catalog a))
                   1
                   (get_attrs "group_cardinality" attrs)
               in
               Int (min n (max 1 groups))) );
         ( "cost_hash_agg",
           a2 "cost_hash_agg" (fun c n ->
               Float
                 (Cost_model.hash_agg
                    ~input_cost:(get_float "cost_hash_agg" c)
                    ~input_card:(get_int "cost_hash_agg" n))) );
         ( "cost_sort_agg",
           a2 "cost_sort_agg" (fun c n ->
               Float
                 (Cost_model.sort_agg
                    ~input_cost:(get_float "cost_sort_agg" c)
                    ~input_card:(get_int "cost_sort_agg" n))) );
         ( "lhs_join_order",
           a2 "lhs_join_order" (fun p attrs ->
               Order
                 (F.lhs_join_order
                    (get_pred "lhs_join_order" p)
                    (get_attrs "lhs_join_order" attrs))) );
         ( "rhs_join_order",
           a2 "rhs_join_order" (fun p attrs ->
               Order
                 (F.rhs_join_order
                    (get_pred "rhs_join_order" p)
                    (get_attrs "rhs_join_order" attrs))) );
         ( "indexed_selection",
           a2 "indexed_selection" (fun p idx ->
               Bool
                 (F.indexed_selection
                    (get_pred "indexed_selection" p)
                    (get_attrs "indexed_selection" idx))) );
         ( "index_order",
           a2 "index_order" (fun p idx ->
               Order
                 (F.index_order (get_pred "index_order" p)
                    (get_attrs "index_order" idx))) );
         (* --- costs --- *)
         ( "cost_file_scan",
           a2 "cost_file_scan" (fun card tsize ->
               Float
                 (Cost_model.file_scan
                    ~card:(get_int "cost_file_scan" card)
                    ~tuple_size:(get_int "cost_file_scan" tsize))) );
         ( "cost_index_scan",
           a4 "cost_index_scan" (fun card tsize pred idx ->
               Float
                 (Cost_model.index_scan
                    ~card:(get_int "cost_index_scan" card)
                    ~tuple_size:(get_int "cost_index_scan" tsize)
                    ~selectivity:
                      (F.indexed_selectivity catalog
                         (get_pred "cost_index_scan" pred)
                         (get_attrs "cost_index_scan" idx)))) );
         ( "cost_merge_join",
           a4 "cost_merge_join" (fun c1 c2 n1 n2 ->
               Float
                 (Cost_model.merge_join
                    ~left_cost:(get_float "cost_merge_join" c1)
                    ~right_cost:(get_float "cost_merge_join" c2)
                    ~left_card:(get_int "cost_merge_join" n1)
                    ~right_card:(get_int "cost_merge_join" n2))) );
         ( "cost_hash_join",
           a4 "cost_hash_join" (fun c1 c2 n1 n2 ->
               Float
                 (Cost_model.hash_join
                    ~left_cost:(get_float "cost_hash_join" c1)
                    ~right_cost:(get_float "cost_hash_join" c2)
                    ~left_card:(get_int "cost_hash_join" n1)
                    ~right_card:(get_int "cost_hash_join" n2))) );
         ( "cost_pointer_join",
           a3 "cost_pointer_join" (fun c1 c2 n1 ->
               Float
                 (Cost_model.pointer_join
                    ~outer_cost:(get_float "cost_pointer_join" c1)
                    ~inner_cost:(get_float "cost_pointer_join" c2)
                    ~outer_card:(get_int "cost_pointer_join" n1))) );
         ( "cost_sort",
           a2 "cost_sort" (fun c n ->
               Float
                 (Cost_model.merge_sort
                    ~input_cost:(get_float "cost_sort" c)
                    ~card:(get_int "cost_sort" n))) );
         ( "cost_filter",
           a2 "cost_filter" (fun c n ->
               Float
                 (Cost_model.filter
                    ~input_cost:(get_float "cost_filter" c)
                    ~input_card:(get_int "cost_filter" n))) );
         ( "cost_project",
           a2 "cost_project" (fun c n ->
               Float
                 (Cost_model.project
                    ~input_cost:(get_float "cost_project" c)
                    ~input_card:(get_int "cost_project" n))) );
         ( "cost_mat_ordered",
           a2 "cost_mat_ordered" (fun c n ->
               Float
                 (Cost_model.mat_ordered
                    ~input_cost:(get_float "cost_mat_ordered" c)
                    ~card:(get_int "cost_mat_ordered" n))) );
         ( "cost_mat_unordered",
           a2 "cost_mat_unordered" (fun c n ->
               Float
                 (Cost_model.mat_unordered
                    ~input_cost:(get_float "cost_mat_unordered" c)
                    ~card:(get_int "cost_mat_unordered" n))) );
         ( "cost_unnest",
           a2 "cost_unnest" (fun c n ->
               Float
                 (Cost_model.unnest
                    ~input_cost:(get_float "cost_unnest" c)
                    ~output_card:(get_int "cost_unnest" n))) );
         ( "order_union",
           a2 "order_union" (fun a b ->
               match (get_order "order_union" a, get_order "order_union" b) with
               | Order.Any, o | o, Order.Any -> Order o
               | o, _ -> Order o) );
       ]
