(** The centralized relational optimizer of paper §2 and [5].

    Operators: RET, JOIN, JOPR (join over sorted inputs, introduced by the
    sort-introduction T-rule of footnote 5) and the enforcer-operator SORT.
    Algorithms: File_scan, Index_scan, Nested_loops, Merge_join, Merge_sort
    and Null.  The rule set contains the paper's worked examples verbatim:
    join associativity (Fig. 3), Merge_sort (Fig. 5), Nested_loops (Fig. 6)
    and the Null sort rule (Fig. 7b). *)

val ruleset : Prairie_catalog.Catalog.t -> Prairie.Ruleset.t
(** 5 T-rules (commutativity, associativity, sort-introduction for merge
    join, and two enforcer-introduction rules) and 6 I-rules.  P2V compacts
    this to 2 trans_rules, 4 impl_rules and 1 enforcer. *)

(** {1 Query constructors}

    Re-exports of {!Init}, specialized to the relational vocabulary. *)

val relation :
  ?indexes:string list ->
  ?tuple_size:int ->
  name:string ->
  cardinality:int ->
  (string * int) list ->
  Prairie_catalog.Stored_file.t
(** [relation ~name ~cardinality columns] builds a base relation;
    [columns] are (attribute name, distinct count) pairs, [indexes] names
    the indexed attributes. *)

val ret :
  ?pred:Prairie_value.Predicate.t ->
  Prairie_catalog.Catalog.t ->
  string ->
  Prairie.Expr.t

val join :
  Prairie_catalog.Catalog.t ->
  pred:Prairie_value.Predicate.t ->
  Prairie.Expr.t ->
  Prairie.Expr.t ->
  Prairie.Expr.t

val sort :
  Prairie_catalog.Catalog.t ->
  order:Prairie_value.Order.t ->
  Prairie.Expr.t ->
  Prairie.Expr.t
