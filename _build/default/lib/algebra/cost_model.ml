let page_size = 4096
let cpu_per_tuple = 0.005
let deref_cost = 0.6

let pages ~card ~tuple_size =
  Float.max 1.0 (float_of_int (card * tuple_size) /. float_of_int page_size)

let file_scan ~card ~tuple_size = pages ~card ~tuple_size

let index_scan ~card ~tuple_size ~selectivity =
  let matching = Float.max 1.0 (float_of_int card *. selectivity) in
  let fetch = Float.min (pages ~card ~tuple_size) matching in
  2.0 +. fetch

let nested_loops ~outer_cost ~outer_card ~inner_cost =
  outer_cost +. (float_of_int outer_card *. inner_cost)

let merge_join ~left_cost ~right_cost ~left_card ~right_card =
  left_cost +. right_cost
  +. (cpu_per_tuple *. float_of_int (left_card + right_card))

let hash_join ~left_cost ~right_cost ~left_card ~right_card =
  left_cost +. right_cost
  +. (3.0 *. cpu_per_tuple *. float_of_int (left_card + right_card))

let pointer_deref_cost = 0.02

(* The inner access cost is included: the target class's pages must be
   resident for the dereferences to hit.  Keeping every algorithm's cost at
   least the sum of its input costs is what makes the search engine's
   branch-and-bound limits safe. *)
let pointer_join ~outer_cost ~inner_cost ~outer_card =
  outer_cost +. inner_cost +. (pointer_deref_cost *. float_of_int outer_card)

let log2 x = if x <= 1.0 then 0.0 else Float.log x /. Float.log 2.0

let merge_sort ~input_cost ~card =
  let n = float_of_int card in
  input_cost +. (cpu_per_tuple *. n *. log2 n)

let filter ~input_cost ~input_card =
  input_cost +. (cpu_per_tuple *. float_of_int input_card)

let project ~input_cost ~input_card =
  input_cost +. (cpu_per_tuple *. float_of_int input_card)

let mat_ordered ~input_cost ~card =
  input_cost +. (deref_cost *. float_of_int card)

let mat_unordered ~input_cost ~card =
  input_cost +. (0.25 *. deref_cost *. float_of_int card)

(* hash aggregation pays build+probe per tuple; sort-based aggregation
   only counts group boundaries on an already-sorted stream *)
let hash_agg ~input_cost ~input_card =
  input_cost +. (3.0 *. cpu_per_tuple *. float_of_int input_card)

let sort_agg ~input_cost ~input_card =
  input_cost +. (cpu_per_tuple *. float_of_int input_card)

(* network transfer at twice the per-page disk cost *)
let network_page_factor = 2.0

let ship ~input_cost ~card ~tuple_size =
  input_cost +. (network_page_factor *. pages ~card ~tuple_size)

let unnest ~input_cost ~output_card =
  input_cost +. (cpu_per_tuple *. float_of_int output_card)
