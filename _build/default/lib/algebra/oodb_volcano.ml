module Value = Prairie_value.Value
module Attribute = Prairie_value.Attribute
module Predicate = Prairie_value.Predicate
module Order = Prairie_value.Order
module Catalog = Prairie_catalog.Catalog
module Stats = Prairie_catalog.Stats
module Descriptor = Prairie.Descriptor
module Expr = Prairie.Expr
module Rule = Prairie_volcano.Rule
module N = Names
module F = Helpers.F

open Build (* pattern shorthand: p, v, t, tv *)

(* ------------------------------------------------------------------ *)
(* Descriptor accessors (local shorthand)                              *)
(* ------------------------------------------------------------------ *)

let dget = Rule.denv_get
let dset = Rule.denv_set
let attrs d = Descriptor.get_attrs d N.p_attributes
let card d = Descriptor.get_int d N.p_num_records
let size d = Descriptor.get_int d N.p_tuple_size
let order d = Descriptor.get_order d N.p_tuple_order
let jpred d = Descriptor.get_pred d N.p_join_predicate
let spred d = Descriptor.get_pred d N.p_selection_predicate
let mat_attr d = Descriptor.get_attrs d N.p_mat_attribute
let unnest_attr d = Descriptor.get_attrs d N.p_unnest_attribute
let indexes d = Descriptor.get_attrs d N.p_indexes
let dcost d = Descriptor.cost d
let set_attrs d v = Descriptor.set d N.p_attributes (Value.Attrs v)
let set_card d v = Descriptor.set d N.p_num_records (Value.Int v)
let set_size d v = Descriptor.set d N.p_tuple_size (Value.Int v)
let set_order d v = Descriptor.set d N.p_tuple_order (Value.Order v)
let set_jpred d v = Descriptor.set d N.p_join_predicate (Value.Pred v)
let set_spred d v = Descriptor.set d N.p_selection_predicate (Value.Pred v)
let set_mat d v = Descriptor.set d N.p_mat_attribute (Value.Attrs v)
let set_unnest d v = Descriptor.set d N.p_unnest_attribute (Value.Attrs v)
let set_cost d v = Descriptor.set_cost d v

let refs_only pred al =
  Attribute.Set.subset (Predicate.attributes pred) (Attribute.Set.of_list al)

let refs_any pred al =
  not
    (Attribute.Set.is_empty
       (Attribute.Set.inter (Predicate.attributes pred)
          (Attribute.Set.of_list al)))

let subset a b =
  Attribute.Set.subset (Attribute.Set.of_list a) (Attribute.Set.of_list b)

(* ------------------------------------------------------------------ *)
(* trans_rules                                                          *)
(* ------------------------------------------------------------------ *)

let trans catalog : Rule.trans_rule list =
  let join_card l r pred = Stats.join_cardinality catalog ~left:l ~right:r pred in
  let sel_card n pred = Stats.select_cardinality catalog ~input:n pred in
  [
    {
      Rule.tr_name = "join_commute";
      tr_lhs = p N.join "D3" [ v 1; v 2 ];
      tr_rhs = t N.join "D4" [ tv 2; tv 1 ];
      tr_cond = (fun env -> Some env);
      tr_appl = (fun env -> dset env "D4" (dget env "D3"));
    };
    {
      Rule.tr_name = "join_assoc_left";
      tr_lhs = p N.join "D5" [ p N.join "D4" [ v 1; v 2 ]; v 3 ];
      tr_rhs = t N.join "D7" [ tv 1; t N.join "D6" [ tv 2; tv 3 ] ];
      tr_cond =
        (fun env ->
          let a =
            F.union_attrs (attrs (dget env "D2")) (attrs (dget env "D3"))
          in
          let env = dset env "D6" (set_attrs Descriptor.empty a) in
          let pred = jpred (dget env "D5") in
          if (not (Predicate.equal pred Predicate.True)) && refs_only pred a
          then Some env
          else None);
      tr_appl =
        (fun env ->
          let d5 = dget env "D5" and d4 = dget env "D4" in
          let d2 = dget env "D2" and d3 = dget env "D3" in
          let d6 = dget env "D6" in
          let d6 = set_jpred d6 (jpred d5) in
          let d6 = set_card d6 (join_card (card d2) (card d3) (jpred d5)) in
          let d6 = set_size d6 (size d2 + size d3) in
          let env = dset env "D6" d6 in
          dset env "D7" (set_jpred d5 (jpred d4)));
    };
    {
      Rule.tr_name = "join_assoc_right";
      tr_lhs = p N.join "D5" [ v 1; p N.join "D4" [ v 2; v 3 ] ];
      tr_rhs = t N.join "D7" [ t N.join "D6" [ tv 1; tv 2 ]; tv 3 ];
      tr_cond =
        (fun env ->
          let a =
            F.union_attrs (attrs (dget env "D1")) (attrs (dget env "D2"))
          in
          let env = dset env "D6" (set_attrs Descriptor.empty a) in
          let pred = jpred (dget env "D5") in
          if (not (Predicate.equal pred Predicate.True)) && refs_only pred a
          then Some env
          else None);
      tr_appl =
        (fun env ->
          let d5 = dget env "D5" and d4 = dget env "D4" in
          let d1 = dget env "D1" and d2 = dget env "D2" in
          let d6 = dget env "D6" in
          let d6 = set_jpred d6 (jpred d5) in
          let d6 = set_card d6 (join_card (card d1) (card d2) (jpred d5)) in
          let d6 = set_size d6 (size d1 + size d2) in
          let env = dset env "D6" d6 in
          dset env "D7" (set_jpred d5 (jpred d4)));
    };
    {
      Rule.tr_name = "select_split";
      tr_lhs = p N.select "D2" [ v 1 ];
      tr_rhs = t N.select "D4" [ t N.select "D3" [ tv 1 ] ];
      tr_cond =
        (fun env ->
          if List.length (Predicate.conjuncts (spred (dget env "D2"))) >= 2
          then Some env
          else None);
      tr_appl =
        (fun env ->
          let d2 = dget env "D2" and d1 = dget env "D1" in
          let conjs = Predicate.conjuncts (spred d2) in
          let first, rest =
            match conjs with
            | [] -> (Predicate.True, Predicate.True)
            | x :: xs -> (x, Predicate.of_conjuncts xs)
          in
          let d3 = set_spred Descriptor.empty rest in
          let d3 = set_attrs d3 (attrs d1) in
          let d3 = set_card d3 (sel_card (card d1) rest) in
          let d3 = set_size d3 (size d1) in
          let env = dset env "D3" d3 in
          dset env "D4" (set_spred d2 first));
    };
    {
      Rule.tr_name = "select_merge";
      tr_lhs = p N.select "D4" [ p N.select "D3" [ v 1 ] ];
      tr_rhs = t N.select "D5" [ tv 1 ];
      tr_cond = (fun env -> Some env);
      tr_appl =
        (fun env ->
          let d4 = dget env "D4" and d3 = dget env "D3" in
          dset env "D5" (set_spred d4 (F.canonical_and (spred d4) (spred d3))));
    };
    {
      Rule.tr_name = "select_commute";
      tr_lhs = p N.select "D4" [ p N.select "D3" [ v 1 ] ];
      tr_rhs = t N.select "D6" [ t N.select "D5" [ tv 1 ] ];
      tr_cond = (fun env -> Some env);
      tr_appl =
        (fun env ->
          let d4 = dget env "D4" and d3 = dget env "D3" in
          let d1 = dget env "D1" in
          let d5 = set_spred d3 (spred d4) in
          let d5 = set_card d5 (sel_card (card d1) (spred d4)) in
          let env = dset env "D5" d5 in
          dset env "D6" (set_spred d4 (spred d3)));
    };
    {
      Rule.tr_name = "select_push_join_left";
      tr_lhs = p N.select "D4" [ p N.join "D3" [ v 1; v 2 ] ];
      tr_rhs = t N.join "D6" [ t N.select "D5" [ tv 1 ]; tv 2 ];
      tr_cond =
        (fun env ->
          let pred = spred (dget env "D4") in
          if
            (not (Predicate.equal pred Predicate.True))
            && refs_only pred (attrs (dget env "D1"))
          then Some env
          else None);
      tr_appl =
        (fun env ->
          let d4 = dget env "D4" and d3 = dget env "D3" in
          let d1 = dget env "D1" in
          let d5 = set_spred Descriptor.empty (spred d4) in
          let d5 = set_attrs d5 (attrs d1) in
          let d5 = set_card d5 (sel_card (card d1) (spred d4)) in
          let d5 = set_size d5 (size d1) in
          let env = dset env "D5" d5 in
          dset env "D6" (set_card d3 (card d4)));
    };
    {
      Rule.tr_name = "select_push_join_right";
      tr_lhs = p N.select "D4" [ p N.join "D3" [ v 1; v 2 ] ];
      tr_rhs = t N.join "D6" [ tv 1; t N.select "D5" [ tv 2 ] ];
      tr_cond =
        (fun env ->
          let pred = spred (dget env "D4") in
          if
            (not (Predicate.equal pred Predicate.True))
            && refs_only pred (attrs (dget env "D2"))
          then Some env
          else None);
      tr_appl =
        (fun env ->
          let d4 = dget env "D4" and d3 = dget env "D3" in
          let d2 = dget env "D2" in
          let d5 = set_spred Descriptor.empty (spred d4) in
          let d5 = set_attrs d5 (attrs d2) in
          let d5 = set_card d5 (sel_card (card d2) (spred d4)) in
          let d5 = set_size d5 (size d2) in
          let env = dset env "D5" d5 in
          dset env "D6" (set_card d3 (card d4)));
    };
    {
      Rule.tr_name = "select_push_mat";
      tr_lhs = p N.select "D4" [ p N.mat "D3" [ v 1 ] ];
      tr_rhs = t N.mat "D6" [ t N.select "D5" [ tv 1 ] ];
      tr_cond =
        (fun env ->
          let pred = spred (dget env "D4") in
          if
            (not (Predicate.equal pred Predicate.True))
            && refs_only pred (attrs (dget env "D1"))
          then Some env
          else None);
      tr_appl =
        (fun env ->
          let d4 = dget env "D4" and d3 = dget env "D3" in
          let d1 = dget env "D1" in
          let d5 = set_spred Descriptor.empty (spred d4) in
          let d5 = set_attrs d5 (attrs d1) in
          let d5 = set_card d5 (sel_card (card d1) (spred d4)) in
          let d5 = set_size d5 (size d1) in
          let env = dset env "D5" d5 in
          dset env "D6" (set_card d3 (card d4)));
    };
    {
      Rule.tr_name = "select_push_unnest";
      tr_lhs = p N.select "D4" [ p N.unnest "D3" [ v 1 ] ];
      tr_rhs = t N.unnest "D6" [ t N.select "D5" [ tv 1 ] ];
      tr_cond =
        (fun env ->
          let pred = spred (dget env "D4") in
          if
            (not (Predicate.equal pred Predicate.True))
            && not (refs_any pred (unnest_attr (dget env "D3")))
          then Some env
          else None);
      tr_appl =
        (fun env ->
          let d4 = dget env "D4" and d3 = dget env "D3" in
          let d1 = dget env "D1" in
          let d5 = set_spred Descriptor.empty (spred d4) in
          let d5 = set_attrs d5 (attrs d1) in
          let d5 = set_card d5 (sel_card (card d1) (spred d4)) in
          let d5 = set_size d5 (size d1) in
          let env = dset env "D5" d5 in
          dset env "D6" (set_card d3 (card d4)));
    };
    {
      Rule.tr_name = "select_into_ret";
      tr_lhs = p N.select "D4" [ p N.ret "D3" [ v 1 ] ];
      tr_rhs = t N.ret "D5" [ tv 1 ];
      tr_cond = (fun env -> Some env);
      tr_appl =
        (fun env ->
          let d4 = dget env "D4" and d3 = dget env "D3" in
          let d5 = set_spred d3 (F.canonical_and (spred d3) (spred d4)) in
          dset env "D5" (set_card d5 (card d4)));
    };
    (let pull name lhs =
       {
         Rule.tr_name = name;
         tr_lhs = lhs;
         tr_rhs = t N.mat "D6" [ t N.join "D5" [ tv 1; tv 2 ] ];
         tr_cond =
           (fun env ->
             let a =
               F.union_attrs (attrs (dget env "D1")) (attrs (dget env "D2"))
             in
             let env = dset env "D5" (set_attrs Descriptor.empty a) in
             if refs_only (jpred (dget env "D4")) a then Some env else None);
         tr_appl =
           (fun env ->
             let d4 = dget env "D4" and d3 = dget env "D3" in
             let d1 = dget env "D1" and d2 = dget env "D2" in
             let d5 = dget env "D5" in
             let d5 = set_jpred d5 (jpred d4) in
             let d5 = set_card d5 (join_card (card d1) (card d2) (jpred d4)) in
             let d5 = set_size d5 (size d1 + size d2) in
             let env = dset env "D5" d5 in
             let d6 = set_jpred d4 Predicate.True in
             dset env "D6" (set_mat d6 (mat_attr d3)));
       }
     in
     pull "mat_pull_join_left" (p N.join "D4" [ p N.mat "D3" [ v 1 ]; v 2 ]));
    (let pull name lhs =
       {
         Rule.tr_name = name;
         tr_lhs = lhs;
         tr_rhs = t N.mat "D6" [ t N.join "D5" [ tv 1; tv 2 ] ];
         tr_cond =
           (fun env ->
             let a =
               F.union_attrs (attrs (dget env "D1")) (attrs (dget env "D2"))
             in
             let env = dset env "D5" (set_attrs Descriptor.empty a) in
             if refs_only (jpred (dget env "D4")) a then Some env else None);
         tr_appl =
           (fun env ->
             let d4 = dget env "D4" and d3 = dget env "D3" in
             let d1 = dget env "D1" and d2 = dget env "D2" in
             let d5 = dget env "D5" in
             let d5 = set_jpred d5 (jpred d4) in
             let d5 = set_card d5 (join_card (card d1) (card d2) (jpred d4)) in
             let d5 = set_size d5 (size d1 + size d2) in
             let env = dset env "D5" d5 in
             let d6 = set_jpred d4 Predicate.True in
             dset env "D6" (set_mat d6 (mat_attr d3)));
       }
     in
     pull "mat_pull_join_right" (p N.join "D4" [ v 1; p N.mat "D3" [ v 2 ] ]));
    {
      Rule.tr_name = "mat_push_join_left";
      tr_lhs = p N.mat "D4" [ p N.join "D3" [ v 1; v 2 ] ];
      tr_rhs = t N.join "D6" [ t N.mat "D5" [ tv 1 ]; tv 2 ];
      tr_cond =
        (fun env ->
          if subset (mat_attr (dget env "D4")) (attrs (dget env "D1")) then
            Some env
          else None);
      tr_appl =
        (fun env ->
          let d4 = dget env "D4" and d3 = dget env "D3" in
          let d1 = dget env "D1" and d2 = dget env "D2" in
          let ma = mat_attr d4 in
          let d5 = set_mat Descriptor.empty ma in
          let d5 = set_attrs d5 (F.union_attrs (attrs d1) (F.mat_added_attrs catalog ma)) in
          let d5 = set_card d5 (card d1) in
          let d5 = set_size d5 (size d1 + F.mat_added_size catalog ma) in
          let env = dset env "D5" d5 in
          let d6 = set_attrs d3 (F.union_attrs (attrs d5) (attrs d2)) in
          dset env "D6" (set_size d6 (size d5 + size d2)));
    };
    {
      Rule.tr_name = "mat_push_join_right";
      tr_lhs = p N.mat "D4" [ p N.join "D3" [ v 1; v 2 ] ];
      tr_rhs = t N.join "D6" [ tv 1; t N.mat "D5" [ tv 2 ] ];
      tr_cond =
        (fun env ->
          if subset (mat_attr (dget env "D4")) (attrs (dget env "D2")) then
            Some env
          else None);
      tr_appl =
        (fun env ->
          let d4 = dget env "D4" and d3 = dget env "D3" in
          let d1 = dget env "D1" and d2 = dget env "D2" in
          let ma = mat_attr d4 in
          let d5 = set_mat Descriptor.empty ma in
          let d5 = set_attrs d5 (F.union_attrs (attrs d2) (F.mat_added_attrs catalog ma)) in
          let d5 = set_card d5 (card d2) in
          let d5 = set_size d5 (size d2 + F.mat_added_size catalog ma) in
          let env = dset env "D5" d5 in
          let d6 = set_attrs d3 (F.union_attrs (attrs d1) (attrs d5)) in
          dset env "D6" (set_size d6 (size d1 + size d5)));
    };
    {
      Rule.tr_name = "mat_commute";
      tr_lhs = p N.mat "D4" [ p N.mat "D3" [ v 1 ] ];
      tr_rhs = t N.mat "D6" [ t N.mat "D5" [ tv 1 ] ];
      tr_cond =
        (fun env ->
          if subset (mat_attr (dget env "D4")) (attrs (dget env "D1")) then
            Some env
          else None);
      tr_appl =
        (fun env ->
          let d4 = dget env "D4" and d3 = dget env "D3" in
          let d1 = dget env "D1" in
          let ma = mat_attr d4 in
          let d5 = set_mat Descriptor.empty ma in
          let d5 = set_attrs d5 (F.union_attrs (attrs d1) (F.mat_added_attrs catalog ma)) in
          let d5 = set_card d5 (card d1) in
          let d5 = set_size d5 (size d1 + F.mat_added_size catalog ma) in
          let env = dset env "D5" d5 in
          dset env "D6" (set_mat d4 (mat_attr d3)));
    };
    {
      Rule.tr_name = "unnest_join_swap";
      tr_lhs = p N.unnest "D4" [ p N.join "D3" [ v 1; v 2 ] ];
      tr_rhs = t N.join "D6" [ t N.unnest "D5" [ tv 1 ]; tv 2 ];
      tr_cond =
        (fun env ->
          let ua = unnest_attr (dget env "D4") in
          if
            subset ua (attrs (dget env "D1"))
            && not (refs_any (jpred (dget env "D3")) ua)
          then Some env
          else None);
      tr_appl =
        (fun env ->
          let d4 = dget env "D4" and d3 = dget env "D3" in
          let d1 = dget env "D1" in
          let ua = unnest_attr d4 in
          let d5 = set_unnest Descriptor.empty ua in
          let d5 = set_attrs d5 (attrs d1) in
          let d5 = set_card d5 (card d1 * F.unnest_fanout catalog ua) in
          let d5 = set_size d5 (size d1) in
          let env = dset env "D5" d5 in
          dset env "D6" (set_card d3 (card d4)));
    };
  ]

(* ------------------------------------------------------------------ *)
(* impl_rules                                                           *)
(* ------------------------------------------------------------------ *)

let merged op_arg req = Descriptor.merge ~base:op_arg ~overrides:req
let no_reqs n = Array.make n Descriptor.empty

let order_req req =
  match order req with
  | Order.Any -> Descriptor.empty
  | o -> set_order Descriptor.empty o

let impl catalog : Rule.impl_rule list =
  [
    {
      Rule.ir_name = "ret_file_scan";
      ir_op = N.ret;
      ir_alg = N.file_scan;
      ir_arity = 1;
      ir_cond =
        (fun ~op_arg ~req ~inputs:_ -> Order.is_any (order (merged op_arg req)));
      ir_input_reqs = (fun ~op_arg:_ ~req:_ ~inputs:_ -> no_reqs 1);
      ir_finalize =
        (fun ~op_arg ~req ~inputs ->
          let d3 = merged op_arg req in
          set_cost d3
            (Cost_model.file_scan ~card:(card inputs.(0))
               ~tuple_size:(size inputs.(0))));
    };
    {
      Rule.ir_name = "ret_index_scan";
      ir_op = N.ret;
      ir_alg = N.index_scan;
      ir_arity = 1;
      ir_cond =
        (fun ~op_arg ~req ~inputs ->
          let d2 = merged op_arg req in
          let ixs = indexes inputs.(0) in
          F.indexed_selection (spred d2) ixs
          && Order.satisfies ~required:(order d2)
               ~actual:(F.index_order (spred d2) ixs));
      ir_input_reqs = (fun ~op_arg:_ ~req:_ ~inputs:_ -> no_reqs 1);
      ir_finalize =
        (fun ~op_arg ~req ~inputs ->
          let d2 = merged op_arg req in
          let ixs = indexes inputs.(0) in
          let d3 = set_order d2 (F.index_order (spred d2) ixs) in
          set_cost d3
            (Cost_model.index_scan ~card:(card inputs.(0))
               ~tuple_size:(size inputs.(0))
               ~selectivity:(F.indexed_selectivity catalog (spred d2) ixs)));
    };
    {
      Rule.ir_name = "join_hash";
      ir_op = N.join;
      ir_alg = N.hash_join;
      ir_arity = 2;
      ir_cond =
        (fun ~op_arg ~req ~inputs:_ ->
          let d3 = merged op_arg req in
          Predicate.is_equijoin (jpred d3) && Order.is_any (order d3));
      ir_input_reqs = (fun ~op_arg:_ ~req:_ ~inputs:_ -> no_reqs 2);
      ir_finalize =
        (fun ~op_arg ~req ~inputs ->
          let d4 = merged op_arg req in
          set_cost d4
            (Cost_model.hash_join
               ~left_cost:(dcost inputs.(0))
               ~right_cost:(dcost inputs.(1))
               ~left_card:(card inputs.(0))
               ~right_card:(card inputs.(1))));
    };
    {
      Rule.ir_name = "join_pointer";
      ir_op = N.join;
      ir_alg = N.pointer_join;
      ir_arity = 2;
      ir_cond =
        (fun ~op_arg ~req ~inputs:_ ->
          F.is_ref_join catalog (jpred (merged op_arg req)));
      ir_input_reqs =
        (fun ~op_arg ~req ~inputs:_ -> [| order_req (merged op_arg req); Descriptor.empty |]);
      ir_finalize =
        (fun ~op_arg ~req ~inputs ->
          let d5 = merged op_arg req in
          let outer = inputs.(0) in
          let d5 =
            set_cost d5
              (Cost_model.pointer_join ~outer_cost:(dcost outer)
                 ~inner_cost:(dcost inputs.(1))
                 ~outer_card:(card outer))
          in
          set_order d5 (order outer));
    };
    (let preserving name op alg cost_fn =
       {
         Rule.ir_name = name;
         ir_op = op;
         ir_alg = alg;
         ir_arity = 1;
         ir_cond = (fun ~op_arg:_ ~req:_ ~inputs:_ -> true);
         ir_input_reqs =
           (fun ~op_arg ~req ~inputs:_ -> [| order_req (merged op_arg req) |]);
         ir_finalize =
           (fun ~op_arg ~req ~inputs ->
             let d4 = merged op_arg req in
             let i0 = inputs.(0) in
             let d4 = set_cost d4 (cost_fn ~input:i0 ~out:d4) in
             set_order d4 (order i0));
       }
     in
     preserving "select_filter" N.select N.filter (fun ~input ~out:_ ->
         Cost_model.filter ~input_cost:(dcost input) ~input_card:(card input)));
    {
      Rule.ir_name = "project_apply";
      ir_op = N.project;
      ir_alg = N.project_alg;
      ir_arity = 1;
      ir_cond = (fun ~op_arg:_ ~req:_ ~inputs:_ -> true);
      ir_input_reqs =
        (fun ~op_arg ~req ~inputs:_ -> [| order_req (merged op_arg req) |]);
      ir_finalize =
        (fun ~op_arg ~req ~inputs ->
          let d4 = merged op_arg req in
          let i0 = inputs.(0) in
          let d4 =
            set_cost d4
              (Cost_model.project ~input_cost:(dcost i0) ~input_card:(card i0))
          in
          set_order d4 (order i0));
    };
    {
      Rule.ir_name = "mat_pointer";
      ir_op = N.mat;
      ir_alg = N.mat_deref;
      ir_arity = 1;
      ir_cond = (fun ~op_arg:_ ~req:_ ~inputs:_ -> true);
      ir_input_reqs =
        (fun ~op_arg ~req ~inputs:_ -> [| order_req (merged op_arg req) |]);
      ir_finalize =
        (fun ~op_arg ~req ~inputs ->
          let d4 = merged op_arg req in
          let i0 = inputs.(0) in
          let d4 =
            set_cost d4
              (Cost_model.mat_ordered ~input_cost:(dcost i0) ~card:(card i0))
          in
          set_order d4 (order i0));
    };
    {
      Rule.ir_name = "mat_batch";
      ir_op = N.mat;
      ir_alg = N.mat_deref;
      ir_arity = 1;
      ir_cond =
        (fun ~op_arg ~req ~inputs:_ -> Order.is_any (order (merged op_arg req)));
      ir_input_reqs = (fun ~op_arg:_ ~req:_ ~inputs:_ -> no_reqs 1);
      ir_finalize =
        (fun ~op_arg ~req ~inputs ->
          let d4 = merged op_arg req in
          let i0 = inputs.(0) in
          set_cost d4
            (Cost_model.mat_unordered ~input_cost:(dcost i0) ~card:(card i0)));
    };
    {
      Rule.ir_name = "unnest_scan";
      ir_op = N.unnest;
      ir_alg = N.unnest_scan;
      ir_arity = 1;
      ir_cond = (fun ~op_arg:_ ~req:_ ~inputs:_ -> true);
      ir_input_reqs =
        (fun ~op_arg ~req ~inputs:_ -> [| order_req (merged op_arg req) |]);
      ir_finalize =
        (fun ~op_arg ~req ~inputs ->
          let d4 = merged op_arg req in
          let i0 = inputs.(0) in
          let d4 =
            set_cost d4
              (Cost_model.unnest ~input_cost:(dcost i0) ~output_card:(card d4))
          in
          set_order d4 (order i0));
    };
  ]

(* ------------------------------------------------------------------ *)
(* enforcer                                                             *)
(* ------------------------------------------------------------------ *)

let merge_sort_enforcer : Rule.enforcer =
  {
    Rule.en_name = "sort_merge_sort";
    en_alg = N.merge_sort;
    en_applies = (fun ~req -> not (Order.is_any (order req)));
    en_relaxed = (fun ~req -> Descriptor.without req [ N.p_tuple_order ]);
    en_finalize =
      (fun ~req ~input ->
        let d3 = Descriptor.merge ~base:input ~overrides:req in
        set_cost d3
          (Cost_model.merge_sort ~input_cost:(dcost input) ~card:(card d3)));
  }

let ruleset catalog =
  Rule.make_ruleset ~trans:(trans catalog) ~impl:(impl catalog)
    ~enforcers:[ merge_sort_enforcer ]
    ~physical:[ N.p_tuple_order ]
    "open-oodb-volcano"

let rec prepare_query expr =
  match expr with
  | Expr.Node (Expr.Operator, name, d, [ child ]) when String.equal name N.sort
    ->
    let sub, req = prepare_query child in
    let props = Descriptor.restrict d [ N.p_tuple_order ] in
    (sub, Descriptor.merge ~base:req ~overrides:props)
  | e -> (e, Descriptor.empty)
