(** The cost model shared by every optimizer in this repository.

    Costs are abstract I/O-page units with a CPU surcharge per tuple
    produced (System R style).  Both the Prairie rule actions (via the
    helper functions of {!Helpers}) and the hand-coded Volcano rule set call
    these functions, so the two optimizers of the §4 experiments assign
    byte-identical costs to identical plans — any divergence between them in
    the equivalence tests is a real bug, not cost-model noise. *)

val page_size : int
(** 4096 bytes. *)

val cpu_per_tuple : float
(** CPU surcharge, in page units, per tuple handled. *)

val deref_cost : float
(** Cost of dereferencing one inter-object pointer (MAT, Pointer_join). *)

val pages : card:int -> tuple_size:int -> float
(** Pages occupied by [card] tuples of [tuple_size] bytes; at least 1. *)

val file_scan : card:int -> tuple_size:int -> float
(** Scan the whole stored file. *)

val index_scan : card:int -> tuple_size:int -> selectivity:float -> float
(** Index probe plus one page fetch per matching tuple. *)

val nested_loops : outer_cost:float -> outer_card:int -> inner_cost:float -> float
(** The paper's Fig. 6 formula: scan the outer once, the inner once per
    outer tuple. *)

val merge_join :
  left_cost:float -> right_cost:float -> left_card:int -> right_card:int -> float

val hash_join :
  left_cost:float -> right_cost:float -> left_card:int -> right_card:int -> float

val pointer_deref_cost : float

val pointer_join :
  outer_cost:float -> inner_cost:float -> outer_card:int -> float
(** Follow one pointer per outer tuple into the (resident) inner class.
    Cost-monotone in both inputs, as branch-and-bound requires. *)

val merge_sort : input_cost:float -> card:int -> float
(** The paper's Fig. 5 formula: input cost plus [n log n]. *)

val filter : input_cost:float -> input_card:int -> float

val project : input_cost:float -> input_card:int -> float

val mat_ordered : input_cost:float -> card:int -> float
(** Per-tuple pointer dereference, preserving input order. *)

val mat_unordered : input_cost:float -> card:int -> float
(** Batched dereference (pointers sorted internally): cheaper per tuple but
    the output order is destroyed.  The cheaper of the two MAT
    implementations when no order is required — the per-rule property
    mapping show-case. *)

val unnest : input_cost:float -> output_card:int -> float

val hash_agg : input_cost:float -> input_card:int -> float

val sort_agg : input_cost:float -> input_card:int -> float
(** Requires sorted input (the optimizer guarantees it); cheaper per tuple
    than {!hash_agg} — the classic enforcer-driven trade-off. *)

val network_page_factor : float

val ship : input_cost:float -> card:int -> tuple_size:int -> float
(** Move a stream between sites: network transfer of its pages (the R*-style
    distributed algebra's enforcer cost). *)
