module N = Names
module B = Build
module Value = Prairie_value.Value
module Attribute = Prairie_value.Attribute
module Descriptor = Prairie.Descriptor
module Expr = Prairie.Expr
open B

let count_attr = Attribute.make ~owner:"agg" ~name:"count"

(* AGG(?1):D2 ==> Hash_agg(?1):D3 — order-oblivious, order-destroying. *)
let agg_hash =
  irule ~name:"agg_hash"
    ~lhs:(p N.agg "D2" [ v 1 ])
    ~rhs:(t N.hash_agg "D3" [ tv 1 ])
    ~test:(c "is_dont_care" [ "D2" $. N.p_tuple_order ])
    ~pre_opt:[ copy "D3" "D2" ]
    ~post_opt:
      [
        set "D3" N.p_cost
          (c "cost_hash_agg" [ "D1" $. N.p_cost; "D1" $. N.p_num_records ]);
      ]
    ()

(* AGG(?1):D2 ==> Sort_agg(?1:D4):D3 — requires the input sorted on the
   group attributes and delivers that order on its output.  Cheaper per
   tuple; whether it wins depends on how expensive the order is to
   establish — the enforcer-driven trade-off. *)
let agg_sort =
  irule ~name:"agg_sort"
    ~lhs:(p N.agg "D2" [ v 1 ])
    ~rhs:(t N.sort_agg "D3" [ tvd 1 "D4" ])
    ~test:
      (c "order_satisfies"
         [
           "D2" $. N.p_tuple_order;
           c "attrs_order" [ "D2" $. N.p_group_attributes ];
         ])
    ~pre_opt:
      [
        copy "D3" "D2";
        set "D3" N.p_tuple_order
          (c "attrs_order" [ "D2" $. N.p_group_attributes ]);
        copy "D4" "D1";
        set "D4" N.p_tuple_order
          (c "attrs_order" [ "D2" $. N.p_group_attributes ]);
      ]
    ~post_opt:
      [
        set "D3" N.p_cost
          (c "cost_sort_agg" [ "D4" $. N.p_cost; "D4" $. N.p_num_records ]);
      ]
    ()

(* Footnote 7 again: without an enforcer-introduction rule for AGG, the
   explicit-rule (Prairie/naive) semantics could never sort *after*
   aggregating, while Volcano's implicit enforcer can — the two would
   disagree.  Every operator needs its introduction rule. *)
let sort_intro_agg =
  let true_pred =
    Action.Const (Prairie_value.Value.Pred Prairie_value.Predicate.True)
  in
  trule ~name:"sort_intro_agg"
    ~lhs:(p N.agg "D2" [ v 1 ])
    ~rhs:(t N.sort "D4" [ t N.agg "D3" [ tv 1 ] ])
    ~test:(not_ (c "is_dont_care" [ "D2" $. N.p_tuple_order ]))
    ~post_test:
      [
        copy "D4" "D2";
        set "D4" N.p_selection_predicate true_pred;
        set "D4" N.p_join_predicate true_pred;
        copy "D3" "D2";
        set "D3" N.p_tuple_order dont_care;
      ]
    ()

let fragment catalog =
  Prairie.Ruleset.make ~properties:Props.schema
    ~trules:[ sort_intro_agg ]
    ~irules:[ agg_hash; agg_sort ]
    ~helpers:(Helpers.env catalog) "aggregates"

let extended_relational catalog =
  Prairie.Ruleset.combine ~name:"relational_with_aggregates"
    (Relational.ruleset catalog) (fragment catalog)

let agg catalog ~by input =
  let di = Expr.descriptor input in
  let by = List.sort_uniq Attribute.compare by in
  let input_card = Descriptor.get_int di N.p_num_records in
  let groups =
    List.fold_left
      (fun acc a ->
        min input_card (acc * Prairie_catalog.Catalog.distinct_of catalog a))
      1 by
    |> max 1
    |> min input_card
  in
  let desc =
    Descriptor.of_list
      [
        (N.p_group_attributes, Value.Attrs by);
        (N.p_attributes, Value.Attrs (Helpers.F.union_attrs by [ count_attr ]));
        (N.p_num_records, Value.Int groups);
        (N.p_tuple_size, Value.Int (8 + (8 * List.length by)));
      ]
  in
  Expr.operator N.agg desc [ input ]
