(* The declared property list shared by both concrete optimizers (paper
   Table 2 plus the OODB additions).  Prairie deliberately keeps this a
   flat, uniform list: only the COST type is meaningful to the
   pre-processor; the physical/argument split is inferred from the rules. *)

module Value = Prairie_value.Value
module Property = Prairie.Property
module N = Names

let schema : Property.schema =
  [
    Property.declare N.p_attributes Value.T_attrs;
    Property.declare N.p_num_records Value.T_int;
    Property.declare N.p_tuple_size Value.T_int;
    Property.declare N.p_tuple_order Value.T_order;
    Property.declare N.p_selection_predicate Value.T_pred;
    Property.declare N.p_join_predicate Value.T_pred;
    Property.declare N.p_projected_attributes Value.T_attrs;
    Property.declare N.p_mat_attribute Value.T_attrs;
    Property.declare N.p_unnest_attribute Value.T_attrs;
    Property.declare N.p_indexes Value.T_attrs;
    Property.declare N.p_file_name Value.T_string;
    Property.declare N.p_group_attributes Value.T_attrs;
    Property.declare N.p_site Value.T_string;
    Property.declare N.p_cost Value.T_cost;
  ]
