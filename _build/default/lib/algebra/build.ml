(* Shorthand for writing rules in OCaml.  The textual rule language
   (lib/ruledsl) elaborates to the same constructors; these combinators are
   the embedded form. *)

module Pattern = Prairie.Pattern
module Action = Prairie.Action
module Value = Prairie_value.Value
module Order = Prairie_value.Order

(* patterns *)
let v i = Pattern.Pvar i
let p op d subs = Pattern.Pop (op, d, subs)

(* templates *)
let tv i = Pattern.Tvar (i, None)
let tvd i d = Pattern.Tvar (i, Some d)
let t op d subs = Pattern.Tnode (op, d, subs)

(* action expressions *)
let ( $. ) d prop = Action.Prop (d, prop)
let c = Action.call
let i k = Action.Const (Value.Int k)
let dont_care = Action.Const (Value.Order Order.Any)
let tt = Action.tt
let ( +! ) a b = Action.Binop (Action.Add, a, b)
let ( *! ) a b = Action.Binop (Action.Mul, a, b)
let ( &&! ) a b = Action.Binop (Action.And, a, b)
let ( ||! ) a b = Action.Binop (Action.Or, a, b)
let not_ a = Action.Unop (Action.Not, a)
let ( ===! ) a b = Action.(a === b)

(* statements *)
let set d prop e = Action.Assign_prop (d, prop, e)
let copy d src = Action.Assign_desc (d, Action.Desc src)

let trule = Prairie.Trule.make
let irule = Prairie.Irule.make

(* silence unused warnings for shorthand not used by every rule set *)
let _ = (i, ( +! ), ( *! ), ( &&! ), ( ||! ), not_, ( ===! ), tt, dont_care)
