lib/algebra/init.mli: Prairie Prairie_catalog Prairie_value
