lib/algebra/props.ml: Names Prairie Prairie_value
