lib/algebra/oodb.mli: Prairie Prairie_catalog Prairie_value
