lib/algebra/build.ml: Prairie Prairie_value
