lib/algebra/oodb.ml: Action Build Helpers Init Names Prairie Prairie_value Props
