lib/algebra/relational.ml: Action Build Helpers Init List Names Prairie Prairie_catalog Prairie_value Props
