lib/algebra/oodb_volcano.ml: Array Build Cost_model Helpers List Names Prairie Prairie_catalog Prairie_value Prairie_volcano String
