lib/algebra/names.ml: Prairie
