lib/algebra/helpers.mli: Prairie Prairie_catalog Prairie_value
