lib/algebra/cost_model.mli:
