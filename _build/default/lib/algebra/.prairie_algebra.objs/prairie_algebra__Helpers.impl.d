lib/algebra/helpers.ml: Cost_model List Option Prairie Prairie_catalog Prairie_value Printf String
