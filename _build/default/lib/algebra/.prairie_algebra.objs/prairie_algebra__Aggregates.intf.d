lib/algebra/aggregates.mli: Prairie Prairie_catalog Prairie_value
