lib/algebra/oodb_volcano.mli: Prairie Prairie_catalog Prairie_volcano
