lib/algebra/relational.mli: Prairie Prairie_catalog Prairie_value
