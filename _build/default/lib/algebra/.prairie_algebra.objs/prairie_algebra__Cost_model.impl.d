lib/algebra/cost_model.ml: Float
