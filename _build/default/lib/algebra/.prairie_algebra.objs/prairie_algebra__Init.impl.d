lib/algebra/init.ml: Helpers List Names Prairie Prairie_catalog Prairie_value
