lib/algebra/aggregates.ml: Action Build Helpers List Names Prairie Prairie_catalog Prairie_value Props Relational
