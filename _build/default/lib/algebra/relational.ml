module N = Names
module B = Build
open B

(* ------------------------------------------------------------------ *)
(* T-rules                                                             *)
(* ------------------------------------------------------------------ *)

(* JOIN(?1,?2):D3 ==> JOIN(?2,?1):D4.  Attribute lists are canonical
   (sorted), so a plain descriptor copy is exact. *)
let join_commute =
  trule ~name:"join_commute"
    ~lhs:(p N.join "D3" [ v 1; v 2 ])
    ~rhs:(t N.join "D4" [ tv 2; tv 1 ])
    ~post_test:[ copy "D4" "D3" ]
    ()

(* Paper Fig. 3: JOIN(JOIN(?1,?2):D4, ?3):D5 ==> JOIN(?1, JOIN(?2,?3):D6):D7.
   The pre-test computes the new inner join's attribute list; the test
   rejects rewrites whose inner join would be a cross product (the paper's
   "is_associative"). *)
let join_assoc_left =
  trule ~name:"join_assoc_left"
    ~lhs:(p N.join "D5" [ p N.join "D4" [ v 1; v 2 ]; v 3 ])
    ~rhs:(t N.join "D7" [ tv 1; t N.join "D6" [ tv 2; tv 3 ] ])
    ~pre_test:
      [
        set "D6" N.p_attributes
          (c "union_attrs" [ "D2" $. N.p_attributes; "D3" $. N.p_attributes ]);
      ]
    ~test:
      (not_ (c "pred_is_true" [ "D5" $. N.p_join_predicate ])
      &&! c "pred_refs_only"
            [ "D5" $. N.p_join_predicate; "D6" $. N.p_attributes ])
    ~post_test:
      [
        set "D6" N.p_join_predicate ("D5" $. N.p_join_predicate);
        set "D6" N.p_num_records
          (c "join_cardinality"
             [
               "D2" $. N.p_num_records;
               "D3" $. N.p_num_records;
               "D5" $. N.p_join_predicate;
             ]);
        set "D6" N.p_tuple_size
          (("D2" $. N.p_tuple_size) +! ("D3" $. N.p_tuple_size));
        copy "D7" "D5";
        set "D7" N.p_join_predicate ("D4" $. N.p_join_predicate);
      ]
    ()

(* Footnote 5: JOIN(?1,?2):D3 ==> JOPR(SORT(?1):D4, SORT(?2):D5):D6.
   The SORT descriptors carry the orders a merge join needs; P2V composes
   this rule with the Merge_join I-rule and turns SORT into an enforcer. *)
let sort_intro_merge_join =
  trule ~name:"sort_intro_merge_join"
    ~lhs:(p N.join "D3" [ v 1; v 2 ])
    ~rhs:(t N.jopr "D6" [ t N.sort "D4" [ tv 1 ]; t N.sort "D5" [ tv 2 ] ])
    ~test:(c "is_equijoin" [ "D3" $. N.p_join_predicate ])
    ~post_test:
      [
        copy "D6" "D3";
        copy "D4" "D1";
        set "D4" N.p_tuple_order
          (c "lhs_join_order"
             [ "D3" $. N.p_join_predicate; "D1" $. N.p_attributes ]);
        copy "D5" "D2";
        set "D5" N.p_tuple_order
          (c "rhs_join_order"
             [ "D3" $. N.p_join_predicate; "D2" $. N.p_attributes ]);
      ]
    ()

(* Footnote 7: the per-operator enforcer-introduction rules.  They let the
   explicit SORT operator appear above RET and JOIN when an order is
   required; on the Volcano side they disappear (the enforcer mechanism is
   implicit there).  The definitions are shared verbatim with the OODB
   rule set so that combined optimizers deduplicate them. *)
let true_pred = Action.Const (Prairie_value.Value.Pred Prairie_value.Predicate.True)

let sort_intro_unary op rule_name =
  trule ~name:rule_name
    ~lhs:(p op "D2" [ v 1 ])
    ~rhs:(t N.sort "D4" [ t op "D3" [ tv 1 ] ])
    ~test:(not_ (c "is_dont_care" [ "D2" $. N.p_tuple_order ]))
    ~post_test:
      [
        copy "D4" "D2";
        set "D4" N.p_selection_predicate true_pred;
        set "D4" N.p_join_predicate true_pred;
        copy "D3" "D2";
        set "D3" N.p_tuple_order dont_care;
      ]
    ()

let sort_intro_ret = sort_intro_unary N.ret "sort_intro_ret"

let sort_intro_join =
  trule ~name:"sort_intro_join"
    ~lhs:(p N.join "D3" [ v 1; v 2 ])
    ~rhs:(t N.sort "D5" [ t N.join "D4" [ tv 1; tv 2 ] ])
    ~test:(not_ (c "is_dont_care" [ "D3" $. N.p_tuple_order ]))
    ~post_test:
      [
        copy "D5" "D3";
        set "D5" N.p_join_predicate true_pred;
        copy "D4" "D3";
        set "D4" N.p_tuple_order dont_care;
      ]
    ()

(* ------------------------------------------------------------------ *)
(* I-rules                                                             *)
(* ------------------------------------------------------------------ *)

(* RET(?1):D2 ==> File_scan(?1):D3.  A file scan delivers tuples in no
   particular order, so it only applies when none is required. *)
let ret_file_scan =
  irule ~name:"ret_file_scan"
    ~lhs:(p N.ret "D2" [ v 1 ])
    ~rhs:(t N.file_scan "D3" [ tv 1 ])
    ~test:(c "is_dont_care" [ "D2" $. N.p_tuple_order ])
    ~pre_opt:[ copy "D3" "D2" ]
    ~post_opt:
      [
        set "D3" N.p_cost
          (c "cost_file_scan"
             [ "D1" $. N.p_num_records; "D1" $. N.p_tuple_size ]);
      ]
    ()

(* RET(?1):D2 ==> Index_scan(?1):D3: applicable when the selection
   predicate matches an index, and the index's output order satisfies any
   required order. *)
let ret_index_scan =
  irule ~name:"ret_index_scan"
    ~lhs:(p N.ret "D2" [ v 1 ])
    ~rhs:(t N.index_scan "D3" [ tv 1 ])
    ~test:
      (c "indexed_selection"
         [ "D2" $. N.p_selection_predicate; "D1" $. N.p_indexes ]
      &&! c "order_satisfies"
            [
              "D2" $. N.p_tuple_order;
              c "index_order"
                [ "D2" $. N.p_selection_predicate; "D1" $. N.p_indexes ];
            ])
    ~pre_opt:
      [
        copy "D3" "D2";
        set "D3" N.p_tuple_order
          (c "index_order"
             [ "D2" $. N.p_selection_predicate; "D1" $. N.p_indexes ]);
      ]
    ~post_opt:
      [
        set "D3" N.p_cost
          (c "cost_index_scan"
             [
               "D1" $. N.p_num_records;
               "D1" $. N.p_tuple_size;
               "D2" $. N.p_selection_predicate;
               "D1" $. N.p_indexes;
             ]);
      ]
    ()

(* Paper Fig. 6, verbatim: JOIN(?1,?2):D3 ==> Nested_loops(?1:D4, ?2):D5.
   The outer input inherits the required order; the cost is
   cost(outer) + |outer| * cost(inner). *)
let join_nested_loops =
  irule ~name:"join_nested_loops"
    ~lhs:(p N.join "D3" [ v 1; v 2 ])
    ~rhs:(t N.nested_loops "D5" [ tvd 1 "D4"; tv 2 ])
    ~pre_opt:
      [
        copy "D5" "D3";
        copy "D4" "D1";
        set "D4" N.p_tuple_order ("D3" $. N.p_tuple_order);
      ]
    ~post_opt:
      [
        set "D5" N.p_cost
          (("D4" $. N.p_cost)
          +! (("D4" $. N.p_num_records) *! ("D2" $. N.p_cost)));
        set "D5" N.p_tuple_order ("D4" $. N.p_tuple_order);
      ]
    ()

(* JOPR(?1,?2):D3 ==> Merge_join(?1,?2):D4.  The inputs are SORT nodes, so
   their descriptors already promise the needed orders; the output carries
   the outer's order, which must satisfy any required one.  The test is
   phrased over the join predicate so that it survives P2V composition. *)
let jopr_merge_join =
  irule ~name:"jopr_merge_join"
    ~lhs:(p N.jopr "D3" [ v 1; v 2 ])
    ~rhs:(t N.merge_join "D4" [ tv 1; tv 2 ])
    ~test:
      (c "order_satisfies"
         [
           "D3" $. N.p_tuple_order;
           c "lhs_join_order"
             [ "D3" $. N.p_join_predicate; "D1" $. N.p_attributes ];
         ])
    ~pre_opt:
      [
        copy "D4" "D3";
        set "D4" N.p_tuple_order
          (c "lhs_join_order"
             [ "D3" $. N.p_join_predicate; "D1" $. N.p_attributes ]);
      ]
    ~post_opt:
      [
        set "D4" N.p_cost
          (c "cost_merge_join"
             [
               "D1" $. N.p_cost;
               "D2" $. N.p_cost;
               "D1" $. N.p_num_records;
               "D2" $. N.p_num_records;
             ]);
      ]
    ()

(* Paper Fig. 5, verbatim: SORT(?1):D2 ==> Merge_sort(?1):D3. *)
let sort_merge_sort =
  irule ~name:"sort_merge_sort"
    ~lhs:(p N.sort "D2" [ v 1 ])
    ~rhs:(t N.merge_sort "D3" [ tv 1 ])
    ~test:(not_ (c "is_dont_care" [ "D2" $. N.p_tuple_order ]))
    ~pre_opt:[ copy "D3" "D2" ]
    ~post_opt:
      [
        set "D3" N.p_cost
          (c "cost_sort" [ "D1" $. N.p_cost; "D3" $. N.p_num_records ]);
      ]
    ()

(* Paper Fig. 7(b), verbatim: SORT(?1):D2 ==> Null(?1:D3):D4 — the Null
   algorithm passes the order requirement down to its input. *)
let sort_null =
  irule ~name:"sort_null"
    ~lhs:(p N.sort "D2" [ v 1 ])
    ~rhs:(t N.null_alg "D4" [ tvd 1 "D3" ])
    ~pre_opt:
      [
        copy "D4" "D2";
        copy "D3" "D1";
        set "D3" N.p_tuple_order ("D2" $. N.p_tuple_order);
      ]
    ~post_opt:[ set "D4" N.p_cost ("D3" $. N.p_cost) ]
    ()

let ruleset catalog =
  Prairie.Ruleset.make ~properties:Props.schema
    ~trules:
      [
        join_commute;
        join_assoc_left;
        sort_intro_merge_join;
        sort_intro_ret;
        sort_intro_join;
      ]
    ~irules:
      [
        ret_file_scan;
        ret_index_scan;
        join_nested_loops;
        jopr_merge_join;
        sort_merge_sort;
        sort_null;
      ]
    ~helpers:(Helpers.env catalog) "relational"

(* ------------------------------------------------------------------ *)
(* Catalog and query construction                                      *)
(* ------------------------------------------------------------------ *)

let relation ?(indexes = []) ?tuple_size ~name ~cardinality columns =
  let cols =
    List.map
      (fun (col, distinct) -> Prairie_catalog.Stored_file.column ~distinct name col)
      columns
  in
  let ixs =
    List.map
      (fun col ->
        {
          Prairie_catalog.Stored_file.index_name = name ^ "_" ^ col ^ "_ix";
          on = Prairie_value.Attribute.make ~owner:name ~name:col;
          unique = false;
        })
      indexes
  in
  Prairie_catalog.Stored_file.make ~kind:Prairie_catalog.Stored_file.Relation
    ?tuple_size ~indexes:ixs ~name ~cardinality cols

let ret = Init.ret
let join = Init.join
let sort = Init.sort
