(** The hand-coded Volcano version of the Open OODB optimizer.

    The paper's §4 baseline: the same 17 trans_rules, 9 impl_rules and 1
    enforcer that P2V generates from {!Oodb.ruleset}, but written directly
    against the Volcano rule interface as native OCaml closures — the
    analog of the original's hand-written C support functions.  It calls
    the same {!Cost_model} and {!Helpers.F} functions and performs the same
    descriptor updates in the same order, so it must produce byte-identical
    descriptors, costs and memo contents as the P2V-generated optimizer;
    the equivalence tests assert exactly that.  Performance differences
    between the two are therefore attributable purely to P2V's interpreted
    action statements versus native code. *)

val ruleset : Prairie_catalog.Catalog.t -> Prairie_volcano.Rule.ruleset

val prepare_query :
  Prairie.Expr.t -> Prairie.Expr.t * Prairie.Descriptor.t
(** Strip root SORT operators into required physical properties, as
    {!Prairie_p2v.Translate.prepare_query} does for the generated set. *)
