module N = Names
module B = Build
module Value = Prairie_value.Value
module Predicate = Prairie_value.Predicate
open B

let true_pred = Action.Const (Value.Pred Predicate.True)

(* ================================================================== *)
(* T-rules: 17 "real" rules + 5 enforcer-introduction rules = 22       *)
(* ================================================================== *)

(* --- join rules ---------------------------------------------------- *)

let join_commute =
  trule ~name:"join_commute"
    ~lhs:(p N.join "D3" [ v 1; v 2 ])
    ~rhs:(t N.join "D4" [ tv 2; tv 1 ])
    ~post_test:[ copy "D4" "D3" ]
    ()

let join_assoc_left =
  trule ~name:"join_assoc_left"
    ~lhs:(p N.join "D5" [ p N.join "D4" [ v 1; v 2 ]; v 3 ])
    ~rhs:(t N.join "D7" [ tv 1; t N.join "D6" [ tv 2; tv 3 ] ])
    ~pre_test:
      [
        set "D6" N.p_attributes
          (c "union_attrs" [ "D2" $. N.p_attributes; "D3" $. N.p_attributes ]);
      ]
    ~test:
      (not_ (c "pred_is_true" [ "D5" $. N.p_join_predicate ])
      &&! c "pred_refs_only"
            [ "D5" $. N.p_join_predicate; "D6" $. N.p_attributes ])
    ~post_test:
      [
        set "D6" N.p_join_predicate ("D5" $. N.p_join_predicate);
        set "D6" N.p_num_records
          (c "join_cardinality"
             [
               "D2" $. N.p_num_records;
               "D3" $. N.p_num_records;
               "D5" $. N.p_join_predicate;
             ]);
        set "D6" N.p_tuple_size
          (("D2" $. N.p_tuple_size) +! ("D3" $. N.p_tuple_size));
        copy "D7" "D5";
        set "D7" N.p_join_predicate ("D4" $. N.p_join_predicate);
      ]
    ()

let join_assoc_right =
  trule ~name:"join_assoc_right"
    ~lhs:(p N.join "D5" [ v 1; p N.join "D4" [ v 2; v 3 ] ])
    ~rhs:(t N.join "D7" [ t N.join "D6" [ tv 1; tv 2 ]; tv 3 ])
    ~pre_test:
      [
        set "D6" N.p_attributes
          (c "union_attrs" [ "D1" $. N.p_attributes; "D2" $. N.p_attributes ]);
      ]
    ~test:
      (not_ (c "pred_is_true" [ "D5" $. N.p_join_predicate ])
      &&! c "pred_refs_only"
            [ "D5" $. N.p_join_predicate; "D6" $. N.p_attributes ])
    ~post_test:
      [
        set "D6" N.p_join_predicate ("D5" $. N.p_join_predicate);
        set "D6" N.p_num_records
          (c "join_cardinality"
             [
               "D1" $. N.p_num_records;
               "D2" $. N.p_num_records;
               "D5" $. N.p_join_predicate;
             ]);
        set "D6" N.p_tuple_size
          (("D1" $. N.p_tuple_size) +! ("D2" $. N.p_tuple_size));
        copy "D7" "D5";
        set "D7" N.p_join_predicate ("D4" $. N.p_join_predicate);
      ]
    ()

(* --- SELECT rules --------------------------------------------------- *)

(* SELECT(?1):D2 ==> SELECT(SELECT(?1):D3):D4 — split a conjunction. *)
let select_split =
  trule ~name:"select_split"
    ~lhs:(p N.select "D2" [ v 1 ])
    ~rhs:(t N.select "D4" [ t N.select "D3" [ tv 1 ] ])
    ~test:(c "has_conjuncts" [ "D2" $. N.p_selection_predicate ])
    ~post_test:
      [
        set "D3" N.p_selection_predicate
          (c "rest_conjuncts" [ "D2" $. N.p_selection_predicate ]);
        set "D3" N.p_attributes ("D1" $. N.p_attributes);
        set "D3" N.p_num_records
          (c "select_cardinality"
             [ "D1" $. N.p_num_records; "D3" $. N.p_selection_predicate ]);
        set "D3" N.p_tuple_size ("D1" $. N.p_tuple_size);
        copy "D4" "D2";
        set "D4" N.p_selection_predicate
          (c "first_conjunct" [ "D2" $. N.p_selection_predicate ]);
      ]
    ()

(* SELECT(SELECT(?1):D3):D4 ==> SELECT(?1):D5 — merge adjacent selects. *)
let select_merge =
  trule ~name:"select_merge"
    ~lhs:(p N.select "D4" [ p N.select "D3" [ v 1 ] ])
    ~rhs:(t N.select "D5" [ tv 1 ])
    ~post_test:
      [
        copy "D5" "D4";
        set "D5" N.p_selection_predicate
          (c "and_pred"
             [ "D4" $. N.p_selection_predicate; "D3" $. N.p_selection_predicate ]);
      ]
    ()

(* SELECT(SELECT(?1):D3):D4 ==> SELECT(SELECT(?1):D5):D6 — swap. *)
let select_commute =
  trule ~name:"select_commute"
    ~lhs:(p N.select "D4" [ p N.select "D3" [ v 1 ] ])
    ~rhs:(t N.select "D6" [ t N.select "D5" [ tv 1 ] ])
    ~post_test:
      [
        copy "D5" "D3";
        set "D5" N.p_selection_predicate ("D4" $. N.p_selection_predicate);
        set "D5" N.p_num_records
          (c "select_cardinality"
             [ "D1" $. N.p_num_records; "D4" $. N.p_selection_predicate ]);
        copy "D6" "D4";
        set "D6" N.p_selection_predicate ("D3" $. N.p_selection_predicate);
      ]
    ()

(* SELECT(JOIN(?1,?2):D3):D4 ==> JOIN(SELECT(?1):D5, ?2):D6. *)
let select_push_join_left =
  trule ~name:"select_push_join_left"
    ~lhs:(p N.select "D4" [ p N.join "D3" [ v 1; v 2 ] ])
    ~rhs:(t N.join "D6" [ t N.select "D5" [ tv 1 ]; tv 2 ])
    ~test:
      (not_ (c "pred_is_true" [ "D4" $. N.p_selection_predicate ])
      &&! c "pred_refs_only"
            [ "D4" $. N.p_selection_predicate; "D1" $. N.p_attributes ])
    ~post_test:
      [
        set "D5" N.p_selection_predicate ("D4" $. N.p_selection_predicate);
        set "D5" N.p_attributes ("D1" $. N.p_attributes);
        set "D5" N.p_num_records
          (c "select_cardinality"
             [ "D1" $. N.p_num_records; "D4" $. N.p_selection_predicate ]);
        set "D5" N.p_tuple_size ("D1" $. N.p_tuple_size);
        copy "D6" "D3";
        set "D6" N.p_num_records ("D4" $. N.p_num_records);
      ]
    ()

let select_push_join_right =
  trule ~name:"select_push_join_right"
    ~lhs:(p N.select "D4" [ p N.join "D3" [ v 1; v 2 ] ])
    ~rhs:(t N.join "D6" [ tv 1; t N.select "D5" [ tv 2 ] ])
    ~test:
      (not_ (c "pred_is_true" [ "D4" $. N.p_selection_predicate ])
      &&! c "pred_refs_only"
            [ "D4" $. N.p_selection_predicate; "D2" $. N.p_attributes ])
    ~post_test:
      [
        set "D5" N.p_selection_predicate ("D4" $. N.p_selection_predicate);
        set "D5" N.p_attributes ("D2" $. N.p_attributes);
        set "D5" N.p_num_records
          (c "select_cardinality"
             [ "D2" $. N.p_num_records; "D4" $. N.p_selection_predicate ]);
        set "D5" N.p_tuple_size ("D2" $. N.p_tuple_size);
        copy "D6" "D3";
        set "D6" N.p_num_records ("D4" $. N.p_num_records);
      ]
    ()

(* SELECT(MAT(?1):D3):D4 ==> MAT(SELECT(?1):D5):D6 — push a selection
   below the materialization when it only reads pre-MAT attributes. *)
let select_push_mat =
  trule ~name:"select_push_mat"
    ~lhs:(p N.select "D4" [ p N.mat "D3" [ v 1 ] ])
    ~rhs:(t N.mat "D6" [ t N.select "D5" [ tv 1 ] ])
    ~test:
      (not_ (c "pred_is_true" [ "D4" $. N.p_selection_predicate ])
      &&! c "pred_refs_only"
            [ "D4" $. N.p_selection_predicate; "D1" $. N.p_attributes ])
    ~post_test:
      [
        set "D5" N.p_selection_predicate ("D4" $. N.p_selection_predicate);
        set "D5" N.p_attributes ("D1" $. N.p_attributes);
        set "D5" N.p_num_records
          (c "select_cardinality"
             [ "D1" $. N.p_num_records; "D4" $. N.p_selection_predicate ]);
        set "D5" N.p_tuple_size ("D1" $. N.p_tuple_size);
        copy "D6" "D3";
        set "D6" N.p_num_records ("D4" $. N.p_num_records);
      ]
    ()

(* SELECT(UNNEST(?1):D3):D4 ==> UNNEST(SELECT(?1):D5):D6. *)
let select_push_unnest =
  trule ~name:"select_push_unnest"
    ~lhs:(p N.select "D4" [ p N.unnest "D3" [ v 1 ] ])
    ~rhs:(t N.unnest "D6" [ t N.select "D5" [ tv 1 ] ])
    ~test:
      (not_ (c "pred_is_true" [ "D4" $. N.p_selection_predicate ])
      &&! not_
            (c "pred_refs_any"
               [ "D4" $. N.p_selection_predicate; "D3" $. N.p_unnest_attribute ]))
    ~post_test:
      [
        set "D5" N.p_selection_predicate ("D4" $. N.p_selection_predicate);
        set "D5" N.p_attributes ("D1" $. N.p_attributes);
        set "D5" N.p_num_records
          (c "select_cardinality"
             [ "D1" $. N.p_num_records; "D4" $. N.p_selection_predicate ]);
        set "D5" N.p_tuple_size ("D1" $. N.p_tuple_size);
        copy "D6" "D3";
        set "D6" N.p_num_records ("D4" $. N.p_num_records);
      ]
    ()

(* SELECT(RET(?1):D3):D4 ==> RET(?1):D5 — fold the selection into the
   retrieval; this is what makes indexes usable (Q6/Q8). *)
let select_into_ret =
  trule ~name:"select_into_ret"
    ~lhs:(p N.select "D4" [ p N.ret "D3" [ v 1 ] ])
    ~rhs:(t N.ret "D5" [ tv 1 ])
    ~post_test:
      [
        copy "D5" "D3";
        set "D5" N.p_selection_predicate
          (c "and_pred"
             [ "D3" $. N.p_selection_predicate; "D4" $. N.p_selection_predicate ]);
        set "D5" N.p_num_records ("D4" $. N.p_num_records);
      ]
    ()

(* --- MAT rules ------------------------------------------------------ *)

(* JOIN(MAT(?1):D3, ?2):D4 ==> MAT(JOIN(?1,?2):D5):D6 — defer the
   materialization past the join (fewer derefs if the join is selective). *)
let mat_pull_join_left =
  trule ~name:"mat_pull_join_left"
    ~lhs:(p N.join "D4" [ p N.mat "D3" [ v 1 ]; v 2 ])
    ~rhs:(t N.mat "D6" [ t N.join "D5" [ tv 1; tv 2 ] ])
    ~pre_test:
      [
        set "D5" N.p_attributes
          (c "union_attrs" [ "D1" $. N.p_attributes; "D2" $. N.p_attributes ]);
      ]
    ~test:
      (c "pred_refs_only" [ "D4" $. N.p_join_predicate; "D5" $. N.p_attributes ])
    ~post_test:
      [
        set "D5" N.p_join_predicate ("D4" $. N.p_join_predicate);
        set "D5" N.p_num_records
          (c "join_cardinality"
             [
               "D1" $. N.p_num_records;
               "D2" $. N.p_num_records;
               "D4" $. N.p_join_predicate;
             ]);
        set "D5" N.p_tuple_size
          (("D1" $. N.p_tuple_size) +! ("D2" $. N.p_tuple_size));
        copy "D6" "D4";
        set "D6" N.p_join_predicate true_pred;
        set "D6" N.p_mat_attribute ("D3" $. N.p_mat_attribute);
      ]
    ()

let mat_pull_join_right =
  trule ~name:"mat_pull_join_right"
    ~lhs:(p N.join "D4" [ v 1; p N.mat "D3" [ v 2 ] ])
    ~rhs:(t N.mat "D6" [ t N.join "D5" [ tv 1; tv 2 ] ])
    ~pre_test:
      [
        set "D5" N.p_attributes
          (c "union_attrs" [ "D1" $. N.p_attributes; "D2" $. N.p_attributes ]);
      ]
    ~test:
      (c "pred_refs_only" [ "D4" $. N.p_join_predicate; "D5" $. N.p_attributes ])
    ~post_test:
      [
        set "D5" N.p_join_predicate ("D4" $. N.p_join_predicate);
        set "D5" N.p_num_records
          (c "join_cardinality"
             [
               "D1" $. N.p_num_records;
               "D2" $. N.p_num_records;
               "D4" $. N.p_join_predicate;
             ]);
        set "D5" N.p_tuple_size
          (("D1" $. N.p_tuple_size) +! ("D2" $. N.p_tuple_size));
        copy "D6" "D4";
        set "D6" N.p_join_predicate true_pred;
        set "D6" N.p_mat_attribute ("D3" $. N.p_mat_attribute);
      ]
    ()

(* MAT(JOIN(?1,?2):D3):D4 ==> JOIN(MAT(?1):D5, ?2):D6 — materialize
   early, before the join, when the reference lives in the left input. *)
let mat_push_join_left =
  trule ~name:"mat_push_join_left"
    ~lhs:(p N.mat "D4" [ p N.join "D3" [ v 1; v 2 ] ])
    ~rhs:(t N.join "D6" [ t N.mat "D5" [ tv 1 ]; tv 2 ])
    ~test:(c "attrs_subset" [ "D4" $. N.p_mat_attribute; "D1" $. N.p_attributes ])
    ~post_test:
      [
        set "D5" N.p_mat_attribute ("D4" $. N.p_mat_attribute);
        set "D5" N.p_attributes
          (c "union_attrs"
             [
               "D1" $. N.p_attributes;
               c "mat_added_attrs" [ "D4" $. N.p_mat_attribute ];
             ]);
        set "D5" N.p_num_records ("D1" $. N.p_num_records);
        set "D5" N.p_tuple_size
          (("D1" $. N.p_tuple_size)
          +! c "mat_added_size" [ "D4" $. N.p_mat_attribute ]);
        copy "D6" "D3";
        set "D6" N.p_attributes
          (c "union_attrs" [ "D5" $. N.p_attributes; "D2" $. N.p_attributes ]);
        set "D6" N.p_tuple_size
          (("D5" $. N.p_tuple_size) +! ("D2" $. N.p_tuple_size));
      ]
    ()

let mat_push_join_right =
  trule ~name:"mat_push_join_right"
    ~lhs:(p N.mat "D4" [ p N.join "D3" [ v 1; v 2 ] ])
    ~rhs:(t N.join "D6" [ tv 1; t N.mat "D5" [ tv 2 ] ])
    ~test:(c "attrs_subset" [ "D4" $. N.p_mat_attribute; "D2" $. N.p_attributes ])
    ~post_test:
      [
        set "D5" N.p_mat_attribute ("D4" $. N.p_mat_attribute);
        set "D5" N.p_attributes
          (c "union_attrs"
             [
               "D2" $. N.p_attributes;
               c "mat_added_attrs" [ "D4" $. N.p_mat_attribute ];
             ]);
        set "D5" N.p_num_records ("D2" $. N.p_num_records);
        set "D5" N.p_tuple_size
          (("D2" $. N.p_tuple_size)
          +! c "mat_added_size" [ "D4" $. N.p_mat_attribute ]);
        copy "D6" "D3";
        set "D6" N.p_attributes
          (c "union_attrs" [ "D1" $. N.p_attributes; "D5" $. N.p_attributes ]);
        set "D6" N.p_tuple_size
          (("D1" $. N.p_tuple_size) +! ("D5" $. N.p_tuple_size));
      ]
    ()

(* MAT(MAT(?1):D3):D4 ==> MAT(MAT(?1):D5):D6 — independent
   materializations commute. *)
let mat_commute =
  trule ~name:"mat_commute"
    ~lhs:(p N.mat "D4" [ p N.mat "D3" [ v 1 ] ])
    ~rhs:(t N.mat "D6" [ t N.mat "D5" [ tv 1 ] ])
    ~test:(c "attrs_subset" [ "D4" $. N.p_mat_attribute; "D1" $. N.p_attributes ])
    ~post_test:
      [
        set "D5" N.p_mat_attribute ("D4" $. N.p_mat_attribute);
        set "D5" N.p_attributes
          (c "union_attrs"
             [
               "D1" $. N.p_attributes;
               c "mat_added_attrs" [ "D4" $. N.p_mat_attribute ];
             ]);
        set "D5" N.p_num_records ("D1" $. N.p_num_records);
        set "D5" N.p_tuple_size
          (("D1" $. N.p_tuple_size)
          +! c "mat_added_size" [ "D4" $. N.p_mat_attribute ]);
        copy "D6" "D4";
        set "D6" N.p_mat_attribute ("D3" $. N.p_mat_attribute);
      ]
    ()

(* --- UNNEST rule ----------------------------------------------------- *)

(* UNNEST(JOIN(?1,?2):D3):D4 ==> JOIN(UNNEST(?1):D5, ?2):D6: the single
   UNNEST trans rule the paper mentions. *)
let unnest_join_swap =
  trule ~name:"unnest_join_swap"
    ~lhs:(p N.unnest "D4" [ p N.join "D3" [ v 1; v 2 ] ])
    ~rhs:(t N.join "D6" [ t N.unnest "D5" [ tv 1 ]; tv 2 ])
    ~test:
      (c "attrs_subset" [ "D4" $. N.p_unnest_attribute; "D1" $. N.p_attributes ]
      &&! not_
            (c "pred_refs_any"
               [ "D3" $. N.p_join_predicate; "D4" $. N.p_unnest_attribute ]))
    ~post_test:
      [
        set "D5" N.p_unnest_attribute ("D4" $. N.p_unnest_attribute);
        set "D5" N.p_attributes ("D1" $. N.p_attributes);
        set "D5" N.p_num_records
          (c "unnest_cardinality"
             [ "D1" $. N.p_num_records; "D4" $. N.p_unnest_attribute ]);
        set "D5" N.p_tuple_size ("D1" $. N.p_tuple_size);
        copy "D6" "D3";
        set "D6" N.p_num_records ("D4" $. N.p_num_records);
      ]
    ()

(* --- enforcer-introduction rules (footnote 7): one per operator ------ *)

let sort_intro_unary op rule_name =
  trule ~name:rule_name
    ~lhs:(p op "D2" [ v 1 ])
    ~rhs:(t N.sort "D4" [ t op "D3" [ tv 1 ] ])
    ~test:(not_ (c "is_dont_care" [ "D2" $. N.p_tuple_order ]))
    ~post_test:
      [
        copy "D4" "D2";
        set "D4" N.p_selection_predicate true_pred;
        set "D4" N.p_join_predicate true_pred;
        copy "D3" "D2";
        set "D3" N.p_tuple_order dont_care;
      ]
    ()

let sort_intro_ret = sort_intro_unary N.ret "sort_intro_ret"
let sort_intro_select = sort_intro_unary N.select "sort_intro_select"
let sort_intro_mat = sort_intro_unary N.mat "sort_intro_mat"
let sort_intro_unnest = sort_intro_unary N.unnest "sort_intro_unnest"

let sort_intro_join =
  trule ~name:"sort_intro_join"
    ~lhs:(p N.join "D3" [ v 1; v 2 ])
    ~rhs:(t N.sort "D5" [ t N.join "D4" [ tv 1; tv 2 ] ])
    ~test:(not_ (c "is_dont_care" [ "D3" $. N.p_tuple_order ]))
    ~post_test:
      [
        copy "D5" "D3";
        set "D5" N.p_join_predicate true_pred;
        copy "D4" "D3";
        set "D4" N.p_tuple_order dont_care;
      ]
    ()

(* ================================================================== *)
(* I-rules: 9 implementations + Null + Merge_sort = 11                 *)
(* ================================================================== *)

let ret_file_scan =
  irule ~name:"ret_file_scan"
    ~lhs:(p N.ret "D2" [ v 1 ])
    ~rhs:(t N.file_scan "D3" [ tv 1 ])
    ~test:(c "is_dont_care" [ "D2" $. N.p_tuple_order ])
    ~pre_opt:[ copy "D3" "D2" ]
    ~post_opt:
      [
        set "D3" N.p_cost
          (c "cost_file_scan"
             [ "D1" $. N.p_num_records; "D1" $. N.p_tuple_size ]);
      ]
    ()

let ret_index_scan =
  irule ~name:"ret_index_scan"
    ~lhs:(p N.ret "D2" [ v 1 ])
    ~rhs:(t N.index_scan "D3" [ tv 1 ])
    ~test:
      (c "indexed_selection"
         [ "D2" $. N.p_selection_predicate; "D1" $. N.p_indexes ]
      &&! c "order_satisfies"
            [
              "D2" $. N.p_tuple_order;
              c "index_order"
                [ "D2" $. N.p_selection_predicate; "D1" $. N.p_indexes ];
            ])
    ~pre_opt:
      [
        copy "D3" "D2";
        set "D3" N.p_tuple_order
          (c "index_order"
             [ "D2" $. N.p_selection_predicate; "D1" $. N.p_indexes ]);
      ]
    ~post_opt:
      [
        set "D3" N.p_cost
          (c "cost_index_scan"
             [
               "D1" $. N.p_num_records;
               "D1" $. N.p_tuple_size;
               "D2" $. N.p_selection_predicate;
               "D1" $. N.p_indexes;
             ]);
      ]
    ()

(* Hash join: any equijoin, but it delivers no order. *)
let join_hash =
  irule ~name:"join_hash"
    ~lhs:(p N.join "D3" [ v 1; v 2 ])
    ~rhs:(t N.hash_join "D4" [ tv 1; tv 2 ])
    ~test:
      (c "is_equijoin" [ "D3" $. N.p_join_predicate ]
      &&! c "is_dont_care" [ "D3" $. N.p_tuple_order ])
    ~pre_opt:[ copy "D4" "D3" ]
    ~post_opt:
      [
        set "D4" N.p_cost
          (c "cost_hash_join"
             [
               "D1" $. N.p_cost;
               "D2" $. N.p_cost;
               "D1" $. N.p_num_records;
               "D2" $. N.p_num_records;
             ]);
      ]
    ()

(* Pointer join: follows an inter-object reference; preserves (and can
   therefore deliver) the outer's order. *)
let join_pointer =
  irule ~name:"join_pointer"
    ~lhs:(p N.join "D3" [ v 1; v 2 ])
    ~rhs:(t N.pointer_join "D5" [ tvd 1 "D4"; tv 2 ])
    ~test:(c "is_ref_join" [ "D3" $. N.p_join_predicate ])
    ~pre_opt:
      [
        copy "D5" "D3";
        copy "D4" "D1";
        set "D4" N.p_tuple_order ("D3" $. N.p_tuple_order);
      ]
    ~post_opt:
      [
        set "D5" N.p_cost
          (c "cost_pointer_join"
             [ "D4" $. N.p_cost; "D2" $. N.p_cost; "D4" $. N.p_num_records ]);
        set "D5" N.p_tuple_order ("D4" $. N.p_tuple_order);
      ]
    ()

let order_preserving_unary ~rule_name ~op ~alg ~cost_helper =
  irule ~name:rule_name
    ~lhs:(p op "D2" [ v 1 ])
    ~rhs:(t alg "D4" [ tvd 1 "D3" ])
    ~pre_opt:
      [
        copy "D4" "D2";
        copy "D3" "D1";
        set "D3" N.p_tuple_order ("D2" $. N.p_tuple_order);
      ]
    ~post_opt:
      [
        set "D4" N.p_cost
          (c cost_helper [ "D3" $. N.p_cost; "D3" $. N.p_num_records ]);
        set "D4" N.p_tuple_order ("D3" $. N.p_tuple_order);
      ]
    ()

let select_filter =
  order_preserving_unary ~rule_name:"select_filter" ~op:N.select ~alg:N.filter
    ~cost_helper:"cost_filter"

let project_apply =
  order_preserving_unary ~rule_name:"project_apply" ~op:N.project
    ~alg:N.project_alg ~cost_helper:"cost_project"

(* MAT, implementation 1: per-tuple dereference in input order. *)
let mat_pointer =
  order_preserving_unary ~rule_name:"mat_pointer" ~op:N.mat ~alg:N.mat_deref
    ~cost_helper:"cost_mat_ordered"

(* MAT, implementation 2: the same Mat_deref algorithm, but with batched
   (pointer-sorted) dereferencing — cheaper, destroys the order.  Two
   I-rules for one algorithm with different property mappings: the
   per-rule approach of §3.2.2 in action. *)
let mat_batch =
  irule ~name:"mat_batch"
    ~lhs:(p N.mat "D2" [ v 1 ])
    ~rhs:(t N.mat_deref "D4" [ tv 1 ])
    ~test:(c "is_dont_care" [ "D2" $. N.p_tuple_order ])
    ~pre_opt:[ copy "D4" "D2" ]
    ~post_opt:
      [
        set "D4" N.p_cost
          (c "cost_mat_unordered" [ "D1" $. N.p_cost; "D1" $. N.p_num_records ]);
      ]
    ()

let unnest_scan =
  irule ~name:"unnest_scan"
    ~lhs:(p N.unnest "D2" [ v 1 ])
    ~rhs:(t N.unnest_scan "D4" [ tvd 1 "D3" ])
    ~pre_opt:
      [
        copy "D4" "D2";
        copy "D3" "D1";
        set "D3" N.p_tuple_order ("D2" $. N.p_tuple_order);
      ]
    ~post_opt:
      [
        set "D4" N.p_cost
          (c "cost_unnest" [ "D3" $. N.p_cost; "D4" $. N.p_num_records ]);
        set "D4" N.p_tuple_order ("D3" $. N.p_tuple_order);
      ]
    ()

(* The enforcer pair, shared with the relational set (paper Figs. 5, 7b). *)
let sort_merge_sort =
  irule ~name:"sort_merge_sort"
    ~lhs:(p N.sort "D2" [ v 1 ])
    ~rhs:(t N.merge_sort "D3" [ tv 1 ])
    ~test:(not_ (c "is_dont_care" [ "D2" $. N.p_tuple_order ]))
    ~pre_opt:[ copy "D3" "D2" ]
    ~post_opt:
      [
        set "D3" N.p_cost
          (c "cost_sort" [ "D1" $. N.p_cost; "D3" $. N.p_num_records ]);
      ]
    ()

let sort_null =
  irule ~name:"sort_null"
    ~lhs:(p N.sort "D2" [ v 1 ])
    ~rhs:(t N.null_alg "D4" [ tvd 1 "D3" ])
    ~pre_opt:
      [
        copy "D4" "D2";
        copy "D3" "D1";
        set "D3" N.p_tuple_order ("D2" $. N.p_tuple_order);
      ]
    ~post_opt:[ set "D4" N.p_cost ("D3" $. N.p_cost) ]
    ()

let ruleset catalog =
  Prairie.Ruleset.make ~properties:Props.schema
    ~trules:
      [
        (* 17 trans rules *)
        join_commute;
        join_assoc_left;
        join_assoc_right;
        select_split;
        select_merge;
        select_commute;
        select_push_join_left;
        select_push_join_right;
        select_push_mat;
        select_push_unnest;
        select_into_ret;
        mat_pull_join_left;
        mat_pull_join_right;
        mat_push_join_left;
        mat_push_join_right;
        mat_commute;
        unnest_join_swap;
        (* 5 enforcer-introduction rules *)
        sort_intro_ret;
        sort_intro_select;
        sort_intro_mat;
        sort_intro_unnest;
        sort_intro_join;
      ]
    ~irules:
      [
        ret_file_scan;
        ret_index_scan;
        join_hash;
        join_pointer;
        select_filter;
        project_apply;
        mat_pointer;
        mat_batch;
        unnest_scan;
        sort_merge_sort;
        sort_null;
      ]
    ~helpers:(Helpers.env catalog) "open_oodb"

let ret = Init.ret
let join = Init.join
let select = Init.select
let project = Init.project
let mat = Init.mat
let unnest = Init.unnest
let sort = Init.sort
