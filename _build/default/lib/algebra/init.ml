module Value = Prairie_value.Value
module Attribute = Prairie_value.Attribute
module Predicate = Prairie_value.Predicate
module Order = Prairie_value.Order
module Catalog = Prairie_catalog.Catalog
module Stats = Prairie_catalog.Stats
module Stored_file = Prairie_catalog.Stored_file
module Descriptor = Prairie.Descriptor
module Expr = Prairie.Expr
module N = Names

let file_descriptor catalog name =
  let f =
    match Catalog.find catalog name with
    | Some f -> f
    | None -> raise Not_found
  in
  Descriptor.of_list
    [
      (N.p_file_name, Value.Str name);
      ( N.p_attributes,
        Value.Attrs
          (List.sort Attribute.compare (Stored_file.attributes f)) );
      (N.p_num_records, Value.Int f.Stored_file.cardinality);
      (N.p_tuple_size, Value.Int f.Stored_file.tuple_size);
      ( N.p_indexes,
        Value.Attrs
          (List.sort Attribute.compare
             (List.map (fun ix -> ix.Stored_file.on) f.Stored_file.indexes)) );
    ]

let file catalog name = Expr.stored ~desc:(file_descriptor catalog name) name

let get_attrs d = Descriptor.get_attrs d N.p_attributes
let get_card d = Descriptor.get_int d N.p_num_records
let get_size d = Descriptor.get_int d N.p_tuple_size

let ret ?(pred = Predicate.True) catalog name =
  let fd = file_descriptor catalog name in
  let desc =
    Descriptor.of_list
      [
        (N.p_selection_predicate, Value.Pred pred);
        (N.p_attributes, Value.Attrs (get_attrs fd));
        ( N.p_num_records,
          Value.Int (Stats.select_cardinality catalog ~input:(get_card fd) pred)
        );
        (N.p_tuple_size, Value.Int (get_size fd));
      ]
  in
  Expr.operator N.ret desc [ file catalog name ]

let join catalog ~pred left right =
  let dl = Expr.descriptor left and dr = Expr.descriptor right in
  let desc =
    Descriptor.of_list
      [
        (N.p_join_predicate, Value.Pred pred);
        ( N.p_attributes,
          Value.Attrs (Helpers.F.union_attrs (get_attrs dl) (get_attrs dr)) );
        ( N.p_num_records,
          Value.Int
            (Stats.join_cardinality catalog ~left:(get_card dl)
               ~right:(get_card dr) pred) );
        (N.p_tuple_size, Value.Int (get_size dl + get_size dr));
      ]
  in
  Expr.operator N.join desc [ left; right ]

let select catalog ~pred input =
  let di = Expr.descriptor input in
  let desc =
    Descriptor.of_list
      [
        (N.p_selection_predicate, Value.Pred pred);
        (N.p_attributes, Value.Attrs (get_attrs di));
        ( N.p_num_records,
          Value.Int (Stats.select_cardinality catalog ~input:(get_card di) pred)
        );
        (N.p_tuple_size, Value.Int (get_size di));
      ]
  in
  Expr.operator N.select desc [ input ]

let project _catalog ~attrs input =
  let di = Expr.descriptor input in
  let all = get_attrs di in
  let attrs = List.sort_uniq Attribute.compare attrs in
  let size =
    let n_all = max 1 (List.length all) in
    max 8 (get_size di * List.length attrs / n_all)
  in
  let desc =
    Descriptor.of_list
      [
        (N.p_projected_attributes, Value.Attrs attrs);
        (N.p_attributes, Value.Attrs attrs);
        (N.p_num_records, Value.Int (get_card di));
        (N.p_tuple_size, Value.Int size);
      ]
  in
  Expr.operator N.project desc [ input ]

let mat catalog ~attr input =
  let di = Expr.descriptor input in
  let added = Helpers.F.mat_added_attrs catalog [ attr ] in
  let desc =
    Descriptor.of_list
      [
        (N.p_mat_attribute, Value.Attrs [ attr ]);
        (N.p_attributes, Value.Attrs (Helpers.F.union_attrs (get_attrs di) added));
        (N.p_num_records, Value.Int (get_card di));
        ( N.p_tuple_size,
          Value.Int (get_size di + Helpers.F.mat_added_size catalog [ attr ]) );
      ]
  in
  Expr.operator N.mat desc [ input ]

let unnest catalog ~attr input =
  let di = Expr.descriptor input in
  let fanout = Helpers.F.unnest_fanout catalog [ attr ] in
  let desc =
    Descriptor.of_list
      [
        (N.p_unnest_attribute, Value.Attrs [ attr ]);
        (N.p_attributes, Value.Attrs (get_attrs di));
        (N.p_num_records, Value.Int (get_card di * fanout));
        (N.p_tuple_size, Value.Int (get_size di));
      ]
  in
  Expr.operator N.unnest desc [ input ]

let sort _catalog ~order input =
  let di = Expr.descriptor input in
  let desc = Descriptor.set di N.p_tuple_order (Value.Order order) in
  let desc = Descriptor.remove desc N.p_selection_predicate in
  let desc = Descriptor.remove desc N.p_join_predicate in
  Expr.operator N.sort desc [ input ]
