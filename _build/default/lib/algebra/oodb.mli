(** The Texas Instruments Open OODB query optimizer rule set (paper §4).

    The algebra of §4.3: five relational operators — SELECT, PROJECT, JOIN,
    RET, UNNEST — and the object-oriented MAT (materialize, a
    pointer-chasing operator), plus the enforcer-operator SORT.  Eight
    algorithms: File_scan, Index_scan, Hash_join, Pointer_join, Filter,
    Project_alg, Mat_deref and Unnest_scan (Mat_deref appears in two
    I-rules with different property mappings — the per-rule advantage of
    §3.2.2), plus Merge_sort and Null.

    The Prairie rule set has {b 22 T-rules and 11 I-rules}; the P2V
    pre-processor compacts it to {b 17 trans_rules, 9 impl_rules and 1
    enforcer} — the arithmetic reported in §4.2. *)

val ruleset : Prairie_catalog.Catalog.t -> Prairie.Ruleset.t

(** {1 Query constructors} — re-exports of {!Init}. *)

val ret :
  ?pred:Prairie_value.Predicate.t ->
  Prairie_catalog.Catalog.t ->
  string ->
  Prairie.Expr.t

val join :
  Prairie_catalog.Catalog.t ->
  pred:Prairie_value.Predicate.t ->
  Prairie.Expr.t ->
  Prairie.Expr.t ->
  Prairie.Expr.t

val select :
  Prairie_catalog.Catalog.t ->
  pred:Prairie_value.Predicate.t ->
  Prairie.Expr.t ->
  Prairie.Expr.t

val project :
  Prairie_catalog.Catalog.t ->
  attrs:Prairie_value.Attribute.t list ->
  Prairie.Expr.t ->
  Prairie.Expr.t

val mat :
  Prairie_catalog.Catalog.t ->
  attr:Prairie_value.Attribute.t ->
  Prairie.Expr.t ->
  Prairie.Expr.t

val unnest :
  Prairie_catalog.Catalog.t ->
  attr:Prairie_value.Attribute.t ->
  Prairie.Expr.t ->
  Prairie.Expr.t

val sort :
  Prairie_catalog.Catalog.t ->
  order:Prairie_value.Order.t ->
  Prairie.Expr.t ->
  Prairie.Expr.t
