(** Helper functions for rule actions.

    The paper's rules call helpers such as [is_associative], [cardinality]
    and [union] (§2.3).  This module provides the full helper vocabulary of
    both concrete algebras, closed over a catalog for statistics.  The same
    typed OCaml functions are exported directly (sub-module {!F}) so the
    hand-coded Volcano rule set computes identical values. *)

module F : sig
  (** Typed forms, shared with hand-coded Volcano rules. *)

  val union_attrs :
    Prairie_value.Attribute.t list ->
    Prairie_value.Attribute.t list ->
    Prairie_value.Attribute.t list
  (** Sorted, duplicate-free union — canonical attribute lists make
      logically-equal descriptors structurally equal, which the memo's
      duplicate detection relies on. *)

  val canonical_and :
    Prairie_value.Predicate.t ->
    Prairie_value.Predicate.t ->
    Prairie_value.Predicate.t
  (** Conjunction in canonical form (conjuncts sorted, deduplicated) so that
      predicates merged along different rewriting paths compare equal.
      What the [and_pred] helper computes. *)

  val lhs_join_order :
    Prairie_value.Predicate.t ->
    Prairie_value.Attribute.t list ->
    Prairie_value.Order.t
  (** Sort order on the left input that enables a merge join: the
      equality-pair attributes belonging to the left attribute set. *)

  val rhs_join_order :
    Prairie_value.Predicate.t ->
    Prairie_value.Attribute.t list ->
    Prairie_value.Order.t

  val is_ref_join : Prairie_catalog.Catalog.t -> Prairie_value.Predicate.t -> bool
  (** Does some equality pair follow an inter-object reference (a ref
      attribute equated with an attribute of its target class)?  The
      applicability test of Pointer_join. *)

  val indexed_selection :
    Prairie_value.Predicate.t -> Prairie_value.Attribute.t list -> bool
  (** Does the selection predicate contain an equality-with-constant
      conjunct on one of the indexed attributes?  The applicability test of
      Index_scan. *)

  val index_order :
    Prairie_value.Predicate.t ->
    Prairie_value.Attribute.t list ->
    Prairie_value.Order.t
  (** Output order of the index scan chosen by {!indexed_selection}. *)

  val indexed_selectivity :
    Prairie_catalog.Catalog.t ->
    Prairie_value.Predicate.t ->
    Prairie_value.Attribute.t list ->
    float
  (** Selectivity of the index-matched conjunct alone. *)

  val mat_added_attrs :
    Prairie_catalog.Catalog.t ->
    Prairie_value.Attribute.t list ->
    Prairie_value.Attribute.t list
  (** Attributes the MAT operator adds: the attributes of the class its
      reference attribute points to. *)

  val mat_added_size : Prairie_catalog.Catalog.t -> Prairie_value.Attribute.t list -> int

  val unnest_fanout : Prairie_catalog.Catalog.t -> Prairie_value.Attribute.t list -> int
  (** Average cardinality of the set-valued attribute (its [distinct]
      statistic). *)
end

val env : Prairie_catalog.Catalog.t -> Prairie.Helper_env.t
(** The full helper environment: {!Prairie.Helper_env.builtins} plus the
    algebra helpers listed below.

    Predicates and attributes: [union_attrs], [pred_refs_only],
    [pred_is_true], [has_conjuncts], [first_conjunct], [rest_conjuncts],
    [and_pred], [is_equijoin], [is_ref_join].

    Statistics: [join_cardinality], [select_cardinality],
    [unnest_cardinality], [mat_added_attrs], [mat_added_size],
    [unnest_fanout].

    Orders and indexes: [lhs_join_order], [rhs_join_order],
    [indexed_selection], [index_order].

    Costs (delegating to {!Cost_model}): [cost_file_scan],
    [cost_index_scan], [cost_merge_join], [cost_hash_join],
    [cost_pointer_join], [cost_sort], [cost_filter], [cost_project],
    [cost_mat_ordered], [cost_mat_unordered], [cost_unnest]. *)
