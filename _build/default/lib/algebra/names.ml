(* Central name constants for operators, algorithms and descriptor
   properties, so rule definitions, initializers, the executor and tests
   cannot drift apart on spelling. *)

(* abstract operators *)
let ret = "RET"
let join = "JOIN"
let jopr = "JOPR" (* join-with-sorted-inputs, introduced by sort_intro *)
let sort = "SORT"
let select = "SELECT"
let project = "PROJECT"
let mat = "MAT"
let unnest = "UNNEST"
let agg = "AGG" (* aggregate add-on: group-and-count *)
let ship = "SHIP" (* distributed algebra: move a stream between sites *)

(* algorithms *)
let file_scan = "File_scan"
let index_scan = "Index_scan"
let nested_loops = "Nested_loops"
let merge_join = "Merge_join"
let hash_join = "Hash_join"
let pointer_join = "Pointer_join"
let merge_sort = "Merge_sort"
let filter = "Filter"
let project_alg = "Project_alg"
let mat_deref = "Mat_deref"
let unnest_scan = "Unnest_scan"
let hash_agg = "Hash_agg"
let sort_agg = "Sort_agg"
let ship_alg = "Ship"
let null_alg = Prairie.Irule.null_algorithm

(* descriptor properties *)
let p_attributes = "attributes"
let p_num_records = "num_records"
let p_tuple_size = "tuple_size"
let p_tuple_order = "tuple_order"
let p_selection_predicate = "selection_predicate"
let p_join_predicate = "join_predicate"
let p_projected_attributes = "projected_attributes"
let p_mat_attribute = "mat_attribute"
let p_unnest_attribute = "unnest_attribute"
let p_indexes = "indexes"
let p_file_name = "file_name"
let p_cost = "cost"
let p_group_attributes = "group_attributes"
let p_site = "site" (* distributed algebra: where the stream lives *)
