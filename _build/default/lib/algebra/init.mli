(** Initialized operator trees (paper §2.2).

    "There are certain annotations that are known before any optimization is
    begun; these can be computed at the time the operator tree is
    initialized."  These smart constructors build operator trees whose
    descriptors carry those annotations: additional parameters (predicates,
    materialized attributes, orders) and derived statistics (attributes,
    cardinality, tuple size).

    The computations here deliberately call the same {!Helpers.F} and
    {!Prairie_catalog.Stats} functions as the T-rule actions, so a logical
    expression reached by rewriting has exactly the same descriptor as the
    same expression built directly — which is what the memo's duplicate
    detection needs. *)

val file_descriptor : Prairie_catalog.Catalog.t -> string -> Prairie.Descriptor.t
(** Leaf annotations: [attributes] (sorted), [num_records], [tuple_size],
    [indexes] (the indexed attributes), [file_name].
    @raise Not_found on unknown files. *)

val file : Prairie_catalog.Catalog.t -> string -> Prairie.Expr.t

val ret :
  ?pred:Prairie_value.Predicate.t ->
  Prairie_catalog.Catalog.t ->
  string ->
  Prairie.Expr.t
(** [RET] of a stored file with an optional selection predicate (default
    [True]). *)

val join :
  Prairie_catalog.Catalog.t ->
  pred:Prairie_value.Predicate.t ->
  Prairie.Expr.t ->
  Prairie.Expr.t ->
  Prairie.Expr.t

val select :
  Prairie_catalog.Catalog.t ->
  pred:Prairie_value.Predicate.t ->
  Prairie.Expr.t ->
  Prairie.Expr.t

val project :
  Prairie_catalog.Catalog.t ->
  attrs:Prairie_value.Attribute.t list ->
  Prairie.Expr.t ->
  Prairie.Expr.t

val mat :
  Prairie_catalog.Catalog.t ->
  attr:Prairie_value.Attribute.t ->
  Prairie.Expr.t ->
  Prairie.Expr.t
(** Materialize the object referenced by [attr] (a reference attribute):
    the target class's attributes are added to the stream. *)

val unnest :
  Prairie_catalog.Catalog.t ->
  attr:Prairie_value.Attribute.t ->
  Prairie.Expr.t ->
  Prairie.Expr.t

val sort :
  Prairie_catalog.Catalog.t ->
  order:Prairie_value.Order.t ->
  Prairie.Expr.t ->
  Prairie.Expr.t
