(** Automatic T-rule generation from algebraic property declarations.

    The paper's §6 names "automatically generating Prairie rule sets" as
    future work.  This module does it for the transformation-rule half: the
    user declares the {e algebraic properties} of the operators —
    commutativity, associativity, which unary predicate-operators push
    through which operators, which they fold into, which operators an
    enforcer may be introduced over — and the generator mechanically emits
    the corresponding T-rules with their statistics-maintenance actions
    (the property-mapping statements that §1 identifies as the major source
    of user effort and error).

    Assumptions, checked against the shipped rule sets by tests: the
    descriptor schema carries [attributes], [num_records], [tuple_size] and
    the named predicate properties; binary operators combine statistics
    join-style ([join_cardinality], size sums, attribute unions); unary
    predicate-operators filter ([select_cardinality]).  I-rules still come
    from the user — implementation choice is cost-model knowledge no
    algebraic flag captures. *)

type binary_op = {
  bin_name : string;  (** e.g. JOIN *)
  bin_pred : string;  (** its predicate property, e.g. [join_predicate] *)
  bin_commutative : bool;
  bin_associative : bool;
}

type filter_op = {
  flt_name : string;  (** e.g. SELECT *)
  flt_pred : string;  (** e.g. [selection_predicate] *)
  flt_pushes_into : (string * [ `Left | `Right | `Both ]) list;
      (** binary operators the filter pushes through, and on which sides *)
  flt_absorbs_into : string list;
      (** unary operators whose own predicate it folds into, e.g. RET *)
  flt_splits : bool;  (** generate conjunct split/merge/commute rules *)
}

type enforcer_intro = {
  enf_operator : string;  (** the enforcer-operator, e.g. SORT *)
  enf_property : string;  (** e.g. [tuple_order] *)
  enf_over : (string * int) list;
      (** operators (with arity) to generate introduction rules over —
          footnote 7's "one additional T-rule per operator" *)
}

type spec = {
  binaries : binary_op list;
  filters : filter_op list;
  enforcers : enforcer_intro list;
}

val trules : spec -> Prairie.Trule.t list
(** The generated transformation rules, in a deterministic order with
    systematic names ([gen_commute_JOIN], [gen_push_SELECT_JOIN_left],
    ...). *)

val ruleset :
  ?name:string ->
  helpers:Prairie.Helper_env.t ->
  irules:Prairie.Irule.t list ->
  spec ->
  Prairie.Ruleset.t
(** Package generated T-rules with user-provided I-rules and the standard
    property schema. *)

val relational_spec : spec
(** The declaration that regenerates the §2 relational T-rules. *)

val oodb_select_join_spec : spec
(** The declaration covering the SELECT/JOIN/RET fragment of the Open OODB
    rule set (MAT and UNNEST interactions are genuinely OODB-specific
    knowledge and stay hand-written). *)
