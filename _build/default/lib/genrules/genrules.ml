module N = Prairie_algebra.Names
module B = Prairie_algebra.Build
open B

type binary_op = {
  bin_name : string;
  bin_pred : string;
  bin_commutative : bool;
  bin_associative : bool;
}

type filter_op = {
  flt_name : string;
  flt_pred : string;
  flt_pushes_into : (string * [ `Left | `Right | `Both ]) list;
  flt_absorbs_into : string list;
  flt_splits : bool;
}

type enforcer_intro = {
  enf_operator : string;
  enf_property : string;
  enf_over : (string * int) list;
}

type spec = {
  binaries : binary_op list;
  filters : filter_op list;
  enforcers : enforcer_intro list;
}

let true_pred =
  Prairie.Action.Const (Prairie_value.Value.Pred Prairie_value.Predicate.True)

(* clearing a property (descriptor normalization removes Null bindings)
   works for any enforced property type, where DONT_CARE is order-specific *)
let cleared = Prairie.Action.Const Prairie_value.Value.Null

(* ------------------------------------------------------------------ *)
(* binary operators                                                     *)
(* ------------------------------------------------------------------ *)

let commute_rule (b : binary_op) =
  trule
    ~name:("gen_commute_" ^ b.bin_name)
    ~lhs:(p b.bin_name "D3" [ v 1; v 2 ])
    ~rhs:(t b.bin_name "D4" [ tv 2; tv 1 ])
    ~post_test:[ copy "D4" "D3" ]
    ()

(* the two associativity directions share their statistics maintenance *)
let assoc_rule (b : binary_op) ~left =
  let name =
    "gen_assoc_" ^ b.bin_name ^ if left then "_left" else "_right"
  in
  let lhs, rhs, inner_a, inner_b, inner_card_a, inner_card_b =
    if left then
      ( p b.bin_name "D5" [ p b.bin_name "D4" [ v 1; v 2 ]; v 3 ],
        t b.bin_name "D7" [ tv 1; t b.bin_name "D6" [ tv 2; tv 3 ] ],
        "D2", "D3", "D2", "D3" )
    else
      ( p b.bin_name "D5" [ v 1; p b.bin_name "D4" [ v 2; v 3 ] ],
        t b.bin_name "D7" [ t b.bin_name "D6" [ tv 1; tv 2 ]; tv 3 ],
        "D1", "D2", "D1", "D2" )
  in
  trule ~name ~lhs ~rhs
    ~pre_test:
      [
        set "D6" N.p_attributes
          (c "union_attrs" [ inner_a $. N.p_attributes; inner_b $. N.p_attributes ]);
      ]
    ~test:
      (not_ (c "pred_is_true" [ "D5" $. b.bin_pred ])
      &&! c "pred_refs_only" [ "D5" $. b.bin_pred; "D6" $. N.p_attributes ])
    ~post_test:
      [
        set "D6" b.bin_pred ("D5" $. b.bin_pred);
        set "D6" N.p_num_records
          (c "join_cardinality"
             [
               inner_card_a $. N.p_num_records;
               inner_card_b $. N.p_num_records;
               "D5" $. b.bin_pred;
             ]);
        set "D6" N.p_tuple_size
          ((inner_a $. N.p_tuple_size) +! (inner_b $. N.p_tuple_size));
        copy "D7" "D5";
        set "D7" b.bin_pred ("D4" $. b.bin_pred);
      ]
    ()

(* ------------------------------------------------------------------ *)
(* filter (unary predicate) operators                                   *)
(* ------------------------------------------------------------------ *)

let push_rule (f : filter_op) bin ~left =
  let side = if left then "left" else "right" in
  let name = Printf.sprintf "gen_push_%s_%s_%s" f.flt_name bin side in
  let rhs =
    if left then t bin "D6" [ t f.flt_name "D5" [ tv 1 ]; tv 2 ]
    else t bin "D6" [ tv 1; t f.flt_name "D5" [ tv 2 ] ]
  in
  let input = if left then "D1" else "D2" in
  trule ~name
    ~lhs:(p f.flt_name "D4" [ p bin "D3" [ v 1; v 2 ] ])
    ~rhs
    ~test:
      (not_ (c "pred_is_true" [ "D4" $. f.flt_pred ])
      &&! c "pred_refs_only" [ "D4" $. f.flt_pred; input $. N.p_attributes ])
    ~post_test:
      [
        set "D5" f.flt_pred ("D4" $. f.flt_pred);
        set "D5" N.p_attributes (input $. N.p_attributes);
        set "D5" N.p_num_records
          (c "select_cardinality" [ input $. N.p_num_records; "D4" $. f.flt_pred ]);
        set "D5" N.p_tuple_size (input $. N.p_tuple_size);
        copy "D6" "D3";
        set "D6" N.p_num_records ("D4" $. N.p_num_records);
      ]
    ()

let absorb_rule (f : filter_op) target =
  trule
    ~name:(Printf.sprintf "gen_absorb_%s_%s" f.flt_name target)
    ~lhs:(p f.flt_name "D4" [ p target "D3" [ v 1 ] ])
    ~rhs:(t target "D5" [ tv 1 ])
    ~post_test:
      [
        copy "D5" "D3";
        set "D5" f.flt_pred
          (c "and_pred" [ "D3" $. f.flt_pred; "D4" $. f.flt_pred ]);
        set "D5" N.p_num_records ("D4" $. N.p_num_records);
      ]
    ()

let split_rules (f : filter_op) =
  [
    trule
      ~name:("gen_split_" ^ f.flt_name)
      ~lhs:(p f.flt_name "D2" [ v 1 ])
      ~rhs:(t f.flt_name "D4" [ t f.flt_name "D3" [ tv 1 ] ])
      ~test:(c "has_conjuncts" [ "D2" $. f.flt_pred ])
      ~post_test:
        [
          set "D3" f.flt_pred (c "rest_conjuncts" [ "D2" $. f.flt_pred ]);
          set "D3" N.p_attributes ("D1" $. N.p_attributes);
          set "D3" N.p_num_records
            (c "select_cardinality" [ "D1" $. N.p_num_records; "D3" $. f.flt_pred ]);
          set "D3" N.p_tuple_size ("D1" $. N.p_tuple_size);
          copy "D4" "D2";
          set "D4" f.flt_pred (c "first_conjunct" [ "D2" $. f.flt_pred ]);
        ]
      ();
    trule
      ~name:("gen_merge_" ^ f.flt_name)
      ~lhs:(p f.flt_name "D4" [ p f.flt_name "D3" [ v 1 ] ])
      ~rhs:(t f.flt_name "D5" [ tv 1 ])
      ~post_test:
        [
          copy "D5" "D4";
          set "D5" f.flt_pred
            (c "and_pred" [ "D4" $. f.flt_pred; "D3" $. f.flt_pred ]);
        ]
      ();
    trule
      ~name:("gen_commute_" ^ f.flt_name)
      ~lhs:(p f.flt_name "D4" [ p f.flt_name "D3" [ v 1 ] ])
      ~rhs:(t f.flt_name "D6" [ t f.flt_name "D5" [ tv 1 ] ])
      ~post_test:
        [
          copy "D5" "D3";
          set "D5" f.flt_pred ("D4" $. f.flt_pred);
          set "D5" N.p_num_records
            (c "select_cardinality" [ "D1" $. N.p_num_records; "D4" $. f.flt_pred ]);
          copy "D6" "D4";
          set "D6" f.flt_pred ("D3" $. f.flt_pred);
        ]
      ();
  ]

(* ------------------------------------------------------------------ *)
(* enforcer introduction (footnote 7)                                   *)
(* ------------------------------------------------------------------ *)

let enforcer_rules (e : enforcer_intro) =
  List.map
    (fun (op, arity) ->
      let name = Printf.sprintf "gen_intro_%s_%s" e.enf_operator op in
      match arity with
      | 1 ->
        trule ~name
          ~lhs:(p op "D2" [ v 1 ])
          ~rhs:(t e.enf_operator "D4" [ t op "D3" [ tv 1 ] ])
          ~test:(not_ (c "is_null" [ "D2" $. e.enf_property ]))
          ~post_test:
            [
              copy "D4" "D2";
              set "D4" N.p_selection_predicate true_pred;
              set "D4" N.p_join_predicate true_pred;
              copy "D3" "D2";
              set "D3" e.enf_property cleared;
            ]
          ()
      | 2 ->
        trule ~name
          ~lhs:(p op "D3" [ v 1; v 2 ])
          ~rhs:(t e.enf_operator "D5" [ t op "D4" [ tv 1; tv 2 ] ])
          ~test:(not_ (c "is_null" [ "D3" $. e.enf_property ]))
          ~post_test:
            [
              copy "D5" "D3";
              set "D5" N.p_selection_predicate true_pred;
              set "D5" N.p_join_predicate true_pred;
              copy "D4" "D3";
              set "D4" e.enf_property cleared;
            ]
          ()
      | n ->
        invalid_arg
          (Printf.sprintf "Genrules: enforcer introduction over arity-%d \
                           operator %s is not supported" n op))
    e.enf_over

let trules spec =
  List.concat_map
    (fun b ->
      (if b.bin_commutative then [ commute_rule b ] else [])
      @
      if b.bin_associative then
        [ assoc_rule b ~left:true; assoc_rule b ~left:false ]
      else [])
    spec.binaries
  @ List.concat_map
      (fun f ->
        (if f.flt_splits then split_rules f else [])
        @ List.concat_map
            (fun (bin, sides) ->
              match sides with
              | `Left -> [ push_rule f bin ~left:true ]
              | `Right -> [ push_rule f bin ~left:false ]
              | `Both -> [ push_rule f bin ~left:true; push_rule f bin ~left:false ])
            f.flt_pushes_into
        @ List.map (absorb_rule f) f.flt_absorbs_into)
      spec.filters
  @ List.concat_map enforcer_rules spec.enforcers

let ruleset ?(name = "generated") ~helpers ~irules spec =
  Prairie.Ruleset.make ~properties:Prairie_algebra.Props.schema
    ~trules:(trules spec) ~irules ~helpers name

let relational_spec =
  {
    binaries =
      [
        {
          bin_name = N.join;
          bin_pred = N.p_join_predicate;
          bin_commutative = true;
          bin_associative = true;
        };
      ];
    filters = [];
    enforcers =
      [
        {
          enf_operator = N.sort;
          enf_property = N.p_tuple_order;
          enf_over = [ (N.ret, 1); (N.join, 2) ];
        };
      ];
  }

let oodb_select_join_spec =
  {
    binaries =
      [
        {
          bin_name = N.join;
          bin_pred = N.p_join_predicate;
          bin_commutative = true;
          bin_associative = true;
        };
      ];
    filters =
      [
        {
          flt_name = N.select;
          flt_pred = N.p_selection_predicate;
          flt_pushes_into = [ (N.join, `Both) ];
          flt_absorbs_into = [ N.ret ];
          flt_splits = true;
        };
      ];
    enforcers =
      [
        {
          enf_operator = N.sort;
          enf_property = N.p_tuple_order;
          enf_over = [ (N.ret, 1); (N.select, 1); (N.join, 2) ];
        };
      ];
  }
