lib/genrules/genrules.mli: Prairie
