lib/genrules/genrules.ml: List Prairie Prairie_algebra Prairie_value Printf
