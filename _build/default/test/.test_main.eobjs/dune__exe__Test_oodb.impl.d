test/test_oodb.ml: Alcotest Float List Option Prairie Prairie_optimizers Prairie_volcano Prairie_workload Printf
