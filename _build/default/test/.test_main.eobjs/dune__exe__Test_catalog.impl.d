test/test_catalog.ml: Alcotest List Prairie_catalog Prairie_value QCheck2 QCheck_alcotest Test_value
