test/test_p2v.ml: Alcotest Float List Prairie Prairie_algebra Prairie_catalog Prairie_p2v Prairie_util Prairie_value Prairie_volcano QCheck2 QCheck_alcotest String
