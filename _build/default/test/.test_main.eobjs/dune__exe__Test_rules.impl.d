test/test_rules.ml: Alcotest List Prairie Prairie_algebra Prairie_catalog Prairie_value
