test/test_memo.ml: Alcotest List Prairie Prairie_value Prairie_volcano
