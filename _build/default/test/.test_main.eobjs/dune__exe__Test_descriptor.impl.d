test/test_descriptor.ml: Alcotest List Prairie Prairie_value QCheck2 QCheck_alcotest Test_value
