test/test_dsl.ml: Alcotest Format List Prairie Prairie_algebra Prairie_catalog Prairie_dsl Prairie_p2v Prairie_value Prairie_volcano Prairie_workload Printf QCheck2 QCheck_alcotest Sys
