test/test_value.ml: Alcotest Hashtbl List Prairie_value QCheck2 QCheck_alcotest
