test/test_eval.ml: Alcotest List Option Prairie Prairie_algebra Prairie_catalog Prairie_value String
