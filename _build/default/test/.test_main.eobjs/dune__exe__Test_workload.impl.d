test/test_workload.ml: Alcotest List Prairie Prairie_catalog Prairie_value Prairie_workload
