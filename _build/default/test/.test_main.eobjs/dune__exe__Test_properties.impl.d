test/test_properties.ml: List Prairie Prairie_value Prairie_volcano QCheck2 QCheck_alcotest Set
