test/test_pattern.ml: Alcotest List Option Prairie Prairie_value String
