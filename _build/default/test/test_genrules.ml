(* The §6 rule generator: declared algebraic properties regenerate the
   hand-written transformation rules. *)

module G = Prairie_genrules.Genrules
module Ruleset = Prairie.Ruleset
module P2v = Prairie_p2v
module Search = Prairie_volcano.Search
module Plan = Prairie_volcano.Plan
module W = Prairie_workload
module Opt = Prairie_optimizers.Optimizers
module Rel = Prairie_algebra.Relational
module Oodb = Prairie_algebra.Oodb
module Catalog = Prairie_catalog.Catalog
module P = Prairie_value.Predicate
module A = Prairie_value.Attribute
module D = Prairie.Descriptor
module V = Prairie_value.Value
module O = Prairie_value.Order

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let attr o n = A.make ~owner:o ~name:n
let eq a b = P.Cmp (P.Eq, P.T_attr a, P.T_attr b)

let catalog =
  Catalog.of_files
    [
      Rel.relation ~name:"R1" ~cardinality:900 ~indexes:[ "a" ] [ ("a", 30); ("b", 10) ];
      Rel.relation ~name:"R2" ~cardinality:400 [ ("a", 30); ("c", 5) ];
      Rel.relation ~name:"R3" ~cardinality:80 [ ("c", 5) ];
    ]

let helpers = Prairie_algebra.Helpers.env catalog

(* generated T-rules + the hand-written relational I-rules *)
let generated_relational () =
  let handwritten = Rel.ruleset catalog in
  G.ruleset ~name:"gen_relational" ~helpers
    ~irules:handwritten.Ruleset.irules G.relational_spec

let run ruleset expr ~required =
  let tr = P2v.Translate.translate ruleset in
  let ctx = Search.create tr.P2v.Translate.volcano in
  match Search.optimize ~required ctx expr with
  | Some p -> (Plan.cost p, Search.group_count ctx)
  | None -> (infinity, Search.group_count ctx)

let three_way () =
  Rel.join catalog
    ~pred:(eq (attr "R2" "c") (attr "R3" "c"))
    (Rel.join catalog
       ~pred:(eq (attr "R1" "a") (attr "R2" "a"))
       (Rel.ret catalog "R1") (Rel.ret catalog "R2"))
    (Rel.ret catalog "R3")

let structure_tests =
  [
    Alcotest.test_case "generated relational set validates" `Quick (fun () ->
        check "valid" true (Ruleset.validate (generated_relational ()) = Ok ()));
    Alcotest.test_case "expected rule inventory" `Quick (fun () ->
        let names =
          List.map (fun (r : Prairie.Trule.t) -> r.Prairie.Trule.name)
            (G.trules G.relational_spec)
        in
        check "commute" true (List.mem "gen_commute_JOIN" names);
        check "assoc both ways" true
          (List.mem "gen_assoc_JOIN_left" names && List.mem "gen_assoc_JOIN_right" names);
        check "intro over RET and JOIN" true
          (List.mem "gen_intro_SORT_RET" names && List.mem "gen_intro_SORT_JOIN" names);
        check_int "five rules" 5 (List.length names));
    Alcotest.test_case "oodb fragment inventory" `Quick (fun () ->
        let names =
          List.map (fun (r : Prairie.Trule.t) -> r.Prairie.Trule.name)
            (G.trules G.oodb_select_join_spec)
        in
        check "split family" true
          (List.mem "gen_split_SELECT" names && List.mem "gen_merge_SELECT" names);
        check "pushdown both sides" true
          (List.mem "gen_push_SELECT_JOIN_left" names
          && List.mem "gen_push_SELECT_JOIN_right" names);
        check "absorb" true (List.mem "gen_absorb_SELECT_RET" names);
        (* 3 join rules + 6 select rules + 3 intro rules *)
        check_int "twelve rules" 12 (List.length names));
    Alcotest.test_case "unsupported enforcer arity rejected" `Quick (fun () ->
        check "raises" true
          (try
             ignore
               (G.trules
                  {
                    G.binaries = [];
                    filters = [];
                    enforcers =
                      [ { G.enf_operator = "SORT"; enf_property = "tuple_order"; enf_over = [ ("TERNARY", 3) ] } ];
                  });
             false
           with Invalid_argument _ -> true));
  ]

let equivalence_tests =
  [
    Alcotest.test_case "generated == hand-written on a 3-way join" `Quick
      (fun () ->
        (* The merge-join enabler (JOIN ==> JOPR(SORT, SORT)) encodes
           implementation knowledge no algebraic flag captures, so it is
           not generatable; compare against the hand-written set with that
           one rule removed. *)
        let handwritten = Rel.ruleset catalog in
        let baseline =
          {
            handwritten with
            Ruleset.trules =
              List.filter
                (fun (r : Prairie.Trule.t) ->
                  r.Prairie.Trule.name <> "sort_intro_merge_join")
                handwritten.Ruleset.trules;
          }
        in
        let gen_cost, gen_groups = run (generated_relational ()) (three_way ()) ~required:D.empty in
        let base_cost, base_groups = run baseline (three_way ()) ~required:D.empty in
        Alcotest.(check (float 1e-6)) "cost" base_cost gen_cost;
        check_int "same search space" base_groups gen_groups;
        (* and with the full hand-written set (merge join available) the
           generated set can only be equal or worse *)
        let full_cost, _ = run handwritten (three_way ()) ~required:D.empty in
        check "hand-written at least as good" true (full_cost <= gen_cost +. 1e-9));
    Alcotest.test_case "generated set supports required orders" `Quick
      (fun () ->
        let required =
          D.of_list [ ("tuple_order", V.Order (O.sorted_on (attr "R1" "b"))) ]
        in
        let gen_cost, _ = run (generated_relational ()) (three_way ()) ~required in
        check "finite" true (Float.is_finite gen_cost));
    Alcotest.test_case "generated OODB fragment == hand-written on E3" `Quick
      (fun () ->
        (* on a SELECT-over-joins query the MAT/UNNEST rules are inert, so
           the generated fragment must reach the same optimum *)
        let inst = W.Queries.instance W.Queries.Q6 ~joins:2 ~seed:31 in
        let cat = inst.W.Queries.catalog in
        let handwritten = Oodb.ruleset cat in
        let generated =
          G.ruleset ~name:"gen_oodb" ~helpers:(Prairie_algebra.Helpers.env cat)
            ~irules:handwritten.Ruleset.irules G.oodb_select_join_spec
        in
        let gen_cost, _ = run generated inst.W.Queries.expr ~required:D.empty in
        let r = Opt.optimize (Opt.oodb_prairie cat) inst.W.Queries.expr in
        Alcotest.(check (float 1e-6)) "cost" r.Opt.cost gen_cost);
    Alcotest.test_case "generated rules P2V-merge like hand-written ones"
      `Quick (fun () ->
        let m = P2v.Merge.merge (generated_relational ()) in
        (* the two intro rules vanish; commute + assoc*2 remain *)
        check_int "three trans" 3 (P2v.Merge.trans_rule_count m);
        check_int "one enforcer" 1 (P2v.Merge.enforcer_count m));
  ]

let suites =
  [
    ("genrules.structure", structure_tests);
    ("genrules.equivalence", equivalence_tests);
  ]
