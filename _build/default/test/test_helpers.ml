(* The algebra helper functions and the cost model. *)

module H = Prairie.Helper_env
module F = Prairie_algebra.Helpers.F
module CM = Prairie_algebra.Cost_model
module V = Prairie_value.Value
module A = Prairie_value.Attribute
module P = Prairie_value.Predicate
module O = Prairie_value.Order
module SF = Prairie_catalog.Stored_file
module Catalog = Prairie_catalog.Catalog

let check = Alcotest.(check bool)
let checkf = Alcotest.(check (float 1e-9))
let attr o n = A.make ~owner:o ~name:n

let catalog =
  Catalog.of_files
    [
      SF.make ~name:"C1" ~cardinality:100
        [
          SF.column ~distinct:100 "C1" "oid";
          SF.column ~distinct:10 ~ref_to:"C2" "C1" "r";
          SF.column ~distinct:8 ~set_valued:true "C1" "kids";
        ];
      SF.make ~name:"C2" ~cardinality:40 ~tuple_size:64
        [ SF.column ~distinct:40 "C2" "oid"; SF.column ~distinct:5 "C2" "x" ];
    ]

let env = Prairie_algebra.Helpers.env catalog
let call = H.call env
let eq a b = P.Cmp (P.Eq, P.T_attr a, P.T_attr b)

let fn_tests =
  [
    Alcotest.test_case "union_attrs sorts and deduplicates" `Quick (fun () ->
        let u = F.union_attrs [ attr "B" "x"; attr "A" "y" ] [ attr "A" "y"; attr "A" "a" ] in
        Alcotest.(check (list string))
          "sorted unique" [ "A.a"; "A.y"; "B.x" ]
          (List.map A.to_string u));
    Alcotest.test_case "canonical_and is order-insensitive" `Quick (fun () ->
        let p1 = P.Cmp (P.Eq, P.T_attr (attr "C1" "oid"), P.T_int 1) in
        let p2 = P.Cmp (P.Eq, P.T_attr (attr "C2" "x"), P.T_int 2) in
        check "commutes" true
          (P.equal (F.canonical_and p1 p2) (F.canonical_and p2 p1)));
    Alcotest.test_case "join orders pick the matching side" `Quick (fun () ->
        let pred = eq (attr "C1" "r") (attr "C2" "oid") in
        check "lhs" true
          (O.equal
             (F.lhs_join_order pred [ attr "C1" "r"; attr "C1" "oid" ])
             (O.sorted_on (attr "C1" "r")));
        check "rhs" true
          (O.equal
             (F.rhs_join_order pred [ attr "C2" "oid"; attr "C2" "x" ])
             (O.sorted_on (attr "C2" "oid"))));
    Alcotest.test_case "is_ref_join follows catalog references" `Quick (fun () ->
        check "ref join" true (F.is_ref_join catalog (eq (attr "C1" "r") (attr "C2" "oid")));
        check "plain equijoin" false
          (F.is_ref_join catalog (eq (attr "C1" "oid") (attr "C2" "x"))));
    Alcotest.test_case "indexed_selection and index_order" `Quick (fun () ->
        let sel = P.Cmp (P.Eq, P.T_attr (attr "C1" "oid"), P.T_int 3) in
        check "match" true (F.indexed_selection sel [ attr "C1" "oid" ]);
        check "no match" false (F.indexed_selection sel [ attr "C1" "r" ]);
        check "range does not use index" false
          (F.indexed_selection
             (P.Cmp (P.Lt, P.T_attr (attr "C1" "oid"), P.T_int 3))
             [ attr "C1" "oid" ]);
        check "order" true
          (O.equal (F.index_order sel [ attr "C1" "oid" ]) (O.sorted_on (attr "C1" "oid"))));
    Alcotest.test_case "mat_added_attrs / size from the ref target" `Quick
      (fun () ->
        Alcotest.(check int) "two attrs" 2 (List.length (F.mat_added_attrs catalog [ attr "C1" "r" ]));
        Alcotest.(check int) "size" 64 (F.mat_added_size catalog [ attr "C1" "r" ]);
        Alcotest.(check int) "non-ref" 0 (F.mat_added_size catalog [ attr "C1" "oid" ]));
    Alcotest.test_case "unnest fanout is the distinct statistic" `Quick (fun () ->
        Alcotest.(check int) "8" 8 (F.unnest_fanout catalog [ attr "C1" "kids" ]));
  ]

let env_tests =
  [
    Alcotest.test_case "helpers tolerate Null (unset) arguments" `Quick (fun () ->
        check "pred_is_true on null" true
          (V.to_bool (call "pred_is_true" [ V.Null ]));
        check "indexed_selection on nulls" false
          (V.to_bool (call "indexed_selection" [ V.Null; V.Null ])));
    Alcotest.test_case "arity errors are reported" `Quick (fun () ->
        check "raises" true
          (try
             ignore (call "union_attrs" [ V.Attrs [] ]);
             false
           with H.Helper_error _ -> true));
    Alcotest.test_case "cost helpers delegate to the cost model" `Quick
      (fun () ->
        checkf "file scan"
          (CM.file_scan ~card:100 ~tuple_size:100)
          (V.to_float (call "cost_file_scan" [ V.Int 100; V.Int 100 ])));
    Alcotest.test_case "builtins: coalesce and is_null" `Quick (fun () ->
        check "coalesce picks first non-null" true
          (V.equal (H.call H.builtins "coalesce" [ V.Null; V.Str "x" ]) (V.Str "x"));
        check "coalesce keeps first" true
          (V.equal (H.call H.builtins "coalesce" [ V.Int 1; V.Int 2 ]) (V.Int 1));
        check "is_null" true (V.to_bool (H.call H.builtins "is_null" [ V.Null ]));
        check "is_null false" false (V.to_bool (H.call H.builtins "is_null" [ V.Int 0 ])));
    Alcotest.test_case "environment merge is right-biased" `Quick (fun () ->
        let left = H.add "f" (fun _ -> V.Int 1) H.empty in
        let right = H.add "f" (fun _ -> V.Int 2) (H.add "g" (fun _ -> V.Int 3) H.empty) in
        let m = H.merge left right in
        check "right wins" true (V.equal (H.call m "f" []) (V.Int 2));
        check "union" true (V.equal (H.call m "g" []) (V.Int 3)));
    Alcotest.test_case "ship cost is monotone and counts pages" `Quick
      (fun () ->
        check "monotone" true
          (CM.ship ~input_cost:1.0 ~card:1000 ~tuple_size:100 > 1.0);
        Alcotest.(check (float 1e-9))
          "formula"
          (5.0 +. (CM.network_page_factor *. CM.pages ~card:400 ~tuple_size:100))
          (CM.ship ~input_cost:5.0 ~card:400 ~tuple_size:100));
    Alcotest.test_case "builtins: log clamps at zero" `Quick (fun () ->
        checkf "log 0" 0.0 (V.to_float (H.call H.builtins "log" [ V.Float 0.0 ]));
        checkf "log2 1" 0.0 (V.to_float (H.call H.builtins "log2" [ V.Int 1 ])));
  ]

let cost_tests =
  [
    Alcotest.test_case "pages never go below one" `Quick (fun () ->
        checkf "one page" 1.0 (CM.pages ~card:1 ~tuple_size:8));
    Alcotest.test_case "nested loops formula (paper Fig 6)" `Quick (fun () ->
        checkf "outer + n*inner" 210.0
          (CM.nested_loops ~outer_cost:10.0 ~outer_card:100 ~inner_cost:2.0));
    Alcotest.test_case "merge sort formula (paper Fig 5)" `Quick (fun () ->
        checkf "n log n" (5.0 +. (CM.cpu_per_tuple *. 8.0 *. 3.0))
          (CM.merge_sort ~input_cost:5.0 ~card:8));
    Alcotest.test_case "every binary cost is monotone in its inputs" `Quick
      (fun () ->
        (* branch-and-bound soundness: cost >= sum of input costs *)
        let checks =
          [
            CM.hash_join ~left_cost:3.0 ~right_cost:4.0 ~left_card:10 ~right_card:10 >= 7.0;
            CM.merge_join ~left_cost:3.0 ~right_cost:4.0 ~left_card:10 ~right_card:10 >= 7.0;
            CM.pointer_join ~outer_cost:3.0 ~inner_cost:4.0 ~outer_card:10 >= 7.0;
            CM.nested_loops ~outer_cost:3.0 ~outer_card:1 ~inner_cost:4.0 >= 7.0;
          ]
        in
        check "all monotone" true (List.for_all Fun.id checks));
    Alcotest.test_case "batched MAT is cheaper than ordered MAT" `Quick
      (fun () ->
        check "cheaper" true
          (CM.mat_unordered ~input_cost:1.0 ~card:100
          < CM.mat_ordered ~input_cost:1.0 ~card:100));
    Alcotest.test_case "index scan beats a full scan when selective" `Quick
      (fun () ->
        check "beats" true
          (CM.index_scan ~card:10_000 ~tuple_size:120 ~selectivity:0.005
          < CM.file_scan ~card:10_000 ~tuple_size:120));
  ]

(* staged (compiled) actions must agree with the interpreter everywhere *)
let codegen_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"compiled translation == interpreted translation"
         ~count:20
         QCheck2.Gen.(pair (1 -- 6) (0 -- 1000))
         (fun (qn, seed) ->
           let q = Option.get (Prairie_workload.Queries.of_int qn) in
           let inst = Prairie_workload.Queries.instance q ~joins:2 ~seed in
           let module Opt = Prairie_optimizers.Optimizers in
           let c = Opt.optimize (Opt.oodb_prairie inst.Prairie_workload.Queries.catalog) inst.Prairie_workload.Queries.expr in
           let i =
             Opt.optimize
               (Opt.oodb_prairie_interpreted inst.Prairie_workload.Queries.catalog)
               inst.Prairie_workload.Queries.expr
           in
           Float.abs (c.Opt.cost -. i.Opt.cost) < 1e-9
           && Prairie_volcano.Search.group_count c.Opt.search
              = Prairie_volcano.Search.group_count i.Opt.search));
    Alcotest.test_case "compile-time static checks fire" `Quick (fun () ->
        check "unknown helper at compile time" true
          (try
             let (_ : Prairie.Pattern.Binding.t -> V.t) =
               Prairie.Compiled.expr H.builtins
                 (Prairie.Action.call "no_such_helper" [])
             in
             false
           with H.Unknown_helper _ -> true);
        check "protected assignment at compile time" true
          (try
             let (_ : Prairie.Pattern.Binding.t -> Prairie.Pattern.Binding.t) =
               Prairie.Compiled.stmts ~protected:[ "D1" ] H.builtins
                 [ Prairie.Action.Assign_prop ("D1", "x", Prairie.Action.int 1) ]
             in
             false
           with Prairie.Eval.Rule_error _ -> true));
  ]

let suites =
  [
    ("helpers.functions", fn_tests);
    ("helpers.environment", env_tests);
    ("helpers.cost_model", cost_tests);
    ("helpers.codegen", codegen_tests);
  ]
