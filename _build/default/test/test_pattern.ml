(* Patterns, templates, matching and instantiation. *)

module Pattern = Prairie.Pattern
module Binding = Prairie.Pattern.Binding
module Expr = Prairie.Expr
module D = Prairie.Descriptor
module V = Prairie_value.Value

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let desc n = D.of_list [ ("tag", V.Str n) ]
let leaf n = Expr.stored ~desc:(desc n) n

let join l r = Expr.operator "JOIN" (desc "j") [ l; r ]
let ret x = Expr.operator "RET" (desc "r") [ x ]

(* JOIN(RET(A), JOIN(RET(B), RET(C))) *)
let sample =
  join (ret (leaf "A")) (Expr.operator "JOIN" (desc "j2") [ ret (leaf "B"); ret (leaf "C") ])

let matching_tests =
  [
    Alcotest.test_case "stream variable matches anything" `Quick (fun () ->
        let pat = Pattern.Pop ("JOIN", "DJ", [ Pattern.Pvar 1; Pattern.Pvar 2 ]) in
        match Pattern.matches pat sample with
        | None -> Alcotest.fail "should match"
        | Some b ->
          check "D1 bound to RET desc" true
            (D.equal (Binding.desc b "D1") (desc "r"));
          check "DJ bound to root desc" true (D.equal (Binding.desc b "DJ") (desc "j"));
          check "stream 2 is the inner join" true
            (String.equal (Expr.label (Binding.stream b 2)) "JOIN"));
    Alcotest.test_case "nested pattern binds inner descriptors" `Quick (fun () ->
        let pat =
          Pattern.Pop
            ( "JOIN",
              "D5",
              [ Pattern.Pvar 1; Pattern.Pop ("JOIN", "D4", [ Pattern.Pvar 2; Pattern.Pvar 3 ]) ] )
        in
        match Pattern.matches pat sample with
        | None -> Alcotest.fail "should match"
        | Some b ->
          check "D4 inner join" true (D.equal (Binding.desc b "D4") (desc "j2"));
          check "stream 3 is RET(C)" true
            (String.equal (Expr.to_string (Binding.stream b 3)) "RET(C)"));
    Alcotest.test_case "wrong operator fails" `Quick (fun () ->
        let pat = Pattern.Pop ("SELECT", "D", [ Pattern.Pvar 1 ]) in
        check "no match" true (Pattern.matches pat sample = None));
    Alcotest.test_case "wrong arity fails" `Quick (fun () ->
        let pat = Pattern.Pop ("JOIN", "D", [ Pattern.Pvar 1 ]) in
        check "no match" true (Pattern.matches pat sample = None));
    Alcotest.test_case "leaf does not match an operator pattern" `Quick (fun () ->
        let pat = Pattern.Pop ("A", "D", []) in
        check "no match" true (Pattern.matches pat (leaf "A") = None));
    Alcotest.test_case "nested pattern mismatch in subtree fails" `Quick
      (fun () ->
        let pat =
          Pattern.Pop
            ("JOIN", "D5", [ Pattern.Pop ("JOIN", "D4", [ Pattern.Pvar 1; Pattern.Pvar 2 ]); Pattern.Pvar 3 ])
        in
        (* left child is RET, not JOIN *)
        check "no match" true (Pattern.matches pat sample = None));
  ]

let meta_tests =
  [
    Alcotest.test_case "vars and desc_vars" `Quick (fun () ->
        let pat =
          Pattern.Pop
            ("JOIN", "D5", [ Pattern.Pop ("JOIN", "D4", [ Pattern.Pvar 1; Pattern.Pvar 2 ]); Pattern.Pvar 3 ])
        in
        Alcotest.(check (list int)) "vars" [ 1; 2; 3 ] (Pattern.vars pat);
        Alcotest.(check (list string))
          "descs" [ "D1"; "D2"; "D3"; "D4"; "D5" ]
          (Pattern.desc_vars pat));
    Alcotest.test_case "tmpl_desc_vars includes re-descriptors" `Quick (fun () ->
        let t =
          Pattern.Tnode ("A", "DA", [ Pattern.Tvar (1, Some "DR"); Pattern.Tvar (2, None) ])
        in
        Alcotest.(check (list string)) "descs" [ "DA"; "DR" ] (Pattern.tmpl_desc_vars t));
    Alcotest.test_case "tmpl_nodes preorder" `Quick (fun () ->
        let t =
          Pattern.Tnode
            ("A", "DA", [ Pattern.Tnode ("B", "DB", [ Pattern.Tvar (1, None) ]) ])
        in
        check_int "two nodes" 2 (List.length (Pattern.tmpl_nodes t));
        check "order" true (List.hd (Pattern.tmpl_nodes t) = ("A", "DA")));
    Alcotest.test_case "rename_ops" `Quick (fun () ->
        let pat = Pattern.Pop ("JOIN", "D", [ Pattern.Pvar 1; Pattern.Pvar 2 ]) in
        let renamed = Pattern.rename_ops (fun s -> if s = "JOIN" then "JOPR" else s) pat in
        check "renamed" true (Pattern.root_operator renamed = Some "JOPR"));
  ]

let instantiate_tests =
  [
    Alcotest.test_case "instantiate rebuilds with computed descriptors" `Quick
      (fun () ->
        let pat = Pattern.Pop ("JOIN", "D3", [ Pattern.Pvar 1; Pattern.Pvar 2 ]) in
        let b = Option.get (Pattern.matches pat sample) in
        let b = Binding.bind_desc b "D4" (desc "out") in
        let tmpl = Pattern.Tnode ("JOIN", "D4", [ Pattern.Tvar (2, None); Pattern.Tvar (1, None) ]) in
        let out = Pattern.instantiate ~kind:Expr.Operator tmpl b in
        check "commuted" true
          (String.equal (Expr.to_string out) "JOIN(JOIN(RET(B), RET(C)), RET(A))");
        check "desc" true (D.equal (Expr.descriptor out) (desc "out")));
    Alcotest.test_case "re-descriptored stream swaps its root descriptor" `Quick
      (fun () ->
        let pat = Pattern.Pop ("JOIN", "D3", [ Pattern.Pvar 1; Pattern.Pvar 2 ]) in
        let b = Option.get (Pattern.matches pat sample) in
        let req = desc "required" in
        let b = Binding.bind_desc b "DR" req in
        let b = Binding.bind_desc b "DA" (desc "alg") in
        let tmpl =
          Pattern.Tnode ("Alg", "DA", [ Pattern.Tvar (1, Some "DR"); Pattern.Tvar (2, None) ])
        in
        let out = Pattern.instantiate ~kind:Expr.Algorithm tmpl b in
        match out with
        | Expr.Node (Expr.Algorithm, "Alg", _, [ first; second ]) ->
          check "first re-descriptored" true (D.equal (Expr.descriptor first) req);
          check "second untouched" true (D.equal (Expr.descriptor second) (desc "j2"))
        | _ -> Alcotest.fail "unexpected shape");
    Alcotest.test_case "unbound stream variable raises" `Quick (fun () ->
        let tmpl = Pattern.Tnode ("A", "D", [ Pattern.Tvar (9, None) ]) in
        check "raises" true
          (try
             ignore (Pattern.instantiate ~kind:Expr.Operator tmpl Binding.empty);
             false
           with Invalid_argument _ -> true));
  ]

let expr_tests =
  [
    Alcotest.test_case "is_operator_tree / is_access_plan" `Quick (fun () ->
        check "op tree" true (Expr.is_operator_tree sample);
        check "not plan" false (Expr.is_access_plan sample);
        let plan = Expr.algorithm "File_scan" D.empty [ leaf "A" ] in
        check "plan" true (Expr.is_access_plan plan);
        check "leaf is both" true
          (Expr.is_operator_tree (leaf "A") && Expr.is_access_plan (leaf "A")));
    Alcotest.test_case "size and operators_used" `Quick (fun () ->
        check_int "size" 8 (Expr.size sample);
        Alcotest.(check (list string))
          "ops" [ "JOIN"; "RET" ] (Expr.operators_used sample));
    Alcotest.test_case "stored_files keeps order and duplicates" `Quick (fun () ->
        Alcotest.(check (list string))
          "files" [ "A"; "B"; "C" ] (Expr.stored_files sample));
    Alcotest.test_case "equal_shape ignores descriptors" `Quick (fun () ->
        let other = Expr.with_descriptor sample (desc "different") in
        check "shape equal" true (Expr.equal_shape sample other);
        check "not equal" false (Expr.equal sample other));
    Alcotest.test_case "equal implies same hash" `Quick (fun () ->
        check "hash" true (Expr.hash sample = Expr.hash sample));
  ]

let suites =
  [
    ("pattern.matching", matching_tests);
    ("pattern.meta", meta_tests);
    ("pattern.instantiate", instantiate_tests);
    ("pattern.expr", expr_tests);
  ]
