(* The execution engine: iterator semantics and cross-plan result
   equivalence. *)

module E = Prairie_executor
module Tuple = Prairie_executor.Tuple
module Iterator = Prairie_executor.Iterator
module A = Prairie_value.Attribute
module V = Prairie_value.Value
module P = Prairie_value.Predicate
module SF = Prairie_catalog.Stored_file
module Catalog = Prairie_catalog.Catalog
module W = Prairie_workload
module Opt = Prairie_optimizers.Optimizers

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let attr o n = A.make ~owner:o ~name:n

(* tiny hand-made database *)
let r_schema = [| attr "R" "a"; attr "R" "b" |]

let r_rows =
  [| [| V.Int 1; V.Int 10 |]; [| V.Int 2; V.Int 20 |]; [| V.Int 3; V.Int 10 |] |]

let s_schema = [| attr "S" "a"; attr "S" "c" |]
let s_rows = [| [| V.Int 2; V.Int 7 |]; [| V.Int 3; V.Int 8 |]; [| V.Int 3; V.Int 9 |] |]

let r_file =
  SF.make ~name:"R" ~cardinality:3 [ SF.column "R" "a"; SF.column "R" "b" ]

let s_file =
  SF.make ~name:"S" ~cardinality:3 [ SF.column "S" "a"; SF.column "S" "c" ]

let r_table = { E.Table.file = r_file; schema = r_schema; rows = r_rows }
let s_table = { E.Table.file = s_file; schema = s_schema; rows = s_rows }

let db =
  E.Table.database (Catalog.of_files [ r_file; s_file ]) [ r_table; s_table ]

let count it = Array.length (Iterator.materialize it)
let join_pred = P.Cmp (P.Eq, P.T_attr (attr "R" "a"), P.T_attr (attr "S" "a"))

let tuple_tests =
  [
    Alcotest.test_case "get by attribute" `Quick (fun () ->
        check "found" true (Tuple.get r_schema r_rows.(0) (attr "R" "b") = Some (V.Int 10));
        check "missing" true (Tuple.get r_schema r_rows.(0) (attr "R" "z") = None));
    Alcotest.test_case "eval_pred over a tuple" `Quick (fun () ->
        let p = P.Cmp (P.Eq, P.T_attr (attr "R" "b"), P.T_int 10) in
        check "hit" true (Tuple.eval_pred r_schema p r_rows.(0));
        check "miss" false (Tuple.eval_pred r_schema p r_rows.(1)));
    Alcotest.test_case "project keeps requested order" `Quick (fun () ->
        let t = Tuple.project r_schema [ attr "R" "b" ] r_rows.(0) in
        check "value" true (V.equal t.(0) (V.Int 10));
        check_int "width" 1 (Array.length t));
    Alcotest.test_case "compare_by sorts lexicographically" `Quick (fun () ->
        check "lt" true
          (Tuple.compare_by r_schema [ attr "R" "b"; attr "R" "a" ] r_rows.(0) r_rows.(2) < 0));
    Alcotest.test_case "canonical is column-order independent" `Quick (fun () ->
        let swapped_schema = [| attr "R" "b"; attr "R" "a" |] in
        let swapped = [| V.Int 10; V.Int 1 |] in
        check "equal" true
          (Tuple.canonical r_schema r_rows.(0) = Tuple.canonical swapped_schema swapped));
  ]

let iterator_tests =
  [
    Alcotest.test_case "scan filters by the embedded predicate" `Quick (fun () ->
        let it = Iterator.scan r_table ~pred:(P.Cmp (P.Eq, P.T_attr (attr "R" "b"), P.T_int 10)) in
        check_int "two" 2 (count it));
    Alcotest.test_case "scan is re-openable" `Quick (fun () ->
        let it = Iterator.scan r_table ~pred:P.True in
        check_int "first" 3 (count it);
        check_int "again" 3 (count it));
    Alcotest.test_case "index_scan delivers sorted output" `Quick (fun () ->
        let it = Iterator.index_scan r_table ~pred:P.True ~order:[ attr "R" "b" ] in
        let rows = Iterator.materialize it in
        check "sorted" true
          (V.to_int rows.(0).(1) <= V.to_int rows.(1).(1)
          && V.to_int rows.(1).(1) <= V.to_int rows.(2).(1)));
    Alcotest.test_case "nested loops join" `Quick (fun () ->
        let it =
          Iterator.nested_loops
            (Iterator.scan r_table ~pred:P.True)
            (Iterator.scan s_table ~pred:P.True)
            ~pred:join_pred
        in
        check_int "three matches" 3 (count it));
    Alcotest.test_case "hash join agrees with nested loops" `Quick (fun () ->
        let nl =
          Iterator.nested_loops (Iterator.scan r_table ~pred:P.True)
            (Iterator.scan s_table ~pred:P.True) ~pred:join_pred
        in
        let hj =
          Iterator.hash_join (Iterator.scan r_table ~pred:P.True)
            (Iterator.scan s_table ~pred:P.True) ~pred:join_pred
        in
        check_int "same" (count nl) (count hj));
    Alcotest.test_case "merge join over sorted inputs agrees" `Quick (fun () ->
        let sorted t attrs = Iterator.sort (Iterator.scan t ~pred:P.True) ~order:attrs in
        let mj =
          Iterator.merge_join (sorted r_table [ attr "R" "a" ]) (sorted s_table [ attr "S" "a" ]) ~pred:join_pred
        in
        check_int "three" 3 (count mj));
    Alcotest.test_case "pointer join preserves outer order" `Quick (fun () ->
        let pj =
          Iterator.pointer_join (Iterator.scan r_table ~pred:P.True)
            (Iterator.scan s_table ~pred:P.True) ~pred:join_pred
        in
        let rows = Iterator.materialize pj in
        check_int "three" 3 (Array.length rows);
        check "outer order kept" true (V.to_int rows.(0).(0) <= V.to_int rows.(1).(0)));
    Alcotest.test_case "sort orders the stream" `Quick (fun () ->
        let it = Iterator.sort (Iterator.scan s_table ~pred:P.True) ~order:[ attr "S" "c" ] in
        let rows = Iterator.materialize it in
        check "ascending" true (V.to_int rows.(0).(1) <= V.to_int rows.(2).(1)));
    Alcotest.test_case "filter and null" `Quick (fun () ->
        let base = Iterator.scan r_table ~pred:P.True in
        let f = Iterator.filter base ~pred:(P.Cmp (P.Gt, P.T_attr (attr "R" "a"), P.T_int 1)) in
        check_int "two" 2 (count f);
        check_int "null id" 2 (count (Iterator.null f)));
    Alcotest.test_case "unnest expands set-valued attributes" `Quick (fun () ->
        let schema = [| attr "T" "xs" |] in
        let rows = [| [| V.List [ V.Int 1; V.Int 2; V.Int 3 ] |]; [| V.List [ V.Int 9 ] |] |] in
        let it = Iterator.unnest (Iterator.of_array schema rows) ~attr:(attr "T" "xs") in
        check_int "four rows" 4 (count it));
    Alcotest.test_case "mat_deref appends the target columns" `Quick (fun () ->
        (* C(oid, r->S): deref r into S's rows *)
        let c_file =
          SF.make ~name:"C" ~cardinality:2
            [ SF.column "C" "oid"; SF.column ~ref_to:"S" "C" "r" ]
        in
        let c_schema = [| attr "C" "oid"; attr "C" "r" |] in
        let c_rows = [| [| V.Int 0; V.Int 1 |]; [| V.Int 1; V.Int 2 |] |] in
        let c_table = { E.Table.file = c_file; schema = c_schema; rows = c_rows } in
        let db =
          E.Table.database (Catalog.of_files [ c_file; s_file ]) [ c_table; s_table ]
        in
        let it = Iterator.mat_deref db (Iterator.of_array c_schema c_rows) ~attr:(attr "C" "r") in
        let rows = Iterator.materialize it in
        check_int "two rows" 2 (Array.length rows);
        check_int "width 4" 4 (Array.length rows.(0));
        (* row 0 derefs to S row 1 = (3, 8) *)
        check "deref" true (V.equal rows.(0).(2) (V.Int 3)));
  ]

(* ------------------------------------------------------------------ *)
(* end-to-end: optimizer plans return identical results                *)
(* ------------------------------------------------------------------ *)

let plan_equivalence q joins seed =
  let inst = W.Queries.instance q ~joins ~seed in
  let cat = inst.W.Queries.catalog in
  let db = E.Data_gen.database ~seed:(seed * 7) cat in
  let outcomes =
    [
      Opt.optimize (Opt.oodb_prairie cat) inst.W.Queries.expr;
      Opt.optimize (Opt.oodb_volcano cat) inst.W.Queries.expr;
      Opt.optimize ~pruning:false (Opt.oodb_prairie cat) inst.W.Queries.expr;
    ]
  in
  let results =
    List.filter_map
      (fun (o : Opt.outcome) ->
        Option.map (fun p -> E.Compile.canonical_result (E.Compile.execute_plan db p)) o.Opt.plan)
      outcomes
  in
  match results with
  | [] -> false
  | first :: rest -> List.for_all (fun r -> r = first) rest

let end_to_end_tests =
  [
    Alcotest.test_case "identical results across optimizer variants (Q1)"
      `Quick (fun () -> check "equal" true (plan_equivalence W.Queries.Q1 2 1));
    Alcotest.test_case "identical results across optimizer variants (Q3, MAT)"
      `Quick (fun () -> check "equal" true (plan_equivalence W.Queries.Q3 2 2));
    Alcotest.test_case "identical results across optimizer variants (Q6, index)"
      `Quick (fun () -> check "equal" true (plan_equivalence W.Queries.Q6 2 3));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"plans of one query always produce one result"
         ~count:10
         QCheck2.Gen.(pair (1 -- 2) (0 -- 1000))
         (fun (joins, seed) -> plan_equivalence W.Queries.Q5 joins seed));
    Alcotest.test_case "executed join matches a reference computation" `Quick
      (fun () ->
        (* join C1 ⋈ C2 along the reference equals a manual nested loop *)
        let inst = W.Queries.instance W.Queries.Q1 ~joins:1 ~seed:11 in
        let cat = inst.W.Queries.catalog in
        let db = E.Data_gen.database ~seed:5 cat in
        let r = Opt.optimize (Opt.oodb_prairie cat) inst.W.Queries.expr in
        let _, rows = E.Compile.execute_plan db (Option.get r.Opt.plan) in
        let c1 = E.Table.find db "C1" and c2 = E.Table.find db "C2" in
        let expected = ref 0 in
        Array.iter
          (fun t1 ->
            Array.iter
              (fun t2 ->
                let lookup a =
                  match Tuple.lookup_term c1.E.Table.schema t1 a with
                  | Some v -> Some v
                  | None -> Tuple.lookup_term c2.E.Table.schema t2 a
                in
                if P.eval ~lookup (W.Catalogs.join_pred 1) then incr expected)
              c2.E.Table.rows)
          c1.E.Table.rows;
        check_int "row count" !expected (List.length rows));
  ]

let datagen_tests =
  [
    Alcotest.test_case "generation is deterministic per seed" `Quick (fun () ->
        let inst = W.Queries.instance W.Queries.Q1 ~joins:1 ~seed:9 in
        let d1 = E.Data_gen.database ~seed:1 inst.W.Queries.catalog in
        let d2 = E.Data_gen.database ~seed:1 inst.W.Queries.catalog in
        let t1 = E.Table.find d1 "C1" and t2 = E.Table.find d2 "C1" in
        check "same rows" true (t1.E.Table.rows = t2.E.Table.rows));
    Alcotest.test_case "cardinalities respected and refs in range" `Quick
      (fun () ->
        let inst = W.Queries.instance W.Queries.Q1 ~joins:1 ~seed:9 in
        let cat = inst.W.Queries.catalog in
        let db = E.Data_gen.database ~seed:2 cat in
        let c1 = E.Table.find db "C1" in
        check_int "card" (Catalog.find_exn cat "C1").SF.cardinality
          (E.Table.row_count c1);
        let c2_card = (Catalog.find_exn cat "C2").SF.cardinality in
        let ref_pos = Option.get (Tuple.position c1.E.Table.schema (attr "C1" "rC1")) in
        check "refs valid" true
          (Array.for_all
             (fun row ->
               let v = V.to_int row.(ref_pos) in
               v >= 0 && v < c2_card)
             c1.E.Table.rows));
  ]

let suites =
  [
    ("executor.tuple", tuple_tests);
    ("executor.iterators", iterator_tests);
    ("executor.end_to_end", end_to_end_tests);
    ("executor.datagen", datagen_tests);
  ]
