(* Star query graphs (the paper's future work) across the whole stack. *)

module W = Prairie_workload
module Opt = Prairie_optimizers.Optimizers
module Search = Prairie_volcano.Search
module Plan = Prairie_volcano.Plan
module Bottom_up = Prairie_volcano.Bottom_up
module Q = Prairie_query.Query
module E = Prairie_executor
module D = Prairie.Descriptor
module Expr = Prairie.Expr

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let catalog =
  W.Catalogs.make_star (W.Catalogs.default_spec ~classes:3 ~indexed:true ~seed:9)

let star joins = W.Expressions.star catalog ~joins

let tests =
  [
    Alcotest.test_case "star catalog shape" `Quick (fun () ->
        check "hub" true (Prairie_catalog.Catalog.mem catalog "H");
        check "satellites" true
          (Prairie_catalog.Catalog.mem catalog "S1"
          && Prairie_catalog.Catalog.mem catalog "S3");
        check "hub refs" true
          (Prairie_catalog.Catalog.ref_target catalog (W.Catalogs.hub_ref 2)
          = Some "S2"));
    Alcotest.test_case "optimizer variants agree on star joins" `Quick
      (fun () ->
        let q = star 3 in
        let a = Opt.optimize (Opt.oodb_prairie catalog) q in
        let b = Opt.optimize (Opt.oodb_volcano catalog) q in
        Alcotest.(check (float 1e-6)) "cost" a.Opt.cost b.Opt.cost;
        check_int "groups"
          (Search.group_count a.Opt.search)
          (Search.group_count b.Opt.search);
        let expr, required = (Opt.oodb_prairie catalog).Opt.prepare q in
        let bu =
          Bottom_up.optimize ~required (Opt.oodb_prairie catalog).Opt.volcano expr
        in
        match bu.Bottom_up.plan with
        | Some p -> Alcotest.(check (float 1e-6)) "bottom-up" a.Opt.cost (Plan.cost p)
        | None -> Alcotest.fail "no bottom-up plan");
    Alcotest.test_case "star SELECT query keeps satellites attached" `Quick
      (fun () ->
        let q = W.Expressions.star_select catalog ~joins:2 in
        let r = Opt.optimize (Opt.oodb_prairie catalog) q in
        match r.Opt.plan with
        | Some p ->
          check "all tables in plan" true
            (List.sort compare (Expr.stored_files (Plan.to_expr p))
            = [ "H"; "S1"; "S2" ])
        | None -> Alcotest.fail "no plan");
    Alcotest.test_case "SQL front-end handles star joins" `Quick (fun () ->
        let q =
          Q.compile_string catalog
            "select * from H, S1, S2 where H.hS1 = S1.oid and H.hS2 = S2.oid \
             and bS1 = 1"
        in
        let r = Opt.optimize (Opt.oodb_prairie catalog) q in
        check "plan found" true (r.Opt.plan <> None);
        (* execute and verify against a reference count *)
        let db = E.Data_gen.database ~seed:4 catalog in
        let schema, rows = E.Compile.execute_plan db (Option.get r.Opt.plan) in
        check "sane schema" true (Array.length schema >= 5);
        (* each hub row dereferences to exactly one S1 and one S2 row, and
           bS1 = 1 selects ~1/200 of them *)
        let hub_rows = E.Table.row_count (E.Table.find db "H") in
        check "no more than one row per hub row" true
          (List.length rows <= hub_rows));
    Alcotest.test_case "star plans execute identically across optimizers"
      `Quick (fun () ->
        let q = star 2 in
        let db = E.Data_gen.database ~seed:4 catalog in
        let run (o : Opt.outcome) =
          E.Compile.canonical_result
            (E.Compile.execute_plan db (Option.get o.Opt.plan))
        in
        let a = run (Opt.optimize (Opt.oodb_prairie catalog) q) in
        let b = run (Opt.optimize (Opt.oodb_volcano catalog) q) in
        check "same rows" true (a = b));
  ]

let suites = [ ("star", tests) ]
