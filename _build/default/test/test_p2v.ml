(* The P2V pre-processor: enforcer detection, property classification, rule
   merging, translation and query preparation. *)

module P2v = Prairie_p2v
module Rel = Prairie_algebra.Relational
module Oodb = Prairie_algebra.Oodb
module Catalog = Prairie_catalog.Catalog
module D = Prairie.Descriptor
module V = Prairie_value.Value
module O = Prairie_value.Order
module A = Prairie_value.Attribute
module Irule = Prairie.Irule

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let attr o n = A.make ~owner:o ~name:n

let catalog =
  Catalog.of_files
    [
      Rel.relation ~name:"R1" ~cardinality:100 [ ("a", 10) ];
      Rel.relation ~name:"R2" ~cardinality:100 [ ("a", 10) ];
    ]

let rel = Rel.ruleset catalog
let oodb = Oodb.ruleset catalog

let enforcer_tests =
  [
    Alcotest.test_case "SORT detected as the enforcer-operator" `Quick (fun () ->
        let infos = P2v.Enforcers.detect rel in
        check_int "one" 1 (List.length infos);
        let info = List.hd infos in
        Alcotest.(check string) "operator" "SORT" info.P2v.Enforcers.operator;
        Alcotest.(check (list string))
          "enforces tuple_order" [ "tuple_order" ]
          info.P2v.Enforcers.enforced_properties;
        Alcotest.(check (list string))
          "merge sort is the enforcer algorithm" [ "Merge_sort" ]
          (List.map Irule.algorithm info.P2v.Enforcers.algorithm_rules));
    Alcotest.test_case "operators without Null rules are not enforcers" `Quick
      (fun () ->
        let infos = P2v.Enforcers.detect rel in
        check "JOIN not enforcer" false (P2v.Enforcers.is_enforcer_operator infos "JOIN"));
  ]

let classify_tests =
  [
    Alcotest.test_case "classification of the relational properties" `Quick
      (fun () ->
        let c = P2v.Classify.classify rel in
        Alcotest.(check (list string)) "cost" [ "cost" ] c.P2v.Classify.cost;
        Alcotest.(check (list string))
          "physical" [ "tuple_order" ] c.P2v.Classify.physical;
        check "attributes is an argument" true
          (List.mem "attributes" c.P2v.Classify.argument);
        check "num_records is an argument" true
          (List.mem "num_records" c.P2v.Classify.argument));
    Alcotest.test_case "classification is the same for the OODB set" `Quick
      (fun () ->
        let c = P2v.Classify.classify oodb in
        Alcotest.(check (list string))
          "physical" [ "tuple_order" ] c.P2v.Classify.physical);
  ]

let merge_tests =
  [
    Alcotest.test_case "relational: 5 T + 6 I -> 2 trans + 4 impl + 1 enforcer"
      `Quick (fun () ->
        let m = P2v.Merge.merge rel in
        check_int "trans" 2 (P2v.Merge.trans_rule_count m);
        check_int "impl" 4 (P2v.Merge.impl_rule_count m);
        check_int "enforcers" 1 (P2v.Merge.enforcer_count m);
        check "composed pair" true
          (List.mem ("sort_intro_merge_join", "jopr_merge_join") m.P2v.Merge.composed);
        check "JOPR dropped" true (List.mem "JOPR" m.P2v.Merge.dropped_operators);
        check "SORT dropped" true (List.mem "SORT" m.P2v.Merge.dropped_operators));
    Alcotest.test_case "the paper's §4.2 arithmetic: 22 T + 11 I -> 17 + 9 + 1"
      `Quick (fun () ->
        let m = P2v.Merge.merge oodb in
        check_int "17 trans" 17 (P2v.Merge.trans_rule_count m);
        check_int "9 impl" 9 (P2v.Merge.impl_rule_count m);
        check_int "1 enforcer" 1 (P2v.Merge.enforcer_count m));
    Alcotest.test_case "composed rule pushes sort requirements" `Quick (fun () ->
        let m = P2v.Merge.merge rel in
        let merged =
          List.find
            (fun (r : Irule.t) -> String.equal (Irule.algorithm r) "Merge_join")
            m.P2v.Merge.impl_irules
        in
        Alcotest.(check string) "operator is JOIN" "JOIN" (Irule.operator merged);
        check_int "both inputs re-descriptored" 2
          (List.length (Irule.redescriptored_inputs merged));
        check "valid I-rule" true (Irule.validate merged = Ok ()));
    Alcotest.test_case "compose:false keeps the introduced operator" `Quick
      (fun () ->
        let m = P2v.Merge.merge ~compose:false rel in
        check_int "all 5 trans rules kept" 5 (P2v.Merge.trans_rule_count m);
        check "JOPR impl rule survives" true
          (List.exists
             (fun (r : Irule.t) -> String.equal (Irule.operator r) "JOPR")
             m.P2v.Merge.impl_irules);
        (* the T-rule's sort requirements moved onto the JOPR impl rule *)
        let jopr =
          List.find
            (fun (r : Irule.t) -> String.equal (Irule.operator r) "JOPR")
            m.P2v.Merge.impl_irules
        in
        check_int "requirements attached" 2
          (List.length (Irule.redescriptored_inputs jopr)));
  ]

let compose_fallback_tests =
  [
    Alcotest.test_case
      "composition falls back when the I-rule test is untraceable" `Quick
      (fun () ->
        (* Make the JOPR rule's test read a property that the renaming
           T-rule reassigns after the copy: the test can then not be
           evaluated at I-rule test time, so P2V must keep the rules
           unmerged (and say so). *)
        let module B = Prairie_algebra.Build in
        let base = Rel.ruleset catalog in
        let poisoned_trule =
          List.map
            (fun (t : Prairie.Trule.t) ->
              if t.Prairie.Trule.name <> "sort_intro_merge_join" then t
              else
                {
                  t with
                  Prairie.Trule.post_test =
                    t.Prairie.Trule.post_test
                    @ [
                        Prairie.Action.Assign_prop
                          ("D6", "num_records", Prairie.Action.int 1);
                      ];
                })
            base.Prairie.Ruleset.trules
        in
        let poisoned_irule =
          List.map
            (fun (r : Prairie.Irule.t) ->
              if r.Prairie.Irule.name <> "jopr_merge_join" then r
              else
                {
                  r with
                  Prairie.Irule.test =
                    Prairie.Action.(
                      Binop
                        ( Cmp Prairie_value.Predicate.Ge,
                          Prop ("D3", "num_records"),
                          int 0 ));
                })
            base.Prairie.Ruleset.irules
        in
        let rs =
          {
            base with
            Prairie.Ruleset.trules = poisoned_trule;
            Prairie.Ruleset.irules = poisoned_irule;
          }
        in
        let m = P2v.Merge.merge rs in
        check "not composed" false
          (List.mem ("sort_intro_merge_join", "jopr_merge_join") m.P2v.Merge.composed);
        check "warned" true (m.P2v.Merge.warnings <> []);
        (* the renaming T-rule survives, as does the JOPR impl rule *)
        check "trans rule kept" true
          (List.exists
             (fun (t : Prairie.Trule.t) ->
               t.Prairie.Trule.name = "sort_intro_merge_join")
             m.P2v.Merge.trans_trules);
        check "JOPR rule kept" true
          (List.exists
             (fun (r : Prairie.Irule.t) -> Irule.operator r = "JOPR")
             m.P2v.Merge.impl_irules);
        (* and the unmerged translation still optimizes correctly *)
        let q =
          Rel.join catalog
            ~pred:
              (Prairie_value.Predicate.Cmp
                 ( Prairie_value.Predicate.Eq,
                   Prairie_value.Predicate.T_attr (attr "R1" "a"),
                   Prairie_value.Predicate.T_attr (attr "R2" "a") ))
            (Rel.ret catalog "R1") (Rel.ret catalog "R2")
        in
        let run rs' =
          let tr = P2v.Translate.translate rs' in
          let ctx = Prairie_volcano.Search.create tr.P2v.Translate.volcano in
          match Prairie_volcano.Search.optimize ctx q with
          | Some p -> Prairie_volcano.Plan.cost p
          | None -> infinity
        in
        check "still finds a plan" true (Float.is_finite (run rs)));
  ]

let translate_tests =
  [
    Alcotest.test_case "translated rule set counts" `Quick (fun () ->
        let tr = P2v.Translate.translate rel in
        let v = tr.P2v.Translate.volcano in
        check_int "trans" 2 (List.length v.Prairie_volcano.Rule.rs_trans);
        check_int "impl" 4 (List.length v.Prairie_volcano.Rule.rs_impl);
        check_int "enforcers" 1 (List.length v.Prairie_volcano.Rule.rs_enforcers);
        Alcotest.(check (list string))
          "physical" [ "tuple_order" ] v.Prairie_volcano.Rule.rs_physical);
    Alcotest.test_case "prepare_query strips a root SORT into requirements"
      `Quick (fun () ->
        let tr = P2v.Translate.translate rel in
        let order = O.sorted_on (attr "R1" "a") in
        let q = Rel.sort catalog ~order (Rel.ret catalog "R1") in
        let stripped, req = P2v.Translate.prepare_query tr q in
        Alcotest.(check string) "RET remains" "RET" (Prairie.Expr.label stripped);
        check "required order" true (O.equal (D.get_order req "tuple_order") order));
    Alcotest.test_case "prepare_query deletes interior SORTs" `Quick (fun () ->
        let tr = P2v.Translate.translate rel in
        let order = O.sorted_on (attr "R1" "a") in
        let q =
          Rel.join catalog
            ~pred:(Prairie_value.Predicate.Cmp
                     (Prairie_value.Predicate.Eq,
                      Prairie_value.Predicate.T_attr (attr "R1" "a"),
                      Prairie_value.Predicate.T_attr (attr "R2" "a")))
            (Rel.sort catalog ~order (Rel.ret catalog "R1"))
            (Rel.ret catalog "R2")
        in
        let stripped, req = P2v.Translate.prepare_query tr q in
        check "no SORT left" false
          (List.mem "SORT" (Prairie.Expr.operators_used stripped));
        check "no root requirement" true (D.is_empty req));
    Alcotest.test_case "enforcer closure behaves like Merge_sort" `Quick
      (fun () ->
        let tr = P2v.Translate.translate rel in
        let en = List.hd tr.P2v.Translate.volcano.Prairie_volcano.Rule.rs_enforcers in
        let order = O.sorted_on (attr "R1" "a") in
        let req = D.of_list [ ("tuple_order", V.Order order) ] in
        check "applies under order" true (en.Prairie_volcano.Rule.en_applies ~req);
        check "not under empty" false
          (en.Prairie_volcano.Rule.en_applies ~req:D.empty);
        check "relaxed drops the order" true
          (D.is_empty (en.Prairie_volcano.Rule.en_relaxed ~req));
        let input = D.of_list [ ("num_records", V.Int 64); ("cost", V.Float 10.0) ] in
        let out = en.Prairie_volcano.Rule.en_finalize ~req ~input in
        check "order achieved" true (O.equal (D.get_order out "tuple_order") order);
        (* 10 + cpu * 64 * log2 64 *)
        Alcotest.(check (float 1e-9))
          "cost" (10.0 +. (0.005 *. 64.0 *. 6.0)) (D.cost out));
    Alcotest.test_case "report carries the paper's numbers" `Quick (fun () ->
        let report = P2v.Report.of_translation (P2v.Translate.translate oodb) in
        check_int "22" 22 report.P2v.Report.prairie_trules;
        check_int "11" 11 report.P2v.Report.prairie_irules;
        check_int "17" 17 report.P2v.Report.volcano_trans;
        check_int "9" 9 report.P2v.Report.volcano_impl;
        check_int "1" 1 report.P2v.Report.volcano_enforcers;
        check "spec smaller than volcano equivalent" true
          (report.P2v.Report.prairie_spec_size < report.P2v.Report.volcano_spec_size
          || report.P2v.Report.prairie_spec_size > 0));
  ]

(* merged and unmerged rule sets must be semantically equivalent *)
let merge_equivalence_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"composition preserves best plans" ~count:25
         QCheck2.Gen.(0 -- 10_000)
         (fun seed ->
           let rng = Prairie_util.Rng.create seed in
           let catalog =
             Catalog.of_files
               [
                 Rel.relation ~name:"R1"
                   ~cardinality:(Prairie_util.Rng.in_range rng 10 2000)
                   [ ("a", 10); ("b", 20) ];
                 Rel.relation ~name:"R2"
                   ~cardinality:(Prairie_util.Rng.in_range rng 10 2000)
                   [ ("a", 10) ];
               ]
           in
           let rel = Rel.ruleset catalog in
           let q =
             Rel.join catalog
               ~pred:
                 (Prairie_value.Predicate.Cmp
                    ( Prairie_value.Predicate.Eq,
                      Prairie_value.Predicate.T_attr (attr "R1" "a"),
                      Prairie_value.Predicate.T_attr (attr "R2" "a") ))
               (Rel.ret catalog "R1") (Rel.ret catalog "R2")
           in
           let run tr =
             let ctx = Prairie_volcano.Search.create tr.P2v.Translate.volcano in
             match Prairie_volcano.Search.optimize ctx q with
             | Some p -> Prairie_volcano.Plan.cost p
             | None -> infinity
           in
           let merged = run (P2v.Translate.translate rel) in
           let unmerged = run (P2v.Translate.translate ~compose:false rel) in
           Float.abs (merged -. unmerged) < 1e-6));
  ]

let suites =
  [
    ("p2v.enforcers", enforcer_tests);
    ("p2v.classify", classify_tests);
    ("p2v.merge", merge_tests);
    ("p2v.compose_fallback", compose_fallback_tests);
    ("p2v.translate", translate_tests);
    ("p2v.merge_equivalence", merge_equivalence_tests);
  ]
