(* The SQL-like query front-end. *)

module Q = Prairie_query.Query
module W = Prairie_workload
module Opt = Prairie_optimizers.Optimizers
module Expr = Prairie.Expr
module P = Prairie_value.Predicate
module A = Prairie_value.Attribute
module O = Prairie_value.Order
module D = Prairie.Descriptor
module E = Prairie_executor

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let catalog =
  W.Catalogs.make (W.Catalogs.default_spec ~classes:3 ~indexed:true ~seed:5)

let parse_tests =
  [
    Alcotest.test_case "star projection and bare FROM" `Quick (fun () ->
        let q = Q.parse catalog "select * from C1" in
        check "star" true (q.Q.projection = None);
        check "one table" true (q.Q.tables = [ "C1" ]);
        check "no where" true (P.equal q.Q.where P.True));
    Alcotest.test_case "qualified and unqualified attributes resolve" `Quick
      (fun () ->
        let q = Q.parse catalog "select C1.oid, bC2 from C1, C2" in
        match q.Q.projection with
        | Some [ a; b ] ->
          check_str "a" "C1.oid" (A.to_string a);
          check_str "b" "C2.bC2" (A.to_string b)
        | _ -> Alcotest.fail "two attributes expected");
    Alcotest.test_case "ambiguous bare attribute rejected" `Quick (fun () ->
        (* oid exists in both C1 and C2 *)
        check "raises" true
          (try
             ignore (Q.parse catalog "select oid from C1, C2");
             false
           with Q.Error _ -> true));
    Alcotest.test_case "unknown table rejected" `Quick (fun () ->
        check "raises" true
          (try
             ignore (Q.parse catalog "select * from Nope");
             false
           with Q.Error _ -> true));
    Alcotest.test_case "unknown attribute rejected" `Quick (fun () ->
        check "raises" true
          (try
             ignore (Q.parse catalog "select C1.banana from C1");
             false
           with Q.Error _ -> true));
    Alcotest.test_case "where with and/or/not and comparisons" `Quick (fun () ->
        let q =
          Q.parse catalog
            "select * from C1 where not (bC1 = 3 or bC1 != 5) and oid <= 10"
        in
        check_int "two conjuncts" 2 (List.length (P.conjuncts q.Q.where)));
    Alcotest.test_case "negative numbers and strings" `Quick (fun () ->
        let q = Q.parse catalog "select * from C1 where bC1 > -4" in
        match P.conjuncts q.Q.where with
        | [ P.Cmp (P.Gt, _, P.T_int (-4)) ] -> ()
        | _ -> Alcotest.fail "expected bC1 > -4");
    Alcotest.test_case "order by" `Quick (fun () ->
        let q = Q.parse catalog "select * from C1 order by bC1, oid" in
        check_int "two" 2 (List.length q.Q.order_by));
    Alcotest.test_case "trailing garbage rejected" `Quick (fun () ->
        check "raises" true
          (try
             ignore (Q.parse catalog "select * from C1 42");
             false
           with Q.Error _ -> true));
  ]

let compile_tests =
  [
    Alcotest.test_case "join chain in FROM order with residual SELECT" `Quick
      (fun () ->
        let e =
          Q.compile_string catalog
            "select * from C1, C2, C3 where C1.rC1 = C2.oid and C2.rC2 = \
             C3.oid and bC1 = 3"
        in
        check_str "shape" "SELECT(JOIN(JOIN(RET(C1), RET(C2)), RET(C3)))"
          (Expr.to_string e);
        check "initialized" true (D.mem (Expr.descriptor e) "num_records"));
    Alcotest.test_case "join predicates end up on the right joins" `Quick
      (fun () ->
        let e =
          Q.compile_string catalog
            "select * from C1, C2 where C1.rC1 = C2.oid"
        in
        check "join pred" true
          (P.is_equijoin (D.get_pred (Expr.descriptor e) "join_predicate")));
    Alcotest.test_case "unconnected table rejected" `Quick (fun () ->
        check "raises" true
          (try
             ignore (Q.compile_string catalog "select * from C1, C2 where bC1 = 3");
             false
           with Q.Error _ -> true));
    Alcotest.test_case "projection and order-by become PROJECT and SORT" `Quick
      (fun () ->
        let e =
          Q.compile_string catalog "select C1.oid from C1 order by C1.oid"
        in
        check_str "sort at root" "SORT" (Expr.label e);
        check_str "project below" "PROJECT" (Expr.label (List.hd (Expr.inputs e))));
    Alcotest.test_case "compiled query optimizes like the workload builder"
      `Quick (fun () ->
        (* Q5 as SQL vs the workload's own construction: equal best costs *)
        let inst_like =
          Q.compile_string catalog
            "select * from C1, C2, C3 where C1.rC1 = C2.oid and C2.rC2 = \
             C3.oid and bC1 = 1 and bC2 = 2 and bC3 = 3"
        in
        let builder = W.Expressions.e3 catalog ~joins:2 in
        let opt = Opt.oodb_prairie catalog in
        Alcotest.(check (float 1e-6))
          "same optimum"
          (Opt.optimize opt builder).Opt.cost
          (Opt.optimize opt inst_like).Opt.cost);
    Alcotest.test_case "end to end: parse, optimize, execute, verify order"
      `Quick (fun () ->
        let e =
          Q.compile_string catalog
            "select C1.oid, C1.bC1 from C1 where bC1 < 50 order by C1.oid"
        in
        let r = Opt.optimize (Opt.oodb_prairie catalog) e in
        match r.Opt.plan with
        | None -> Alcotest.fail "no plan"
        | Some plan ->
          let db = E.Data_gen.database ~seed:1 catalog in
          let schema, rows = E.Compile.execute_plan db plan in
          check "has rows" true (rows <> []);
          check_int "two columns" 2 (Array.length schema);
          (* rows sorted by oid, and all satisfy the predicate *)
          let oid = A.make ~owner:"C1" ~name:"oid" in
          let rec sorted = function
            | a :: (b :: _ as rest) ->
              E.Tuple.compare_by schema [ oid ] a b <= 0 && sorted rest
            | _ -> true
          in
          check "sorted" true (sorted rows);
          check "filtered" true
            (List.for_all
               (fun row ->
                 E.Tuple.eval_pred schema
                   (P.Cmp (P.Lt, P.T_attr (A.make ~owner:"C1" ~name:"bC1"), P.T_int 50))
                   row)
               rows));
  ]

let suites = [ ("query.parse", parse_tests); ("query.compile", compile_tests) ]
