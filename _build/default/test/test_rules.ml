(* Static validation of T-rules, I-rules and rule sets. *)

module Pattern = Prairie.Pattern
module Action = Prairie.Action
module Trule = Prairie.Trule
module Irule = Prairie.Irule
module Ruleset = Prairie.Ruleset
module V = Prairie_value.Value

let check = Alcotest.(check bool)
let is_error = function Error _ -> true | Ok () -> false
let v i = Pattern.Pvar i
let pop n d subs = Pattern.Pop (n, d, subs)
let tv i = Pattern.Tvar (i, None)
let tn n d subs = Pattern.Tnode (n, d, subs)

let trule_tests =
  [
    Alcotest.test_case "valid rule passes" `Quick (fun () ->
        let r =
          Trule.make ~name:"ok"
            ~lhs:(pop "J" "D3" [ v 1; v 2 ])
            ~rhs:(tn "J" "D4" [ tv 2; tv 1 ])
            ~post_test:[ Action.Assign_desc ("D4", Action.Desc "D3") ]
            ()
        in
        check "ok" true (Trule.validate r = Ok ()));
    Alcotest.test_case "RHS variable unbound by LHS" `Quick (fun () ->
        let r =
          Trule.make ~name:"bad"
            ~lhs:(pop "J" "D3" [ v 1 ])
            ~rhs:(tn "J" "D4" [ tv 7 ])
            ()
        in
        check "error" true (is_error (Trule.validate r)));
    Alcotest.test_case "assignment to an LHS descriptor rejected" `Quick
      (fun () ->
        let r =
          Trule.make ~name:"bad"
            ~lhs:(pop "J" "D3" [ v 1 ])
            ~rhs:(tn "J" "D4" [ tv 1 ])
            ~post_test:[ Action.Assign_prop ("D3", "n", Action.int 1) ]
            ()
        in
        check "error" true (is_error (Trule.validate r)));
    Alcotest.test_case "read of an undefined descriptor rejected" `Quick
      (fun () ->
        let r =
          Trule.make ~name:"bad"
            ~lhs:(pop "J" "D3" [ v 1 ])
            ~rhs:(tn "J" "D4" [ tv 1 ])
            ~post_test:[ Action.Assign_prop ("D4", "n", Action.prop "D9" "n") ]
            ()
        in
        check "error" true (is_error (Trule.validate r)));
    Alcotest.test_case "input/output descriptor classification" `Quick (fun () ->
        let r =
          Trule.make ~name:"r"
            ~lhs:(pop "J" "D3" [ v 1; v 2 ])
            ~rhs:(tn "J" "D4" [ tv 1; tv 2 ])
            ()
        in
        Alcotest.(check (list string))
          "inputs" [ "D1"; "D2"; "D3" ] (Trule.input_descriptors r);
        Alcotest.(check (list string)) "outputs" [ "D4" ] (Trule.output_descriptors r));
  ]

let irule_tests =
  [
    Alcotest.test_case "accessors" `Quick (fun () ->
        let r =
          Irule.make ~name:"r"
            ~lhs:(pop "JOIN" "D3" [ v 1; v 2 ])
            ~rhs:(tn "NL" "D5" [ Pattern.Tvar (1, Some "D4"); tv 2 ])
            ()
        in
        Alcotest.(check string) "op" "JOIN" (Irule.operator r);
        Alcotest.(check string) "alg" "NL" (Irule.algorithm r);
        Alcotest.(check string) "op desc" "D3" (Irule.operator_descriptor r);
        Alcotest.(check string) "alg desc" "D5" (Irule.algorithm_descriptor r);
        check "redescs" true (Irule.redescriptored_inputs r = [ (1, "D4") ]);
        check "not null" false (Irule.is_null_rule r));
    Alcotest.test_case "null detection" `Quick (fun () ->
        let r =
          Irule.make ~name:"n"
            ~lhs:(pop "SORT" "D2" [ v 1 ])
            ~rhs:(tn Irule.null_algorithm "D4" [ Pattern.Tvar (1, Some "D3") ])
            ()
        in
        check "null rule" true (Irule.is_null_rule r));
    Alcotest.test_case "LHS must be an operator over variables" `Quick (fun () ->
        let nested =
          Irule.make ~name:"bad"
            ~lhs:(pop "A" "D" [ pop "B" "D2" [ v 1 ] ])
            ~rhs:(tn "X" "D3" [ tv 1 ])
            ()
        in
        check "nested rejected" true (is_error (Irule.validate nested)));
    Alcotest.test_case "RHS must use the same variables in order" `Quick
      (fun () ->
        let swapped =
          Irule.make ~name:"bad"
            ~lhs:(pop "J" "D3" [ v 1; v 2 ])
            ~rhs:(tn "X" "D4" [ tv 2; tv 1 ])
            ()
        in
        check "swapped rejected" true (is_error (Irule.validate swapped)));
    Alcotest.test_case "duplicate variables rejected" `Quick (fun () ->
        let dup =
          Irule.make ~name:"bad"
            ~lhs:(pop "J" "D3" [ v 1; v 1 ])
            ~rhs:(tn "X" "D4" [ tv 1; tv 1 ])
            ()
        in
        check "dup rejected" true (is_error (Irule.validate dup)));
  ]

let ruleset_tests =
  [
    Alcotest.test_case "operators and algorithms are inferred" `Quick (fun () ->
        let ir =
          Irule.make ~name:"i"
            ~lhs:(pop "RET" "D2" [ v 1 ])
            ~rhs:(tn "Scan" "D3" [ tv 1 ])
            ()
        in
        let rs = Ruleset.make ~irules:[ ir ] "t" in
        check "op" true (List.mem "RET" rs.Ruleset.operators);
        check "alg" true (List.mem "Scan" rs.Ruleset.algorithms));
    Alcotest.test_case "unimplementable operator flagged" `Quick (fun () ->
        let tr =
          Trule.make ~name:"t"
            ~lhs:(pop "A" "D1" [ v 1 ])
            ~rhs:(tn "B" "D2" [ tv 1 ])
            ~post_test:[ Action.Assign_desc ("D2", Action.Desc "D1") ]
            ()
        in
        let rs = Ruleset.make ~trules:[ tr ] "t" in
        check "errors" true (match Ruleset.validate rs with Error _ -> true | Ok () -> false));
    Alcotest.test_case "unregistered helper flagged" `Quick (fun () ->
        let ir =
          Irule.make ~name:"i"
            ~lhs:(pop "RET" "D2" [ v 1 ])
            ~rhs:(tn "Scan" "D3" [ tv 1 ])
            ~post_opt:[ Action.Assign_prop ("D3", "cost", Action.call "mystery" []) ]
            ()
        in
        let rs = Ruleset.make ~irules:[ ir ] "t" in
        check "errors" true (match Ruleset.validate rs with Error _ -> true | Ok () -> false));
    Alcotest.test_case "irules_for filters by operator" `Quick (fun () ->
        let mk op name =
          Irule.make ~name
            ~lhs:(pop op "D2" [ v 1 ])
            ~rhs:(tn ("A" ^ name) "D3" [ tv 1 ])
            ()
        in
        let rs = Ruleset.make ~irules:[ mk "RET" "a"; mk "RET" "b"; mk "SEL" "c" ] "t" in
        Alcotest.(check int) "two" 2 (List.length (Ruleset.irules_for rs "RET")));
    Alcotest.test_case "shipped rule sets validate" `Quick (fun () ->
        let cat =
          Prairie_catalog.Catalog.of_files
            [ Prairie_algebra.Relational.relation ~name:"R" ~cardinality:10 [ ("a", 5) ] ]
        in
        check "relational" true
          (Ruleset.validate (Prairie_algebra.Relational.ruleset cat) = Ok ());
        check "oodb" true (Ruleset.validate (Prairie_algebra.Oodb.ruleset cat) = Ok ()));
    Alcotest.test_case "paper rule counts" `Quick (fun () ->
        let cat = Prairie_catalog.Catalog.empty in
        let oodb = Prairie_algebra.Oodb.ruleset cat in
        Alcotest.(check int) "22 T-rules" 22 (Ruleset.trule_count oodb);
        Alcotest.(check int) "11 I-rules" 11 (Ruleset.irule_count oodb));
  ]

let suites =
  [
    ("rules.trule", trule_tests);
    ("rules.irule", irule_tests);
    ("rules.ruleset", ruleset_tests);
  ]
