(* Units and properties for the value domain: attributes, orders,
   predicates, universal values. *)

module A = Prairie_value.Attribute
module O = Prairie_value.Order
module P = Prairie_value.Predicate
module V = Prairie_value.Value

let attr o n = A.make ~owner:o ~name:n
let a1 = attr "R" "a"
let a2 = attr "R" "b"
let a3 = attr "S" "a"
let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* ------------------------- generators ------------------------- *)

let gen_attr =
  QCheck2.Gen.(
    let* o = oneofl [ "R"; "S"; "T" ] in
    let* n = oneofl [ "a"; "b"; "c"; "d" ] in
    return (A.make ~owner:o ~name:n))

let gen_order =
  QCheck2.Gen.(
    oneof [ return O.Any; map (fun l -> O.sorted l) (list_size (1 -- 3) gen_attr) ])

let gen_term =
  QCheck2.Gen.(
    oneof
      [
        map (fun a -> P.T_attr a) gen_attr;
        map (fun i -> P.T_int i) (0 -- 20);
        map (fun s -> P.T_string s) (oneofl [ "x"; "y" ]);
      ])

let gen_cmp = QCheck2.Gen.oneofl [ P.Eq; P.Ne; P.Lt; P.Le; P.Gt; P.Ge ]

let gen_pred =
  QCheck2.Gen.(
    sized_size (0 -- 3) @@ fix (fun self n ->
        if n = 0 then
          oneof
            [
              return P.True;
              return P.False;
              map3 (fun c t1 t2 -> P.Cmp (c, t1, t2)) gen_cmp gen_term gen_term;
            ]
        else
          oneof
            [
              map3 (fun c t1 t2 -> P.Cmp (c, t1, t2)) gen_cmp gen_term gen_term;
              map2 (fun a b -> P.And (a, b)) (self (n / 2)) (self (n / 2));
              map2 (fun a b -> P.Or (a, b)) (self (n / 2)) (self (n / 2));
              map (fun a -> P.Not a) (self (n - 1));
            ]))

let qtest name gen prop = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count:200 gen prop)

(* ------------------------- attribute ------------------------- *)

let attribute_tests =
  [
    Alcotest.test_case "to_string qualifies" `Quick (fun () ->
        check_str "qualified" "R.a" (A.to_string a1);
        check_str "unqualified" "x" (A.to_string (attr "" "x")));
    Alcotest.test_case "of_string round trip" `Quick (fun () ->
        check "roundtrip" true (A.equal a1 (A.of_string "R.a"));
        check "bare" true (A.equal (attr "" "z") (A.of_string "z")));
    Alcotest.test_case "compare orders by owner then name" `Quick (fun () ->
        check "lt" true (A.compare a1 a3 < 0);
        check "name" true (A.compare a1 a2 < 0));
    qtest "of_string/to_string inverse" gen_attr (fun a ->
        A.equal a (A.of_string (A.to_string a)));
    qtest "equal iff compare = 0" (QCheck2.Gen.pair gen_attr gen_attr)
      (fun (x, y) -> A.equal x y = (A.compare x y = 0));
  ]

(* ------------------------- order ------------------------- *)

let order_tests =
  [
    Alcotest.test_case "sorted [] collapses to Any" `Quick (fun () ->
        check "any" true (O.is_any (O.sorted [])));
    Alcotest.test_case "satisfies: any is always satisfied" `Quick (fun () ->
        check "any/any" true (O.satisfies ~required:O.Any ~actual:O.Any);
        check "any/sorted" true
          (O.satisfies ~required:O.Any ~actual:(O.sorted_on a1)));
    Alcotest.test_case "satisfies: prefix rule" `Quick (fun () ->
        check "exact" true
          (O.satisfies ~required:(O.sorted_on a1) ~actual:(O.sorted_on a1));
        check "longer actual ok" true
          (O.satisfies ~required:(O.sorted_on a1) ~actual:(O.sorted [ a1; a2 ]));
        check "shorter actual not ok" false
          (O.satisfies ~required:(O.sorted [ a1; a2 ]) ~actual:(O.sorted_on a1));
        check "different attr" false
          (O.satisfies ~required:(O.sorted_on a1) ~actual:(O.sorted_on a2));
        check "sorted vs any" false
          (O.satisfies ~required:(O.sorted_on a1) ~actual:O.Any));
    qtest "satisfies is reflexive" gen_order (fun o ->
        O.satisfies ~required:o ~actual:o);
    qtest "satisfies is transitive on generated orders"
      (QCheck2.Gen.triple gen_order gen_order gen_order) (fun (x, y, z) ->
        (not (O.satisfies ~required:x ~actual:y && O.satisfies ~required:y ~actual:z))
        || O.satisfies ~required:x ~actual:z);
    qtest "equal iff compare = 0" (QCheck2.Gen.pair gen_order gen_order)
      (fun (x, y) -> O.equal x y = (O.compare x y = 0));
  ]

(* ------------------------- predicate ------------------------- *)

let eq_attr x y = P.Cmp (P.Eq, P.T_attr x, P.T_attr y)
let eq_const x k = P.Cmp (P.Eq, P.T_attr x, P.T_int k)

let predicate_tests =
  [
    Alcotest.test_case "conjuncts flattens" `Quick (fun () ->
        let p = P.And (P.And (eq_const a1 1, eq_const a2 2), eq_const a3 3) in
        check_int "three" 3 (List.length (P.conjuncts p));
        check_int "true is empty" 0 (List.length (P.conjuncts P.True)));
    Alcotest.test_case "conj simplifies true/false" `Quick (fun () ->
        check "true unit" true (P.equal (P.conj P.True (eq_const a1 1)) (eq_const a1 1));
        check "false zero" true (P.equal (P.conj (eq_const a1 1) P.False) P.False));
    Alcotest.test_case "owners" `Quick (fun () ->
        Alcotest.(check (list string))
          "sorted owners" [ "R"; "S" ]
          (P.owners (eq_attr a1 a3)));
    Alcotest.test_case "split by owners" `Quick (fun () ->
        let p = P.And (eq_const a1 1, eq_const a3 2) in
        let mine, rest = P.split ~owners:[ "R" ] p in
        check "mine" true (P.equal mine (eq_const a1 1));
        check "rest" true (P.equal rest (eq_const a3 2)));
    Alcotest.test_case "is_equijoin" `Quick (fun () ->
        check "equijoin" true (P.is_equijoin (eq_attr a1 a3));
        check "same owner" false (P.is_equijoin (eq_attr a1 a2));
        check "constant" false (P.is_equijoin (eq_const a1 1));
        check "true" false (P.is_equijoin P.True));
    Alcotest.test_case "equality_constants finds both orientations" `Quick
      (fun () ->
        let p = P.And (eq_const a1 7, P.Cmp (P.Eq, P.T_int 9, P.T_attr a2)) in
        check_int "two" 2 (List.length (P.equality_constants p)));
    Alcotest.test_case "eval basics" `Quick (fun () ->
        let lookup a = if A.equal a a1 then Some (P.T_int 5) else None in
        check "eq" true (P.eval ~lookup (eq_const a1 5));
        check "ne" false (P.eval ~lookup (eq_const a1 6));
        check "unknown attr false" false (P.eval ~lookup (eq_const a2 1));
        check "not" true (P.eval ~lookup (P.Not (eq_const a1 6)));
        check "mixed int float" true
          (P.eval ~lookup (P.Cmp (P.Lt, P.T_attr a1, P.T_float 5.5))));
    qtest "of_conjuncts inverts conjuncts" gen_pred (fun p ->
        let q = P.of_conjuncts (P.conjuncts p) in
        (* evaluating both under an arbitrary environment must agree *)
        let lookup a =
          Some (P.T_int (Hashtbl.hash (A.to_string a) mod 5))
        in
        P.eval ~lookup p = P.eval ~lookup q
        || P.conjuncts p <> P.conjuncts q (* non-conjunctive shapes *));
    qtest "split preserves semantics (mine AND rest = p)"
      gen_pred (fun p ->
        let mine, rest = P.split ~owners:[ "R" ] p in
        let lookup a = Some (P.T_int (Hashtbl.hash (A.to_string a) mod 5)) in
        P.eval ~lookup (P.conj mine rest) = P.eval ~lookup p);
  ]

(* ------------------------- value ------------------------- *)

let value_tests =
  [
    Alcotest.test_case "numeric promotion" `Quick (fun () ->
        check "int add" true (V.equal (V.add (V.Int 2) (V.Int 3)) (V.Int 5));
        check "mixed add" true
          (V.equal (V.add (V.Int 2) (V.Float 0.5)) (V.Float 2.5));
        check "int div stays exact" true
          (V.equal (V.div (V.Int 6) (V.Int 3)) (V.Int 2));
        check "int div inexact goes float" true
          (V.equal (V.div (V.Int 7) (V.Int 2)) (V.Float 3.5)));
    Alcotest.test_case "string concat via add" `Quick (fun () ->
        check "concat" true (V.equal (V.add (V.Str "a") (V.Str "b")) (V.Str "ab")));
    Alcotest.test_case "attrs union via add" `Quick (fun () ->
        match V.add (V.Attrs [ a1; a2 ]) (V.Attrs [ a2; a3 ]) with
        | V.Attrs l -> check_int "three" 3 (List.length l)
        | _ -> Alcotest.fail "expected attrs");
    Alcotest.test_case "type errors raised" `Quick (fun () ->
        Alcotest.check_raises "bool add"
          (V.Type_error "add: true")
          (fun () -> ignore (V.add (V.Bool true) (V.Int 1)));
        Alcotest.check_raises "truthy int"
          (V.Type_error "test must be boolean: 1")
          (fun () -> ignore (V.truthy (V.Int 1))));
    Alcotest.test_case "null coercion defaults" `Quick (fun () ->
        check "order" true (O.is_any (V.to_order V.Null));
        check "pred" true (P.equal (V.to_pred V.Null) P.True);
        check_int "attrs" 0 (List.length (V.to_attrs V.Null)));
    Alcotest.test_case "cmp" `Quick (fun () ->
        check "lt" true (V.cmp P.Lt (V.Int 1) (V.Float 1.5));
        check "eq deep" true (V.cmp P.Eq (V.Attrs [ a1 ]) (V.Attrs [ a1 ]));
        check "ne" true (V.cmp P.Ne (V.Str "x") (V.Str "y")));
    Alcotest.test_case "ty parsing" `Quick (fun () ->
        check "cost" true (V.ty_of_string "COST" = Some V.T_cost);
        check "case insensitive" true (V.ty_of_string "order" = Some V.T_order);
        check "unknown" true (V.ty_of_string "BLOB" = None));
    Alcotest.test_case "has_ty" `Quick (fun () ->
        check "int float for cost" true (V.has_ty (V.Float 1.0) V.T_cost);
        check "int is float-compatible" true (V.has_ty (V.Int 1) V.T_float);
        check "null any" true (V.has_ty V.Null V.T_pred);
        check "mismatch" false (V.has_ty (V.Str "x") V.T_int));
  ]

let suites =
  [
    ("value.attribute", attribute_tests);
    ("value.order", order_tests);
    ("value.predicate", predicate_tests);
    ("value.value", value_tests);
  ]
