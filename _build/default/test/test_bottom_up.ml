(* The bottom-up (System R-style) strategy must agree with the top-down
   Volcano engine on every query. *)

module W = Prairie_workload
module Opt = Prairie_optimizers.Optimizers
module Search = Prairie_volcano.Search
module Bottom_up = Prairie_volcano.Bottom_up
module Plan = Prairie_volcano.Plan
module Memo = Prairie_volcano.Memo
module D = Prairie.Descriptor
module V = Prairie_value.Value
module O = Prairie_value.Order
module A = Prairie_value.Attribute
module P = Prairie_value.Predicate
module Rel = Prairie_algebra.Relational
module Catalog = Prairie_catalog.Catalog

let check = Alcotest.(check bool)
let attr o n = A.make ~owner:o ~name:n

let agreement q joins seed =
  let inst = W.Queries.instance q ~joins ~seed in
  let opt = Opt.oodb_prairie inst.W.Queries.catalog in
  let expr, required = opt.Opt.prepare inst.W.Queries.expr in
  let top = Opt.optimize opt inst.W.Queries.expr in
  let bottom = Bottom_up.optimize ~required opt.Opt.volcano expr in
  match (top.Opt.plan, bottom.Bottom_up.plan) with
  | Some p1, Some p2 -> Float.abs (Plan.cost p1 -. Plan.cost p2) < 1e-6
  | None, None -> true
  | Some _, None | None, Some _ -> false

let oodb_tests =
  List.map
    (fun q ->
      Alcotest.test_case
        (Printf.sprintf "%s: bottom-up == top-down" (W.Queries.name q))
        `Quick
        (fun () ->
          List.iter
            (fun joins ->
              List.iter
                (fun seed -> check "agree" true (agreement q joins seed))
                [ 3; 17 ])
            [ 1; 2 ]))
    W.Queries.all

let rel_catalog =
  Catalog.of_files
    [
      Rel.relation ~name:"R1" ~cardinality:900 ~indexes:[ "a" ] [ ("a", 30); ("b", 10) ];
      Rel.relation ~name:"R2" ~cardinality:400 [ ("a", 30); ("c", 5) ];
      Rel.relation ~name:"R3" ~cardinality:80 [ ("c", 5) ];
    ]

let eq a b = P.Cmp (P.Eq, P.T_attr a, P.T_attr b)

let rel_query () =
  Rel.join rel_catalog
    ~pred:(eq (attr "R2" "c") (attr "R3" "c"))
    (Rel.join rel_catalog
       ~pred:(eq (attr "R1" "a") (attr "R2" "a"))
       (Rel.ret rel_catalog "R1") (Rel.ret rel_catalog "R2"))
    (Rel.ret rel_catalog "R3")

let relational_tests =
  [
    Alcotest.test_case "relational 3-way join agrees" `Quick (fun () ->
        let opt = Opt.relational rel_catalog in
        let top = Opt.optimize opt (rel_query ()) in
        let bottom = Bottom_up.optimize opt.Opt.volcano (rel_query ()) in
        match (top.Opt.plan, bottom.Bottom_up.plan) with
        | Some p1, Some p2 ->
          Alcotest.(check (float 1e-6)) "cost" (Plan.cost p1) (Plan.cost p2)
        | _ -> Alcotest.fail "plans expected on both sides");
    Alcotest.test_case "required order handled via interesting orders" `Quick
      (fun () ->
        let required =
          D.of_list [ ("tuple_order", V.Order (O.sorted_on (attr "R1" "b"))) ]
        in
        let opt = Opt.relational rel_catalog in
        let top = Opt.optimize ~required opt (rel_query ()) in
        let bottom = Bottom_up.optimize ~required opt.Opt.volcano (rel_query ()) in
        match (top.Opt.plan, bottom.Bottom_up.plan) with
        | Some p1, Some p2 ->
          Alcotest.(check (float 1e-6)) "cost" (Plan.cost p1) (Plan.cost p2);
          (* both must actually deliver the order *)
          check "order delivered" true
            (O.satisfies
               ~required:(O.sorted_on (attr "R1" "b"))
               ~actual:(D.get_order (Plan.descriptor p2) "tuple_order"))
        | _ -> Alcotest.fail "plans expected on both sides");
    Alcotest.test_case "bottom-up explores at least as much as top-down" `Quick
      (fun () ->
        let opt = Opt.relational rel_catalog in
        let top = Opt.optimize opt (rel_query ()) in
        let bottom = Bottom_up.optimize opt.Opt.volcano (rel_query ()) in
        check "exhaustive" true
          (bottom.Bottom_up.groups_explored
          >= Search.group_count top.Opt.search);
        check "counted requirements" true
          (bottom.Bottom_up.requirements_considered
          >= bottom.Bottom_up.groups_explored));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"strategies agree on random relational queries"
         ~count:25
         QCheck2.Gen.(0 -- 10_000)
         (fun seed ->
           let rng = Prairie_util.Rng.create seed in
           let catalog =
             Catalog.of_files
               [
                 Rel.relation ~name:"R1"
                   ~cardinality:(Prairie_util.Rng.in_range rng 10 3000)
                   ~indexes:(if Prairie_util.Rng.bool rng then [ "a" ] else [])
                   [ ("a", 40); ("b", 15) ];
                 Rel.relation ~name:"R2"
                   ~cardinality:(Prairie_util.Rng.in_range rng 10 3000)
                   [ ("a", 40) ];
               ]
           in
           let q =
             Rel.join catalog
               ~pred:(eq (attr "R1" "a") (attr "R2" "a"))
               (Rel.ret catalog "R1") (Rel.ret catalog "R2")
           in
           let opt = Opt.relational catalog in
           let top = Opt.optimize opt q in
           let bottom = Bottom_up.optimize opt.Opt.volcano q in
           match (top.Opt.plan, bottom.Bottom_up.plan) with
           | Some p1, Some p2 -> Float.abs (Plan.cost p1 -. Plan.cost p2) < 1e-6
           | None, None -> true
           | Some _, None | None, Some _ -> false));
  ]

let suites =
  [ ("bottom_up.oodb", oodb_tests); ("bottom_up.relational", relational_tests) ]
