(* The distributed (R*-style) rule set: a second physical property. *)

module Dist = Prairie_distributed.Distributed
module P2v = Prairie_p2v
module Search = Prairie_volcano.Search
module Plan = Prairie_volcano.Plan
module Naive = Prairie.Naive
module Rel = Prairie_algebra.Relational
module Catalog = Prairie_catalog.Catalog
module D = Prairie.Descriptor
module V = Prairie_value.Value
module A = Prairie_value.Attribute
module P = Prairie_value.Predicate
module Irule = Prairie.Irule

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let attr o n = A.make ~owner:o ~name:n
let eq a b = P.Cmp (P.Eq, P.T_attr a, P.T_attr b)

let catalog =
  Catalog.of_files
    [
      Rel.relation ~name:"R1" ~cardinality:5000 ~tuple_size:100 [ ("a", 50) ];
      Rel.relation ~name:"R2" ~cardinality:200 ~tuple_size:100 [ ("a", 50) ];
      Rel.relation ~name:"R3" ~cardinality:100 ~tuple_size:100 [ ("a", 50) ];
    ]

let sites = [ ("R1", "paris"); ("R2", "austin"); ("R3", "austin") ]
let ruleset = Dist.ruleset catalog ~sites
let translation = P2v.Translate.translate ruleset

let optimizer =
  {
    Prairie_optimizers.Optimizers.name = "distributed";
    volcano = translation.P2v.Translate.volcano;
    prepare = P2v.Translate.prepare_query translation;
  }

let two_way () =
  Dist.join catalog
    ~pred:(eq (attr "R1" "a") (attr "R2" "a"))
    (Dist.ret ~sites catalog "R1")
    (Dist.ret ~sites catalog "R2")

let optimize ?required expr =
  Prairie_optimizers.Optimizers.optimize ?required optimizer expr

let classification_tests =
  [
    Alcotest.test_case "site is classified physical automatically" `Quick
      (fun () ->
        let c = P2v.Classify.classify ruleset in
        check "site physical" true (List.mem "site" c.P2v.Classify.physical);
        check "tuple_order not (unused here)" false
          (List.mem "tuple_order" c.P2v.Classify.physical));
    Alcotest.test_case "SHIP detected as the enforcer-operator" `Quick
      (fun () ->
        let infos = P2v.Enforcers.detect ruleset in
        check_int "one" 1 (List.length infos);
        let info = List.hd infos in
        Alcotest.(check string) "op" "SHIP" info.P2v.Enforcers.operator;
        Alcotest.(check (list string))
          "enforces site" [ "site" ] info.P2v.Enforcers.enforced_properties;
        Alcotest.(check (list string))
          "Ship is the enforcer" [ "Ship" ]
          (List.map Irule.algorithm info.P2v.Enforcers.algorithm_rules));
    Alcotest.test_case "merge drops the generated SHIP-intro rules" `Quick
      (fun () ->
        let m = P2v.Merge.merge ruleset in
        check_int "3 trans (commute + assoc both ways)" 3
          (P2v.Merge.trans_rule_count m);
        check_int "4 impl" 4 (P2v.Merge.impl_rule_count m);
        check_int "1 enforcer" 1 (P2v.Merge.enforcer_count m));
    Alcotest.test_case "rule set validates" `Quick (fun () ->
        check "valid" true (Prairie.Ruleset.validate ruleset = Ok ()));
  ]

let planning_tests =
  [
    Alcotest.test_case "co-located join needs no shipping" `Quick (fun () ->
        let q =
          Dist.join catalog
            ~pred:(eq (attr "R2" "a") (attr "R3" "a"))
            (Dist.ret ~sites catalog "R2")
            (Dist.ret ~sites catalog "R3")
        in
        let r = optimize q in
        match r.Prairie_optimizers.Optimizers.plan with
        | Some p ->
          check "no Ship" false (List.mem "Ship" (Plan.algorithms p));
          Alcotest.(check string)
            "result in austin" "austin"
            (V.to_string_value (D.get (Plan.descriptor p) "site"))
        | None -> Alcotest.fail "no plan");
    Alcotest.test_case "cross-site join ships the smaller stream" `Quick
      (fun () ->
        (* R1 (5000 rows, paris) join R2 (200 rows, austin): shipping R2 to
           paris is far cheaper than shipping R1 to austin *)
        let r = optimize (two_way ()) in
        match r.Prairie_optimizers.Optimizers.plan with
        | Some p ->
          check "ships" true (List.mem "Ship" (Plan.algorithms p));
          Alcotest.(check string)
            "executes in paris" "paris"
            (V.to_string_value (D.get (Plan.descriptor p) "site"))
        | None -> Alcotest.fail "no plan");
    Alcotest.test_case "a required result site is honored" `Quick (fun () ->
        let required = Dist.require_site "austin" in
        let r = optimize ~required (two_way ()) in
        match r.Prairie_optimizers.Optimizers.plan with
        | Some p ->
          Alcotest.(check string)
            "austin" "austin"
            (V.to_string_value (D.get (Plan.descriptor p) "site"));
          (* more expensive than the unconstrained optimum *)
          let free = optimize (two_way ()) in
          check "constraint costs" true
            (r.Prairie_optimizers.Optimizers.cost
            >= free.Prairie_optimizers.Optimizers.cost -. 1e-9)
        | None -> Alcotest.fail "no plan");
    Alcotest.test_case "requiring an unknown site still works via Ship" `Quick
      (fun () ->
        let required = Dist.require_site "tokyo" in
        let r = optimize ~required (two_way ()) in
        match r.Prairie_optimizers.Optimizers.plan with
        | Some p ->
          check "ships to tokyo" true (List.mem "Ship" (Plan.algorithms p));
          Alcotest.(check string)
            "tokyo" "tokyo"
            (V.to_string_value (D.get (Plan.descriptor p) "site"))
        | None -> Alcotest.fail "no plan");
    Alcotest.test_case "volcano agrees with the exhaustive oracle" `Quick
      (fun () ->
        List.iter
          (fun required ->
            let naive = Naive.best_plan ruleset ~required (two_way ()) in
            let vol = optimize ~required (two_way ()) in
            match naive with
            | Some n ->
              Alcotest.(check (float 1e-6))
                "cost" n.Naive.cost vol.Prairie_optimizers.Optimizers.cost
            | None -> Alcotest.fail "oracle found no plan")
          [ D.empty; Dist.require_site "austin"; Dist.require_site "paris" ]);
    Alcotest.test_case "bottom-up strategy handles site requirements" `Quick
      (fun () ->
        let required = Dist.require_site "austin" in
        let top = optimize ~required (two_way ()) in
        let bu =
          Prairie_volcano.Bottom_up.optimize ~required optimizer.Prairie_optimizers.Optimizers.volcano
            (two_way ())
        in
        match bu.Prairie_volcano.Bottom_up.plan with
        | Some p ->
          Alcotest.(check (float 1e-6))
            "cost" top.Prairie_optimizers.Optimizers.cost (Plan.cost p)
        | None -> Alcotest.fail "no bottom-up plan");
    Alcotest.test_case "three-way join across sites plans sensibly" `Quick
      (fun () ->
        let q =
          Dist.join catalog
            ~pred:(eq (attr "R2" "a") (attr "R3" "a"))
            (two_way ())
            (Dist.ret ~sites catalog "R3")
        in
        let r = optimize q in
        check "plan found" true (r.Prairie_optimizers.Optimizers.plan <> None);
        match r.Prairie_optimizers.Optimizers.plan with
        | Some p ->
          check "hash joins used" true (List.mem "Hash_join" (Plan.algorithms p))
        | None -> ());
  ]

let suites =
  [
    ("distributed.p2v", classification_tests);
    ("distributed.planning", planning_tests);
  ]
