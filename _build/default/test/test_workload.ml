(* The paper's workload: catalogs, E1-E4, Q1-Q8. *)

module W = Prairie_workload
module Expr = Prairie.Expr
module Catalog = Prairie_catalog.Catalog
module SF = Prairie_catalog.Stored_file
module P = Prairie_value.Predicate

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let catalog_tests =
  [
    Alcotest.test_case "catalog holds base and detail classes" `Quick (fun () ->
        let cat = W.Catalogs.make (W.Catalogs.default_spec ~classes:3 ~indexed:true ~seed:1) in
        check_int "six files" 6 (List.length (Catalog.files cat));
        check "C2 exists" true (Catalog.mem cat "C2");
        check "DC3 exists" true (Catalog.mem cat "DC3"));
    Alcotest.test_case "index presence follows the spec" `Quick (fun () ->
        let idx = W.Catalogs.make (W.Catalogs.default_spec ~classes:2 ~indexed:true ~seed:1) in
        let no = W.Catalogs.make (W.Catalogs.default_spec ~classes:2 ~indexed:false ~seed:1) in
        check "indexed" true (Catalog.has_index_on idx (W.Catalogs.b_attr 1));
        check "not indexed" false (Catalog.has_index_on no (W.Catalogs.b_attr 1)));
    Alcotest.test_case "same seed, same cardinalities" `Quick (fun () ->
        let c1 = W.Catalogs.make (W.Catalogs.default_spec ~classes:2 ~indexed:false ~seed:5) in
        let c2 = W.Catalogs.make (W.Catalogs.default_spec ~classes:2 ~indexed:true ~seed:5) in
        check_int "equal card"
          (Catalog.find_exn c1 "C1").SF.cardinality
          (Catalog.find_exn c2 "C1").SF.cardinality);
    Alcotest.test_case "reference attributes chain the classes" `Quick (fun () ->
        let cat = W.Catalogs.make (W.Catalogs.default_spec ~classes:3 ~indexed:false ~seed:2) in
        check "rC1 -> C2" true (Catalog.ref_target cat (W.Catalogs.ref_attr 1) = Some "C2");
        check "dC2 -> DC2" true (Catalog.ref_target cat (W.Catalogs.detail_ref 2) = Some "DC2"));
    Alcotest.test_case "join predicates are reference equalities" `Quick
      (fun () ->
        check "equijoin" true (P.is_equijoin (W.Catalogs.join_pred 1)));
    Alcotest.test_case "selection predicate has one conjunct per class" `Quick
      (fun () ->
        check_int "four" 4
          (List.length (P.conjuncts (W.Catalogs.selection_pred ~classes:4))));
  ]

let expression_tests =
  [
    Alcotest.test_case "E1 shape" `Quick (fun () ->
        let cat = W.Catalogs.make (W.Catalogs.default_spec ~classes:3 ~indexed:false ~seed:3) in
        let e = W.Expressions.e1 cat ~joins:2 in
        Alcotest.(check string)
          "shape" "JOIN(JOIN(RET(C1), RET(C2)), RET(C3))" (Expr.to_string e);
        check "initialized" true (Prairie.Descriptor.mem (Expr.descriptor e) "num_records"));
    Alcotest.test_case "E2 materializes every class" `Quick (fun () ->
        let cat = W.Catalogs.make (W.Catalogs.default_spec ~classes:2 ~indexed:false ~seed:3) in
        let e = W.Expressions.e2 cat ~joins:1 in
        Alcotest.(check string)
          "shape" "JOIN(MAT(RET(C1)), MAT(RET(C2)))" (Expr.to_string e));
    Alcotest.test_case "E3 and E4 add the root SELECT" `Quick (fun () ->
        let cat = W.Catalogs.make (W.Catalogs.default_spec ~classes:2 ~indexed:false ~seed:3) in
        Alcotest.(check string)
          "E3" "SELECT" (Expr.label (W.Expressions.e3 cat ~joins:1));
        Alcotest.(check string)
          "E4" "SELECT" (Expr.label (W.Expressions.e4 cat ~joins:1)));
    Alcotest.test_case "operator trees are well-formed" `Quick (fun () ->
        let cat = W.Catalogs.make (W.Catalogs.default_spec ~classes:4 ~indexed:true ~seed:4) in
        List.iter
          (fun fam ->
            check "operator tree" true
              (Expr.is_operator_tree (W.Expressions.build fam cat ~joins:3)))
          W.Expressions.all_families);
  ]

let query_tests =
  [
    Alcotest.test_case "Table 5 mapping" `Quick (fun () ->
        check "Q1" true (W.Queries.family W.Queries.Q1 = W.Expressions.E1 && not (W.Queries.indexed W.Queries.Q1));
        check "Q2" true (W.Queries.family W.Queries.Q2 = W.Expressions.E1 && W.Queries.indexed W.Queries.Q2);
        check "Q7" true (W.Queries.family W.Queries.Q7 = W.Expressions.E4 && not (W.Queries.indexed W.Queries.Q7));
        check "Q8" true (W.Queries.family W.Queries.Q8 = W.Expressions.E4 && W.Queries.indexed W.Queries.Q8));
    Alcotest.test_case "of_int" `Quick (fun () ->
        check "1" true (W.Queries.of_int 1 = Some W.Queries.Q1);
        check "8" true (W.Queries.of_int 8 = Some W.Queries.Q8);
        check "9" true (W.Queries.of_int 9 = None));
    Alcotest.test_case "instances vary by seed" `Quick (fun () ->
        let is = W.Queries.instances W.Queries.Q1 ~joins:2 ~seeds:[ 1; 2; 3 ] in
        check_int "three" 3 (List.length is);
        let cards =
          List.map
            (fun (i : W.Queries.instance) ->
              (Catalog.find_exn i.W.Queries.catalog "C1").SF.cardinality)
            is
        in
        check "not all equal" true (List.sort_uniq compare cards <> [ List.hd cards ] || List.length (List.sort_uniq compare cards) > 1));
    Alcotest.test_case "instance expression uses the right class count" `Quick
      (fun () ->
        let i = W.Queries.instance W.Queries.Q1 ~joins:3 ~seed:1 in
        check_int "four classes" 4 (List.length (Expr.stored_files i.W.Queries.expr)));
  ]

let suites =
  [
    ("workload.catalogs", catalog_tests);
    ("workload.expressions", expression_tests);
    ("workload.queries", query_tests);
  ]
