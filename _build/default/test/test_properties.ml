(* Cross-cutting property tests: memo invariants under random insertions,
   pattern match/instantiate identities. *)

module Memo = Prairie_volcano.Memo
module Expr = Prairie.Expr
module Pattern = Prairie.Pattern
module Binding = Prairie.Pattern.Binding
module D = Prairie.Descriptor
module V = Prairie_value.Value

let qtest name ?(count = 200) gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen prop)

(* random small operator trees over a fixed leaf vocabulary *)
let gen_expr =
  QCheck2.Gen.(
    let leaf =
      map
        (fun name -> Expr.stored ~desc:(D.of_list [ ("file", V.Str name) ]) name)
        (oneofl [ "F1"; "F2"; "F3" ])
    in
    let desc = map (fun i -> D.of_list [ ("k", V.Int i) ]) (0 -- 2) in
    sized_size (0 -- 4) @@ fix (fun self n ->
        if n = 0 then leaf
        else
          oneof
            [
              leaf;
              map2 (fun d x -> Expr.operator "U" d [ x ]) desc (self (n - 1));
              map3
                (fun d x y -> Expr.operator "B" d [ x; y ])
                desc (self (n / 2)) (self (n / 2));
            ]))

let memo_tests =
  [
    qtest "insert_expr is idempotent" gen_expr (fun e ->
        let m = Memo.create () in
        let g1 = Memo.insert_expr m e in
        let groups = Memo.group_count m and lexprs = Memo.lexpr_count m in
        let g2 = Memo.insert_expr m e in
        g1 = g2 && Memo.group_count m = groups && Memo.lexpr_count m = lexprs);
    qtest "group count equals the distinct subtree count"
      gen_expr (fun e ->
        (* structurally distinct (label, desc, children) subtrees, counted
           with the same identity the memo uses *)
        let m = Memo.create () in
        ignore (Memo.insert_expr m e);
        let module S = Set.Make (Expr) in
        let rec subtrees acc e =
          let acc = S.add e acc in
          List.fold_left subtrees acc (Expr.inputs e)
        in
        Memo.group_count m = S.cardinal (subtrees S.empty e));
    qtest "shared subtrees share groups"
      (QCheck2.Gen.pair gen_expr gen_expr) (fun (a, b) ->
        let m = Memo.create () in
        let ga = Memo.insert_expr m a in
        let gb = Memo.insert_expr m b in
        (* equal trees land in equal groups *)
        (not (Expr.equal a b)) || ga = gb);
    qtest "insertion order does not change the group count"
      (QCheck2.Gen.pair gen_expr gen_expr) (fun (a, b) ->
        let m1 = Memo.create () in
        ignore (Memo.insert_expr m1 a);
        ignore (Memo.insert_expr m1 b);
        let m2 = Memo.create () in
        ignore (Memo.insert_expr m2 b);
        ignore (Memo.insert_expr m2 a);
        Memo.group_count m1 = Memo.group_count m2
        && Memo.lexpr_count m1 = Memo.lexpr_count m2);
  ]

(* a pattern mirroring a tree's top shape, with fresh descriptor vars *)
let shape_pattern e =
  match e with
  | Expr.Node (Expr.Operator, name, _, inputs) ->
    Some
      ( Pattern.Pop
          (name, "DT", List.mapi (fun i _ -> Pattern.Pvar (i + 1)) inputs),
        Pattern.Tnode
          (name, "DT", List.mapi (fun i _ -> Pattern.Tvar (i + 1, None)) inputs)
      )
  | Expr.Node (Expr.Algorithm, _, _, _) | Expr.Stored _ -> None

let pattern_tests =
  [
    qtest "match then instantiate is the identity" gen_expr (fun e ->
        match shape_pattern e with
        | None -> true (* leaves trivially hold *)
        | Some (pat, tmpl) -> (
          match Pattern.matches pat e with
          | None -> false (* a mirrored pattern must match *)
          | Some b ->
            Expr.equal e (Pattern.instantiate ~kind:Expr.Operator tmpl b)));
    qtest "matching binds every pattern descriptor variable" gen_expr (fun e ->
        match shape_pattern e with
        | None -> true
        | Some (pat, _) -> (
          match Pattern.matches pat e with
          | None -> false
          | Some b ->
            List.for_all
              (fun d -> Binding.desc_opt b d <> None)
              (Pattern.desc_vars pat)));
    qtest "stream descriptors equal the subtree descriptors" gen_expr (fun e ->
        match shape_pattern e with
        | None -> true
        | Some (pat, _) -> (
          match Pattern.matches pat e with
          | None -> false
          | Some b ->
            List.for_all
              (fun i ->
                D.equal
                  (Binding.desc b (Pattern.stream_desc_name i))
                  (Expr.descriptor (Binding.stream b i)))
              (Pattern.vars pat)));
  ]

let suites =
  [ ("properties.memo", memo_tests); ("properties.pattern", pattern_tests) ]
