(* The rule-specification language: lexer, parser, elaboration, rendering. *)

module Dsl = Prairie_dsl
module Token = Prairie_dsl.Token
module Catalog = Prairie_catalog.Catalog
module Rel = Prairie_algebra.Relational

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let tokens src = List.map (fun s -> s.Dsl.Lexer.token) (Dsl.Lexer.tokenize src)

let lexer_tests =
  [
    Alcotest.test_case "operators and punctuation" `Quick (fun () ->
        check "arrow" true
          (tokens "==> == = != <= >="
          = Token.[ ARROW; EQ; ASSIGN; NEQ; LE; GE; EOF ]));
    Alcotest.test_case "stream variables" `Quick (fun () ->
        check "vars" true (tokens "?1 ?23" = Token.[ STREAM_VAR 1; STREAM_VAR 23; EOF ]));
    Alcotest.test_case "keywords vs identifiers" `Quick (fun () ->
        check "kw" true
          (tokens "trule irule foo TRUE DONT_CARE"
          = Token.[ KW_TRULE; KW_IRULE; IDENT "foo"; KW_TRUE; KW_DONT_CARE; EOF ]));
    Alcotest.test_case "numbers" `Quick (fun () ->
        check "int float" true (tokens "42 4.5" = Token.[ INT 42; FLOAT 4.5; EOF ]));
    Alcotest.test_case "comments are skipped" `Quick (fun () ->
        check "line" true (tokens "a // comment\nb" = Token.[ IDENT "a"; IDENT "b"; EOF ]);
        check "block" true (tokens "a /* x\ny */ b" = Token.[ IDENT "a"; IDENT "b"; EOF ]));
    Alcotest.test_case "string literals with escapes" `Quick (fun () ->
        check "str" true (tokens {|"a\"b"|} = Token.[ STRING {|a"b|}; EOF ]));
    Alcotest.test_case "positions track lines" `Quick (fun () ->
        let spans = Dsl.Lexer.tokenize "a\n  b" in
        let b = List.nth spans 1 in
        check_int "line" 2 b.Dsl.Lexer.pos.Dsl.Lexer.line;
        check_int "col" 3 b.Dsl.Lexer.pos.Dsl.Lexer.column);
    Alcotest.test_case "lex errors carry positions" `Quick (fun () ->
        check "raises" true
          (try
             ignore (Dsl.Lexer.tokenize "a $ b");
             false
           with Dsl.Lexer.Lex_error (p, _) -> p.Dsl.Lexer.line = 1));
    Alcotest.test_case "unterminated comment rejected" `Quick (fun () ->
        check "raises" true
          (try
             ignore (Dsl.Lexer.tokenize "/* foo");
             false
           with Dsl.Lexer.Lex_error _ -> true));
  ]

let minimal_spec =
  {|
ruleset tiny;
property tuple_order : ORDER;
property num_records : INT;
property tuple_size : INT;
property cost : COST;
operator RET(1);
algorithm File_scan(1);

irule ret_file_scan:
  RET(?1) : D2 ==> File_scan(?1) : D3
  test { is_dont_care(D2.tuple_order) }
  pre { D3 = D2; }
  post { D3.cost = cost_file_scan(D1.num_records, D1.tuple_size); }
|}

let helpers = Prairie_algebra.Helpers.env Catalog.empty

let parser_tests =
  [
    Alcotest.test_case "minimal spec parses" `Quick (fun () ->
        let spec = Dsl.Parser.parse minimal_spec in
        Alcotest.(check string) "name" "tiny" spec.Dsl.Ast.ruleset_name;
        check_int "props" 4 (List.length (Dsl.Ast.properties spec));
        check_int "irules" 1 (List.length (Dsl.Ast.irules spec)));
    Alcotest.test_case "sections may appear in any order" `Quick (fun () ->
        let src =
          {|ruleset t; operator A(1); algorithm X(1);
            irule r: A(?1) : D2 ==> X(?1) : D3
            post { D3.cost = 1; } test { TRUE } pre { D3 = D2; }|}
        in
        let spec = Dsl.Parser.parse src in
        let r = List.hd (Dsl.Ast.irules spec) in
        check_int "pre" 1 (List.length r.Dsl.Ast.rb_pre);
        check_int "post" 1 (List.length r.Dsl.Ast.rb_post));
    Alcotest.test_case "re-descriptored template inputs" `Quick (fun () ->
        let src =
          {|ruleset t; operator S(1); algorithm Null(1);
            irule n: S(?1) : D2 ==> Null(?1 : D3) : D4
            pre { D4 = D2; D3 = D1; D3.tuple_order = D2.tuple_order; }
            post { D4.cost = D3.cost; }|}
        in
        let spec = Dsl.Parser.parse src in
        let r = List.hd (Dsl.Ast.irules spec) in
        match r.Dsl.Ast.rb_rhs with
        | Prairie.Pattern.Tnode (_, _, [ Prairie.Pattern.Tvar (1, Some "D3") ]) -> ()
        | _ -> Alcotest.fail "re-descriptor lost");
    Alcotest.test_case "operator precedence" `Quick (fun () ->
        let src =
          {|ruleset t; operator A(1); algorithm X(1);
            irule r: A(?1) : D2 ==> X(?1) : D3
            post { D3.cost = D1.cost + D1.num_records * 2; }|}
        in
        let spec = Dsl.Parser.parse src in
        let r = List.hd (Dsl.Ast.irules spec) in
        match r.Dsl.Ast.rb_post with
        | [ Prairie.Action.Assign_prop (_, _, Prairie.Action.Binop (Prairie.Action.Add, _, Prairie.Action.Binop (Prairie.Action.Mul, _, _))) ] -> ()
        | _ -> Alcotest.fail "mul should bind tighter than add");
    Alcotest.test_case "parse errors report position" `Quick (fun () ->
        check "raises" true
          (try
             ignore (Dsl.Parser.parse "ruleset t; trule x JOIN");
             false
           with Dsl.Parser.Parse_error (_, _) -> true));
  ]

let elaborate_tests =
  [
    Alcotest.test_case "minimal spec elaborates and validates" `Quick (fun () ->
        let rs = Dsl.Elaborate.load_string ~helpers minimal_spec in
        check_int "irules" 1 (Prairie.Ruleset.irule_count rs);
        check "File_scan declared" true (List.mem "File_scan" rs.Prairie.Ruleset.algorithms));
    Alcotest.test_case "unknown property type rejected" `Quick (fun () ->
        check "raises" true
          (try
             ignore
               (Dsl.Elaborate.load_string ~helpers "ruleset t; property p : BLOB;");
             false
           with Dsl.Elaborate.Elab_error _ -> true));
    Alcotest.test_case "arity mismatch rejected" `Quick (fun () ->
        let src =
          {|ruleset t; operator A(2); algorithm X(1);
            irule r: A(?1) : D2 ==> X(?1) : D3 post { D3 = D2; }|}
        in
        check "raises" true
          (try
             ignore (Dsl.Elaborate.load_string ~helpers src);
             false
           with Dsl.Elaborate.Elab_error _ -> true));
    Alcotest.test_case "undeclared operation rejected" `Quick (fun () ->
        let src =
          {|ruleset t; operator A(1);
            irule r: A(?1) : D2 ==> Mystery(?1) : D3 post { D3 = D2; }|}
        in
        check "raises" true
          (try
             ignore (Dsl.Elaborate.load_string ~helpers src);
             false
           with Dsl.Elaborate.Elab_error _ -> true));
    Alcotest.test_case "unregistered helper rejected" `Quick (fun () ->
        let src =
          {|ruleset t; property cost : COST; operator A(1); algorithm X(1);
            irule r: A(?1) : D2 ==> X(?1) : D3
            pre { D3 = D2; } post { D3.cost = mystery_fn(1); }|}
        in
        check "raises" true
          (try
             ignore (Dsl.Elaborate.load_string ~helpers src);
             false
           with Dsl.Elaborate.Elab_error _ -> true));
  ]

(* round-trip: render the embedded rule sets, re-parse, and verify the
   optimizers behave identically *)
let roundtrip name build query_cost =
  Alcotest.test_case (name ^ " round-trips through the language") `Quick
    (fun () ->
      let catalog, ruleset, q = build () in
      let text = Dsl.Render.ruleset_to_string ruleset in
      let reparsed =
        Dsl.Elaborate.load_string ~helpers:(Prairie_algebra.Helpers.env catalog) text
      in
      check_int "same T count" (Prairie.Ruleset.trule_count ruleset)
        (Prairie.Ruleset.trule_count reparsed);
      check_int "same I count" (Prairie.Ruleset.irule_count ruleset)
        (Prairie.Ruleset.irule_count reparsed);
      Alcotest.(check (float 1e-6))
        "same optimization result" (query_cost ruleset q) (query_cost reparsed q))

let run_cost ruleset q =
  let tr = Prairie_p2v.Translate.translate ruleset in
  let ctx = Prairie_volcano.Search.create tr.Prairie_p2v.Translate.volcano in
  let expr, required = Prairie_p2v.Translate.prepare_query tr q in
  match Prairie_volcano.Search.optimize ~required ctx expr with
  | Some p -> Prairie_volcano.Plan.cost p
  | None -> infinity

let roundtrip_tests =
  [
    roundtrip "relational rule set"
      (fun () ->
        let catalog =
          Catalog.of_files
            [
              Rel.relation ~name:"R1" ~cardinality:500 [ ("a", 10) ];
              Rel.relation ~name:"R2" ~cardinality:300 [ ("a", 10) ];
            ]
        in
        let q =
          Rel.join catalog
            ~pred:
              (Prairie_value.Predicate.Cmp
                 ( Prairie_value.Predicate.Eq,
                   Prairie_value.Predicate.T_attr
                     (Prairie_value.Attribute.make ~owner:"R1" ~name:"a"),
                   Prairie_value.Predicate.T_attr
                     (Prairie_value.Attribute.make ~owner:"R2" ~name:"a") ))
            (Rel.ret catalog "R1") (Rel.ret catalog "R2")
        in
        (catalog, Rel.ruleset catalog, q))
      run_cost;
    roundtrip "open OODB rule set"
      (fun () ->
        let inst = Prairie_workload.Queries.instance Prairie_workload.Queries.Q5 ~joins:2 ~seed:17 in
        ( inst.Prairie_workload.Queries.catalog,
          Prairie_algebra.Oodb.ruleset inst.Prairie_workload.Queries.catalog,
          inst.Prairie_workload.Queries.expr ))
      run_cost;
  ]

let shipped_files_tests =
  [
    Alcotest.test_case "shipped .prairie files load and validate" `Quick
      (fun () ->
        List.iter
          (fun (path, trules, irules) ->
            if Sys.file_exists path then begin
              let rs =
                Dsl.Elaborate.load
                  ~helpers:(Prairie_algebra.Helpers.env Catalog.empty)
                  path
              in
              check_int (path ^ " trules") trules (Prairie.Ruleset.trule_count rs);
              check_int (path ^ " irules") irules (Prairie.Ruleset.irule_count rs)
            end
            else Alcotest.fail ("missing shipped rule file " ^ path))
          [
            ("../rules/relational.prairie", 5, 6);
            ("../rules/open_oodb.prairie", 22, 11);
          ]);
    Alcotest.test_case "shipped OODB file P2V-compacts to the paper's counts"
      `Quick (fun () ->
        let rs =
          Dsl.Elaborate.load
            ~helpers:(Prairie_algebra.Helpers.env Catalog.empty)
            "../rules/open_oodb.prairie"
        in
        let m = Prairie_p2v.Merge.merge rs in
        check_int "17 trans" 17 (Prairie_p2v.Merge.trans_rule_count m);
        check_int "9 impl" 9 (Prairie_p2v.Merge.impl_rule_count m);
        check_int "1 enforcer" 1 (Prairie_p2v.Merge.enforcer_count m));
  ]

(* property: any action expression renders to source that re-parses to the
   same AST (the renderer parenthesizes fully, so shapes are preserved) *)
let gen_action_expr =
  let module Action = Prairie.Action in
  let module V = Prairie_value.Value in
  QCheck2.Gen.(
    let dvar = oneofl [ "D1"; "D2"; "D3" ] in
    let prop = oneofl [ "cost"; "num_records"; "tuple_order" ] in
    let helper = oneofl [ "log"; "min"; "max"; "is_dont_care" ] in
    let binop =
      oneofl
        Action.
          [
            Add; Sub; Mul; Div; And; Or;
            Cmp Prairie_value.Predicate.Eq;
            Cmp Prairie_value.Predicate.Lt;
            Cmp Prairie_value.Predicate.Ge;
          ]
    in
    sized_size (0 -- 4) @@ fix (fun self n ->
        let leaf =
          oneof
            [
              map (fun i -> Action.Const (V.Int i)) (0 -- 50);
              map (fun b -> Action.Const (V.Bool b)) bool;
              return (Action.Const (V.Order Prairie_value.Order.Any));
              map (fun s -> Action.Const (V.Str s)) (oneofl [ "x"; "hello" ]);
              map2 (fun d p -> Action.Prop (d, p)) dvar prop;
            ]
        in
        if n = 0 then leaf
        else
          oneof
            [
              leaf;
              map3 (fun op a b -> Action.Binop (op, a, b)) binop (self (n / 2)) (self (n / 2));
              map (fun a -> Action.Unop (Action.Not, a)) (self (n - 1));
              map (fun a -> Action.Unop (Action.Neg, a)) (self (n - 1));
              map2 (fun h args -> Action.Call (h, args)) helper (list_size (0 -- 2) (self (n / 2)));
            ]))

let parse_expr_via_rule text =
  let src =
    Printf.sprintf
      {|ruleset t; operator A(1); algorithm X(1);
        irule r: A(?1) : D2 ==> X(?1) : D3 test { %s } post { D3 = D2; }|}
      text
  in
  let spec = Dsl.Parser.parse src in
  (List.hd (Dsl.Ast.irules spec)).Dsl.Ast.rb_test

let roundtrip_property_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"expression render/parse round trip" ~count:300
         gen_action_expr (fun e ->
           let text = Format.asprintf "%a" Dsl.Render.expr e in
           parse_expr_via_rule text = e));
  ]

let suites =
  [
    ("dsl.lexer", lexer_tests);
    ("dsl.parser", parser_tests);
    ("dsl.elaborate", elaborate_tests);
    ("dsl.roundtrip", roundtrip_tests);
    ("dsl.shipped_files", shipped_files_tests);
    ("dsl.roundtrip_property", roundtrip_property_tests);
  ]
