(* Catalog, stored files and selectivity estimation. *)

module A = Prairie_value.Attribute
module P = Prairie_value.Predicate
module SF = Prairie_catalog.Stored_file
module Catalog = Prairie_catalog.Catalog
module Stats = Prairie_catalog.Stats

let attr o n = A.make ~owner:o ~name:n
let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let r1 =
  SF.make ~kind:SF.Relation ~name:"R1" ~cardinality:1000 ~tuple_size:200
    ~indexes:[ { SF.index_name = "ix"; on = attr "R1" "a"; unique = false } ]
    [ SF.column ~distinct:100 "R1" "a"; SF.column ~distinct:50 "R1" "b" ]

let c1 =
  SF.make ~name:"C1" ~cardinality:500
    [
      SF.column ~distinct:500 "C1" "oid";
      SF.column ~distinct:10 ~ref_to:"C2" "C1" "r";
      SF.column ~distinct:4 ~set_valued:true "C1" "kids";
    ]

let c2 = SF.make ~name:"C2" ~cardinality:60 [ SF.column ~distinct:60 "C2" "oid" ]
let catalog = Catalog.of_files [ r1; c1; c2 ]

let stored_file_tests =
  [
    Alcotest.test_case "attributes in declaration order" `Quick (fun () ->
        Alcotest.(check (list string))
          "attrs" [ "R1.a"; "R1.b" ]
          (List.map A.to_string (SF.attributes r1)));
    Alcotest.test_case "index lookup" `Quick (fun () ->
        check "has" true (SF.has_index_on r1 (attr "R1" "a"));
        check "hasn't" false (SF.has_index_on r1 (attr "R1" "b")));
    Alcotest.test_case "pages round up" `Quick (fun () ->
        check_int "pages" 49 (SF.pages ~page_size:4096 r1);
        let tiny = SF.make ~name:"T" ~cardinality:1 ~tuple_size:8 [] in
        check_int "at least one" 1 (SF.pages ~page_size:4096 tiny));
    Alcotest.test_case "find_column" `Quick (fun () ->
        check "found" true (SF.find_column c1 "r" <> None);
        check "missing" true (SF.find_column c1 "zzz" = None));
  ]

let catalog_tests =
  [
    Alcotest.test_case "find and mem" `Quick (fun () ->
        check "mem" true (Catalog.mem catalog "R1");
        check "not mem" false (Catalog.mem catalog "XX");
        check "find" true (Catalog.find catalog "C2" <> None));
    Alcotest.test_case "files sorted by name" `Quick (fun () ->
        Alcotest.(check (list string))
          "names" [ "C1"; "C2"; "R1" ]
          (List.map (fun f -> f.SF.name) (Catalog.files catalog)));
    Alcotest.test_case "distinct lookup with default" `Quick (fun () ->
        check_int "known" 100 (Catalog.distinct_of catalog (attr "R1" "a"));
        check_int "unknown attr" 10 (Catalog.distinct_of catalog (attr "R1" "zz"));
        check_int "unknown owner" 10 (Catalog.distinct_of catalog (attr "ZZ" "a")));
    Alcotest.test_case "ref_target and set_valued" `Quick (fun () ->
        check "ref" true (Catalog.ref_target catalog (attr "C1" "r") = Some "C2");
        check "not ref" true (Catalog.ref_target catalog (attr "C1" "oid") = None);
        check "set valued" true (Catalog.is_set_valued catalog (attr "C1" "kids"));
        check "scalar" false (Catalog.is_set_valued catalog (attr "C1" "r")));
    Alcotest.test_case "has_index_on goes through the owner" `Quick (fun () ->
        check "indexed" true (Catalog.has_index_on catalog (attr "R1" "a"));
        check "not" false (Catalog.has_index_on catalog (attr "C1" "r")));
  ]

let eq_const x k = P.Cmp (P.Eq, P.T_attr x, P.T_int k)

let stats_tests =
  [
    Alcotest.test_case "equality selectivity is 1/distinct" `Quick (fun () ->
        Alcotest.(check (float 1e-9))
          "1/100" 0.01
          (Stats.selectivity catalog (eq_const (attr "R1" "a") 5)));
    Alcotest.test_case "conjunction multiplies" `Quick (fun () ->
        Alcotest.(check (float 1e-9))
          "1/5000" (1.0 /. 5000.0)
          (Stats.selectivity catalog
             (P.And (eq_const (attr "R1" "a") 5, eq_const (attr "R1" "b") 2))));
    Alcotest.test_case "disjunction bounded by one" `Quick (fun () ->
        let p = P.Or (P.True, eq_const (attr "R1" "a") 5) in
        Alcotest.(check (float 1e-9)) "1.0" 1.0 (Stats.selectivity catalog p));
    Alcotest.test_case "negation complements" `Quick (fun () ->
        Alcotest.(check (float 1e-9))
          "0.99" 0.99
          (Stats.selectivity catalog (P.Not (eq_const (attr "R1" "a") 5))));
    Alcotest.test_case "equijoin selectivity uses max distinct" `Quick (fun () ->
        let p = P.Cmp (P.Eq, P.T_attr (attr "C1" "r"), P.T_attr (attr "C2" "oid")) in
        Alcotest.(check (float 1e-9))
          "1/60" (1.0 /. 60.0)
          (Stats.join_selectivity catalog p));
    Alcotest.test_case "cardinalities floor at one for non-empty input" `Quick
      (fun () ->
        check_int "tiny select" 1
          (Stats.select_cardinality catalog ~input:5 (eq_const (attr "R1" "a") 1));
        check_int "empty input" 0
          (Stats.select_cardinality catalog ~input:0 (eq_const (attr "R1" "a") 1)));
    Alcotest.test_case "join cardinality" `Quick (fun () ->
        let p = P.Cmp (P.Eq, P.T_attr (attr "C1" "r"), P.T_attr (attr "C2" "oid")) in
        check_int "500*60/60" 500
          (Stats.join_cardinality catalog ~left:500 ~right:60 p));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"selectivity always within [0,1]" ~count:300
         Test_value.gen_pred (fun p ->
           let s = Stats.selectivity catalog p in
           s >= 0.0 && s <= 1.0));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"select_cardinality never exceeds input"
         ~count:300
         QCheck2.Gen.(pair Test_value.gen_pred (0 -- 10000))
         (fun (p, n) -> Stats.select_cardinality catalog ~input:n p <= max n 1));
  ]

let suites =
  [
    ("catalog.stored_file", stored_file_tests);
    ("catalog.catalog", catalog_tests);
    ("catalog.stats", stats_tests);
  ]
