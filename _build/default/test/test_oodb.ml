(* The Open OODB optimizer: Prairie-generated vs hand-coded Volcano vs the
   exhaustive oracle, across the paper's workload. *)

module W = Prairie_workload
module Opt = Prairie_optimizers.Optimizers
module Plan = Prairie_volcano.Plan
module Search = Prairie_volcano.Search
module Naive = Prairie.Naive
module D = Prairie.Descriptor

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let agreement q joins seed =
  let inst = W.Queries.instance q ~joins ~seed in
  let cat = inst.W.Queries.catalog in
  let r1 = Opt.optimize (Opt.oodb_prairie cat) inst.W.Queries.expr in
  let r2 = Opt.optimize (Opt.oodb_volcano cat) inst.W.Queries.expr in
  let costs_eq = Float.abs (r1.Opt.cost -. r2.Opt.cost) < 1e-6 in
  let groups_eq =
    Search.group_count r1.Opt.search = Search.group_count r2.Opt.search
  in
  (costs_eq, groups_eq)

let equivalence_tests =
  List.concat_map
    (fun q ->
      List.map
        (fun joins ->
          Alcotest.test_case
            (Printf.sprintf "%s with %d joins: P2V == hand-coded" (W.Queries.name q) joins)
            `Quick
            (fun () ->
              List.iter
                (fun seed ->
                  let costs_eq, groups_eq = agreement q joins seed in
                  check "equal costs" true costs_eq;
                  check "equal search spaces" true groups_eq)
                [ 11; 23 ]))
        [ 1; 2 ])
    W.Queries.all

let oracle_tests =
  [
    Alcotest.test_case "oracle agreement on E1 (1 join)" `Slow (fun () ->
        List.iter
          (fun seed ->
            let inst = W.Queries.instance W.Queries.Q1 ~joins:1 ~seed in
            let cat = inst.W.Queries.catalog in
            let ruleset = Opt.oodb_ruleset cat in
            let naive =
              Option.get (Naive.best_plan ruleset ~required:D.empty inst.W.Queries.expr)
            in
            let r = Opt.optimize (Opt.oodb_prairie cat) inst.W.Queries.expr in
            Alcotest.(check (float 1e-6)) "cost" naive.Naive.cost r.Opt.cost)
          [ 5; 6; 7 ]);
    Alcotest.test_case "oracle agreement on E3 (1 join, with index)" `Slow
      (fun () ->
        List.iter
          (fun seed ->
            let inst = W.Queries.instance W.Queries.Q6 ~joins:1 ~seed in
            let cat = inst.W.Queries.catalog in
            let ruleset = Opt.oodb_ruleset cat in
            let naive =
              Option.get (Naive.best_plan ruleset ~required:D.empty inst.W.Queries.expr)
            in
            let r = Opt.optimize (Opt.oodb_prairie cat) inst.W.Queries.expr in
            Alcotest.(check (float 1e-6)) "cost" naive.Naive.cost r.Opt.cost)
          [ 5; 9 ]);
    Alcotest.test_case "oracle agreement on E2 (1 join, MAT)" `Slow (fun () ->
        let inst = W.Queries.instance W.Queries.Q3 ~joins:1 ~seed:13 in
        let cat = inst.W.Queries.catalog in
        let ruleset = Opt.oodb_ruleset cat in
        let naive =
          Option.get (Naive.best_plan ruleset ~required:D.empty inst.W.Queries.expr)
        in
        let r = Opt.optimize (Opt.oodb_prairie cat) inst.W.Queries.expr in
        Alcotest.(check (float 1e-6)) "cost" naive.Naive.cost r.Opt.cost);
  ]

let structure_tests =
  [
    Alcotest.test_case "every produced plan is executable algebra" `Quick
      (fun () ->
        List.iter
          (fun q ->
            let inst = W.Queries.instance q ~joins:2 ~seed:3 in
            let r =
              Opt.optimize (Opt.oodb_prairie inst.W.Queries.catalog) inst.W.Queries.expr
            in
            match r.Opt.plan with
            | None -> Alcotest.fail "no plan"
            | Some p ->
              let known =
                [
                  "File_scan"; "Index_scan"; "Hash_join"; "Pointer_join";
                  "Filter"; "Project_alg"; "Mat_deref"; "Unnest_scan";
                  "Merge_sort";
                ]
              in
              check "algorithms known" true
                (List.for_all (fun a -> List.mem a known) (Plan.algorithms p)))
          W.Queries.all);
    Alcotest.test_case "selection queries are cheaper than their E1 base"
      `Quick (fun () ->
        (* pushing the selection down must not make the plan more expensive
           than the unselected join *)
        let i1 = W.Queries.instance W.Queries.Q1 ~joins:2 ~seed:21 in
        let i5 = W.Queries.instance W.Queries.Q5 ~joins:2 ~seed:21 in
        let r1 = Opt.optimize (Opt.oodb_prairie i1.W.Queries.catalog) i1.W.Queries.expr in
        let r5 = Opt.optimize (Opt.oodb_prairie i5.W.Queries.catalog) i5.W.Queries.expr in
        check "select cheaper" true (r5.Opt.cost <= r1.Opt.cost +. 1e-9));
    Alcotest.test_case "indexes help the selection queries" `Quick (fun () ->
        (* same seed, same cardinalities; only the index differs (Q5 vs Q6) *)
        let q5 = W.Queries.instance W.Queries.Q5 ~joins:1 ~seed:33 in
        let q6 = W.Queries.instance W.Queries.Q6 ~joins:1 ~seed:33 in
        let r5 = Opt.optimize (Opt.oodb_prairie q5.W.Queries.catalog) q5.W.Queries.expr in
        let r6 = Opt.optimize (Opt.oodb_prairie q6.W.Queries.catalog) q6.W.Queries.expr in
        check "indexed no more expensive" true (r6.Opt.cost <= r5.Opt.cost +. 1e-9);
        match r6.Opt.plan with
        | Some p -> check "index scan appears" true (List.mem "Index_scan" (Plan.algorithms p))
        | None -> Alcotest.fail "no plan");
    Alcotest.test_case "indexes are irrelevant to E1 (paper Fig 10)" `Quick
      (fun () ->
        let q1 = W.Queries.instance W.Queries.Q1 ~joins:2 ~seed:8 in
        let q2 = W.Queries.instance W.Queries.Q2 ~joins:2 ~seed:8 in
        let r1 = Opt.optimize (Opt.oodb_prairie q1.W.Queries.catalog) q1.W.Queries.expr in
        let r2 = Opt.optimize (Opt.oodb_prairie q2.W.Queries.catalog) q2.W.Queries.expr in
        Alcotest.(check (float 1e-9)) "same cost" r1.Opt.cost r2.Opt.cost;
        check_int "same groups"
          (Search.group_count r1.Opt.search)
          (Search.group_count r2.Opt.search));
    Alcotest.test_case "search space ordering E1 <= E2 <= E4 (Fig 14)" `Quick
      (fun () ->
        let groups q =
          let inst = W.Queries.instance q ~joins:2 ~seed:2 in
          let r = Opt.optimize (Opt.oodb_prairie inst.W.Queries.catalog) inst.W.Queries.expr in
          Search.group_count r.Opt.search
        in
        let g1 = groups W.Queries.Q1
        and g3 = groups W.Queries.Q3
        and g7 = groups W.Queries.Q7 in
        check "E1 < E2" true (g1 < g3);
        check "E2 < E4" true (g3 < g7));
    Alcotest.test_case "unmerged rule set agrees with the merged one" `Quick
      (fun () ->
        let inst = W.Queries.instance W.Queries.Q5 ~joins:2 ~seed:4 in
        let cat = inst.W.Queries.catalog in
        let merged = Opt.optimize (Opt.oodb_prairie cat) inst.W.Queries.expr in
        let unmerged = Opt.optimize (Opt.oodb_prairie_unmerged cat) inst.W.Queries.expr in
        Alcotest.(check (float 1e-6)) "same cost" merged.Opt.cost unmerged.Opt.cost);
    Alcotest.test_case "pruning ablation agrees but prunes" `Quick (fun () ->
        let inst = W.Queries.instance W.Queries.Q7 ~joins:2 ~seed:5 in
        let cat = inst.W.Queries.catalog in
        let pruned = Opt.optimize ~pruning:true (Opt.oodb_prairie cat) inst.W.Queries.expr in
        let full = Opt.optimize ~pruning:false (Opt.oodb_prairie cat) inst.W.Queries.expr in
        Alcotest.(check (float 1e-6)) "same cost" pruned.Opt.cost full.Opt.cost);
  ]

let suites =
  [
    ("oodb.equivalence", equivalence_tests);
    ("oodb.oracle", oracle_tests);
    ("oodb.structure", structure_tests);
  ]
