(* Action evaluation and rule application — including the paper's worked
   examples (Figs. 3, 5, 6, 7b) run concretely. *)

module Action = Prairie.Action
module Eval = Prairie.Eval
module Pattern = Prairie.Pattern
module Binding = Prairie.Pattern.Binding
module Expr = Prairie.Expr
module D = Prairie.Descriptor
module V = Prairie_value.Value
module O = Prairie_value.Order
module P = Prairie_value.Predicate
module A = Prairie_value.Attribute
module H = Prairie.Helper_env

let check = Alcotest.(check bool)
let checkf = Alcotest.(check (float 1e-9))
let attr o n = A.make ~owner:o ~name:n

let binding descs =
  List.fold_left (fun b (d, v) -> Binding.bind_desc b d v) Binding.empty descs

let expr_tests =
  [
    Alcotest.test_case "arithmetic over properties" `Quick (fun () ->
        let b = binding [ ("D1", D.of_list [ ("n", V.Int 10); ("c", V.Float 2.0) ]) ] in
        let e =
          Action.(Binop (Add, Prop ("D1", "c"), Binop (Mul, Prop ("D1", "n"), Const (V.Float 0.5))))
        in
        checkf "2 + 10 * 0.5" 7.0 (V.to_float (Eval.eval_expr H.builtins b e)));
    Alcotest.test_case "builtin helpers" `Quick (fun () ->
        let b = Binding.empty in
        checkf "log2 8" 3.0
          (V.to_float (Eval.eval_expr H.builtins b (Action.call "log2" [ Action.int 8 ])));
        check "is_dont_care of unset order" true
          (V.to_bool
             (Eval.eval_expr H.builtins
                (binding [ ("D", D.empty) ])
                (Action.call "is_dont_care" [ Action.prop "D" "tuple_order" ]))));
    Alcotest.test_case "unknown helper raises" `Quick (fun () ->
        check "raises" true
          (try
             ignore (Eval.eval_expr H.builtins Binding.empty (Action.call "nope" []));
             false
           with H.Unknown_helper "nope" -> true));
    Alcotest.test_case "short-circuit and/or" `Quick (fun () ->
        (* the right operand would raise if evaluated *)
        let boom = Action.call "nope" [] in
        let e = Action.(Binop (And, Const (V.Bool false), boom)) in
        check "and shortcuts" false (V.to_bool (Eval.eval_expr H.builtins Binding.empty e));
        let e = Action.(Binop (Or, Const (V.Bool true), boom)) in
        check "or shortcuts" true (V.to_bool (Eval.eval_expr H.builtins Binding.empty e)));
    Alcotest.test_case "whole-descriptor read outside copy is an error" `Quick
      (fun () ->
        check "raises" true
          (try
             ignore
               (Eval.eval_expr H.builtins Binding.empty
                  Action.(Binop (Add, Desc "D1", Const (V.Int 1))));
             false
           with Eval.Rule_error _ -> true));
    Alcotest.test_case "non-boolean test rejected" `Quick (fun () ->
        check "raises" true
          (try
             ignore (Eval.eval_test H.builtins Binding.empty (Action.int 3));
             false
           with Eval.Rule_error _ -> true));
  ]

let stmt_tests =
  [
    Alcotest.test_case "assignments build output descriptors" `Quick (fun () ->
        let b = binding [ ("D1", D.of_list [ ("n", V.Int 7) ]) ] in
        let stmts =
          Action.[ Assign_desc ("D2", Desc "D1"); Assign_prop ("D2", "n", int 9) ]
        in
        let b = Eval.exec_stmts ~protected:[ "D1" ] H.builtins b stmts in
        Alcotest.(check int) "override" 9 (D.get_int (Binding.desc b "D2") "n");
        Alcotest.(check int) "source untouched" 7 (D.get_int (Binding.desc b "D1") "n"));
    Alcotest.test_case "assigning a protected (LHS) descriptor raises" `Quick
      (fun () ->
        check "raises" true
          (try
             ignore
               (Eval.exec_stmts ~protected:[ "D1" ] H.builtins Binding.empty
                  Action.[ Assign_prop ("D1", "n", int 1) ]);
             false
           with Eval.Rule_error _ -> true));
    Alcotest.test_case "later statements read earlier outputs" `Quick (fun () ->
        let stmts =
          Action.
            [
              Assign_prop ("D2", "n", int 5);
              Assign_prop ("D2", "m", Binop (Add, Prop ("D2", "n"), int 1));
            ]
        in
        let b = Eval.exec_stmts ~protected:[] H.builtins Binding.empty stmts in
        Alcotest.(check int) "six" 6 (D.get_int (Binding.desc b "D2") "m"));
  ]

(* ------------------------------------------------------------------ *)
(* The paper's worked examples, on a concrete catalog                  *)
(* ------------------------------------------------------------------ *)

module SF = Prairie_catalog.Stored_file
module Catalog = Prairie_catalog.Catalog
module Rel = Prairie_algebra.Relational

let catalog =
  Catalog.of_files
    [
      Rel.relation ~name:"R1" ~cardinality:100 [ ("a", 10); ("k", 100) ];
      Rel.relation ~name:"R2" ~cardinality:200 [ ("a", 10); ("k", 200) ];
      Rel.relation ~name:"R3" ~cardinality:50 [ ("k", 50) ];
    ]

let helpers = Prairie_algebra.Helpers.env catalog
let ruleset = Rel.ruleset catalog
let eq a b = P.Cmp (P.Eq, P.T_attr a, P.T_attr b)
let r n = Rel.ret catalog n

(* JOIN(JOIN(R1,R2), R3) with the outer predicate over R2/R3: associable *)
let assoc_ok =
  Rel.join catalog
    ~pred:(eq (attr "R2" "k") (attr "R3" "k"))
    (Rel.join catalog ~pred:(eq (attr "R1" "a") (attr "R2" "a")) (r "R1") (r "R2"))
    (r "R3")

(* outer predicate references R1: not associable (paper Fig. 3c) *)
let assoc_bad =
  Rel.join catalog
    ~pred:(eq (attr "R1" "k") (attr "R3" "k"))
    (Rel.join catalog ~pred:(eq (attr "R1" "a") (attr "R2" "a")) (r "R1") (r "R2"))
    (r "R3")

let find_trule name = Option.get (Prairie.Ruleset.find_trule ruleset name)
let find_irule name = Option.get (Prairie.Ruleset.find_irule ruleset name)

let trule_tests =
  [
    Alcotest.test_case "join associativity applies (Fig 3b)" `Quick (fun () ->
        match Eval.apply_trule helpers (find_trule "join_assoc_left") assoc_ok with
        | None -> Alcotest.fail "should apply"
        | Some out ->
          check "rewritten" true
            (String.equal (Expr.to_string out) "JOIN(RET(R1), JOIN(RET(R2), RET(R3)))");
          (* the new inner join's annotations were computed by the actions *)
          let inner = List.nth (Expr.inputs out) 1 in
          let d = Expr.descriptor inner in
          check "inner pred" true
            (P.equal (D.get_pred d "join_predicate") (eq (attr "R2" "k") (attr "R3" "k")));
          (* |R2| * |R3| / max distinct(k) = 200 * 50 / 200 *)
          Alcotest.(check int) "inner card" 50 (D.get_int d "num_records");
          (* root keeps the overall statistics but takes the old inner
             join's predicate *)
          check "root pred" true
            (P.equal
               (D.get_pred (Expr.descriptor out) "join_predicate")
               (eq (attr "R1" "a") (attr "R2" "a"))));
    Alcotest.test_case "join associativity rejected on cross products (Fig 3c)"
      `Quick (fun () ->
        check "no rewrite" true
          (Eval.apply_trule helpers (find_trule "join_assoc_left") assoc_bad = None));
    Alcotest.test_case "commutativity preserves the descriptor" `Quick (fun () ->
        match Eval.apply_trule helpers (find_trule "join_commute") assoc_ok with
        | None -> Alcotest.fail "should apply"
        | Some out ->
          check "desc equal" true
            (D.equal (Expr.descriptor out) (Expr.descriptor assoc_ok));
          check "swapped" true
            (String.equal (Expr.to_string out)
               "JOIN(RET(R3), JOIN(RET(R1), RET(R2)))"));
    Alcotest.test_case "sort introduction wraps both inputs (footnote 5)" `Quick
      (fun () ->
        let two_way =
          Rel.join catalog ~pred:(eq (attr "R1" "a") (attr "R2" "a")) (r "R1") (r "R2")
        in
        match Eval.apply_trule helpers (find_trule "sort_intro_merge_join") two_way with
        | None -> Alcotest.fail "should apply"
        | Some out -> (
          check "shape" true
            (String.equal (Expr.to_string out) "JOPR(SORT(RET(R1)), SORT(RET(R2)))");
          match Expr.inputs out with
          | [ s1; _ ] ->
            check "left sort order = join attr" true
              (O.equal
                 (D.get_order (Expr.descriptor s1) "tuple_order")
                 (O.sorted_on (attr "R1" "a")))
          | _ -> Alcotest.fail "two inputs expected"));
  ]

let irule_tests =
  [
    Alcotest.test_case "Nested_loops two-phase application (Fig 6)" `Quick
      (fun () ->
        let two_way =
          Rel.join catalog ~pred:(eq (attr "R1" "a") (attr "R2" "a")) (r "R1") (r "R2")
        in
        let rule = find_irule "join_nested_loops" in
        match Eval.begin_irule helpers rule two_way with
        | None -> Alcotest.fail "should begin"
        | Some app ->
          let reqs = Eval.input_requirements app in
          Alcotest.(check int) "two inputs" 2 (List.length reqs);
          (* fake-optimize the inputs: attach costs *)
          let optimized_inputs =
            List.map
              (fun (i, sub) ->
                let cost = if i = 1 then 10.0 else 4.0 in
                (i, Expr.map_descriptor sub (fun d -> D.set_cost d cost)))
              reqs
          in
          let plan = Eval.finish_irule helpers app ~optimized_inputs in
          check "algorithm node" true (String.equal (Expr.label plan) "Nested_loops");
          (* cost(outer) + |outer| * cost(inner) = 10 + 100 * 4 *)
          checkf "cost formula" 410.0 (Expr.cost plan));
    Alcotest.test_case "Merge_sort applies only under an order (Fig 5)" `Quick
      (fun () ->
        let rule = find_irule "sort_merge_sort" in
        let sorted =
          Rel.sort catalog ~order:(O.sorted_on (attr "R1" "a")) (r "R1")
        in
        check "applies" true (Eval.begin_irule helpers rule sorted <> None);
        let unsorted = Rel.sort catalog ~order:O.Any (r "R1") in
        check "does not apply" true (Eval.begin_irule helpers rule unsorted = None));
    Alcotest.test_case "Null passes the requirement down (Fig 7b)" `Quick
      (fun () ->
        let rule = find_irule "sort_null" in
        let order = O.sorted_on (attr "R1" "a") in
        let sorted = Rel.sort catalog ~order (r "R1") in
        match Eval.begin_irule helpers rule sorted with
        | None -> Alcotest.fail "should begin"
        | Some app -> (
          match Eval.input_requirements app with
          | [ (1, sub) ] ->
            check "requirement propagated" true
              (O.equal (D.get_order (Expr.descriptor sub) "tuple_order") order);
            let optimized = Expr.map_descriptor sub (fun d -> D.set_cost d 3.5) in
            let plan = Eval.finish_irule helpers app ~optimized_inputs:[ (1, optimized) ] in
            check "null node" true (String.equal (Expr.label plan) "Null");
            checkf "cost is the input's" 3.5 (Expr.cost plan)
          | _ -> Alcotest.fail "one requirement expected"));
    Alcotest.test_case "File_scan rejects an order requirement" `Quick (fun () ->
        let rule = find_irule "ret_file_scan" in
        let plain = r "R1" in
        check "plain ok" true (Eval.begin_irule helpers rule plain <> None);
        let demanding =
          Expr.map_descriptor plain (fun d ->
              D.set d "tuple_order" (V.Order (O.sorted_on (attr "R1" "a"))))
        in
        check "ordered rejected" true (Eval.begin_irule helpers rule demanding = None));
  ]

let suites =
  [
    ("eval.expressions", expr_tests);
    ("eval.statements", stmt_tests);
    ("eval.trules", trule_tests);
    ("eval.irules", irule_tests);
  ]
