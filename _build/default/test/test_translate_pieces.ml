(* The exposed P2V code-generation pieces, driven directly: generated
   cond/appl closures for a trans rule, and the generated impl-rule
   functions (cond, input requirements, finalize) in both codegen modes. *)

module P2v = Prairie_p2v
module Rule = Prairie_volcano.Rule
module D = Prairie.Descriptor
module V = Prairie_value.Value
module O = Prairie_value.Order
module P = Prairie_value.Predicate
module A = Prairie_value.Attribute
module Rel = Prairie_algebra.Relational
module Catalog = Prairie_catalog.Catalog
module CM = Prairie_algebra.Cost_model

let check = Alcotest.(check bool)
let checkf = Alcotest.(check (float 1e-9))
let attr o n = A.make ~owner:o ~name:n
let eq a b = P.Cmp (P.Eq, P.T_attr a, P.T_attr b)

let catalog =
  Catalog.of_files
    [
      Rel.relation ~name:"R1" ~cardinality:100 [ ("a", 10) ];
      Rel.relation ~name:"R2" ~cardinality:40 [ ("a", 10) ];
      Rel.relation ~name:"R3" ~cardinality:20 [ ("a", 10) ];
    ]

let ruleset = Rel.ruleset catalog
let helpers = ruleset.Prairie.Ruleset.helpers
let find_t name = Option.get (Prairie.Ruleset.find_trule ruleset name)
let find_i name = Option.get (Prairie.Ruleset.find_irule ruleset name)

(* descriptors playing the role of memo-bound group/lexpr descriptors *)
let join_arg ~pred ~card =
  D.of_list
    [
      ("join_predicate", V.Pred pred);
      ("num_records", V.Int card);
      ("tuple_size", V.Int 200);
      ( "attributes",
        V.Attrs [ attr "R1" "a"; attr "R2" "a" ] );
    ]

let stream_desc ~owner ~card =
  D.of_list
    [
      ("attributes", V.Attrs [ attr owner "a" ]);
      ("num_records", V.Int card);
      ("tuple_size", V.Int 100);
    ]

let per_mode f =
  List.iter (fun mode -> f mode) [ `Compiled; `Interpreted ]

let trans_tests =
  [
    Alcotest.test_case "generated commutativity cond/appl" `Quick (fun () ->
        per_mode (fun mode ->
            let tr = P2v.Translate.trans_of_trule ~mode helpers (find_t "join_commute") in
            let denv = [ ("D3", join_arg ~pred:(eq (attr "R1" "a") (attr "R2" "a")) ~card:400) ] in
            match tr.Rule.tr_cond denv with
            | None -> Alcotest.fail "commutativity is unconditional"
            | Some denv ->
              let out = tr.Rule.tr_appl denv in
              check "D4 computed" true
                (D.equal (Rule.denv_get out "D4") (Rule.denv_get out "D3"))));
    Alcotest.test_case "generated associativity rejects cross products" `Quick
      (fun () ->
        per_mode (fun mode ->
            let tr = P2v.Translate.trans_of_trule ~mode helpers (find_t "join_assoc_left") in
            (* outer predicate references R1 (part of the left subtree):
               the rewrite would make the inner join a cross product *)
            let denv =
              [
                ("D5", join_arg ~pred:(eq (attr "R1" "a") (attr "R3" "a")) ~card:100);
                ("D4", join_arg ~pred:(eq (attr "R1" "a") (attr "R2" "a")) ~card:400);
                ("D1", stream_desc ~owner:"R1" ~card:100);
                ("D2", stream_desc ~owner:"R2" ~card:40);
                ("D3", stream_desc ~owner:"R3" ~card:20);
              ]
            in
            check "rejected" true (tr.Rule.tr_cond denv = None)));
    Alcotest.test_case "generated associativity computes inner statistics"
      `Quick (fun () ->
        per_mode (fun mode ->
            let tr = P2v.Translate.trans_of_trule ~mode helpers (find_t "join_assoc_left") in
            let denv =
              [
                ("D5", join_arg ~pred:(eq (attr "R2" "a") (attr "R3" "a")) ~card:100);
                ("D4", join_arg ~pred:(eq (attr "R1" "a") (attr "R2" "a")) ~card:400);
                ("D1", stream_desc ~owner:"R1" ~card:100);
                ("D2", stream_desc ~owner:"R2" ~card:40);
                ("D3", stream_desc ~owner:"R3" ~card:20);
              ]
            in
            match tr.Rule.tr_cond denv with
            | None -> Alcotest.fail "should apply"
            | Some denv ->
              let out = tr.Rule.tr_appl denv in
              let d6 = Rule.denv_get out "D6" in
              (* |R2| * |R3| / max distinct = 40 * 20 / 10 *)
              Alcotest.(check int) "inner card" 80 (D.get_int d6 "num_records");
              Alcotest.(check int) "inner size" 200 (D.get_int d6 "tuple_size")));
  ]

let impl_tests =
  [
    Alcotest.test_case "generated Nested_loops impl-rule functions" `Quick
      (fun () ->
        per_mode (fun mode ->
            let ir =
              P2v.Translate.impl_of_irule ~mode helpers
                ~physical:[ "tuple_order" ]
                (find_i "join_nested_loops")
            in
            Alcotest.(check string) "op" "JOIN" ir.Rule.ir_op;
            Alcotest.(check string) "alg" "Nested_loops" ir.Rule.ir_alg;
            let op_arg = join_arg ~pred:(eq (attr "R1" "a") (attr "R2" "a")) ~card:400 in
            let inputs =
              [| stream_desc ~owner:"R1" ~card:100; stream_desc ~owner:"R2" ~card:40 |]
            in
            let req =
              D.of_list [ ("tuple_order", V.Order (O.sorted_on (attr "R1" "a"))) ]
            in
            check "always applicable" true (ir.Rule.ir_cond ~op_arg ~req ~inputs);
            (* the required order flows to the outer input only *)
            let reqs = ir.Rule.ir_input_reqs ~op_arg ~req ~inputs in
            check "outer carries the order" true
              (O.equal (D.get_order reqs.(0) "tuple_order") (O.sorted_on (attr "R1" "a")));
            check "inner unconstrained" true (D.is_empty reqs.(1));
            (* finalize computes the Fig. 6 cost from achieved inputs *)
            let achieved =
              [|
                D.set_cost (stream_desc ~owner:"R1" ~card:100) 7.0;
                D.set_cost (stream_desc ~owner:"R2" ~card:40) 2.0;
              |]
            in
            let out = ir.Rule.ir_finalize ~op_arg ~req ~inputs:achieved in
            checkf "7 + 100 * 2" 207.0 (D.cost out)));
    Alcotest.test_case "generated Index_scan cond consults the file's indexes"
      `Quick (fun () ->
        per_mode (fun mode ->
            let ir =
              P2v.Translate.impl_of_irule ~mode helpers
                ~physical:[ "tuple_order" ]
                (find_i "ret_index_scan")
            in
            let sel = P.Cmp (P.Eq, P.T_attr (attr "R1" "a"), P.T_int 3) in
            let op_arg =
              D.of_list
                [ ("selection_predicate", V.Pred sel); ("num_records", V.Int 10) ]
            in
            let indexed =
              D.of_list
                [
                  ("num_records", V.Int 100);
                  ("tuple_size", V.Int 100);
                  ("indexes", V.Attrs [ attr "R1" "a" ]);
                ]
            in
            let bare = D.without indexed [ "indexes" ] in
            check "applies with the index" true
              (ir.Rule.ir_cond ~op_arg ~req:D.empty ~inputs:[| indexed |]);
            check "rejected without" false
              (ir.Rule.ir_cond ~op_arg ~req:D.empty ~inputs:[| bare |]);
            (* achieved order is the index order *)
            let out = ir.Rule.ir_finalize ~op_arg ~req:D.empty ~inputs:[| indexed |] in
            check "order delivered" true
              (O.equal (D.get_order out "tuple_order") (O.sorted_on (attr "R1" "a")));
            checkf "cost model"
              (CM.index_scan ~card:100 ~tuple_size:100 ~selectivity:0.1)
              (D.cost out)));
    Alcotest.test_case "generated enforcer functions" `Quick (fun () ->
        per_mode (fun mode ->
            let info = List.hd (P2v.Enforcers.detect ruleset) in
            let en =
              P2v.Translate.enforcer_of_irule ~mode helpers
                ~enforced:info.P2v.Enforcers.enforced_properties
                (List.hd info.P2v.Enforcers.algorithm_rules)
            in
            Alcotest.(check string) "alg" "Merge_sort" en.Rule.en_alg;
            let req =
              D.of_list [ ("tuple_order", V.Order (O.sorted_on (attr "R1" "a"))) ]
            in
            check "applies" true (en.Rule.en_applies ~req);
            check "relaxed empty" true (D.is_empty (en.Rule.en_relaxed ~req));
            let input = D.set_cost (stream_desc ~owner:"R1" ~card:8) 1.0 in
            let out = en.Rule.en_finalize ~req ~input in
            checkf "1 + cpu * 8 * 3" (1.0 +. (CM.cpu_per_tuple *. 8.0 *. 3.0)) (D.cost out)));
  ]

let suites =
  [
    ("translate_pieces.trans", trans_tests);
    ("translate_pieces.impl", impl_tests);
  ]
