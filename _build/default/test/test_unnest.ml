(* UNNEST end-to-end: the operator the paper's queries deliberately skipped
   ("it appeared in exactly one trans_rule and one impl_rule").  Both the
   rule and the algorithm must still work. *)

module W = Prairie_workload
module Opt = Prairie_optimizers.Optimizers
module Search = Prairie_volcano.Search
module Plan = Prairie_volcano.Plan
module Naive = Prairie.Naive
module Init = Prairie_algebra.Init
module E = Prairie_executor
module D = Prairie.Descriptor
module V = Prairie_value.Value
module Expr = Prairie.Expr

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let catalog =
  W.Catalogs.make (W.Catalogs.default_spec ~classes:2 ~indexed:false ~seed:77)

(* UNNEST(C1 join C2 [on the reference]) over C1's set-valued attribute *)
let unnest_query () =
  Init.unnest catalog ~attr:(W.Catalogs.set_attr 1)
    (Init.join catalog ~pred:(W.Catalogs.join_pred 1)
       (Init.ret catalog "C1") (Init.ret catalog "C2"))

let tests =
  [
    Alcotest.test_case "catalog exposes the set-valued attribute" `Quick
      (fun () ->
        check "set valued" true
          (Prairie_catalog.Catalog.is_set_valued catalog (W.Catalogs.set_attr 1)));
    Alcotest.test_case "cardinality multiplies by the fanout" `Quick (fun () ->
        let q = unnest_query () in
        let join_card =
          D.get_int (Expr.descriptor (List.hd (Expr.inputs q))) "num_records"
        in
        check_int "3x fanout" (join_card * 3)
          (D.get_int (Expr.descriptor q) "num_records"));
    Alcotest.test_case "optimizers agree on the UNNEST query" `Quick (fun () ->
        let q = unnest_query () in
        let p2v = Opt.optimize (Opt.oodb_prairie catalog) q in
        let hand = Opt.optimize (Opt.oodb_volcano catalog) q in
        Alcotest.(check (float 1e-6)) "p2v = hand" p2v.Opt.cost hand.Opt.cost;
        check_int "same groups"
          (Search.group_count p2v.Opt.search)
          (Search.group_count hand.Opt.search);
        let naive =
          Option.get (Naive.best_plan (Opt.oodb_ruleset catalog) ~required:D.empty q)
        in
        Alcotest.(check (float 1e-6)) "oracle" naive.Naive.cost p2v.Opt.cost);
    Alcotest.test_case "unnest_join_swap enlarges the search space" `Quick
      (fun () ->
        (* the swapped form UNNEST-below-join must appear in the memo: with
           the single UNNEST trans rule disabled the space is smaller *)
        let q = unnest_query () in
        let with_rule = Opt.optimize (Opt.oodb_prairie catalog) q in
        let rs = Opt.oodb_ruleset catalog in
        let without =
          {
            rs with
            Prairie.Ruleset.trules =
              List.filter
                (fun (r : Prairie.Trule.t) ->
                  r.Prairie.Trule.name <> "unnest_join_swap")
                rs.Prairie.Ruleset.trules;
          }
        in
        let tr = Prairie_p2v.Translate.translate without in
        let ctx = Search.create tr.Prairie_p2v.Translate.volcano in
        ignore (Search.optimize ctx q);
        check "swap adds alternatives" true
          (Search.group_count with_rule.Opt.search > Search.group_count ctx));
    Alcotest.test_case "executed UNNEST expands set values" `Quick (fun () ->
        let q = unnest_query () in
        let r = Opt.optimize (Opt.oodb_prairie catalog) q in
        let db = E.Data_gen.database ~seed:5 catalog in
        let schema, rows = E.Compile.execute_plan db (Option.get r.Opt.plan) in
        (* every C1 row joins exactly one C2 row (reference equality), and
           each match expands to 3 set elements *)
        let c1 = E.Table.find db "C1" in
        check_int "3 per C1 row" (3 * E.Table.row_count c1) (List.length rows);
        (* the set column now holds scalars *)
        let pos = Option.get (E.Tuple.position schema (W.Catalogs.set_attr 1)) in
        check "scalars" true
          (List.for_all
             (fun row -> match row.(pos) with V.Int _ -> true | _ -> false)
             rows));
    Alcotest.test_case "executed plans agree regardless of UNNEST placement"
      `Quick (fun () ->
        let q = unnest_query () in
        let db = E.Data_gen.database ~seed:5 catalog in
        let run (o : Opt.outcome) =
          E.Compile.canonical_result (E.Compile.execute_plan db (Option.get o.Opt.plan))
        in
        let a = run (Opt.optimize (Opt.oodb_prairie catalog) q) in
        let b = run (Opt.optimize ~pruning:false (Opt.oodb_volcano catalog) q) in
        check "same result" true (a = b));
  ]

let suites = [ ("unnest", tests) ]
