(* The naive exhaustive optimizer (the oracle). *)

module Naive = Prairie.Naive
module Expr = Prairie.Expr
module D = Prairie.Descriptor
module V = Prairie_value.Value
module O = Prairie_value.Order
module P = Prairie_value.Predicate
module A = Prairie_value.Attribute
module Rel = Prairie_algebra.Relational
module Catalog = Prairie_catalog.Catalog

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let attr o n = A.make ~owner:o ~name:n
let eq a b = P.Cmp (P.Eq, P.T_attr a, P.T_attr b)

let catalog =
  Catalog.of_files
    [
      Rel.relation ~name:"R1" ~cardinality:1000 ~indexes:[ "a" ] [ ("a", 100); ("b", 50) ];
      Rel.relation ~name:"R2" ~cardinality:200 [ ("a", 100); ("c", 20) ];
      Rel.relation ~name:"R3" ~cardinality:50 [ ("c", 20) ];
    ]

let ruleset = Rel.ruleset catalog
let r n = Rel.ret catalog n

let two_way =
  Rel.join catalog ~pred:(eq (attr "R1" "a") (attr "R2" "a")) (r "R1") (r "R2")

let three_way =
  Rel.join catalog ~pred:(eq (attr "R2" "c") (attr "R3" "c")) two_way (r "R3")

let logical_tests =
  [
    Alcotest.test_case "closure contains the original" `Quick (fun () ->
        let forms = Naive.logical_forms ruleset two_way in
        check "self" true (List.exists (Expr.equal two_way) forms));
    Alcotest.test_case "closure contains the commuted form" `Quick (fun () ->
        let forms = Naive.logical_forms ruleset two_way in
        check "commuted" true
          (List.exists
             (fun e -> String.equal (Expr.to_string e) "JOIN(RET(R2), RET(R1))")
             forms));
    Alcotest.test_case "three-way closure contains all join orders" `Quick
      (fun () ->
        let forms = Naive.logical_forms ruleset three_way in
        let shapes =
          List.filter
            (fun e -> String.equal (Expr.label e) "JOIN")
            forms
        in
        (* at least original, commuted, and the right-associated variant *)
        check "several" true (List.length shapes >= 4);
        check "reassociated present" true
          (List.exists
             (fun e ->
               String.equal (Expr.to_string e) "JOIN(RET(R1), JOIN(RET(R2), RET(R3)))")
             forms));
    Alcotest.test_case "closure is deduplicated" `Quick (fun () ->
        let forms = Naive.logical_forms ruleset two_way in
        let rec has_dup = function
          | [] -> false
          | x :: rest -> List.exists (Expr.equal x) rest || has_dup rest
        in
        check "no dups" false (has_dup forms));
    Alcotest.test_case "max_forms caps enumeration" `Quick (fun () ->
        check_int "capped" 2 (List.length (Naive.logical_forms ~max_forms:2 ruleset three_way)));
  ]

let plan_tests =
  [
    Alcotest.test_case "all plans are access plans" `Quick (fun () ->
        let plans = Naive.plans ruleset ~required:D.empty two_way in
        check "non-empty" true (plans <> []);
        check "all plans" true (List.for_all Expr.is_access_plan plans));
    Alcotest.test_case "every plan retains both relations" `Quick (fun () ->
        let plans = Naive.plans ruleset ~required:D.empty two_way in
        check "files" true
          (List.for_all
             (fun p ->
               List.sort compare (Expr.stored_files p) = [ "R1"; "R2" ])
             plans));
    Alcotest.test_case "best plan has minimal cost" `Quick (fun () ->
        let plans = Naive.plans ruleset ~required:D.empty two_way in
        let best = Option.get (Naive.best_plan ruleset ~required:D.empty two_way) in
        check "minimal" true
          (List.for_all (fun p -> Expr.cost p >= best.Naive.cost -. 1e-9) plans));
    Alcotest.test_case "required order is reflected in every plan" `Quick
      (fun () ->
        let required =
          D.of_list [ ("tuple_order", V.Order (O.sorted_on (attr "R1" "b"))) ]
        in
        let plans = Naive.plans ruleset ~required two_way in
        check "non-empty" true (plans <> []);
        (* every plan's root must be order-producing or order-preserving:
           cheapest check is that costs exceed the unordered optimum *)
        let unordered = Option.get (Naive.best_plan ruleset ~required:D.empty two_way) in
        let ordered = Option.get (Naive.best_plan ruleset ~required two_way) in
        check "order costs more" true (ordered.Naive.cost > unordered.Naive.cost));
    Alcotest.test_case "ordered query can use the index for free order" `Quick
      (fun () ->
        (* asking for order on the indexed attribute R1.a with a selection on
           it makes Index_scan deliver the order *)
        let pred = P.Cmp (P.Eq, P.T_attr (attr "R1" "a"), P.T_int 3) in
        let q = Rel.ret ~pred catalog "R1" in
        let required = D.of_list [ ("tuple_order", V.Order (O.sorted_on (attr "R1" "a"))) ] in
        let best = Option.get (Naive.best_plan ruleset ~required q) in
        check "index scan used" true
          (String.equal (Expr.label best.Naive.plan) "Index_scan"));
    Alcotest.test_case "plan_count matches plans length" `Quick (fun () ->
        check_int "consistent"
          (List.length (Naive.plans ruleset ~required:D.empty two_way))
          (Naive.plan_count ruleset ~required:D.empty two_way));
  ]

let suites = [ ("naive.logical", logical_tests); ("naive.plans", plan_tests) ]
