(* The aggregation add-on: rule-set combination, enforcer-driven algorithm
   choice, and execution. *)

module Agg = Prairie_algebra.Aggregates
module Rel = Prairie_algebra.Relational
module P2v = Prairie_p2v
module Search = Prairie_volcano.Search
module Plan = Prairie_volcano.Plan
module Naive = Prairie.Naive
module Catalog = Prairie_catalog.Catalog
module D = Prairie.Descriptor
module V = Prairie_value.Value
module O = Prairie_value.Order
module A = Prairie_value.Attribute
module P = Prairie_value.Predicate
module E = Prairie_executor
module Tuple = Prairie_executor.Tuple

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let attr o n = A.make ~owner:o ~name:n

let catalog =
  Catalog.of_files
    [
      Rel.relation ~name:"orders" ~cardinality:2_000 ~indexes:[ "cust" ]
        [ ("cust", 50); ("total", 100) ];
    ]

let ruleset = Agg.extended_relational catalog

let optimize ?required expr =
  let tr = P2v.Translate.translate ruleset in
  let ctx = Search.create tr.P2v.Translate.volcano in
  let expr, req0 = P2v.Translate.prepare_query tr expr in
  let required =
    match required with
    | None -> req0
    | Some r -> D.merge ~base:req0 ~overrides:r
  in
  Search.optimize ~required ctx expr

(* AGG over a selective indexed retrieval: the index delivers the group
   order, so Sort_agg is free; over a full scan, Hash_agg wins. *)
let agg_over ?pred () =
  Agg.agg catalog ~by:[ attr "orders" "cust" ] (Rel.ret ?pred catalog "orders")

let rules_tests =
  [
    Alcotest.test_case "combined rule set validates" `Quick (fun () ->
        check "valid" true (Prairie.Ruleset.validate ruleset = Ok ()));
    Alcotest.test_case "fragment adds exactly two I-rules" `Quick (fun () ->
        check_int "irules"
          (Prairie.Ruleset.irule_count (Rel.ruleset catalog) + 2)
          (Prairie.Ruleset.irule_count ruleset));
    Alcotest.test_case "AGG inherits the SORT enforcer through combination"
      `Quick (fun () ->
        let m = P2v.Merge.merge ruleset in
        check_int "still one enforcer" 1 (P2v.Merge.enforcer_count m));
  ]

let planning_tests =
  [
    Alcotest.test_case "unordered input: Hash_agg wins" `Quick (fun () ->
        match optimize (agg_over ()) with
        | Some plan ->
          check "hash agg" true (List.mem "Hash_agg" (Plan.algorithms plan))
        | None -> Alcotest.fail "no plan");
    Alcotest.test_case "index-delivered order: Sort_agg wins" `Quick (fun () ->
        (* selection on the indexed group attribute: Index_scan delivers
           sorted-by-cust output, making Sort_agg free *)
        let pred = P.Cmp (P.Eq, P.T_attr (attr "orders" "cust"), P.T_int 7) in
        match optimize (agg_over ~pred ()) with
        | Some plan ->
          check "sort agg" true (List.mem "Sort_agg" (Plan.algorithms plan));
          check "no explicit sort" false
            (List.mem "Merge_sort" (Plan.algorithms plan))
        | None -> Alcotest.fail "no plan");
    Alcotest.test_case "required group order: Sort_agg delivers it" `Quick
      (fun () ->
        let required =
          D.of_list
            [ ("tuple_order", V.Order (O.sorted_on (attr "orders" "cust"))) ]
        in
        match optimize ~required (agg_over ()) with
        | Some plan ->
          (* sorting the ~50 groups after a Hash_agg beats sorting all 2000
             input rows for a Sort_agg, so either implementation may win —
             what matters is that the order is delivered *)
          check "order achieved" true
            (O.satisfies
               ~required:(O.sorted_on (attr "orders" "cust"))
               ~actual:(D.get_order (Plan.descriptor plan) "tuple_order"))
        | None -> Alcotest.fail "no plan");
    Alcotest.test_case "volcano agrees with the exhaustive oracle" `Quick
      (fun () ->
        List.iter
          (fun required ->
            let naive = Naive.best_plan ruleset ~required (agg_over ()) in
            let vol = optimize ~required (agg_over ()) in
            match (naive, vol) with
            | Some n, Some p ->
              Alcotest.(check (float 1e-6)) "cost" n.Naive.cost (Plan.cost p)
            | _ -> Alcotest.fail "plan missing on one side")
          [
            D.empty;
            D.of_list
              [ ("tuple_order", V.Order (O.sorted_on (attr "orders" "cust"))) ];
          ]);
  ]

let execution_tests =
  [
    Alcotest.test_case "hash and stream aggregation agree with a reference"
      `Quick (fun () ->
        let db = E.Data_gen.database ~seed:3 catalog in
        let q = agg_over () in
        (* force both implementations via the two engines' plans and a
           hand-built reference count *)
        let plan = Option.get (optimize q) in
        let schema, rows = E.Compile.execute_plan db plan in
        let table = E.Table.find db "orders" in
        let reference = Hashtbl.create 64 in
        Array.iter
          (fun row ->
            let v = Option.get (Tuple.get table.E.Table.schema row (attr "orders" "cust")) in
            Hashtbl.replace reference v
              (1 + Option.value ~default:0 (Hashtbl.find_opt reference v)))
          table.E.Table.rows;
        check_int "group count" (Hashtbl.length reference) (List.length rows);
        check "every count right" true
          (List.for_all
             (fun row ->
               let g = Option.get (Tuple.get schema row (attr "orders" "cust")) in
               let n = Option.get (Tuple.get schema row Agg.count_attr) in
               V.equal n (V.Int (Hashtbl.find reference g)))
             rows));
    Alcotest.test_case "Sort_agg output is ordered by the group attributes"
      `Quick (fun () ->
        let required =
          D.of_list
            [ ("tuple_order", V.Order (O.sorted_on (attr "orders" "cust"))) ]
        in
        let db = E.Data_gen.database ~seed:3 catalog in
        let plan = Option.get (optimize ~required (agg_over ())) in
        let schema, rows = E.Compile.execute_plan db plan in
        let rec sorted = function
          | a :: (b :: _ as rest) ->
            Tuple.compare_by schema [ attr "orders" "cust" ] a b <= 0 && sorted rest
          | _ -> true
        in
        check "sorted" true (sorted rows));
    Alcotest.test_case "both aggregation iterators agree directly" `Quick
      (fun () ->
        let db = E.Data_gen.database ~seed:9 catalog in
        let table = E.Table.find db "orders" in
        let by = [ attr "orders" "cust" ] in
        let base () = E.Iterator.scan table ~pred:P.True in
        let hash = E.Iterator.hash_aggregate (base ()) ~by in
        let stream =
          E.Iterator.stream_aggregate (E.Iterator.sort (base ()) ~order:by) ~by
        in
        let canon it =
          List.sort compare
            (List.map (Tuple.canonical it.E.Iterator.schema)
               (Array.to_list (E.Iterator.materialize it)))
        in
        check "same groups" true (canon hash = canon stream));
  ]

let suites =
  [
    ("aggregates.rules", rules_tests);
    ("aggregates.planning", planning_tests);
    ("aggregates.execution", execution_tests);
  ]
