bench/main.mli:
