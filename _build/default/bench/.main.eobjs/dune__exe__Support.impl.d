bench/support.ml: Float List Prairie_optimizers Prairie_volcano Prairie_workload Printf String Unix
