(* Shared machinery for the benchmark harness: timing, sweeps, table
   printing. *)

module W = Prairie_workload
module Opt = Prairie_optimizers.Optimizers
module Search = Prairie_volcano.Search
module Stats = Prairie_volcano.Stats

let seeds = [ 101; 202; 303; 404; 505 ]
(* the paper varies base-class cardinalities five times per data point *)

let now () = Unix.gettimeofday ()

(* Milliseconds per optimization, averaged over enough repetitions to get a
   stable reading (the paper loops 3000 times because 1994 clocks were
   coarse; we adapt the repetition count to the measured cost). *)
let time_once f =
  let t0 = now () in
  f ();
  now () -. t0

let time_ms f =
  let first = time_once f in
  if first > 0.5 then first *. 1000.0
  else
    let reps = max 3 (min 200 (int_of_float (0.2 /. Float.max 1e-6 first))) in
    let t0 = now () in
    for _ = 1 to reps do
      f ()
    done;
    (now () -. t0) /. float_of_int reps *. 1000.0

type point = {
  joins : int;
  prairie_ms : float;
  volcano_ms : float;
  groups : int;
  cost : float;
}

(* One data point of Figures 10-13: average optimization time over the five
   catalog instances, for both contestants. *)
let measure_point q ~joins =
  let instances = W.Queries.instances q ~joins ~seeds in
  let total_p = ref 0.0 and total_v = ref 0.0 in
  let groups = ref 0 and cost = ref 0.0 in
  List.iter
    (fun (inst : W.Queries.instance) ->
      let cat = inst.W.Queries.catalog in
      let prairie = Opt.oodb_prairie cat in
      let volcano = Opt.oodb_volcano cat in
      total_p := !total_p +. time_ms (fun () -> ignore (Opt.optimize prairie inst.W.Queries.expr));
      total_v := !total_v +. time_ms (fun () -> ignore (Opt.optimize volcano inst.W.Queries.expr));
      let r = Opt.optimize prairie inst.W.Queries.expr in
      groups := Search.group_count r.Opt.search;
      cost := r.Opt.cost)
    instances;
  let n = float_of_int (List.length instances) in
  {
    joins;
    prairie_ms = !total_p /. n;
    volcano_ms = !total_v /. n;
    groups = !groups;
    cost = !cost;
  }

(* Sweep the join count until a per-point time budget is exhausted (the
   paper stops when virtual memory is exhausted; we stop on wall clock). *)
let sweep q ~max_joins ~budget_s =
  let rec go acc joins =
    if joins > max_joins then List.rev acc
    else
      let t0 = now () in
      let pt = measure_point q ~joins in
      let elapsed = now () -. t0 in
      if elapsed > budget_s && joins < max_joins then List.rev (pt :: acc)
      else go (pt :: acc) (joins + 1)
  in
  go [] 1

let header title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let subheader title = Printf.printf "\n-- %s --\n" title

let print_points name points =
  Printf.printf "%s\n" name;
  Printf.printf "  %6s  %12s  %12s  %8s  %10s  %7s\n" "joins" "Prairie(ms)"
    "Volcano(ms)" "ratio" "groups" "cost";
  List.iter
    (fun p ->
      Printf.printf "  %6d  %12.3f  %12.3f  %7.2f%%  %10d  %7.1f\n" p.joins
        p.prairie_ms p.volcano_ms
        ((p.prairie_ms /. Float.max 1e-9 p.volcano_ms -. 1.0) *. 100.0)
        p.groups p.cost)
    points
