(** Bulk-synchronous worker team for the parallel explorer.

    A fixed set of domains (spawned once, parked on a condition variable
    between batches) plus the calling thread execute batches of indexed
    tasks to a full barrier.  One orchestrating thread owns the team;
    {!run} calls must never overlap. *)

type t

val create : jobs:int -> t
(** Spawn [jobs - 1] worker domains (the caller is the [jobs]-th worker).
    [jobs] is clamped to at least 1; a team of size 1 spawns nothing and
    {!run} degenerates to a sequential loop. *)

val size : t -> int

val run : t -> (int -> unit) -> int -> unit
(** [run t f n] executes [f i] for each [i] in [0, n), claiming indices
    through a shared atomic counter, and returns once all have completed.
    [f] must treat its work as speculative: exceptions are swallowed
    (the task is simply left unfinished for the caller to replay
    inline). *)

val shutdown : t -> unit
(** Stop and join all worker domains.  The team must not be used after. *)
