(** Search statistics.

    Counters the experiments report: equivalence classes (Figure 14),
    distinct rules matched (Table 5) and raw search effort. *)

type t = {
  mutable groups_created : int;
  mutable groups_merged : int;
  mutable lexprs_created : int;
  mutable lexpr_duplicates : int;  (** dedup hits during exploration *)
  mutable trans_applications : int;  (** successful trans-rule firings *)
  mutable impl_firings : int;  (** impl-rule plans costed *)
  mutable enforcer_firings : int;
  mutable memo_hits : int;
  mutable optimize_calls : int;
  mutable pruned : int;  (** sub-searches abandoned by the cost limit *)
  mutable winner_probes : int;  (** winner-table lookups *)
  mutable winner_hits : int;  (** winner-table lookups answered *)
  trans_matched : (string, unit) Hashtbl.t;
      (** distinct trans rules whose LHS matched *)
  impl_matched : (string, unit) Hashtbl.t;
      (** distinct impl rules whose operator matched *)
  trans_applied : (string, unit) Hashtbl.t;
      (** distinct trans rules whose condition passed at least once *)
  impl_applied : (string, unit) Hashtbl.t;
      (** distinct impl rules whose condition passed at least once *)
}

val create : unit -> t

val reset : t -> unit

val record_trans_match : t -> string -> unit

val record_impl_match : t -> string -> unit

val trans_matched_count : t -> int
(** Number of distinct trans_rules matched — the Table 5 metric. *)

val impl_matched_count : t -> int

val record_trans_applied : t -> string -> unit
val record_impl_applied : t -> string -> unit
val trans_applied_count : t -> int
val impl_applied_count : t -> int

(** The recorded rule names, sorted (the sets themselves are Hashtbl-backed
    so recording stays O(1) under rule sets with many distinct rules). *)

val trans_matched_names : t -> string list
val impl_matched_names : t -> string list
val trans_applied_names : t -> string list
val impl_applied_names : t -> string list

val pp : Format.formatter -> t -> unit
