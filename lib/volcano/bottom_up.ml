module Descriptor = Prairie.Descriptor
module Span = Prairie_obs.Span

type result = {
  plan : Plan.t option;
  groups_explored : int;
  requirements_considered : int;
  plans_costed : int;
}

module Key = struct
  type t = Memo.gid * Descriptor.t

  let equal (g1, d1) (g2, d2) = g1 = g2 && Descriptor.equal d1 d2
  let hash (g, d) = Hashtbl.hash (g, Descriptor.hash d)
end

module Tbl = Hashtbl.Make (Key)

(* Groups in dependency order: every group appears after the groups its
   members read as inputs. *)
let topological_order memo =
  let visited = Hashtbl.create 64 in
  let order = ref [] in
  let rec visit g =
    let g = Memo.canonical memo g in
    if not (Hashtbl.mem visited g) then begin
      Hashtbl.replace visited g ();
      List.iter
        (fun (le : Memo.lexpr) -> Array.iter visit le.Memo.inputs)
        (Memo.lexprs memo g);
      order := g :: !order
    end
  in
  List.iter visit (Memo.groups memo);
  List.rev !order

let optimize_in ctx g0 ~required =
  let memo = Search.memo ctx in
  let rules = Search.ruleset ctx in
  let required = Search.restrict_req ctx required in
  let sink = Search.spans ctx in
  (* the whole bottom-up run is one root span; saturation produces
     [Explore] children, the DP phase a single [Cost] child *)
  let root = Span.enter_opt sink ~parent:None Span.Optimize in
  (* 1. saturate: explore until no group or expression appears *)
  let rec saturate () =
    let before = (Memo.group_count memo, Memo.lexpr_count memo) in
    List.iter
      (fun g -> Search.explore_group ctx ?span:root g)
      (Memo.groups memo);
    if (Memo.group_count memo, Memo.lexpr_count memo) <> before then saturate ()
  in
  saturate ();
  let g0 = Memo.canonical memo g0 in
  (* 2. interesting requirements per group (worklist from the root) *)
  let interesting : unit Tbl.t = Tbl.create 64 in
  let queue = Queue.create () in
  let add g req =
    let g = Memo.canonical memo g in
    let req = Search.restrict_req ctx req in
    if not (Tbl.mem interesting (g, req)) then begin
      Tbl.replace interesting (g, req) ();
      Queue.add (g, req) queue
    end
  in
  (* every group needs its unconstrained plan as the DP base case *)
  List.iter (fun g -> add g Descriptor.empty) (Memo.groups memo);
  add g0 required;
  while not (Queue.is_empty queue) do
    let g, req = Queue.pop queue in
    List.iter
      (fun (le : Memo.lexpr) ->
        match le.Memo.node with
        | Memo.L_file _ -> ()
        | Memo.L_op op ->
          let input_descs = Array.map (Memo.group_desc memo) le.Memo.inputs in
          List.iter
            (fun (ir : Rule.impl_rule) ->
              if
                ir.Rule.ir_arity = Array.length le.Memo.inputs
                && ir.Rule.ir_cond ~op_arg:le.Memo.arg ~req ~inputs:input_descs
              then
                let reqs =
                  ir.Rule.ir_input_reqs ~op_arg:le.Memo.arg ~req
                    ~inputs:input_descs
                in
                Array.iteri (fun i r -> add le.Memo.inputs.(i) r) reqs)
            (Rule.impl_rules_for rules op))
      (Memo.lexprs memo g);
    List.iter
      (fun (en : Rule.enforcer) ->
        if en.Rule.en_applies ~req then add g (en.Rule.en_relaxed ~req))
      rules.Rule.rs_enforcers
  done;
  (* 3. dynamic programming in dependency order; within a group, smaller
     requirement vectors first so enforcers find their relaxed plans *)
  let dp_span = Span.enter_opt sink ~parent:root Span.Cost in
  let table : Plan.t option Tbl.t = Tbl.create 64 in
  let plans_costed = ref 0 in
  let reqs_of g =
    Tbl.fold (fun (g', req) () acc -> if g' = g then req :: acc else acc)
      interesting []
    |> List.sort (fun a b ->
           compare
             (List.length (Descriptor.to_list a))
             (List.length (Descriptor.to_list b)))
  in
  let groups = topological_order memo in
  List.iter
    (fun g ->
      List.iter
        (fun req ->
          let best = ref None in
          let consider plan cost =
            if rules.Rule.rs_satisfies ~required:req ~actual:(Plan.descriptor plan)
            then
              match !best with
              | Some (_, c) when c <= cost -> ()
              | _ -> best := Some (plan, cost)
          in
          let members = Memo.lexprs memo g in
          List.iter
            (fun (le : Memo.lexpr) ->
              match le.Memo.node with
              | Memo.L_file name ->
                consider
                  (Plan.Leaf (name, le.Memo.arg))
                  (Descriptor.cost le.Memo.arg)
              | Memo.L_op op ->
                let input_descs =
                  Array.map (Memo.group_desc memo) le.Memo.inputs
                in
                List.iter
                  (fun (ir : Rule.impl_rule) ->
                    if
                      ir.Rule.ir_arity = Array.length le.Memo.inputs
                      && ir.Rule.ir_cond ~op_arg:le.Memo.arg ~req
                           ~inputs:input_descs
                    then begin
                      let ireqs =
                        ir.Rule.ir_input_reqs ~op_arg:le.Memo.arg ~req
                          ~inputs:input_descs
                      in
                      let inputs =
                        Array.mapi
                          (fun i r ->
                            match
                              Tbl.find_opt table
                                ( Memo.canonical memo le.Memo.inputs.(i),
                                  Search.restrict_req ctx r )
                            with
                            | Some (Some p) -> Some p
                            | Some None | None -> None)
                          ireqs
                      in
                      if Array.for_all Option.is_some inputs then begin
                        let descs =
                          Array.map
                            (fun p -> Plan.descriptor (Option.get p))
                            inputs
                        in
                        let desc =
                          ir.Rule.ir_finalize ~op_arg:le.Memo.arg ~req
                            ~inputs:descs
                        in
                        incr plans_costed;
                        consider
                          (Plan.Alg
                             ( ir.Rule.ir_alg,
                               desc,
                               Array.to_list (Array.map Option.get inputs) ))
                          (Descriptor.cost desc)
                      end
                    end)
                  (Rule.impl_rules_for rules op))
            members;
          let files_only =
            List.for_all
              (fun le ->
                match le.Memo.node with
                | Memo.L_file _ -> true
                | Memo.L_op _ -> false)
              members
          in
          if not files_only then
            List.iter
              (fun (en : Rule.enforcer) ->
                if en.Rule.en_applies ~req then begin
                  let relaxed =
                    Search.restrict_req ctx (en.Rule.en_relaxed ~req)
                  in
                  if not (Descriptor.equal relaxed req) then
                    match Tbl.find_opt table (g, relaxed) with
                    | Some (Some sub) ->
                      let desc =
                        en.Rule.en_finalize ~req ~input:(Plan.descriptor sub)
                      in
                      incr plans_costed;
                      consider
                        (Plan.Alg (en.Rule.en_alg, desc, [ sub ]))
                        (Descriptor.cost desc)
                    | Some None | None -> ()
                end)
              rules.Rule.rs_enforcers;
          Tbl.replace table (g, req) (Option.map fst !best))
        (reqs_of g))
    groups;
  Span.exit_opt sink dp_span;
  Span.exit_opt sink root;
  {
    plan =
      (match Tbl.find_opt table (g0, required) with
      | Some p -> p
      | None -> None);
    groups_explored = Memo.group_count memo;
    requirements_considered = Tbl.length interesting;
    plans_costed = !plans_costed;
  }

let optimize ?(required = Descriptor.empty) ?trace ?spans rules expr =
  let ctx = Search.create ?trace ?spans rules in
  let g0 = Memo.insert_expr (Search.memo ctx) expr in
  optimize_in ctx g0 ~required
