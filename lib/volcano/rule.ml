module Descriptor = Prairie.Descriptor
module Value = Prairie_value.Value
module Order = Prairie_value.Order

type denv = (string * Descriptor.t) list

let denv_get env d =
  match List.assoc_opt d env with Some x -> x | None -> Descriptor.empty

let denv_set env d v = (d, v) :: List.remove_assoc d env

type trans_rule = {
  tr_name : string;
  tr_lhs : Prairie.Pattern.t;
  tr_rhs : Prairie.Pattern.tmpl;
  tr_cond : denv -> denv option;
  tr_appl : denv -> denv;
}

type impl_rule = {
  ir_name : string;
  ir_op : string;
  ir_alg : string;
  ir_arity : int;
  ir_cond :
    op_arg:Descriptor.t ->
    req:Descriptor.t ->
    inputs:Descriptor.t array ->
    bool;
  ir_input_reqs :
    op_arg:Descriptor.t ->
    req:Descriptor.t ->
    inputs:Descriptor.t array ->
    Descriptor.t array;
  ir_finalize :
    op_arg:Descriptor.t ->
    req:Descriptor.t ->
    inputs:Descriptor.t array ->
    Descriptor.t;
}

type enforcer = {
  en_name : string;
  en_alg : string;
  en_applies : req:Descriptor.t -> bool;
  en_relaxed : req:Descriptor.t -> Descriptor.t;
  en_finalize : req:Descriptor.t -> input:Descriptor.t -> Descriptor.t;
}

type ruleset = {
  rs_name : string;
  rs_trans : trans_rule list;
  rs_impl : impl_rule list;
  rs_enforcers : enforcer list;
  rs_physical : string list;
  rs_physical_set : Descriptor.String_set.t;
      (** [rs_physical] as a set, built once at construction *)
  rs_impl_index : (string, impl_rule list) Hashtbl.t;
      (** impl rules grouped by operator, in [rs_impl] order *)
  rs_match_index : (string, (int * trans_rule) list) Hashtbl.t;
      (** trans rules by LHS root operator, paired with their [rs_trans]
          position (the memo's tried-table rule id); wildcard-rooted rules
          appear in every bucket.  Read through {!trans_rules_for}. *)
  rs_match_wildcard : (int * trans_rule) list;
      (** trans rules whose LHS root is a bare stream variable *)
  rs_satisfies : required:Descriptor.t -> actual:Descriptor.t -> bool;
}

let default_satisfies ~required ~actual =
  List.for_all
    (fun (p, req_v) ->
      match p with
      | "tuple_order" ->
        Order.satisfies ~required:(Value.to_order req_v)
          ~actual:(Value.to_order (Descriptor.get actual p))
      | _ -> Value.equal req_v (Descriptor.get actual p))
    (Descriptor.to_list required)

let make_ruleset ?(trans = []) ?(impl = []) ?(enforcers = [])
    ?(physical = [ "tuple_order" ]) ?(satisfies = default_satisfies) name =
  let impl_index = Hashtbl.create 16 in
  (* reversed-accumulator grouping keeps each bucket in [impl] order *)
  List.iter
    (fun r ->
      let prev = Option.value ~default:[] (Hashtbl.find_opt impl_index r.ir_op) in
      Hashtbl.replace impl_index r.ir_op (r :: prev))
    (List.rev impl);
  (* The match index pairs each trans rule with its [trans] position — the
     rule id of the memo's tried table, so indexed and un-indexed search
     share one id space.  Wildcard-rooted rules go into every bucket (and
     the wildcard list) so the indexed path sees exactly the rules whose
     LHS root could match a given node. *)
  let numbered = List.mapi (fun i tr -> (i, tr)) trans in
  let wildcard =
    List.filter
      (fun (_, tr) -> Prairie.Pattern.root_operator tr.tr_lhs = None)
      numbered
  in
  let match_index = Hashtbl.create 16 in
  List.iter
    (fun (_, tr) ->
      match Prairie.Pattern.root_operator tr.tr_lhs with
      | None -> ()
      | Some op ->
        if not (Hashtbl.mem match_index op) then
          Hashtbl.add match_index op
            (List.filter
               (fun (_, tr') ->
                 match Prairie.Pattern.root_operator tr'.tr_lhs with
                 | None -> true
                 | Some op' -> String.equal op op')
               numbered))
    numbered;
  {
    rs_name = name;
    rs_trans = trans;
    rs_impl = impl;
    rs_enforcers = enforcers;
    rs_physical = physical;
    rs_physical_set = Descriptor.String_set.of_list physical;
    rs_impl_index = impl_index;
    rs_match_index = match_index;
    rs_match_wildcard = wildcard;
    rs_satisfies = satisfies;
  }

let impl_rules_for rs op =
  Option.value ~default:[] (Hashtbl.find_opt rs.rs_impl_index op)

let trans_rules_for rs op =
  match op with
  | None -> rs.rs_match_wildcard
  | Some op -> (
    match Hashtbl.find_opt rs.rs_match_index op with
    | Some rules -> rules
    | None -> rs.rs_match_wildcard)

let restrict_physical rs d = Descriptor.restrict_set d rs.rs_physical_set
