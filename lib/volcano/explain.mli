(** EXPLAIN-style rendering of access plans.

    A human-oriented tree view of a plan with the information an engineer
    asks of an optimizer: per-node algorithm, the predicate or attribute it
    was parameterized with, estimated cardinality, delivered order, and
    cumulative cost — all read out of the descriptors the rules computed. *)

val pp : Format.formatter -> Plan.t -> unit
(** Multi-line tree, e.g.:
    {v
    Pointer_join                 cost=42.11  rows=6  order=sorted(C1.oid)
    ├─ Merge_sort                cost=8.49   rows=6  order=sorted(C1.oid)
    │  └─ Index_scan [C1.bC1 = 3]  cost=8.39 rows=6
    │     └─ C1                  rows=1278
    └─ File_scan                 cost=33.49  rows=1143
       └─ C2                     rows=1143
    v} *)

val to_string : Plan.t -> string

val summary : Plan.t -> string
(** One line: total cost, result cardinality, algorithms used. *)

val trace : Format.formatter -> Prairie_obs.Trace.t -> unit
(** The per-rule account of a recorded search (see
    {!Search.create}[ ~trace]): how often each transformation and
    implementation rule matched, applied, and was rejected — with the
    rejection reasons (test failed / pruned by cost limit / budget
    exhausted / no input plan) — plus group, memo-hit, enforcer and
    winner-change totals.  Rules that matched but never applied are
    called out explicitly: this is the "why did rule X never fire"
    answer.  Events dropped by the ring buffer are reported but cannot
    be accounted. *)

val trace_to_string : Prairie_obs.Trace.t -> string

val profile : Format.formatter -> Prairie_obs.Span.t -> unit
(** The per-(phase, rule) time-attribution table of a span sink (see
    {!Search.create}[ ~spans]): count, total and self milliseconds
    (self excludes nested spans), share of the rooted total, and minor
    allocation kilowords, sorted by self time.  Aggregates are exact
    even when the record ring dropped spans; the rooted total is the
    summed duration of parentless spans — within clock resolution of
    the wall time the caller measured around the search. *)

val profile_to_string : Prairie_obs.Span.t -> string
