(** Volcano rules: trans_rules, impl_rules and enforcers.

    This is the rule interface of the Volcano optimizer generator (paper
    §3.1–3.2).  Where Prairie rules are data (statement lists), Volcano
    rules are code: condition and application functions.  Hand-coded rule
    sets supply OCaml closures (the analog of the C support functions the
    paper counts in §4.2); the P2V pre-processor generates the closures
    from Prairie rules automatically. *)

type denv = (string * Prairie.Descriptor.t) list
(** Descriptor environments: descriptor-variable bindings produced by
    pattern matching and extended by condition/application code. *)

val denv_get : denv -> string -> Prairie.Descriptor.t
(** Unbound variables read as the empty descriptor. *)

val denv_set : denv -> string -> Prairie.Descriptor.t -> denv

type trans_rule = {
  tr_name : string;
  tr_lhs : Prairie.Pattern.t;
      (** pattern over operators; stream variable [?i] binds group
          descriptors to [Di] *)
  tr_rhs : Prairie.Pattern.tmpl;
  tr_cond : denv -> denv option;
      (** cond_code: pre-test statements + test.  Returns the extended
          environment on success. *)
  tr_appl : denv -> denv;
      (** appl_code: post-test statements computing the remaining output
          descriptors. *)
}

type impl_rule = {
  ir_name : string;
  ir_op : string;  (** the operator implemented *)
  ir_alg : string;  (** the algorithm chosen *)
  ir_arity : int;
  ir_cond :
    op_arg:Prairie.Descriptor.t ->
    req:Prairie.Descriptor.t ->
    inputs:Prairie.Descriptor.t array ->
    bool;
      (** cond_code + do_any_good: is the algorithm applicable and can it
          contribute to the required physical properties?  [inputs] are the
          input groups' logical descriptors (e.g. a file's catalog
          annotations, which an index-scan test inspects). *)
  ir_input_reqs :
    op_arg:Prairie.Descriptor.t ->
    req:Prairie.Descriptor.t ->
    inputs:Prairie.Descriptor.t array ->
    Prairie.Descriptor.t array;
      (** get_input_pv: required physical properties for each input.
          [inputs] are the input groups' logical descriptors. *)
  ir_finalize :
    op_arg:Prairie.Descriptor.t ->
    req:Prairie.Descriptor.t ->
    inputs:Prairie.Descriptor.t array ->
    Prairie.Descriptor.t;
      (** derive_phy_prop + cost: given the achieved descriptors of the
          optimized input plans, the full algorithm descriptor (argument,
          achieved physical properties, cost). *)
}

type enforcer = {
  en_name : string;
  en_alg : string;
  en_applies : req:Prairie.Descriptor.t -> bool;
      (** can the enforcer establish part of [req]? *)
  en_relaxed : req:Prairie.Descriptor.t -> Prairie.Descriptor.t;
      (** the requirement passed down to the input once the enforcer runs *)
  en_finalize :
    req:Prairie.Descriptor.t -> input:Prairie.Descriptor.t -> Prairie.Descriptor.t;
      (** the enforcer algorithm's descriptor given its optimized input *)
}

type ruleset = {
  rs_name : string;
  rs_trans : trans_rule list;
  rs_impl : impl_rule list;
  rs_enforcers : enforcer list;
  rs_physical : string list;  (** the physical property names *)
  rs_physical_set : Prairie.Descriptor.String_set.t;
      (** [rs_physical] as a set, built once by {!make_ruleset} so
          {!restrict_physical} never rebuilds it *)
  rs_impl_index : (string, impl_rule list) Hashtbl.t;
      (** impl rules grouped by operator (in [rs_impl] order), built once
          by {!make_ruleset}; {!impl_rules_for} reads it *)
  rs_match_index : (string, (int * trans_rule) list) Hashtbl.t;
      (** trans rules grouped by LHS root operator, each paired with its
          [rs_trans] position — the rule id of the memo's tried table, so
          indexed and un-indexed search share one id space.  Buckets
          preserve [rs_trans] order and include wildcard-rooted rules.
          Built once by {!make_ruleset}; {!trans_rules_for} reads it. *)
  rs_match_wildcard : (int * trans_rule) list;
      (** trans rules whose LHS root is a bare stream variable (they match
          any node — including the stored-file case, where the engine
          rejects them with the same [Invalid_argument] either way) *)
  rs_satisfies :
    required:Prairie.Descriptor.t -> actual:Prairie.Descriptor.t -> bool;
      (** does an achieved physical-property vector satisfy a required
          one? *)
}

val default_satisfies :
  required:Prairie.Descriptor.t -> actual:Prairie.Descriptor.t -> bool
(** Per-property check: [tuple_order] via {!Prairie_value.Order.satisfies},
    anything else by equality.  Properties absent from [required] are
    unconstrained. *)

val make_ruleset :
  ?trans:trans_rule list ->
  ?impl:impl_rule list ->
  ?enforcers:enforcer list ->
  ?physical:string list ->
  ?satisfies:
    (required:Prairie.Descriptor.t -> actual:Prairie.Descriptor.t -> bool) ->
  string ->
  ruleset

val impl_rules_for : ruleset -> string -> impl_rule list
(** O(1) lookup of the impl rules for an operator, in [rs_impl] order. *)

val trans_rules_for : ruleset -> string option -> (int * trans_rule) list
(** O(1) lookup of the trans rules whose LHS root could match a node:
    [Some op] for an operator node (that operator's bucket, or just the
    wildcard rules when no rule is rooted there), [None] for a stored
    file (wildcard rules only).  Rules a bucket omits are exactly those
    whose match would return no bindings — skipping them leaves matches,
    applications, stats, traces and plans untouched. *)

val restrict_physical : ruleset -> Prairie.Descriptor.t -> Prairie.Descriptor.t
(** Project a descriptor onto the rule set's physical properties. *)
