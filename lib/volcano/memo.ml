module Descriptor = Prairie.Descriptor
module Expr = Prairie.Expr
module Trace = Prairie_obs.Trace
module Span = Prairie_obs.Span

type gid = int

type lnode =
  | L_op of string
  | L_file of string

type lexpr = {
  id : int;
  node : lnode;
  arg : Descriptor.t;
  inputs : gid array;
}

type gtree =
  | Gleaf of gid
  | Gnode of string * Descriptor.t * gtree list

type winner = {
  plan : Plan.t option;
  cost : float;
  searched_limit : float;
}

(* [members] is kept newest-first (insertion prepends), so [lexprs] returns
   it without allocating; older code stored it oldest-first and paid a
   [List.rev] per call in the innermost explore/cost loops. *)
type group = {
  g_id : gid;
  mutable members : lexpr list;
  mutable desc : Descriptor.t;
  mutable explored : bool;
  mutable exploring : bool;
  winners : winner Descriptor.Tbl.t;
}

module Key = struct
  type t = lnode * Descriptor.t * gid array

  let node_equal n1 n2 =
    match (n1, n2) with
    | L_op a, L_op b | L_file a, L_file b -> String.equal a b
    | L_op _, L_file _ | L_file _, L_op _ -> false

  let equal (n1, d1, i1) (n2, d2, i2) =
    node_equal n1 n2
    && Array.length i1 = Array.length i2
    && Array.for_all2 Int.equal i1 i2
    && Descriptor.equal d1 d2

  (* Allocation-free: combines the cached descriptor hash with the node name
     and input gids directly, instead of hashing a freshly built
     (node, hash, list) tuple per probe. *)
  let node_hash = function
    | L_op s -> Hashtbl.hash s
    | L_file s -> Hashtbl.hash s lxor 0x2f6e5a

  let hash (n, d, i) =
    let h = ref (node_hash n lxor Descriptor.hash d) in
    Array.iter (fun g -> h := (!h * 31) + g) i;
    !h land max_int
end

module Ktbl = Hashtbl.Make (Key)

type t = {
  parents : (gid, gid) Hashtbl.t;
  groups : (gid, group) Hashtbl.t;  (** canonical gid -> group *)
  mutable next_gid : int;
  mutable next_lexpr : int;
  index : (int * gid) Ktbl.t;  (** dedup: key -> (lexpr id, group) *)
  tried : (int, unit) Hashtbl.t;
      (** (lexpr id, trans-rule id) packed into one int — see [tried_key] *)
  stats : Stats.t;
  trace : Trace.t option;
  spans : Span.t option;
}

let create ?(stats = Stats.create ()) ?trace ?spans () =
  {
    parents = Hashtbl.create 64;
    groups = Hashtbl.create 64;
    next_gid = 0;
    next_lexpr = 0;
    index = Ktbl.create 256;
    tried = Hashtbl.create 256;
    stats;
    trace;
    spans;
  }

(* Single Option check on the disabled path; the event is only allocated
   when a sink is attached. *)
let emit t ev =
  match t.trace with None -> () | Some tr -> Trace.emit tr (ev ())

let stats t = t.stats

let rec canonical t g =
  match Hashtbl.find_opt t.parents g with
  | None -> g
  | Some p ->
    let root = canonical t p in
    if root <> p then Hashtbl.replace t.parents g root;
    root

let group t g = Hashtbl.find t.groups (canonical t g)
let group_desc t g = (group t g).desc
let lexprs t g = (group t g).members
let group_count t = Hashtbl.length t.groups

let lexpr_count t =
  Hashtbl.fold (fun _ g n -> n + List.length g.members) t.groups 0

let groups t =
  Hashtbl.fold (fun gid _ acc -> gid :: acc) t.groups [] |> List.sort Int.compare

let is_explored t g = (group t g).explored
let set_explored t g v = (group t g).explored <- v
let is_exploring t g = (group t g).exploring
let set_exploring t g v = (group t g).exploring <- v
(* Rule ids are positions in the rule set's transformation list, so they fit
   comfortably in 20 bits; packing avoids allocating a tuple key on every
   "already tried?" probe in the explore loop. *)
let tried_key (le : lexpr) rule = (le.id lsl 20) lor rule
let rule_tried t (le : lexpr) rule = Hashtbl.mem t.tried (tried_key le rule)
let mark_rule_tried t (le : lexpr) rule =
  Hashtbl.replace t.tried (tried_key le rule) ()

let find_winner t g req =
  let grp = group t g in
  t.stats.Stats.winner_probes <- t.stats.Stats.winner_probes + 1;
  match Descriptor.Tbl.find_opt grp.winners req with
  | Some _ as w ->
    t.stats.Stats.winner_hits <- t.stats.Stats.winner_hits + 1;
    w
  | None -> None

let set_winner t g req w =
  let grp = group t g in
  Descriptor.Tbl.replace grp.winners req w

let clear_winners t =
  Hashtbl.iter (fun _ g -> Descriptor.Tbl.reset g.winners) t.groups

let fresh_group t desc =
  let g =
    {
      g_id = t.next_gid;
      members = [];
      desc;
      explored = false;
      exploring = false;
      winners = Descriptor.Tbl.create 8;
    }
  in
  t.next_gid <- t.next_gid + 1;
  Hashtbl.replace t.groups g.g_id g;
  t.stats.Stats.groups_created <- t.stats.Stats.groups_created + 1;
  emit t (fun () -> Trace.Group_created { gid = g.g_id });
  g

(* Merge two groups proven equal; the smaller id survives.  Members whose
   inputs referenced the dead group are canonicalized lazily by
   [normalize]. *)
let rec merge t a b =
  let a = canonical t a and b = canonical t b in
  if a = b then a
  else begin
    let survivor, dead = if a < b then (a, b) else (b, a) in
    let gs = Hashtbl.find t.groups survivor in
    let gd = Hashtbl.find t.groups dead in
    Hashtbl.remove t.groups dead;
    Hashtbl.replace t.parents dead survivor;
    (* newest-first concatenation: the dead group's members are "newer" than
       the survivor's, matching the pre-merge [lexprs] order. *)
    gs.members <- gd.members @ gs.members;
    gs.explored <- false;
    gs.exploring <- gs.exploring || gd.exploring;
    Descriptor.Tbl.reset gs.winners;
    t.stats.Stats.groups_merged <- t.stats.Stats.groups_merged + 1;
    emit t (fun () -> Trace.Groups_merged { survivor; dead });
    normalize t;
    canonical t survivor
  end

(* After a merge, re-canonicalize every member's inputs and rebuild the
   dedup index; newly-revealed duplicates cascade into further merges.
   Dedup keeps the oldest occurrence and the index records members
   oldest-first, so the surviving ids match the pre-merge state. *)
and normalize t =
  Ktbl.clear t.index;
  let pending = ref None in
  (* Most members are untouched by a merge; re-allocate the record (and its
     input array) only when canonicalization actually changes a gid. *)
  let canon_member le =
    let inputs = le.inputs in
    let n = Array.length inputs in
    let i = ref 0 in
    while !i < n && canonical t inputs.(!i) = inputs.(!i) do
      incr i
    done;
    if !i = n then le
    else { le with inputs = Array.map (canonical t) inputs }
  in
  Hashtbl.iter
    (fun gid g ->
      let oldest_first = List.rev_map canon_member g.members in
      (* drop duplicates within the group *)
      let seen = Ktbl.create 8 in
      let oldest_first =
        List.filter
          (fun le ->
            let k = (le.node, le.arg, le.inputs) in
            if Ktbl.mem seen k then false
            else begin
              Ktbl.replace seen k ();
              true
            end)
          oldest_first
      in
      g.members <- List.rev oldest_first;
      List.iter
        (fun le ->
          let k = (le.node, le.arg, le.inputs) in
          match Ktbl.find_opt t.index k with
          | None -> Ktbl.replace t.index k (le.id, gid)
          | Some (_, gid') when gid' <> gid ->
            if !pending = None then pending := Some (gid, gid')
          | Some _ -> ())
        oldest_first)
    t.groups;
  match !pending with
  | Some (x, y) -> ignore (merge t x y)
  | None -> ()

(* Insert a logical expression, deduplicating globally.  Returns the group
   it lives in and whether it is new. *)
let insert_lexpr t ?into node arg inputs =
  let inputs = Array.map (canonical t) inputs in
  (* [inputs] is already canonical, so the key can share the array instead of
     re-canonicalizing through [key_of]. *)
  let key = (node, arg, inputs) in
  match Ktbl.find_opt t.index key with
  | Some (_, g) ->
    t.stats.Stats.lexpr_duplicates <- t.stats.Stats.lexpr_duplicates + 1;
    let g = canonical t g in
    let g =
      match into with
      | Some target when canonical t target <> g -> merge t target g
      | _ -> g
    in
    (g, false)
  | None ->
    let grp =
      match into with
      | Some target -> group t target
      | None -> fresh_group t arg
    in
    let le = { id = t.next_lexpr; node; arg; inputs } in
    t.next_lexpr <- t.next_lexpr + 1;
    grp.members <- le :: grp.members;
    grp.explored <- false;
    Ktbl.replace t.index key (le.id, grp.g_id);
    t.stats.Stats.lexprs_created <- t.stats.Stats.lexprs_created + 1;
    (canonical t grp.g_id, true)

let insert_file t name desc =
  fst (insert_lexpr t (L_file name) desc [||])

let rec insert_expr_rec t (e : Expr.t) =
  match e with
  | Expr.Stored (name, d) -> insert_file t name d
  | Expr.Node (Expr.Operator, name, d, inputs) ->
    let gids = Array.of_list (List.map (insert_expr_rec t) inputs) in
    fst (insert_lexpr t (L_op name) d gids)
  | Expr.Node (Expr.Algorithm, name, _, _) ->
    invalid_arg ("Memo.insert_expr: algorithm node " ^ name)

let insert_expr t ?span_parent e =
  match t.spans with
  | None -> insert_expr_rec t e
  | Some sink ->
    let h = Span.enter sink ?parent:span_parent Span.Memo_insert in
    Fun.protect
      ~finally:(fun () -> Span.exit sink h)
      (fun () -> insert_expr_rec t e)

let rec insert_gtree_rec t ?into tree =
  match tree with
  | Gleaf g -> (canonical t g, false)
  | Gnode (name, desc, subs) ->
    let fresh = ref false in
    let gids =
      Array.of_list
        (List.map
           (fun sub ->
             let g, f = insert_gtree_rec t sub in
             if f then fresh := true;
             g)
           subs)
    in
    let g, f = insert_lexpr t ?into (L_op name) desc gids in
    (g, f || !fresh)

let insert_gtree t ?into ?span_parent tree =
  match t.spans with
  | None -> insert_gtree_rec t ?into tree
  | Some sink ->
    let h = Span.enter sink ?parent:span_parent Span.Memo_insert in
    Fun.protect
      ~finally:(fun () -> Span.exit sink h)
      (fun () -> insert_gtree_rec t ?into tree)

let spans t = t.spans

let pp_lnode ppf = function
  | L_op name -> Format.pp_print_string ppf name
  | L_file name -> Format.fprintf ppf "file:%s" name

let pp ppf t =
  Format.fprintf ppf "@[<v>memo: %d groups, %d lexprs" (group_count t)
    (lexpr_count t);
  List.iter
    (fun gid ->
      let g = Hashtbl.find t.groups gid in
      Format.fprintf ppf "@,@[<v 2>group %d%s:" gid
        (if g.explored then " (explored)" else "");
      List.iter
        (fun le ->
          Format.fprintf ppf "@,%a(%s)" pp_lnode le.node
            (String.concat ", "
               (List.map string_of_int (Array.to_list le.inputs))))
        g.members;
      Format.fprintf ppf "@]")
    (groups t);
  Format.fprintf ppf "@]"
