module Descriptor = Prairie.Descriptor
module Expr = Prairie.Expr
module Trace = Prairie_obs.Trace
module Span = Prairie_obs.Span

type gid = int

type lnode =
  | L_op of string
  | L_file of string

(* [inputs] is canonicalized *in place* during post-merge repair: a slot is
   only ever overwritten with the canonical id of its previous value, so
   [canonical inputs.(i)] is stable across the mutation and matching
   results are unaffected.  The record itself is never re-allocated —
   member identity (and the packed [tried] keys hanging off [id]) survives
   repair. *)
type lexpr = {
  id : int;
  node : lnode;
  arg : Descriptor.t;
  inputs : gid array;
}

type gtree =
  | Gleaf of gid
  | Gnode of string * Descriptor.t * gtree list

type winner = {
  plan : Plan.t option;
  cost : float;
  searched_limit : float;
}

(* [members] is kept newest-first (insertion prepends), so [lexprs] returns
   it without allocating; older code stored it oldest-first and paid a
   [List.rev] per call in the innermost explore/cost loops.

   [version] counts observable membership changes (insert, merge splice,
   duplicate drop) — the speculative parallel explorer records it in read
   sets and revalidates before committing.  In-place input
   canonicalization does not bump it: matching only ever consumes inputs
   through [canonical], which the rewrite preserves.

   [w_epoch] keys this group's entries in the striped winner store;
   bumping it on merge invalidates every memoized winner in O(1). *)
type group = {
  g_id : gid;
  mutable members : lexpr list;
  mutable desc : Descriptor.t;
  mutable explored : bool;
  mutable exploring : bool;
  mutable version : int;
  mutable w_epoch : int;
}

module Key = struct
  type t = lnode * Descriptor.t * gid array

  let node_equal n1 n2 =
    match (n1, n2) with
    | L_op a, L_op b | L_file a, L_file b -> String.equal a b
    | L_op _, L_file _ | L_file _, L_op _ -> false

  let equal (n1, d1, i1) (n2, d2, i2) =
    node_equal n1 n2
    && Array.length i1 = Array.length i2
    && Array.for_all2 Int.equal i1 i2
    && Descriptor.equal d1 d2

  (* Allocation-free: combines the cached descriptor hash with the node name
     and input gids directly, instead of hashing a freshly built
     (node, hash, list) tuple per probe. *)
  let node_hash = function
    | L_op s -> Hashtbl.hash s
    | L_file s -> Hashtbl.hash s lxor 0x2f6e5a

  let hash (n, d, i) =
    let h = ref (node_hash n lxor Descriptor.hash d) in
    Array.iter (fun g -> h := (!h * 31) + g) i;
    !h land max_int
end

module Ktbl = Hashtbl.Make (Key)

(* Winners live in a lock-striped store keyed by (group, epoch, required
   descriptor) instead of per-group tables: striping keeps probes sound if
   several domains ever cost concurrently, and the epoch indirection turns
   per-merge winner invalidation from a table reset into one counter
   bump. *)
module Wkey = struct
  type t = int * int * Descriptor.t

  let equal (g1, e1, d1) (g2, e2, d2) =
    g1 = g2 && e1 = e2 && Descriptor.equal d1 d2

  let hash (g, e, d) = ((((g * 31) + e) * 31) + Descriptor.hash d) land max_int
end

module Wtbl = Hashtbl.Make (Wkey)

type wstripe = { w_mutex : Mutex.t; w_tbl : winner Wtbl.t }

let stripe_count = 16 (* power of two: the stripe index is a bit mask *)

type t = {
  parents : (gid, gid) Hashtbl.t;
  groups : (gid, group) Hashtbl.t;  (** canonical gid -> group *)
  mutable next_gid : int;
  mutable next_lexpr : int;
  index : (int * gid) Ktbl.t;  (** dedup: key -> (lexpr id, group) *)
  uses : (gid, (lexpr * gid) list) Hashtbl.t;
      (** canonical-at-registration input gid -> (user lexpr, its owner
          group at registration): the members whose input slots must be
          rewritten when that group dies in a merge *)
  dead_lexprs : (int, unit) Hashtbl.t;
      (** ids of members dropped as duplicates; their stale [uses] entries
          are skipped lazily *)
  tried : (int, unit) Hashtbl.t;
      (** (lexpr id, trans-rule id) packed into one int — see [tried_key] *)
  wstripes : wstripe array;
  stats : Stats.t;
  trace : Trace.t option;
  spans : Span.t option;
}

let create ?(stats = Stats.create ()) ?trace ?spans () =
  {
    parents = Hashtbl.create 64;
    groups = Hashtbl.create 64;
    next_gid = 0;
    next_lexpr = 0;
    index = Ktbl.create 256;
    uses = Hashtbl.create 256;
    dead_lexprs = Hashtbl.create 64;
    tried = Hashtbl.create 256;
    wstripes =
      Array.init stripe_count (fun _ ->
          { w_mutex = Mutex.create (); w_tbl = Wtbl.create 32 });
    stats;
    trace;
    spans;
  }

(* Single Option check on the disabled path; the event is only allocated
   when a sink is attached. *)
let emit t ev =
  match t.trace with None -> () | Some tr -> Trace.emit tr (ev ())

let stats t = t.stats

let rec canonical t g =
  match Hashtbl.find_opt t.parents g with
  | None -> g
  | Some p ->
    let root = canonical t p in
    if root <> p then Hashtbl.replace t.parents g root;
    root

(* No path compression: safe for concurrent readers while the memo is
   frozen (the speculative match phase), where [canonical]'s compression
   writes would race. *)
let rec canonical_ro t g =
  match Hashtbl.find_opt t.parents g with
  | None -> g
  | Some p -> canonical_ro t p

let group t g = Hashtbl.find t.groups (canonical t g)
let group_desc t g = (group t g).desc
let lexprs t g = (group t g).members
let group_count t = Hashtbl.length t.groups

let lexpr_count t =
  Hashtbl.fold (fun _ g n -> n + List.length g.members) t.groups 0

let groups t =
  Hashtbl.fold (fun gid _ acc -> gid :: acc) t.groups [] |> List.sort Int.compare

let is_explored t g = (group t g).explored
let set_explored t g v = (group t g).explored <- v
let is_exploring t g = (group t g).exploring
let set_exploring t g v = (group t g).exploring <- v
let group_version t g = (group t g).version

(* Frozen-memo accessors for the speculative match phase: [g] must already
   be canonical (via [canonical_ro]); no writes, not even path
   compression. *)
let lexprs_ro t g = (Hashtbl.find t.groups g).members
let group_desc_ro t g = (Hashtbl.find t.groups g).desc
let group_version_ro t g = (Hashtbl.find t.groups g).version

let matchable_ro t g =
  let grp = Hashtbl.find t.groups g in
  grp.explored || grp.exploring

let matchable t g =
  let grp = group t g in
  grp.explored || grp.exploring

(* Rule ids are positions in the rule set's transformation list, so they fit
   comfortably in 20 bits; packing avoids allocating a tuple key on every
   "already tried?" probe in the explore loop. *)
let tried_key (le : lexpr) rule = (le.id lsl 20) lor rule
let rule_tried t (le : lexpr) rule = Hashtbl.mem t.tried (tried_key le rule)
let mark_rule_tried t (le : lexpr) rule =
  Hashtbl.replace t.tried (tried_key le rule) ()

let stripe t g = t.wstripes.(g land (stripe_count - 1))

let find_winner t g req =
  let g = canonical t g in
  let grp = Hashtbl.find t.groups g in
  t.stats.Stats.winner_probes <- t.stats.Stats.winner_probes + 1;
  let s = stripe t g in
  Mutex.lock s.w_mutex;
  let r = Wtbl.find_opt s.w_tbl (g, grp.w_epoch, req) in
  Mutex.unlock s.w_mutex;
  (match r with
  | Some _ -> t.stats.Stats.winner_hits <- t.stats.Stats.winner_hits + 1
  | None -> ());
  r

let set_winner t g req w =
  let g = canonical t g in
  let grp = Hashtbl.find t.groups g in
  let s = stripe t g in
  Mutex.lock s.w_mutex;
  Wtbl.replace s.w_tbl (g, grp.w_epoch, req) w;
  Mutex.unlock s.w_mutex

let clear_winners t =
  Hashtbl.iter (fun _ g -> g.w_epoch <- g.w_epoch + 1) t.groups;
  Array.iter
    (fun s ->
      Mutex.lock s.w_mutex;
      Wtbl.reset s.w_tbl;
      Mutex.unlock s.w_mutex)
    t.wstripes

let fresh_group t desc =
  let g =
    {
      g_id = t.next_gid;
      members = [];
      desc;
      explored = false;
      exploring = false;
      version = 0;
      w_epoch = 0;
    }
  in
  t.next_gid <- t.next_gid + 1;
  Hashtbl.replace t.groups g.g_id g;
  t.stats.Stats.groups_created <- t.stats.Stats.groups_created + 1;
  emit t (fun () -> Trace.Group_created { gid = g.g_id });
  g

(* Post-merge repair worklist (FIFO): merges to perform plus members whose
   index entry must be revisited once a queued merge lands. *)
type repair =
  | R_merge of gid * gid
  | R_reindex of lexpr * gid  (** member, owner group (any alias) *)

(* Re-canonicalize one member's input slots in place and refresh its dedup
   index entry.  The old entry is removed *before* the array is mutated —
   the index shares the member's input array as its key, so mutating first
   would leave the binding in a stale bucket.  A collision with a member
   of the same canonical group drops the younger duplicate (the batch
   normalizer kept the oldest occurrence); a collision across groups
   enqueues the merge it proves, plus a re-check of this member for the
   dedup that becomes possible once the merge lands. *)
let reindex t q (le : lexpr) owner =
  let k_old = (le.node, le.arg, le.inputs) in
  (match Ktbl.find_opt t.index k_old with
  | Some (id, _) when id = le.id -> Ktbl.remove t.index k_old
  | Some _ | None -> ());
  let n = Array.length le.inputs in
  for i = 0 to n - 1 do
    let g = le.inputs.(i) in
    let c = canonical t g in
    if c <> g then le.inputs.(i) <- c
  done;
  let owner = canonical t owner in
  let k = (le.node, le.arg, le.inputs) in
  match Ktbl.find_opt t.index k with
  | None -> Ktbl.replace t.index k (le.id, owner)
  | Some (oid, _) when oid = le.id -> Ktbl.replace t.index k (le.id, owner)
  | Some (oid, ogid) ->
    let og = canonical t ogid in
    if og <> owner then begin
      Queue.add (R_merge (owner, og)) q;
      Queue.add (R_reindex (le, owner)) q
    end
    else begin
      let keep, drop = if oid < le.id then (oid, le.id) else (le.id, oid) in
      Hashtbl.replace t.dead_lexprs drop ();
      let grp = Hashtbl.find t.groups owner in
      grp.members <- List.filter (fun (m : lexpr) -> m.id <> drop) grp.members;
      grp.version <- grp.version + 1;
      Ktbl.replace t.index k (keep, owner)
    end

let merge_one t q x y =
  let x = canonical t x in
  let y = canonical t y in
  if x <> y then begin
    let survivor, dead = if x < y then (x, y) else (y, x) in
    let gs = Hashtbl.find t.groups survivor in
    let gd = Hashtbl.find t.groups dead in
    let dead_members = gd.members in
    Hashtbl.remove t.groups dead;
    Hashtbl.replace t.parents dead survivor;
    (* newest-first concatenation: the dead group's members are "newer" than
       the survivor's, matching the pre-merge [lexprs] order. *)
    gs.members <- dead_members @ gs.members;
    gs.explored <- false;
    gs.exploring <- gs.exploring || gd.exploring;
    gs.version <- gs.version + 1;
    gs.w_epoch <- gs.w_epoch + 1;
    t.stats.Stats.groups_merged <- t.stats.Stats.groups_merged + 1;
    emit t (fun () -> Trace.Groups_merged { survivor; dead });
    (* Rewrite the input slots of everything that referenced the dead
       group; their registrations move to the survivor. *)
    (match Hashtbl.find_opt t.uses dead with
    | None -> ()
    | Some users ->
      Hashtbl.remove t.uses dead;
      let surv_users =
        Option.value (Hashtbl.find_opt t.uses survivor) ~default:[]
      in
      Hashtbl.replace t.uses survivor (List.rev_append users surv_users);
      List.iter
        (fun (le, owner) ->
          if not (Hashtbl.mem t.dead_lexprs le.id) then reindex t q le owner)
        users);
    (* The dead group's own members may now duplicate survivors (and their
       index entries carry a stale owner either way). *)
    List.iter
      (fun (le : lexpr) ->
        if not (Hashtbl.mem t.dead_lexprs le.id) then reindex t q le survivor)
      dead_members
  end

(* Merge two groups proven equal; the smaller id survives.  Repair is
   incremental: only the recorded users of the dead group have their input
   slots rewritten, and only the dead group's members are re-checked
   against the dedup index — the old implementation re-canonicalized every
   member of every group and rebuilt the whole index per merge, which
   dominated large searches (84% of fig13 wall time under the span
   profiler).  Newly revealed duplicates cascade through the FIFO until
   the index is congruence-closed. *)
let merge t a b =
  let a = canonical t a in
  let b = canonical t b in
  if a = b then a
  else begin
    let q = Queue.create () in
    Queue.add (R_merge (a, b)) q;
    while not (Queue.is_empty q) do
      match Queue.pop q with
      | R_merge (x, y) -> merge_one t q x y
      | R_reindex (le, owner) ->
        if not (Hashtbl.mem t.dead_lexprs le.id) then reindex t q le owner
    done;
    canonical t a
  end

(* Insert a logical expression, deduplicating globally.  Returns the group
   it lives in and whether it is new. *)
let insert_lexpr t ?into node arg inputs =
  let inputs = Array.map (canonical t) inputs in
  (* [inputs] is already canonical, so the key can share the array instead of
     re-canonicalizing through [key_of]. *)
  let key = (node, arg, inputs) in
  match Ktbl.find_opt t.index key with
  | Some (_, g) ->
    t.stats.Stats.lexpr_duplicates <- t.stats.Stats.lexpr_duplicates + 1;
    let g = canonical t g in
    let g =
      match into with
      | Some target when canonical t target <> g -> merge t target g
      | _ -> g
    in
    (g, false)
  | None ->
    let grp =
      match into with
      | Some target -> group t target
      | None -> fresh_group t arg
    in
    let le = { id = t.next_lexpr; node; arg; inputs } in
    t.next_lexpr <- t.next_lexpr + 1;
    grp.members <- le :: grp.members;
    grp.explored <- false;
    grp.version <- grp.version + 1;
    Ktbl.replace t.index key (le.id, grp.g_id);
    (* Register this member under each distinct input group so a merge
       killing that group knows to rewrite the slot. *)
    let n = Array.length inputs in
    for i = 0 to n - 1 do
      let gi = inputs.(i) in
      let dup = ref false in
      for j = 0 to i - 1 do
        if inputs.(j) = gi then dup := true
      done;
      if not !dup then
        Hashtbl.replace t.uses gi
          ((le, grp.g_id)
          :: Option.value (Hashtbl.find_opt t.uses gi) ~default:[])
    done;
    t.stats.Stats.lexprs_created <- t.stats.Stats.lexprs_created + 1;
    (canonical t grp.g_id, true)

let insert_file t name desc =
  fst (insert_lexpr t (L_file name) desc [||])

let rec insert_expr_rec t (e : Expr.t) =
  match e with
  | Expr.Stored (name, d) -> insert_file t name d
  | Expr.Node (Expr.Operator, name, d, inputs) ->
    let gids = Array.of_list (List.map (insert_expr_rec t) inputs) in
    fst (insert_lexpr t (L_op name) d gids)
  | Expr.Node (Expr.Algorithm, name, _, _) ->
    invalid_arg ("Memo.insert_expr: algorithm node " ^ name)

let insert_expr t ?span_parent e =
  match t.spans with
  | None -> insert_expr_rec t e
  | Some sink ->
    let h = Span.enter sink ?parent:span_parent Span.Memo_insert in
    Fun.protect
      ~finally:(fun () -> Span.exit sink h)
      (fun () -> insert_expr_rec t e)

let rec insert_gtree_rec t ?into tree =
  match tree with
  | Gleaf g -> (canonical t g, false)
  | Gnode (name, desc, subs) ->
    let fresh = ref false in
    let gids =
      Array.of_list
        (List.map
           (fun sub ->
             let g, f = insert_gtree_rec t sub in
             if f then fresh := true;
             g)
           subs)
    in
    let g, f = insert_lexpr t ?into (L_op name) desc gids in
    (g, f || !fresh)

let insert_gtree t ?into ?span_parent tree =
  match t.spans with
  | None -> insert_gtree_rec t ?into tree
  | Some sink ->
    let h = Span.enter sink ?parent:span_parent Span.Memo_insert in
    Fun.protect
      ~finally:(fun () -> Span.exit sink h)
      (fun () -> insert_gtree_rec t ?into tree)

let spans t = t.spans

let pp_lnode ppf = function
  | L_op name -> Format.pp_print_string ppf name
  | L_file name -> Format.fprintf ppf "file:%s" name

let pp ppf t =
  Format.fprintf ppf "@[<v>memo: %d groups, %d lexprs" (group_count t)
    (lexpr_count t);
  List.iter
    (fun gid ->
      let g = Hashtbl.find t.groups gid in
      Format.fprintf ppf "@,@[<v 2>group %d%s:" gid
        (if g.explored then " (explored)" else "");
      List.iter
        (fun le ->
          Format.fprintf ppf "@,%a(%s)" pp_lnode le.node
            (String.concat ", "
               (List.map string_of_int (Array.to_list le.inputs))))
        g.members;
      Format.fprintf ppf "@]")
    (groups t);
  Format.fprintf ppf "@]"
