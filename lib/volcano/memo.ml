module Descriptor = Prairie.Descriptor
module Expr = Prairie.Expr
module Trace = Prairie_obs.Trace

type gid = int

type lnode =
  | L_op of string
  | L_file of string

type lexpr = {
  id : int;
  node : lnode;
  arg : Descriptor.t;
  inputs : gid array;
}

type gtree =
  | Gleaf of gid
  | Gnode of string * Descriptor.t * gtree list

type winner = {
  plan : Plan.t option;
  cost : float;
  searched_limit : float;
}

type group = {
  g_id : gid;
  mutable members : lexpr list;
  mutable desc : Descriptor.t;
  mutable explored : bool;
  mutable exploring : bool;
  mutable winners : (Descriptor.t * winner) list;
}

module Key = struct
  type t = lnode * Descriptor.t * gid array

  let equal (n1, d1, i1) (n2, d2, i2) =
    n1 = n2
    && Array.length i1 = Array.length i2
    && Array.for_all2 Int.equal i1 i2
    && Descriptor.equal d1 d2

  let hash (n, d, i) = Hashtbl.hash (n, Descriptor.hash d, Array.to_list i)
end

module Ktbl = Hashtbl.Make (Key)

type t = {
  parents : (gid, gid) Hashtbl.t;
  groups : (gid, group) Hashtbl.t;  (** canonical gid -> group *)
  mutable next_gid : int;
  mutable next_lexpr : int;
  index : (int * gid) Ktbl.t;  (** dedup: key -> (lexpr id, group) *)
  tried : (int * string, unit) Hashtbl.t;
  stats : Stats.t;
  trace : Trace.t option;
}

let create ?(stats = Stats.create ()) ?trace () =
  {
    parents = Hashtbl.create 64;
    groups = Hashtbl.create 64;
    next_gid = 0;
    next_lexpr = 0;
    index = Ktbl.create 256;
    tried = Hashtbl.create 256;
    stats;
    trace;
  }

(* Single Option check on the disabled path; the event is only allocated
   when a sink is attached. *)
let emit t ev =
  match t.trace with None -> () | Some tr -> Trace.emit tr (ev ())

let stats t = t.stats

let rec canonical t g =
  match Hashtbl.find_opt t.parents g with
  | None -> g
  | Some p ->
    let root = canonical t p in
    if root <> p then Hashtbl.replace t.parents g root;
    root

let group t g = Hashtbl.find t.groups (canonical t g)
let group_desc t g = (group t g).desc
let lexprs t g = List.rev (group t g).members
let group_count t = Hashtbl.length t.groups

let lexpr_count t =
  Hashtbl.fold (fun _ g n -> n + List.length g.members) t.groups 0

let groups t =
  Hashtbl.fold (fun gid _ acc -> gid :: acc) t.groups [] |> List.sort Int.compare

let is_explored t g = (group t g).explored
let set_explored t g v = (group t g).explored <- v
let is_exploring t g = (group t g).exploring
let set_exploring t g v = (group t g).exploring <- v
let rule_tried t (le : lexpr) rule = Hashtbl.mem t.tried (le.id, rule)
let mark_rule_tried t (le : lexpr) rule = Hashtbl.replace t.tried (le.id, rule) ()

let find_winner t g req =
  let grp = group t g in
  List.find_map
    (fun (r, w) -> if Descriptor.equal r req then Some w else None)
    grp.winners

let set_winner t g req w =
  let grp = group t g in
  grp.winners <-
    (req, w)
    :: List.filter (fun (r, _) -> not (Descriptor.equal r req)) grp.winners

let clear_winners t =
  Hashtbl.iter (fun _ g -> g.winners <- []) t.groups

let fresh_group t desc =
  let g =
    {
      g_id = t.next_gid;
      members = [];
      desc;
      explored = false;
      exploring = false;
      winners = [];
    }
  in
  t.next_gid <- t.next_gid + 1;
  Hashtbl.replace t.groups g.g_id g;
  t.stats.Stats.groups_created <- t.stats.Stats.groups_created + 1;
  emit t (fun () -> Trace.Group_created { gid = g.g_id });
  g

let key_of t node arg inputs =
  (node, arg, Array.map (canonical t) inputs)

(* Merge two groups proven equal; the smaller id survives.  Members whose
   inputs referenced the dead group are canonicalized lazily by
   [normalize]. *)
let rec merge t a b =
  let a = canonical t a and b = canonical t b in
  if a = b then a
  else begin
    let survivor, dead = if a < b then (a, b) else (b, a) in
    let gs = Hashtbl.find t.groups survivor in
    let gd = Hashtbl.find t.groups dead in
    Hashtbl.remove t.groups dead;
    Hashtbl.replace t.parents dead survivor;
    gs.members <- gs.members @ gd.members;
    gs.explored <- false;
    gs.exploring <- gs.exploring || gd.exploring;
    gs.winners <- [];
    t.stats.Stats.groups_merged <- t.stats.Stats.groups_merged + 1;
    emit t (fun () -> Trace.Groups_merged { survivor; dead });
    normalize t;
    canonical t survivor
  end

(* After a merge, re-canonicalize every member's inputs and rebuild the
   dedup index; newly-revealed duplicates cascade into further merges. *)
and normalize t =
  Ktbl.clear t.index;
  let pending = ref None in
  Hashtbl.iter
    (fun gid g ->
      g.members <-
        List.map
          (fun le -> { le with inputs = Array.map (canonical t) le.inputs })
          g.members;
      (* drop duplicates within the group *)
      let seen = Ktbl.create 8 in
      g.members <-
        List.filter
          (fun le ->
            let k = (le.node, le.arg, le.inputs) in
            if Ktbl.mem seen k then false
            else begin
              Ktbl.replace seen k ();
              true
            end)
          g.members;
      List.iter
        (fun le ->
          let k = (le.node, le.arg, le.inputs) in
          match Ktbl.find_opt t.index k with
          | None -> Ktbl.replace t.index k (le.id, gid)
          | Some (_, gid') when gid' <> gid ->
            if !pending = None then pending := Some (gid, gid')
          | Some _ -> ())
        g.members)
    t.groups;
  match !pending with
  | Some (x, y) -> ignore (merge t x y)
  | None -> ()

(* Insert a logical expression, deduplicating globally.  Returns the group
   it lives in and whether it is new. *)
let insert_lexpr t ?into node arg inputs =
  let inputs = Array.map (canonical t) inputs in
  let key = key_of t node arg inputs in
  match Ktbl.find_opt t.index key with
  | Some (_, g) ->
    t.stats.Stats.lexpr_duplicates <- t.stats.Stats.lexpr_duplicates + 1;
    let g = canonical t g in
    let g =
      match into with
      | Some target when canonical t target <> g -> merge t target g
      | _ -> g
    in
    (g, false)
  | None ->
    let grp =
      match into with
      | Some target -> group t target
      | None -> fresh_group t arg
    in
    let le = { id = t.next_lexpr; node; arg; inputs } in
    t.next_lexpr <- t.next_lexpr + 1;
    grp.members <- grp.members @ [ le ];
    grp.explored <- false;
    Ktbl.replace t.index key (le.id, grp.g_id);
    t.stats.Stats.lexprs_created <- t.stats.Stats.lexprs_created + 1;
    (canonical t grp.g_id, true)

let insert_file t name desc =
  fst (insert_lexpr t (L_file name) desc [||])

let rec insert_expr t (e : Expr.t) =
  match e with
  | Expr.Stored (name, d) -> insert_file t name d
  | Expr.Node (Expr.Operator, name, d, inputs) ->
    let gids = Array.of_list (List.map (insert_expr t) inputs) in
    fst (insert_lexpr t (L_op name) d gids)
  | Expr.Node (Expr.Algorithm, name, _, _) ->
    invalid_arg ("Memo.insert_expr: algorithm node " ^ name)

let rec insert_gtree t ?into tree =
  match tree with
  | Gleaf g -> (canonical t g, false)
  | Gnode (name, desc, subs) ->
    let fresh = ref false in
    let gids =
      Array.of_list
        (List.map
           (fun sub ->
             let g, f = insert_gtree t sub in
             if f then fresh := true;
             g)
           subs)
    in
    let g, f = insert_lexpr t ?into (L_op name) desc gids in
    (g, f || !fresh)

let pp_lnode ppf = function
  | L_op name -> Format.pp_print_string ppf name
  | L_file name -> Format.fprintf ppf "file:%s" name

let pp ppf t =
  Format.fprintf ppf "@[<v>memo: %d groups, %d lexprs" (group_count t)
    (lexpr_count t);
  List.iter
    (fun gid ->
      let g = Hashtbl.find t.groups gid in
      Format.fprintf ppf "@,@[<v 2>group %d%s:" gid
        (if g.explored then " (explored)" else "");
      List.iter
        (fun le ->
          Format.fprintf ppf "@,%a(%s)" pp_lnode le.node
            (String.concat ", "
               (List.map string_of_int (Array.to_list le.inputs))))
        (List.rev g.members);
      Format.fprintf ppf "@]")
    (groups t);
  Format.fprintf ppf "@]"
