(** The memo: equivalence classes of logical expressions.

    Volcano's search-space representation.  A {e group} (equivalence class)
    collects logical expressions that produce the same stream; a logical
    expression ({e lexpr}) is an operator applied to input groups, or a
    stored file.  Duplicate logical expressions are detected globally; when
    a duplicate is found while inserting into a different group, the two
    groups are proven equal and merged (union–find).

    The number of live groups after optimization is the "number of
    equivalence classes" reported in the paper's Figure 14. *)

type gid = int
(** Group identifier.  Always pass through {!canonical} after merges. *)

type lnode =
  | L_op of string  (** abstract operator *)
  | L_file of string  (** stored file leaf *)

type lexpr = {
  id : int;  (** unique per memo *)
  node : lnode;
  arg : Prairie.Descriptor.t;  (** the operator's descriptor *)
  inputs : gid array;
}

(** Trees over groups: the shape a transformation-rule RHS instantiates
    into before insertion. *)
type gtree =
  | Gleaf of gid
  | Gnode of string * Prairie.Descriptor.t * gtree list

type t

val create :
  ?stats:Stats.t ->
  ?trace:Prairie_obs.Trace.t ->
  ?spans:Prairie_obs.Span.t ->
  unit ->
  t
(** [trace] receives [Group_created] / [Groups_merged] events; [spans]
    receives [Memo_insert] timing spans around tree insertions.  When
    absent (the default) the only per-event cost is one [Option]
    check. *)

val stats : t -> Stats.t

val spans : t -> Prairie_obs.Span.t option

val canonical : t -> gid -> gid

val canonical_ro : t -> gid -> gid
(** [canonical] without union–find path compression: performs no writes at
    all, so concurrent calls from several domains are safe while the memo
    is frozen (nobody inserting or merging).  The speculative match phase
    of the parallel explorer runs entirely on this and the other [_ro]
    accessors below. *)

val group_version : t -> gid -> int
(** Membership version of the (canonical) group: bumped on member
    insertion, merge splice and duplicate removal.  Read-set entry for
    speculative matching — if a group's id and version both still match at
    commit time, its member list is unchanged. *)

val group_desc : t -> gid -> Prairie.Descriptor.t
(** Logical annotations shared by the group (attributes, cardinality, ...):
    what a stream variable's descriptor [Di] binds to. *)

val lexprs : t -> gid -> lexpr list
(** Current members of the group, newest first.  O(1): returns the stored
    member list without copying. *)

(** {1 Frozen-memo accessors}

    Read-only variants for the parallel explorer's match phase: the
    argument must already be canonical (via {!canonical_ro}), and the memo
    must be frozen for the duration — under that protocol they are safe to
    call from any number of domains at once. *)

val lexprs_ro : t -> gid -> lexpr list

val group_desc_ro : t -> gid -> Prairie.Descriptor.t

val group_version_ro : t -> gid -> int

val matchable_ro : t -> gid -> bool
(** Is the (canonical) group explored or currently being explored — i.e.
    would the sequential engine match against its current members without
    first mutating the memo?  Speculation must abort when this is false. *)

val matchable : t -> gid -> bool
(** Canonicalizing variant of {!matchable_ro}, for commit-time
    revalidation on the orchestrating domain. *)

val insert_file : t -> string -> Prairie.Descriptor.t -> gid
(** Group holding a stored-file leaf (idempotent per file name+descriptor). *)

val insert_expr : t -> ?span_parent:Prairie_obs.Span.handle -> Prairie.Expr.t -> gid
(** Insert an initial operator tree bottom-up; group descriptors are taken
    from node descriptors.  [span_parent] nests the [Memo_insert] span
    (when a sink is attached) under the caller's span.
    @raise Invalid_argument on algorithm nodes. *)

val insert_gtree :
  t -> ?into:gid -> ?span_parent:Prairie_obs.Span.handle -> gtree -> gid * bool
(** Insert a rule-output tree.  [into] forces the root into an existing
    group (merging groups if the root lexpr already lives elsewhere).
    Returns the root's group and whether any {e new} lexpr was created. *)

val group_count : t -> int
(** Number of live (canonical) groups — Figure 14's metric. *)

val lexpr_count : t -> int
(** Number of distinct logical expressions in the memo. *)

val groups : t -> gid list
(** All live group ids. *)

(** {1 Per-group search bookkeeping} *)

val is_explored : t -> gid -> bool
val set_explored : t -> gid -> bool -> unit
val is_exploring : t -> gid -> bool
val set_exploring : t -> gid -> bool -> unit

val rule_tried : t -> lexpr -> int -> bool
(** Has the (lexpr, trans-rule) pair already been processed?  Rules are
    identified by a small integer id — their position in the rule set's
    [rs_trans] list (assigned by {!Search.create}) — so the guard probe
    hashes two ints instead of a rule-name string. *)

val mark_rule_tried : t -> lexpr -> int -> unit

(** Winners of [find_best_plan] memoization: keyed by required physical
    properties. *)

type winner = {
  plan : Plan.t option;  (** [None]: searched and failed *)
  cost : float;  (** plan cost, or infinity *)
  searched_limit : float;  (** the cost limit the search ran under *)
}

val find_winner : t -> gid -> Prairie.Descriptor.t -> winner option
(** O(1) probe of the winner store — lock-striped by group id and keyed by
    (group, epoch, required descriptor), so probes from concurrent domains
    are sound and a merge invalidates a group's winners by bumping its
    epoch instead of resetting a table.  Counts into
    [Stats.winner_probes]/[Stats.winner_hits]. *)

val set_winner : t -> gid -> Prairie.Descriptor.t -> winner -> unit
val clear_winners : t -> unit

val pp : Format.formatter -> t -> unit
