(* A tiny bulk-synchronous worker team for the parallel explorer.

   [run t f n] executes [f i] for every [i] in [0, n) across the spawned
   domains plus the calling thread, returning only when every index has
   completed — a full barrier.  Indices are claimed one at a time through
   an atomic counter, so load balances even when task costs are skewed.

   The orchestrating thread owns the team: [run] calls never overlap (the
   explorer's commit phase runs strictly between batches), which is what
   makes the single shared batch slot sound.  Workers park on a condition
   variable between batches instead of spinning — on machines with fewer
   cores than domains, spinning would starve the orchestrator. *)

type t = {
  size : int;
  m : Mutex.t;
  work : Condition.t;  (** new generation posted, or shutdown *)
  finished : Condition.t;  (** [busy] reached zero *)
  mutable batch : (int -> unit) option;
  mutable n : int;
  next : int Atomic.t;
  mutable busy : int;  (** spawned workers still inside the current batch *)
  mutable generation : int;
  mutable stop : bool;
  mutable domains : unit Domain.t list;
}

(* Task functions are speculative by contract: an exception here means the
   speculation is discarded and the orchestrator replays the task inline,
   where a real error re-raises deterministically.  Letting it escape the
   worker instead would skip the [busy] decrement and deadlock the
   barrier. *)
let claim_all t f n =
  let rec go () =
    let i = Atomic.fetch_and_add t.next 1 in
    if i < n then begin
      (try f i with _ -> ());
      go ()
    end
  in
  go ()

let worker t () =
  let seen = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock t.m;
    while (not t.stop) && t.generation = !seen do
      Condition.wait t.work t.m
    done;
    if t.stop then begin
      Mutex.unlock t.m;
      running := false
    end
    else begin
      seen := t.generation;
      let f = Option.get t.batch in
      let n = t.n in
      Mutex.unlock t.m;
      claim_all t f n;
      Mutex.lock t.m;
      t.busy <- t.busy - 1;
      if t.busy = 0 then Condition.broadcast t.finished;
      Mutex.unlock t.m
    end
  done

let create ~jobs =
  let size = max 1 jobs in
  let t =
    {
      size;
      m = Mutex.create ();
      work = Condition.create ();
      finished = Condition.create ();
      batch = None;
      n = 0;
      next = Atomic.make 0;
      busy = 0;
      generation = 0;
      stop = false;
      domains = [];
    }
  in
  t.domains <- List.init (size - 1) (fun _ -> Domain.spawn (worker t));
  t

let size t = t.size

let run t f n =
  if n > 0 then begin
    Mutex.lock t.m;
    t.batch <- Some f;
    t.n <- n;
    Atomic.set t.next 0;
    t.busy <- t.size - 1;
    t.generation <- t.generation + 1;
    Condition.broadcast t.work;
    Mutex.unlock t.m;
    claim_all t f n;
    Mutex.lock t.m;
    while t.busy > 0 do
      Condition.wait t.finished t.m
    done;
    t.batch <- None;
    Mutex.unlock t.m
  end

let shutdown t =
  Mutex.lock t.m;
  t.stop <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.m;
  List.iter Domain.join t.domains;
  t.domains <- []
