module Descriptor = Prairie.Descriptor
module Pattern = Prairie.Pattern
module Trace = Prairie_obs.Trace
module Span = Prairie_obs.Span

(* tracing: enable with Logs.Src.set_level Search.log_src (Some Debug) *)
let log_src = Logs.Src.create "prairie.search" ~doc:"Volcano search tracing"

module Log = (val Logs.src_log log_src : Logs.LOG)

type exploration = [ `Worklist | `Rescan ]

type t = {
  memo : Memo.t;
  rules : Rule.ruleset;
  trans_rules : (int * Rule.trans_rule) list;
      (** [rs_trans] paired with its small integer rule ids (list position),
          the key space of the memo's [tried] table *)
  use_match_index : bool;
      (** consult [rs_match_index] so each lexpr only tries rules whose
          LHS root can match it; the skipped matches are exactly those
          that would return no bindings, so results are byte-identical *)
  restrict_cache : Descriptor.t Descriptor.Tbl.t;
      (** memoized [Rule.restrict_physical] — the projection runs once per
          distinct descriptor instead of once per optimize call *)
  st : Stats.t;
  pruning : bool;
  group_budget : int option;
  exploration : exploration;
  jobs : int;
  mutable team : Team.t option;
      (** worker team for speculative matching; alive only inside a
          top-level optimize/explore entry when [jobs > 1] *)
  mutable budget_hit : bool;
  trace : Trace.t option;
  spans : Span.t option;
}

(* [PRAIRIE_SEARCH_JOBS] sets the default so an existing harness (the
   whole test suite, say) can be re-run multi-domain without threading a
   parameter through every call site. *)
let default_jobs () =
  match Sys.getenv_opt "PRAIRIE_SEARCH_JOBS" with
  | None -> 1
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> n
    | Some _ | None -> 1)

let create ?(pruning = true) ?group_budget ?(exploration = `Worklist)
    ?(match_index = true) ?jobs ?trace ?spans rules =
  let st = Stats.create () in
  let jobs =
    match jobs with Some j -> max 1 j | None -> default_jobs ()
  in
  {
    memo = Memo.create ~stats:st ?trace ?spans ();
    rules;
    trans_rules = List.mapi (fun i tr -> (i, tr)) rules.Rule.rs_trans;
    use_match_index = match_index;
    restrict_cache = Descriptor.Tbl.create 64;
    st;
    pruning;
    group_budget;
    exploration;
    jobs;
    team = None;
    budget_hit = false;
    trace;
    spans;
  }

(* Single Option check when no sink is attached; events are allocated only
   inside the [Some] branch. *)
let emit ctx ev =
  match ctx.trace with None -> () | Some tr -> Trace.emit tr (ev ())

(* Same discipline for spans: [Span.enter_opt]/[Span.exit_opt] are one
   Option check each on the disabled path.  Parent handles are threaded
   explicitly through the mutual recursion below — never stored in the
   context — so attribution stays correct if exploration ever runs on
   several domains at once (each with its own sink). *)

let budget_exhausted t =
  match t.group_budget with
  | None -> false
  | Some budget ->
    let hit = Memo.group_count t.memo >= budget in
    if hit && not t.budget_hit then begin
      t.budget_hit <- true;
      emit t (fun () -> Trace.Budget_hit { groups = Memo.group_count t.memo });
      Log.debug (fun m -> m "group budget of %d reached; exploration capped" budget)
    end;
    hit

let budget_was_hit t = t.budget_hit

let ruleset t = t.rules
let memo t = t.memo
let stats t = t.st
let spans t = t.spans
let jobs t = t.jobs
let group_count t = Memo.group_count t.memo

let restrict_req ctx d =
  if Descriptor.is_empty d then d
  else
    match Descriptor.Tbl.find_opt ctx.restrict_cache d with
    | Some r -> r
    | None ->
      let r = Rule.restrict_physical ctx.rules d in
      Descriptor.Tbl.replace ctx.restrict_cache d r;
      r

(* Matching environments: stream variables bind groups; descriptor
   variables bind descriptors (group descriptors for [Di], lexpr arguments
   for operator descriptor variables). *)
type menv = {
  streams : (int * Memo.gid) list;
  descs : Rule.denv;
}

let empty_menv = { streams = []; descs = [] }

(* The trans rules worth trying against a lexpr.  The match index drops
   only rules whose root operator differs from the lexpr's — matches that
   would return no bindings and record nothing — so both settings apply
   identical rules in identical order; only the tried-table bookkeeping
   for provably-failing rules is saved. *)
let candidates ctx (le : Memo.lexpr) =
  if not ctx.use_match_index then ctx.trans_rules
  else
    match le.Memo.node with
    | Memo.L_op op -> Rule.trans_rules_for ctx.rules (Some op)
    | Memo.L_file _ -> Rule.trans_rules_for ctx.rules None

let gtree_of_tmpl (tmpl : Pattern.tmpl) streams descs =
  let rec go = function
    | Pattern.Tvar (i, _) -> (
      match List.assoc_opt i streams with
      | Some g -> Memo.Gleaf g
      | None -> invalid_arg "trans rule RHS uses unbound stream variable")
    | Pattern.Tnode (name, dvar, subs) ->
      Memo.Gnode (name, Rule.denv_get descs dvar, List.map go subs)
  in
  go tmpl

(* ------------------------------------------------------------------ *)
(* Speculative matching (parallel explorer)                            *)
(* ------------------------------------------------------------------ *)

(* The parallel explorer splits each worklist round into a speculative
   match phase and a sequential commit.  During the match phase the memo
   is frozen — no thread inserts, merges, explores or even path-compresses
   — and worker domains run a read-only clone of the matcher over the
   round's (member, rule) tasks, recording a read set:

   - every canonicalization performed, as a (raw, canonical) pair, and
   - every group whose member list was enumerated, as a
     (canonical, version) pair.

   Speculation aborts (raising {!Spec_abort}) when a sub-pattern needs a
   group the sequential engine would have *explored* first — exploration
   mutates, which the frozen phase cannot do.

   The commit phase then replays tasks in exactly the sequential engine's
   order.  A task whose read set still validates — every recorded
   canonicalization unchanged, every enumerated group's version unchanged
   — is committed from its speculative bindings; any other task falls back
   to the inline sequential path on the spot.  In-place input
   canonicalization performed by memo repair never invalidates a read set:
   a slot is only ever rewritten to the canonical id of its old value, and
   the matcher only consumes inputs through [canonical].  Because rule
   conditions and actions are pure and run at commit time either way, the
   committed memo — and therefore every cost and plan downstream — is
   byte-identical to the sequential explorer's at any job count. *)

exception Spec_abort

type spec_reads = {
  mutable canon_reads : (Memo.gid * Memo.gid) list;
  mutable member_reads : (Memo.gid * int) list;
}

type spec_result =
  | Spec_pending  (** not speculated (thin round, or worker exception) *)
  | Spec_envs of menv list * spec_reads

type task = {
  t_le : Memo.lexpr;
  t_rule : int * Rule.trans_rule;
  mutable t_spec : spec_result;
}

let rec spec_match_lexpr ctx reads (pat : Pattern.t) (le : Memo.lexpr) env :
    menv list =
  match (pat, le.Memo.node) with
  | Pattern.Pop (name, dvar, subs), Memo.L_op n
    when String.equal n name && Array.length le.Memo.inputs = List.length subs
    ->
    let env = { env with descs = Rule.denv_set env.descs dvar le.Memo.arg } in
    let rec fold_inputs i pats envs =
      match pats with
      | [] -> envs
      | p :: rest ->
        let g = le.Memo.inputs.(i) in
        let envs' =
          List.concat_map (fun e -> spec_match_sub ctx reads p g e) envs
        in
        fold_inputs (i + 1) rest envs'
    in
    fold_inputs 0 subs [ env ]
  | Pattern.Pop _, (Memo.L_op _ | Memo.L_file _) -> []
  | Pattern.Pvar _, _ ->
    invalid_arg "trans rule LHS must be rooted at an operator"

and spec_match_sub ctx reads (pat : Pattern.t) g env : menv list =
  let c = Memo.canonical_ro ctx.memo g in
  reads.canon_reads <- (g, c) :: reads.canon_reads;
  match pat with
  | Pattern.Pvar i ->
    let desc = Memo.group_desc_ro ctx.memo c in
    [
      {
        streams = (i, c) :: env.streams;
        descs = Rule.denv_set env.descs (Pattern.stream_desc_name i) desc;
      };
    ]
  | Pattern.Pop _ ->
    if not (Memo.matchable_ro ctx.memo c) then raise_notrace Spec_abort;
    reads.member_reads <-
      (c, Memo.group_version_ro ctx.memo c) :: reads.member_reads;
    List.concat_map
      (fun le -> spec_match_lexpr ctx reads pat le env)
      (Memo.lexprs_ro ctx.memo c)

let speculate ctx task =
  let reads = { canon_reads = []; member_reads = [] } in
  let _, tr = task.t_rule in
  match spec_match_lexpr ctx reads tr.Rule.tr_lhs task.t_le empty_menv with
  | envs -> task.t_spec <- Spec_envs (envs, reads)
  | exception _ -> task.t_spec <- Spec_pending

(* Commit-time revalidation, on the orchestrating domain (canonicalizing
   reads are fine again here). *)
let spec_valid ctx reads =
  List.for_all
    (fun (raw, c) -> Memo.canonical ctx.memo raw = c)
    reads.canon_reads
  && List.for_all
       (fun (c, v) ->
         Memo.matchable ctx.memo c && Memo.group_version ctx.memo c = v)
       reads.member_reads

(* Below a handful of tasks the barrier costs more than the matching; the
   tasks are left [Spec_pending] and commit inline, which is the identical
   sequential path. *)
let min_spec_tasks = 8

(* ------------------------------------------------------------------ *)
(* Exploration                                                         *)
(* ------------------------------------------------------------------ *)

(* Exploration generates all members of a group by applying trans rules to
   fixpoint; multi-level patterns recursively explore input groups.

   The fixpoint is driven as a worklist: each round snapshots the group's
   member list and processes only the members not seen by a previous round,
   so a round costs O(new members × rules) instead of O(all members ×
   rules).  Merges fold the dead group's members into the snapshot of the
   next round.  Because the per-(lexpr, rule) [rule_tried] guard is what
   actually gates rule application — and it is maintained identically — the
   worklist applies exactly the same rules in exactly the same order as the
   legacy whole-group rescan ([`Rescan], kept for differential testing).

   With [jobs > 1] each round's matching runs speculatively on the worker
   team and is committed sequentially in the same order — see the
   speculative-matching comment above for why results are byte-identical. *)
let rec explore ctx parent gid =
  let g = Memo.canonical ctx.memo gid in
  if Memo.is_explored ctx.memo g || Memo.is_exploring ctx.memo g then ()
  else begin
    let sp = Span.enter_opt ctx.spans ~parent Span.Explore in
    Memo.set_exploring ctx.memo g true;
    let processed =
      match ctx.exploration with
      | `Worklist -> Some (Hashtbl.create 32)
      | `Rescan -> None
    in
    let changed = ref true in
    while !changed && not (budget_exhausted ctx) do
      changed := false;
      let merges_before = ctx.st.Stats.groups_merged in
      let members =
        match processed with
        | None -> Memo.lexprs ctx.memo g
        | Some seen ->
          List.filter
            (fun (le : Memo.lexpr) -> not (Hashtbl.mem seen le.Memo.id))
            (Memo.lexprs ctx.memo g)
      in
      let mark le =
        match processed with
        | Some seen -> Hashtbl.replace seen le.Memo.id ()
        | None -> ()
      in
      (match ctx.team with
      | Some team -> parallel_round ctx team sp g members ~mark ~changed
      | None ->
        List.iter
          (fun (le : Memo.lexpr) ->
            mark le;
            apply_trans_rules ctx sp g le ~changed)
          members);
      if ctx.st.Stats.groups_merged > merges_before then changed := true
    done;
    let g = Memo.canonical ctx.memo g in
    Memo.set_exploring ctx.memo g false;
    Memo.set_explored ctx.memo g true;
    Span.exit_opt ctx.spans sp
  end

(* One worklist round under the worker team: build the round's untried
   (member, rule) tasks in sequential order (member-major, rule-minor),
   speculate them in parallel over the frozen memo, then commit in that
   same order. *)
and parallel_round ctx team parent g members ~mark ~changed =
  let per_member =
    List.map
      (fun (le : Memo.lexpr) ->
        let ts =
          List.filter_map
            (fun ((tr_id, _) as r) ->
              if Memo.rule_tried ctx.memo le tr_id then None
              else Some { t_le = le; t_rule = r; t_spec = Spec_pending })
            (candidates ctx le)
        in
        (le, ts))
      members
  in
  let all = Array.of_list (List.concat_map snd per_member) in
  if Array.length all >= min_spec_tasks then
    Team.run team (fun i -> speculate ctx all.(i)) (Array.length all);
  List.iter
    (fun ((le : Memo.lexpr), ts) ->
      mark le;
      List.iter (fun t -> commit_task ctx parent g t ~changed) ts)
    per_member

and commit_task ctx parent g task ~changed =
  let tr_id, tr = task.t_rule in
  let le = task.t_le in
  match task.t_spec with
  | Spec_envs (envs, reads)
    when (not (Memo.rule_tried ctx.memo le tr_id)) && spec_valid ctx reads ->
    Memo.mark_rule_tried ctx.memo le tr_id;
    (* structure-preserving Match span: the matching itself already ran on
       the team, so profiles keep their shape but the time lands in
       [Explore] *)
    let msp = Span.enter_opt ctx.spans ~rule:tr.tr_name ~parent Span.Match in
    Span.exit_opt ctx.spans msp;
    commit_envs ctx parent g tr envs ~changed
  | Spec_envs _ | Spec_pending -> apply_rule ctx parent g le task.t_rule ~changed

and apply_trans_rules ctx parent g le ~changed =
  List.iter (fun r -> apply_rule ctx parent g le r ~changed) (candidates ctx le)

and apply_rule ctx parent g le ((tr_id, tr) : int * Rule.trans_rule) ~changed =
  if not (Memo.rule_tried ctx.memo le tr_id) then begin
    Memo.mark_rule_tried ctx.memo le tr_id;
    let msp = Span.enter_opt ctx.spans ~rule:tr.tr_name ~parent Span.Match in
    let envs = match_lexpr ctx msp tr.tr_lhs le empty_menv in
    Span.exit_opt ctx.spans msp;
    commit_envs ctx parent g tr envs ~changed
  end

and commit_envs ctx parent g (tr : Rule.trans_rule) envs ~changed =
  if envs <> [] then begin
    Stats.record_trans_match ctx.st tr.tr_name;
    emit ctx (fun () ->
        Trace.Trans_matched
          { rule = tr.tr_name; gid = g; bindings = List.length envs })
  end;
  List.iter
    (fun env ->
      match tr.tr_cond env.descs with
      | None ->
        emit ctx (fun () ->
            Trace.Trans_rejected
              { rule = tr.tr_name; gid = g; reason = Trace.Test_failed })
      | Some descs ->
        let asp = Span.enter_opt ctx.spans ~rule:tr.tr_name ~parent Span.Apply in
        let descs = tr.tr_appl descs in
        Stats.record_trans_applied ctx.st tr.tr_name;
        emit ctx (fun () -> Trace.Trans_applied { rule = tr.tr_name; gid = g });
        Log.debug (fun m -> m "group %d: trans rule %s fired" g tr.tr_name);
        ctx.st.Stats.trans_applications <- ctx.st.Stats.trans_applications + 1;
        let gtree = gtree_of_tmpl tr.tr_rhs env.streams descs in
        let target = Memo.canonical ctx.memo g in
        let _, fresh =
          Memo.insert_gtree ctx.memo ~into:target ?span_parent:asp gtree
        in
        if fresh then changed := true;
        Span.exit_opt ctx.spans asp)
    envs

(* All bindings of [pat] against a specific lexpr. *)
and match_lexpr ctx parent (pat : Pattern.t) (le : Memo.lexpr) env : menv list =
  match (pat, le.Memo.node) with
  | Pattern.Pop (name, dvar, subs), Memo.L_op n
    when String.equal n name && Array.length le.Memo.inputs = List.length subs
    ->
    let env = { env with descs = Rule.denv_set env.descs dvar le.Memo.arg } in
    let rec fold_inputs i pats envs =
      match pats with
      | [] -> envs
      | p :: rest ->
        let g = le.Memo.inputs.(i) in
        let envs' =
          List.concat_map (fun e -> match_sub ctx parent p g e) envs
        in
        fold_inputs (i + 1) rest envs'
    in
    fold_inputs 0 subs [ env ]
  | Pattern.Pop _, (Memo.L_op _ | Memo.L_file _) -> []
  | Pattern.Pvar _, _ ->
    invalid_arg "trans rule LHS must be rooted at an operator"

(* All bindings of [pat] against any member of group [g]. *)
and match_sub ctx parent (pat : Pattern.t) g env : menv list =
  let g = Memo.canonical ctx.memo g in
  match pat with
  | Pattern.Pvar i ->
    let desc = Memo.group_desc ctx.memo g in
    [
      {
        streams = (i, g) :: env.streams;
        descs = Rule.denv_set env.descs (Pattern.stream_desc_name i) desc;
      };
    ]
  | Pattern.Pop _ ->
    explore ctx parent g;
    let g = Memo.canonical ctx.memo g in
    List.concat_map
      (fun le -> match_lexpr ctx parent pat le env)
      (Memo.lexprs ctx.memo g)

(* Top-level entries create the worker team on demand and tear it down on
   exit; nested explores reuse the live team for their own rounds (the
   team is only ever driven from the single orchestrating thread, and
   batches never overlap — commits run strictly between them). *)
let with_team ctx f =
  if ctx.jobs <= 1 || ctx.team <> None then f ()
  else begin
    let team = Team.create ~jobs:ctx.jobs in
    ctx.team <- Some team;
    Fun.protect
      ~finally:(fun () ->
        ctx.team <- None;
        Team.shutdown team)
      f
  end

let explore_group ctx ?span gid = with_team ctx (fun () -> explore ctx span gid)
let infinity_limit = infinity

(* FindBestPlan *)
let rec optimize_group_at ctx gid ~req ~limit ~parent : Plan.t option =
  let req = restrict_req ctx req in
  let g = Memo.canonical ctx.memo gid in
  ctx.st.Stats.optimize_calls <- ctx.st.Stats.optimize_calls + 1;
  match Memo.find_winner ctx.memo g req with
  | Some { plan = Some p; cost; _ } ->
    ctx.st.Stats.memo_hits <- ctx.st.Stats.memo_hits + 1;
    emit ctx (fun () -> Trace.Memo_hit { gid = g });
    if (not ctx.pruning) || cost <= limit then Some p else None
  | Some { plan = None; searched_limit; _ }
    when (not ctx.pruning) || limit <= searched_limit ->
    ctx.st.Stats.memo_hits <- ctx.st.Stats.memo_hits + 1;
    emit ctx (fun () -> Trace.Memo_hit { gid = g });
    None
  | Some _ | None -> search_group ctx g ~req ~limit ~parent

and search_group ctx g ~req ~limit ~parent =
  Log.debug (fun m ->
      m "optimize group %d req=%a limit=%.2f" g Descriptor.pp req limit);
  explore ctx parent g;
  let g = Memo.canonical ctx.memo g in
  let best : (Plan.t * float) option ref = ref None in
  let budget () =
    if not ctx.pruning then infinity_limit
    else match !best with None -> limit | Some (_, c) -> Float.min limit c
  in
  let consider plan cost =
    if ctx.rules.Rule.rs_satisfies ~required:req ~actual:(Plan.descriptor plan)
    then
      match !best with
      | Some (_, c) when c <= cost -> ()
      | prev ->
        emit ctx (fun () ->
            Trace.Winner_changed
              {
                gid = g;
                alg =
                  (match plan with
                  | Plan.Alg (a, _, _) -> a
                  | Plan.Leaf (n, _) -> n);
                old_cost = Option.map snd prev;
                new_cost = cost;
              });
        best := Some (plan, cost)
  in
  let members = Memo.lexprs ctx.memo g in
  let files_only =
    List.for_all (fun le -> match le.Memo.node with Memo.L_file _ -> true | Memo.L_op _ -> false) members
  in
  List.iter
    (fun le -> cost_lexpr ctx parent g le ~req ~budget ~consider)
    members;
  (* Enforcers establish required properties on top of a plan for the same
     group optimized under a relaxed requirement.  Stored files are not
     streams; enforcers never apply directly to file groups. *)
  if not files_only then
    List.iter
      (fun (en : Rule.enforcer) ->
        if en.Rule.en_applies ~req then begin
          let relaxed = restrict_req ctx (en.Rule.en_relaxed ~req) in
          if not (Descriptor.equal relaxed req) then begin
            let esp =
              Span.enter_opt ctx.spans ~rule:en.Rule.en_alg ~parent
                Span.Enforcer
            in
            (match
               optimize_group_at ctx g ~req:relaxed ~limit:(budget ())
                 ~parent:esp
             with
            | None -> ()
            | Some sub ->
              let desc =
                en.Rule.en_finalize ~req ~input:(Plan.descriptor sub)
              in
              ctx.st.Stats.enforcer_firings <-
                ctx.st.Stats.enforcer_firings + 1;
              emit ctx (fun () ->
                  Trace.Enforcer_inserted { alg = en.Rule.en_alg; gid = g });
              consider (Plan.Alg (en.Rule.en_alg, desc, [ sub ])) (Descriptor.cost desc));
            Span.exit_opt ctx.spans esp
          end
        end)
      ctx.rules.Rule.rs_enforcers;
  let g = Memo.canonical ctx.memo g in
  (match !best with
  | Some (plan, cost) ->
    Log.debug (fun m -> m "group %d: winner %a cost=%.2f" g Plan.pp plan cost);
    Memo.set_winner ctx.memo g req
      { Memo.plan = Some plan; cost; searched_limit = limit }
  | None ->
    Memo.set_winner ctx.memo g req
      { Memo.plan = None; cost = infinity_limit; searched_limit = limit });
  match !best with
  | Some (plan, cost) when (not ctx.pruning) || cost <= limit -> Some plan
  | Some _ | None -> None

and cost_lexpr ctx parent g le ~req ~budget ~consider =
  match le.Memo.node with
  | Memo.L_file name ->
    (* A stored file delivers its catalog properties at no cost. *)
    consider (Plan.Leaf (name, le.Memo.arg)) (Descriptor.cost le.Memo.arg)
  | Memo.L_op op ->
    List.iter
      (fun (ir : Rule.impl_rule) ->
        if ir.Rule.ir_arity = Array.length le.Memo.inputs then begin
          let csp =
            Span.enter_opt ctx.spans ~rule:ir.Rule.ir_name ~parent Span.Cost
          in
          Stats.record_impl_match ctx.st ir.Rule.ir_name;
          emit ctx (fun () ->
              Trace.Impl_matched { rule = ir.Rule.ir_name; gid = g });
          let input_descs =
            Array.map (Memo.group_desc ctx.memo) le.Memo.inputs
          in
          if not (ir.Rule.ir_cond ~op_arg:le.Memo.arg ~req ~inputs:input_descs)
          then
            emit ctx (fun () ->
                Trace.Impl_rejected
                  {
                    rule = ir.Rule.ir_name;
                    gid = g;
                    reason = Trace.Test_failed;
                  })
          else begin
            Stats.record_impl_applied ctx.st ir.Rule.ir_name;
            emit ctx (fun () ->
                Trace.Impl_applied { rule = ir.Rule.ir_name; gid = g });
            let reqs =
              ir.Rule.ir_input_reqs ~op_arg:le.Memo.arg ~req ~inputs:input_descs
            in
            (* optimize inputs left to right under a shrinking limit *)
            let n = Array.length le.Memo.inputs in
            let plans = Array.make n None in
            let spent = ref 0.0 in
            let ok = ref true in
            let i = ref 0 in
            while !ok && !i < n do
              let sub_limit =
                if ctx.pruning then budget () -. !spent else infinity_limit
              in
              (if ctx.pruning && sub_limit < 0.0 then begin
                 ctx.st.Stats.pruned <- ctx.st.Stats.pruned + 1;
                 emit ctx (fun () ->
                     Trace.Impl_rejected
                       {
                         rule = ir.Rule.ir_name;
                         gid = g;
                         reason = Trace.Pruned sub_limit;
                       });
                 ok := false
               end
               else
                 match
                   optimize_group_at ctx le.Memo.inputs.(!i) ~req:reqs.(!i)
                     ~limit:sub_limit ~parent:csp
                 with
                 | None ->
                   if ctx.pruning then
                     ctx.st.Stats.pruned <- ctx.st.Stats.pruned + 1;
                   emit ctx (fun () ->
                       Trace.Impl_rejected
                         {
                           rule = ir.Rule.ir_name;
                           gid = g;
                           reason =
                             (if ctx.pruning then Trace.Pruned sub_limit
                              else Trace.No_input_plan);
                         });
                   ok := false
                 | Some p ->
                   plans.(!i) <- Some p;
                   spent := !spent +. Plan.cost p);
              incr i
            done;
            if !ok then begin
              let achieved =
                Array.map
                  (function Some p -> Plan.descriptor p | None -> assert false)
                  plans
              in
              let desc =
                ir.Rule.ir_finalize ~op_arg:le.Memo.arg ~req ~inputs:achieved
              in
              ctx.st.Stats.impl_firings <- ctx.st.Stats.impl_firings + 1;
              let children =
                Array.to_list
                  (Array.map (function Some p -> p | None -> assert false) plans)
              in
              consider (Plan.Alg (ir.Rule.ir_alg, desc, children))
                (Descriptor.cost desc)
            end
          end;
          Span.exit_opt ctx.spans csp
        end)
      (Rule.impl_rules_for ctx.rules op)

let optimize_group ctx ?span gid ~req ~limit =
  with_team ctx (fun () -> optimize_group_at ctx gid ~req ~limit ~parent:span)

let optimize ?(required = Descriptor.empty) ctx expr =
  with_team ctx (fun () ->
      let root = Span.enter_opt ctx.spans ~parent:None Span.Optimize in
      let g =
        match root with
        | None -> Memo.insert_expr ctx.memo expr
        | Some h -> Memo.insert_expr ctx.memo ~span_parent:h expr
      in
      let req = restrict_req ctx required in
      let r = optimize_group_at ctx g ~req ~limit:infinity_limit ~parent:root in
      Span.exit_opt ctx.spans root;
      r)
