module Descriptor = Prairie.Descriptor
module Pattern = Prairie.Pattern
module Trace = Prairie_obs.Trace
module Span = Prairie_obs.Span

(* tracing: enable with Logs.Src.set_level Search.log_src (Some Debug) *)
let log_src = Logs.Src.create "prairie.search" ~doc:"Volcano search tracing"

module Log = (val Logs.src_log log_src : Logs.LOG)

type exploration = [ `Worklist | `Rescan ]

type t = {
  memo : Memo.t;
  rules : Rule.ruleset;
  trans_rules : (int * Rule.trans_rule) list;
      (** [rs_trans] paired with its small integer rule ids (list position),
          the key space of the memo's [tried] table *)
  restrict_cache : Descriptor.t Descriptor.Tbl.t;
      (** memoized [Rule.restrict_physical] — the projection runs once per
          distinct descriptor instead of once per optimize call *)
  st : Stats.t;
  pruning : bool;
  group_budget : int option;
  exploration : exploration;
  mutable budget_hit : bool;
  trace : Trace.t option;
  spans : Span.t option;
}

let create ?(pruning = true) ?group_budget ?(exploration = `Worklist) ?trace
    ?spans rules =
  let st = Stats.create () in
  {
    memo = Memo.create ~stats:st ?trace ?spans ();
    rules;
    trans_rules = List.mapi (fun i tr -> (i, tr)) rules.Rule.rs_trans;
    restrict_cache = Descriptor.Tbl.create 64;
    st;
    pruning;
    group_budget;
    exploration;
    budget_hit = false;
    trace;
    spans;
  }

(* Single Option check when no sink is attached; events are allocated only
   inside the [Some] branch. *)
let emit ctx ev =
  match ctx.trace with None -> () | Some tr -> Trace.emit tr (ev ())

(* Same discipline for spans: [Span.enter_opt]/[Span.exit_opt] are one
   Option check each on the disabled path.  Parent handles are threaded
   explicitly through the mutual recursion below — never stored in the
   context — so attribution stays correct if exploration ever runs on
   several domains at once (each with its own sink). *)

let budget_exhausted t =
  match t.group_budget with
  | None -> false
  | Some budget ->
    let hit = Memo.group_count t.memo >= budget in
    if hit && not t.budget_hit then begin
      t.budget_hit <- true;
      emit t (fun () -> Trace.Budget_hit { groups = Memo.group_count t.memo });
      Log.debug (fun m -> m "group budget of %d reached; exploration capped" budget)
    end;
    hit

let budget_was_hit t = t.budget_hit

let ruleset t = t.rules
let memo t = t.memo
let stats t = t.st
let spans t = t.spans
let group_count t = Memo.group_count t.memo

let restrict_req ctx d =
  if Descriptor.is_empty d then d
  else
    match Descriptor.Tbl.find_opt ctx.restrict_cache d with
    | Some r -> r
    | None ->
      let r = Rule.restrict_physical ctx.rules d in
      Descriptor.Tbl.replace ctx.restrict_cache d r;
      r

(* Matching environments: stream variables bind groups; descriptor
   variables bind descriptors (group descriptors for [Di], lexpr arguments
   for operator descriptor variables). *)
type menv = {
  streams : (int * Memo.gid) list;
  descs : Rule.denv;
}

let empty_menv = { streams = []; descs = [] }

let gtree_of_tmpl (tmpl : Pattern.tmpl) streams descs =
  let rec go = function
    | Pattern.Tvar (i, _) -> (
      match List.assoc_opt i streams with
      | Some g -> Memo.Gleaf g
      | None -> invalid_arg "trans rule RHS uses unbound stream variable")
    | Pattern.Tnode (name, dvar, subs) ->
      Memo.Gnode (name, Rule.denv_get descs dvar, List.map go subs)
  in
  go tmpl

(* Exploration generates all members of a group by applying trans rules to
   fixpoint; multi-level patterns recursively explore input groups.

   The fixpoint is driven as a worklist: each round snapshots the group's
   member list and processes only the members not seen by a previous round,
   so a round costs O(new members × rules) instead of O(all members ×
   rules).  Merges fold the dead group's members into the snapshot of the
   next round.  Because the per-(lexpr, rule) [rule_tried] guard is what
   actually gates rule application — and it is maintained identically — the
   worklist applies exactly the same rules in exactly the same order as the
   legacy whole-group rescan ([`Rescan], kept for differential testing). *)
let rec explore ctx parent gid =
  let g = Memo.canonical ctx.memo gid in
  if Memo.is_explored ctx.memo g || Memo.is_exploring ctx.memo g then ()
  else begin
    let sp = Span.enter_opt ctx.spans ~parent Span.Explore in
    Memo.set_exploring ctx.memo g true;
    let processed =
      match ctx.exploration with
      | `Worklist -> Some (Hashtbl.create 32)
      | `Rescan -> None
    in
    let changed = ref true in
    while !changed && not (budget_exhausted ctx) do
      changed := false;
      let merges_before = ctx.st.Stats.groups_merged in
      let members =
        match processed with
        | None -> Memo.lexprs ctx.memo g
        | Some seen ->
          List.filter
            (fun (le : Memo.lexpr) -> not (Hashtbl.mem seen le.Memo.id))
            (Memo.lexprs ctx.memo g)
      in
      List.iter
        (fun (le : Memo.lexpr) ->
          (match processed with
          | Some seen -> Hashtbl.replace seen le.Memo.id ()
          | None -> ());
          apply_trans_rules ctx sp g le ~changed)
        members;
      if ctx.st.Stats.groups_merged > merges_before then changed := true
    done;
    let g = Memo.canonical ctx.memo g in
    Memo.set_exploring ctx.memo g false;
    Memo.set_explored ctx.memo g true;
    Span.exit_opt ctx.spans sp
  end

and apply_trans_rules ctx parent g le ~changed =
  List.iter
    (fun (tr_id, (tr : Rule.trans_rule)) ->
      if not (Memo.rule_tried ctx.memo le tr_id) then begin
        Memo.mark_rule_tried ctx.memo le tr_id;
        let msp =
          Span.enter_opt ctx.spans ~rule:tr.tr_name ~parent Span.Match
        in
        let envs = match_lexpr ctx msp tr.tr_lhs le empty_menv in
        Span.exit_opt ctx.spans msp;
        if envs <> [] then begin
          Stats.record_trans_match ctx.st tr.tr_name;
          emit ctx (fun () ->
              Trace.Trans_matched
                {
                  rule = tr.tr_name;
                  gid = g;
                  bindings = List.length envs;
                })
        end;
        List.iter
          (fun env ->
            match tr.tr_cond env.descs with
            | None ->
              emit ctx (fun () ->
                  Trace.Trans_rejected
                    {
                      rule = tr.tr_name;
                      gid = g;
                      reason = Trace.Test_failed;
                    })
            | Some descs ->
              let asp =
                Span.enter_opt ctx.spans ~rule:tr.tr_name ~parent Span.Apply
              in
              let descs = tr.tr_appl descs in
              Stats.record_trans_applied ctx.st tr.tr_name;
              emit ctx (fun () ->
                  Trace.Trans_applied { rule = tr.tr_name; gid = g });
              Log.debug (fun m ->
                  m "group %d: trans rule %s fired" g tr.tr_name);
              ctx.st.Stats.trans_applications <-
                ctx.st.Stats.trans_applications + 1;
              let gtree = gtree_of_tmpl tr.tr_rhs env.streams descs in
              let target = Memo.canonical ctx.memo g in
              let _, fresh =
                Memo.insert_gtree ctx.memo ~into:target ?span_parent:asp gtree
              in
              if fresh then changed := true;
              Span.exit_opt ctx.spans asp)
          envs
      end)
    ctx.trans_rules

(* All bindings of [pat] against a specific lexpr. *)
and match_lexpr ctx parent (pat : Pattern.t) (le : Memo.lexpr) env : menv list =
  match (pat, le.Memo.node) with
  | Pattern.Pop (name, dvar, subs), Memo.L_op n
    when String.equal n name && Array.length le.Memo.inputs = List.length subs
    ->
    let env = { env with descs = Rule.denv_set env.descs dvar le.Memo.arg } in
    let rec fold_inputs i pats envs =
      match pats with
      | [] -> envs
      | p :: rest ->
        let g = le.Memo.inputs.(i) in
        let envs' =
          List.concat_map (fun e -> match_sub ctx parent p g e) envs
        in
        fold_inputs (i + 1) rest envs'
    in
    fold_inputs 0 subs [ env ]
  | Pattern.Pop _, (Memo.L_op _ | Memo.L_file _) -> []
  | Pattern.Pvar _, _ ->
    invalid_arg "trans rule LHS must be rooted at an operator"

(* All bindings of [pat] against any member of group [g]. *)
and match_sub ctx parent (pat : Pattern.t) g env : menv list =
  let g = Memo.canonical ctx.memo g in
  match pat with
  | Pattern.Pvar i ->
    let desc = Memo.group_desc ctx.memo g in
    [
      {
        streams = (i, g) :: env.streams;
        descs = Rule.denv_set env.descs (Pattern.stream_desc_name i) desc;
      };
    ]
  | Pattern.Pop _ ->
    explore ctx parent g;
    let g = Memo.canonical ctx.memo g in
    List.concat_map
      (fun le -> match_lexpr ctx parent pat le env)
      (Memo.lexprs ctx.memo g)

let explore_group ctx ?span gid = explore ctx span gid
let infinity_limit = infinity

(* FindBestPlan *)
let rec optimize_group_at ctx gid ~req ~limit ~parent : Plan.t option =
  let req = restrict_req ctx req in
  let g = Memo.canonical ctx.memo gid in
  ctx.st.Stats.optimize_calls <- ctx.st.Stats.optimize_calls + 1;
  match Memo.find_winner ctx.memo g req with
  | Some { plan = Some p; cost; _ } ->
    ctx.st.Stats.memo_hits <- ctx.st.Stats.memo_hits + 1;
    emit ctx (fun () -> Trace.Memo_hit { gid = g });
    if (not ctx.pruning) || cost <= limit then Some p else None
  | Some { plan = None; searched_limit; _ }
    when (not ctx.pruning) || limit <= searched_limit ->
    ctx.st.Stats.memo_hits <- ctx.st.Stats.memo_hits + 1;
    emit ctx (fun () -> Trace.Memo_hit { gid = g });
    None
  | Some _ | None -> search_group ctx g ~req ~limit ~parent

and search_group ctx g ~req ~limit ~parent =
  Log.debug (fun m ->
      m "optimize group %d req=%a limit=%.2f" g Descriptor.pp req limit);
  explore ctx parent g;
  let g = Memo.canonical ctx.memo g in
  let best : (Plan.t * float) option ref = ref None in
  let budget () =
    if not ctx.pruning then infinity_limit
    else match !best with None -> limit | Some (_, c) -> Float.min limit c
  in
  let consider plan cost =
    if ctx.rules.Rule.rs_satisfies ~required:req ~actual:(Plan.descriptor plan)
    then
      match !best with
      | Some (_, c) when c <= cost -> ()
      | prev ->
        emit ctx (fun () ->
            Trace.Winner_changed
              {
                gid = g;
                alg =
                  (match plan with
                  | Plan.Alg (a, _, _) -> a
                  | Plan.Leaf (n, _) -> n);
                old_cost = Option.map snd prev;
                new_cost = cost;
              });
        best := Some (plan, cost)
  in
  let members = Memo.lexprs ctx.memo g in
  let files_only =
    List.for_all (fun le -> match le.Memo.node with Memo.L_file _ -> true | Memo.L_op _ -> false) members
  in
  List.iter
    (fun le -> cost_lexpr ctx parent g le ~req ~budget ~consider)
    members;
  (* Enforcers establish required properties on top of a plan for the same
     group optimized under a relaxed requirement.  Stored files are not
     streams; enforcers never apply directly to file groups. *)
  if not files_only then
    List.iter
      (fun (en : Rule.enforcer) ->
        if en.Rule.en_applies ~req then begin
          let relaxed = restrict_req ctx (en.Rule.en_relaxed ~req) in
          if not (Descriptor.equal relaxed req) then begin
            let esp =
              Span.enter_opt ctx.spans ~rule:en.Rule.en_alg ~parent
                Span.Enforcer
            in
            (match
               optimize_group_at ctx g ~req:relaxed ~limit:(budget ())
                 ~parent:esp
             with
            | None -> ()
            | Some sub ->
              let desc =
                en.Rule.en_finalize ~req ~input:(Plan.descriptor sub)
              in
              ctx.st.Stats.enforcer_firings <-
                ctx.st.Stats.enforcer_firings + 1;
              emit ctx (fun () ->
                  Trace.Enforcer_inserted { alg = en.Rule.en_alg; gid = g });
              consider (Plan.Alg (en.Rule.en_alg, desc, [ sub ])) (Descriptor.cost desc));
            Span.exit_opt ctx.spans esp
          end
        end)
      ctx.rules.Rule.rs_enforcers;
  let g = Memo.canonical ctx.memo g in
  (match !best with
  | Some (plan, cost) ->
    Log.debug (fun m -> m "group %d: winner %a cost=%.2f" g Plan.pp plan cost);
    Memo.set_winner ctx.memo g req
      { Memo.plan = Some plan; cost; searched_limit = limit }
  | None ->
    Memo.set_winner ctx.memo g req
      { Memo.plan = None; cost = infinity_limit; searched_limit = limit });
  match !best with
  | Some (plan, cost) when (not ctx.pruning) || cost <= limit -> Some plan
  | Some _ | None -> None

and cost_lexpr ctx parent g le ~req ~budget ~consider =
  match le.Memo.node with
  | Memo.L_file name ->
    (* A stored file delivers its catalog properties at no cost. *)
    consider (Plan.Leaf (name, le.Memo.arg)) (Descriptor.cost le.Memo.arg)
  | Memo.L_op op ->
    List.iter
      (fun (ir : Rule.impl_rule) ->
        if ir.Rule.ir_arity = Array.length le.Memo.inputs then begin
          let csp =
            Span.enter_opt ctx.spans ~rule:ir.Rule.ir_name ~parent Span.Cost
          in
          Stats.record_impl_match ctx.st ir.Rule.ir_name;
          emit ctx (fun () ->
              Trace.Impl_matched { rule = ir.Rule.ir_name; gid = g });
          let input_descs =
            Array.map (Memo.group_desc ctx.memo) le.Memo.inputs
          in
          if not (ir.Rule.ir_cond ~op_arg:le.Memo.arg ~req ~inputs:input_descs)
          then
            emit ctx (fun () ->
                Trace.Impl_rejected
                  {
                    rule = ir.Rule.ir_name;
                    gid = g;
                    reason = Trace.Test_failed;
                  })
          else begin
            Stats.record_impl_applied ctx.st ir.Rule.ir_name;
            emit ctx (fun () ->
                Trace.Impl_applied { rule = ir.Rule.ir_name; gid = g });
            let reqs =
              ir.Rule.ir_input_reqs ~op_arg:le.Memo.arg ~req ~inputs:input_descs
            in
            (* optimize inputs left to right under a shrinking limit *)
            let n = Array.length le.Memo.inputs in
            let plans = Array.make n None in
            let spent = ref 0.0 in
            let ok = ref true in
            let i = ref 0 in
            while !ok && !i < n do
              let sub_limit =
                if ctx.pruning then budget () -. !spent else infinity_limit
              in
              (if ctx.pruning && sub_limit < 0.0 then begin
                 ctx.st.Stats.pruned <- ctx.st.Stats.pruned + 1;
                 emit ctx (fun () ->
                     Trace.Impl_rejected
                       {
                         rule = ir.Rule.ir_name;
                         gid = g;
                         reason = Trace.Pruned sub_limit;
                       });
                 ok := false
               end
               else
                 match
                   optimize_group_at ctx le.Memo.inputs.(!i) ~req:reqs.(!i)
                     ~limit:sub_limit ~parent:csp
                 with
                 | None ->
                   if ctx.pruning then
                     ctx.st.Stats.pruned <- ctx.st.Stats.pruned + 1;
                   emit ctx (fun () ->
                       Trace.Impl_rejected
                         {
                           rule = ir.Rule.ir_name;
                           gid = g;
                           reason =
                             (if ctx.pruning then Trace.Pruned sub_limit
                              else Trace.No_input_plan);
                         });
                   ok := false
                 | Some p ->
                   plans.(!i) <- Some p;
                   spent := !spent +. Plan.cost p);
              incr i
            done;
            if !ok then begin
              let achieved =
                Array.map
                  (function Some p -> Plan.descriptor p | None -> assert false)
                  plans
              in
              let desc =
                ir.Rule.ir_finalize ~op_arg:le.Memo.arg ~req ~inputs:achieved
              in
              ctx.st.Stats.impl_firings <- ctx.st.Stats.impl_firings + 1;
              let children =
                Array.to_list
                  (Array.map (function Some p -> p | None -> assert false) plans)
              in
              consider (Plan.Alg (ir.Rule.ir_alg, desc, children))
                (Descriptor.cost desc)
            end
          end;
          Span.exit_opt ctx.spans csp
        end)
      (Rule.impl_rules_for ctx.rules op)

let optimize_group ctx ?span gid ~req ~limit =
  optimize_group_at ctx gid ~req ~limit ~parent:span

let optimize ?(required = Descriptor.empty) ctx expr =
  let root = Span.enter_opt ctx.spans ~parent:None Span.Optimize in
  let g =
    match root with
    | None -> Memo.insert_expr ctx.memo expr
    | Some h -> Memo.insert_expr ctx.memo ~span_parent:h expr
  in
  let req = restrict_req ctx required in
  let r = optimize_group_at ctx g ~req ~limit:infinity_limit ~parent:root in
  Span.exit_opt ctx.spans root;
  r
