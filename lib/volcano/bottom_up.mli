(** Bottom-up (System R-style) search over the same memo and rules.

    The paper notes (§2.2) that Prairie could equally drive a bottom-up
    optimizer "given an appropriate search engine"; the earliest optimizers
    (System R and R-star) worked that way.  This module is that engine:

    1. {b saturate}: apply transformation rules to a fixpoint over every
       group (eager, not demand-driven);
    2. {b interesting orders}: propagate the physical-property requirements
       that could ever be requested of each group — the root requirement
       plus every input requirement of every applicable implementation
       rule, plus the enforcers' relaxations (Selinger's "interesting
       orders", generalized to property vectors);
    3. {b dynamic programming}: process groups in dependency order,
       computing the best plan for each (group, requirement) pair from the
       already-final plans of the input groups.

    It is exhaustive where the top-down engine is demand-driven and
    branch-and-bound, but both must find plans of equal cost — which the
    test suite asserts. *)

type result = {
  plan : Plan.t option;
  groups_explored : int;
  requirements_considered : int;
      (** total (group, requirement) pairs the DP table held *)
  plans_costed : int;
}

val optimize :
  ?required:Prairie.Descriptor.t ->
  ?trace:Prairie_obs.Trace.t ->
  ?spans:Prairie_obs.Span.t ->
  Rule.ruleset ->
  Prairie.Expr.t ->
  result
(** Run the full bottom-up optimization from a fresh memo.  [trace]
    receives the exploration-phase events (group creation/merges, trans
    rule matches/applications/rejections); the DP phase keeps its own
    bookkeeping and does not emit per-plan events.  [spans] wraps the
    run in an [Optimize] root span with [Explore] children from the
    saturation phase and one [Cost] child covering the DP phase. *)

val optimize_in :
  Search.t -> Memo.gid -> required:Prairie.Descriptor.t -> result
(** Run over an existing search context's memo (the context is used for
    its rule set and exploration machinery; its winner table is left
    untouched — the DP keeps its own). *)
