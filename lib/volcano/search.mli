(** The Volcano search engine: top-down, memoized, branch-and-bound.

    [FindBestPlan] in the paper's terminology: optimizing a group under a
    required physical-property vector first saturates the group with
    transformation-rule applications (exploration), then costs every
    applicable implementation rule — optimizing inputs on demand with
    shrinking cost limits — and every applicable enforcer.  Results are
    memoized per (group, required properties). *)

type t

type exploration = [ `Worklist | `Rescan ]
(** How {!explore_group} drives its fixpoint.  [`Worklist] (the default)
    revisits only members inserted since the last round; [`Rescan] is the
    legacy whole-group rescan, kept as a differential-testing oracle.  Both
    apply the same rules to the same lexprs in the same order — the
    per-(lexpr, rule) tried-guard gates applications identically — so
    memos, plans and costs are bit-for-bit equal; only the iteration cost
    differs. *)

val log_src : Logs.src
(** Debug-level tracing of exploration, rule firings and winners; enable
    with [Logs.Src.set_level Search.log_src (Some Logs.Debug)]. *)

val create :
  ?pruning:bool ->
  ?group_budget:int ->
  ?exploration:exploration ->
  ?match_index:bool ->
  ?jobs:int ->
  ?trace:Prairie_obs.Trace.t ->
  ?spans:Prairie_obs.Span.t ->
  Rule.ruleset ->
  t
(** A fresh search context with an empty memo.  [pruning] (default [true])
    enables branch-and-bound cost limits; disabling it is the
    [ablation-bounding] experiment.

    [match_index] (default [true]) consults the rule set's
    [rs_match_index] so each lexpr only tries trans rules whose LHS root
    operator can match it.  The skipped (lexpr, rule) pairs are exactly
    those whose match would bind nothing — they record no match, no trace
    event and no memo change either way — so matches, applications,
    stats, memo shape, costs and plans are byte-identical with the index
    on or off (property-tested in the equivalence harness); only the
    per-lexpr rule iteration shrinks.  [match_index:false] is the
    [ablation] / differential-testing configuration.

    [jobs] (default: [PRAIRIE_SEARCH_JOBS] from the environment, else 1)
    runs each exploration round's rule matching speculatively across that
    many OCaml domains.  The memo is frozen during the parallel match
    phase and every task is committed sequentially in the sequential
    engine's order, with per-task read-set revalidation — so memos, costs
    and chosen plans are byte-identical to [jobs = 1] at any job count
    (property-tested in the equivalence harness).  Worker domains are
    spawned when a top-level [optimize]/[optimize_group]/[explore_group]
    call begins and joined when it returns.

    [trace] attaches a structured event sink recording the whole search:
    group creation/merges, rule matches, applications and rejections with
    reasons, enforcer insertions, memo hits and winner changes (render
    with {!Explain.trace}).  When absent — the default — each potential
    event costs a single [Option] check and no allocation, so the
    instrumented engine stays within noise of the uninstrumented one.

    [spans] attaches a timed-span sink: the search is bracketed by an
    [Optimize] root span with nested [Explore]/[Match]/[Apply]/[Cost]/
    [Enforcer]/[Memo_insert] children carrying rule-name attribution
    (render with {!Explain.profile}, export with
    {!Prairie_obs.Span.to_chrome}).  Same disabled-path contract as
    [trace]: one [Option] check per site when absent.

    [group_budget] is the heuristic the paper's conclusion calls for
    ("extensibility must be judiciously coupled with user heuristics to
    avoid unpleasant surprises" — their E3/E4 runs exhausted virtual
    memory): once the memo holds that many equivalence classes,
    exploration stops generating new alternatives and the search degrades
    gracefully to the expressions found so far.  Plans remain valid and
    executable; optimality is no longer guaranteed. *)

val budget_was_hit : t -> bool
(** Did the group budget cap exploration at any point? *)

val ruleset : t -> Rule.ruleset
val memo : t -> Memo.t
val stats : t -> Stats.t

val jobs : t -> int
(** The domain count exploration matching runs at (1 = sequential). *)

val spans : t -> Prairie_obs.Span.t option
(** The span sink passed to {!create}, if any. *)

val restrict_req : t -> Prairie.Descriptor.t -> Prairie.Descriptor.t
(** [Rule.restrict_physical] memoized per descriptor in this context (the
    projection of a requirement onto the rule set's physical properties is
    recomputed constantly along the search recursion). *)

val optimize :
  ?required:Prairie.Descriptor.t -> t -> Prairie.Expr.t -> Plan.t option
(** Optimize an initialized operator tree: insert it into the memo and find
    the cheapest access plan delivering the required physical properties
    (default: none).  [None] means no plan exists. *)

val optimize_group :
  t ->
  ?span:Prairie_obs.Span.handle ->
  Memo.gid ->
  req:Prairie.Descriptor.t ->
  limit:float ->
  Plan.t option
(** The recursive entry point, exposed for tests and the bottom-up
    strategy.  [req] is restricted to the rule set's physical
    properties.  Under [pruning], plans costing more than [limit] are
    not returned.  [span] is the parent handle new spans nest under
    when a sink is attached. *)

val explore_group : t -> ?span:Prairie_obs.Span.handle -> Memo.gid -> unit
(** Saturate one group with transformation-rule applications (recursively
    exploring input groups needed by multi-level patterns).  Exposed for
    the bottom-up strategy, which explores eagerly instead of on demand. *)

val group_count : t -> int
(** Equivalence classes in the memo (Figure 14's metric). *)
