type t = {
  mutable groups_created : int;
  mutable groups_merged : int;
  mutable lexprs_created : int;
  mutable lexpr_duplicates : int;
  mutable trans_applications : int;
  mutable impl_firings : int;
  mutable enforcer_firings : int;
  mutable memo_hits : int;
  mutable optimize_calls : int;
  mutable pruned : int;
  mutable winner_probes : int;
  mutable winner_hits : int;
  trans_matched : (string, unit) Hashtbl.t;
  impl_matched : (string, unit) Hashtbl.t;
  trans_applied : (string, unit) Hashtbl.t;
  impl_applied : (string, unit) Hashtbl.t;
}

let create () =
  {
    groups_created = 0;
    groups_merged = 0;
    lexprs_created = 0;
    lexpr_duplicates = 0;
    trans_applications = 0;
    impl_firings = 0;
    enforcer_firings = 0;
    memo_hits = 0;
    optimize_calls = 0;
    pruned = 0;
    winner_probes = 0;
    winner_hits = 0;
    trans_matched = Hashtbl.create 32;
    impl_matched = Hashtbl.create 32;
    trans_applied = Hashtbl.create 32;
    impl_applied = Hashtbl.create 32;
  }

let reset t =
  t.groups_created <- 0;
  t.groups_merged <- 0;
  t.lexprs_created <- 0;
  t.lexpr_duplicates <- 0;
  t.trans_applications <- 0;
  t.impl_firings <- 0;
  t.enforcer_firings <- 0;
  t.memo_hits <- 0;
  t.optimize_calls <- 0;
  t.pruned <- 0;
  t.winner_probes <- 0;
  t.winner_hits <- 0;
  Hashtbl.reset t.trans_matched;
  Hashtbl.reset t.impl_matched;
  Hashtbl.reset t.trans_applied;
  Hashtbl.reset t.impl_applied

let record_trans_match t name = Hashtbl.replace t.trans_matched name ()
let record_impl_match t name = Hashtbl.replace t.impl_matched name ()
let record_trans_applied t name = Hashtbl.replace t.trans_applied name ()
let record_impl_applied t name = Hashtbl.replace t.impl_applied name ()
let trans_matched_count t = Hashtbl.length t.trans_matched
let impl_matched_count t = Hashtbl.length t.impl_matched
let trans_applied_count t = Hashtbl.length t.trans_applied
let impl_applied_count t = Hashtbl.length t.impl_applied

let names set = List.sort String.compare (Hashtbl.fold (fun k () acc -> k :: acc) set [])

let trans_matched_names t = names t.trans_matched
let impl_matched_names t = names t.impl_matched
let trans_applied_names t = names t.trans_applied
let impl_applied_names t = names t.impl_applied

let pp ppf t =
  Format.fprintf ppf
    "@[<v>groups: %d (merged %d)@,logical expressions: %d (dups %d)@,\
     trans applications: %d (distinct matched %d)@,\
     impl firings: %d (distinct matched %d)@,\
     enforcer firings: %d@,memo hits: %d@,optimize calls: %d@,pruned: %d@,\
     winner probes: %d (hits %d)@]"
    t.groups_created t.groups_merged t.lexprs_created t.lexpr_duplicates
    t.trans_applications (trans_matched_count t) t.impl_firings
    (impl_matched_count t) t.enforcer_firings t.memo_hits t.optimize_calls
    t.pruned t.winner_probes t.winner_hits
