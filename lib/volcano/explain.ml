module D = Prairie.Descriptor
module V = Prairie_value.Value
module O = Prairie_value.Order
module P = Prairie_value.Predicate

let param_of desc =
  let pred name =
    match D.find desc name with
    | Some (V.Pred p) when not (P.equal p P.True) -> Some (P.to_string p)
    | _ -> None
  in
  let attrs name =
    match D.find desc name with
    | Some (V.Attrs (_ :: _ as l)) ->
      Some (String.concat ", " (List.map Prairie_value.Attribute.to_string l))
    | _ -> None
  in
  match pred "selection_predicate" with
  | Some s -> Some s
  | None -> (
    match pred "join_predicate" with
    | Some s -> Some s
    | None -> (
      match attrs "mat_attribute" with
      | Some s -> Some ("deref " ^ s)
      | None -> (
        match attrs "unnest_attribute" with
        | Some s -> Some ("unnest " ^ s)
        | None -> attrs "projected_attributes")))

let annotations ~leaf desc =
  let buf = Buffer.create 32 in
  if not leaf then Buffer.add_string buf (Printf.sprintf "cost=%.2f  " (D.cost desc));
  (match D.find desc "num_records" with
  | Some (V.Int n) -> Buffer.add_string buf (Printf.sprintf "rows=%d" n)
  | _ -> ());
  (match D.get_order desc "tuple_order" with
  | O.Any -> ()
  | o -> Buffer.add_string buf (Printf.sprintf "  order=%s" (O.to_string o)));
  Buffer.contents buf

let pp ppf plan =
  let rec go prefix child_prefix (p : Plan.t) =
    let label, desc, leaf, inputs =
      match p with
      | Plan.Leaf (name, d) -> (name, d, true, [])
      | Plan.Alg (alg, d, inputs) ->
        let label =
          match param_of d with
          | Some param -> Printf.sprintf "%s [%s]" alg param
          | None -> alg
        in
        (label, d, false, inputs)
    in
    Format.fprintf ppf "%s%-46s %s@." prefix label (annotations ~leaf desc);
    let n = List.length inputs in
    List.iteri
      (fun i sub ->
        let last = i = n - 1 in
        let branch = if last then "└─ " else "├─ " in
        let cont = if last then "   " else "│  " in
        go (child_prefix ^ branch) (child_prefix ^ cont) sub)
      inputs
  in
  go "" "" plan

let to_string plan = Format.asprintf "%a" pp plan

let summary plan =
  let desc = Plan.descriptor plan in
  let rows =
    match D.find desc "num_records" with
    | Some (V.Int n) -> string_of_int n
    | _ -> "?"
  in
  Printf.sprintf "cost %.2f, ~%s rows, algorithms: %s" (Plan.cost plan) rows
    (String.concat ", " (Plan.algorithms plan))

(* ------------------------------------------------------------------ *)
(* Trace rendering: the per-rule account of a recorded search          *)
(* ------------------------------------------------------------------ *)

module Trace = Prairie_obs.Trace
module SMap = Map.Make (String)

type rule_account = {
  mutable matched : int;  (* match events (>=1 binding each) *)
  mutable bindings : int;  (* total bindings over all matches *)
  mutable applied : int;
  mutable rej_test : int;
  mutable rej_pruned : int;
  mutable rej_budget : int;
  mutable rej_no_input : int;
}

let account map rule =
  match SMap.find_opt rule !map with
  | Some a -> a
  | None ->
    let a =
      {
        matched = 0;
        bindings = 0;
        applied = 0;
        rej_test = 0;
        rej_pruned = 0;
        rej_budget = 0;
        rej_no_input = 0;
      }
    in
    map := SMap.add rule a !map;
    a

let record_rejection a = function
  | Trace.Test_failed -> a.rej_test <- a.rej_test + 1
  | Trace.Pruned _ -> a.rej_pruned <- a.rej_pruned + 1
  | Trace.Budget_exhausted -> a.rej_budget <- a.rej_budget + 1
  | Trace.No_input_plan -> a.rej_no_input <- a.rej_no_input + 1

let rejection_note a =
  let parts =
    List.filter
      (fun (n, _) -> n > 0)
      [
        (a.rej_test, "test failed");
        (a.rej_pruned, "pruned by cost limit");
        (a.rej_budget, "budget exhausted");
        (a.rej_no_input, "no input plan");
      ]
  in
  String.concat ", "
    (List.map (fun (n, label) -> Printf.sprintf "%d× %s" n label) parts)

let pp_accounts ppf kind map =
  if not (SMap.is_empty map) then begin
    Format.fprintf ppf "@,@[<v 2>%s rules:" kind;
    Format.fprintf ppf "@,%-28s %8s %8s %8s  %s" "rule" "matched" "applied"
      "rejected" "rejection reasons";
    (* trans matches carry a binding count (one cond test per binding);
       impl matches are one test each — report the tested bindings so
       applied + rejected(test) adds up *)
    let tested a = if a.bindings > 0 then a.bindings else a.matched in
    SMap.iter
      (fun rule a ->
        let rejected =
          a.rej_test + a.rej_pruned + a.rej_budget + a.rej_no_input
        in
        Format.fprintf ppf "@,%-28s %8d %8d %8d  %s" rule (tested a) a.applied
          rejected
          (if rejected = 0 then "-" else rejection_note a))
      map;
    (* the debugging story: rules that matched but never produced a plan *)
    SMap.iter
      (fun rule a ->
        if a.matched > 0 && a.applied = 0 then
          Format.fprintf ppf
            "@,%s matched %d time%s but never applied: %s" rule (tested a)
            (if tested a = 1 then "" else "s")
            (rejection_note a))
      map;
    Format.fprintf ppf "@]"
  end

let trace ppf (tr : Trace.t) =
  let trans = ref SMap.empty and impl = ref SMap.empty in
  let groups_created = ref 0
  and merges = ref 0
  and memo_hits = ref 0
  and enforcers = ref 0
  and winner_changes = ref 0
  and budget = ref None in
  let final_winner : (string * float) option ref = ref None in
  List.iter
    (fun (_, ev) ->
      match ev with
      | Trace.Group_created _ -> incr groups_created
      | Trace.Groups_merged _ -> incr merges
      | Trace.Trans_matched { rule; bindings; _ } ->
        let a = account trans rule in
        a.matched <- a.matched + 1;
        a.bindings <- a.bindings + bindings
      | Trace.Trans_applied { rule; _ } ->
        (account trans rule).applied <- (account trans rule).applied + 1
      | Trace.Trans_rejected { rule; reason; _ } ->
        record_rejection (account trans rule) reason
      | Trace.Impl_matched { rule; _ } ->
        let a = account impl rule in
        a.matched <- a.matched + 1
      | Trace.Impl_applied { rule; _ } ->
        (account impl rule).applied <- (account impl rule).applied + 1
      | Trace.Impl_rejected { rule; reason; _ } ->
        record_rejection (account impl rule) reason
      | Trace.Enforcer_inserted _ -> incr enforcers
      | Trace.Memo_hit _ -> incr memo_hits
      | Trace.Winner_changed { alg; new_cost; _ } ->
        incr winner_changes;
        final_winner := Some (alg, new_cost)
      | Trace.Budget_hit { groups } -> budget := Some groups)
    (Trace.events tr);
  Format.fprintf ppf "@[<v>search trace: %d events (%d dropped)"
    (Trace.seq tr) (Trace.dropped tr);
  Format.fprintf ppf
    "@,%d groups created, %d merged, %d memo hits, %d enforcer insertions, \
     %d winner changes"
    !groups_created !merges !memo_hits !enforcers !winner_changes;
  (match !budget with
  | Some groups ->
    Format.fprintf ppf
      "@,group budget exhausted at %d groups: exploration was capped and \
       the plan may be sub-optimal"
      groups
  | None -> ());
  pp_accounts ppf "transformation" !trans;
  pp_accounts ppf "implementation" !impl;
  (match !final_winner with
  | Some (alg, cost) ->
    Format.fprintf ppf "@,last winner: %s at cost %.2f" alg cost
  | None -> Format.fprintf ppf "@,no winner was ever recorded");
  Format.fprintf ppf "@]"

let trace_to_string tr = Format.asprintf "%a" trace tr

(* ------------------------------------------------------------------ *)
(* Span profile rendering: where did the time go, per phase and rule   *)
(* ------------------------------------------------------------------ *)

module Span = Prairie_obs.Span

let ms_of_ns ns = Int64.to_float ns /. 1e6

let profile ppf (sink : Span.t) =
  let rows = Span.profile sink in
  let total = Span.root_total_ns sink in
  Format.fprintf ppf
    "@[<v>span profile: %d spans (%d dropped from the ring; aggregates are \
     exact), %d root span%s, rooted total %.3f ms"
    (Span.seq sink) (Span.dropped sink) (Span.root_count sink)
    (if Span.root_count sink = 1 then "" else "s")
    (ms_of_ns total);
  if rows <> [] then begin
    Format.fprintf ppf "@,%-12s %-28s %9s %12s %12s %6s %10s" "phase" "rule"
      "count" "total(ms)" "self(ms)" "self%" "minor(kw)";
    let tf = Int64.to_float total in
    List.iter
      (fun (a : Span.agg) ->
        Format.fprintf ppf "@,%-12s %-28s %9d %12.3f %12.3f %5.1f%% %10.1f"
          (Span.phase_label a.Span.a_phase)
          (match a.Span.a_rule with Some r -> r | None -> "-")
          a.Span.a_count
          (ms_of_ns a.Span.a_total_ns)
          (ms_of_ns a.Span.a_self_ns)
          (if tf > 0.0 then 100.0 *. Int64.to_float a.Span.a_self_ns /. tf
           else 0.0)
          (a.Span.a_minor_words /. 1e3))
      rows
  end;
  Format.fprintf ppf "@]"

let profile_to_string sink = Format.asprintf "%a" profile sink
