(** Whole-rule-set dataflow analysis.

    Where {!Prairie_lint} checks each declaration and rule locally, this
    analyzer reasons about the {e rule set as a whole}, over the same
    elaborated ASTs the P2V translation consumes:

    - {b operator reachability} (P300): a fixpoint over the merged T-rules
      computes which operators a query built from the workload roots can
      ever contain; a rule whose LHS mentions an operator outside that
      closure can never fire;
    - {b constant tests} (P301/P302): sound constant folding
      ({!Prairie.Action.fold_const}) over rule tests — a test that folds
      to [FALSE] makes the rule dead, one that folds to [TRUE] is a
      redundant guard (the literal [TRUE] idiom is exempt);
    - {b property dataflow} (P310/P311): required physical properties
      (assignments to re-descriptored requirement descriptors) are checked
      against what enforcers and I-rule outputs can produce; argument
      properties assigned but never read anywhere are flagged;
    - {b pairwise subsumption and overlap} (P320/P321): a second-order
      pattern matcher finds T-rules strictly subsumed by a more general
      unguarded rule (generalizing lint's exact-shape P008), and unguarded
      critical pairs that rewrite the same redex divergently.

    Findings share the P-code namespace, the [// lint:allow Pxxx] pragma
    mechanism and the stable {!Prairie.Diagnostic.compare} report order
    with the linter and the verifier.

    The analysis is also an optimizer input: [Translate] uses the same
    constant folding to drop dead rules before building the Volcano rule
    set, whose match index ([rs_match_index]) then prunes exploration to
    rules whose LHS root can match — see [docs/ANALYZE.md]. *)

val catalogue : Prairie.Diagnostic.catalogue
(** Every code the analyzer can emit ([P000] plus P3xx), with default
    severity and a one-line description. *)

type config = {
  roots : string list;
      (** workload root operators the reachability closure starts from;
          [[]] (the default) means every declared non-enforcer operator —
          the operators a query handed to the optimizer may contain *)
}

val default_config : config

type report = {
  ruleset : string;
  diagnostics : Prairie.Diagnostic.t list;
      (** deduplicated, in stable report order, pragmas applied *)
  reachable : string list;
      (** the operator reachability closure, sorted *)
  dead_rules : string list;
      (** T-rules whose test constant-folds to [FALSE] (P301) — the rules
          [Translate] drops from the Volcano rule set *)
  unreachable_rules : string list;  (** T-rules flagged P300 *)
  required_physical : string list;
      (** physical properties some rule requires of an input *)
  produced_physical : string list;
      (** physical properties enforcers or I-rule outputs can establish *)
}

val check_spec : ?config:config -> Prairie_dsl.Ast.spec -> report
(** Analyze an already-parsed spec.  Pragmas are NOT applied (there is no
    source to scan); use {!analyze_string} / {!analyze_file} for that. *)

val analyze_string : ?config:config -> string -> report
(** Parse and analyze.  Lex and parse failures become a single [P000]
    error; [// lint:allow P3xx] pragmas downgrade warnings to [Info]. *)

val analyze_file : ?config:config -> string -> report

val export_metrics : Prairie_obs.Metrics.t -> report -> unit
(** Publish per-code finding counts, dead/unreachable rule counts and the
    closure size into a metrics registry
    ([prairie_analysis_*] counter families). *)

val summary : Prairie.Diagnostic.t list -> int * int * int
(** [(errors, warnings, infos)] counts. *)
