module Ast = Prairie_dsl.Ast
module Lexer = Prairie_dsl.Lexer
module Parser = Prairie_dsl.Parser
module D = Prairie.Diagnostic
module Pattern = Prairie.Pattern
module Action = Prairie.Action
module Trule = Prairie.Trule
module Irule = Prairie.Irule
module Ruleset = Prairie.Ruleset
module Value = Prairie_value.Value
module Merge = Prairie_p2v.Merge
module Classify = Prairie_p2v.Classify
module Enforcers = Prairie_p2v.Enforcers
module Lint = Prairie_lint.Lint
module Metrics = Prairie_obs.Metrics

let catalogue : D.catalogue =
  [
    ("P000", D.Error, "rule-specification file failed to parse");
    ( "P300",
      D.Warning,
      "T-rule's LHS mentions an operator unreachable from the workload roots" );
    ("P301", D.Warning, "rule test constant-folds to FALSE; the rule can never fire");
    ( "P302",
      D.Warning,
      "non-trivial rule test constant-folds to TRUE; the guard is redundant" );
    ( "P310",
      D.Warning,
      "physical property is required but no I-rule or enforcer produces it" );
    ("P311", D.Warning, "argument property is assigned but never read by any rule");
    ( "P320",
      D.Warning,
      "T-rule is strictly subsumed by a more general unguarded rule" );
    ( "P321",
      D.Warning,
      "unguarded T-rules rewrite the same redex divergently (critical pair)" );
  ]

type config = {
  roots : string list;
      (** workload root operators the reachability closure starts from;
          [[]] means every declared non-enforcer operator (the operators a
          query handed to the optimizer may contain) *)
}

let default_config = { roots = [] }

type report = {
  ruleset : string;
  diagnostics : D.t list;
  reachable : string list;  (** the operator closure (sorted) *)
  dead_rules : string list;  (** T-rules whose test folds to FALSE *)
  unreachable_rules : string list;  (** T-rules flagged P300 *)
  required_physical : string list;  (** physical properties rules request *)
  produced_physical : string list;  (** physical properties producible *)
}

let empty_report name =
  {
    ruleset = name;
    diagnostics = [];
    reachable = [];
    dead_rules = [];
    unreachable_rules = [];
    required_physical = [];
    produced_physical = [];
  }

(* ------------------------------------------------------------------ *)
(* Small walks                                                         *)
(* ------------------------------------------------------------------ *)

let pattern_ops pat =
  let rec go acc = function
    | Pattern.Pvar _ -> acc
    | Pattern.Pop (name, _, subs) -> List.fold_left go (name :: acc) subs
  in
  List.sort_uniq String.compare (go [] pat)

let tmpl_ops tmpl =
  let rec go acc = function
    | Pattern.Tvar _ -> acc
    | Pattern.Tnode (name, _, subs) -> List.fold_left go (name :: acc) subs
  in
  List.sort_uniq String.compare (go [] tmpl)

module Sset = Set.Make (String)

(* ------------------------------------------------------------------ *)
(* Constant tests: P301 / P302                                         *)
(* ------------------------------------------------------------------ *)

(* The literal [TRUE] is the DSL's idiom for "no guard": only a composite
   expression that folds to a constant is worth flagging. *)
let check_consts (spec : Ast.spec) =
  let ds = ref [] in
  let dead = ref [] in
  List.iter
    (fun ((kind : [ `Trule | `Irule ]), (r : Ast.rule_body)) ->
      let span = Lint.span_of r.Ast.rb_loc in
      match Action.fold_const r.Ast.rb_test with
      | Some (Value.Bool false) ->
        if kind = `Trule then dead := r.Ast.rb_name :: !dead;
        ds :=
          D.warning ~code:"P301" ~rule:r.Ast.rb_name ?span
            ~hint:"delete the rule, or fix the test so it can succeed"
            (Printf.sprintf
               "the test of rule %s constant-folds to FALSE; the rule can \
                never fire"
               r.Ast.rb_name)
          :: !ds
      | Some (Value.Bool true) when not (Lint.is_tt r.Ast.rb_test) ->
        ds :=
          D.warning ~code:"P302" ~rule:r.Ast.rb_name ?span
            ~hint:"write 'test { TRUE }' if the rule is meant to be unguarded"
            (Printf.sprintf
               "the test of rule %s constant-folds to TRUE; the guard is \
                redundant"
               r.Ast.rb_name)
          :: !ds
      | Some _ | None -> ())
    (Ast.rules spec);
  (!ds, List.rev !dead)

(* ------------------------------------------------------------------ *)
(* Operator reachability: P300                                         *)
(* ------------------------------------------------------------------ *)

(* The closure runs over the MERGED transformation rules — enforcer
   operators stripped, rename rules composed away — because that is
   exactly the rule set Volcano executes.  A merged T-rule all of whose
   LHS operators are reachable makes every operator of its RHS template
   reachable; the fixpoint of that relation, seeded with the workload
   roots, is the set of shapes exploration can ever build. *)
let reachability_closure roots (trules : Trule.t list) =
  let reach = ref (Sset.of_list roots) in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (t : Trule.t) ->
        if List.for_all (fun op -> Sset.mem op !reach) (pattern_ops t.Trule.lhs)
        then
          List.iter
            (fun op ->
              if not (Sset.mem op !reach) then begin
                reach := Sset.add op !reach;
                changed := true
              end)
            (tmpl_ops t.Trule.rhs))
      trules
  done;
  !reach

let check_reachability (spec : Ast.spec) roots (merge : Merge.result) =
  let reach = reachability_closure roots merge.Merge.trans_trules in
  let ds = ref [] in
  let unreachable = ref [] in
  List.iter
    (fun (t : Trule.t) ->
      let missing =
        List.filter (fun op -> not (Sset.mem op reach)) (pattern_ops t.Trule.lhs)
      in
      match missing with
      | [] -> ()
      | ops ->
        unreachable := t.Trule.name :: !unreachable;
        ds :=
          D.warning ~code:"P300" ~rule:t.Trule.name
            ?span:(Lint.rule_loc spec t.Trule.name)
            ~hint:
              "no workload root or T-rule output produces the operator; the \
               rule is dead — delete it or extend the roots (--roots)"
            (Printf.sprintf
               "rule %s can never fire: operator%s %s %s unreachable from \
                roots %s"
               t.Trule.name
               (if List.length ops > 1 then "s" else "")
               (String.concat ", " ops)
               (if List.length ops > 1 then "are" else "is")
               (String.concat ", " roots))
          :: !ds)
    merge.Merge.trans_trules;
  (!ds, List.sort String.compare (Sset.elements reach), List.rev !unreachable)

(* ------------------------------------------------------------------ *)
(* Property dataflow: P310 / P311                                      *)
(* ------------------------------------------------------------------ *)

let prop_assignments stmts =
  List.filter_map
    (function
      | Action.Assign_prop (d, p, _) -> Some (d, p) | Action.Assign_desc _ -> None)
    stmts

let rec expr_prop_reads acc = function
  | Action.Const _ | Action.Desc _ -> acc
  | Action.Prop (_, p) -> p :: acc
  | Action.Call (_, args) -> List.fold_left expr_prop_reads acc args
  | Action.Binop (_, a, b) -> expr_prop_reads (expr_prop_reads acc a) b
  | Action.Unop (_, a) -> expr_prop_reads acc a

(* Physical properties a merged rule set REQUIRES: assignments to a
   requirement descriptor — a re-descriptored stream variable of a T-rule
   RHS or of an I-rule RHS (pre-opt pushes the requirement down before the
   input is optimized).  Each comes back with the requesting rule. *)
let required_physical_props physical (merge : Merge.result) =
  let is_physical p = List.mem p physical in
  let of_trule (t : Trule.t) =
    let redesc =
      let rec go acc = function
        | Pattern.Tvar (_, Some d) -> d :: acc
        | Pattern.Tvar (_, None) -> acc
        | Pattern.Tnode (_, _, subs) -> List.fold_left go acc subs
      in
      go [] t.Trule.rhs
    in
    List.filter_map
      (fun (d, p) ->
        if List.mem d redesc && is_physical p then Some (p, t.Trule.name)
        else None)
      (prop_assignments (t.Trule.pre_test @ t.Trule.post_test))
  in
  let of_irule (i : Irule.t) =
    let redesc = List.map snd (Irule.redescriptored_inputs i) in
    List.filter_map
      (fun (d, p) ->
        if List.mem d redesc && is_physical p then Some (p, i.Irule.name)
        else None)
      (prop_assignments i.Irule.pre_opt)
  in
  List.concat_map of_trule merge.Merge.trans_trules
  @ List.concat_map of_irule merge.Merge.impl_irules

(* Physical properties the rule set can PRODUCE: what enforcers enforce,
   plus what an I-rule establishes on its output descriptor (e.g. the
   index order an Index_scan delivers). *)
let produced_physical_props physical (merge : Merge.result) =
  let is_physical p = List.mem p physical in
  let from_enforcers =
    List.concat_map
      (fun (i : Enforcers.info) -> i.Enforcers.enforced_properties)
      merge.Merge.enforcer_infos
  in
  let from_irules =
    List.concat_map
      (fun (i : Irule.t) ->
        let out = Irule.algorithm_descriptor i in
        List.filter_map
          (fun (d, p) ->
            if String.equal d out && is_physical p then Some p else None)
          (prop_assignments (i.Irule.pre_opt @ i.Irule.post_opt)))
      merge.Merge.impl_irules
  in
  List.sort_uniq String.compare (from_enforcers @ from_irules)

let check_property_flow (spec : Ast.spec) ruleset (merge : Merge.result) =
  let ds = ref [] in
  let classification = Classify.classify ruleset in
  let physical = classification.Classify.physical in
  let required = required_physical_props physical merge in
  let produced = produced_physical_props physical merge in
  (* P310: a requirement nothing can establish — the search will reject
     every plan that needs it (caught today only as a P220/P210
     counterexample at verification time) *)
  let props = List.sort_uniq String.compare (List.map fst required) in
  List.iter
    (fun p ->
      if not (List.mem p produced) then begin
        let requesters =
          List.sort_uniq String.compare
            (List.filter_map
               (fun (p', r) -> if String.equal p p' then Some r else None)
               required)
        in
        let first = List.hd requesters in
        let related =
          List.filter_map
            (fun r ->
              match Lint.rule_loc spec r with
              | Some s when not (String.equal r first) -> Some (r, s)
              | _ -> None)
            requesters
        in
        ds :=
          D.warning ~code:"P310" ~rule:first
            ?span:(Lint.rule_loc spec first)
            ~related
            ~hint:
              "add an enforcer (Null I-rule) or an I-rule that assigns the \
               property on its output descriptor"
            (Printf.sprintf
               "physical property %s is required by %s but no I-rule or \
                enforcer produces it"
               p
               (String.concat ", " requesters))
          :: !ds
      end)
    props;
  (* P311: an argument property someone computes but nobody inspects —
     assignments with no Prop read anywhere in any rule's test or actions.
     COST properties are read implicitly by plan costing and physical
     properties by the satisfaction check, so only arguments qualify. *)
  let all_rules = Ast.rules spec in
  let reads =
    Sset.of_list
      (List.concat_map
         (fun (_, (r : Ast.rule_body)) ->
           List.fold_left
             (fun acc s ->
               match s with
               | Action.Assign_desc (_, e) | Action.Assign_prop (_, _, e) ->
                 expr_prop_reads acc e)
             (expr_prop_reads [] r.Ast.rb_test)
             (r.Ast.rb_pre @ r.Ast.rb_post))
         all_rules)
  in
  let assigners p =
    List.filter_map
      (fun (_, (r : Ast.rule_body)) ->
        if
          List.exists
            (fun (_, p') -> String.equal p p')
            (prop_assignments (r.Ast.rb_pre @ r.Ast.rb_post))
        then Some r.Ast.rb_name
        else None)
      all_rules
  in
  List.iter
    (fun p ->
      if not (Sset.mem p reads) then
        match assigners p with
        | [] -> ()
        | first :: _ as who ->
          ds :=
            D.warning ~code:"P311" ~rule:first
              ?span:(Lint.rule_loc spec first)
              ~hint:"remove the dead assignments, or read the property"
              (Printf.sprintf
                 "argument property %s is assigned by %s but never read by \
                  any rule"
                 p
                 (String.concat ", " who))
            :: !ds)
    classification.Classify.argument;
  (!ds, props, produced)

(* ------------------------------------------------------------------ *)
(* Pairwise subsumption and overlap: P320 / P321                       *)
(* ------------------------------------------------------------------ *)

module Imap = Map.Make (Int)

let rec pat_equal a b =
  match (a, b) with
  | Pattern.Pvar i, Pattern.Pvar j -> Int.equal i j
  | Pattern.Pop (n1, _, s1), Pattern.Pop (n2, _, s2) ->
    String.equal n1 n2
    && List.length s1 = List.length s2
    && List.for_all2 pat_equal s1 s2
  | _ -> false

(* Match [general] against [specific] as a second-order pattern: stream
   variables of the general pattern may bind whole sub-patterns of the
   specific one.  Descriptor names are ignored (they are α-renamable). *)
let rec pat_subsume sub general specific =
  match general with
  | Pattern.Pvar i -> (
    match Imap.find_opt i sub with
    | Some prev -> if pat_equal prev specific then Some sub else None
    | None -> Some (Imap.add i specific sub))
  | Pattern.Pop (n, _, gs) -> (
    match specific with
    | Pattern.Pop (n', _, ss)
      when String.equal n n' && List.length gs = List.length ss ->
      List.fold_left2
        (fun acc g s -> Option.bind acc (fun sub -> pat_subsume sub g s))
        (Some sub) gs ss
    | _ -> None)

(* Does template [t] spell out pattern [p] verbatim (plain stream
   variables, same operators)?  Used when a general-rule variable bound a
   composite sub-pattern: the specific rule's RHS must reproduce it. *)
let rec tmpl_reproduces_pat t p =
  match (t, p) with
  | Pattern.Tvar (i, None), Pattern.Pvar j -> Int.equal i j
  | Pattern.Tnode (n, _, ts), Pattern.Pop (n', _, ps) ->
    String.equal n n'
    && List.length ts = List.length ps
    && List.for_all2 tmpl_reproduces_pat ts ps
  | _ -> false

(* Under substitution [sub] from the LHS match, does the general rule's
   RHS template instantiate to the specific rule's RHS?  Re-descriptor
   marks must agree: a requirement push is part of the rewrite. *)
let rec tmpl_subsume sub g s =
  match g with
  | Pattern.Tvar (i, rd) -> (
    match Imap.find_opt i sub with
    | None -> false
    | Some (Pattern.Pvar j) -> (
      match s with
      | Pattern.Tvar (j', rd') ->
        Int.equal j j' && Option.is_some rd = Option.is_some rd'
      | Pattern.Tnode _ -> false)
    | Some (Pattern.Pop _ as p) ->
      (* requirements on a composite image would sit on an interior node
         the specific rule cannot express — no subsumption *)
      Option.is_none rd && tmpl_reproduces_pat s p)
  | Pattern.Tnode (n, _, gs) -> (
    match s with
    | Pattern.Tnode (n', _, ss) ->
      String.equal n n'
      && List.length gs = List.length ss
      && List.for_all2 (tmpl_subsume sub) gs ss
    | Pattern.Tvar _ -> false)

(* [t1] strictly subsumes [t2]: t1 is unguarded, its LHS matches t2's LHS
   with at least one variable bound to a composite sub-pattern (strictness
   — exact-shape duplicates are lint's P008), and its RHS instantiates to
   t2's RHS under the same substitution.  Every redex of t2 is then a
   redex of t1 producing the same rewrite, so t2 is redundant. *)
let strictly_subsumes (t1 : Ast.rule_body) (t2 : Ast.rule_body) =
  Lint.is_tt t1.Ast.rb_test
  &&
  match pat_subsume Imap.empty t1.Ast.rb_lhs t2.Ast.rb_lhs with
  | None -> false
  | Some sub ->
    Imap.exists (fun _ p -> match p with Pattern.Pop _ -> true | _ -> false) sub
    && tmpl_subsume sub t1.Ast.rb_rhs t2.Ast.rb_rhs

let check_subsumption (spec : Ast.spec) =
  let ds = ref [] in
  let trules = Ast.trules spec in
  let emit_pair (general : Ast.rule_body) (specific : Ast.rule_body) =
    let related =
      match Lint.span_of general.Ast.rb_loc with
      | Some s -> [ (general.Ast.rb_name, s) ]
      | None -> []
    in
    ds :=
      D.warning ~code:"P320" ~rule:specific.Ast.rb_name
        ?span:(Lint.span_of specific.Ast.rb_loc)
        ~related
        ~hint:"delete the rule, or guard it with a discriminating test"
        (Printf.sprintf
           "rule %s is strictly subsumed by the more general unguarded rule \
            %s: every redex it rewrites, %s already rewrites identically"
           specific.Ast.rb_name general.Ast.rb_name general.Ast.rb_name)
      :: !ds
  in
  List.iteri
    (fun i t1 ->
      List.iteri
        (fun j t2 ->
          if i <> j && strictly_subsumes t1 t2 then emit_pair t1 t2)
        trules)
    trules;
  !ds

(* Template shape with requirement marks erased, for comparing a RHS
   against a LHS pattern shape (inverse-pair detection). *)
let rec tmpl_shape_erased = function
  | Pattern.Tvar _ -> "_"
  | Pattern.Tnode (name, _, subs) ->
    name ^ "(" ^ String.concat "," (List.map tmpl_shape_erased subs) ^ ")"

let rec pat_shape = function
  | Pattern.Pvar _ -> "_"
  | Pattern.Pop (name, _, subs) ->
    name ^ "(" ^ String.concat "," (List.map pat_shape subs) ^ ")"

(* P321: two unguarded T-rules over the SAME redex shape rewriting it to
   DIFFERENT shapes — a critical pair.  Both always fire, the results
   diverge, and nothing arbitrates; under memoized search that is a
   deliberate exploration fork, so intentional pairs carry a pragma.
   Exact-shape duplicates (equal RHS too) are P008; inverse pairs undoing
   each other are the termination checks' P030/P031. *)
let check_overlap (spec : Ast.spec) =
  let ds = ref [] in
  let trules =
    List.filter (fun (r : Ast.rule_body) -> Lint.is_tt r.Ast.rb_test)
      (Ast.trules spec)
  in
  let inverse (t1 : Ast.rule_body) (t2 : Ast.rule_body) =
    String.equal (tmpl_shape_erased t1.Ast.rb_rhs) (pat_shape t2.Ast.rb_lhs)
    && String.equal (tmpl_shape_erased t2.Ast.rb_rhs) (pat_shape t1.Ast.rb_lhs)
  in
  let rec pairs = function
    | [] -> ()
    | (t1 : Ast.rule_body) :: rest ->
      List.iter
        (fun (t2 : Ast.rule_body) ->
          if
            String.equal (pat_shape t1.Ast.rb_lhs) (pat_shape t2.Ast.rb_lhs)
            && not
                 (String.equal
                    (Lint.tmpl_shape t1.Ast.rb_rhs)
                    (Lint.tmpl_shape t2.Ast.rb_rhs))
            && not (inverse t1 t2)
          then begin
            let related =
              match Lint.span_of t1.Ast.rb_loc with
              | Some s -> [ (t1.Ast.rb_name, s) ]
              | None -> []
            in
            ds :=
              D.warning ~code:"P321" ~rule:t2.Ast.rb_name
                ?span:(Lint.span_of t2.Ast.rb_loc)
                ~related
                ~hint:
                  "guard one rule with a test, or pragma the pair if the \
                   exploration fork is intentional"
                (Printf.sprintf
                   "unguarded rules %s and %s both rewrite shape %s, to \
                    different shapes; both fire on every redex"
                   t1.Ast.rb_name t2.Ast.rb_name (pat_shape t2.Ast.rb_lhs))
              :: !ds
          end)
        rest;
      pairs rest
  in
  pairs trules;
  !ds

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let check_spec ?(config = default_config) (spec : Ast.spec) =
  let const_ds, dead = check_consts spec in
  let subsume_ds = check_subsumption spec in
  let overlap_ds = check_overlap spec in
  let ruleset = Lint.ruleset_of_spec spec in
  (* the P2V-level analyses need a mergeable rule set; a spec that still
     carries structural errors (lint's department) may not have one *)
  let reach_ds, reachable, unreachable, flow_ds, required, produced =
    match Merge.merge ruleset with
    | exception _ -> ([], [], [], [], [], [])
    | merge ->
      let roots =
        match config.roots with
        | [] ->
          let enforcer_ops =
            List.map
              (fun (i : Enforcers.info) -> i.Enforcers.operator)
              merge.Merge.enforcer_infos
          in
          List.filter
            (fun op -> not (List.mem op enforcer_ops))
            ruleset.Ruleset.operators
        | roots -> roots
      in
      let reach_ds, reachable, unreachable =
        check_reachability spec roots merge
      in
      let flow_ds, required, produced =
        check_property_flow spec ruleset merge
      in
      (reach_ds, reachable, unreachable, flow_ds, required, produced)
  in
  {
    ruleset = spec.Ast.ruleset_name;
    diagnostics =
      D.normalize (const_ds @ subsume_ds @ overlap_ds @ reach_ds @ flow_ds);
    reachable;
    dead_rules = dead;
    unreachable_rules = unreachable;
    required_physical = required;
    produced_physical = produced;
  }

let analyze_string ?config src =
  match Parser.parse src with
  | exception Lexer.Lex_error (pos, msg) ->
    {
      (empty_report "") with
      diagnostics =
        [
          D.error ~code:"P000"
            ~span:{ D.line = pos.Lexer.line; column = pos.Lexer.column }
            (Printf.sprintf "lexical error: %s" msg);
        ];
    }
  | exception Parser.Parse_error (pos, msg) ->
    {
      (empty_report "") with
      diagnostics =
        [
          D.error ~code:"P000"
            ~span:{ D.line = pos.Lexer.line; column = pos.Lexer.column }
            (Printf.sprintf "parse error: %s" msg);
        ];
    }
  | spec ->
    let report = check_spec ?config spec in
    let pragmas = Lint.allow_pragmas src in
    {
      report with
      diagnostics = D.normalize (Lint.apply_pragmas pragmas report.diagnostics);
    }

let analyze_file ?config path =
  let ic = open_in_bin path in
  let src =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  analyze_string ?config src

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let export_metrics registry report =
  let ruleset = [ ("ruleset", report.ruleset) ] in
  let count_code code =
    List.length
      (List.filter (fun (d : D.t) -> String.equal d.D.code code)
         report.diagnostics)
  in
  List.iter
    (fun (code, _, _) ->
      if not (String.equal code "P000") then
        Metrics.inc ~by:(count_code code)
          (Metrics.counter registry
             ~help:"whole-rule-set analyzer findings by code"
             ~labels:(("code", code) :: ruleset)
             "prairie_analysis_findings_total"))
    catalogue;
  Metrics.inc
    ~by:(List.length report.dead_rules)
    (Metrics.counter registry
       ~help:"T-rules whose test constant-folds to FALSE"
       ~labels:ruleset "prairie_analysis_dead_rules_total");
  Metrics.inc
    ~by:(List.length report.unreachable_rules)
    (Metrics.counter registry
       ~help:"T-rules whose LHS root is unreachable from the workload roots"
       ~labels:ruleset "prairie_analysis_unreachable_rules_total");
  Metrics.inc
    ~by:(List.length report.reachable)
    (Metrics.counter registry
       ~help:"operators in the reachability closure" ~labels:ruleset
       "prairie_analysis_reachable_operators_total")

let summary = D.summary
