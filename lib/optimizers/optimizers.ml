module Descriptor = Prairie.Descriptor
module Search = Prairie_volcano.Search
module Plan = Prairie_volcano.Plan

type t = {
  name : string;
  volcano : Prairie_volcano.Rule.ruleset;
  prepare : Prairie.Expr.t -> Prairie.Expr.t * Descriptor.t;
}

type outcome = {
  plan : Plan.t option;
  cost : float;
  search : Search.t;
}

let of_translation name tr =
  {
    name;
    volcano = tr.Prairie_p2v.Translate.volcano;
    prepare = Prairie_p2v.Translate.prepare_query tr;
  }

let relational_ruleset = Prairie_algebra.Relational.ruleset
let oodb_ruleset = Prairie_algebra.Oodb.ruleset

let oodb_prairie catalog =
  of_translation "oodb-prairie"
    (Prairie_p2v.Translate.translate (oodb_ruleset catalog))

let oodb_prairie_unmerged catalog =
  of_translation "oodb-prairie-unmerged"
    (Prairie_p2v.Translate.translate ~compose:false (oodb_ruleset catalog))

let oodb_prairie_interpreted catalog =
  of_translation "oodb-prairie-interpreted"
    (Prairie_p2v.Translate.translate ~mode:`Interpreted (oodb_ruleset catalog))

let oodb_volcano catalog =
  {
    name = "oodb-volcano";
    volcano = Prairie_algebra.Oodb_volcano.ruleset catalog;
    prepare = Prairie_algebra.Oodb_volcano.prepare_query;
  }

let relational catalog =
  of_translation "relational"
    (Prairie_p2v.Translate.translate (relational_ruleset catalog))

let optimize ?pruning ?group_budget ?(required = Descriptor.empty) t expr =
  let expr, req0 = t.prepare expr in
  let required = Descriptor.merge ~base:req0 ~overrides:required in
  let search = Search.create ?pruning ?group_budget t.volcano in
  let plan = Search.optimize ~required search expr in
  let cost = match plan with Some p -> Plan.cost p | None -> infinity in
  { plan; cost; search }

(* ---------------- the plan service ---------------- *)

module Plan_cache = Prairie_service.Plan_cache
module Pool = Prairie_service.Pool

type request = { expr : Prairie.Expr.t; required : Descriptor.t }

let request ?(required = Descriptor.empty) expr = { expr; required }

type served = {
  request : request;
  fingerprint : string;
  plan : Plan.t option;
  cost : float;
  cache_hit : bool;
  groups : int;
  budget_hit : bool;
}

let serve ?pruning ?group_budget ?jobs ?cache t batch =
  (* Preparation and fingerprinting are cheap; do them sequentially so the
     batch can be deduplicated before any search is dispatched. *)
  let prepared =
    List.map
      (fun req ->
        let expr, req0 = t.prepare req.expr in
        let required = Descriptor.merge ~base:req0 ~overrides:req.required in
        let fp = Prairie.Expr.fingerprint ~required expr in
        (req, expr, required, fp))
      batch
  in
  (* One cache lookup per request (so hit/miss accounting reflects real
     traffic), then one search per distinct missing fingerprint. *)
  let resolved = Hashtbl.create (List.length prepared) in
  let to_optimize = Hashtbl.create 16 in
  List.iter
    (fun (_, expr, required, fp) ->
      let cached =
        match cache with
        | Some c -> Plan_cache.find c ~ruleset:t.name ~fingerprint:fp
        | None -> None
      in
      match cached with
      | Some entry -> Hashtbl.replace resolved fp entry
      | None ->
        if not (Hashtbl.mem resolved fp || Hashtbl.mem to_optimize fp) then
          Hashtbl.add to_optimize fp (expr, required))
    prepared;
  let jobs_list =
    Hashtbl.fold (fun fp (expr, required) acc -> (fp, expr, required) :: acc)
      to_optimize []
  in
  let optimize_one (fp, expr, required) =
    let search = Search.create ?pruning ?group_budget t.volcano in
    let plan = Search.optimize ~required search expr in
    let cost = match plan with Some p -> Plan.cost p | None -> infinity in
    let entry =
      {
        Plan_cache.plan;
        cost;
        groups = Search.group_count search;
        budget_hit = Search.budget_was_hit search;
      }
    in
    (match cache with
    | Some c -> Plan_cache.add c ~ruleset:t.name ~fingerprint:fp entry
    | None -> ());
    (fp, entry)
  in
  List.iter
    (fun (fp, entry) -> Hashtbl.add resolved fp entry)
    (Pool.map ?jobs optimize_one jobs_list);
  (* The first request carrying a freshly-searched fingerprint paid for the
     search; every other request was served from shared state. *)
  let owned = Hashtbl.create 16 in
  List.map
    (fun (request, _, _, fp) ->
      let entry = Hashtbl.find resolved fp in
      let fresh = Hashtbl.mem to_optimize fp && not (Hashtbl.mem owned fp) in
      if fresh then Hashtbl.add owned fp ();
      let cache_hit = not fresh in
      {
        request;
        fingerprint = fp;
        plan = entry.Plan_cache.plan;
        cost = entry.Plan_cache.cost;
        cache_hit;
        groups = entry.Plan_cache.groups;
        budget_hit = entry.Plan_cache.budget_hit;
      })
    prepared
