module Descriptor = Prairie.Descriptor
module Search = Prairie_volcano.Search
module Plan = Prairie_volcano.Plan
module Metrics = Prairie_obs.Metrics
module Trace = Prairie_obs.Trace
module Span = Prairie_obs.Span
module Slow_log = Prairie_obs.Slow_log

type t = {
  name : string;
  volcano : Prairie_volcano.Rule.ruleset;
  prepare : Prairie.Expr.t -> Prairie.Expr.t * Descriptor.t;
}

type outcome = {
  plan : Plan.t option;
  cost : float;
  search : Search.t;
}

let of_translation name tr =
  {
    name;
    volcano = tr.Prairie_p2v.Translate.volcano;
    prepare = Prairie_p2v.Translate.prepare_query tr;
  }

let relational_ruleset = Prairie_algebra.Relational.ruleset
let oodb_ruleset = Prairie_algebra.Oodb.ruleset

let oodb_prairie catalog =
  of_translation "oodb-prairie"
    (Prairie_p2v.Translate.translate (oodb_ruleset catalog))

let oodb_prairie_unmerged catalog =
  of_translation "oodb-prairie-unmerged"
    (Prairie_p2v.Translate.translate ~compose:false (oodb_ruleset catalog))

let oodb_prairie_interpreted catalog =
  of_translation "oodb-prairie-interpreted"
    (Prairie_p2v.Translate.translate ~mode:`Interpreted (oodb_ruleset catalog))

let oodb_volcano catalog =
  {
    name = "oodb-volcano";
    volcano = Prairie_algebra.Oodb_volcano.ruleset catalog;
    prepare = Prairie_algebra.Oodb_volcano.prepare_query;
  }

let relational catalog =
  of_translation "relational"
    (Prairie_p2v.Translate.translate (relational_ruleset catalog))

(* ---------------- telemetry helpers ---------------- *)

(* All service metric names in one place; labels carry the rule-set name so
   several optimizers can share one registry. *)
let m_optimize_seconds m ~ruleset =
  Metrics.histogram m ~help:"Single-shot optimization latency"
    ~labels:[ ("ruleset", ruleset) ] "prairie_optimize_seconds"

let m_optimize_total m ~ruleset =
  Metrics.counter m ~help:"Single-shot optimizations run"
    ~labels:[ ("ruleset", ruleset) ] "prairie_optimize_total"

let m_requests_total m ~ruleset =
  Metrics.counter m ~help:"Plan-service requests received"
    ~labels:[ ("ruleset", ruleset) ] "prairie_serve_requests_total"

let m_searches_total m ~ruleset =
  Metrics.counter m ~help:"Fresh Volcano searches the service ran"
    ~labels:[ ("ruleset", ruleset) ] "prairie_serve_searches_total"

let m_cache_served_total m ~ruleset =
  Metrics.counter m
    ~help:"Requests answered without a fresh search (cache or batch dedup)"
    ~labels:[ ("ruleset", ruleset) ] "prairie_serve_cache_served_total"

let m_dedup_ratio m ~ruleset =
  Metrics.gauge m
    ~help:"Last batch: fraction of requests served without a fresh search"
    ~labels:[ ("ruleset", ruleset) ] "prairie_serve_batch_dedup_ratio"

let m_search_seconds m ~ruleset =
  Metrics.histogram m ~help:"Per-search latency inside the plan service"
    ~labels:[ ("ruleset", ruleset) ] "prairie_serve_search_seconds"

let m_batch_seconds m ~ruleset =
  Metrics.histogram m ~help:"Whole-batch latency of Optimizers.serve"
    ~labels:[ ("ruleset", ruleset) ] "prairie_serve_batch_seconds"

let m_worker_jobs m ~ruleset ~worker =
  Metrics.counter m ~help:"Searches completed per pool worker"
    ~labels:[ ("ruleset", ruleset); ("worker", string_of_int worker) ]
    "prairie_pool_worker_jobs_total"

let m_winner_probes_total m ~ruleset =
  Metrics.counter m ~help:"Memo winner-table lookups"
    ~labels:[ ("ruleset", ruleset) ] "prairie_winner_probes_total"

let m_winner_hits_total m ~ruleset =
  Metrics.counter m ~help:"Memo winner-table lookups answered"
    ~labels:[ ("ruleset", ruleset) ] "prairie_winner_hits_total"

let winner_metrics m ~ruleset st =
  Metrics.inc ~by:st.Prairie_volcano.Stats.winner_probes
    (m_winner_probes_total m ~ruleset);
  Metrics.inc ~by:st.Prairie_volcano.Stats.winner_hits
    (m_winner_hits_total m ~ruleset)

(* Gauges of the calling domain's descriptor interning pool (pool-worker
   domains have their own pools, not visible from here). *)
let pool_metrics m =
  let s = Descriptor.pool_stats () in
  let set name help v = Metrics.set (Metrics.gauge m ~help name) v in
  set "prairie_descriptor_pool_size"
    "Live interned descriptors (calling domain)"
    (float_of_int s.Descriptor.size);
  set "prairie_descriptor_pool_hits"
    "Interning requests answered by an existing descriptor (lifetime)"
    (float_of_int s.Descriptor.hits);
  set "prairie_descriptor_pool_misses"
    "Interning requests that allocated a new descriptor (lifetime)"
    (float_of_int s.Descriptor.misses);
  set "prairie_descriptor_pool_hit_rate"
    "Lifetime interning hit rate of the calling domain's pool"
    (let total = s.Descriptor.hits + s.Descriptor.misses in
     if total = 0 then 0.0
     else float_of_int s.Descriptor.hits /. float_of_int total)

let cache_metrics m cache =
  let s = Prairie_service.Plan_cache.stats cache in
  let set name help v =
    Metrics.set (Metrics.gauge m ~help name) v
  in
  set "prairie_plan_cache_hits" "Plan-cache lookup hits (lifetime)"
    (float_of_int s.Prairie_service.Plan_cache.hits);
  set "prairie_plan_cache_misses" "Plan-cache lookup misses (lifetime)"
    (float_of_int s.Prairie_service.Plan_cache.misses);
  set "prairie_plan_cache_evictions" "Plan-cache LRU evictions (lifetime)"
    (float_of_int s.Prairie_service.Plan_cache.evictions);
  set "prairie_plan_cache_entries" "Plan-cache current entry count"
    (float_of_int (Prairie_service.Plan_cache.length cache));
  set "prairie_plan_cache_hit_rate" "Plan-cache lifetime hit rate"
    (Prairie_service.Plan_cache.hit_rate cache)

let timed f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, Unix.gettimeofday () -. t0)

let optimize ?pruning ?group_budget ?search_jobs ?(required = Descriptor.empty)
    ?trace ?spans ?metrics ?slow_log t expr =
  let expr, req0 = t.prepare expr in
  let required = Descriptor.merge ~base:req0 ~overrides:required in
  let search =
    Search.create ?pruning ?group_budget ?jobs:search_jobs ?trace ?spans
      t.volcano
  in
  let plan, elapsed = timed (fun () -> Search.optimize ~required search expr) in
  (match metrics with
  | None -> ()
  | Some m ->
    Metrics.inc (m_optimize_total m ~ruleset:t.name);
    Metrics.observe (m_optimize_seconds m ~ruleset:t.name) elapsed;
    winner_metrics m ~ruleset:t.name (Search.stats search);
    pool_metrics m);
  let cost = match plan with Some p -> Plan.cost p | None -> infinity in
  (match slow_log with
  | Some log when elapsed >= Slow_log.threshold log ->
    (* the fingerprint is only computed on the slow path *)
    Slow_log.observe log ~ruleset:t.name
      ~fingerprint:(Prairie.Expr.fingerprint ~required expr)
      ~seconds:elapsed ~cost
      ~groups:(Search.group_count search)
      ~budget_hit:(Search.budget_was_hit search)
      ~cache_hit:false
  | Some _ | None -> ());
  { plan; cost; search }

(* ---------------- the plan service ---------------- *)

module Plan_cache = Prairie_service.Plan_cache
module Pool = Prairie_service.Pool

type request = { expr : Prairie.Expr.t; required : Descriptor.t }

let request ?(required = Descriptor.empty) expr = { expr; required }

type served = {
  request : request;
  fingerprint : string;
  plan : Plan.t option;
  cost : float;
  cache_hit : bool;
  groups : int;
  budget_hit : bool;
}

let serve_metered ?pruning ?group_budget ?jobs ?search_jobs ?cache ?metrics
    ?slow_log t batch =
  (* Preparation and fingerprinting are cheap; do them sequentially so the
     batch can be deduplicated before any search is dispatched. *)
  let prepared =
    List.map
      (fun req ->
        let expr, req0 = t.prepare req.expr in
        let required = Descriptor.merge ~base:req0 ~overrides:req.required in
        let fp = Prairie.Expr.fingerprint ~required expr in
        (req, expr, required, fp))
      batch
  in
  (* One cache lookup per request (so hit/miss accounting reflects real
     traffic), then one search per distinct missing fingerprint. *)
  let resolved = Hashtbl.create (List.length prepared) in
  let to_optimize = Hashtbl.create 16 in
  List.iter
    (fun (_, expr, required, fp) ->
      let cached =
        match cache with
        | Some c -> Plan_cache.find c ~ruleset:t.name ~fingerprint:fp
        | None -> None
      in
      match cached with
      | Some entry -> Hashtbl.replace resolved fp entry
      | None ->
        if not (Hashtbl.mem resolved fp || Hashtbl.mem to_optimize fp) then
          Hashtbl.add to_optimize fp (expr, required))
    prepared;
  let jobs_list =
    Hashtbl.fold (fun fp (expr, required) acc -> (fp, expr, required) :: acc)
      to_optimize []
  in
  let optimize_one (fp, expr, required) =
    let search =
      Search.create ?pruning ?group_budget ?jobs:search_jobs t.volcano
    in
    let plan, elapsed =
      timed (fun () -> Search.optimize ~required search expr)
    in
    (match metrics with
    | None -> ()
    | Some m ->
      Metrics.observe (m_search_seconds m ~ruleset:t.name) elapsed;
      winner_metrics m ~ruleset:t.name (Search.stats search));
    let cost = match plan with Some p -> Plan.cost p | None -> infinity in
    (match slow_log with
    | Some log ->
      (* Slow_log.observe applies the threshold itself; it is mutex-
         protected, so recording from pool workers is safe. *)
      Slow_log.observe log ~ruleset:t.name ~fingerprint:fp ~seconds:elapsed
        ~cost
        ~groups:(Search.group_count search)
        ~budget_hit:(Search.budget_was_hit search)
        ~cache_hit:false
    | None -> ());
    let entry =
      {
        Plan_cache.plan;
        cost;
        groups = Search.group_count search;
        budget_hit = Search.budget_was_hit search;
      }
    in
    (match cache with
    | Some c -> Plan_cache.add c ~ruleset:t.name ~fingerprint:fp entry
    | None -> ());
    (fp, entry)
  in
  let on_item =
    match metrics with
    | None -> None
    | Some m ->
      Some (fun ~worker -> Metrics.inc (m_worker_jobs m ~ruleset:t.name ~worker))
  in
  List.iter
    (fun (fp, entry) -> Hashtbl.add resolved fp entry)
    (Pool.map ?jobs ?on_item optimize_one jobs_list);
  (* The first request carrying a freshly-searched fingerprint paid for the
     search; every other request was served from shared state. *)
  let owned = Hashtbl.create 16 in
  List.map
    (fun (request, _, _, fp) ->
      let entry = Hashtbl.find resolved fp in
      let fresh = Hashtbl.mem to_optimize fp && not (Hashtbl.mem owned fp) in
      if fresh then Hashtbl.add owned fp ();
      let cache_hit = not fresh in
      {
        request;
        fingerprint = fp;
        plan = entry.Plan_cache.plan;
        cost = entry.Plan_cache.cost;
        cache_hit;
        groups = entry.Plan_cache.groups;
        budget_hit = entry.Plan_cache.budget_hit;
      })
    prepared

let serve ?pruning ?group_budget ?jobs ?search_jobs ?cache ?metrics ?slow_log t
    batch =
  let served, elapsed =
    timed (fun () ->
        serve_metered ?pruning ?group_budget ?jobs ?search_jobs ?cache ?metrics
          ?slow_log t batch)
  in
  (match metrics with
  | None -> ()
  | Some m ->
    let requests = List.length served in
    let fresh =
      List.length (List.filter (fun s -> not s.cache_hit) served)
    in
    Metrics.inc ~by:requests (m_requests_total m ~ruleset:t.name);
    Metrics.inc ~by:fresh (m_searches_total m ~ruleset:t.name);
    Metrics.inc ~by:(requests - fresh) (m_cache_served_total m ~ruleset:t.name);
    Metrics.set (m_dedup_ratio m ~ruleset:t.name)
      (if requests = 0 then 0.0
       else float_of_int (requests - fresh) /. float_of_int requests);
    Metrics.observe (m_batch_seconds m ~ruleset:t.name) elapsed;
    pool_metrics m;
    match cache with Some c -> cache_metrics m c | None -> ());
  served
