(** Ready-to-use optimizers.

    Packages a Volcano rule set with its query-preparation step (stripping
    root enforcer-operators into required physical properties) under a
    common interface, so benchmarks, examples and tests can drive the two
    §4 contestants — the P2V-generated Prairie optimizer and the hand-coded
    Volcano optimizer — interchangeably. *)

type t = {
  name : string;
  volcano : Prairie_volcano.Rule.ruleset;
  prepare : Prairie.Expr.t -> Prairie.Expr.t * Prairie.Descriptor.t;
}

type outcome = {
  plan : Prairie_volcano.Plan.t option;
  cost : float;  (** infinity when no plan exists *)
  search : Prairie_volcano.Search.t;  (** memo and statistics *)
}

val oodb_prairie : Prairie_catalog.Catalog.t -> t
(** The Open OODB rule set written in Prairie and run through P2V
    ("Prairie" in the paper's Figures 10–13). *)

val oodb_volcano : Prairie_catalog.Catalog.t -> t
(** The hand-coded Volcano rule set ("Volcano" in the same figures). *)

val oodb_prairie_unmerged : Prairie_catalog.Catalog.t -> t
(** P2V translation with rule composition disabled — the [ablation-merge]
    configuration. *)

val oodb_prairie_interpreted : Prairie_catalog.Catalog.t -> t
(** P2V translation with rule actions interpreted per invocation instead of
    staged into closures — the [ablation-codegen] configuration. *)

val relational : Prairie_catalog.Catalog.t -> t
(** The §2 relational optimizer, via P2V. *)

val relational_ruleset : Prairie_catalog.Catalog.t -> Prairie.Ruleset.t
val oodb_ruleset : Prairie_catalog.Catalog.t -> Prairie.Ruleset.t

val optimize :
  ?pruning:bool ->
  ?group_budget:int ->
  ?search_jobs:int ->
  ?required:Prairie.Descriptor.t ->
  ?trace:Prairie_obs.Trace.t ->
  ?spans:Prairie_obs.Span.t ->
  ?metrics:Prairie_obs.Metrics.t ->
  ?slow_log:Prairie_obs.Slow_log.t ->
  t ->
  Prairie.Expr.t ->
  outcome
(** Prepare the query, run the search from a fresh memo and return the
    best plan with the search context (for group counts and rule-match
    statistics).

    [search_jobs] is the intra-query exploration parallelism (the [jobs]
    of {!Prairie_volcano.Search.create}; default: [PRAIRIE_SEARCH_JOBS],
    else 1).  Costs and plans are byte-identical at any value.

    [trace] attaches a structured event sink to the search (see
    {!Prairie_volcano.Search.create} and {!Prairie_volcano.Explain.trace});
    [spans] attaches a timed-span sink with per-rule attribution (see
    {!Prairie_volcano.Explain.profile} and `prairiec profile`);
    [metrics] records the optimization into [prairie_optimize_seconds] /
    [prairie_optimize_total] (labelled by rule-set name); [slow_log]
    records the search when it meets the log's threshold (the query
    fingerprint is only computed on that slow path).  All default to
    off, with one [Option] check of overhead. *)

(** {1 The parallel plan service}

    Batch optimization over a pool of OCaml 5 domains with a shared
    fingerprint-keyed plan cache.  Each worker owns a private [Search.t]
    (the memo never crosses domains); the {!Prairie_service.Plan_cache.t}
    is the only shared structure.  Within one batch, requests with equal
    fingerprints are optimized once. *)

module Plan_cache = Prairie_service.Plan_cache
module Pool = Prairie_service.Pool

type request = {
  expr : Prairie.Expr.t;
  required : Prairie.Descriptor.t;  (** extra required physical properties *)
}

val request : ?required:Prairie.Descriptor.t -> Prairie.Expr.t -> request

type served = {
  request : request;
  fingerprint : string;
      (** of the prepared query + merged requirement — the cache key *)
  plan : Prairie_volcano.Plan.t option;
  cost : float;  (** infinity when no plan exists *)
  cache_hit : bool;
      (** resolved without running a search of its own (cache hit, or a
          duplicate fingerprint earlier in the same batch) *)
  groups : int;  (** memo size of the search that produced the plan *)
  budget_hit : bool;  (** that search hit [group_budget] and degraded *)
}

val serve :
  ?pruning:bool ->
  ?group_budget:int ->
  ?jobs:int ->
  ?search_jobs:int ->
  ?cache:Plan_cache.t ->
  ?metrics:Prairie_obs.Metrics.t ->
  ?slow_log:Prairie_obs.Slow_log.t ->
  t ->
  request list ->
  served list
(** Optimize a batch, in request order.  [jobs] is the worker count
    (default {!Pool.default_jobs}; [1] is fully sequential).
    [search_jobs] is the per-search exploration parallelism each worker's
    {!Prairie_volcano.Search.t} runs at — keep [jobs × search_jobs] near
    the core count.  [cache] is
    consulted before and populated after every search; omitting it still
    deduplicates within the batch.  [group_budget] is the per-request
    budget: an over-large query degrades gracefully instead of stalling a
    worker (see {!Prairie_volcano.Search.create}).

    [metrics] records service telemetry into the given registry (all
    labelled with the rule-set name; see docs/OBSERVABILITY.md):
    request/search/cache-served counters, the last batch's dedup ratio,
    per-search and per-batch latency histograms
    ([prairie_serve_search_seconds], [prairie_serve_batch_seconds]),
    per-worker job counts ([prairie_pool_worker_jobs_total]) and — when
    [cache] is supplied — plan-cache size/hit-rate gauges.

    [slow_log] records every fresh search whose latency meets the log's
    threshold (the log locks internally, so pool workers record safely);
    the telemetry endpoint's [/tracez] serves its recent entries. *)
