module D = Prairie.Diagnostic
module Expr = Prairie.Expr
module Descriptor = Prairie.Descriptor
module Ruleset = Prairie.Ruleset
module Trule = Prairie.Trule
module Irule = Prairie.Irule
module Pattern = Prairie.Pattern
module Action = Prairie.Action
module Eval = Prairie.Eval
module Naive = Prairie.Naive
module Value = Prairie_value.Value
module Catalog = Prairie_catalog.Catalog
module Rng = Prairie_util.Rng
module Generate = Prairie_workload.Generate
module Helpers = Prairie_algebra.Helpers
module Translate = Prairie_p2v.Translate
module Search = Prairie_volcano.Search
module Plan = Prairie_volcano.Plan
module Metrics = Prairie_obs.Metrics
module Lint = Prairie_lint.Lint
module Parser = Prairie_dsl.Parser
module Lexer = Prairie_dsl.Lexer
module Elaborate = Prairie_dsl.Elaborate

let catalogue : D.catalogue =
  [
    ("P000", D.Error, "rule-specification file failed to parse");
    ("P200", D.Error, "T-rule application crashed on a generated expression");
    ("P201", D.Error, "rule set failed to elaborate");
    ( "P210",
      D.Error,
      "T-rule changes a cost-relevant root property (LHS and RHS disagree)" );
    ("P220", D.Error, "optimizer best-plan cost diverges from the naive oracle");
    ( "P230",
      D.Warning,
      "guarded rewrite cycle: rules undo each other at run time (escapes P030/P031)"
    );
    ( "P231",
      D.Warning,
      "T-rule grows expressions without bound under self-application" );
    ("P232", D.Info, "no generated case exercised the rule");
  ]

type config = {
  seed : int;  (** master seed; every case seed derives from it *)
  budget : int;  (** generated cases per T-rule (and oracle queries) *)
  redexes_per_case : int;  (** rule applications checked per case *)
  max_forms : int;  (** T-closure cap when hunting redexes *)
  cycle_depth : int;  (** rewrite steps searched for a cycle back *)
  oracle_forms : int;  (** naive-closure cap for best-plan comparison *)
  invariants : string list;  (** root properties a rewrite must preserve *)
  max_shrink : int;  (** catalog-halving steps per counterexample *)
  rules : string list;
      (** restrict verification to these T-rules; [[]] means all rules plus
          the oracle phase (a non-empty filter skips the oracle, which is a
          whole-rule-set property) *)
}

let default_config =
  {
    seed = 42;
    budget = 10;
    redexes_per_case = 4;
    max_forms = 150;
    cycle_depth = 4;
    (* modest: the closure is computed before the size guard can skip it,
       and a pathological (growing) rule set makes that computation
       quadratic in the cap *)
    oracle_forms = 256;
    invariants = [ "attributes"; "num_records"; "tuple_size" ];
    max_shrink = 40;
    rules = [];
  }

type rule_report = {
  rule : string;
  cases : int;
  redexes : int;
  counterexamples : int;
  shrink_steps : int;
}

type report = {
  ruleset : string;
  seed : int;
  diagnostics : D.t list;
  rules : rule_report list;
  rules_checked : int;
  cases_generated : int;
  counterexamples : int;
  shrink_steps : int;
}

module Expr_set = Set.Make (struct
  type t = Expr.t

  let compare = Expr.compare
end)

(* Deterministic per-case seed: the master seed, the stream key (rule name
   or "<oracle>") and the case index.  [Hashtbl.hash] on immediates and
   strings is stable across runs, which is what makes a printed case seed
   reproduce its counterexample. *)
let case_seed (config : config) key index = Hashtbl.hash (config.seed, key, index)

let float_close a b =
  Float.abs (a -. b) <= 1e-6 *. Float.max 1.0 (Float.max (Float.abs a) (Float.abs b))

let values_agree a b =
  match (a, b) with
  | Some (Value.Float x), Some (Value.Float y) -> float_close x y
  | Some va, Some vb -> Value.equal va vb
  | None, None -> true
  | Some v, None | None, Some v -> Value.equal v Value.Null

let value_string = function
  | None -> "<unset>"
  | Some v -> Format.asprintf "%a" Value.pp v

let is_tt = function Action.Const (Value.Bool true) -> true | _ -> false

let all_tt (rs : Ruleset.t) names =
  List.for_all
    (fun n ->
      match Ruleset.find_trule rs n with
      | Some r -> is_tt r.Trule.test
      | None -> false)
    names

(* ------------------------------------------------------------------ *)
(* Case generation                                                     *)
(* ------------------------------------------------------------------ *)

(* Operator arities are not recorded in Ruleset.t; recover them from the
   patterns and templates that mention each declared operator. *)
let op_arities (rs : Ruleset.t) =
  let tbl = Hashtbl.create 8 in
  let rec pat = function
    | Pattern.Pvar _ -> ()
    | Pattern.Pop (name, _, subs) ->
      if not (Hashtbl.mem tbl name) then Hashtbl.add tbl name (List.length subs);
      List.iter pat subs
  in
  let rec tmpl = function
    | Pattern.Tvar _ -> ()
    | Pattern.Tnode (name, _, subs) ->
      if not (Hashtbl.mem tbl name) then Hashtbl.add tbl name (List.length subs);
      List.iter tmpl subs
  in
  List.iter
    (fun (r : Trule.t) ->
      pat r.Trule.lhs;
      tmpl r.Trule.rhs)
    rs.Ruleset.trules;
  List.iter (fun (r : Irule.t) -> pat r.Irule.lhs) rs.Ruleset.irules;
  List.filter_map
    (fun op -> Option.map (fun a -> (op, a)) (Hashtbl.find_opt tbl op))
    rs.Ruleset.operators

let subterms acc e =
  let rec go acc e =
    let acc = Expr_set.add e acc in
    List.fold_left go acc (Expr.inputs e)
  in
  go acc e

(* All candidate redexes of a case: every subterm of the (bounded)
   T-closure of the generated roots, smallest first so that the first
   failing redex is already a small witness. *)
let candidates (config : config) rs roots =
  let forms =
    List.concat_map
      (fun root ->
        match Naive.logical_forms ~max_forms:config.max_forms rs root with
        | forms -> forms
        | exception _ ->
          (* a crashing rule somewhere in the set aborts closure; direct
             application below still pins the crash on the guilty rule *)
          [ root ])
      roots
  in
  List.fold_left subterms Expr_set.empty forms
  |> Expr_set.elements
  |> List.sort (fun a b ->
         let c = Int.compare (Expr.size a) (Expr.size b) in
         if c <> 0 then c else Expr.compare a b)

(* Breadth-first search for a rewrite path leading back to [target],
   applying T-rules at the root only.  Bounded by depth and node count;
   returns the rule-name path on success. *)
let find_cycle (config : config) (rs : Ruleset.t) ~start ~target =
  let q = Queue.create () in
  Queue.add (start, [], 0) q;
  let seen = ref (Expr_set.singleton start) in
  let found = ref None in
  let explored = ref 0 in
  while !found = None && (not (Queue.is_empty q)) && !explored < 200 do
    let e, path, depth = Queue.pop q in
    incr explored;
    if depth < config.cycle_depth then
      List.iter
        (fun (r : Trule.t) ->
          if !found = None then
            match Eval.apply_trule rs.Ruleset.helpers r e with
            | Some e' ->
              if Expr.equal e' target then
                found := Some (List.rev (r.Trule.name :: path))
              else if not (Expr_set.mem e' !seen) then begin
                seen := Expr_set.add e' !seen;
                Queue.add (e', r.Trule.name :: path, depth + 1) q
              end
            | None -> ()
            | exception _ -> ())
        rs.Ruleset.trules
  done;
  !found

(* Does repeated self-application at the root keep strictly growing the
   expression?  [out] is the result of the first application to [redex]. *)
let growth (config : config) (rs : Ruleset.t) (rule : Trule.t) redex out =
  let rec go e k =
    if k >= config.cycle_depth then Some (Expr.size redex, Expr.size e)
    else
      match Eval.apply_trule rs.Ruleset.helpers rule e with
      | Some e' when Expr.size e' > Expr.size e -> go e' (k + 1)
      | Some _ | None -> None
      | exception _ -> None
  in
  if Expr.size out > Expr.size redex then go out 1 else None

type failure =
  | Crash of { redex : Expr.t; exn : string }
  | Invariant of {
      prop : string;
      redex : Expr.t;
      lhs : Value.t option;
      rhs : Value.t option;
    }
  | Cycle of { redex : Expr.t; rules : string list }
  | Growth of { redex : Expr.t; from_size : int; to_size : int }

(* Run one generated case for one rule: same seed, same draws — only the
   catalog may be overridden (by shrinking), which does not disturb the
   draw sequence because no draw inspects catalog statistics. *)
let eval_rule_case (config : config) factory ~rule_name ~seed ~catalog_override =
  let rng = Rng.create seed in
  let w0 = Generate.world rng in
  let w =
    match catalog_override with
    | None -> w0
    | Some c -> Generate.with_catalog w0 c
  in
  let rs = factory w.Generate.catalog in
  match Ruleset.find_trule rs rule_name with
  | None -> (w, [], 0)
  | Some rule ->
    let ops = rs.Ruleset.operators in
    let root = Generate.of_pattern rng w ~ops rule.Trule.lhs in
    let cands = candidates config rs [ root ] in
    let failures = ref [] in
    let applied = ref 0 in
    List.iter
      (fun redex ->
        if !applied < config.redexes_per_case then
          match Eval.apply_trule rs.Ruleset.helpers rule redex with
          | None -> ()
          | exception e ->
            incr applied;
            failures := Crash { redex; exn = Printexc.to_string e } :: !failures
          | Some out ->
            incr applied;
            List.iter
              (fun prop ->
                let lhs = Descriptor.find (Expr.descriptor redex) prop in
                let rhs = Descriptor.find (Expr.descriptor out) prop in
                if not (values_agree lhs rhs) then
                  failures := Invariant { prop; redex; lhs; rhs } :: !failures)
              config.invariants;
            (match find_cycle config rs ~start:out ~target:redex with
            | Some path ->
              let rules = rule.Trule.name :: path in
              if not (all_tt rs rules) then
                failures := Cycle { redex; rules } :: !failures
            | None -> ());
            (match growth config rs rule redex out with
            | Some (from_size, to_size) ->
              failures := Growth { redex; from_size; to_size } :: !failures
            | None -> ()))
      cands;
    (w, List.rev !failures, !applied)

(* ------------------------------------------------------------------ *)
(* Shrinking                                                           *)
(* ------------------------------------------------------------------ *)

(* Halve catalog cardinalities while the same kind of failure persists;
   the witness expression regenerates deterministically from the case
   seed against each candidate catalog.  The expression itself was
   already minimized by checking the smallest applicable redexes
   first. *)
let shrink (config : config) factory ~rule_name ~seed ~select catalog0 fail0 =
  let rec go steps catalog fail =
    if steps >= config.max_shrink then (catalog, fail, steps)
    else
      match Generate.shrink_catalog catalog with
      | None -> (catalog, fail, steps)
      | Some catalog' -> (
        match
          eval_rule_case config factory ~rule_name ~seed
            ~catalog_override:(Some catalog')
        with
        | exception _ -> (catalog, fail, steps)
        | _, failures, _ -> (
          match List.find_opt select failures with
          | Some fail' -> go (steps + 1) catalog' fail'
          | None -> (catalog, fail, steps)))
  in
  go 0 catalog0 fail0

let same_kind a b =
  match (a, b) with
  | Crash _, Crash _ -> true
  | Invariant x, Invariant y -> String.equal x.prop y.prop
  | Cycle _, Cycle _ -> true
  | Growth _, Growth _ -> true
  | _ -> false

let failure_key = function
  | Crash _ -> "P200"
  | Invariant { prop; _ } -> "P210:" ^ prop
  | Cycle { rules; _ } -> "P230:" ^ String.concat "," (List.sort_uniq String.compare rules)
  | Growth _ -> "P231"

let witness catalog redex =
  Printf.sprintf "%s  [catalog %s]" (Expr.to_string redex)
    (Generate.catalog_summary catalog)

let repro_hint (config : config) ~seed ~index ~steps =
  Printf.sprintf
    "reproduce with --seed %d; the witness regenerates from case seed %d (case %d), shrunk %d step(s)"
    config.seed seed index steps

let failure_diagnostic (config : config) ~rule_name ~seed ~index ~steps catalog fail =
  match fail with
  | Crash { redex; exn } ->
    D.error ~code:"P200" ~rule:rule_name
      ~hint:(repro_hint config ~seed ~index ~steps)
      (Printf.sprintf "rule application raised %s on %s" exn
         (witness catalog redex))
  | Invariant { prop; redex; lhs; rhs } ->
    D.error ~code:"P210" ~rule:rule_name
      ~hint:(repro_hint config ~seed ~index ~steps)
      (Printf.sprintf "rewrite changes root %s from %s to %s on %s" prop
         (value_string lhs) (value_string rhs) (witness catalog redex))
  | Cycle { redex; rules } ->
    D.warning ~code:"P230" ~rule:rule_name
      ~hint:(repro_hint config ~seed ~index ~steps)
      (Printf.sprintf
         "applying %s returns to the original expression %s; the guards pass at every step, so only memo deduplication prevents divergence"
         (String.concat " -> " rules) (witness catalog redex))
  | Growth { redex; from_size; to_size } ->
    D.warning ~code:"P231" ~rule:rule_name
      ~hint:(repro_hint config ~seed ~index ~steps)
      (Printf.sprintf
         "self-application grows the expression from %d to %d nodes within %d steps on %s"
         from_size to_size config.cycle_depth (witness catalog redex))

(* ------------------------------------------------------------------ *)
(* Per-rule verification                                               *)
(* ------------------------------------------------------------------ *)

let check_rule (config : config) factory ~rule_name =
  let diags = ref [] in
  let reported = Hashtbl.create 4 in
  let cases = ref 0 in
  let redexes = ref 0 in
  let counterexamples = ref 0 in
  let shrink_steps = ref 0 in
  for index = 0 to config.budget - 1 do
    let seed = case_seed config rule_name index in
    match eval_rule_case config factory ~rule_name ~seed ~catalog_override:None with
    | exception e ->
      incr cases;
      if not (Hashtbl.mem reported "P200") then begin
        Hashtbl.add reported "P200" ();
        incr counterexamples;
        diags :=
          D.error ~code:"P200" ~rule:rule_name
            ~hint:(repro_hint config ~seed ~index ~steps:0)
            (Printf.sprintf "case generation raised %s" (Printexc.to_string e))
          :: !diags
      end
    | w, failures, applied ->
      incr cases;
      redexes := !redexes + applied;
      List.iter
        (fun fail ->
          let key = failure_key fail in
          if not (Hashtbl.mem reported key) then begin
            Hashtbl.add reported key ();
            incr counterexamples;
            let catalog, fail, steps =
              match fail with
              | Cycle _ | Growth _ ->
                (* structural findings: the smallest-redex witness is
                   already minimal, catalog statistics are irrelevant *)
                (w.Generate.catalog, fail, 0)
              | Crash _ | Invariant _ ->
                shrink config factory ~rule_name ~seed
                  ~select:(same_kind fail) w.Generate.catalog fail
            in
            shrink_steps := !shrink_steps + steps;
            diags :=
              failure_diagnostic config ~rule_name ~seed ~index ~steps catalog
                fail
              :: !diags
          end)
        failures
  done;
  if !redexes = 0 && !counterexamples = 0 then
    diags :=
      D.info ~code:"P232" ~rule:rule_name
        ~hint:"widen the generators or raise --budget if the rule should be reachable"
        (Printf.sprintf
           "none of the %d generated cases produced an expression this rule applies to"
           config.budget)
      :: !diags;
  ( {
      rule = rule_name;
      cases = !cases;
      redexes = !redexes;
      counterexamples = !counterexamples;
      shrink_steps = !shrink_steps;
    },
    !diags )

(* ------------------------------------------------------------------ *)
(* Oracle differential (P220)                                          *)
(* ------------------------------------------------------------------ *)

type divergence = {
  query : Expr.t;
  naive_cost : float option;
  volcano_cost : float option;
}

let oracle_rule = "<oracle>"

(* One oracle query: [`Skipped] when the logical space overflows the cap
   (the naive best would not be authoritative), [`Agree] when both
   optimizers produce the same best cost, [`Diverged d] otherwise. *)
let eval_oracle_case (config : config) factory ~seed ~catalog_override =
  let rng = Rng.create seed in
  let w0 = Generate.world rng in
  let w =
    match catalog_override with
    | None -> w0
    | Some c -> Generate.with_catalog w0 c
  in
  let rs = factory w.Generate.catalog in
  let ops = rs.Ruleset.operators in
  let query =
    if List.mem "RET" ops && List.mem "JOIN" ops then Generate.expr rng w ~ops
    else
      let arities = op_arities rs in
      let depth = Rng.in_range rng 1 3 in
      Generate.of_vocabulary rng w ~ops:arities ~depth
  in
  let forms = Naive.logical_forms ~max_forms:config.oracle_forms rs query in
  if List.length forms >= config.oracle_forms then (w, `Skipped)
  else begin
    let tr = Translate.translate rs in
    let query', required = Translate.prepare_query tr query in
    let ctx = Search.create tr.Translate.volcano in
    let vol = Search.optimize ~required ctx query' in
    let naive = Naive.best_plan ~max_forms:config.oracle_forms rs ~required query' in
    match (naive, vol) with
    | None, None -> (w, `Agree)
    | Some n, Some p when float_close n.Naive.cost (Plan.cost p) -> (w, `Agree)
    | _ ->
      ( w,
        `Diverged
          {
            query;
            naive_cost = Option.map (fun (n : Naive.result) -> n.Naive.cost) naive;
            volcano_cost = Option.map Plan.cost vol;
          } )
  end

let cost_string = function
  | None -> "no plan"
  | Some c -> Printf.sprintf "cost %.6g" c

let check_oracle (config : config) factory =
  let diags = ref [] in
  let cases = ref 0 in
  let queries = ref 0 in
  let counterexamples = ref 0 in
  let shrink_steps = ref 0 in
  let found = ref false in
  for index = 0 to config.budget - 1 do
    if not !found then begin
      let seed = case_seed config oracle_rule index in
      match eval_oracle_case config factory ~seed ~catalog_override:None with
      | exception _ -> incr cases (* generation problems are the rules' P200 *)
      | w, outcome ->
        incr cases;
        match outcome with
        | `Skipped -> ()
        | `Agree -> incr queries
        | `Diverged div ->
          incr queries;
          found := true;
          incr counterexamples;
          (* shrink the catalog while the divergence persists *)
          let rec go steps catalog div =
            if steps >= config.max_shrink then (catalog, div, steps)
            else
              match Generate.shrink_catalog catalog with
              | None -> (catalog, div, steps)
              | Some catalog' -> (
                match
                  eval_oracle_case config factory ~seed
                    ~catalog_override:(Some catalog')
                with
                | exception _ -> (catalog, div, steps)
                | _, `Diverged div' -> go (steps + 1) catalog' div'
                | _, (`Agree | `Skipped) -> (catalog, div, steps))
          in
          let catalog, div, steps = go 0 w.Generate.catalog div in
          shrink_steps := !shrink_steps + steps;
          diags :=
            D.error ~code:"P220"
              ~hint:(repro_hint config ~seed ~index ~steps)
              (Printf.sprintf
                 "optimizer disagrees with the naive oracle on %s: oracle %s, search %s"
                 (witness catalog div.query)
                 (cost_string div.naive_cost)
                 (cost_string div.volcano_cost))
            :: !diags
    end
  done;
  ( {
      rule = oracle_rule;
      cases = !cases;
      redexes = !queries;
      counterexamples = !counterexamples;
      shrink_steps = !shrink_steps;
    },
    !diags )

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let verify_ruleset ?(config = default_config) factory =
  let probe_rng = Rng.create config.seed in
  let probe = factory (Generate.world probe_rng).Generate.catalog in
  let name = probe.Ruleset.name in
  let rule_names =
    List.map (fun (r : Trule.t) -> r.Trule.name) probe.Ruleset.trules
  in
  let rule_names =
    match config.rules with
    | [] -> rule_names
    | wanted -> List.filter (fun n -> List.mem n wanted) rule_names
  in
  let per_rule =
    List.map (fun rule_name -> check_rule config factory ~rule_name) rule_names
  in
  let oracle =
    (* the oracle compares whole-rule-set optimization against the naive
       baseline, so it only makes sense without a rule filter *)
    if config.rules = [] then [ check_oracle config factory ] else []
  in
  let rules = List.map fst per_rule @ List.map fst oracle in
  let diagnostics =
    D.normalize (List.concat_map snd per_rule @ List.concat_map snd oracle)
  in
  {
    ruleset = name;
    seed = config.seed;
    diagnostics;
    rules;
    rules_checked = List.length rule_names;
    cases_generated = List.fold_left (fun acc (r : rule_report) -> acc + r.cases) 0 rules;
    counterexamples =
      List.fold_left (fun acc (r : rule_report) -> acc + r.counterexamples) 0 rules;
    shrink_steps = List.fold_left (fun acc (r : rule_report) -> acc + r.shrink_steps) 0 rules;
  }

let empty_report ~ruleset ~seed diagnostics =
  {
    ruleset;
    seed;
    diagnostics = D.normalize diagnostics;
    rules = [];
    rules_checked = 0;
    cases_generated = 0;
    counterexamples = List.length (D.errors diagnostics);
    shrink_steps = 0;
  }

let verify_string ?(config = default_config) src =
  match Parser.parse src with
  | exception Lexer.Lex_error (pos, msg) ->
    empty_report ~ruleset:"" ~seed:config.seed
      [
        D.error ~code:"P000"
          ~span:{ D.line = pos.Lexer.line; column = pos.Lexer.column }
          (Printf.sprintf "lexical error: %s" msg);
      ]
  | exception Parser.Parse_error (pos, msg) ->
    empty_report ~ruleset:"" ~seed:config.seed
      [
        D.error ~code:"P000"
          ~span:{ D.line = pos.Lexer.line; column = pos.Lexer.column }
          (Printf.sprintf "parse error: %s" msg);
      ]
  | spec -> (
    let factory catalog =
      Elaborate.elaborate ~helpers:(Helpers.env catalog) spec
    in
    match verify_ruleset ~config factory with
    | exception Elaborate.Elab_error msgs ->
      empty_report ~ruleset:spec.Prairie_dsl.Ast.ruleset_name ~seed:config.seed
        (List.map
           (fun m -> D.error ~code:"P201" (Printf.sprintf "elaboration: %s" m))
           msgs)
    | report ->
      let pragmas = Lint.allow_pragmas src in
      {
        report with
        diagnostics = D.normalize (Lint.apply_pragmas pragmas report.diagnostics);
      })

let verify_file ?config path =
  let ic = open_in_bin path in
  let src =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  verify_string ?config src

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let export_metrics registry report =
  let ruleset = [ ("ruleset", report.ruleset) ] in
  Metrics.inc ~by:report.rules_checked
    (Metrics.counter registry ~help:"T-rules checked by the semantic verifier"
       ~labels:ruleset "prairie_verify_rules_checked_total");
  List.iter
    (fun (r : rule_report) ->
      let labels = ("rule", r.rule) :: ruleset in
      Metrics.inc ~by:r.cases
        (Metrics.counter registry ~help:"generated verification cases"
           ~labels "prairie_verify_cases_total");
      Metrics.inc ~by:r.redexes
        (Metrics.counter registry
           ~help:"rule applications (redexes) checked" ~labels
           "prairie_verify_redexes_total");
      Metrics.inc ~by:r.counterexamples
        (Metrics.counter registry ~help:"counterexamples found" ~labels
           "prairie_verify_counterexamples_total");
      Metrics.inc ~by:r.shrink_steps
        (Metrics.counter registry ~help:"catalog shrinking steps taken"
           ~labels "prairie_verify_shrink_steps_total"))
    report.rules

let summary = D.summary
