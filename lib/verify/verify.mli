(** Semantic rule verification: oracle-differential counterexample search
    with shrinking.

    Where {!Prairie_lint} catches syntactic problems (P0xx), this module
    hunts for {e semantic} ones: for each T-rule it generates random
    catalogs and expressions matching the rule's LHS pattern (through
    {!Prairie_workload.Generate}), applies the rule, and searches for
    divergences —

    - {b P200} the application crashes (a helper raised on values the
      guard let through);
    - {b P210} the rewrite changes a cost-relevant property of the root
      descriptor ([attributes], [num_records], [tuple_size] by default):
      equivalent expressions must agree on these, or cost comparison
      between the two sides is meaningless;
    - {b P220} the Volcano search engine's best plan diverges in cost
      from the {!Prairie.Naive} exhaustive oracle on generated queries —
      the catch-all for broken cost functions and rules that violate the
      optimal-substructure assumption;
    - {b P230} a rewrite cycle whose guards all pass at run time: the
      static P030/P031 checks accept any syntactically non-trivial test,
      this one actually runs the loop;
    - {b P231} a rule whose self-application keeps strictly growing the
      expression (non-termination without the memo's protection);
    - {b P232} (info) no generated case ever exercised the rule.

    Counterexamples are shrunk — the smallest applicable redex is checked
    first, then catalog cardinalities are halved while the failure
    persists — and reported as {!Prairie.Diagnostic.t} values whose hints
    carry the master seed and per-case seed, so every witness regenerates
    exactly.  [lint:allow] pragmas downgrade P2xx warnings just as they
    do lint warnings (shared namespace, see {!Prairie_lint.Lint.apply_pragmas}). *)

val catalogue : Prairie.Diagnostic.catalogue
(** Every diagnostic code the verifier can emit. *)

type config = {
  seed : int;  (** master seed; every case seed derives from it *)
  budget : int;  (** generated cases per T-rule (and oracle queries) *)
  redexes_per_case : int;  (** rule applications checked per case *)
  max_forms : int;  (** T-closure cap when hunting redexes *)
  cycle_depth : int;  (** rewrite steps searched for a cycle back *)
  oracle_forms : int;  (** naive-closure cap for best-plan comparison *)
  invariants : string list;  (** root properties a rewrite must preserve *)
  max_shrink : int;  (** catalog-halving steps per counterexample *)
  rules : string list;
      (** restrict verification to these T-rules; [[]] means all rules plus
          the oracle phase (a non-empty filter skips the oracle, which is a
          whole-rule-set property) *)
}

val default_config : config
(** seed 42, budget 10, invariants [attributes]/[num_records]/[tuple_size]. *)

type rule_report = {
  rule : string;  (** T-rule name, or ["<oracle>"] for the P220 phase *)
  cases : int;
  redexes : int;  (** rule applications checked (oracle: queries compared) *)
  counterexamples : int;
  shrink_steps : int;
}

type report = {
  ruleset : string;
  seed : int;
  diagnostics : Prairie.Diagnostic.t list;  (** normalized *)
  rules : rule_report list;
  rules_checked : int;
  cases_generated : int;
  counterexamples : int;
  shrink_steps : int;
}

val verify_ruleset :
  ?config:config -> (Prairie_catalog.Catalog.t -> Prairie.Ruleset.t) -> report
(** Verify a rule set given as a factory closing over a catalog (rule-set
    helpers are catalog-scoped, so each generated catalog needs its own
    instantiation).  Deterministic in [config.seed]; never mutates the
    rule sets the factory returns. *)

val verify_string : ?config:config -> string -> report
(** Parse, elaborate per generated catalog, verify.  Parse failures
    become a single P000 error, elaboration failures P201 errors;
    [lint:allow] pragmas in the source are applied to the findings. *)

val verify_file : ?config:config -> string -> report
(** {!verify_string} on the contents of a file. *)

val export_metrics : Prairie_obs.Metrics.t -> report -> unit
(** Register and bump the [prairie_verify_*] counters (rules checked,
    cases, redexes, counterexamples, shrink steps) labelled by ruleset
    and rule. *)

val summary : Prairie.Diagnostic.t list -> int * int * int
(** [(errors, warnings, infos)] counts. *)
