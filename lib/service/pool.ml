let default_jobs () = max 1 (min 8 (Domain.recommended_domain_count ()))

exception Stop

let no_notify ~worker:_ = ()

let map ?jobs ?(on_item = no_notify) f items =
  let arr = Array.of_list items in
  let n = Array.length arr in
  let jobs =
    let j = match jobs with Some j -> max 1 j | None -> default_jobs () in
    min j n
  in
  if jobs <= 1 || n <= 1 then
    List.map
      (fun x ->
        let v = f x in
        on_item ~worker:0;
        v)
      items
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let error = Atomic.make None in
    let worker w () =
      try
        while true do
          let i = Atomic.fetch_and_add next 1 in
          if i >= n || Atomic.get error <> None then raise Stop;
          match f arr.(i) with
          | v -> (
            results.(i) <- Some v;
            (* [on_item] is caller code: a raise here must stop the run and
               surface after the join, not escape mid-loop (from worker 0
               that would leak every spawned domain). *)
            try on_item ~worker:w
            with e ->
              ignore (Atomic.compare_and_set error None (Some e));
              raise Stop)
          | exception e -> ignore (Atomic.compare_and_set error None (Some e))
        done
      with Stop -> ()
    in
    let domains = List.init (jobs - 1) (fun i -> Domain.spawn (worker (i + 1))) in
    (* Join unconditionally: even if the calling thread's own worker raises
       outside the [Stop] path (asynchronous exceptions, say), the spawned
       domains must not be left unjoined. *)
    Fun.protect
      ~finally:(fun () -> List.iter Domain.join domains)
      (fun () -> worker 0 ());
    match Atomic.get error with
    | Some e -> raise e
    | None ->
      Array.to_list
        (Array.map
           (function Some v -> v | None -> assert false (* all filled *))
           results)
  end
