(** A fixed pool of OCaml 5 domains mapping a function over a batch.

    The threading model of the plan service: each batch item is processed
    entirely within one domain, so per-item state (a fresh [Search.t] with
    its memo) never crosses domains; only explicitly thread-safe structures
    ({!Plan_cache.t}) may be shared by the supplied function.  Work is
    distributed dynamically through a shared atomic cursor, so a batch of
    uneven optimization times still keeps every worker busy. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()], capped at 8 — the sweet spot for
    optimizer workloads whose working sets are memo-sized, not data-sized. *)

val map :
  ?jobs:int -> ?on_item:(worker:int -> unit) -> ('a -> 'b) -> 'a list -> 'b list
(** Order-preserving parallel map with [jobs] workers (default
    {!default_jobs}; the calling domain counts as one worker, so [jobs:1]
    — or a batch of one — degenerates to [List.map] with no domain spawned).
    If [f] raises, remaining items are abandoned, all workers are joined,
    and the first exception observed is re-raised in the caller.

    [on_item ~worker] is called after each completed item, {e in the
    worker's domain}, with the worker's index (the calling domain is
    worker [0]) — the hook per-worker job-count telemetry hangs off.  It
    must be thread-safe; exceptions from it are treated like exceptions
    from [f]. *)
