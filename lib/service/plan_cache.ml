type entry = {
  plan : Prairie_volcano.Plan.t option;
  cost : float;
  groups : int;
  budget_hit : bool;
}

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  invalidations : int;
}

type key = string * string (* rule-set name, query fingerprint *)

(* Intrusive doubly-linked recency list: [first] is the most recently used
   node, [last] the eviction candidate.  Every node is also in [table]. *)
type node = {
  key : key;
  mutable entry : entry;
  mutable prev : node option;
  mutable next : node option;
}

type t = {
  lock : Mutex.t;
  table : (key, node) Hashtbl.t;
  cap : int;
  mutable first : node option;
  mutable last : node option;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable invalidations : int;
}

let create ?(capacity = 1024) () =
  {
    lock = Mutex.create ();
    table = Hashtbl.create 256;
    cap = max 1 capacity;
    first = None;
    last = None;
    hits = 0;
    misses = 0;
    evictions = 0;
    invalidations = 0;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let capacity t = t.cap
let length t = locked t (fun () -> Hashtbl.length t.table)

let unlink t n =
  (match n.prev with None -> t.first <- n.next | Some p -> p.next <- n.next);
  (match n.next with None -> t.last <- n.prev | Some s -> s.prev <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.first;
  n.prev <- None;
  (match t.first with Some f -> f.prev <- Some n | None -> t.last <- Some n);
  t.first <- Some n

let find t ~ruleset ~fingerprint =
  locked t (fun () ->
      match Hashtbl.find_opt t.table (ruleset, fingerprint) with
      | Some n ->
        t.hits <- t.hits + 1;
        unlink t n;
        push_front t n;
        Some n.entry
      | None ->
        t.misses <- t.misses + 1;
        None)

let add t ~ruleset ~fingerprint entry =
  locked t (fun () ->
      let key = (ruleset, fingerprint) in
      match Hashtbl.find_opt t.table key with
      | Some n ->
        n.entry <- entry;
        unlink t n;
        push_front t n
      | None ->
        if Hashtbl.length t.table >= t.cap then (
          match t.last with
          | Some victim ->
            unlink t victim;
            Hashtbl.remove t.table victim.key;
            t.evictions <- t.evictions + 1
          | None -> ());
        let n = { key; entry; prev = None; next = None } in
        push_front t n;
        Hashtbl.add t.table key n)

let invalidate t ~ruleset =
  locked t (fun () ->
      let victims =
        Hashtbl.fold
          (fun (rs, _) n acc -> if String.equal rs ruleset then n :: acc else acc)
          t.table []
      in
      List.iter
        (fun n ->
          unlink t n;
          Hashtbl.remove t.table n.key;
          t.invalidations <- t.invalidations + 1)
        victims)

let clear t =
  locked t (fun () ->
      t.invalidations <- t.invalidations + Hashtbl.length t.table;
      Hashtbl.reset t.table;
      t.first <- None;
      t.last <- None)

let stats t =
  locked t (fun () ->
      {
        hits = t.hits;
        misses = t.misses;
        evictions = t.evictions;
        invalidations = t.invalidations;
      })

let hit_rate t =
  let s = stats t in
  let total = s.hits + s.misses in
  if total = 0 then 0.0 else float_of_int s.hits /. float_of_int total

let pp_stats ppf t =
  let s = stats t in
  Format.fprintf ppf
    "@[<h>%d/%d entries, %d hits, %d misses (%.1f%% hit rate), %d evictions, \
     %d invalidations@]"
    (length t) (capacity t) s.hits s.misses
    (100.0 *. hit_rate t)
    s.evictions s.invalidations
