(** A minimal HTTP/1.0 telemetry endpoint (stdlib [Unix] only).

    One background domain accepts connections sequentially and serves:

    - [GET /metrics] — Prometheus text exposition of the registry
      (including the p50/p90/p99 latency summaries), empty when no
      registry was attached;
    - [GET /healthz] — ["ok\n"], liveness;
    - [GET /tracez] — recent slow queries from the attached
      {!Prairie_obs.Slow_log.t} as one JSON document.

    Anything else is 404; non-GET methods are 405.  Responses always
    close the connection.  Sequential accept is deliberate: this serves
    scrape-style traffic (Prometheus, curl, health checks), not users. *)

type t

val start :
  ?addr:string ->
  ?metrics:Prairie_obs.Metrics.t ->
  ?slow_log:Prairie_obs.Slow_log.t ->
  ?client_timeout:float ->
  port:int ->
  unit ->
  t
(** Bind [addr] (default ["127.0.0.1"]) on [port] ([0] picks an
    ephemeral port — read it back with {!port}) and serve from a fresh
    domain.  The registry and slow log lock internally, so the optimizer
    keeps writing them while the server reads.

    [client_timeout] (seconds, default 5, min 0.01) bounds each accepted
    connection three ways: [SO_RCVTIMEO] and [SO_SNDTIMEO] cap every
    individual read/write, and an overall per-client deadline caps the
    whole exchange — so a client that connects and never sends (or
    drips/drains one byte per almost-timeout) is dropped and the
    sequential accept loop moves on to the next connection.
    @raise Unix.Unix_error when the bind fails (e.g. port in use). *)

val port : t -> int
(** The bound port (resolved when [start] was given port [0]). *)

val addr : t -> string

val stop : t -> unit
(** Stop accepting, join the server domain and close the socket.
    Idempotent. *)
